/**
 * @file
 * Cycle-level timing model of one DRAM channel (an HMC vault or a
 * DDR3 channel).
 *
 * The model follows the paper's simulator description (Section VI):
 * each vault pushes one I/O word per reference tick while in burst
 * mode; after burstLength words it waits tCCD before the next burst.
 * Channels slower than the reference clock (DDR3) accumulate
 * fractional word credit per tick. Row activations cost tRCD + tCL
 * and are overlapped with ongoing bursts through a small lookahead
 * window across banks, which models hit-under-activate in a
 * multi-bank vault.
 */

#ifndef NEUROCUBE_DRAM_MEMORY_CHANNEL_HH
#define NEUROCUBE_DRAM_MEMORY_CHANNEL_HH

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "common/fixed_point.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "common/wake.hh"
#include "dram/backing_store.hh"
#include "dram/dram_params.hh"
#include "trace/trace.hh"

namespace neurocube
{

/** One element-granularity access issued by a PNG. */
struct MemRequest
{
    /** True for a write-back, false for a read. */
    bool write = false;
    /** Element address within this channel's store. */
    Addr addr = 0;
    /** Data to store (writes only). */
    Fixed data{};
    /** Opaque tag the issuer uses to match responses. */
    uint64_t tag = 0;
    /** Tick the channel accepted the request (set by enqueue). */
    Tick enqueueTick = 0;
    /** DRAM row of addr (cached by enqueue; divisions are hot). */
    uint64_t row = 0;
    /** Bank of addr (cached by enqueue). */
    unsigned bank = 0;
};

/** Completion record for one serviced read. */
struct MemResponse
{
    /** Element address that was read. */
    Addr addr = 0;
    /** The element value. */
    Fixed data{};
    /** Tag copied from the request. */
    uint64_t tag = 0;
};

/**
 * Timing + functional model of one memory channel.
 *
 * Requests are serviced in order at word granularity: each serviced
 * word consumes up to elementsPerWord() queued element requests that
 * fall in the same DRAM row and share a direction (read/write).
 */
class MemoryChannel
{
  public:
    /**
     * @param params technology parameters
     * @param parent stat group to hang this channel's stats under
     * @param name stat path component, e.g. "vault3"
     * @param trace_id vault/channel index used for trace events
     */
    MemoryChannel(const DramParams &params, StatGroup *parent,
                  const std::string &name, uint16_t trace_id = 0);

    /** True while the request queues have room. */
    bool
    canAccept() const
    {
        return queue_.size() < queueCapacity
            && writeQueue_.size() < writeBufferCapacity;
    }

    /** Queue one element access. @pre canAccept() */
    void enqueue(const MemRequest &req);

    /** Advance one reference-clock tick. */
    void tick(Tick now);

    /**
     * Event-engine hookup: the scheduler watching this channel, or
     * nullptr under the legacy tick-every-cycle loop. enqueue() calls
     * sink->onChannelEnqueue() (before stamping, so the scheduler can
     * catch the channel up first) and serveWord() calls
     * sink->onChannelServe().
     */
    void setWakeSink(WakeSink *sink) { sink_ = sink; }

    /**
     * First tick after @p now at which tick() would do more than the
     * empty-queue idle path, given no external input. tickNever while
     * both request queues are empty: an idle tick only ages credit /
     * gap state, which skipTicks() reproduces in bulk when an enqueue
     * (or end-of-pass catchup) lands.
     */
    Tick
    nextEventAfter(Tick now) const
    {
        if (queue_.empty() && writeQueue_.empty())
            return tickNever;
        return now + 1;
    }

    /**
     * Account ticks [from, to) in bulk, replicating exactly what that
     * many empty-queue tick() calls would have done (activation
     * promotion, credit accrual, burst-gap aging, idle stats, stale
     * now_ stamp). @pre both request queues were empty over the whole
     * window (guaranteed by the sleep condition + enqueue catchup).
     */
    void skipTicks(Tick from, Tick to);

    /** Serviced reads, in order; consumer pops from the front. */
    std::deque<MemResponse> &responses() { return responses_; }

    /** True when no serviced read awaits its consumer. */
    bool responsesEmpty() const { return responses_.empty(); }

    /** True when no requests are queued or in flight. */
    bool
    idle() const
    {
        return queue_.empty() && writeQueue_.empty()
            && responses_.empty();
    }

    /** Functional storage behind this channel. */
    BackingStore &store() { return store_; }
    const BackingStore &store() const { return store_; }

    /** Technology parameters. */
    const DramParams &params() const { return params_; }

    /** Total data moved, in bits (for the energy model). */
    uint64_t bitsTransferred() const { return statBits_.count(); }

    /** Queue residency distribution (ticks enqueue -> service). */
    const Histogram &
    queueResidencyHistogram() const
    {
        return histQueueResidency_;
    }

    /** Access energy consumed so far, in joules. */
    double
    energyJoules() const
    {
        return statBits_.value() * params_.energyPjPerBit * 1.0e-12;
    }

    /** Reset timing state (between layers); keeps store contents. */
    void resetTiming();

    /** Maximum queued element read requests. */
    static constexpr size_t queueCapacity = 64;

    /**
     * Write-buffer capacity and drain watermarks. Write-backs are
     * buffered and drained in batches (when the buffer passes the
     * high watermark, the read queue empties, or a read hits a
     * buffered address), amortizing the row activations of the
     * output stream over many writes instead of ping-ponging rows
     * against the operand streams — standard write-drain policy of
     * DRAM controllers.
     */
    static constexpr size_t writeBufferCapacity = 64;
    static constexpr size_t writeDrainHigh = 32;
    static constexpr size_t writeDrainLow = 4;

    /**
     * Maximum unconsumed read responses before the channel stalls.
     * Models the finite vault-controller read buffer so NoC
     * backpressure propagates all the way into the DRAM timing.
     */
    static constexpr size_t responseBacklogLimit = 16;

  private:
    /** Row index of an element address. */
    uint64_t rowOf(Addr addr) const { return addr / rowElements_; }
    /**
     * Bank an element address maps to. The row index is hashed so
     * that independent sequential streams (states vs weights) rarely
     * fall into lock-step same-bank conflicts.
     */
    unsigned
    bankOfRow(uint64_t row) const
    {
        return unsigned((row ^ (row >> 4)) % params_.banksPerChannel);
    }

    unsigned bankOf(Addr addr) const { return bankOfRow(rowOf(addr)); }

    /** Start pre-activations for upcoming rows in idle banks. */
    void lookaheadActivate(Tick now,
                           const std::deque<MemRequest> &queue);

    /**
     * Pick the queue index to serve this tick: the head when its row
     * is open, otherwise the first open-row request within the
     * reorder window (FR-FCFS row-hit-first, never reordering past a
     * write so read-after-write ordering is preserved).
     *
     * @return index into the queue, or SIZE_MAX when nothing can be
     *         served this tick
     */
    size_t pickServeIndex(Tick now) const;

    /** Serve up to one word's worth of requests starting at idx. */
    void serveWord(Tick now, std::deque<MemRequest> &queue,
                   size_t idx);

    /** Requests inspected for out-of-order row hits. */
    static constexpr size_t reorderWindow = 48;

    DramParams params_;
    BackingStore store_;
    /** Vault/channel index published with trace events. */
    uint16_t traceId_;

    std::deque<MemRequest> queue_;
    std::deque<MemRequest> writeQueue_;
    /** Reference counts of buffered write addresses (RAW guard). */
    std::unordered_map<Addr, unsigned> bufferedWrites_;
    /** Currently draining the write buffer. */
    bool drainWrites_ = false;
    /** A queued read depends on a buffered write: drain fully. */
    bool hazardDrain_ = false;
    std::deque<MemResponse> responses_;

    /**
     * Tick of the last tick() call; stamps requests accepted between
     * channel ticks for the residency histogram (at most one tick
     * stale, which is noise at histogram granularity).
     */
    Tick now_ = 0;

    /** Fractional word credit accumulated from the channel rate. */
    double credit_ = 0.0;
    /** Words already emitted in the current burst. */
    unsigned burstWords_ = 0;
    /** Remaining tCCD gap ticks before the next burst may start. */
    Tick gapRemaining_ = 0;
    /** Force a lookahead re-scan on the next tick. */
    bool lookaheadArmed_ = true;
    /** Activations in flight (skips the promotion scan when 0). */
    unsigned pendingActivations_ = 0;
    /** Event-engine scheduler hook (null under the legacy loop). */
    WakeSink *sink_ = nullptr;

    /** Per-bank open row (UINT64_MAX = closed). */
    std::vector<uint64_t> openRow_;
    /** Per-bank tick at which a pending activation completes. */
    std::vector<Tick> bankReady_;
    /** Per-bank row being activated (valid while now < bankReady_). */
    std::vector<uint64_t> pendingRow_;

    unsigned rowElements_;

    StatGroup statGroup_;
    Stat statReads_;
    Stat statWrites_;
    Stat statBits_;
    Stat statBursts_;
    Stat statRowHits_;
    Stat statRowMisses_;
    Stat statBusyTicks_;
    Stat statStallTicks_;
    Stat statIdleTicks_;
    /** Ticks a request waited in the queue before service. */
    Histogram histQueueResidency_;
};

} // namespace neurocube

#endif // NEUROCUBE_DRAM_MEMORY_CHANNEL_HH
