/**
 * @file
 * Timing and energy parameters for the 3D-stacked and planar DRAM
 * technologies compared in Table I of the paper.
 *
 * The simulator's reference clock is the HMC vault I/O clock
 * (2.5 GHz DDR = 5 GHz words/s, paper Section VI). All latencies are
 * expressed in reference-clock ticks; channels slower than the
 * reference clock (e.g. DDR3) deliver words at a fractional rate.
 */

#ifndef NEUROCUBE_DRAM_DRAM_PARAMS_HH
#define NEUROCUBE_DRAM_DRAM_PARAMS_HH

#include <cstdint>
#include <string>

#include "common/types.hh"

namespace neurocube
{

/** Bytes per stored element (16-bit Q1.7.8 state or weight). */
constexpr unsigned bytesPerElement = 2;

/**
 * Parameters of one memory interface technology (one column of
 * Table I) plus the micro-timing the cycle model needs.
 */
struct DramParams
{
    /** Human-readable technology name. */
    std::string name = "HMC-Int";

    /** Number of independent channels (vaults for HMC). */
    unsigned numChannels = 16;

    /** Word size moved per channel I/O transfer, in bits. */
    unsigned wordBits = 32;

    /** Peak per-channel bandwidth in GB/s (Table I). */
    double peakBandwidthGBps = 10.0;

    /** Activation latency tRCD + tCL in nanoseconds. */
    double activateNs = 27.5;

    /** Words transferred back-to-back in one burst. */
    unsigned burstLength = 8;

    /** Gap between consecutive bursts (tCCD) in reference ticks. */
    Tick burstGapTicks = 1;

    /** DRAM row (page) size in bytes. */
    unsigned rowBytes = 2048;

    /** Banks per channel (enables activate/transfer overlap). */
    unsigned banksPerChannel = 16;

    /** Access energy in pJ per bit (Table I). */
    double energyPjPerBit = 3.7;

    /**
     * Ablation: let the vault controller read an element once and
     * broadcast it into consecutive same-address requests (shared
     * kernel weights, shared FC states) instead of re-reading it.
     * Off by default — the paper charges two element reads per MAC
     * operation (the 160 GOPs/s ceiling), i.e. no broadcast.
     */
    bool broadcastDuplicateReads = false;

    /** Operating voltage in volts (Table I). */
    double voltage = 1.2;

    /** 16-bit elements per I/O word. */
    unsigned
    elementsPerWord() const
    {
        return wordBits / (8 * bytesPerElement);
    }

    /** 16-bit elements per DRAM row. */
    unsigned
    elementsPerRow() const
    {
        return rowBytes / bytesPerElement;
    }

    /** Words the channel can emit per reference tick (may be < 1). */
    double
    wordsPerTick() const
    {
        double bytes_per_sec = peakBandwidthGBps * 1.0e9;
        double words_per_sec = bytes_per_sec / (wordBits / 8.0);
        return words_per_sec / referenceClockHz;
    }

    /** Activation latency in reference ticks (rounded up). */
    Tick
    activateTicks() const
    {
        return static_cast<Tick>(activateNs * 1.0e-9 * referenceClockHz
                                 + 0.999999);
    }

    /** The HMC internal (vault-to-logic-die) interface, Table I. */
    static DramParams hmcInternal();
    /** The HMC external-link interface, Table I. */
    static DramParams hmcExternal();
    /** Dual-channel DDR3, Table I. */
    static DramParams ddr3();
    /** Wide I/O 2 mobile interface, Table I. */
    static DramParams wideIo2();
    /** High Bandwidth Memory, Table I. */
    static DramParams hbm();
};

} // namespace neurocube

#endif // NEUROCUBE_DRAM_DRAM_PARAMS_HH
