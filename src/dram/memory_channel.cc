#include "dram/memory_channel.hh"

#include <limits>

#include "common/logging.hh"
#include "trace/energy.hh"
#include "trace/metrics.hh"
#include "trace/spatial.hh"

namespace neurocube
{

namespace
{
constexpr uint64_t noRow = std::numeric_limits<uint64_t>::max();
/** Queue entries scanned when looking for rows to pre-activate. */
constexpr size_t lookaheadWindow = 48;
} // namespace

MemoryChannel::MemoryChannel(const DramParams &params, StatGroup *parent,
                             const std::string &name, uint16_t trace_id)
    : params_(params), traceId_(trace_id),
      openRow_(params.banksPerChannel, noRow),
      bankReady_(params.banksPerChannel, 0),
      pendingRow_(params.banksPerChannel, noRow),
      rowElements_(params.elementsPerRow()),
      statGroup_(parent, name),
      statReads_(&statGroup_, "reads", "element reads serviced"),
      statWrites_(&statGroup_, "writes", "element writes serviced"),
      statBits_(&statGroup_, "bits", "bits transferred"),
      statBursts_(&statGroup_, "bursts", "bursts issued"),
      statRowHits_(&statGroup_, "rowHits", "word services hitting an open row"),
      statRowMisses_(&statGroup_, "rowMisses", "row activations performed"),
      statBusyTicks_(&statGroup_, "busyTicks", "ticks transferring data"),
      statStallTicks_(&statGroup_, "stallTicks",
                      "ticks stalled on activation/gap with work queued"),
      statIdleTicks_(&statGroup_, "idleTicks", "ticks with empty queue"),
      histQueueResidency_(&statGroup_, "queueResidency",
                          "ticks a request waited before service")
{
    nc_assert(params_.banksPerChannel > 0, "channel needs >= 1 bank");
    nc_assert(params_.burstLength > 0, "burst length must be positive");
}

void
MemoryChannel::enqueue(const MemRequest &req)
{
    nc_assert(canAccept(), "enqueue on a full channel queue");
    // Catch a sleeping channel up before the stamp below: skipTicks()
    // leaves now_ one tick stale, exactly as the legacy loop's phase
    // order does, so the residency stamp matches bit for bit.
    if (sink_ != nullptr)
        sink_->onChannelEnqueue(traceId_);
    MemRequest stamped = req;
    stamped.enqueueTick = now_;
    stamped.row = rowOf(req.addr);
    stamped.bank = bankOfRow(stamped.row);
    if (req.write) {
        writeQueue_.push_back(stamped);
        ++bufferedWrites_[req.addr];
        NC_TRACE(TraceComponent::Vault, traceId_,
                 TraceEventType::DramQueueDepth, 1,
                 writeQueue_.size());
    } else {
        if (!bufferedWrites_.empty()
            && bufferedWrites_.count(req.addr)) {
            // The read depends on a buffered write: drain the write
            // buffer before any further reads are serviced.
            hazardDrain_ = true;
        }
        queue_.push_back(stamped);
        NC_TRACE(TraceComponent::Vault, traceId_,
                 TraceEventType::DramQueueDepth, 0, queue_.size());
    }
}

void
MemoryChannel::resetTiming()
{
    now_ = 0;
    credit_ = 0.0;
    burstWords_ = 0;
    gapRemaining_ = 0;
    for (auto &row : openRow_)
        row = noRow;
    for (auto &ready : bankReady_)
        ready = 0;
    for (auto &row : pendingRow_)
        row = noRow;
    drainWrites_ = false;
    lookaheadArmed_ = true;
    pendingActivations_ = 0;
}

void
MemoryChannel::lookaheadActivate(Tick now,
                                 const std::deque<MemRequest> &queue)
{
    size_t window = std::min(queue.size(), lookaheadWindow);
    uint64_t prev_row = noRow;
    unsigned distinct_rows = 0;
    uint32_t banks_needed = 0; // banks earlier queue entries rely on
    for (size_t i = 0; i < window && distinct_rows < 6; ++i) {
        uint64_t row = queue[i].row;
        if (row == prev_row)
            continue; // streaming within one row
        prev_row = row;
        ++distinct_rows;
        unsigned bank = queue[i].bank;
        uint32_t bank_bit = 1u << (bank % 32);
        bool activating = now < bankReady_[bank];
        bool open = !activating && openRow_[bank] == row;
        if (!activating && !open && !(banks_needed & bank_bit)) {
            // Safe to pre-activate: no earlier entry still needs the
            // row currently open in this bank.
            pendingRow_[bank] = row;
            bankReady_[bank] = now + params_.activateTicks();
            ++pendingActivations_;
            statRowMisses_ += 1;
            NC_TRACE(TraceComponent::Vault, traceId_,
                     TraceEventType::DramRowActivate, bank, row);
            // One activation start per tick (command-bus limit).
            return;
        }
        banks_needed |= bank_bit;
    }
}

size_t
MemoryChannel::pickServeIndex(Tick now) const
{
    size_t window = std::min(queue_.size(), reorderWindow);
    for (size_t i = 0; i < window; ++i) {
        const MemRequest &req = queue_[i];
        bool open = now >= bankReady_[req.bank]
                 && openRow_[req.bank] == req.row;
        if (open)
            return i;
    }
    return SIZE_MAX;
}

void
MemoryChannel::serveWord(Tick now, std::deque<MemRequest> &queue,
                         size_t idx)
{
    const uint64_t row = queue[idx].row;
    const bool is_write = queue[idx].write;

    // Pack up to a word's worth of same-row, same-direction
    // contiguous requests. With the broadcast ablation enabled,
    // requests repeating the previous address ride for free: the
    // vault controller reads the element once and the PNG broadcasts
    // it into multiple packets.
    unsigned packed = 0;
    size_t taken = 0;
    Addr prev_addr = ~Addr(0);
    while (idx + taken < queue.size()) {
        const MemRequest &req = queue[idx + taken];
        if (req.write != is_write || req.row != row)
            break;
        bool duplicate = params_.broadcastDuplicateReads && !is_write
                      && req.addr == prev_addr;
        if (!duplicate && packed >= params_.elementsPerWord())
            break;
        histQueueResidency_.sample(
            now >= req.enqueueTick ? now - req.enqueueTick : 0);
        if (is_write) {
            store_.write(req.addr, req.data);
            auto it = bufferedWrites_.find(req.addr);
            if (it != bufferedWrites_.end() && --it->second == 0)
                bufferedWrites_.erase(it);
            statWrites_ += 1;
        } else {
            responses_.push_back({req.addr, store_.read(req.addr),
                                  req.tag});
            statReads_ += 1;
        }
        if (!duplicate) {
            statBits_ += 8 * bytesPerElement;
            ++packed;
        }
        prev_addr = req.addr;
        ++taken;
    }

    queue.erase(queue.begin() + long(idx),
                queue.begin() + long(idx + taken));

    // One controller transaction moved `packed` elements' bits over
    // the DRAM interface (duplicates ride the broadcast for free).
    NC_ENERGY_EVENT(EnergyEventKind::VaultXact, traceId_, 1);
    NC_ENERGY_EVENT(EnergyEventKind::DramBit, traceId_,
                    uint64_t(packed) * 8 * bytesPerElement);
    // Same expression as the DramBit publish divided by 8, so the
    // per-vault byte heatmap sums to EnergyCounts[DramBit]/8 exactly
    // (tests/test_spatial.cc asserts the identity).
    NC_SPATIAL_EVENT(SpatialCounter::VaultByte, traceId_,
                     uint64_t(packed) * bytesPerElement);
    NC_TRACE(TraceComponent::Vault, traceId_,
             TraceEventType::DramWord, is_write ? 1 : 0,
             uint64_t(packed) * 8 * bytesPerElement);
    NC_TRACE(TraceComponent::Vault, traceId_,
             TraceEventType::DramQueueDepth, is_write ? 1 : 0,
             queue.size());

    credit_ -= 1.0;
    statBusyTicks_ += 1;
    statRowHits_ += 1;
    ++burstWords_;
    if (burstWords_ >= params_.burstLength) {
        burstWords_ = 0;
        gapRemaining_ = params_.burstGapTicks;
        statBursts_ += 1;
    }

    // Service may unblock the PNG (a freed queue slot or a fresh
    // read response).
    if (sink_ != nullptr)
        sink_->onChannelServe(traceId_);
}

void
MemoryChannel::tick(Tick now)
{
    now_ = now;

    // Queue-depth integral, once per executed channel cycle. The
    // event engine only skips this channel while both queues are
    // empty, so skipped cycles would contribute zero and the
    // integral stays engine-invariant.
    NC_SPATIAL_EVENT(SpatialCounter::VaultQueue, traceId_,
                     queue_.size() + writeQueue_.size());

    // Promote completed activations to open rows.
    if (pendingActivations_ > 0) {
        for (unsigned b = 0; b < params_.banksPerChannel; ++b) {
            if (pendingRow_[b] != noRow && now >= bankReady_[b]) {
                openRow_[b] = pendingRow_[b];
                pendingRow_[b] = noRow;
                --pendingActivations_;
            }
        }
    }

    credit_ += params_.wordsPerTick();
    if (credit_ > 4.0)
        credit_ = 4.0;

    if (queue_.empty() && writeQueue_.empty()) {
        statIdleTicks_ += 1;
        burstWords_ = 0;
        lookaheadArmed_ = true;
        if (gapRemaining_ > 0)
            --gapRemaining_;
        NC_METRIC_CYCLE(TraceComponent::Vault, traceId_,
                        StallClass::Idle);
        return;
    }

    // Write-drain policy: drain on a RAW hazard, when the buffer
    // passes the high watermark, or when there are no reads to
    // serve; stop at the low watermark (or empty on a hazard).
    if (drainWrites_) {
        if (writeQueue_.empty()
            || (!hazardDrain_ && queue_.size() > 0
                && writeQueue_.size() <= writeDrainLow)) {
            drainWrites_ = false;
            hazardDrain_ = writeQueue_.empty() ? false : hazardDrain_;
            lookaheadArmed_ = true;
        }
    } else if (hazardDrain_ || writeQueue_.size() >= writeDrainHigh
               || queue_.empty()) {
        drainWrites_ = !writeQueue_.empty();
        lookaheadArmed_ = true;
    }
    if (writeQueue_.empty())
        hazardDrain_ = false;

    // Lookahead only needs to re-scan at burst boundaries or while
    // stalled; in the middle of a burst nothing it could start has
    // changed (one activation start per boundary keeps the command
    // bus honest anyway).
    if (burstWords_ == 0 || lookaheadArmed_) {
        lookaheadActivate(now, drainWrites_ ? writeQueue_ : queue_);
        lookaheadArmed_ = false;
    }

    if (gapRemaining_ > 0) {
        --gapRemaining_;
        statStallTicks_ += 1;
        NC_TRACE(TraceComponent::Vault, traceId_,
                 TraceEventType::DramStall,
                 uint32_t(DramStallReason::BurstGap), gapRemaining_);
        NC_METRIC_CYCLE(TraceComponent::Vault, traceId_,
                        StallClass::StallDram);
        return;
    }

    if (credit_ < 1.0) {
        statStallTicks_ += 1;
        NC_TRACE(TraceComponent::Vault, traceId_,
                 TraceEventType::DramStall,
                 uint32_t(DramStallReason::Bandwidth), 0);
        NC_METRIC_CYCLE(TraceComponent::Vault, traceId_,
                        StallClass::StallDram);
        return;
    }

    if (drainWrites_) {
        // Writes drain strictly in order.
        uint64_t row = rowOf(writeQueue_.front().addr);
        unsigned bank = bankOf(writeQueue_.front().addr);
        if (now >= bankReady_[bank] && openRow_[bank] == row) {
            serveWord(now, writeQueue_, 0);
            NC_METRIC_CYCLE(TraceComponent::Vault, traceId_,
                            StallClass::Busy);
        } else {
            statStallTicks_ += 1;
            NC_TRACE(TraceComponent::Vault, traceId_,
                     TraceEventType::DramStall,
                     uint32_t(DramStallReason::RowConflict), bank);
            NC_METRIC_CYCLE(TraceComponent::Vault, traceId_,
                            StallClass::StallDram);
            lookaheadArmed_ = true;
        }
        return;
    }

    if (responses_.size() >= responseBacklogLimit) {
        // Downstream (PNG / NoC) is not draining reads: stall so
        // the backpressure reaches the DRAM timing.
        statStallTicks_ += 1;
        NC_TRACE(TraceComponent::Vault, traceId_,
                 TraceEventType::DramStall,
                 uint32_t(DramStallReason::Backpressure),
                 responses_.size());
        NC_METRIC_CYCLE(TraceComponent::Vault, traceId_,
                        StallClass::StallNocCredit);
        lookaheadArmed_ = true;
        return;
    }
    size_t idx = pickServeIndex(now);
    if (idx == SIZE_MAX) {
        statStallTicks_ += 1;
        NC_TRACE(TraceComponent::Vault, traceId_,
                 TraceEventType::DramStall,
                 uint32_t(DramStallReason::RowConflict),
                 queue_.size());
        NC_METRIC_CYCLE(TraceComponent::Vault, traceId_,
                        StallClass::StallDram);
        lookaheadArmed_ = true; // stalled: re-scan next tick
    } else {
        serveWord(now, queue_, idx);
        NC_METRIC_CYCLE(TraceComponent::Vault, traceId_,
                        StallClass::Busy);
    }
}

void
MemoryChannel::skipTicks(Tick from, Tick to)
{
    nc_assert(queue_.empty() && writeQueue_.empty(),
              "channel skipTicks with queued work");
    nc_assert(from < to, "empty channel skip window");
    const uint64_t n = to - from;

    // Activations whose latency elapsed inside the window complete,
    // exactly as the per-tick promotion loop would have done.
    if (pendingActivations_ > 0) {
        for (unsigned b = 0; b < params_.banksPerChannel; ++b) {
            if (pendingRow_[b] != noRow && bankReady_[b] < to) {
                openRow_[b] = pendingRow_[b];
                pendingRow_[b] = noRow;
                --pendingActivations_;
            }
        }
    }

    // Credit accrues tick by tick under a clamp. The clamp makes the
    // iteration a fixed point at exactly 4.0, so stop there; do NOT
    // bulk-multiply (n iterated adds != n * rate in floating point).
    const double rate = params_.wordsPerTick();
    for (uint64_t i = 0; i < n; ++i) {
        credit_ += rate;
        if (credit_ > 4.0)
            credit_ = 4.0;
        if (credit_ == 4.0)
            break;
    }

    burstWords_ = 0;
    lookaheadArmed_ = true;
    gapRemaining_ = gapRemaining_ > Tick(n) ? gapRemaining_ - Tick(n)
                                            : 0;
    statIdleTicks_ += n;
    NC_METRIC_CYCLES(TraceComponent::Vault, traceId_,
                     StallClass::Idle, n);
    // The legacy loop would have left now_ at the last idle tick;
    // keep the stale stamp so enqueue timestamps match.
    now_ = to - 1;
}

} // namespace neurocube
