/**
 * @file
 * Functional contents of one DRAM vault plus a bump region allocator.
 *
 * Addresses are in units of 16-bit elements (the granularity of
 * neuron states and synaptic weights, paper Section III-B). The layer
 * program compiler allocates one region per data structure (input
 * states, weights, output states) exactly as the host would lay out
 * the network in the cube before programming the PNGs (Section IV-C).
 */

#ifndef NEUROCUBE_DRAM_BACKING_STORE_HH
#define NEUROCUBE_DRAM_BACKING_STORE_HH

#include <cstddef>
#include <vector>

#include "common/fixed_point.hh"
#include "common/types.hh"
#include "dram/dram_params.hh"

namespace neurocube
{

/** A contiguous allocation inside one vault. */
struct Region
{
    /** First element address of the region. */
    Addr base = 0;
    /** Length in 16-bit elements. */
    uint64_t elements = 0;

    /** One past the last element address. */
    Addr end() const { return base + elements; }
    /** True when addr falls inside this region. */
    bool
    contains(Addr addr) const
    {
        return addr >= base && addr < end();
    }
};

/**
 * Element-addressable storage for one vault.
 *
 * Grows on demand; the timing model is unaffected by capacity since
 * the paper's networks always fit in the cube (Fig. 1 motivates the
 * HMC precisely because they do not fit on-chip).
 */
class BackingStore
{
  public:
    /** Read one element; unwritten elements read as zero. */
    Fixed
    read(Addr addr) const
    {
        if (addr >= data_.size())
            return Fixed();
        return data_[addr];
    }

    /** Write one element, growing the store as needed. */
    void
    write(Addr addr, Fixed value)
    {
        if (addr >= data_.size())
            data_.resize(addr + 1);
        data_[addr] = value;
    }

    /**
     * Allocate a fresh region of the given element count.
     *
     * @param elements region length in 16-bit elements
     * @return the allocated region
     */
    Region
    allocate(uint64_t elements)
    {
        Region region{allocTop_, elements};
        allocTop_ += elements;
        return region;
    }

    /** Total elements allocated so far (footprint in elements). */
    uint64_t allocatedElements() const { return allocTop_; }

    /** Footprint in bytes. */
    uint64_t
    allocatedBytes() const
    {
        return allocTop_ * bytesPerElement;
    }

    /** Drop all contents and allocations. */
    void
    clear()
    {
        data_.clear();
        allocTop_ = 0;
    }

  private:
    std::vector<Fixed> data_;
    Addr allocTop_ = 0;
};

} // namespace neurocube

#endif // NEUROCUBE_DRAM_BACKING_STORE_HH
