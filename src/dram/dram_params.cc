#include "dram/dram_params.hh"

namespace neurocube
{

DramParams
DramParams::hmcInternal()
{
    DramParams p;
    p.name = "HMC-Int";
    p.numChannels = 16;
    p.wordBits = 32;
    // Table I rates HMC-Int at 10 GB/s per channel, but the paper's
    // simulator (Section VI) pushes one 32-bit word per 5 GHz cycle
    // per vault in burst mode, i.e. 20 GB/s; the throughput numbers
    // (132.4 GOPs/s out of a 160 GOPs/s ceiling) are only reachable
    // at the burst-mode rate, so that is what the model uses.
    p.peakBandwidthGBps = 20.0;
    p.activateNs = 27.5;
    p.energyPjPerBit = 3.7;
    p.voltage = 1.2;
    return p;
}

DramParams
DramParams::hmcExternal()
{
    DramParams p;
    p.name = "HMC-Ext";
    p.numChannels = 8;
    p.wordBits = 32;
    p.peakBandwidthGBps = 40.0;
    p.activateNs = 27.5;
    p.energyPjPerBit = 10.0;
    p.voltage = 1.2;
    return p;
}

DramParams
DramParams::ddr3()
{
    DramParams p;
    p.name = "DDR3";
    p.numChannels = 2;
    p.wordBits = 64;
    p.peakBandwidthGBps = 12.8;
    p.activateNs = 25.0;
    p.rowBytes = 8192;
    p.energyPjPerBit = 70.0;
    p.voltage = 1.5;
    return p;
}

DramParams
DramParams::wideIo2()
{
    DramParams p;
    p.name = "WideIO2";
    p.numChannels = 8;
    p.wordBits = 128;
    p.peakBandwidthGBps = 6.4;
    p.activateNs = 27.5;
    p.energyPjPerBit = 6.0;
    p.voltage = 1.1;
    return p;
}

DramParams
DramParams::hbm()
{
    DramParams p;
    p.name = "HBM";
    p.numChannels = 8;
    p.wordBits = 128;
    p.peakBandwidthGBps = 16.0;
    p.activateNs = 27.5;
    p.energyPjPerBit = 6.0;
    p.voltage = 1.2;
    return p;
}

} // namespace neurocube
