/**
 * @file
 * Bounded request queue with admission control.
 *
 * Open-loop serving needs a finite queue: without one, an offered
 * load past saturation grows the backlog (and every later request's
 * latency) without bound. The queue admits requests up to a
 * configured depth and rejects the rest, counting both outcomes, and
 * samples its depth into a histogram at every transition so a run
 * reports queue-depth statistics alongside latency percentiles.
 *
 * Every transition is also published on the trace bus as a
 * ServeQueueDepth event (arrive/dispatch/drop), which the Chrome
 * exporter turns into a serveQueue counter track and the CSV
 * exporter into the serve_queue_depth column.
 */

#ifndef NEUROCUBE_SERVING_REQUEST_QUEUE_HH
#define NEUROCUBE_SERVING_REQUEST_QUEUE_HH

#include <cstdint>
#include <deque>

#include "common/stats.hh"
#include "common/types.hh"

namespace neurocube
{

/** One inference request in flight through the serving frontend. */
struct Request
{
    /** Dense request id (index into the arrival schedule). */
    uint64_t id = 0;
    /** Absolute arrival tick (cube clock domain). */
    Tick arrival = 0;
};

/** FIFO request queue with a hard depth bound. */
class RequestQueue
{
  public:
    /** @param depth admission bound (offers beyond it are dropped) */
    explicit RequestQueue(size_t depth);

    /**
     * Offer a request at time @p now. Admitted when the queue has
     * room; dropped (and counted) otherwise.
     *
     * @return true when the request was admitted
     */
    bool offer(const Request &request, Tick now);

    /** Pop the oldest request into a dispatching batch. */
    Request pop(Tick now);

    /** Requests currently queued. */
    size_t size() const { return queue_.size(); }
    /** True when no request is queued. */
    bool empty() const { return queue_.empty(); }
    /** Arrival tick of the oldest queued request. @pre !empty() */
    Tick frontArrival() const { return queue_.front().arrival; }

    /** Requests admitted so far. */
    uint64_t admitted() const { return admitted_; }
    /** Requests rejected at a full queue so far. */
    uint64_t dropped() const { return dropped_; }

    /** Queue depth sampled after every transition. */
    const Histogram &depthHistogram() const { return depth_; }

  private:
    size_t depth_limit_;
    std::deque<Request> queue_;
    uint64_t admitted_ = 0;
    uint64_t dropped_ = 0;
    Histogram depth_;
};

} // namespace neurocube

#endif // NEUROCUBE_SERVING_REQUEST_QUEUE_HH
