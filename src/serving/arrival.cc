#include "serving/arrival.hh"

#include <cmath>
#include <fstream>
#include <sstream>

#include "common/logging.hh"
#include "common/rng.hh"

namespace neurocube
{

ArrivalSchedule
poissonArrivals(size_t count, double meanGapTicks, uint64_t seed)
{
    nc_assert(meanGapTicks > 0.0, "mean arrival gap must be positive");
    Rng rng(seed);
    ArrivalSchedule schedule;
    schedule.ticks.reserve(count);
    double at = 0.0;
    for (size_t i = 0; i < count; ++i) {
        // Exponential inter-arrival gap. 1 - uniform() is in (0, 1],
        // so the log never sees zero. Accumulate in double and round
        // once per arrival to keep long schedules drift-free.
        double u = 1.0 - rng.uniform();
        at += -std::log(u) * meanGapTicks;
        schedule.ticks.push_back(Tick(std::llround(at)));
    }
    return schedule;
}

ArrivalSchedule
parseArrivalTrace(std::istream &in)
{
    ArrivalSchedule schedule;
    std::string line;
    size_t lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        size_t hash = line.find('#');
        if (hash != std::string::npos)
            line.erase(hash);
        std::istringstream fields(line);
        unsigned long long tick;
        if (!(fields >> tick))
            continue; // blank or comment-only line
        std::string rest;
        nc_assert(!(fields >> rest),
                  "arrival trace line %zu: trailing junk '%s'", lineno,
                  rest.c_str());
        nc_assert(schedule.ticks.empty()
                      || Tick(tick) >= schedule.ticks.back(),
                  "arrival trace line %zu: tick %llu goes backwards",
                  lineno, tick);
        schedule.ticks.push_back(Tick(tick));
    }
    return schedule;
}

ArrivalSchedule
loadArrivalTrace(const std::string &path)
{
    std::ifstream in(path);
    if (!in.is_open())
        nc_fatal("cannot open arrival trace '%s'", path.c_str());
    return parseArrivalTrace(in);
}

void
writeArrivalTrace(std::ostream &out, const ArrivalSchedule &schedule)
{
    out << "# arrival ticks relative to run start, one per line\n";
    for (Tick tick : schedule.ticks)
        out << tick << "\n";
}

} // namespace neurocube
