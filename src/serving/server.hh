/**
 * @file
 * The serving simulator: an open-loop frontend around the cube.
 *
 * Drives one Neurocube through a request-arrival schedule as an
 * inference server would: requests arrive on their own clock, pass
 * admission control into a bounded queue (request_queue.hh), and a
 * dynamic-batching scheduler (scheduler.hh) launches them through
 * runForwardBatch, re-partitioning the mesh into 1/2/4 vault-group
 * lanes as queue depth shifts.
 *
 * Time model: the serving frontend shares the cube's reference
 * clock. Between batches the machine is quiescent, so the frontend
 * fast-forwards it (Neurocube::advanceIdleTo) to the next arrival or
 * dispatch deadline; during a batch the cube's cycle loop advances
 * time as usual. A request's latency is completion minus arrival on
 * that one clock, and every request in a batch completes when the
 * batch does (the lanes share one lockstep cycle loop).
 *
 * Determinism: the schedule is fixed up front, admission decisions
 * depend only on queue occupancy (which changes only at arrivals and
 * dispatches), and the cube itself is cycle-deterministic — so one
 * (seed, schedule, network) triple always produces bit-identical
 * per-request latencies.
 */

#ifndef NEUROCUBE_SERVING_SERVER_HH
#define NEUROCUBE_SERVING_SERVER_HH

#include <cstdint>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "core/neurocube.hh"
#include "serving/arrival.hh"
#include "serving/request_queue.hh"
#include "serving/scheduler.hh"

namespace neurocube
{

/** Serving-frontend knobs. */
struct ServingConfig
{
    /** Request-queue admission bound. */
    size_t queueDepth = 64;
    /** Dispatch policy. */
    ServeSchedulerConfig scheduler;
    /**
     * When set, the run writes one JSON object per offered request
     * (the RequestRecord span: enqueue/admit/dispatch/complete
     * timestamps) to this path at the end of run(). Joinable with
     * the SLO report by request id; readRequestSpansJsonl round-
     * trips the file (serving/spans.hh).
     */
    std::string spansJsonlPath;
};

/** Lifecycle of one offered request (its span). */
struct RequestRecord
{
    /** Dense request id (index into the arrival schedule). */
    uint64_t id = 0;
    /** Absolute arrival (enqueue-attempt) tick. */
    Tick arrival = 0;
    /**
     * Absolute admission tick: equals arrival for an admitted
     * request (admission control decides at the arrival tick), 0
     * when the request was dropped at a full queue.
     */
    Tick admit = 0;
    /** Absolute dispatch tick (0 when dropped). */
    Tick dispatch = 0;
    /** Absolute completion tick (0 when dropped). */
    Tick completion = 0;
    /** 1-based ordinal of the batch that served it (0 if dropped). */
    uint64_t batch = 0;
    /** Lane count of the batch that served it (0 when dropped). */
    unsigned lanes = 0;
    /** True when admission control rejected the request. */
    bool dropped = false;

    /** End-to-end latency in ticks (0 for a dropped request). */
    Tick
    latency() const
    {
        return dropped ? 0 : completion - arrival;
    }

    /** Ticks spent queued before dispatch (0 for a dropped one). */
    Tick
    queueTicks() const
    {
        return dropped ? 0 : dispatch - arrival;
    }

    /** Ticks from dispatch to completion (0 for a dropped one). */
    Tick
    serviceTicks() const
    {
        return dropped ? 0 : completion - dispatch;
    }
};

/** Everything one serving run produced. */
struct ServingResult
{
    /** Per-request lifecycle, in arrival order. */
    std::vector<RequestRecord> requests;

    /** Requests completed. */
    uint64_t served = 0;
    /** Requests rejected at a full queue. */
    uint64_t dropped = 0;
    /** Batches dispatched. */
    uint64_t batches = 0;

    /** Serving-run span: run start to last completion, ticks. */
    Tick makespan = 0;
    /** Ticks the cube spent executing batches (vs idle/waiting). */
    Tick busyCycles = 0;
    /** Last arrival tick relative to run start (offered-load span). */
    Tick arrivalSpan = 0;

    /** End-to-end latency distribution of the served requests. */
    Histogram latency{nullptr, "serveLatency",
                      "request end-to-end latency (ticks)"};
    /** Queue depth sampled at every queue transition. */
    Histogram queueDepth{nullptr, "serveQueueDepth",
                         "request queue depth"};

    /**
     * Activity counts accumulated over every batch (energy per
     * request). valid only when the cube ran with energy accounting.
     */
    EnergyCounts energy;

    /**
     * Machine-level stall attribution over the run's executed
     * cycles (idle gaps are fast-forwarded, not ticked, so they do
     * not appear here). valid only when the cube ran with metrics
     * enabled — identifies the dominant in-batch stall class, e.g.
     * what the machine is bound by past the saturation knee.
     */
    BottleneckReport bottleneck;

    /**
     * Spatial counter delta over the whole run (heatmap export) and
     * the machine shape keying it. valid()/populated only when the
     * cube ran with spatial accounting enabled.
     */
    SpatialSnapshot spatial;
    SpatialTopology spatialTopology;
};

/** Open-loop serving frontend for one Neurocube. */
class ServingSimulator
{
  public:
    /**
     * @param cube the machine; must have a network loaded, and its
     *        batching preconditions must hold (identity channel
     *        attachment) for lane counts above 1
     * @param config frontend knobs
     */
    ServingSimulator(Neurocube &cube, const ServingConfig &config);

    /**
     * Serve one arrival schedule to completion (every admitted
     * request finished, every offered request accounted). All
     * requests execute the same @p input, so lane outputs stay
     * bit-exact with a sequential run of that input.
     */
    ServingResult run(const ArrivalSchedule &arrivals,
                      const Tensor &input);

    /** The frontend knobs. */
    const ServingConfig &config() const { return config_; }

  private:
    Neurocube &cube_;
    ServingConfig config_;
};

} // namespace neurocube

#endif // NEUROCUBE_SERVING_SERVER_HH
