#include "serving/slo.hh"

#include <cstdio>
#include <sstream>

#include "power/activity_energy.hh"

namespace neurocube
{

ServingReport
buildServingReport(const ServingResult &result)
{
    ServingReport report;
    report.offered = result.requests.size();
    report.served = result.served;
    report.dropped = result.dropped;
    report.batches = result.batches;
    report.meanBatch = result.batches
                           ? double(result.served)
                                 / double(result.batches)
                           : 0.0;

    if (result.arrivalSpan > 0 && report.offered >= 2) {
        report.offeredPerSec = double(report.offered - 1)
                             / (double(result.arrivalSpan)
                                / referenceClockHz);
    }
    if (result.makespan > 0) {
        report.goodputPerSec =
            double(report.served)
            / (double(result.makespan) / referenceClockHz);
        report.utilization =
            double(result.busyCycles) / double(result.makespan);
    }
    report.dropRate = report.offered
                          ? double(report.dropped)
                                / double(report.offered)
                          : 0.0;

    report.p50Ticks = result.latency.p50();
    report.p99Ticks = result.latency.p99();
    report.p999Ticks = result.latency.p999();
    report.meanTicks = result.latency.mean();
    report.maxTicks = result.latency.max();

    report.meanQueueDepth = result.queueDepth.mean();
    report.maxQueueDepth = result.queueDepth.max();

    report.makespan = result.makespan;
    report.busyCycles = result.busyCycles;

    if (result.energy.valid && result.served > 0) {
        ActivityEnergyModel model;
        report.energyPerRequestJ =
            model.price(result.energy).totalJ()
            / double(result.served);
    }
    if (result.bottleneck.valid)
        report.bottleneckLabel = result.bottleneck.label;
    return report;
}

std::string
servingReportJson(const ServingReport &report)
{
    // %.17g round-trips doubles exactly, keeping the file
    // bit-identical across runs of the same build.
    auto num = [](double value) {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.17g", value);
        return std::string(buf);
    };
    std::ostringstream out;
    out << "{"
        << "\"offered\": " << report.offered
        << ", \"served\": " << report.served
        << ", \"dropped\": " << report.dropped
        << ", \"batches\": " << report.batches
        << ", \"mean_batch\": " << num(report.meanBatch)
        << ", \"offered_per_sec\": " << num(report.offeredPerSec)
        << ", \"goodput_per_sec\": " << num(report.goodputPerSec)
        << ", \"drop_rate\": " << num(report.dropRate)
        << ", \"p50_ticks\": " << num(report.p50Ticks)
        << ", \"p99_ticks\": " << num(report.p99Ticks)
        << ", \"p999_ticks\": " << num(report.p999Ticks)
        << ", \"mean_ticks\": " << num(report.meanTicks)
        << ", \"max_ticks\": " << report.maxTicks
        << ", \"queue_depth_mean\": " << num(report.meanQueueDepth)
        << ", \"queue_depth_max\": " << report.maxQueueDepth
        << ", \"total_cycles\": " << report.makespan
        << ", \"busy_cycles\": " << report.busyCycles
        << ", \"utilization\": " << num(report.utilization)
        << ", \"energy_per_request_j\": "
        << num(report.energyPerRequestJ)
        << ", \"bottleneck\": \"" << report.bottleneckLabel << "\""
        << "}";
    return out.str();
}

std::string
servingManifestJson(const RunManifest &manifest,
                    const ServingReport &report, double wall_ms)
{
    auto num = [](double value) {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.17g", value);
        return std::string(buf);
    };
    std::ostringstream out;
    out << "{\"name\":\"" << manifest.name << "\""
        << ",\"git_describe\":\"" << manifest.gitDescribe << "\""
        << ",\"engine\":\"" << manifest.engine << "\""
        << ",\"config_hash\":\"" << manifest.configHash << "\""
        << ",\"quick\":" << (manifest.quick ? "true" : "false")
        << ",\"wall_ms\":" << num(wall_ms) << ",\"report\":"
        << servingReportJson(report) << "}";
    return out.str();
}

std::string
servingMetricsTextfile(const RunManifest &manifest,
                       const ServingReport &report, double wall_ms)
{
    auto num = [](double value) {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.17g", value);
        return std::string(buf);
    };
    const std::string labels = "{run=\"" + manifest.name + "\"}";
    std::ostringstream os;
    os << "# TYPE neurocube_run_info gauge\n";
    os << "neurocube_run_info{run=\"" << manifest.name
       << "\",engine=\"" << manifest.engine << "\",git=\""
       << manifest.gitDescribe << "\",config=\""
       << manifest.configHash << "\",quick=\""
       << (manifest.quick ? "1" : "0") << "\"} 1\n";

    auto gauge = [&os, &labels](const char *name,
                                const std::string &value) {
        os << "# TYPE " << name << " gauge\n";
        os << name << labels << " " << value << "\n";
    };
    gauge("neurocube_serve_offered", std::to_string(report.offered));
    gauge("neurocube_serve_served", std::to_string(report.served));
    gauge("neurocube_serve_dropped", std::to_string(report.dropped));
    gauge("neurocube_serve_batches", std::to_string(report.batches));
    gauge("neurocube_serve_goodput_per_sec",
          num(report.goodputPerSec));
    gauge("neurocube_serve_drop_rate", num(report.dropRate));
    gauge("neurocube_serve_p50_ticks", num(report.p50Ticks));
    gauge("neurocube_serve_p99_ticks", num(report.p99Ticks));
    gauge("neurocube_serve_p999_ticks", num(report.p999Ticks));
    gauge("neurocube_serve_utilization", num(report.utilization));
    gauge("neurocube_serve_total_cycles",
          std::to_string(report.makespan));
    gauge("neurocube_serve_energy_per_request_joules",
          num(report.energyPerRequestJ));
    gauge("neurocube_serve_wall_ms", num(wall_ms));
    return os.str();
}

void
printServingPanel(const ServingReport &report, const char *title)
{
    std::printf("--- %s ---\n", title);
    std::printf("  offered %llu (%.1f req/s), served %llu "
                "(%.1f req/s), dropped %llu (%.1f%%), "
                "%llu batches (mean %.2f)\n",
                (unsigned long long)report.offered,
                report.offeredPerSec,
                (unsigned long long)report.served,
                report.goodputPerSec,
                (unsigned long long)report.dropped,
                100.0 * report.dropRate,
                (unsigned long long)report.batches,
                report.meanBatch);
    std::printf("  latency (Kticks): p50 %.1f, p99 %.1f, p999 %.1f, "
                "mean %.1f, max %.1f\n",
                report.p50Ticks / 1e3, report.p99Ticks / 1e3,
                report.p999Ticks / 1e3, report.meanTicks / 1e3,
                double(report.maxTicks) / 1e3);
    std::printf("  queue depth: mean %.2f, max %llu; utilization "
                "%.1f%% over %.1f Kcycles\n",
                report.meanQueueDepth,
                (unsigned long long)report.maxQueueDepth,
                100.0 * report.utilization,
                double(report.makespan) / 1e3);
    if (report.energyPerRequestJ >= 0.0) {
        std::printf("  energy/request: %.3f mJ\n",
                    report.energyPerRequestJ * 1e3);
    }
    std::printf("  dominant stall class: %s\n",
                report.bottleneckLabel);
}

} // namespace neurocube
