#include "serving/request_queue.hh"

#include "common/logging.hh"
#include "trace/trace.hh"

namespace neurocube
{

RequestQueue::RequestQueue(size_t depth)
    : depth_limit_(depth),
      depth_(nullptr, "serveQueueDepth", "request queue depth")
{
    nc_assert(depth >= 1, "request queue needs depth >= 1");
}

bool
RequestQueue::offer(const Request &request, Tick now)
{
    (void)now;
    if (queue_.size() >= depth_limit_) {
        ++dropped_;
        depth_.sample(queue_.size());
        NC_TRACE(TraceComponent::Sim, 0,
                 TraceEventType::ServeQueueDepth,
                 unsigned(ServeQueueEvent::Drop),
                 uint64_t(queue_.size()));
        return false;
    }
    queue_.push_back(request);
    ++admitted_;
    depth_.sample(queue_.size());
    NC_TRACE(TraceComponent::Sim, 0, TraceEventType::ServeQueueDepth,
             unsigned(ServeQueueEvent::Arrive),
             uint64_t(queue_.size()));
    return true;
}

Request
RequestQueue::pop(Tick now)
{
    (void)now;
    nc_assert(!queue_.empty(), "pop from an empty request queue");
    Request request = queue_.front();
    queue_.pop_front();
    depth_.sample(queue_.size());
    NC_TRACE(TraceComponent::Sim, 0, TraceEventType::ServeQueueDepth,
             unsigned(ServeQueueEvent::Dispatch),
             uint64_t(queue_.size()));
    return request;
}

} // namespace neurocube
