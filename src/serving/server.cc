#include "serving/server.hh"

#include <algorithm>

#include "common/logging.hh"
#include "serving/spans.hh"
#include "trace/metrics.hh"
#include "trace/trace.hh"

namespace neurocube
{

ServingSimulator::ServingSimulator(Neurocube &cube,
                                   const ServingConfig &config)
    : cube_(cube), config_(config)
{
}

ServingResult
ServingSimulator::run(const ArrivalSchedule &arrivals,
                      const Tensor &input)
{
    const size_t n = arrivals.count();
    ServingResult res;
    res.requests.resize(n);
    res.arrivalSpan = arrivals.span();

    RequestQueue queue(config_.queueDepth);
    BatchScheduler scheduler(config_.scheduler);

    const Tick start = cube_.now();

    MetricsRegistry *metrics = cube_.metricsRegistry();
    MetricsSnapshot metrics_before;
    if (metrics)
        metrics_before = metrics->snapshot();

    SpatialRegistry *spatial = cube_.spatialRegistry();
    SpatialSnapshot spatial_before;
    if (spatial)
        spatial_before = cube_.spatialSnapshot();

    // Admit every arrival up to (and including) tick `upto`, in
    // arrival order. Arrivals that land while the cube is busy with
    // a batch are ingested right after it: the queue only drains at
    // dispatches, so the admission decisions are identical either
    // way — only the trace timestamps are stamped back-dated.
    size_t next = 0;
    auto ingest = [&](Tick upto) {
        while (next < n && start + arrivals.ticks[next] <= upto) {
            const Tick at = start + arrivals.ticks[next];
            RequestRecord &rec = res.requests[next];
            rec.id = next;
            rec.arrival = at;
            NC_TRACE_TICK(at);
            if (!queue.offer({next, at}, at)) {
                rec.dropped = true;
                ++res.dropped;
                NC_TRACE(TraceComponent::Sim, 0,
                         TraceEventType::ServeRequestDone,
                         unsigned(next), uint64_t(0));
            } else {
                // Admission decides at the arrival tick, so an
                // admitted request's admit stamp is its arrival.
                rec.admit = at;
            }
            ++next;
        }
    };

    while (next < n || !queue.empty()) {
        ingest(cube_.now());
        if (queue.empty()) {
            if (next >= n)
                break;
            cube_.advanceIdleTo(start + arrivals.ticks[next]);
            ingest(cube_.now());
        }

        unsigned lanes = scheduler.decide(
            queue.size(), queue.frontArrival(), cube_.now());
        if (lanes == 0 && next >= n) {
            // Drain mode: no future arrival can grow this batch, so
            // waiting out the deadline only adds latency.
            lanes = scheduler.laneCountFor(queue.size());
        }
        if (lanes == 0) {
            // Wait for whichever comes first: the next arrival or
            // the oldest request's dispatch deadline. Both are
            // strictly in the future (arrivals <= now are already
            // ingested; an expired deadline decides a dispatch), so
            // the loop always makes progress.
            const Tick deadline = queue.frontArrival()
                                + config_.scheduler.maxWaitTicks;
            const Tick next_arrival = start + arrivals.ticks[next];
            cube_.advanceIdleTo(std::min(deadline, next_arrival));
            continue;
        }

        cube_.setBatchLanes(lanes);
        const Tick dispatch = cube_.now();
        NC_TRACE_TICK(dispatch);
        const unsigned batch_size =
            unsigned(std::min<size_t>(lanes, queue.size()));
        std::vector<uint64_t> ids(batch_size);
        for (unsigned i = 0; i < batch_size; ++i)
            ids[i] = queue.pop(dispatch).id;
        for (uint64_t id : ids) {
            NC_TRACE(TraceComponent::Sim, 0,
                     TraceEventType::ServeRequestDispatch,
                     unsigned(id),
                     uint64_t(dispatch - res.requests[id].arrival));
        }

        std::vector<Tensor> inputs(batch_size, input);
        BatchRunResult batch = cube_.runForwardBatch(inputs);
        const Tick done = cube_.now();

        ++res.batches;
        res.busyCycles += done - dispatch;
        for (const RunResult &lane_run : batch.lanes)
            res.energy += lane_run.energyCounts();

        NC_TRACE_TICK(done);
        for (uint64_t id : ids) {
            RequestRecord &rec = res.requests[id];
            rec.dispatch = dispatch;
            rec.completion = done;
            rec.batch = res.batches;
            rec.lanes = lanes;
            res.latency.sample(done - rec.arrival);
            ++res.served;
            NC_TRACE(TraceComponent::Sim, 0,
                     TraceEventType::ServeRequestDone, unsigned(id),
                     uint64_t(done - rec.arrival));
        }
    }

    res.makespan = cube_.now() - start;
    res.queueDepth = queue.depthHistogram();
    if (metrics) {
        res.bottleneck = buildBottleneckReport(
            metrics->snapshot().delta(metrics_before));
    }
    if (spatial) {
        res.spatial = cube_.spatialSnapshot().delta(spatial_before);
        res.spatialTopology = cube_.spatialTopology();
    }
    if (!config_.spansJsonlPath.empty())
        writeRequestSpansJsonl(config_.spansJsonlPath, res);
    return res;
}

} // namespace neurocube
