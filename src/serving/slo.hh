/**
 * @file
 * SLO reporting: turn a serving run into headline service metrics.
 *
 * Condenses a ServingResult into the numbers an inference-serving
 * evaluation reports: offered load vs goodput (the saturation knee),
 * tail-latency percentiles (p50/p99/p999) from the latency
 * histogram, drop rate at admission control, queue-depth statistics,
 * energy per served request (activity counts priced at 15 nm), and
 * the dominant stall class of the executed cycles. A JSON serializer
 * feeds bench/serve_sweep.cc's BENCH_serve.json.
 */

#ifndef NEUROCUBE_SERVING_SLO_HH
#define NEUROCUBE_SERVING_SLO_HH

#include <string>

#include "core/manifest.hh"
#include "serving/server.hh"

namespace neurocube
{

/** Headline service metrics of one serving run. */
struct ServingReport
{
    /** Requests offered / served / dropped. */
    uint64_t offered = 0;
    uint64_t served = 0;
    uint64_t dropped = 0;
    /** Batches dispatched. */
    uint64_t batches = 0;
    /** Mean dispatched batch size (served / batches). */
    double meanBatch = 0.0;

    /** Offered load over the arrival span, requests/s. */
    double offeredPerSec = 0.0;
    /** Served requests over the makespan, requests/s. */
    double goodputPerSec = 0.0;
    /** dropped / offered. */
    double dropRate = 0.0;

    /** Latency percentiles of the served requests, ticks. */
    double p50Ticks = 0.0;
    double p99Ticks = 0.0;
    double p999Ticks = 0.0;
    /** Mean / max served latency, ticks. */
    double meanTicks = 0.0;
    uint64_t maxTicks = 0;

    /** Queue depth statistics (sampled at queue transitions). */
    double meanQueueDepth = 0.0;
    uint64_t maxQueueDepth = 0;

    /** Run span and the cycles spent executing batches. */
    Tick makespan = 0;
    Tick busyCycles = 0;
    /** busyCycles / makespan. */
    double utilization = 0.0;

    /** Joules per served request (activity counts at 15 nm);
     *  negative when the run carried no energy accounting. */
    double energyPerRequestJ = -1.0;

    /** Dominant stall class of the executed cycles ("n/a" when the
     *  run carried no metrics). */
    const char *bottleneckLabel = "n/a";
};

/** Condense a serving run into its report. */
ServingReport buildServingReport(const ServingResult &result);

/**
 * One flat JSON object for the report (no trailing newline). The
 * keys are stable — scripts/bench.sh greps "total_cycles" and
 * "served" for the exact-match baseline gate.
 */
std::string servingReportJson(const ServingReport &report);

/**
 * One structured JSON document for a serving run: the manifest
 * identity block (name/git_describe/engine/config_hash/quick) plus
 * the full report — the serving-side sibling of runManifestJson.
 * wall_ms is the host wall-clock the caller measured (0 = untimed).
 */
std::string servingManifestJson(const RunManifest &manifest,
                                const ServingReport &report,
                                double wall_ms = 0.0);

/**
 * The same content flattened to a Prometheus textfile-collector dump
 * (`neurocube_serve_*` gauges labelled {run="..."}) — the serving
 * sibling of runMetricsTextfile.
 */
std::string servingMetricsTextfile(const RunManifest &manifest,
                                   const ServingReport &report,
                                   double wall_ms = 0.0);

/** Print the report as a human-readable panel (benches, examples). */
void printServingPanel(const ServingReport &report, const char *title);

} // namespace neurocube

#endif // NEUROCUBE_SERVING_SLO_HH
