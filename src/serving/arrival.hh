/**
 * @file
 * Open-loop request arrival generation.
 *
 * A serving experiment drives the cube with a request stream whose
 * timing is independent of the machine's progress (open-loop): when
 * the machine saturates, the queue grows and latency explodes
 * instead of the load politely backing off. Two sources are
 * provided:
 *
 *  - a Poisson process with a configurable mean inter-arrival gap,
 *    generated from the repo's deterministic Rng so the same seed
 *    always yields the same schedule on every platform;
 *  - replay of an explicit arrival-trace file (one arrival tick per
 *    line), for reproducing a measured or hand-crafted load shape.
 *
 * Arrival times are in reference-clock ticks relative to the start
 * of the serving run; ServingSimulator offsets them by the cube's
 * clock when the run begins.
 */

#ifndef NEUROCUBE_SERVING_ARRIVAL_HH
#define NEUROCUBE_SERVING_ARRIVAL_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/types.hh"

namespace neurocube
{

/** A fixed request-arrival schedule (ticks, nondecreasing). */
struct ArrivalSchedule
{
    /** Arrival times relative to the serving run's start tick. */
    std::vector<Tick> ticks;

    /** Number of requests offered. */
    size_t count() const { return ticks.size(); }

    /** Last arrival time (0 when empty). */
    Tick span() const { return ticks.empty() ? 0 : ticks.back(); }

    /**
     * Offered load in requests per second at a given clock.
     * Measured over the arrival span, so a single request reports 0.
     */
    double
    offeredPerSecond(double clock_hz = referenceClockHz) const
    {
        if (ticks.size() < 2 || span() == 0)
            return 0.0;
        return double(ticks.size() - 1) / (double(span()) / clock_hz);
    }
};

/**
 * Generate a Poisson arrival process: @p count requests whose
 * inter-arrival gaps are exponentially distributed with mean
 * @p meanGapTicks. Deterministic for a fixed (count, gap, seed).
 *
 * @param count number of requests to generate
 * @param meanGapTicks mean inter-arrival gap in reference ticks
 * @param seed Rng seed
 */
ArrivalSchedule poissonArrivals(size_t count, double meanGapTicks,
                                uint64_t seed);

/**
 * Parse an arrival-trace stream: one arrival tick per line (decimal,
 * relative to run start), blank lines and '#' comments ignored.
 * Ticks must be nondecreasing (the trace is a time series).
 */
ArrivalSchedule parseArrivalTrace(std::istream &in);

/** Load an arrival trace from a file; fatal when unreadable. */
ArrivalSchedule loadArrivalTrace(const std::string &path);

/** Write a schedule in the trace format parseArrivalTrace reads. */
void writeArrivalTrace(std::ostream &out,
                       const ArrivalSchedule &schedule);

} // namespace neurocube

#endif // NEUROCUBE_SERVING_ARRIVAL_HH
