/**
 * @file
 * Dynamic-batching dispatch policy.
 *
 * The scheduler decides *when* to launch a batch and *how many*
 * vault-group lanes to reconfigure the cube into. The tension is the
 * classic batching trade-off: waiting fills more lanes (higher
 * throughput per batch) but ages the queued requests (higher
 * latency). The policy here:
 *
 *  - dispatch immediately once a full batch (maxLanes requests) is
 *    queued;
 *  - otherwise dispatch a partial batch when the oldest queued
 *    request has waited maxWaitTicks;
 *  - size the partial batch's lane count to the largest power of two
 *    that the queue can fill, so the lane partitioner's rectangular
 *    vault groups (1, 2 or 4 on the 4x4 mesh) stay fully utilized.
 *
 * The chosen lane count feeds Neurocube::setBatchLanes, so the mesh
 * is re-partitioned online as the queue depth shifts.
 */

#ifndef NEUROCUBE_SERVING_SCHEDULER_HH
#define NEUROCUBE_SERVING_SCHEDULER_HH

#include <cstddef>

#include "common/types.hh"

namespace neurocube
{

/** Dispatch-policy knobs. */
struct ServeSchedulerConfig
{
    /**
     * Largest batch the scheduler dispatches; must be a power of two
     * the lane partitioner supports (1, 2 or 4 on the 4x4 mesh).
     */
    unsigned maxLanes = 4;
    /**
     * Longest time the oldest queued request may wait before a
     * partial batch is dispatched anyway (reference ticks).
     */
    Tick maxWaitTicks = 50000;
};

/** Decides batch launch times and lane counts. */
class BatchScheduler
{
  public:
    explicit BatchScheduler(const ServeSchedulerConfig &config);

    /**
     * Dispatch decision at time @p now.
     *
     * @param queueDepth requests currently queued
     * @param oldestArrival arrival tick of the oldest queued request
     *        (ignored when queueDepth is 0)
     * @return lane count to dispatch with, or 0 to keep waiting
     */
    unsigned decide(size_t queueDepth, Tick oldestArrival,
                    Tick now) const;

    /**
     * Lane count for a forced dispatch at depth @p queueDepth: the
     * largest supported power of two <= min(queueDepth, maxLanes).
     */
    unsigned laneCountFor(size_t queueDepth) const;

    /** The policy knobs. */
    const ServeSchedulerConfig &config() const { return config_; }

  private:
    ServeSchedulerConfig config_;
};

} // namespace neurocube

#endif // NEUROCUBE_SERVING_SCHEDULER_HH
