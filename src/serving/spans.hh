/**
 * @file
 * JSONL exporter for per-request serving spans.
 *
 * One JSON object per line, one line per offered request, in arrival
 * order — the RequestRecord lifecycle (enqueue/admit/dispatch/
 * complete absolute ticks plus the derived queue/service/latency
 * ticks), machine-joinable with the SLO report and the Chrome
 * "requests" track by request id. JSONL so sweep tooling can stream
 * and concatenate runs without a JSON parser; readRequestSpansJsonl
 * round-trips the format (tests gate write -> read == identity and
 * that percentiles recomputed from spans match the ServingReport).
 */

#ifndef NEUROCUBE_SERVING_SPANS_HH
#define NEUROCUBE_SERVING_SPANS_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "serving/server.hh"

namespace neurocube
{

/** Write one span object per request (arrival order) to @p os. */
void writeRequestSpans(std::ostream &os, const ServingResult &result);

/**
 * Write the spans file for a run.
 *
 * @param path destination file
 * @param result the run's per-request records
 * @return true on success (warns and returns false on I/O failure)
 */
bool writeRequestSpansJsonl(const std::string &path,
                            const ServingResult &result);

/**
 * Parse a spans stream written by writeRequestSpans. Unknown keys
 * are ignored; the derived fields (latency/queue/service ticks) are
 * not read back, they re-derive from the timestamps.
 */
std::vector<RequestRecord> readRequestSpans(std::istream &is);

/** Parse a spans file; empty vector when the file cannot be read. */
std::vector<RequestRecord>
readRequestSpansJsonl(const std::string &path);

} // namespace neurocube

#endif // NEUROCUBE_SERVING_SPANS_HH
