#include "serving/spans.hh"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <istream>
#include <ostream>

namespace neurocube
{

void
writeRequestSpans(std::ostream &os, const ServingResult &result)
{
    for (const RequestRecord &r : result.requests) {
        os << "{\"id\":" << r.id << ",\"arrival\":" << r.arrival
           << ",\"admit\":" << r.admit
           << ",\"dispatch\":" << r.dispatch
           << ",\"completion\":" << r.completion
           << ",\"batch\":" << r.batch << ",\"lanes\":" << r.lanes
           << ",\"dropped\":" << (r.dropped ? "true" : "false")
           << ",\"queue_ticks\":" << r.queueTicks()
           << ",\"service_ticks\":" << r.serviceTicks()
           << ",\"latency\":" << r.latency() << "}\n";
    }
}

bool
writeRequestSpansJsonl(const std::string &path,
                       const ServingResult &result)
{
    std::ofstream out(path);
    if (!out.is_open()) {
        std::fprintf(stderr,
                     "warning: cannot write request spans '%s'\n",
                     path.c_str());
        return false;
    }
    writeRequestSpans(out, result);
    return out.good();
}

namespace
{

/** Value of `"key":` in @p line, or @p fallback when absent. */
uint64_t
numberField(const std::string &line, const char *key,
            uint64_t fallback = 0)
{
    const std::string needle = "\"" + std::string(key) + "\":";
    const size_t pos = line.find(needle);
    if (pos == std::string::npos)
        return fallback;
    return std::strtoull(line.c_str() + pos + needle.size(), nullptr,
                         10);
}

} // namespace

std::vector<RequestRecord>
readRequestSpans(std::istream &is)
{
    std::vector<RequestRecord> records;
    std::string line;
    while (std::getline(is, line)) {
        if (line.empty())
            continue;
        RequestRecord r;
        r.id = numberField(line, "id");
        r.arrival = numberField(line, "arrival");
        r.admit = numberField(line, "admit");
        r.dispatch = numberField(line, "dispatch");
        r.completion = numberField(line, "completion");
        r.batch = numberField(line, "batch");
        r.lanes = unsigned(numberField(line, "lanes"));
        r.dropped =
            line.find("\"dropped\":true") != std::string::npos;
        records.push_back(r);
    }
    return records;
}

std::vector<RequestRecord>
readRequestSpansJsonl(const std::string &path)
{
    std::ifstream in(path);
    if (!in.is_open())
        return {};
    return readRequestSpans(in);
}

} // namespace neurocube
