#include "serving/scheduler.hh"

#include "common/logging.hh"

namespace neurocube
{

BatchScheduler::BatchScheduler(const ServeSchedulerConfig &config)
    : config_(config)
{
    nc_assert(config_.maxLanes >= 1
                  && (config_.maxLanes & (config_.maxLanes - 1)) == 0,
              "maxLanes must be a power of two, got %u",
              config_.maxLanes);
}

unsigned
BatchScheduler::laneCountFor(size_t queueDepth) const
{
    nc_assert(queueDepth >= 1, "lane count for an empty queue");
    unsigned lanes = 1;
    while (lanes * 2 <= config_.maxLanes && lanes * 2 <= queueDepth)
        lanes *= 2;
    return lanes;
}

unsigned
BatchScheduler::decide(size_t queueDepth, Tick oldestArrival,
                       Tick now) const
{
    if (queueDepth == 0)
        return 0;
    if (queueDepth >= config_.maxLanes)
        return config_.maxLanes;
    if (now >= oldestArrival
        && now - oldestArrival >= config_.maxWaitTicks)
        return laneCountFor(queueDepth);
    return 0;
}

} // namespace neurocube
