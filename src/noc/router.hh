/**
 * @file
 * NoC router (paper Fig. 6c).
 *
 * Each mesh router has 6 input and 6 output channels: four mesh
 * neighbours plus the local PE and memory (PNG) ports. Switching is
 * wormhole with single-flit packets, flow control is credit based
 * (modelled as space checks against the 16-deep downstream FIFOs),
 * routing is table based, and input arbitration uses a rotating
 * daisy-chain priority that advances every clock cycle.
 *
 * Ports have a configurable width in packets per cycle: the local PE
 * and memory ports are two packets wide because one 32-bit DRAM word
 * becomes two 36-bit packets per reference tick (Section V-B), while
 * mesh links carry one packet per cycle.
 */

#ifndef NEUROCUBE_NOC_ROUTER_HH
#define NEUROCUBE_NOC_ROUTER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "noc/packet.hh"
#include "noc/packet_ring.hh"
#include "trace/trace.hh"

namespace neurocube
{

/** Canonical port numbering for 2D-mesh routers. */
enum MeshPort : unsigned
{
    PortNorth = 0,
    PortSouth = 1,
    PortEast = 2,
    PortWest = 3,
    PortPe = 4,
    PortMem = 5,
    MeshPortCount = 6,
};

/**
 * Routing-table index space: destinations are PEs 0..n-1 followed by
 * memory ports (PNGs) 0..n-1.
 */
inline unsigned
routeIndex(uint16_t dst, bool dst_is_mem, unsigned num_nodes)
{
    return dst + (dst_is_mem ? num_nodes : 0);
}

/**
 * One router with parameterizable port count, FIFO depth and per-port
 * width.
 */
class Router
{
  public:
    /** Configuration for one router instance. */
    struct Config
    {
        /** Number of input/output port pairs. */
        unsigned numPorts = MeshPortCount;
        /** FIFO depth per input and per output channel. */
        unsigned bufferDepth = 16;
        /** Per-port width in packets per cycle (empty = all 1). */
        std::vector<unsigned> portWidth;
        /** Number of nodes (PEs/vaults) in the network. */
        unsigned numNodes = 16;
    };

    /**
     * @param config structural parameters
     * @param parent stat group parent
     * @param name stat path component, e.g. "router5"
     * @param trace_id node index used for trace events
     */
    Router(const Config &config, StatGroup *parent,
           const std::string &name, unsigned trace_id = 0);

    /** Install the output port for a destination index. */
    void setRoute(unsigned route_index, unsigned out_port);

    /** Free slots in an input FIFO (credits held by the upstream). */
    unsigned
    inputSpace(unsigned port) const
    {
        return config_.bufferDepth
             - static_cast<unsigned>(inputQueue_[port].size());
    }

    /** Free slots in an output FIFO. */
    unsigned
    outputSpace(unsigned port) const
    {
        return config_.bufferDepth
             - static_cast<unsigned>(outputQueue_[port].size());
    }

    /** Deposit a packet into an input FIFO. @pre inputSpace(port)>0 */
    void pushInput(unsigned port, const Packet &packet);

    /** Total packets currently waiting in input FIFOs. */
    unsigned bufferedInputs() const { return bufferedInputs_; }

    /** Packets waiting in an output FIFO. */
    PacketRing &outputQueue(unsigned port)
    {
        return outputQueue_[port];
    }

    /**
     * Switch allocation for one cycle: move packets from input FIFOs
     * to output FIFOs under crossbar constraints (at most width[in]
     * dequeues per input, width[out] enqueues per output) with
     * rotating daisy-chain priority across inputs.
     */
    void tick();

    /**
     * Account @p n fully-idle cycles in bulk (event engine): rotates
     * the daisy-chain priority as n tick() calls would have and
     * classifies the cycles Idle. @pre idle()
     */
    void skipTicks(uint64_t n);

    /** True when all FIFOs are empty (O(1)). */
    bool
    idle() const
    {
        return bufferedInputs_ == 0 && bufferedOutputs_ == 0;
    }

    /** Total packets currently waiting in output FIFOs. */
    unsigned bufferedOutputs() const { return bufferedOutputs_; }

    /** Packets switched so far. */
    uint64_t packetsSwitched() const { return statSwitched_.count(); }

    /** Structural parameters. */
    const Config &config() const { return config_; }

    /** Width of a port in packets per cycle. */
    unsigned
    portWidth(unsigned port) const
    {
        if (port < config_.portWidth.size())
            return config_.portWidth[port];
        return 1;
    }

  private:
    Config config_;
    /** Node index published with trace events. */
    uint16_t traceId_;
    std::vector<PacketRing> inputQueue_;
    std::vector<PacketRing> outputQueue_;
    std::vector<unsigned> routeTable_;
    /** Daisy-chain priority pointer, advanced every cycle. */
    unsigned priority_ = 0;
    /** Scratch per-output budget, reused each cycle. */
    std::vector<unsigned> outBudget_;
    /** Packets currently in input FIFOs (fast empty check). */
    unsigned bufferedInputs_ = 0;
    /**
     * Packets currently in output FIFOs. tick() increments on each
     * switch; the fabric (a friend — it pops outputQueue_ directly)
     * decrements at its link-traverse and ejection pop sites.
     */
    unsigned bufferedOutputs_ = 0;

    StatGroup statGroup_;
    Stat statSwitched_;
    Stat statBlocked_;

    friend class NocFabric;
};

} // namespace neurocube

#endif // NEUROCUBE_NOC_ROUTER_HH
