#include "noc/fabric.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "trace/energy.hh"
#include "trace/spatial.hh"

namespace neurocube
{

NocFabric::NocFabric(const Config &config, StatGroup *parent)
    : config_(config),
      pePort_(config.numNodes),
      memPort_(config.numNodes),
      peDelivery_(config.numNodes, PacketRing(config.deliveryDepth)),
      memDelivery_(config.numNodes, PacketRing(config.deliveryDepth)),
      nodeLateral_(config.numNodes, 0),
      nodeLocal_(config.numNodes, 0),
      nodeSink_(config.numNodes, nullptr),
      statGroup_(parent, "noc"),
      statEjected_(&statGroup_, "ejected", "packets ejected at endpoints"),
      statLatencySum_(&statGroup_, "latencySum",
                      "sum of end-to-end packet latencies (ticks)"),
      statLinkFlits_(&statGroup_, "linkFlits",
                     "packet transfers over router-to-router links"),
      histLatency_(&statGroup_, "latency",
                   "end-to-end packet latency (ticks)")
{
    switch (config_.topology) {
      case NocTopology::Mesh2D:
        buildMesh();
        break;
      case NocTopology::FullyConnected:
        buildFullyConnected();
        break;
    }
    publishSpatialTopology();
}

void
NocFabric::publishSpatialTopology() const
{
    // The Neurocube top level constructs its TraceSession before the
    // fabric, so an active spatial registry already knows the node/
    // vault/PE extents; the fabric contributes the link list. One-
    // time, not a hot path — no macro needed.
    SpatialRegistry *registry = spatial::activeRegistry();
    if (registry == nullptr)
        return;
    std::vector<SpatialLink> links;
    links.reserve(links_.size());
    for (const Link &link : links_) {
        links.push_back({uint16_t(link.srcRouter),
                         uint16_t(link.dstRouter)});
    }
    registry->configureLinks(meshWidth_, std::move(links));
}

void
NocFabric::buildMesh()
{
    const unsigned n = config_.numNodes;
    meshWidth_ = static_cast<unsigned>(std::lround(std::sqrt(double(n))));
    nc_assert(meshWidth_ * meshWidth_ == n,
              "mesh needs a square node count, got %u", n);

    Router::Config rc;
    rc.numPorts = MeshPortCount;
    rc.bufferDepth = config_.bufferDepth;
    rc.numNodes = n;
    rc.portWidth.assign(MeshPortCount, config_.linkWidth);
    rc.portWidth[PortPe] = config_.localPortWidth;
    rc.portWidth[PortMem] = config_.localPortWidth;

    for (unsigned i = 0; i < n; ++i) {
        routers_.push_back(std::make_unique<Router>(
            rc, &statGroup_, "router" + std::to_string(i), i));
        pePort_[i] = PortPe;
        memPort_[i] = PortMem;
    }

    // X-Y deterministic routing tables.
    for (unsigned r = 0; r < n; ++r) {
        unsigned rx = r % meshWidth_;
        unsigned ry = r / meshWidth_;
        for (unsigned d = 0; d < n; ++d) {
            unsigned dx = d % meshWidth_;
            unsigned dy = d / meshWidth_;
            unsigned port;
            if (dx > rx)
                port = PortEast;
            else if (dx < rx)
                port = PortWest;
            else if (dy > ry)
                port = PortSouth;
            else if (dy < ry)
                port = PortNorth;
            else
                port = PortPe; // replaced below for mem destinations
            routers_[r]->setRoute(routeIndex(d, false, n), port);
            routers_[r]->setRoute(routeIndex(d, true, n),
                                  (dx == rx && dy == ry) ? PortMem
                                                         : port);
        }
    }

    // Neighbour links (both directions).
    auto add_link = [&](unsigned a, unsigned ap, unsigned b,
                        unsigned bp) {
        links_.push_back({a, ap, b, bp, config_.linkWidth, 1});
    };
    for (unsigned y = 0; y < meshWidth_; ++y) {
        for (unsigned x = 0; x < meshWidth_; ++x) {
            unsigned r = y * meshWidth_ + x;
            if (x + 1 < meshWidth_) {
                unsigned e = r + 1;
                add_link(r, PortEast, e, PortWest);
                add_link(e, PortWest, r, PortEast);
            }
            if (y + 1 < meshWidth_) {
                unsigned s = r + meshWidth_;
                add_link(r, PortSouth, s, PortNorth);
                add_link(s, PortNorth, r, PortSouth);
            }
        }
    }
}

void
NocFabric::buildFullyConnected()
{
    const unsigned n = config_.numNodes;
    nc_assert(n >= 2, "fully connected NoC needs >= 2 nodes");

    // Ports: 0..n-2 are direct channels to the other routers, then
    // the PE port and the memory port (17 channels for 16 nodes).
    const unsigned pe_port = n - 1;
    const unsigned mem_port = n;

    Router::Config rc;
    rc.numPorts = n + 1;
    rc.bufferDepth = config_.bufferDepth;
    rc.numNodes = n;
    rc.portWidth.assign(rc.numPorts, config_.linkWidth);
    rc.portWidth[pe_port] = config_.localPortWidth;
    rc.portWidth[mem_port] = config_.localPortWidth;

    for (unsigned i = 0; i < n; ++i) {
        routers_.push_back(std::make_unique<Router>(
            rc, &statGroup_, "router" + std::to_string(i), i));
        pePort_[i] = pe_port;
        memPort_[i] = mem_port;
    }

    auto neighbour_port = [&](unsigned self, unsigned other) {
        return other < self ? other : other - 1;
    };

    for (unsigned r = 0; r < n; ++r) {
        for (unsigned d = 0; d < n; ++d) {
            unsigned port = (d == r) ? pe_port : neighbour_port(r, d);
            routers_[r]->setRoute(routeIndex(d, false, n), port);
            routers_[r]->setRoute(routeIndex(d, true, n),
                                  (d == r) ? mem_port : port);
        }
    }

    // Direct channels are physical wires on the same floor plan the
    // mesh uses: lay the n routers on a square grid and price each
    // channel by the Manhattan distance between its endpoints.
    const unsigned grid =
        static_cast<unsigned>(std::lround(std::sqrt(double(n))));
    auto manhattan = [&](unsigned a, unsigned b) {
        unsigned ax = a % grid, ay = a / grid;
        unsigned bx = b % grid, by = b / grid;
        return (ax > bx ? ax - bx : bx - ax)
             + (ay > by ? ay - by : by - ay);
    };
    for (unsigned a = 0; a < n; ++a) {
        for (unsigned b = 0; b < n; ++b) {
            if (a == b)
                continue;
            links_.push_back({a, neighbour_port(a, b), b,
                              neighbour_port(b, a),
                              config_.linkWidth, manhattan(a, b)});
        }
    }
}

void
NocFabric::accountInjection(unsigned node, const Packet &packet)
{
    // Per-node counters are the single accounting path: they are
    // disjoint per node, so they need no lane-mode scratch detour,
    // and the aggregate accessors sum them on demand.
    if (packet.dst == node)
        ++nodeLocal_[node];
    else
        ++nodeLateral_[node];
    if (!laneOf_.empty() && laneOf_[node] != laneOf_[packet.dst]) {
        if (laneMode_)
            ++scratch_[node].crossLane;
        else
            ++crossLanePackets_;
    }
}

void
NocFabric::setLaneMap(std::vector<uint16_t> lane_of)
{
    nc_assert(lane_of.empty() || lane_of.size() == config_.numNodes,
              "lane map size %zu != node count %u", lane_of.size(),
              config_.numNodes);
    laneOf_ = std::move(lane_of);
}

unsigned
NocFabric::memInjectSpace(VaultId v) const
{
    return routers_[v]->inputSpace(memPort_[v]);
}

void
NocFabric::injectFromMem(VaultId v, const Packet &packet, Tick now)
{
    // Wake before the push: a sleeping scheduler catches the fabric
    // up first, while the skipped window is still provably idle.
    if (nodeSink_[v] != nullptr)
        nodeSink_[v]->onInject(v, true);
    Packet p = packet;
    p.injectTick = now;
    accountInjection(v, p);
    routers_[v]->pushInput(memPort_[v], p);
}

unsigned
NocFabric::peInjectSpace(PeId p) const
{
    return routers_[p]->inputSpace(pePort_[p]);
}

void
NocFabric::injectFromPe(PeId p, const Packet &packet, Tick now)
{
    // Wake before the push (see injectFromMem).
    if (nodeSink_[p] != nullptr)
        nodeSink_[p]->onInject(p, false);
    Packet pk = packet;
    pk.injectTick = now;
    accountInjection(p, pk);
    routers_[p]->pushInput(pePort_[p], pk);
}

void
NocFabric::traverseLink(const Link &link, size_t index)
{
    Router &src = *routers_[link.srcRouter];
    if (src.bufferedOutputs() == 0)
        return;
    auto &out = src.outputQueue(link.srcPort);
    // Occupancy integral: source queue depth, once per executed
    // link-cycle. Cycles the event engine skips have every router
    // empty, so they would contribute zero — the integral is engine-
    // invariant without any bulk accounting.
    NC_SPATIAL_EVENT(SpatialCounter::LinkOccupancy, index,
                     out.size());
    unsigned budget = link.width;
    while (budget > 0 && !out.empty()
           && routers_[link.dstRouter]->inputSpace(link.dstPort)
                  > 0) {
        // With a lane map installed, a packet entering a router
        // outside its destination's lane escaped its sub-mesh.
        if (!laneOf_.empty()
            && laneOf_[link.dstRouter] != laneOf_[out.front().dst]) {
            if (laneMode_)
                ++scratch_[link.dstRouter].crossLane;
            else
                ++crossLanePackets_;
        }
        routers_[link.dstRouter]->pushInput(link.dstPort,
                                            out.front());
        out.pop_front();
        --src.bufferedOutputs_;
        --budget;
        if (laneMode_)
            ++scratch_[link.srcRouter].linkFlits;
        else
            statLinkFlits_ += 1;
        NC_SPATIAL_EVENT(SpatialCounter::LinkFlit, index, 1);
        NC_ENERGY_EVENT(EnergyEventKind::NocLink, link.srcRouter,
                        link.distance);
        NC_TRACE(TraceComponent::Router, link.srcRouter,
                 TraceEventType::LinkFlit, link.dstRouter);
    }
    // Credit starvation: a packet wanted this link but the
    // downstream FIFO was out of space. At most one stall per link
    // per executed cycle (a classification, not a flit count).
    if (budget > 0 && !out.empty()
        && routers_[link.dstRouter]->inputSpace(link.dstPort) == 0)
        NC_SPATIAL_EVENT(SpatialCounter::LinkStall, index, 1);
}

void
NocFabric::ejectNode(unsigned node, Tick now)
{
    Router &router = *routers_[node];
    if (router.bufferedOutputs() == 0)
        return;
    auto eject = [&](unsigned port, PacketRing &sink,
                     bool is_mem) {
        auto &out = router.outputQueue(port);
        unsigned budget = router.portWidth(port);
        bool ejected = false;
        while (budget > 0 && !out.empty()
               && sink.size() < config_.deliveryDepth) {
            Tick latency = now - out.front().injectTick;
            if (laneMode_) {
                NodeScratch &s = scratch_[node];
                ++s.ejected;
                s.latencySum += latency;
                s.latency.sample(latency);
            } else {
                statEjected_ += 1;
                statLatencySum_ += latency;
                histLatency_.sample(latency);
            }
            NC_TRACE(TraceComponent::Router, node,
                     TraceEventType::PacketEject, is_mem ? 1 : 0,
                     latency);
            sink.push_back(out.front());
            out.pop_front();
            --router.bufferedOutputs_;
            --budget;
            ejected = true;
        }
        if (ejected && nodeSink_[node] != nullptr)
            nodeSink_[node]->onEject(node, is_mem);
    };
    eject(pePort_[node], peDelivery_[node], false);
    eject(memPort_[node], memDelivery_[node], true);
}

void
NocFabric::tick(Tick now)
{
    // Phase 1: switch allocation in every router.
    for (auto &router : routers_)
        router->tick();

    // Phase 2: router-to-router links (credit = downstream space).
    // Links never share a source or destination FIFO, so the three
    // phase loops (and any restriction of them, see tickLane) are
    // order-independent within a cycle.
    for (size_t i = 0; i < links_.size(); ++i)
        traverseLink(links_[i], i);

    // Phase 3: ejection into endpoint delivery queues.
    for (unsigned node = 0; node < config_.numNodes; ++node)
        ejectNode(node, now);
}

void
NocFabric::tickLane(const LaneView &view, Tick now)
{
    for (unsigned node : view.nodes)
        routers_[node]->tick();
    for (size_t index : view.links)
        traverseLink(links_[index], index);
    for (unsigned node : view.nodes)
        ejectNode(node, now);
}

std::vector<NocFabric::LaneView>
NocFabric::buildLaneViews(
    const std::vector<std::vector<unsigned>> &partition) const
{
    std::vector<LaneView> views(partition.size());
    std::vector<size_t> lane_of(config_.numNodes, SIZE_MAX);
    for (size_t l = 0; l < partition.size(); ++l) {
        views[l].nodes = partition[l];
        std::sort(views[l].nodes.begin(), views[l].nodes.end());
        for (unsigned node : views[l].nodes) {
            nc_assert(lane_of[node] == SIZE_MAX,
                      "node %u in two lanes", node);
            lane_of[node] = l;
        }
    }
    for (size_t i = 0; i < links_.size(); ++i) {
        size_t src_lane = lane_of[links_[i].srcRouter];
        if (src_lane != SIZE_MAX
            && src_lane == lane_of[links_[i].dstRouter]) {
            views[src_lane].links.push_back(i);
        }
    }
    return views;
}

void
NocFabric::skipTicks(uint64_t n)
{
    for (auto &router : routers_)
        router->skipTicks(n);
}

void
NocFabric::skipLaneTicks(const LaneView &view, uint64_t n)
{
    for (unsigned node : view.nodes)
        routers_[node]->skipTicks(n);
}

void
NocFabric::setWakeSink(WakeSink *sink)
{
    for (auto &slot : nodeSink_)
        slot = sink;
}

void
NocFabric::setLaneStatsMode(bool enabled)
{
    laneMode_ = enabled;
    if (enabled && scratch_.size() != config_.numNodes)
        scratch_.resize(config_.numNodes);
}

void
NocFabric::foldLaneStats()
{
    for (NodeScratch &s : scratch_) {
        statEjected_ += s.ejected;
        statLatencySum_ += s.latencySum;
        statLinkFlits_ += s.linkFlits;
        crossLanePackets_ += s.crossLane;
        histLatency_.merge(s.latency);
        s = NodeScratch{};
    }
}

bool
NocFabric::routersIdle() const
{
    for (const auto &router : routers_) {
        if (!router->idle())
            return false;
    }
    return true;
}

bool
NocFabric::nodeQuiescent(unsigned node) const
{
    return routers_[node]->idle() && peDelivery_[node].empty()
        && memDelivery_[node].empty();
}

bool
NocFabric::idle() const
{
    if (!routersIdle())
        return false;
    for (const auto &q : peDelivery_) {
        if (!q.empty())
            return false;
    }
    for (const auto &q : memDelivery_) {
        if (!q.empty())
            return false;
    }
    return true;
}

} // namespace neurocube
