/**
 * @file
 * NoC packet format (paper Fig. 11a and Table II).
 *
 * The hardware packet is 36 bits: 16-bit data payload, 4-bit MAC-ID,
 * 4-bit SRC (vault), 4-bit DST (PE) and 8-bit OP-ID. Operand traffic
 * uses two packets per MAC operation (one state, one weight); the
 * write-back packet carries one computed neuron state from a PE back
 * to a PNG. The simulator additionally carries full-precision
 * bookkeeping fields (neuron index, pass, inject tick) that hardware
 * derives from context: the paper notes that SRC plus MAC-ID is
 * sufficient for the PNG to reconstruct the target neuron address.
 */

#ifndef NEUROCUBE_NOC_PACKET_HH
#define NEUROCUBE_NOC_PACKET_HH

#include <cstdint>

#include "common/fixed_point.hh"
#include "common/types.hh"

namespace neurocube
{

/** What the 16-bit payload of a packet means. */
enum class PacketKind : uint8_t
{
    /** An input-neuron state x_k heading to a PE. */
    State,
    /** A synaptic weight w_ik heading to a PE. */
    Weight,
    /** A computed output state y_i heading back to a PNG. */
    WriteBack,
};

/** One single-flit NoC packet. */
struct Packet
{
    /** Payload interpretation. */
    PacketKind kind = PacketKind::State;
    /** Source vault (4-bit SRC field). */
    VaultId src = 0;
    /** Destination id: PE for operands, vault/PNG for write-backs. */
    uint16_t dst = 0;
    /** True when dst names a PNG/memory port, not a PE. */
    bool dstIsMem = false;
    /** Target MAC within the destination PE (4-bit MAC-ID field). */
    MacId mac = 0;
    /**
     * Operation sequence number within the current output neuron
     * group. The hardware field is opId % 256 (Section V-A); the
     * simulator keeps full precision so correctness checks do not
     * depend on wraparound being benign.
     */
    OpId opId = 0;
    /** The 16-bit payload. */
    Fixed data{};

    /** Simulation bookkeeping: output-neuron index for this op. */
    uint32_t neuron = 0;
    /**
     * Simulation bookkeeping: neuron-group index at the destination
     * PE (neurons are processed 16 at a time; hardware recovers the
     * group from in-order generation plus the 8-bit OP-ID).
     */
    uint32_t group = 0;
    /** Simulation bookkeeping: tick at injection (latency stats). */
    Tick injectTick = 0;
    /**
     * Memory channel that stores this op's output neuron (the
     * write-back destination). Usually the PE's own vault, but with
     * fewer channels than PEs (the DDR3 comparison of Section VI-B)
     * the home channel is a coarser partition.
     */
    VaultId homeVault = 0;

    /** The 8-bit OP-ID field value as the hardware would carry it. */
    uint32_t hwOpId() const { return opId % opIdModulus; }

    /** Size of the hardware packet in bits (Table II router width). */
    static constexpr unsigned bits = 36;
};

} // namespace neurocube

#endif // NEUROCUBE_NOC_PACKET_HH
