/**
 * @file
 * NoC fabric: routers wired into a topology, plus endpoint queues.
 *
 * Two topologies from the paper are provided:
 *  - 2D mesh with deterministic X-Y routing (Fig. 6a), the baseline
 *    Neurocube NoC;
 *  - fully connected, where every router has a direct channel to
 *    every other router (Fig. 6b, 17 in/out channels per router for
 *    16 nodes), used in the Section VI-C comparison.
 *
 * Credit-based flow control is modelled by space checks against the
 * downstream FIFO a link feeds (zero-latency credit return). Each
 * node hosts one PE endpoint and one memory (PNG) endpoint.
 */

#ifndef NEUROCUBE_NOC_FABRIC_HH
#define NEUROCUBE_NOC_FABRIC_HH

#include <memory>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "common/wake.hh"
#include "noc/packet.hh"
#include "noc/router.hh"

namespace neurocube
{

/** Which paper topology to instantiate. */
enum class NocTopology
{
    Mesh2D,
    FullyConnected,
};

/** Routers wired into a topology with PE/memory endpoints. */
class NocFabric
{
  public:
    /** Structural parameters of the fabric. */
    struct Config
    {
        NocTopology topology = NocTopology::Mesh2D;
        /** Number of nodes; must be a perfect square for the mesh. */
        unsigned numNodes = 16;
        /** Router FIFO depth (paper: 16). */
        unsigned bufferDepth = 16;
        /** Packets per cycle on PE/memory ports (2: one DRAM word). */
        unsigned localPortWidth = 2;
        /** Packets per cycle on router-to-router channels. */
        unsigned linkWidth = 1;
        /** Capacity of each endpoint delivery queue. */
        unsigned deliveryDepth = 32;
    };

    /**
     * @param config structural parameters
     * @param parent stat group parent
     */
    NocFabric(const Config &config, StatGroup *parent);

    /** Space available for PNG injection at node v. */
    unsigned memInjectSpace(VaultId v) const;
    /** Inject a packet from the PNG at node v. */
    void injectFromMem(VaultId v, const Packet &packet, Tick now);

    /** Space available for PE injection at node p. */
    unsigned peInjectSpace(PeId p) const;
    /** Inject a packet from the PE at node p. */
    void injectFromPe(PeId p, const Packet &packet, Tick now);

    /** Packets delivered to PE p; the PE pops from the front. */
    PacketRing &peDelivery(PeId p) { return peDelivery_[p]; }
    /** Packets delivered to the PNG/memory port at node v. */
    PacketRing &memDelivery(VaultId v)
    {
        return memDelivery_[v];
    }

    /** Advance one cycle: switch all routers, then move all links. */
    void tick(Tick now);

    /**
     * Structural slice of one batch lane: the lane's routers and the
     * links internal to it. tickLane() over a view is equivalent to
     * tick() as long as no packet crosses lanes (routers, links and
     * ejections are mutually independent within a cycle, so
     * restricting the iteration to one lane's slice cannot reorder
     * anything observable).
     */
    struct LaneView
    {
        /** Lane nodes, ascending (matches full-fabric tick order). */
        std::vector<unsigned> nodes;
        /** Indices into links_ of the lane-internal links. */
        std::vector<size_t> links;
    };

    /** Slice the fabric along a node partition (one view per lane). */
    std::vector<LaneView>
    buildLaneViews(
        const std::vector<std::vector<unsigned>> &partition) const;

    /** Advance one cycle for one lane's slice only. */
    void tickLane(const LaneView &view, Tick now);

    /** True when none of the lane's routers holds a packet. */
    bool
    laneRoutersIdle(const LaneView &view) const
    {
        for (unsigned node : view.nodes) {
            if (!routers_[node]->idle())
                return false;
        }
        return true;
    }

    /**
     * First tick after @p now at which tick() would move a packet.
     * With every router empty the fabric is quiescent until an
     * injection (delivery queues drain on the consumer's clock, not
     * this one); skipTicks() accounts the skipped stretch.
     */
    Tick
    nextEventAfter(Tick now) const
    {
        return routersIdle() ? tickNever : now + 1;
    }

    /** Account @p n all-routers-idle cycles in bulk. */
    void skipTicks(uint64_t n);

    /** Account @p n lane-routers-idle cycles for one lane's slice. */
    void skipLaneTicks(const LaneView &view, uint64_t n);

    /**
     * Install one wake sink for every node (single event scheduler),
     * or nullptr to detach. Ejections into a node's delivery queues
     * report onEject(node, to_mem) and injections report
     * onInject(node, from_mem) to the node's sink.
     */
    void setWakeSink(WakeSink *sink);

    /** Install the wake sink of one node (per-lane schedulers). */
    void
    setNodeWakeSink(unsigned node, WakeSink *sink)
    {
        nodeSink_[node] = sink;
    }

    /**
     * Route the fabric-level aggregate stats (ejection counts,
     * latency histogram, link flits, lane-violation count) through
     * per-node scratch counters instead of the shared Stat objects,
     * so concurrent per-lane tickLane() calls never touch shared
     * state. foldLaneStats() merges the scratch back (the fold is
     * exact: all quantities are integer-valued). Per-node stats
     * (router objects, nodeLateral_/nodeLocal_) are already disjoint
     * and stay direct.
     */
    void setLaneStatsMode(bool enabled);

    /** Merge per-node scratch stats into the shared Stats. */
    void foldLaneStats();

    /** True when no packet is anywhere in the fabric. */
    bool idle() const;

    /**
     * True when no packet is inside a router (packets may still be
     * waiting in endpoint delivery queues).
     */
    bool routersIdle() const;

    /**
     * True when one node holds no packets: its router FIFOs and both
     * endpoint delivery queues are empty. Batched execution uses this
     * for lane-tagged completion (a lane is quiescent when every one
     * of its nodes is).
     */
    bool nodeQuiescent(unsigned node) const;

    /**
     * Install a node -> lane assignment. While set, every injection
     * and every link traversal is checked against it: a packet whose
     * source, destination or traversed router disagree on the lane
     * bumps crossLanePackets(). Pass an empty vector to remove.
     */
    void setLaneMap(std::vector<uint16_t> lane_of);

    /** Packets that violated the lane map (0 when lanes isolate). */
    uint64_t crossLanePackets() const { return crossLanePackets_; }

    /** Structural parameters. */
    const Config &config() const { return config_; }

    /**
     * Packets whose source and destination node differ. Derived by
     * summing the per-node injection counters — the single
     * accounting path (the old aggregate Stat duplicated them).
     */
    uint64_t
    lateralPackets() const
    {
        uint64_t total = 0;
        for (uint64_t n : nodeLateral_)
            total += n;
        return total;
    }
    /** Packets delivered to a same-node destination. */
    uint64_t
    localPackets() const
    {
        uint64_t total = 0;
        for (uint64_t n : nodeLocal_)
            total += n;
        return total;
    }
    /** Total packets ejected at endpoints. */
    uint64_t
    ejectedPackets() const
    {
        return statEjected_.count();
    }
    /** Mean end-to-end packet latency in ticks. */
    double
    meanLatency() const
    {
        uint64_t n = statEjected_.count();
        return n ? statLatencySum_.value() / double(n) : 0.0;
    }

    /** End-to-end packet latency distribution (ticks). */
    const Histogram &latencyHistogram() const { return histLatency_; }

    /** Lateral packets injected at one node (per-lane accounting). */
    uint64_t
    nodeLateralPackets(unsigned node) const
    {
        return nodeLateral_[node];
    }
    /** Node-local packets injected at one node. */
    uint64_t
    nodeLocalPackets(unsigned node) const
    {
        return nodeLocal_[node];
    }

    /** Total packet transfers over router-to-router links. */
    uint64_t linkFlits() const { return statLinkFlits_.count(); }

    /** Fraction of traffic that crossed between nodes. */
    double
    lateralFraction() const
    {
        uint64_t lateral = lateralPackets();
        uint64_t total = lateral + localPackets();
        return total ? double(lateral) / double(total) : 0.0;
    }

    /** Direct access to a router (tests and layout tools). */
    Router &router(unsigned node) { return *routers_[node]; }

  private:
    /** A unidirectional channel between two router ports. */
    struct Link
    {
        unsigned srcRouter;
        unsigned srcPort;
        unsigned dstRouter;
        unsigned dstPort;
        unsigned width;
        /**
         * Physical length in Manhattan grid hops on the chip floor
         * plan (mesh neighbour links are 1; fully-connected channels
         * span the grid distance between their endpoints). Scales the
         * NocLink energy per traversal, so the fully-connected
         * topology pays for its long global wires.
         */
        unsigned distance;
    };

    void buildMesh();
    void buildFullyConnected();
    void accountInjection(unsigned node, const Packet &packet);
    /** Publish link endpoints to an active SpatialRegistry. */
    void publishSpatialTopology() const;
    /** Move packets across one link (phase 2 body). @p index is the
     *  link's ordinal in links_ (spatial counter instance). */
    void traverseLink(const Link &link, size_t index);
    /** Eject into one node's delivery queues (phase 3 body). */
    void ejectNode(unsigned node, Tick now);

    /** Per-node stat accumulation while laneMode_ is set. The
     *  lateral/local injection counts are not here: nodeLateral_/
     *  nodeLocal_ are already per-node disjoint, so they are the
     *  single accounting path in every mode. */
    struct NodeScratch
    {
        uint64_t ejected = 0;
        uint64_t latencySum = 0;
        uint64_t linkFlits = 0;
        uint64_t crossLane = 0;
        Histogram latency{nullptr, "latency", ""};
    };

    Config config_;
    unsigned meshWidth_ = 0;
    std::vector<std::unique_ptr<Router>> routers_;
    std::vector<Link> links_;
    /** Per node: output port feeding the PE endpoint. */
    std::vector<unsigned> pePort_;
    /** Per node: output port feeding the memory endpoint. */
    std::vector<unsigned> memPort_;
    std::vector<PacketRing> peDelivery_;
    std::vector<PacketRing> memDelivery_;

    /** Per node: lateral/local packets injected there. */
    std::vector<uint64_t> nodeLateral_;
    std::vector<uint64_t> nodeLocal_;
    /** Node -> lane assignment (empty = no checking). */
    std::vector<uint16_t> laneOf_;
    uint64_t crossLanePackets_ = 0;

    /** Per-node event-engine wake sinks (null under legacy). */
    std::vector<WakeSink *> nodeSink_;
    /** Aggregate stats detour through scratch_ (threaded lanes). */
    bool laneMode_ = false;
    std::vector<NodeScratch> scratch_;

    StatGroup statGroup_;
    Stat statEjected_;
    Stat statLatencySum_;
    Stat statLinkFlits_;
    Histogram histLatency_;
};

} // namespace neurocube

#endif // NEUROCUBE_NOC_FABRIC_HH
