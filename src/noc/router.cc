#include "noc/router.hh"

#include "common/logging.hh"
#include "trace/energy.hh"
#include "trace/metrics.hh"

namespace neurocube
{

Router::Router(const Config &config, StatGroup *parent,
               const std::string &name, unsigned trace_id)
    : config_(config), traceId_(uint16_t(trace_id)),
      inputQueue_(config.numPorts, PacketRing(config.bufferDepth)),
      outputQueue_(config.numPorts, PacketRing(config.bufferDepth)),
      routeTable_(2 * config.numNodes, ~0u),
      statGroup_(parent, name),
      statSwitched_(&statGroup_, "switched", "packets switched"),
      statBlocked_(&statGroup_, "blocked",
                   "input-port cycles blocked on a full output")
{
    nc_assert(config_.numPorts >= 2, "router needs at least 2 ports");
}

void
Router::setRoute(unsigned route_index, unsigned out_port)
{
    nc_assert(route_index < routeTable_.size(),
              "route index %u out of range", route_index);
    nc_assert(out_port < config_.numPorts,
              "out port %u out of range", out_port);
    routeTable_[route_index] = out_port;
}

void
Router::pushInput(unsigned port, const Packet &packet)
{
    nc_assert(port < config_.numPorts, "bad input port %u", port);
    nc_assert(inputSpace(port) > 0,
              "push into full input FIFO (credit violation)");
    inputQueue_[port].push_back(packet);
    ++bufferedInputs_;
    NC_TRACE(TraceComponent::Router, traceId_,
             TraceEventType::FlitEnqueue, port,
             inputQueue_[port].size());
}

void
Router::skipTicks(uint64_t n)
{
    nc_assert(idle(), "router skipTicks while packets are buffered");
    priority_ = unsigned((priority_ + n) % config_.numPorts);
    NC_METRIC_CYCLES(TraceComponent::Router, traceId_,
                     StallClass::Idle, n);
}

void
Router::tick()
{
    const unsigned nports = config_.numPorts;

    if (bufferedInputs_ == 0) {
        // Nothing to switch; just rotate the daisy chain. Output
        // FIFOs may still hold packets waiting for link slots, but
        // that wait is the link's cycle, not this crossbar's.
        NC_METRIC_CYCLE(TraceComponent::Router, traceId_,
                        idle() ? StallClass::Idle : StallClass::Busy);
        priority_ = (priority_ + 1) % nports;
        return;
    }

    // Remaining output enqueue slots this cycle (crossbar width).
    outBudget_.resize(nports);
    for (unsigned p = 0; p < nports; ++p) {
        unsigned width = portWidth(p);
        unsigned space = outputSpace(p);
        outBudget_[p] = std::min(width, space);
    }

    // Visit inputs in rotating daisy-chain priority order.
    bool blocked = false;
    for (unsigned i = 0; i < nports; ++i) {
        unsigned in = (priority_ + i) % nports;
        unsigned in_budget = portWidth(in);
        while (in_budget > 0 && !inputQueue_[in].empty()) {
            const Packet &head = inputQueue_[in].front();
            unsigned idx = routeIndex(head.dst, head.dstIsMem,
                                      config_.numNodes);
            nc_assert(idx < routeTable_.size(),
                      "unroutable destination %u", head.dst);
            unsigned out = routeTable_[idx];
            nc_assert(out != ~0u, "no route installed for dst %u%s",
                      head.dst, head.dstIsMem ? " (mem)" : "");
            if (outBudget_[out] == 0) {
                // Head-of-line blocked; wormhole switching cannot
                // reorder behind the blocked head.
                statBlocked_ += 1;
                blocked = true;
                NC_TRACE(TraceComponent::Router, traceId_,
                         TraceEventType::FlitBlocked, in);
                break;
            }
            outputQueue_[out].push_back(head);
            inputQueue_[in].pop_front();
            --bufferedInputs_;
            ++bufferedOutputs_;
            --outBudget_[out];
            --in_budget;
            statSwitched_ += 1;
            NC_ENERGY_EVENT(EnergyEventKind::NocHop, traceId_, 1);
            NC_TRACE(TraceComponent::Router, traceId_,
                     TraceEventType::FlitSwitch, out,
                     outputQueue_[out].size());
        }
    }

    // Head-of-line blocking dominates the classification: a cycle
    // where any input sat behind a full output is the congestion
    // signal, even if other inputs still made progress. With no
    // block, a buffered input always switched (wormhole invariant).
    NC_METRIC_CYCLE(TraceComponent::Router, traceId_,
                    blocked ? StallClass::StallNocCredit
                            : StallClass::Busy);

    // Rotate the daisy chain (priorities update every clock cycle).
    priority_ = (priority_ + 1) % nports;
}

} // namespace neurocube
