/**
 * @file
 * Fixed-capacity circular packet FIFO.
 *
 * The router input/output FIFOs and the endpoint delivery queues are
 * small, credit-bounded queues on the per-tick hot path; a contiguous
 * ring with power-of-two capacity replaces the std::deque chunk
 * machinery with two indices and no steady-state allocation. The ring
 * grows (doubling, relinearizing) only if a producer exceeds the
 * initial capacity hint — production credit checks make that
 * unreachable, but unit tests drive queues directly.
 */

#ifndef NEUROCUBE_NOC_PACKET_RING_HH
#define NEUROCUBE_NOC_PACKET_RING_HH

#include <cstddef>
#include <vector>

#include "noc/packet.hh"

namespace neurocube
{

/** A circular FIFO of packets with deque-compatible accessors. */
class PacketRing
{
  public:
    PacketRing() = default;

    /** @param capacity_hint expected bound on resident packets */
    explicit PacketRing(unsigned capacity_hint)
    {
        buf_.resize(roundUp(capacity_hint));
    }

    bool empty() const { return size_ == 0; }
    size_t size() const { return size_; }

    const Packet &front() const { return buf_[head_]; }
    Packet &front() { return buf_[head_]; }

    void
    pop_front()
    {
        head_ = (head_ + 1) & (buf_.size() - 1);
        --size_;
    }

    void
    push_back(const Packet &packet)
    {
        if (size_ == buf_.size())
            grow();
        buf_[(head_ + size_) & (buf_.size() - 1)] = packet;
        ++size_;
    }

    void
    clear()
    {
        head_ = 0;
        size_ = 0;
    }

  private:
    static size_t
    roundUp(size_t n)
    {
        size_t cap = 4;
        while (cap < n)
            cap *= 2;
        return cap;
    }

    void
    grow()
    {
        std::vector<Packet> wider(buf_.empty() ? 4 : buf_.size() * 2);
        for (size_t i = 0; i < size_; ++i)
            wider[i] = buf_[(head_ + i) & (buf_.size() - 1)];
        head_ = 0;
        buf_ = std::move(wider);
    }

    std::vector<Packet> buf_;
    size_t head_ = 0;
    size_t size_ = 0;
};

} // namespace neurocube

#endif // NEUROCUBE_NOC_PACKET_RING_HH
