#include "png/address_generator.hh"

#include <algorithm>

#include "common/logging.hh"

namespace neurocube
{

void
AddressGenerator::configure(const PngProgram &program,
                            unsigned num_macs, unsigned conn_block)
{
    program_ = program;
    numMacs_ = num_macs;
    connBlock_ = std::max(1u, conn_block);
    walk_.clear();
    chunks_.clear();
    chunk_ = 0;
    conn_ = 0;
    plane_ = 0;
    buffer_.clear();
    bufferPos_ = 0;
    generated_ = 0;
    totalPairs_ = 0;

    groupsPerDst_.assign(program.outTiles.numNodes(), 0);
    for (unsigned d = 0; d < program.outTiles.numNodes(); ++d) {
        groupsPerDst_[d] = uint32_t(
            (program.outTiles.tile(d).count() + num_macs - 1)
            / num_macs);
    }

    if (!program.enabled || program.outWalk.count() == 0
        || program.conns.empty()) {
        done_ = true;
        return;
    }

    // Enumerate the walked output neurons in row-major order and
    // precompute their routing coordinates.
    walk_.reserve(size_t(program.outWalk.count()));
    uint32_t walk_index = 0;
    const Rect &wr = program.outWalk;
    for (int32_t y = wr.y0; y < wr.y0 + wr.h; ++y) {
        for (int32_t x = wr.x0; x < wr.x0 + wr.w; ++x) {
            unsigned dst = program.outTiles.owner(x, y);
            uint64_t local = program.outTiles.localIndex(x, y);
            walk_.push_back({x, y, PeId(dst), MacId(local % numMacs_),
                             uint32_t(local / numMacs_), walk_index});
            ++walk_index;
        }
    }

    // Coalesce per (destination, group) so all of this vault's MACs
    // for one group are emitted together, connection by connection.
    // Ordering by group first interleaves destinations so boundary
    // operands reach neighbouring PEs in step with their OP-counter
    // progress instead of after this vault's own tile.
    std::stable_sort(walk_.begin(), walk_.end(),
                     [](const Walked &a, const Walked &b) {
                         if (a.group != b.group)
                             return a.group < b.group;
                         return a.dst < b.dst;
                     });
    uint32_t begin = 0;
    for (uint32_t i = 1; i <= walk_.size(); ++i) {
        if (i == walk_.size() || walk_[i].dst != walk_[begin].dst
            || walk_[i].group != walk_[begin].group) {
            chunks_.emplace_back(begin, i);
            begin = i;
        }
    }

    done_ = false;
    fillBuffer();
}

bool
AddressGenerator::owns(const Walked &entry, const Conn &conn) const
{
    if (conn.source == Conn::Source::Partial) {
        // Partial sums live in the vault that owns the output pixel.
        return program_.output.stored.contains(entry.x, entry.y);
    }
    if (!program_.filterByInput)
        return true;
    int32_t in_x = entry.x * int32_t(program_.strideX) + conn.dx;
    int32_t in_y = entry.y * int32_t(program_.strideY) + conn.dy;
    return program_.ownedInput.contains(in_x, in_y);
}

Addr
AddressGenerator::stateAddr(const Walked &entry, const Conn &conn) const
{
    if (conn.source == Conn::Source::Partial) {
        return program_.output.addrOf(program_.outPlane, entry.x,
                                      entry.y);
    }
    int32_t in_x = entry.x * int32_t(program_.strideX) + conn.dx;
    int32_t in_y = entry.y * int32_t(program_.strideY) + conn.dy;
    return program_.input.addrOf(conn.inMap, in_x, in_y);
}

Addr
AddressGenerator::weightAddr(const Walked &entry,
                             uint32_t conn_index) const
{
    const Conn &conn = program_.conns[conn_index];
    if (conn.source == Conn::Source::Partial)
        return program_.onesAddr;
    uint64_t column;
    if (!program_.weightConnMap.empty()) {
        column = program_.weightConnMap[conn_index];
        nc_assert(column != ~0u,
                  "weight read for unowned connection %u", conn_index);
    } else {
        nc_assert(conn_index >= program_.weightConnOffset,
                  "connection %u below weight slice offset",
                  conn_index);
        column = conn_index - program_.weightConnOffset;
    }
    if (program_.weightInterleaved && program_.weightNeuronStride) {
        uint64_t block = entry.walkIndex / numMacs_;
        uint64_t lane = entry.walkIndex % numMacs_;
        return program_.weights.base
            + block * program_.weightNeuronStride * numMacs_
            + column * numMacs_ + lane;
    }
    return program_.weights.base
        + uint64_t(entry.walkIndex) * program_.weightNeuronStride
        + column;
}

void
AddressGenerator::fillBuffer()
{
    buffer_.clear();
    bufferPos_ = 0;

    unsigned planes = std::max(1u, program_.outPlanes);
    while (buffer_.empty()) {
        if (plane_ >= planes) {
            done_ = true;
            return;
        }
        auto [begin, end] = chunks_[chunk_];
        uint32_t conns = uint32_t(program_.conns.size());
        uint32_t block_end =
            std::min(conn_ + connBlock_, conns);

        auto emit = [&](uint32_t c, bool weight_phase) {
            Conn conn = program_.conns[c];
            if (program_.planeInMapModulo) {
                // Channelwise plane rotation (the FSM's plane loop).
                conn.inMap = uint16_t((conn.inMap + plane_)
                                      % program_.planeInMapModulo);
            }
            for (uint32_t i = begin; i < end; ++i) {
                const Walked &entry = walk_[i];
                if (!owns(entry, conn))
                    continue;
                GeneratedOp op;
                // entry.dst is a tile index; relocate it onto the
                // hosting mesh node (identity outside batch lanes).
                op.dst = program_.peNode.empty()
                    ? PeId(entry.dst)
                    : PeId(program_.peNode[entry.dst]);
                op.mac = entry.mac;
                op.group = entry.group
                         + plane_ * groupsPerDst_[entry.dst];
                op.opId = c;
                op.neuron = plane_ * program_.outPlaneSize
                          + uint32_t(entry.y) * program_.outMapWidth
                          + uint32_t(entry.x);
                unsigned home =
                    program_.homeTiles.owner(entry.x, entry.y);
                op.homeVault = program_.homeNode.empty()
                    ? VaultId(home)
                    : VaultId(program_.homeNode[home]);
                op.isConstantOne = false;
                if (!weight_phase) {
                    op.kind = PacketKind::State;
                    op.addr = stateAddr(entry, conn);
                    if (!program_.streamWeights)
                        ++totalPairs_;
                } else {
                    op.kind = PacketKind::Weight;
                    op.addr = weightAddr(entry, c)
                            + plane_ * program_.weightPlaneStride;
                    op.isConstantOne =
                        conn.source == Conn::Source::Partial;
                    ++totalPairs_;
                }
                buffer_.push_back(op);
            }
        };

        // States of the whole connection block first, then their
        // weights: lengthens each stream's sequential DRAM run.
        for (uint32_t c = conn_; c < block_end; ++c)
            emit(c, false);
        if (program_.streamWeights) {
            for (uint32_t c = conn_; c < block_end; ++c)
                emit(c, true);
        }

        conn_ = block_end;
        if (conn_ >= conns) {
            conn_ = 0;
            ++chunk_;
            if (chunk_ >= chunks_.size()) {
                chunk_ = 0;
                ++plane_;
            }
        }
    }
}

bool
AddressGenerator::next(GeneratedOp &op)
{
    if (done_)
        return false;
    op = buffer_[bufferPos_];
    ++generated_;
    if (++bufferPos_ >= buffer_.size())
        fillBuffer();
    return true;
}

} // namespace neurocube
