/**
 * @file
 * The three-nested-counter FSM at the heart of the PNG
 * (paper Fig. 8b/8d).
 *
 * Computation of one layer is three nested loops: across all neurons
 * in the layer (outer, advancing by n_MAC because n_MAC neurons are
 * computed simultaneously), across all connections of a neuron
 * (middle), and across the MAC units (inner). This class is the
 * cycle-faithful counter structure; AddressGenerator embeds the same
 * iteration with the generalized address mapping the layer compiler
 * programs.
 */

#ifndef NEUROCUBE_PNG_COUNTERS_HH
#define NEUROCUBE_PNG_COUNTERS_HH

#include <cstdint>

#include "common/logging.hh"

namespace neurocube
{

/** The PNG's neuron / connection / MAC counter stack. */
class NestedCounters
{
  public:
    /** Configuration registers loaded by the host (Fig. 8c). */
    struct Config
    {
        /** Total neurons in the layer (register "# neurons"). */
        uint64_t numNeurons = 0;
        /** Connections per neuron (register "# connections"). */
        uint32_t numConnections = 0;
        /** MAC units, the outer counter's increment (design: 16). */
        uint32_t numMacs = 16;
    };

    NestedCounters() = default;

    /** Load the configuration registers and reset the counters. */
    void
    configure(const Config &config)
    {
        nc_assert(config.numMacs > 0, "PNG FSM needs >= 1 MAC");
        config_ = config;
        neuron_ = 0;
        connection_ = 0;
        mac_ = 0;
        done_ = config.numNeurons == 0 || config.numConnections == 0;
    }

    /** Current neuron-counter value (base of the active group). */
    uint64_t neuron() const { return neuron_; }
    /** Current connection-counter value. */
    uint32_t connection() const { return connection_; }
    /** Current MAC-counter value. */
    uint32_t mac() const { return mac_; }

    /** Index of the neuron the current state addresses belong to. */
    uint64_t currentNeuronIndex() const { return neuron_ + mac_; }

    /** True once every (neuron, connection, MAC) has been visited. */
    bool done() const { return done_; }

    /**
     * Advance one step: MAC counter innermost, then connection, then
     * the neuron counter by numMacs (the paper's example increments
     * the neuron counter by 16 per step for 16 MACs).
     *
     * MAC steps beyond the layer's last neuron (a partial final
     * group) are skipped so currentNeuronIndex() is always valid.
     */
    void
    advance()
    {
        nc_assert(!done_, "advance on a finished FSM");
        do {
            if (++mac_ >= config_.numMacs) {
                mac_ = 0;
                if (++connection_ >= config_.numConnections) {
                    connection_ = 0;
                    neuron_ += config_.numMacs;
                    if (neuron_ >= config_.numNeurons) {
                        done_ = true;
                        return;
                    }
                }
            }
        } while (currentNeuronIndex() >= config_.numNeurons);
    }

    /** The loaded configuration. */
    const Config &config() const { return config_; }

  private:
    Config config_;
    uint64_t neuron_ = 0;
    uint32_t connection_ = 0;
    uint32_t mac_ = 0;
    bool done_ = true;
};

} // namespace neurocube

#endif // NEUROCUBE_PNG_COUNTERS_HH
