/**
 * @file
 * Generalized PNG address generator.
 *
 * Embeds the three-nested-loop iteration of NestedCounters (Fig. 8b)
 * with the address mapping of Eq. 4-5: for every walked output neuron
 * group, for every connection, for every MAC, it yields the element
 * addresses of the state and weight operands together with the packet
 * routing fields (destination PE, MAC-ID, OP-ID, neuron group).
 *
 * Operand emission order is the hardware's: for one (group,
 * connection) step, the 16 state addresses are generated first and
 * the 16 weight addresses second, producing the burst-aligned 8-word
 * DRAM access pattern of Section VI.
 *
 * Walk entries are coalesced per (destination PE, neuron group) so a
 * vault never emits a later OP-ID before finishing its share of an
 * earlier one for the same group — the ordering invariant the PE's
 * OP-counter sequencing relies on.
 */

#ifndef NEUROCUBE_PNG_ADDRESS_GENERATOR_HH
#define NEUROCUBE_PNG_ADDRESS_GENERATOR_HH

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "noc/packet.hh"
#include "png/program.hh"

namespace neurocube
{

/** One element read the PNG wants to issue, with routing metadata. */
struct GeneratedOp
{
    /** Element address in this vault. */
    Addr addr = 0;
    /** State or Weight. */
    PacketKind kind = PacketKind::State;
    /** Destination PE. */
    PeId dst = 0;
    /** Destination MAC slot. */
    MacId mac = 0;
    /** Neuron group at the destination PE. */
    uint32_t group = 0;
    /** Operation index (connection number). */
    OpId opId = 0;
    /** Global output-neuron index (y * outMapWidth + x). */
    uint32_t neuron = 0;
    /** Memory channel storing the output neuron (write-back home). */
    VaultId homeVault = 0;
    /** The payload value to substitute for Partial-source weights. */
    bool isConstantOne = false;
};

/** Iterates a PngProgram, yielding operand reads one at a time. */
class AddressGenerator
{
  public:
    /**
     * Load a program.
     *
     * @param program the pass program for this vault
     * @param num_macs MAC units per PE (group size)
     * @param conn_block connections batched per emission phase: the
     *        generator emits the state operands of conn_block
     *        consecutive connections, then their weights, which
     *        lengthens the sequential DRAM runs of each stream and
     *        keeps state/weight row ping-pong off the critical path
     */
    void configure(const PngProgram &program, unsigned num_macs,
                   unsigned conn_block = 4);

    /** True when every operand has been yielded. */
    bool done() const { return done_; }

    /**
     * Produce the next operand read.
     *
     * @param op receives the generated operand
     * @retval true op is valid
     * @retval false generation is complete
     */
    bool next(GeneratedOp &op);

    /** Total operand reads yielded so far. */
    uint64_t generated() const { return generated_; }

    /** Output plane currently being generated (plane loop state). */
    unsigned currentPlane() const { return plane_; }

    /** MAC operations this program will feed (pairs of operands). */
    uint64_t totalPairs() const { return totalPairs_; }

    /** Upper bound on pairs (before ownership filtering). */
    uint64_t
    pairBudget() const
    {
        return uint64_t(walk_.size()) * program_.conns.size()
             * std::max(1u, program_.outPlanes);
    }

  private:
    /** One walked output neuron with precomputed routing. */
    struct Walked
    {
        int32_t x;
        int32_t y;
        PeId dst;
        MacId mac;
        uint32_t group;
        uint32_t walkIndex; // original walk position (weight layout)
    };

    /** Fill the emission buffer for the next connection block. */
    void fillBuffer();

    /** State-operand address for a walk entry and connection. */
    Addr stateAddr(const Walked &entry, const Conn &conn) const;
    /** Weight-operand address for a walk entry and connection. */
    Addr weightAddr(const Walked &entry, uint32_t conn_index) const;
    /** True when this vault generates (entry, conn). */
    bool owns(const Walked &entry, const Conn &conn) const;

    PngProgram program_;
    unsigned numMacs_ = 16;

    std::vector<Walked> walk_;
    /** [begin, end) runs in walk_ sharing one (dst, group). */
    std::vector<std::pair<uint32_t, uint32_t>> chunks_;

    unsigned connBlock_ = 4;
    size_t chunk_ = 0;
    uint32_t conn_ = 0;
    /** Current output plane (the FSM's fourth loop). */
    unsigned plane_ = 0;
    /** Per destination PE: neuron groups per output plane. */
    std::vector<uint32_t> groupsPerDst_;
    /** Pre-generated operands of the current connection block. */
    std::vector<GeneratedOp> buffer_;
    size_t bufferPos_ = 0;
    bool done_ = true;

    uint64_t generated_ = 0;
    uint64_t totalPairs_ = 0;
};

} // namespace neurocube

#endif // NEUROCUBE_PNG_ADDRESS_GENERATOR_HH
