/**
 * @file
 * Programmable neurosequence generator (paper Sections IV-V, Fig. 8a).
 *
 * One PNG sits next to each vault controller. Per pass it:
 *  - generates the operand address stream (AddressGenerator) and
 *    issues element reads to its vault controller;
 *  - encapsulates returning data into 36-bit packets (SRC, DST,
 *    MAC-ID, OP-ID) and injects them into the local router's memory
 *    port;
 *  - receives write-back packets, pushes the accumulated state
 *    through the activation LUT, and writes the result to its vault;
 *  - raises "pass done" once the state of the last owned output
 *    neuron has been received (Fig. 8d's layer-done condition).
 */

#ifndef NEUROCUBE_PNG_PNG_HH
#define NEUROCUBE_PNG_PNG_HH

#include <cstdint>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "dram/memory_channel.hh"
#include "noc/fabric.hh"
#include "png/address_generator.hh"
#include "png/lut.hh"
#include "png/program.hh"
#include "trace/trace.hh"

namespace neurocube
{

/** Structural parameters of a PNG. */
struct PngParams
{
    /** MAC units per PE (group size for the generator). */
    unsigned numMacs = 16;
    /** Element reads issued to the vault controller per tick. */
    unsigned maxIssuePerTick = 4;
    /** Packets buffered between the vault and the router. */
    unsigned outQueueDepth = 16;
    /** Write-back packets absorbed per tick. */
    unsigned maxWriteBacksPerTick = 2;
    /** Connections batched per emission phase (DRAM run length). */
    unsigned connBlockSize = 16;
};

/** One vault's programmable neurosequence generator. */
class Png
{
  public:
    /**
     * @param id the vault this PNG serves
     * @param params structural parameters
     * @param channel the vault controller / DRAM channel
     * @param fabric the NoC
     * @param parent stat group parent
     */
    Png(VaultId id, const PngParams &params, MemoryChannel &channel,
        NocFabric &fabric, StatGroup *parent);

    /** Load a pass program (host writes the configuration regs). */
    void configure(const PngProgram &program);

    /** Advance one reference-clock tick. */
    void tick(Tick now);

    /**
     * First tick after @p now at which tick() could act, given no
     * external input. tickNever when the PNG is disabled or every
     * local move is blocked on an external event (a vault response /
     * freed queue slot, which the channel's serve hook signals, or a
     * delivered write-back, which the fabric's eject hook signals).
     */
    Tick nextEventAfter(Tick now);

    /**
     * Account ticks [from, to) in bulk, replicating what that many
     * provably-no-op tick() calls would have recorded (out-queue
     * depth samples and the stall classification, both constant over
     * the window). @pre nextEventAfter() returned tickNever and no
     * wake event landed inside the window.
     */
    void skipTicks(Tick from, Tick to);

    /**
     * True when the pass is complete from this PNG's perspective:
     * every operand generated and injected, and the write-back for
     * the last owned output neuron received and issued to the vault.
     */
    bool done() const;

    /** Vault index. */
    VaultId id() const { return id_; }

    /** Write-back packets received so far this pass. */
    uint64_t writeBacksReceived() const { return wbReceived_; }

    /** Operand pairs generated so far this pass (2 MAC ops each). */
    uint64_t totalPairs() const { return generator_.totalPairs(); }

    /** Upper bound on this pass's pairs (deadline estimation). */
    uint64_t pairBudget() const { return generator_.pairBudget(); }

    /** The loaded program. */
    const PngProgram &program() const { return program_; }

    /** Output planes the generator may run ahead of write-backs. */
    static constexpr unsigned planeWindow = 4;

    /** Out-queue depth distribution (packets, per enabled tick). */
    const Histogram &
    outQueueDepthHistogram() const
    {
        return histOutQueueDepth_;
    }

  private:
    /** Publish a PngPhase event when the FSM phase/plane changes. */
    void tracePhase(PngFsmPhase phase, unsigned plane);

    VaultId id_;
    PngParams params_;
    MemoryChannel &channel_;
    NocFabric &fabric_;

    /** Last FSM phase published to the trace bus. */
    PngFsmPhase tracePhase_ = PngFsmPhase::Idle;
    /** Last generator plane published to the trace bus. */
    unsigned tracePlane_ = ~0u;

    PngProgram program_;
    AddressGenerator generator_;
    const Lut *lut_;

    /** One read in flight. */
    struct PendingRead
    {
        uint64_t tag;
        GeneratedOp op;
    };

    /**
     * Metadata for reads in flight. The vault controller may
     * complete row hits out of order (FR-FCFS), so responses are
     * matched by tag within this window. Unordered: matches are
     * removed by swap-with-back, which keeps removal O(1) — nothing
     * observable depends on the order of in-flight entries.
     */
    std::vector<PendingRead> pending_;
    /** Encapsulated packets awaiting router injection. */
    PacketRing outQueue_;
    uint64_t nextTag_ = 0;
    uint64_t wbReceived_ = 0;

    /** Write-backs per output plane (0 = no plane throttling). */
    uint64_t perPlaneWb_ = 0;
    /**
     * Cached plane-throttle bound: the generator may issue while
     * currentPlane() < allowedPlane_. Recomputed when wbReceived_
     * changes (the only input that moves within a pass).
     */
    unsigned allowedPlane_ = ~0u;

    /** True while the issue loop has anything it could issue. */
    bool
    canIssue() const
    {
        return !generator_.done()
            && generator_.currentPlane() < allowedPlane_
            && channel_.canAccept()
            && pending_.size() < MemoryChannel::queueCapacity;
    }

    StatGroup statGroup_;
    Stat statIssued_;
    Stat statInjected_;
    Stat statWriteBacks_;
    Stat statInjectStallTicks_;
    /** Packets waiting for router injection, sampled per tick. */
    Histogram histOutQueueDepth_;
};

} // namespace neurocube

#endif // NEUROCUBE_PNG_PNG_HH
