/**
 * @file
 * Non-linear activation function implemented as a look-up table
 * (paper Section IV-A/IV-B).
 *
 * Each PNG owns a LUT that maps a 16-bit accumulated neuron state to
 * its activated output. Reprogramming the LUT per layer is how the
 * Neurocube realizes different activation functions (the paper notes
 * LSTM-style networks are supported "by updating the LUT for each
 * layer during programming").
 */

#ifndef NEUROCUBE_PNG_LUT_HH
#define NEUROCUBE_PNG_LUT_HH

#include <cstdint>
#include <vector>

#include "common/fixed_point.hh"

namespace neurocube
{

/** Activation functions the library ships LUT generators for. */
enum class ActivationKind : uint8_t
{
    Identity,
    ReLU,
    Sigmoid,
    Tanh,
};

/** Name of an activation kind (for dumps and tables). */
const char *activationName(ActivationKind kind);

/**
 * A 2^16-entry look-up table from raw Q1.7.8 input to Q1.7.8 output.
 *
 * The table is materialized exactly as the hardware would hold it, so
 * activation results are a pure function of the input bit pattern.
 */
class Lut
{
  public:
    /** Build the table for a standard activation. */
    explicit Lut(ActivationKind kind);

    /** Apply the activation to one value. */
    Fixed
    apply(Fixed in) const
    {
        return table_[uint16_t(in.raw())];
    }

    /** The activation this table implements. */
    ActivationKind kind() const { return kind_; }

    /** Number of table entries. */
    static constexpr size_t entries = 1u << 16;

  private:
    ActivationKind kind_;
    /** Dense table indexed by the unsigned reinterpretation of raw. */
    std::vector<Fixed> table_;
};

/** Process-wide shared table for an activation kind (immutable). */
const Lut &sharedLut(ActivationKind kind);

} // namespace neurocube

#endif // NEUROCUBE_PNG_LUT_HH
