#include "png/png.hh"

#include "common/logging.hh"
#include "trace/energy.hh"
#include "trace/metrics.hh"

namespace neurocube
{

Png::Png(VaultId id, const PngParams &params, MemoryChannel &channel,
         NocFabric &fabric, StatGroup *parent)
    : id_(id), params_(params), channel_(channel), fabric_(fabric),
      lut_(&sharedLut(ActivationKind::Identity)),
      statGroup_(parent, "png" + std::to_string(id)),
      statIssued_(&statGroup_, "issued", "element reads issued"),
      statInjected_(&statGroup_, "injected", "operand packets injected"),
      statWriteBacks_(&statGroup_, "writeBacks",
                      "write-back packets absorbed"),
      statInjectStallTicks_(&statGroup_, "injectStallTicks",
                            "ticks with packets blocked on the router"),
      histOutQueueDepth_(&statGroup_, "outQueueDepth",
                         "packets awaiting router injection per tick")
{
}

void
Png::tracePhase(PngFsmPhase phase, unsigned plane)
{
#if NEUROCUBE_TRACE_ENABLED
    if (phase == tracePhase_ && plane == tracePlane_)
        return;
    tracePhase_ = phase;
    tracePlane_ = plane;
    NC_TRACE(TraceComponent::Png, id_, TraceEventType::PngPhase,
             uint32_t(phase), plane);
#else
    (void)phase;
    (void)plane;
#endif
}

void
Png::configure(const PngProgram &program)
{
    nc_assert(pending_.empty() && outQueue_.empty(),
              "reprogramming PNG %u with work in flight", unsigned(id_));
    program_ = program;
    generator_.configure(program, params_.numMacs,
                         params_.connBlockSize);
    lut_ = &sharedLut(program.activation);
    wbReceived_ = 0;
    perPlaneWb_ = 0;
    if (program_.outPlanes > 1 && program_.expectedWriteBacks > 0)
        perPlaneWb_ = program_.expectedWriteBacks / program_.outPlanes;
    allowedPlane_ = perPlaneWb_ > 0 ? planeWindow : ~0u;
    tracePhase(program.enabled ? PngFsmPhase::Configured
                               : PngFsmPhase::Idle,
               0);
}

void
Png::tick(Tick now)
{
    if (!program_.enabled) {
        NC_METRIC_CYCLE(TraceComponent::Png, id_, StallClass::Idle);
        return;
    }
    histOutQueueDepth_.sample(outQueue_.size());

    // 1. Generate operand addresses and issue reads to the vault.
    // The plane loop is throttled against this vault's own
    // write-back progress so one fast vault cannot run whole output
    // maps ahead of the PEs consuming its stream (every vault
    // generates plane p before any stalls at p + window, so progress
    // is guaranteed plane by plane). allowedPlane_ is maintained by
    // configure() and the absorb loop below (its only inputs).
    unsigned issued = 0;
    while (issued < params_.maxIssuePerTick && !generator_.done()
           && generator_.currentPlane() < allowedPlane_
           && channel_.canAccept()
           && pending_.size() < MemoryChannel::queueCapacity) {
        GeneratedOp op;
        if (!generator_.next(op))
            break;
        MemRequest req;
        req.write = false;
        req.addr = op.addr;
        req.tag = nextTag_++;
        channel_.enqueue(req);
        pending_.push_back({req.tag, op});
        ++issued;
        statIssued_ += 1;
    }
    if (issued > 0) {
        NC_ENERGY_EVENT(EnergyEventKind::PngOp, id_, issued);
        NC_TRACE(TraceComponent::Png, id_, TraceEventType::PngIssue,
                 0, issued);
    }

    // 2. Encapsulate returned data into packets. Completions may be
    // out of order within the vault controller's reorder window, so
    // match by tag.
    auto &responses = channel_.responses();
    while (!responses.empty()
           && outQueue_.size() < params_.outQueueDepth) {
        const MemResponse &resp = responses.front();
        nc_assert(!pending_.empty(), "response without a pending read");
        size_t match = 0;
        while (match < pending_.size()
               && pending_[match].tag != resp.tag)
            ++match;
        nc_assert(match < pending_.size(),
                  "unmatched response tag at PNG %u", unsigned(id_));
        const GeneratedOp &op = pending_[match].op;
        Packet packet;
        packet.kind = op.kind;
        packet.src = id_;
        packet.dst = op.dst;
        packet.dstIsMem = false;
        packet.mac = op.mac;
        packet.opId = op.opId;
        packet.group = op.group;
        packet.neuron = op.neuron;
        packet.homeVault = op.homeVault;
        packet.data = resp.data;
        outQueue_.push_back(packet);
        pending_[match] = pending_.back();
        pending_.pop_back();
        responses.pop_front();
    }

    // 3. Inject packets into the router's memory port.
    unsigned width = fabric_.config().localPortWidth;
    unsigned injected = 0;
    while (injected < width && !outQueue_.empty()
           && fabric_.memInjectSpace(id_) > 0) {
        fabric_.injectFromMem(id_, outQueue_.front(), now);
        outQueue_.pop_front();
        ++injected;
        statInjected_ += 1;
    }
    if (!outQueue_.empty() && injected == 0) {
        statInjectStallTicks_ += 1;
        NC_TRACE(TraceComponent::Png, id_,
                 TraceEventType::PngInjectStall, 0,
                 outQueue_.size());
    }

    // 4. Absorb write-backs: activation LUT, then write to the vault.
    auto &delivery = fabric_.memDelivery(id_);
    unsigned absorbed = 0;
    while (!delivery.empty() && absorbed < params_.maxWriteBacksPerTick
           && channel_.canAccept()) {
        const Packet &wb = delivery.front();
        nc_assert(wb.kind == PacketKind::WriteBack,
                  "non-write-back packet on PNG %u memory port",
                  unsigned(id_));
        uint32_t plane = 0;
        uint32_t pixel = wb.neuron;
        if (program_.outPlaneSize > 0) {
            plane = wb.neuron / program_.outPlaneSize;
            pixel = wb.neuron % program_.outPlaneSize;
        }
        int32_t x = int32_t(pixel % program_.outMapWidth);
        int32_t y = int32_t(pixel / program_.outMapWidth);
        MemRequest req;
        req.write = true;
        req.addr = program_.output.addrOf(program_.outPlane + plane,
                                          x, y);
        req.data = lut_->apply(wb.data);
        channel_.enqueue(req);
        delivery.pop_front();
        ++absorbed;
        ++wbReceived_;
        statWriteBacks_ += 1;
    }
    if (absorbed > 0) {
        NC_ENERGY_EVENT(EnergyEventKind::PngOp, id_, absorbed);
        if (perPlaneWb_ > 0) {
            allowedPlane_ = unsigned(wbReceived_ / perPlaneWb_)
                          + planeWindow;
        }
    }

    // Attribute the cycle. Injection backpressure first: packets
    // sitting in the out-queue with zero injected is the signal the
    // paper's memory-port sizing is about, and it subsumes whatever
    // else the PNG did this tick. A plane-throttled generator is
    // idle by choice (waiting for PEs, not for a resource).
    StallClass cls;
    if (!outQueue_.empty() && injected == 0) {
        cls = StallClass::StallInject;
    } else if (issued > 0 || injected > 0 || absorbed > 0) {
        cls = StallClass::Busy;
    } else if (!generator_.done()
               && generator_.currentPlane() >= allowedPlane_) {
        cls = StallClass::Idle;
    } else if (!generator_.done() || !pending_.empty()) {
        // Wants to issue (or has reads in flight) but the vault
        // controller is not accepting / has not responded.
        cls = StallClass::StallDram;
    } else {
        cls = StallClass::Idle;
    }
    NC_METRIC_CYCLE(TraceComponent::Png, id_, cls);

#if NEUROCUBE_TRACE_ENABLED
    // Counter-FSM phase for the trace: generating while addresses
    // are still being produced, draining until the last owned
    // write-back lands, then done.
    tracePhase(done()                ? PngFsmPhase::Done
               : !generator_.done() ? PngFsmPhase::Generating
                                    : PngFsmPhase::Draining,
               generator_.done() ? tracePlane_
                                 : generator_.currentPlane());
#endif
}

bool
Png::done() const
{
    if (!program_.enabled)
        return true;
    return generator_.done() && pending_.empty() && outQueue_.empty()
        && wbReceived_ >= program_.expectedWriteBacks;
}

Tick
Png::nextEventAfter(Tick now)
{
    if (!program_.enabled)
        return tickNever;
    // Work a tick could do on its own: inject (or count an inject
    // stall), encapsulate a response, issue a read, absorb a
    // delivered write-back. Everything else waits on the vault
    // (serve hook) or the NoC (eject hook).
    if (!outQueue_.empty())
        return now + 1;
    if (!channel_.responsesEmpty())
        return now + 1;
    if (canIssue())
        return now + 1;
    if (!fabric_.memDelivery(id_).empty() && channel_.canAccept())
        return now + 1;
    return tickNever;
}

void
Png::skipTicks(Tick from, Tick to)
{
    nc_assert(from < to, "empty PNG skip window");
    const uint64_t n = to - from;
    if (!program_.enabled) {
        NC_METRIC_CYCLES(TraceComponent::Png, id_, StallClass::Idle,
                         n);
        return;
    }
    // The sleep condition guarantees an empty out-queue and that no
    // tick in the window issues, injects or absorbs, so every skipped
    // tick samples depth 0 and lands in the same stall class as a
    // ticked one would.
    histOutQueueDepth_.sample(0, n);
    StallClass cls;
    if (!generator_.done()
        && generator_.currentPlane() >= allowedPlane_) {
        cls = StallClass::Idle; // plane-throttled: waiting on PEs
    } else if (!generator_.done() || !pending_.empty()) {
        cls = StallClass::StallDram;
    } else {
        cls = StallClass::Idle;
    }
    NC_METRIC_CYCLES(TraceComponent::Png, id_, cls, n);
}

} // namespace neurocube
