#include "png/lut.hh"

#include <cmath>
#include <memory>
#include <vector>

#include "common/logging.hh"

namespace neurocube
{

const char *
activationName(ActivationKind kind)
{
    switch (kind) {
      case ActivationKind::Identity: return "identity";
      case ActivationKind::ReLU:     return "relu";
      case ActivationKind::Sigmoid:  return "sigmoid";
      case ActivationKind::Tanh:     return "tanh";
    }
    return "?";
}

namespace
{

double
activate(ActivationKind kind, double x)
{
    switch (kind) {
      case ActivationKind::Identity:
        return x;
      case ActivationKind::ReLU:
        return x > 0.0 ? x : 0.0;
      case ActivationKind::Sigmoid:
        return 1.0 / (1.0 + std::exp(-x));
      case ActivationKind::Tanh:
        return std::tanh(x);
    }
    nc_panic("unknown activation kind");
    return 0.0;
}

} // namespace

Lut::Lut(ActivationKind kind) : kind_(kind), table_(entries)
{
    for (size_t i = 0; i < entries; ++i) {
        Fixed in = Fixed::fromRaw(int16_t(uint16_t(i)));
        table_[i] = Fixed::fromDouble(activate(kind, in.toDouble()));
    }
}

const Lut &
sharedLut(ActivationKind kind)
{
    // Function-local statics: built once, never destroyed state is
    // trivially a heap leak-free singleton via static storage.
    static const Lut identity(ActivationKind::Identity);
    static const Lut relu(ActivationKind::ReLU);
    static const Lut sigmoid(ActivationKind::Sigmoid);
    static const Lut tanh_lut(ActivationKind::Tanh);
    switch (kind) {
      case ActivationKind::Identity: return identity;
      case ActivationKind::ReLU:     return relu;
      case ActivationKind::Sigmoid:  return sigmoid;
      case ActivationKind::Tanh:     return tanh_lut;
    }
    nc_panic("unknown activation kind");
    return identity;
}

} // namespace neurocube
