#include "core/layer_compiler.hh"

#include <algorithm>

#include "common/logging.hh"

namespace neurocube
{

namespace
{

/** Output rectangle of a layer (1 x N for fully connected). */
Rect
layerOutRect(const LayerDesc &layer)
{
    if (layer.type == LayerType::FullyConnected)
        return {0, 0, int32_t(layer.outMaps), 1};
    return {0, 0, int32_t(layer.outWidth()),
            int32_t(layer.outHeight())};
}

/** Output plane count (FC outputs are a single vector plane). */
unsigned
layerOutPlanes(const LayerDesc &layer)
{
    return layer.type == LayerType::FullyConnected ? 1
                                                   : layer.outMaps;
}

/** Out pixels whose receptive fields touch the given input tile. */
Rect
reachableOutputs(const LayerDesc &layer, const Rect &in_tile,
                 const Rect &out_rect)
{
    int32_t s = int32_t(layer.stride);
    int32_t k = int32_t(layer.kernel);
    // x*s + dx in [ix0, ix0+iw) for some dx in [0, k)
    int32_t lo_x = (in_tile.x0 - k + s) / s; // ceil((ix0-k+1)/s)
    int32_t hi_x = (in_tile.x0 + in_tile.w - 1) / s;
    int32_t lo_y = (in_tile.y0 - k + s) / s;
    int32_t hi_y = (in_tile.y0 + in_tile.h - 1) / s;
    Rect r{lo_x, lo_y, hi_x - lo_x + 1, hi_y - lo_y + 1};
    return r.expandedWithin(0, out_rect);
}

/** Smallest rectangle containing both arguments. */
Rect
boundingUnion(const Rect &a, const Rect &b)
{
    if (a.count() == 0)
        return b;
    if (b.count() == 0)
        return a;
    int32_t x0 = std::min(a.x0, b.x0);
    int32_t y0 = std::min(a.y0, b.y0);
    int32_t x1 = std::max(a.x0 + a.w, b.x0 + b.w);
    int32_t y1 = std::max(a.y0 + a.h, b.y0 + b.h);
    return {x0, y0, x1 - x0, y1 - y0};
}

} // namespace

LayerCompiler::LayerCompiler(const NeurocubeConfig &config)
    : config_(config)
{
}

std::vector<Conn>
LayerCompiler::buildConns(const LayerDesc &layer, unsigned pass) const
{
    const bool split = config_.splitFullConvPasses;
    std::vector<Conn> conns;
    auto spatial = [&](uint16_t im) {
        for (unsigned dy = 0; dy < layer.kernel; ++dy) {
            for (unsigned dx = 0; dx < layer.kernel; ++dx) {
                conns.push_back({Conn::Source::Input, im,
                                 int16_t(dx), int16_t(dy)});
            }
        }
    };
    switch (layer.type) {
      case LayerType::Conv2D:
        if (layer.channelwise) {
            spatial(uint16_t(pass % layer.inMaps));
        } else if (!split) {
            // One pass per output map, connections spanning every
            // input map (fc1's 256-connection programming).
            for (unsigned im = 0; im < layer.inMaps; ++im)
                spatial(uint16_t(im));
        } else {
            unsigned im = pass % layer.inMaps;
            spatial(uint16_t(im));
            if (im > 0) {
                // Accumulate the previous passes' partial sum.
                conns.push_back({Conn::Source::Partial, 0, 0, 0});
            }
        }
        break;
      case LayerType::Pool:
        for (unsigned dy = 0; dy < layer.kernel; ++dy) {
            for (unsigned dx = 0; dx < layer.kernel; ++dx) {
                conns.push_back({Conn::Source::Input, uint16_t(pass),
                                 int16_t(dx), int16_t(dy)});
            }
        }
        break;
      case LayerType::FullyConnected:
        // Plane-major flattening (map, y, x) — the weight layout
        // contract shared with the reference model.
        for (unsigned m = 0; m < layer.inMaps; ++m) {
            for (unsigned y = 0; y < layer.inHeight; ++y) {
                for (unsigned x = 0; x < layer.inWidth; ++x) {
                    conns.push_back({Conn::Source::Input, uint16_t(m),
                                     int16_t(x), int16_t(y)});
                }
            }
        }
        break;
    }
    return conns;
}

LayerCompiler::ChannelLayout
LayerCompiler::layoutChannel(const LayerDesc &layer,
                             const LayerMapping &mapping,
                             const std::vector<Fixed> &weights,
                             const Tensor &input, unsigned channel,
                             const Rect &out_rect, unsigned out_planes,
                             BackingStore &store) const
{
    ChannelLayout layout;
    store.clear();

    // Constant 1.0 for partial-sum connections.
    Region ones = store.allocate(1);
    layout.onesAddr = ones.base;
    store.write(ones.base, Fixed::fromDouble(1.0));

    // Input planes: the stored rectangle for every input map. Layers
    // whose connections span every map at one pixel (1x1 full
    // convolutions — the per-pixel classifiers and the LSTM gate
    // products) use the pixel-major layout so their operand stream
    // walks DRAM rows sequentially.
    const Rect &stored = mapping.storedInput[channel];
    layout.input.region =
        store.allocate(stored.count() * layer.inMaps);
    layout.input.stored = stored;
    layout.input.planes = layer.inMaps;
    layout.input.pixelMajor = layer.type == LayerType::Conv2D
        && !layer.channelwise && layer.kernel == 1;
    for (unsigned m = 0; m < layer.inMaps; ++m) {
        for (int32_t y = stored.y0; y < stored.y0 + stored.h; ++y) {
            for (int32_t x = stored.x0; x < stored.x0 + stored.w;
                 ++x) {
                store.write(layout.input.addrOf(m, x, y),
                            input.at(m, unsigned(y), unsigned(x)));
            }
        }
    }

    // Weights. Fully connected matrices are stored group-blocked and
    // MAC-minor (see PngProgram::weightInterleaved) so the FSM's
    // MAC-innermost address stream walks DRAM rows sequentially.
    const unsigned group = 16; // MACs per PE group
    if (layer.type == LayerType::Conv2D && layer.perNeuronWeights) {
        // Per-neuron weights, partitioned with the output tile and
        // stored group-blocked/MAC-minor per pass (output map).
        Rect tile = mapping.outTiles.tile(channel);
        uint64_t conns = layer.connectionsPerNeuron();
        uint64_t neurons = layer.neuronsPerMap();
        uint64_t blocks = (tile.count() + group - 1) / group;
        uint64_t pass_elems = blocks * group * conns;
        layout.weights =
            store.allocate(std::max<uint64_t>(1,
                                              pass_elems
                                                  * layer.outMaps));
        for (unsigned om = 0; om < layer.outMaps; ++om) {
            uint64_t walk = 0;
            for (int32_t y = tile.y0; y < tile.y0 + tile.h; ++y) {
                for (int32_t x = tile.x0; x < tile.x0 + tile.w;
                     ++x, ++walk) {
                    uint64_t n = uint64_t(y) * layer.outWidth() + x;
                    for (uint64_t c = 0; c < conns; ++c) {
                        Addr addr = layout.weights.base
                            + uint64_t(om) * pass_elems
                            + (walk / group) * conns * group
                            + c * group + walk % group;
                        store.write(
                            addr,
                            weights[(uint64_t(om) * neurons + n)
                                        * conns + c]);
                    }
                }
            }
        }
    } else if (layer.type != LayerType::FullyConnected) {
        uint64_t welems = mapping.weightElements[channel];
        layout.weights = store.allocate(welems);
        // Shared kernels: the full layer block, duplicated per vault.
        nc_assert(welems == weights.size(),
                  "shared weight block size mismatch");
        for (uint64_t i = 0; i < welems; ++i)
            store.write(layout.weights.base + i, weights[i]);
    } else {
        uint64_t n = layer.connectionsPerNeuron();
        auto interleaved = [&](uint64_t walk, uint64_t col,
                               uint64_t slice) {
            return layout.weights.base
                + (walk / group) * slice * group + col * group
                + walk % group;
        };
        if (mapping.duplicated) {
            // Rows of this channel's own output neurons (Fig. 10d).
            Rect tile = mapping.outTiles.tile(channel);
            uint64_t blocks = (uint64_t(tile.w) + group - 1) / group;
            layout.weights = store.allocate(blocks * group * n);
            uint64_t walk = 0;
            for (int32_t o = tile.x0; o < tile.x0 + tile.w;
                 ++o, ++walk) {
                for (uint64_t c = 0; c < n; ++c) {
                    store.write(interleaved(walk, c, n),
                                weights[uint64_t(o) * n + c]);
                }
            }
        } else {
            // Columns of this channel's input slice, all rows
            // (Fig. 10e). Column order follows the plane-major
            // connection enumeration restricted to owned pixels.
            Rect owned = mapping.inTiles.tile(channel);
            std::vector<uint64_t> owned_cols;
            for (unsigned m = 0; m < layer.inMaps; ++m) {
                for (unsigned y = 0; y < layer.inHeight; ++y) {
                    for (unsigned x = 0; x < layer.inWidth; ++x) {
                        if (owned.contains(int32_t(x), int32_t(y))) {
                            owned_cols.push_back(
                                (uint64_t(m) * layer.inHeight + y)
                                    * layer.inWidth + x);
                        }
                    }
                }
            }
            uint64_t slice = owned_cols.size();
            uint64_t blocks =
                (uint64_t(layer.outMaps) + group - 1) / group;
            layout.weights =
                store.allocate(std::max<uint64_t>(1, blocks * group
                                                         * slice));
            for (unsigned o = 0; o < layer.outMaps; ++o) {
                for (uint64_t j = 0; j < slice; ++j) {
                    store.write(interleaved(o, j, slice),
                                weights[uint64_t(o) * n
                                        + owned_cols[j]]);
                }
            }
        }
    }

    // Output planes for this channel's own output tile, zeroed.
    Rect out_tile = mapping.outTiles.tile(channel);
    layout.output.region =
        store.allocate(out_tile.count() * out_planes);
    layout.output.stored = out_tile;
    layout.output.planes = out_planes;
    for (uint64_t i = 0; i < out_tile.count() * out_planes; ++i)
        store.write(layout.output.region.base + i, Fixed());
    (void)out_rect;
    return layout;
}

CompiledLayer
LayerCompiler::compile(const LayerDesc &layer,
                       const std::vector<Fixed> &weights,
                       const Tensor &input,
                       std::vector<BackingStore *> &stores,
                       const LaneSpec *lane) const
{
    layer.validate();
    const unsigned num_channels = lane
        ? unsigned(lane->nodes.size())
        : config_.dram.numChannels;
    const unsigned num_pes =
        lane ? unsigned(lane->nodes.size()) : config_.numPes;
    nc_assert(stores.size() == num_channels,
              "store count %zu != channel count %u", stores.size(),
              num_channels);

    CompiledLayer compiled;
    compiled.desc = layer;
    compiled.mapping =
        buildLayerMapping(layer, config_.mapping, num_channels);
    compiled.outRect = layerOutRect(layer);
    compiled.outPlanes = layerOutPlanes(layer);

    // Destination partition across PEs (may be finer than channels).
    unsigned pe_gw, pe_gh;
    tileGridShape(num_pes, compiled.outRect, pe_gw, pe_gh);
    TileMap pe_tiles = TileMap::grid(compiled.outRect, pe_gw, pe_gh);

    // Relocation of tile indices onto mesh nodes: lane compiles use
    // the lane's node list for both channels and PEs (one vault per
    // node), whole-machine compiles use the configured attachment.
    std::vector<uint16_t> home_nodes;
    std::vector<uint16_t> pe_nodes;
    if (lane) {
        home_nodes.assign(lane->nodes.begin(), lane->nodes.end());
        pe_nodes = home_nodes;
    } else {
        std::vector<unsigned> mem_nodes =
            config_.resolvedMemoryNodes();
        home_nodes.assign(mem_nodes.begin(), mem_nodes.end());
    }

    // Host mapping step: lay out and write every channel's data.
    std::vector<ChannelLayout> layouts;
    layouts.reserve(num_channels);
    for (unsigned ch = 0; ch < num_channels; ++ch) {
        layouts.push_back(layoutChannel(layer, compiled.mapping,
                                        weights, input, ch,
                                        compiled.outRect,
                                        compiled.outPlanes,
                                        *stores[ch]));
        compiled.outputStorage.push_back(layouts.back().output);
    }

    const bool fc = layer.type == LayerType::FullyConnected;
    const bool per_neuron = layer.type == LayerType::Conv2D
        && layer.perNeuronWeights;
    const bool shared_kernels = !fc && !per_neuron;
    const bool duplicate = compiled.mapping.duplicated
        || (fc ? config_.mapping.duplicateFcInput
               : config_.mapping.duplicateConvHalo);
    const bool stream_weights =
        !(config_.mapping.weightsInPeMemory && shared_kernels);
    const uint64_t kk = uint64_t(layer.kernel) * layer.kernel;

    // Per-channel FC column remaps (built once, shared by the pass).
    std::vector<std::vector<uint32_t>> fc_conn_maps(num_channels);
    std::vector<uint64_t> fc_slice(num_channels, 0);
    if (fc && !duplicate) {
        for (unsigned ch = 0; ch < num_channels; ++ch) {
            Rect owned = compiled.mapping.inTiles.tile(ch);
            auto &map = fc_conn_maps[ch];
            map.assign(layer.connectionsPerNeuron(), ~0u);
            uint32_t dense = 0;
            uint64_t c = 0;
            for (unsigned m = 0; m < layer.inMaps; ++m) {
                for (unsigned y = 0; y < layer.inHeight; ++y) {
                    for (unsigned x = 0; x < layer.inWidth;
                         ++x, ++c) {
                        if (owned.contains(int32_t(x), int32_t(y)))
                            map[c] = dense++;
                    }
                }
            }
            fc_slice[ch] = dense;
        }
    }

    const bool split_full = config_.splitFullConvPasses
        && layer.type == LayerType::Conv2D && !layer.channelwise
        && !per_neuron;
    // The FSM's plane loop executes every output map of a conv/pool
    // layer in one program (the paper programs each LAYER once);
    // split-full mode keeps one program per (outMap, inMap) pass.
    const bool collapse = !fc && !split_full;
    unsigned num_passes = split_full
        ? layer.outMaps * layer.inMaps
        : (fc ? 1u : 1u);
    const unsigned program_planes =
        collapse ? layer.outMaps : 1u;

    // Weights consumed per plane (for the plane-local window).
    uint64_t pass_weights = kk;
    if (layer.type == LayerType::Conv2D && !layer.channelwise
        && !split_full) {
        pass_weights = kk * layer.inMaps;
    } else if (layer.type == LayerType::Pool) {
        pass_weights = 0; // all planes share the one kernel
    }

    for (unsigned pass = 0; pass < num_passes; ++pass) {
        CompiledPass cp;
        std::vector<Conn> conns = buildConns(layer, pass);

        uint64_t pass_weight_offset = uint64_t(pass) * pass_weights;
        uint64_t pass_weight_count =
            layer.type == LayerType::Pool ? kk : pass_weights;

        unsigned out_plane =
            fc ? 0 : (split_full ? pass / layer.inMaps : 0);
        bool final_pass = !split_full
            || (pass % layer.inMaps) == layer.inMaps - 1;

        cp.programs.resize(num_channels);
        for (unsigned ch = 0; ch < num_channels; ++ch) {
            PngProgram &prog = cp.programs[ch];
            const ChannelLayout &layout = layouts[ch];

            prog.conns = conns;
            prog.strideX = fc ? 0 : layer.stride;
            prog.strideY = fc ? 0 : layer.stride;
            prog.input = layout.input;
            prog.output = layout.output;
            prog.outPlane = out_plane;
            prog.onesAddr = layout.onesAddr;
            prog.outTiles = pe_tiles;
            prog.peNode = pe_nodes;
            prog.homeTiles = compiled.mapping.outTiles;
            prog.homeNode = home_nodes;
            prog.activation = final_pass ? layer.activation
                                         : ActivationKind::Identity;
            prog.outMapWidth = uint32_t(compiled.outRect.w);
            prog.outPlaneSize = uint32_t(compiled.outRect.count());
            prog.outPlanes = program_planes;
            prog.streamWeights = stream_weights;
            prog.expectedWriteBacks =
                compiled.mapping.outTiles.tile(ch).count()
                * program_planes;
            if (collapse
                && (layer.channelwise
                    || layer.type == LayerType::Pool)) {
                prog.planeInMapModulo = layer.inMaps;
            }

            if (fc) {
                prog.weights = layout.weights;
                prog.weightInterleaved = true;
                if (duplicate) {
                    prog.outWalk =
                        compiled.mapping.outTiles.tile(ch);
                    prog.filterByInput = false;
                    prog.weightNeuronStride =
                        layer.connectionsPerNeuron();
                    prog.weightConnOffset = 0;
                } else {
                    prog.outWalk = compiled.outRect;
                    prog.filterByInput = true;
                    prog.ownedInput =
                        compiled.mapping.inTiles.tile(ch);
                    prog.weightNeuronStride = fc_slice[ch];
                    prog.weightConnMap = fc_conn_maps[ch];
                }
            } else if (per_neuron) {
                // 1x1 per-neuron weights: outputs, inputs and
                // weights all partition identically, so the walk is
                // the vault's own tile and everything is local.
                Rect tile = compiled.mapping.outTiles.tile(ch);
                uint64_t conns_n = layer.connectionsPerNeuron();
                uint64_t blocks = (tile.count() + 15) / 16;
                uint64_t pass_elems = blocks * 16 * conns_n;
                prog.weights = {layout.weights.base, pass_elems};
                prog.weightPlaneStride = pass_elems;
                prog.weightNeuronStride = conns_n;
                prog.weightInterleaved = true;
                prog.weightConnOffset = 0;
                prog.outWalk = tile;
                prog.filterByInput = false;
            } else {
                prog.weights = {layout.weights.base
                                    + pass_weight_offset,
                                pass_weight_count};
                prog.weightPlaneStride =
                    collapse ? pass_weights : 0;
                prog.weightNeuronStride = 0;
                prog.weightConnOffset = 0;
                if (duplicate) {
                    prog.outWalk =
                        compiled.mapping.outTiles.tile(ch);
                    prog.filterByInput = false;
                } else {
                    Rect owned = compiled.mapping.inTiles.tile(ch);
                    prog.ownedInput = owned;
                    prog.filterByInput = true;
                    Rect reach = reachableOutputs(layer, owned,
                                                  compiled.outRect);
                    // Also walk the own output tile so Partial-sum
                    // connections are always generated locally.
                    prog.outWalk = boundingUnion(
                        reach, compiled.mapping.outTiles.tile(ch));
                }
            }
            prog.enabled = prog.outWalk.count() > 0
                        && !prog.conns.empty();
        }

        // PE configurations.
        cp.peConfigs.resize(num_pes);
        for (unsigned p = 0; p < num_pes; ++p) {
            PePassConfig &pc = cp.peConfigs[p];
            pc.planes = program_planes;
            pc.numNeurons = uint32_t(pe_tiles.tile(p).count())
                          * program_planes;
            pc.connections = uint32_t(conns.size());
            pc.enabled = pc.numNeurons > 0;
            if (!stream_weights) {
                // The PE weight memory holds the whole layer's
                // kernels, indexed per plane by the PE (pooling
                // shares one kernel across planes).
                if (layer.type == LayerType::Pool) {
                    pc.localWeights.assign(weights.begin(),
                                           weights.end());
                } else {
                    pc.localWeights.assign(
                        weights.begin() + long(pass_weight_offset),
                        weights.begin()
                            + long(pass_weight_offset
                                   + pass_weights
                                         * program_planes));
                }
                if (conns.size() > pass_weight_count) {
                    // Partial-sum connection carries weight 1.0.
                    pc.localWeights.push_back(Fixed::fromDouble(1.0));
                }
            }
        }

        compiled.passes.push_back(std::move(cp));
    }
    return compiled;
}

Tensor
LayerCompiler::gather(const CompiledLayer &layer,
                      const std::vector<BackingStore *> &stores) const
{
    Tensor out(layer.outPlanes, unsigned(layer.outRect.h),
               unsigned(layer.outRect.w));
    for (unsigned ch = 0; ch < stores.size(); ++ch) {
        const PlaneStorage &storage = layer.outputStorage[ch];
        const Rect &tile = storage.stored;
        for (unsigned plane = 0; plane < layer.outPlanes; ++plane) {
            for (int32_t y = tile.y0; y < tile.y0 + tile.h; ++y) {
                for (int32_t x = tile.x0; x < tile.x0 + tile.w;
                     ++x) {
                    out.at(plane, unsigned(y), unsigned(x)) =
                        stores[ch]->read(
                            storage.addrOf(plane, x, y));
                }
            }
        }
    }
    return out;
}

} // namespace neurocube
