#include "core/layer_compiler.hh"

#include <algorithm>

#include "common/logging.hh"

namespace neurocube
{

namespace
{

/** Output rectangle of a layer (1 x N for fully connected). */
Rect
layerOutRect(const LayerDesc &layer)
{
    if (layer.type == LayerType::FullyConnected)
        return {0, 0, int32_t(layer.outMaps), 1};
    return {0, 0, int32_t(layer.outWidth()),
            int32_t(layer.outHeight())};
}

/** Output plane count (FC outputs are a single vector plane). */
unsigned
layerOutPlanes(const LayerDesc &layer)
{
    return layer.type == LayerType::FullyConnected ? 1
                                                   : layer.outMaps;
}

/** Out pixels whose receptive fields touch the given input tile. */
Rect
reachableOutputs(const LayerDesc &layer, const Rect &in_tile,
                 const Rect &out_rect)
{
    int32_t s = int32_t(layer.stride);
    int32_t k = int32_t(layer.kernel);
    // x*s + dx in [ix0, ix0+iw) for some dx in [0, k)
    int32_t lo_x = (in_tile.x0 - k + s) / s; // ceil((ix0-k+1)/s)
    int32_t hi_x = (in_tile.x0 + in_tile.w - 1) / s;
    int32_t lo_y = (in_tile.y0 - k + s) / s;
    int32_t hi_y = (in_tile.y0 + in_tile.h - 1) / s;
    Rect r{lo_x, lo_y, hi_x - lo_x + 1, hi_y - lo_y + 1};
    return r.expandedWithin(0, out_rect);
}

/** Smallest rectangle containing both arguments. */
Rect
boundingUnion(const Rect &a, const Rect &b)
{
    if (a.count() == 0)
        return b;
    if (b.count() == 0)
        return a;
    int32_t x0 = std::min(a.x0, b.x0);
    int32_t y0 = std::min(a.y0, b.y0);
    int32_t x1 = std::max(a.x0 + a.w, b.x0 + b.w);
    int32_t y1 = std::max(a.y0 + a.h, b.y0 + b.h);
    return {x0, y0, x1 - x0, y1 - y0};
}

/** MAC group size (MACs per PE) assumed by every weight layout. */
constexpr unsigned kGroup = 16;

} // namespace

LayerCompiler::LayerCompiler(const NeurocubeConfig &config)
    : config_(config)
{
}

std::vector<Conn>
LayerCompiler::buildConns(const LayerDesc &layer, unsigned pass) const
{
    const bool split = config_.splitFullConvPasses;
    std::vector<Conn> conns;
    auto spatial = [&](uint16_t im) {
        for (unsigned dy = 0; dy < layer.kernel; ++dy) {
            for (unsigned dx = 0; dx < layer.kernel; ++dx) {
                conns.push_back({Conn::Source::Input, im,
                                 int16_t(dx), int16_t(dy)});
            }
        }
    };
    switch (layer.type) {
      case LayerType::Conv2D:
        if (layer.channelwise) {
            spatial(uint16_t(pass % layer.inMaps));
        } else if (!split) {
            // One pass per output map, connections spanning every
            // input map (fc1's 256-connection programming).
            for (unsigned im = 0; im < layer.inMaps; ++im)
                spatial(uint16_t(im));
        } else {
            unsigned im = pass % layer.inMaps;
            spatial(uint16_t(im));
            if (im > 0) {
                // Accumulate the previous passes' partial sum.
                conns.push_back({Conn::Source::Partial, 0, 0, 0});
            }
        }
        break;
      case LayerType::Pool:
        for (unsigned dy = 0; dy < layer.kernel; ++dy) {
            for (unsigned dx = 0; dx < layer.kernel; ++dx) {
                conns.push_back({Conn::Source::Input, uint16_t(pass),
                                 int16_t(dx), int16_t(dy)});
            }
        }
        break;
      case LayerType::FullyConnected:
        // Plane-major flattening (map, y, x) — the weight layout
        // contract shared with the reference model.
        for (unsigned m = 0; m < layer.inMaps; ++m) {
            for (unsigned y = 0; y < layer.inHeight; ++y) {
                for (unsigned x = 0; x < layer.inWidth; ++x) {
                    conns.push_back({Conn::Source::Input, uint16_t(m),
                                     int16_t(x), int16_t(y)});
                }
            }
        }
        break;
    }
    return conns;
}

std::string
LayerCompiler::planKey(const LayerDesc &layer,
                       const LaneSpec *lane) const
{
    std::string key;
    key.reserve(128);
    auto num = [&key](uint64_t v) {
        key += std::to_string(v);
        key += '.';
    };
    num(uint64_t(layer.type));
    key += layer.name;
    key += '.';
    num(layer.inWidth);
    num(layer.inHeight);
    num(layer.inMaps);
    num(layer.outMaps);
    num(layer.kernel);
    num(layer.stride);
    num(layer.channelwise);
    num(layer.perNeuronWeights);
    num(uint64_t(layer.activation));
    // Config inputs (constant per compiler, recorded for clarity).
    num(config_.mapping.duplicateConvHalo);
    num(config_.mapping.duplicateFcInput);
    num(config_.mapping.weightsInPeMemory);
    num(config_.splitFullConvPasses);
    if (lane) {
        key += 'L';
        for (unsigned node : lane->nodes)
            num(node);
    } else {
        key += 'W';
    }
    return key;
}

std::shared_ptr<const LayerPlan>
LayerCompiler::planFor(const LayerDesc &layer, unsigned num_channels,
                       unsigned num_pes, const LaneSpec *lane) const
{
    if (!config_.planCache) {
        std::lock_guard<std::mutex> lock(cacheMutex_);
        ++misses_;
        return buildPlan(layer, num_channels, num_pes, lane);
    }
    std::string key = planKey(layer, lane);
    {
        std::lock_guard<std::mutex> lock(cacheMutex_);
        auto it = planCache_.find(key);
        if (it != planCache_.end()) {
            ++hits_;
            return it->second;
        }
        ++misses_;
    }
    // Build outside the lock (plans of different shapes may build
    // concurrently); duplicate builds of the same key are benign —
    // both produce identical plans and the last insert wins.
    std::shared_ptr<const LayerPlan> plan =
        buildPlan(layer, num_channels, num_pes, lane);
    std::lock_guard<std::mutex> lock(cacheMutex_);
    planCache_[std::move(key)] = plan;
    return plan;
}

void
LayerCompiler::planChannel(const LayerDesc &layer, LayerPlan &plan,
                           unsigned channel) const
{
    // Mirror of the store's bump allocator: binding later writes
    // values at exactly these addresses.
    uint64_t top = 0;
    auto alloc = [&top](uint64_t n) {
        Region r{top, n};
        top += n;
        return r;
    };

    LayerPlan::ChannelLayout layout;

    // Constant 1.0 for partial-sum connections.
    layout.onesAddr = alloc(1).base;

    // Input planes: the stored rectangle for every input map. Layers
    // whose connections span every map at one pixel (1x1 full
    // convolutions — the per-pixel classifiers and the LSTM gate
    // products) use the pixel-major layout so their operand stream
    // walks DRAM rows sequentially.
    const Rect &stored = plan.mapping.storedInput[channel];
    layout.input.region = alloc(stored.count() * layer.inMaps);
    layout.input.stored = stored;
    layout.input.planes = layer.inMaps;
    layout.input.pixelMajor = layer.type == LayerType::Conv2D
        && !layer.channelwise && layer.kernel == 1;

    // Weights. Fully connected matrices are stored group-blocked and
    // MAC-minor (see PngProgram::weightInterleaved) so the FSM's
    // MAC-innermost address stream walks DRAM rows sequentially.
    if (layer.type == LayerType::Conv2D && layer.perNeuronWeights) {
        // Per-neuron weights, partitioned with the output tile and
        // stored group-blocked/MAC-minor per pass (output map).
        Rect tile = plan.mapping.outTiles.tile(channel);
        uint64_t conns = layer.connectionsPerNeuron();
        uint64_t blocks = (tile.count() + kGroup - 1) / kGroup;
        uint64_t pass_elems = blocks * kGroup * conns;
        layout.weights = alloc(
            std::max<uint64_t>(1, pass_elems * layer.outMaps));
    } else if (layer.type != LayerType::FullyConnected) {
        // Shared kernels: the full layer block, duplicated per vault.
        layout.weights = alloc(plan.mapping.weightElements[channel]);
    } else if (plan.mapping.duplicated) {
        // Rows of this channel's own output neurons (Fig. 10d).
        Rect tile = plan.mapping.outTiles.tile(channel);
        uint64_t n = layer.connectionsPerNeuron();
        uint64_t blocks = (uint64_t(tile.w) + kGroup - 1) / kGroup;
        layout.weights = alloc(blocks * kGroup * n);
    } else {
        // Columns of this channel's input slice, all rows (Fig. 10e).
        uint64_t slice = plan.fcOwnedCols[channel].size();
        uint64_t blocks =
            (uint64_t(layer.outMaps) + kGroup - 1) / kGroup;
        layout.weights =
            alloc(std::max<uint64_t>(1, blocks * kGroup * slice));
    }

    // Output planes for this channel's own output tile, zeroed.
    Rect out_tile = plan.mapping.outTiles.tile(channel);
    layout.output.region = alloc(out_tile.count() * plan.outPlanes);
    layout.output.stored = out_tile;
    layout.output.planes = plan.outPlanes;

    plan.channels.push_back(layout);
    plan.outputStorage.push_back(layout.output);
}

void
LayerCompiler::bindChannel(const LayerPlan &plan, unsigned channel,
                           const std::vector<Fixed> &weights,
                           const Tensor &input,
                           BackingStore &store) const
{
    const LayerDesc &layer = plan.desc;
    const LayerPlan::ChannelLayout &layout = plan.channels[channel];
    store.clear();

    store.write(layout.onesAddr, Fixed::fromDouble(1.0));

    const Rect &stored = layout.input.stored;
    for (unsigned m = 0; m < layer.inMaps; ++m) {
        for (int32_t y = stored.y0; y < stored.y0 + stored.h; ++y) {
            for (int32_t x = stored.x0; x < stored.x0 + stored.w;
                 ++x) {
                store.write(layout.input.addrOf(m, x, y),
                            input.at(m, unsigned(y), unsigned(x)));
            }
        }
    }

    if (layer.type == LayerType::Conv2D && layer.perNeuronWeights) {
        Rect tile = plan.mapping.outTiles.tile(channel);
        uint64_t conns = layer.connectionsPerNeuron();
        uint64_t neurons = layer.neuronsPerMap();
        uint64_t blocks = (tile.count() + kGroup - 1) / kGroup;
        uint64_t pass_elems = blocks * kGroup * conns;
        for (unsigned om = 0; om < layer.outMaps; ++om) {
            uint64_t walk = 0;
            for (int32_t y = tile.y0; y < tile.y0 + tile.h; ++y) {
                for (int32_t x = tile.x0; x < tile.x0 + tile.w;
                     ++x, ++walk) {
                    uint64_t n = uint64_t(y) * layer.outWidth() + x;
                    for (uint64_t c = 0; c < conns; ++c) {
                        Addr addr = layout.weights.base
                            + uint64_t(om) * pass_elems
                            + (walk / kGroup) * conns * kGroup
                            + c * kGroup + walk % kGroup;
                        store.write(
                            addr,
                            weights[(uint64_t(om) * neurons + n)
                                        * conns + c]);
                    }
                }
            }
        }
    } else if (layer.type != LayerType::FullyConnected) {
        uint64_t welems = layout.weights.elements;
        nc_assert(welems == weights.size(),
                  "shared weight block size mismatch");
        for (uint64_t i = 0; i < welems; ++i)
            store.write(layout.weights.base + i, weights[i]);
    } else {
        uint64_t n = layer.connectionsPerNeuron();
        auto interleaved = [&](uint64_t walk, uint64_t col,
                               uint64_t slice) {
            return layout.weights.base
                + (walk / kGroup) * slice * kGroup + col * kGroup
                + walk % kGroup;
        };
        if (plan.mapping.duplicated) {
            Rect tile = plan.mapping.outTiles.tile(channel);
            uint64_t walk = 0;
            for (int32_t o = tile.x0; o < tile.x0 + tile.w;
                 ++o, ++walk) {
                for (uint64_t c = 0; c < n; ++c) {
                    store.write(interleaved(walk, c, n),
                                weights[uint64_t(o) * n + c]);
                }
            }
        } else {
            const std::vector<uint64_t> &owned_cols =
                plan.fcOwnedCols[channel];
            uint64_t slice = owned_cols.size();
            for (unsigned o = 0; o < layer.outMaps; ++o) {
                for (uint64_t j = 0; j < slice; ++j) {
                    store.write(interleaved(o, j, slice),
                                weights[uint64_t(o) * n
                                        + owned_cols[j]]);
                }
            }
        }
    }

    const PlaneStorage &out = layout.output;
    for (uint64_t i = 0; i < out.region.elements; ++i)
        store.write(out.region.base + i, Fixed());
}

std::shared_ptr<const LayerPlan>
LayerCompiler::buildPlan(const LayerDesc &layer,
                         unsigned num_channels, unsigned num_pes,
                         const LaneSpec *lane) const
{
    auto plan_owned = std::make_shared<LayerPlan>();
    LayerPlan &plan = *plan_owned;
    plan.desc = layer;
    plan.mapping =
        buildLayerMapping(layer, config_.mapping, num_channels);
    plan.outRect = layerOutRect(layer);
    plan.outPlanes = layerOutPlanes(layer);

    // Destination partition across PEs (may be finer than channels).
    unsigned pe_gw, pe_gh;
    tileGridShape(num_pes, plan.outRect, pe_gw, pe_gh);
    TileMap pe_tiles = TileMap::grid(plan.outRect, pe_gw, pe_gh);

    // Relocation of tile indices onto mesh nodes: lane compiles use
    // the lane's node list for both channels and PEs (one vault per
    // node), whole-machine compiles use the configured attachment.
    std::vector<uint16_t> home_nodes;
    std::vector<uint16_t> pe_nodes;
    if (lane) {
        home_nodes.assign(lane->nodes.begin(), lane->nodes.end());
        pe_nodes = home_nodes;
    } else {
        std::vector<unsigned> mem_nodes =
            config_.resolvedMemoryNodes();
        home_nodes.assign(mem_nodes.begin(), mem_nodes.end());
    }

    const bool fc = layer.type == LayerType::FullyConnected;
    const bool per_neuron = layer.type == LayerType::Conv2D
        && layer.perNeuronWeights;
    const bool shared_kernels = !fc && !per_neuron;
    const bool duplicate = plan.mapping.duplicated
        || (fc ? config_.mapping.duplicateFcInput
               : config_.mapping.duplicateConvHalo);
    const bool stream_weights =
        !(config_.mapping.weightsInPeMemory && shared_kernels);
    const uint64_t kk = uint64_t(layer.kernel) * layer.kernel;

    // Per-channel FC column remaps (built once, shared by the pass).
    // fcOwnedCols inverts the remap: owned_cols[map[c]] == c.
    std::vector<std::vector<uint32_t>> fc_conn_maps(num_channels);
    std::vector<uint64_t> fc_slice(num_channels, 0);
    if (fc && !duplicate) {
        plan.fcOwnedCols.resize(num_channels);
        for (unsigned ch = 0; ch < num_channels; ++ch) {
            Rect owned = plan.mapping.inTiles.tile(ch);
            auto &map = fc_conn_maps[ch];
            auto &cols = plan.fcOwnedCols[ch];
            map.assign(layer.connectionsPerNeuron(), ~0u);
            uint32_t dense = 0;
            uint64_t c = 0;
            for (unsigned m = 0; m < layer.inMaps; ++m) {
                for (unsigned y = 0; y < layer.inHeight; ++y) {
                    for (unsigned x = 0; x < layer.inWidth;
                         ++x, ++c) {
                        if (owned.contains(int32_t(x), int32_t(y))) {
                            map[c] = dense++;
                            cols.push_back(c);
                        }
                    }
                }
            }
            fc_slice[ch] = dense;
        }
    }

    // Host mapping step: every channel's address layout.
    plan.channels.reserve(num_channels);
    plan.outputStorage.reserve(num_channels);
    for (unsigned ch = 0; ch < num_channels; ++ch)
        planChannel(layer, plan, ch);

    const bool split_full = config_.splitFullConvPasses
        && layer.type == LayerType::Conv2D && !layer.channelwise
        && !per_neuron;
    // The FSM's plane loop executes every output map of a conv/pool
    // layer in one program (the paper programs each LAYER once);
    // split-full mode keeps one program per (outMap, inMap) pass.
    const bool collapse = !fc && !split_full;
    unsigned num_passes = split_full
        ? layer.outMaps * layer.inMaps
        : (fc ? 1u : 1u);
    const unsigned program_planes =
        collapse ? layer.outMaps : 1u;

    // Weights consumed per plane (for the plane-local window).
    uint64_t pass_weights = kk;
    if (layer.type == LayerType::Conv2D && !layer.channelwise
        && !split_full) {
        pass_weights = kk * layer.inMaps;
    } else if (layer.type == LayerType::Pool) {
        pass_weights = 0; // all planes share the one kernel
    }

    for (unsigned pass = 0; pass < num_passes; ++pass) {
        CompiledPass cp;
        std::vector<Conn> conns = buildConns(layer, pass);

        uint64_t pass_weight_offset = uint64_t(pass) * pass_weights;
        uint64_t pass_weight_count =
            layer.type == LayerType::Pool ? kk : pass_weights;

        unsigned out_plane =
            fc ? 0 : (split_full ? pass / layer.inMaps : 0);
        bool final_pass = !split_full
            || (pass % layer.inMaps) == layer.inMaps - 1;

        cp.programs.resize(num_channels);
        for (unsigned ch = 0; ch < num_channels; ++ch) {
            PngProgram &prog = cp.programs[ch];
            const LayerPlan::ChannelLayout &layout =
                plan.channels[ch];

            prog.conns = conns;
            prog.strideX = fc ? 0 : layer.stride;
            prog.strideY = fc ? 0 : layer.stride;
            prog.input = layout.input;
            prog.output = layout.output;
            prog.outPlane = out_plane;
            prog.onesAddr = layout.onesAddr;
            prog.outTiles = pe_tiles;
            prog.peNode = pe_nodes;
            prog.homeTiles = plan.mapping.outTiles;
            prog.homeNode = home_nodes;
            prog.activation = final_pass ? layer.activation
                                         : ActivationKind::Identity;
            prog.outMapWidth = uint32_t(plan.outRect.w);
            prog.outPlaneSize = uint32_t(plan.outRect.count());
            prog.outPlanes = program_planes;
            prog.streamWeights = stream_weights;
            prog.expectedWriteBacks =
                plan.mapping.outTiles.tile(ch).count()
                * program_planes;
            if (collapse
                && (layer.channelwise
                    || layer.type == LayerType::Pool)) {
                prog.planeInMapModulo = layer.inMaps;
            }

            if (fc) {
                prog.weights = layout.weights;
                prog.weightInterleaved = true;
                if (duplicate) {
                    prog.outWalk = plan.mapping.outTiles.tile(ch);
                    prog.filterByInput = false;
                    prog.weightNeuronStride =
                        layer.connectionsPerNeuron();
                    prog.weightConnOffset = 0;
                } else {
                    prog.outWalk = plan.outRect;
                    prog.filterByInput = true;
                    prog.ownedInput = plan.mapping.inTiles.tile(ch);
                    prog.weightNeuronStride = fc_slice[ch];
                    prog.weightConnMap = fc_conn_maps[ch];
                }
            } else if (per_neuron) {
                // 1x1 per-neuron weights: outputs, inputs and
                // weights all partition identically, so the walk is
                // the vault's own tile and everything is local.
                Rect tile = plan.mapping.outTiles.tile(ch);
                uint64_t conns_n = layer.connectionsPerNeuron();
                uint64_t blocks = (tile.count() + 15) / 16;
                uint64_t pass_elems = blocks * 16 * conns_n;
                prog.weights = {layout.weights.base, pass_elems};
                prog.weightPlaneStride = pass_elems;
                prog.weightNeuronStride = conns_n;
                prog.weightInterleaved = true;
                prog.weightConnOffset = 0;
                prog.outWalk = tile;
                prog.filterByInput = false;
            } else {
                prog.weights = {layout.weights.base
                                    + pass_weight_offset,
                                pass_weight_count};
                prog.weightPlaneStride =
                    collapse ? pass_weights : 0;
                prog.weightNeuronStride = 0;
                prog.weightConnOffset = 0;
                if (duplicate) {
                    prog.outWalk = plan.mapping.outTiles.tile(ch);
                    prog.filterByInput = false;
                } else {
                    Rect owned = plan.mapping.inTiles.tile(ch);
                    prog.ownedInput = owned;
                    prog.filterByInput = true;
                    Rect reach = reachableOutputs(layer, owned,
                                                  plan.outRect);
                    // Also walk the own output tile so Partial-sum
                    // connections are always generated locally.
                    prog.outWalk = boundingUnion(
                        reach, plan.mapping.outTiles.tile(ch));
                }
            }
            prog.enabled = prog.outWalk.count() > 0
                        && !prog.conns.empty();
        }

        // PE configurations (weight payload bound per run).
        cp.peConfigs.resize(num_pes);
        for (unsigned p = 0; p < num_pes; ++p) {
            PePassConfig &pc = cp.peConfigs[p];
            pc.planes = program_planes;
            pc.numNeurons = uint32_t(pe_tiles.tile(p).count())
                          * program_planes;
            pc.connections = uint32_t(conns.size());
            pc.enabled = pc.numNeurons > 0;
        }

        if (!stream_weights) {
            // The PE weight memory holds the whole layer's kernels,
            // indexed per plane by the PE (pooling shares one kernel
            // across planes); the slice is resolved against this
            // run's weight block by compile().
            LayerPlan::WeightSlice slice;
            slice.whole = layer.type == LayerType::Pool;
            slice.begin = pass_weight_offset;
            slice.count = pass_weights * program_planes;
            // Partial-sum connection carries weight 1.0.
            slice.extraOne = conns.size() > pass_weight_count;
            plan.localWeightSlices.push_back(slice);
        }

        plan.passes.push_back(std::move(cp));
    }
    return plan_owned;
}

CompiledLayer
LayerCompiler::compile(const LayerDesc &layer,
                       const std::vector<Fixed> &weights,
                       const Tensor &input,
                       std::vector<BackingStore *> &stores,
                       const LaneSpec *lane) const
{
    layer.validate();
    const unsigned num_channels = lane
        ? unsigned(lane->nodes.size())
        : config_.dram.numChannels;
    const unsigned num_pes =
        lane ? unsigned(lane->nodes.size()) : config_.numPes;
    nc_assert(stores.size() == num_channels,
              "store count %zu != channel count %u", stores.size(),
              num_channels);

    CompiledLayer compiled;
    compiled.plan = planFor(layer, num_channels, num_pes, lane);
    const LayerPlan &plan = *compiled.plan;

    // Bind this run's values into the channel stores.
    for (unsigned ch = 0; ch < num_channels; ++ch)
        bindChannel(plan, ch, weights, input, *stores[ch]);

    // PE-resident weight payload (weightsInPeMemory mode).
    if (!plan.localWeightSlices.empty()) {
        compiled.localWeights.reserve(
            plan.localWeightSlices.size());
        for (const LayerPlan::WeightSlice &s :
             plan.localWeightSlices) {
            std::vector<Fixed> lw;
            if (s.whole) {
                lw.assign(weights.begin(), weights.end());
            } else {
                lw.assign(weights.begin() + long(s.begin),
                          weights.begin() + long(s.begin + s.count));
            }
            if (s.extraOne)
                lw.push_back(Fixed::fromDouble(1.0));
            compiled.localWeights.push_back(std::move(lw));
        }
    }
    return compiled;
}

Tensor
LayerCompiler::gather(const CompiledLayer &layer,
                      const std::vector<BackingStore *> &stores) const
{
    Tensor out(layer.outPlanes(), unsigned(layer.outRect().h),
               unsigned(layer.outRect().w));
    for (unsigned ch = 0; ch < stores.size(); ++ch) {
        const PlaneStorage &storage = layer.outputStorage()[ch];
        const Rect &tile = storage.stored;
        for (unsigned plane = 0; plane < layer.outPlanes();
             ++plane) {
            for (int32_t y = tile.y0; y < tile.y0 + tile.h; ++y) {
                for (int32_t x = tile.x0; x < tile.x0 + tile.w;
                     ++x) {
                    out.at(plane, unsigned(y), unsigned(x)) =
                        stores[ch]->read(
                            storage.addrOf(plane, x, y));
                }
            }
        }
    }
    return out;
}

} // namespace neurocube
