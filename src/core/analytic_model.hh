/**
 * @file
 * Closed-form throughput estimator.
 *
 * Estimates a layer's execution cycles from first principles — DRAM
 * streaming bound with burst gaps, NoC lateral-traffic bound, and
 * pipeline fill/drain — without running the cycle engine. Used to
 * cross-check the simulator (they must agree within a modest band)
 * and to extend parameter sweeps beyond what cycle simulation can
 * cover in reasonable wall-clock time.
 */

#ifndef NEUROCUBE_CORE_ANALYTIC_MODEL_HH
#define NEUROCUBE_CORE_ANALYTIC_MODEL_HH

#include "core/config.hh"
#include "nn/layer.hh"

namespace neurocube
{

/** Analytic cycle estimate for one layer. */
struct AnalyticEstimate
{
    /** Estimated reference-clock cycles. */
    Tick cycles = 0;
    /** Arithmetic operations (2 per MAC op). */
    uint64_t ops = 0;
    /** Estimated fraction of operand traffic that is lateral. */
    double lateralFraction = 0.0;

    /** Estimated throughput at the reference clock. */
    double
    gopsPerSecond(double clock_ghz = referenceClockHz / 1e9) const
    {
        if (cycles == 0)
            return 0.0;
        return double(ops) / (double(cycles) / (clock_ghz * 1e9))
             / 1e9;
    }
};

/**
 * Estimate one layer's execution.
 *
 * @param layer descriptor
 * @param config machine configuration (memory, NoC, mapping)
 */
AnalyticEstimate analyticLayerEstimate(const LayerDesc &layer,
                                       const NeurocubeConfig &config);

} // namespace neurocube

#endif // NEUROCUBE_CORE_ANALYTIC_MODEL_HH
