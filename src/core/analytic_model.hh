/**
 * @file
 * Closed-form throughput estimator.
 *
 * Estimates a layer's execution cycles from first principles — DRAM
 * streaming bound with burst gaps, NoC lateral-traffic bound, and
 * pipeline fill/drain — without running the cycle engine. Used to
 * cross-check the simulator (they must agree within a modest band)
 * and to extend parameter sweeps beyond what cycle simulation can
 * cover in reasonable wall-clock time.
 */

#ifndef NEUROCUBE_CORE_ANALYTIC_MODEL_HH
#define NEUROCUBE_CORE_ANALYTIC_MODEL_HH

#include "core/config.hh"
#include "nn/layer.hh"

namespace neurocube
{

/** Analytic cycle estimate for one layer. */
struct AnalyticEstimate
{
    /** Estimated reference-clock cycles. */
    Tick cycles = 0;
    /** Arithmetic operations (2 per MAC op). */
    uint64_t ops = 0;
    /** Estimated fraction of operand traffic that is lateral. */
    double lateralFraction = 0.0;

    /**
     * The four candidate steady-state bounds the estimate picked its
     * maximum from, in cycles: DRAM streaming, PE-port ejection,
     * mesh bisection, MAC execution. Together with rooflineCeilings
     * these attribute a measured layer to its limiting resource.
     */
    double dramCycles = 0.0;
    double ejectCycles = 0.0;
    double nocCycles = 0.0;
    double macCycles = 0.0;

    /** Name of the binding bound ("dram"/"eject"/"noc"/"mac"). */
    const char *
    boundLabel() const
    {
        double m = dramCycles;
        const char *label = "dram";
        if (ejectCycles > m) {
            m = ejectCycles;
            label = "eject";
        }
        if (nocCycles > m) {
            m = nocCycles;
            label = "noc";
        }
        if (macCycles > m)
            label = "mac";
        return label;
    }

    /** Estimated throughput at the reference clock. */
    double
    gopsPerSecond(double clock_ghz = referenceClockHz / 1e9) const
    {
        if (cycles == 0)
            return 0.0;
        return double(ops) / (double(cycles) / (clock_ghz * 1e9))
             / 1e9;
    }
};

/**
 * Machine-wide roofline ceilings in reference-clock units, derived
 * from the same first principles as analyticLayerEstimate: the
 * compute roof (every PE retiring one operand pair per tick) and the
 * aggregate DRAM streaming roof (all channels bursting with their
 * steady-state burst gaps). Measured per-layer achieved rates are
 * plotted against these in the spatial report's roofline scatter.
 */
struct RooflineCeilings
{
    /** Peak MAC operations per reference cycle (= numPes). */
    double macsPerCycle = 0.0;
    /** Peak aggregate DRAM bytes per reference cycle. */
    double dramBytesPerCycle = 0.0;
};

/** Compute the roofline ceilings for a machine configuration. */
RooflineCeilings rooflineCeilings(const NeurocubeConfig &config);

/**
 * Estimate one layer's execution.
 *
 * @param layer descriptor
 * @param config machine configuration (memory, NoC, mapping)
 */
AnalyticEstimate analyticLayerEstimate(const LayerDesc &layer,
                                       const NeurocubeConfig &config);

} // namespace neurocube

#endif // NEUROCUBE_CORE_ANALYTIC_MODEL_HH
