/**
 * @file
 * The Neurocube machine: 16 vaults + PNGs, a NoC, and 16 PEs on the
 * logic die of an HMC (paper Fig. 5), with the host-side global
 * controller that programs it layer by layer.
 *
 * Execution model (Section II-C): the host lays a layer's data out in
 * the cube, writes every PNG's configuration registers, and releases
 * the configuration-enable signal; execution is then fully data
 * driven until the PNGs report layer-done. The simulator advances all
 * components on the shared 5 GHz reference clock and gathers the
 * functional outputs so they can be compared bit-for-bit with the
 * sequential reference model.
 */

#ifndef NEUROCUBE_CORE_NEUROCUBE_HH
#define NEUROCUBE_CORE_NEUROCUBE_HH

#include <memory>
#include <vector>

#include "core/config.hh"
#include "core/engine.hh"
#include "core/layer_compiler.hh"
#include "core/results.hh"
#include "dram/memory_channel.hh"
#include "nn/network.hh"
#include "nn/reference.hh"
#include "noc/fabric.hh"
#include "pe/pe.hh"
#include "png/png.hh"
#include "trace/trace.hh"

namespace neurocube
{

/** One simulated Neurocube instance. */
class Neurocube
{
  public:
    explicit Neurocube(const NeurocubeConfig &config);

    /** Load a network and its parameters. */
    void loadNetwork(const NetworkDesc &net, const NetworkData &data);

    /** Set the input activations for the next forward run. */
    void setInput(const Tensor &input);

    /**
     * Execute one layer on the machine (all of its passes).
     *
     * @param index layer index within the loaded network
     * @return cycle and traffic statistics for the layer
     */
    LayerResult runLayer(size_t index);

    /** Execute every layer in order. */
    RunResult runForward();

    /**
     * Execute the loaded network for several independent inputs
     * concurrently, one per batch lane (config().batch.lanes vault
     * groups). Every lane runs the same layer/pass sequence inside
     * one shared cycle loop; completion is detected per lane, so each
     * lane's LayerResult carries its own cycle count while the
     * aggregate reflects the slowest lane. Outputs are gathered per
     * lane and are bit-exact with a sequential runForward of the same
     * input.
     *
     * @param inputs one input tensor per lane (1 <= n <= lanes;
     *        trailing lanes idle when fewer inputs than lanes)
     */
    BatchRunResult runForwardBatch(const std::vector<Tensor> &inputs);

    /** Gathered output of a layer for one batch lane. */
    const Tensor &batchLayerOutput(unsigned lane, size_t index) const;

    /** The lane partition used by runForwardBatch. */
    const std::vector<LaneSpec> &lanePartition() const
    {
        return lanePartition_;
    }

    /**
     * Reconfigure the number of batch lanes for subsequent
     * runForwardBatch calls (the serving scheduler resizes online as
     * queue depth shifts). Rebuilds the lane partition, revalidates
     * the batching preconditions, and drops the gathered outputs of
     * earlier batch runs. Only legal between runs, when the machine
     * is quiescent; per-lane tracks in an already-open trace session
     * keep the lane prefixes of the construction-time partition.
     */
    void setBatchLanes(unsigned lanes);

    /** The layer compiler (plan-cache statistics). */
    const LayerCompiler &compiler() const { return compiler_; }

    /**
     * Fast-forward the simulation clock to @p when without ticking
     * any component. Only legal while the machine is idle (between
     * runs): with nothing in flight, skipping the gap is equivalent
     * to simulating it. Lets an open-loop driver keep request
     * arrival timestamps and machine time in one clock domain.
     * A @p when earlier than now() is a no-op.
     */
    void advanceIdleTo(Tick when);

    /**
     * Execute an ad-hoc layer outside the loaded network (used by
     * the training sequencer and the parameter sweeps).
     *
     * @param layer descriptor
     * @param weights flat weight block
     * @param input input activations
     * @param output receives the gathered output (may be nullptr)
     */
    LayerResult runSingleLayer(const LayerDesc &layer,
                               const std::vector<Fixed> &weights,
                               const Tensor &input,
                               Tensor *output = nullptr);

    /** Gathered output activations of an executed layer. */
    const Tensor &layerOutput(size_t index) const;

    /** The machine configuration. */
    const NeurocubeConfig &config() const { return config_; }

    /** Root of the statistics hierarchy. */
    StatGroup &stats() { return statGroup_; }

    /** The NoC (tests and experiments). */
    NocFabric &fabric() { return *fabric_; }

    /** One memory channel (tests and experiments). */
    MemoryChannel &channel(unsigned ch) { return *channels_[ch]; }

    /** Current simulation time in reference ticks. */
    Tick now() const { return now_; }

    /**
     * The stall-attribution counters of the active trace session, or
     * nullptr (no session / metrics disabled / tracing compiled out).
     */
    MetricsRegistry *
    metricsRegistry()
    {
        return traceSession_ ? traceSession_->metrics() : nullptr;
    }

    /**
     * The spatial counters of the active trace session, or nullptr
     * (no session / spatial disabled / tracing compiled out).
     */
    SpatialRegistry *
    spatialRegistry()
    {
        return traceSession_ ? traceSession_->spatial() : nullptr;
    }

    /**
     * The machine shape the spatial counters describe (mesh width,
     * links, vault hosting), or an empty topology when no spatial
     * registry is active.
     */
    SpatialTopology spatialTopology();

    /**
     * Cumulative spatial counters: the registry's link/vault/PE
     * arrays plus the fabric's per-node injection counters (which
     * live in the NoC stats, not the registry). Empty/invalid when
     * no spatial registry is active.
     */
    SpatialSnapshot spatialSnapshot();

#if NEUROCUBE_TRACE_ENABLED
    /**
     * The activity energy counters of the active trace session, or
     * nullptr (no session / energy disabled). Like
     * TraceSession::energy(), only compiled in NEUROCUBE_TRACE=ON
     * builds, so notrace builds never reference EnergyRegistry.
     */
    EnergyRegistry *
    energyRegistry()
    {
        return traceSession_ ? traceSession_->energy() : nullptr;
    }
#endif

    /** Total operand-cache spills beyond sub-bank capacity. */
    uint64_t
    totalCacheOverflows() const
    {
        uint64_t total = 0;
        for (const auto &pe : pes_)
            total += pe->cacheOverflows();
        return total;
    }

    /**
     * The engine the next pass will run on. Usually config().engine;
     * while a trace-event recorder is live, ThreadedLanes demotes to
     * Event (the recorder ring is single-producer, lane workers would
     * race on it), and config().trace.legacyEngineWithRecorder
     * additionally demotes everything to Legacy (the pre-sampling
     * behaviour, kept as a compatibility escape hatch).
     */
    SimEngine activeEngine() const;

  private:
    /** Run one compiled pass to completion; returns its cycles. */
    Tick runPass(const CompiledLayer &compiled, size_t pass);
    /** Slice covering the whole machine (Event engine). */
    PassScheduler::Slice fullSlice();
    /** Slice covering one batch lane (ThreadedLanes engine). */
    PassScheduler::Slice laneSlice(unsigned lane);
    /** Lane fabric views for lanePartition_ (built lazily, cached). */
    const std::vector<NocFabric::LaneView> &laneViews();
    /** Event-engine body of runPass (after configuration). */
    void runPassEvent(Tick start, Tick deadline, uint64_t pairs);
    /** Event-engine body of one batch pass (single scheduler). */
    void runBatchPassEvent(Tick start, Tick deadline, unsigned active,
                           size_t pass, std::vector<Tick> &lane_done);
    /** Threaded body of one batch pass (one scheduler per lane). */
    void runBatchPassThreaded(Tick start, Tick deadline,
                              unsigned active,
                              std::vector<Tick> &lane_done);
    /** True when every component has finished the current pass. */
    bool passDone() const;
    /** True when one lane's components have finished the pass. */
    bool laneDone(const LaneSpec &lane) const;
    /** Validate the batch preconditions and build lanePartition_. */
    void buildBatchLanes();
    /**
     * Fill a report's histogram summaries from the machine's
     * distribution stats (cumulative; node-filtered when nodes is
     * non-null).
     */
    void fillHistogramSummaries(BottleneckReport &report,
                                const std::vector<unsigned> *nodes);

    NeurocubeConfig config_;
    StatGroup statGroup_;

    /** Active tracing session (config_.trace.enabled only). */
    std::unique_ptr<TraceSession> traceSession_;

    std::vector<std::unique_ptr<MemoryChannel>> channels_;
    std::unique_ptr<NocFabric> fabric_;
    std::vector<std::unique_ptr<Png>> pngs_;
    std::vector<std::unique_ptr<Pe>> pes_;
    LayerCompiler compiler_;

    NetworkDesc net_;
    NetworkData data_;
    Tensor input_;
    std::vector<Tensor> activations_;

    /** Vault groups for batched execution (batch.lanes entries). */
    std::vector<LaneSpec> lanePartition_;
    /** Cached fabric slices of lanePartition_ (see laneViews()). */
    std::vector<NocFabric::LaneView> laneViews_;
    /** Per lane, per layer: gathered outputs of the last batch run. */
    std::vector<std::vector<Tensor>> batchActivations_;

    Tick now_ = 0;

    Stat statPasses_;
    Stat statLayerCycles_;
};

} // namespace neurocube

#endif // NEUROCUBE_CORE_NEUROCUBE_HH
