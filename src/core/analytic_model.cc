#include "core/analytic_model.hh"

#include <algorithm>
#include <cmath>

#include "nn/mapping.hh"

namespace neurocube
{

AnalyticEstimate
analyticLayerEstimate(const LayerDesc &layer,
                      const NeurocubeConfig &config)
{
    AnalyticEstimate est;

    const DramParams &dram = config.dram;
    const unsigned channels = dram.numChannels;
    const unsigned pes = config.numPes;
    const bool fc = layer.type == LayerType::FullyConnected;

    uint64_t neurons = layer.neuronsPerMap();
    uint64_t conns = layer.connectionsPerNeuron();
    unsigned passes = layer.passes();
    uint64_t pairs = neurons * conns * passes;
    est.ops = 2 * pairs;

    // --- Lateral-traffic fraction from the mapping policy.
    bool duplicate = fc ? config.mapping.duplicateFcInput
                        : config.mapping.duplicateConvHalo;
    if (fc) {
        est.lateralFraction =
            duplicate ? 0.0 : double(channels - 1) / channels;
    } else if (duplicate) {
        est.lateralFraction = 0.0;
    }
    double nodup_imbalance = 1.0;
    if (!fc && !duplicate) {
        // Receptive fields within (kernel-1) of a tile boundary pull
        // roughly half their operands from a neighbouring vault.
        unsigned gw, gh;
        Rect out_rect{0, 0, int32_t(layer.outWidth()),
                      int32_t(layer.outHeight())};
        tileGridShape(channels, out_rect, gw, gh);
        double tw = double(layer.outWidth()) / gw;
        double th = double(layer.outHeight()) / gh;
        double k = double(layer.kernel) - 1.0;
        double inner = std::max(0.0, tw - k) * std::max(0.0, th - k);
        double band = 1.0 - inner / (tw * th);
        est.lateralFraction = 0.5 * band;
        // A vault also generates operands for the neighbouring
        // outputs whose receptive fields reach into its tile; its
        // walk extends to (tw+k)(th+k) outputs, and the widest such
        // vault bounds the pass.
        nodup_imbalance = (tw + k) * (th + k) / (tw * th);
    }
    // Channels sparser than PEs force operands across the mesh even
    // with duplication (the DDR3 configuration).
    if (channels < pes) {
        est.lateralFraction =
            std::max(est.lateralFraction,
                     double(pes - channels) / pes);
    }

    // --- DRAM streaming bound.
    double elems_per_pair =
        config.mapping.weightsInPeMemory && !fc ? 1.0 : 2.0;
    double elems_per_channel =
        double(pairs) * elems_per_pair / channels;
    // Write-backs share the channel.
    elems_per_channel += double(neurons) * passes / channels;
    double words = elems_per_channel / dram.elementsPerWord();
    double burst_factor =
        double(dram.burstLength + dram.burstGapTicks)
        / dram.burstLength;
    double imbalance = 1.06 * nodup_imbalance;
    double dram_cycles =
        words * burst_factor / dram.wordsPerTick() * imbalance;

    // --- NoC bounds.
    double packets = double(pairs) * elems_per_pair
                   + double(neurons) * passes;
    // Ejection at the hottest PE port (width localPortWidth).
    double eject_cycles = packets / pes / config.noc.localPortWidth
                        * imbalance;
    // Mesh bisection for lateral traffic.
    double noc_cycles = 0.0;
    if (est.lateralFraction > 0.0
        && config.noc.topology == NocTopology::Mesh2D) {
        unsigned mesh_w =
            unsigned(std::lround(std::sqrt(double(pes))));
        double bisection = 2.0 * mesh_w * config.noc.linkWidth;
        noc_cycles = packets * est.lateralFraction / bisection;
    }

    // --- MAC execution bound: each PE retires one 16-wide MAC
    // operation per numMacs ticks, i.e. one operand pair per tick.
    double mac_cycles = double(pairs) / pes * imbalance;

    // --- Per-pass fill/drain + configuration overhead.
    double per_pass = double(config.configTicksPerPass)
                    + double(dram.activateTicks()) + 80.0;

    double bound = std::max(
        {dram_cycles, eject_cycles, noc_cycles, mac_cycles});
    est.dramCycles = dram_cycles;
    est.ejectCycles = eject_cycles;
    est.nocCycles = noc_cycles;
    est.macCycles = mac_cycles;
    est.cycles = Tick(bound + per_pass * passes);
    return est;
}

RooflineCeilings
rooflineCeilings(const NeurocubeConfig &config)
{
    const DramParams &dram = config.dram;
    RooflineCeilings roof;
    roof.macsPerCycle = double(config.numPes);
    double burst_factor =
        double(dram.burstLength + dram.burstGapTicks)
        / dram.burstLength;
    roof.dramBytesPerCycle = double(dram.numChannels)
                           * dram.wordsPerTick()
                           * dram.elementsPerWord() * bytesPerElement
                           / burst_factor;
    return roof;
}

} // namespace neurocube
