/**
 * @file
 * Structured run identity: who produced a result, on what machine
 * configuration, with which engine and build.
 *
 * A RunManifest is the join key of the observability stack: every
 * structured export (the per-run JSON manifest, the Prometheus-style
 * flat metrics dump, BENCH_*.json) carries the same identity block —
 * a config fingerprint, the build's `git describe`, and the engine
 * that executed the run — so sweep tooling, CI gates, and the DSE
 * harness can line results up across runs and revisions without
 * parsing human-readable logs.
 *
 * The serializers that price energy (runManifestJson,
 * runMetricsTextfile) are declared here but defined in
 * src/power/activity_energy.cc, following RunResult::energyJson —
 * callers link nc_power.
 */

#ifndef NEUROCUBE_CORE_MANIFEST_HH
#define NEUROCUBE_CORE_MANIFEST_HH

#include <cstdint>
#include <string>

#include "core/config.hh"
#include "core/results.hh"

namespace neurocube
{

/** Short lower-case label of a cycle-loop engine. */
const char *simEngineName(SimEngine engine);

/**
 * The build's `git describe --always --dirty`, captured at CMake
 * configure time (re-run cmake to refresh it), or "unknown" when the
 * source tree was not a git checkout.
 */
std::string buildGitDescribe();

/**
 * FNV-1a fingerprint over the architecture-defining configuration
 * fields (engine and trace knobs excluded: they never change
 * simulated results, which the fingerprint exists to key). Stable
 * across runs and processes; not stable across field additions — it
 * distinguishes configs within one build, it is not a wire format.
 */
uint64_t configFingerprint(const NeurocubeConfig &config);

/** Identity block every structured export carries. */
struct RunManifest
{
    /** Caller-chosen run label (bench name, sweep point, ...). */
    std::string name;
    /** Build identity (buildGitDescribe()). */
    std::string gitDescribe;
    /** Engine that executed the run (the *active* engine, after any
     *  tracing demotion — simEngineName(cube.activeEngine())). */
    std::string engine;
    /** configFingerprint as 16 hex digits. */
    std::string configHash;
    /** Reduced-workload flag (benches; false elsewhere). */
    bool quick = false;
};

/** Assemble the identity block for one run. */
RunManifest buildRunManifest(const NeurocubeConfig &config,
                             SimEngine active,
                             const std::string &name,
                             bool quick = false);

/**
 * One structured JSON document for a forward run: the manifest
 * identity plus cycles, ops, wall_ms, the aggregate stall breakdown
 * (ticks per stall class, summed over layers), and the priced
 * activity-energy breakdown (joules per component; "energy": null
 * when the run carried no energy accounting). Defined in
 * src/power/activity_energy.cc — callers link nc_power.
 */
std::string runManifestJson(const RunManifest &manifest,
                            const RunResult &run);

/**
 * The same content as runManifestJson flattened to a Prometheus
 * textfile-collector dump: `neurocube_*` gauge lines with run/class/
 * component labels, one scrape-ready block per run. Defined in
 * src/power/activity_energy.cc — callers link nc_power.
 */
std::string runMetricsTextfile(const RunManifest &manifest,
                               const RunResult &run);

} // namespace neurocube

#endif // NEUROCUBE_CORE_MANIFEST_HH
