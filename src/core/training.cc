#include "core/training.hh"

#include "common/logging.hh"

namespace neurocube
{

LayerDesc
deltaLayerDesc(const LayerDesc &fwd)
{
    LayerDesc delta;
    delta.name = "d_" + (fwd.name.empty() ? layerTypeName(fwd.type)
                                          : fwd.name);
    switch (fwd.type) {
      case LayerType::Conv2D: {
        // Valid convolution over delta maps padded by (k-1) on every
        // side: output dimensions equal the forward input's.
        delta.type = LayerType::Conv2D;
        delta.kernel = fwd.kernel;
        delta.inWidth = fwd.outWidth() + 2 * (fwd.kernel - 1);
        delta.inHeight = fwd.outHeight() + 2 * (fwd.kernel - 1);
        delta.inMaps = fwd.outMaps;
        delta.outMaps = fwd.channelwise ? fwd.outMaps : fwd.inMaps;
        delta.channelwise = fwd.channelwise;
        break;
      }
      case LayerType::Pool: {
        // Error distribution through average pooling: one read and
        // one scaled write per pooled pixel per map (a 1x1 map-wise
        // pass over the delta).
        delta.type = LayerType::Conv2D;
        delta.kernel = 1;
        delta.inWidth = fwd.outWidth();
        delta.inHeight = fwd.outHeight();
        delta.inMaps = fwd.outMaps;
        delta.outMaps = fwd.outMaps;
        delta.channelwise = true;
        break;
      }
      case LayerType::FullyConnected: {
        delta.type = LayerType::FullyConnected;
        delta.inWidth = fwd.outMaps;
        delta.inHeight = 1;
        delta.inMaps = 1;
        delta.outMaps =
            fwd.inWidth * fwd.inHeight * fwd.inMaps;
        break;
      }
    }
    delta.activation = ActivationKind::Identity;
    return delta;
}

LayerDesc
gradientLayerDesc(const LayerDesc &fwd)
{
    // dW[i][j] = sum over samples/pixels of x_i * delta_j. The
    // operand volume equals one more sweep of states and deltas per
    // weight contribution, which a fully-connected-shaped program
    // reproduces exactly: out neurons = weights-per-pixel-reuse
    // group, connections = the reuse extent.
    LayerDesc grad;
    grad.name = "g_" + (fwd.name.empty() ? layerTypeName(fwd.type)
                                         : fwd.name);
    grad.type = LayerType::FullyConnected;
    grad.inMaps = 1;
    grad.inHeight = 1;
    switch (fwd.type) {
      case LayerType::Conv2D:
        // Each of the k*k*maps kernel weights accumulates over every
        // output pixel.
        grad.inWidth = unsigned(fwd.neuronsPerMap());
        grad.outMaps = unsigned(fwd.weightCount());
        break;
      case LayerType::Pool:
        // Average pooling has no learned weights; a degenerate
        // single-neuron pass keeps the sequencer uniform.
        grad.inWidth = 1;
        grad.outMaps = 1;
        break;
      case LayerType::FullyConnected:
        grad.inWidth = fwd.inWidth * fwd.inHeight * fwd.inMaps;
        grad.outMaps = fwd.outMaps;
        break;
    }
    grad.activation = ActivationKind::Identity;
    return grad;
}

std::vector<Fixed>
transposeFcWeights(const LayerDesc &fc, const std::vector<Fixed> &w)
{
    nc_assert(fc.type == LayerType::FullyConnected,
              "transposeFcWeights needs an FC layer");
    uint64_t n = fc.connectionsPerNeuron();
    uint64_t m = fc.outMaps;
    nc_assert(w.size() == n * m, "FC weight block size mismatch");
    std::vector<Fixed> t(n * m);
    for (uint64_t o = 0; o < m; ++o)
        for (uint64_t i = 0; i < n; ++i)
            t[i * m + o] = w[o * n + i];
    return t;
}

namespace
{

/** Synthetic weights for a throughput-only backward pass. */
std::vector<Fixed>
syntheticWeights(const LayerDesc &layer, Rng &rng)
{
    std::vector<Fixed> w(layer.weightCount());
    for (Fixed &v : w)
        v = Fixed::fromDouble(rng.uniform(-0.05, 0.05));
    return w;
}

/** Synthetic input tensor of a layer's input shape. */
Tensor
syntheticInput(const LayerDesc &layer, Rng &rng)
{
    Tensor t(layer.inMaps, layer.inHeight, layer.inWidth);
    t.randomize(rng, -0.5, 0.5);
    return t;
}

} // namespace

RunResult
runTrainingIteration(Neurocube &cube, const NetworkDesc &net,
                     const NetworkData &data, const Tensor &input,
                     const TrainingOptions &options)
{
    Rng rng(options.seed);
    cube.loadNetwork(net, data);
    cube.setInput(input);

    RunResult run = cube.runForward();

    // Backward error propagation: layers L-1 .. 1. The input layer's
    // delta is never needed (the paper's training ops budget matches
    // this accounting — see EXPERIMENTS.md).
    for (size_t i = net.layers.size(); i-- > 1;) {
        const LayerDesc &fwd = net.layers[i];
        LayerDesc delta = deltaLayerDesc(fwd);
        delta.validate();
        std::vector<Fixed> w;
        if (fwd.type == LayerType::FullyConnected) {
            w = transposeFcWeights(fwd, data.weights[i]);
        } else {
            w = syntheticWeights(delta, rng);
        }
        Tensor din = syntheticInput(delta, rng);
        run.layers.push_back(cube.runSingleLayer(delta, w, din));
    }

    if (options.includeWeightGradient) {
        for (size_t i = 0; i < net.layers.size(); ++i) {
            const LayerDesc &fwd = net.layers[i];
            if (fwd.type == LayerType::Pool)
                continue; // no learned weights
            LayerDesc grad = gradientLayerDesc(fwd);
            grad.validate();
            std::vector<Fixed> w = syntheticWeights(grad, rng);
            Tensor gin = syntheticInput(grad, rng);
            run.layers.push_back(cube.runSingleLayer(grad, w, gin));
        }
    }
    return run;
}

} // namespace neurocube
