/**
 * @file
 * Machine execution of recurrent networks (paper Section VI).
 *
 * Runs the RNN/LSTM pass sequences of nn/recurrent.hh on a Neurocube
 * instance: the host reprograms the PNGs between passes (including
 * the per-pass LUT swap the paper describes for LSTM) and moves the
 * small per-step vectors, exactly mirroring the host/cube division
 * of labour of the layer-by-layer execution model.
 */

#ifndef NEUROCUBE_CORE_RECURRENT_HH
#define NEUROCUBE_CORE_RECURRENT_HH

#include <vector>

#include "core/neurocube.hh"
#include "core/results.hh"
#include "nn/recurrent.hh"

namespace neurocube
{

/**
 * Run an unfolded RNN on the machine (one FC pass per step).
 *
 * @param cube the machine
 * @param desc the RNN
 * @param weights one step's weight block (shared across steps)
 * @param inputs one 1x1xinputSize tensor per time step
 * @param states receives h_t for every step (optional)
 * @return per-pass machine results
 */
RunResult runRnn(Neurocube &cube, const RnnDesc &desc,
                 const std::vector<Fixed> &weights,
                 const std::vector<Tensor> &inputs,
                 std::vector<Tensor> *states = nullptr);

/**
 * Run an LSTM sequence on the machine (seven passes per step: four
 * gate FCs with per-pass LUTs, the cell update, tanh(c), and the
 * output scaling).
 */
RunResult runLstm(Neurocube &cube, const LstmDesc &desc,
                  const LstmWeights &weights,
                  const std::vector<Tensor> &inputs,
                  std::vector<Tensor> *states = nullptr);

} // namespace neurocube

#endif // NEUROCUBE_CORE_RECURRENT_HH
