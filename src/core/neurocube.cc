#include "core/neurocube.hh"

#include "common/logging.hh"

namespace neurocube
{

Neurocube::Neurocube(const NeurocubeConfig &config)
    : config_(config), statGroup_(nullptr, "neurocube"),
      compiler_(config),
      statPasses_(&statGroup_, "passes", "PNG passes executed"),
      statLayerCycles_(&statGroup_, "cycles",
                       "total reference-clock cycles simulated")
{
    config_.noc.numNodes = config_.numPes;

    std::vector<unsigned> mem_nodes = config_.resolvedMemoryNodes();
    nc_assert(mem_nodes.size() == config_.dram.numChannels,
              "memoryNodes size %zu != channel count %u",
              mem_nodes.size(), config_.dram.numChannels);
    for (unsigned node : mem_nodes) {
        nc_assert(node < config_.numPes,
                  "memory node %u outside the mesh", node);
    }

    if (config_.trace.enabled) {
#if NEUROCUBE_TRACE_ENABLED
        TraceTopology topology;
        topology.numRouters = config_.numPes;
        topology.numPes = config_.numPes;
        topology.numVaults = config_.dram.numChannels;
        traceSession_ =
            std::make_unique<TraceSession>(config_.trace, topology);
#else
        nc_warn("tracing requested but compiled out "
                "(rebuild with -DNEUROCUBE_TRACE=ON)");
#endif
    }

    fabric_ = std::make_unique<NocFabric>(config_.noc, &statGroup_);

    for (unsigned ch = 0; ch < config_.dram.numChannels; ++ch) {
        channels_.push_back(std::make_unique<MemoryChannel>(
            config_.dram, &statGroup_,
            "vault" + std::to_string(ch), uint16_t(ch)));
        pngs_.push_back(std::make_unique<Png>(
            VaultId(mem_nodes[ch]), config_.png, *channels_[ch],
            *fabric_, &statGroup_));
    }
    for (unsigned p = 0; p < config_.numPes; ++p) {
        pes_.push_back(std::make_unique<Pe>(PeId(p), config_.pe,
                                            &statGroup_));
    }
}

void
Neurocube::loadNetwork(const NetworkDesc &net, const NetworkData &data)
{
    net.validate();
    nc_assert(data.weights.size() == net.layers.size(),
              "parameter blocks (%zu) != layers (%zu)",
              data.weights.size(), net.layers.size());
    net_ = net;
    data_ = data;
    activations_.assign(net.layers.size(), Tensor());
}

void
Neurocube::setInput(const Tensor &input)
{
    nc_assert(!net_.layers.empty(), "setInput before loadNetwork");
    const LayerDesc &first = net_.layers.front();
    nc_assert(input.maps() == first.inMaps
                  && input.height() == first.inHeight
                  && input.width() == first.inWidth,
              "input tensor %ux%ux%u does not match network input "
              "%ux%ux%u", input.maps(), input.height(), input.width(),
              first.inMaps, first.inHeight, first.inWidth);
    input_ = input;
}

bool
Neurocube::passDone() const
{
    for (const auto &png : pngs_) {
        if (!png->done())
            return false;
    }
    for (const auto &pe : pes_) {
        if (!pe->done())
            return false;
    }
    for (const auto &channel : channels_) {
        if (!channel->idle())
            return false;
    }
    return fabric_->idle();
}

Tick
Neurocube::runPass(const CompiledPass &pass)
{
    NC_TRACE_TICK(now_);
    for (unsigned ch = 0; ch < channels_.size(); ++ch)
        pngs_[ch]->configure(pass.programs[ch]);
    for (unsigned p = 0; p < pes_.size(); ++p)
        pes_[p]->configurePass(pass.peConfigs[p]);

    // Safety net: a pass can never legitimately exceed this budget
    // (every operand pair needs at least one DRAM word somewhere).
    uint64_t pairs = 0;
    for (const auto &png : pngs_)
        pairs += png->pairBudget();
    Tick deadline = now_ + 10000 + 400 * pairs;

    Tick start = now_;
    while (!passDone()) {
        NC_TRACE_TICK(now_);
        for (auto &png : pngs_)
            png->tick(now_);
        for (auto &channel : channels_)
            channel->tick(now_);
        fabric_->tick(now_);
        for (auto &pe : pes_)
            pe->tick(now_, *fabric_);
        ++now_;
        if (now_ >= deadline) {
            nc_panic("pass deadlock: %llu of expected work pending "
                     "after %llu ticks",
                     (unsigned long long)pairs,
                     (unsigned long long)(now_ - start));
        }
    }
    statPasses_ += 1;
    return now_ - start;
}

LayerResult
Neurocube::runSingleLayer(const LayerDesc &layer,
                          const std::vector<Fixed> &weights,
                          const Tensor &input, Tensor *output)
{
    std::vector<BackingStore *> stores;
    stores.reserve(channels_.size());
    for (auto &channel : channels_)
        stores.push_back(&channel->store());

    CompiledLayer compiled =
        compiler_.compile(layer, weights, input, stores);

    LayerResult result;
    result.name = layer.name.empty() ? layerTypeName(layer.type)
                                     : layer.name;
    result.passes = unsigned(compiled.passes.size());

    uint64_t mac_ops_before = 0;
    for (const auto &pe : pes_)
        mac_ops_before += pe->macOps();
    uint64_t lateral_before = fabric_->lateralPackets();
    uint64_t local_before = fabric_->localPackets();
    uint64_t bits_before = 0;
    for (const auto &channel : channels_)
        bits_before += channel->bitsTransferred();

    Tick cycles = 0;
    for (const CompiledPass &pass : compiled.passes) {
        cycles += config_.configTicksPerPass;
        now_ += config_.configTicksPerPass;
        cycles += runPass(pass);
    }

    uint64_t mac_ops_after = 0;
    for (const auto &pe : pes_)
        mac_ops_after += pe->macOps();
    uint64_t bits_after = 0;
    for (const auto &channel : channels_)
        bits_after += channel->bitsTransferred();

    result.cycles = cycles;
    result.ops = 2 * (mac_ops_after - mac_ops_before);
    result.lateralPackets = fabric_->lateralPackets() - lateral_before;
    result.localPackets = fabric_->localPackets() - local_before;
    result.dramBits = bits_after - bits_before;

    LayerFootprint fp = layerFootprint(layer, config_.mapping,
                                       config_.dram.numChannels);
    result.memoryBytes = fp.totalBytes();
    result.duplicationBytes = fp.duplicationBytes;

    statLayerCycles_ += cycles;

    if (output)
        *output = compiler_.gather(compiled, stores);
    return result;
}

LayerResult
Neurocube::runLayer(size_t index)
{
    nc_assert(index < net_.layers.size(), "layer index %zu out of %zu",
              index, net_.layers.size());
    const Tensor &input = index == 0 ? input_ : activations_[index - 1];
    nc_assert(input.size() > 0,
              "layer %zu input missing (run earlier layers first)",
              index);
    Tensor output;
    LayerResult result = runSingleLayer(
        net_.layers[index], data_.weights[index], input, &output);
    activations_[index] = std::move(output);
    return result;
}

RunResult
Neurocube::runForward()
{
    RunResult run;
    for (size_t i = 0; i < net_.layers.size(); ++i)
        run.layers.push_back(runLayer(i));
    return run;
}

const Tensor &
Neurocube::layerOutput(size_t index) const
{
    nc_assert(index < activations_.size(), "no such layer %zu", index);
    return activations_[index];
}

} // namespace neurocube
