#include "core/neurocube.hh"

#include <thread>

#include "common/logging.hh"
#include "core/analytic_model.hh"
#include "trace/energy.hh"
#include "trace/metrics.hh"
#include "trace/spatial.hh"

namespace neurocube
{

namespace
{

/**
 * Place one measured layer on the machine roofline: achieved rates
 * from the layer's own counters, ceilings and bound attribution from
 * the analytic model. Pure arithmetic over already-measured values —
 * never perturbs the simulation.
 */
RooflinePoint
rooflinePoint(const LayerDesc &layer, const NeurocubeConfig &config,
              const LayerResult &r)
{
    RooflinePoint p;
    if (r.cycles == 0)
        return p;
    RooflineCeilings roof = rooflineCeilings(config);
    p.valid = true;
    p.macPerCycle = double(r.ops / 2) / double(r.cycles);
    p.macCeiling = roof.macsPerCycle;
    p.bytesPerCycle = double(r.dramBits / 8) / double(r.cycles);
    p.bytesCeiling = roof.dramBytesPerCycle;
    p.bound = analyticLayerEstimate(layer, config).boundLabel();
    return p;
}

/** Five-number summary of a histogram for the bottleneck report. */
HistogramSummary
summarize(const Histogram &h)
{
    return {h.count(), h.mean(), h.p50(), h.p99(), h.max()};
}

/** True when @p nodes is null or contains @p node. */
bool
nodeSelected(const std::vector<unsigned> *nodes, unsigned node)
{
    if (nodes == nullptr)
        return true;
    return std::find(nodes->begin(), nodes->end(), node)
        != nodes->end();
}

} // namespace

Neurocube::Neurocube(const NeurocubeConfig &config)
    : config_(config), statGroup_(nullptr, "neurocube"),
      compiler_(config),
      statPasses_(&statGroup_, "passes", "PNG passes executed"),
      statLayerCycles_(&statGroup_, "cycles",
                       "total reference-clock cycles simulated")
{
    config_.noc.numNodes = config_.numPes;

    std::vector<unsigned> mem_nodes = config_.resolvedMemoryNodes();
    nc_assert(mem_nodes.size() == config_.dram.numChannels,
              "memoryNodes size %zu != channel count %u",
              mem_nodes.size(), config_.dram.numChannels);
    for (unsigned node : mem_nodes) {
        nc_assert(node < config_.numPes,
                  "memory node %u outside the mesh", node);
    }

    if (config_.batch.lanes > 1)
        buildBatchLanes();

    if (config_.trace.enabled) {
#if NEUROCUBE_TRACE_ENABLED
        TraceTopology topology;
        topology.numRouters = config_.numPes;
        topology.numPes = config_.numPes;
        topology.numVaults = config_.dram.numChannels;
        topology.vaultNode.assign(mem_nodes.begin(),
                                  mem_nodes.end());
        if (!lanePartition_.empty()) {
            topology.laneOf.assign(config_.numPes, 0);
            for (const LaneSpec &lane : lanePartition_) {
                for (unsigned node : lane.nodes)
                    topology.laneOf[node] = uint16_t(lane.index);
            }
        }
        traceSession_ =
            std::make_unique<TraceSession>(config_.trace, topology);
#else
        nc_warn("tracing requested but compiled out "
                "(rebuild with -DNEUROCUBE_TRACE=ON)");
#endif
    }

    fabric_ = std::make_unique<NocFabric>(config_.noc, &statGroup_);

    for (unsigned ch = 0; ch < config_.dram.numChannels; ++ch) {
        channels_.push_back(std::make_unique<MemoryChannel>(
            config_.dram, &statGroup_,
            "vault" + std::to_string(ch), uint16_t(ch)));
        pngs_.push_back(std::make_unique<Png>(
            VaultId(mem_nodes[ch]), config_.png, *channels_[ch],
            *fabric_, &statGroup_));
    }
    for (unsigned p = 0; p < config_.numPes; ++p) {
        pes_.push_back(std::make_unique<Pe>(PeId(p), config_.pe,
                                            &statGroup_));
    }
}

void
Neurocube::loadNetwork(const NetworkDesc &net, const NetworkData &data)
{
    net.validate();
    nc_assert(data.weights.size() == net.layers.size(),
              "parameter blocks (%zu) != layers (%zu)",
              data.weights.size(), net.layers.size());
    net_ = net;
    data_ = data;
    activations_.assign(net.layers.size(), Tensor());
}

void
Neurocube::setInput(const Tensor &input)
{
    nc_assert(!net_.layers.empty(), "setInput before loadNetwork");
    const LayerDesc &first = net_.layers.front();
    nc_assert(input.maps() == first.inMaps
                  && input.height() == first.inHeight
                  && input.width() == first.inWidth,
              "input tensor %ux%ux%u does not match network input "
              "%ux%ux%u", input.maps(), input.height(), input.width(),
              first.inMaps, first.inHeight, first.inWidth);
    input_ = input;
}

bool
Neurocube::passDone() const
{
    for (const auto &png : pngs_) {
        if (!png->done())
            return false;
    }
    for (const auto &pe : pes_) {
        if (!pe->done())
            return false;
    }
    for (const auto &channel : channels_) {
        if (!channel->idle())
            return false;
    }
    return fabric_->idle();
}

SimEngine
Neurocube::activeEngine() const
{
    if (trace::activeRecorder() != nullptr) {
        // Compatibility escape hatch: the pre-sampling releases ran
        // every traced pass on the legacy loop.
        if (config_.trace.legacyEngineWithRecorder)
            return SimEngine::Legacy;
        // The recorder ring is single-producer; lane workers would
        // race on it. The single-threaded event loop emits the same
        // stream (skipped ticks are exactly the ticks no component
        // records at), so tracing costs the thread fan-out only.
        if (config_.engine == SimEngine::ThreadedLanes)
            return SimEngine::Event;
    }
    return config_.engine;
}

SpatialTopology
Neurocube::spatialTopology()
{
    SpatialRegistry *registry = spatialRegistry();
    return registry ? registry->topology() : SpatialTopology{};
}

SpatialSnapshot
Neurocube::spatialSnapshot()
{
    SpatialSnapshot snap;
    SpatialRegistry *registry = spatialRegistry();
    if (registry == nullptr)
        return snap;
    snap = registry->snapshot();
    snap.nodeLateral.resize(config_.numPes, 0);
    snap.nodeLocal.resize(config_.numPes, 0);
    for (unsigned node = 0; node < config_.numPes; ++node) {
        snap.nodeLateral[node] = fabric_->nodeLateralPackets(node);
        snap.nodeLocal[node] = fabric_->nodeLocalPackets(node);
    }
    return snap;
}

PassScheduler::Slice
Neurocube::fullSlice()
{
    PassScheduler::Slice s;
    s.fabric = fabric_.get();
    s.numNodes = config_.numPes;
    s.numChannels = unsigned(channels_.size());
    std::vector<unsigned> mem_nodes = config_.resolvedMemoryNodes();
    for (unsigned ch = 0; ch < channels_.size(); ++ch) {
        s.channelIds.push_back(ch);
        s.channels.push_back(channels_[ch].get());
        s.pngs.push_back(pngs_[ch].get());
        s.channelNodes.push_back(mem_nodes[ch]);
    }
    for (unsigned p = 0; p < pes_.size(); ++p) {
        s.peIds.push_back(p);
        s.pes.push_back(pes_[p].get());
    }
    return s;
}

PassScheduler::Slice
Neurocube::laneSlice(unsigned lane)
{
    // Batching requires the identity vault attachment (channel i at
    // node i, asserted by buildBatchLanes), so a lane's node list
    // selects its channels, PNGs, and PEs alike.
    const LaneSpec &spec = lanePartition_[lane];
    PassScheduler::Slice s;
    s.fabric = fabric_.get();
    s.view = &laneViews()[lane];
    s.numNodes = config_.numPes;
    s.numChannels = unsigned(channels_.size());
    for (unsigned node : spec.nodes) {
        s.channelIds.push_back(node);
        s.channels.push_back(channels_[node].get());
        s.pngs.push_back(pngs_[node].get());
        s.channelNodes.push_back(node);
        s.peIds.push_back(node);
        s.pes.push_back(pes_[node].get());
    }
    return s;
}

const std::vector<NocFabric::LaneView> &
Neurocube::laneViews()
{
    if (laneViews_.empty() && !lanePartition_.empty()) {
        std::vector<std::vector<unsigned>> partition;
        partition.reserve(lanePartition_.size());
        for (const LaneSpec &lane : lanePartition_)
            partition.push_back(lane.nodes);
        laneViews_ = fabric_->buildLaneViews(partition);
    }
    return laneViews_;
}

void
Neurocube::runPassEvent(Tick start, Tick deadline, uint64_t pairs)
{
    if (passDone())
        return; // zero executed ticks, exactly like the legacy loop
    PassScheduler sched(fullSlice(), start);
    Tick t = start;
    for (;;) {
        // Stamp executed ticks only: a skipped tick is one no
        // component would have recorded an event at (the sleep
        // conditions guarantee it), so the stream matches the legacy
        // loop's every-tick stamping bit for bit.
        NC_TRACE_TICK(t);
        sched.step(t);
        if (uint64_t skipped = sched.takeSkippedTicks())
            NC_TRACE(TraceComponent::Sim, 0, TraceEventType::EngineSkip,
                     0, skipped);
        // The legacy loop checks the deadline after ++now_ and before
        // re-evaluating passDone(), so the check is unconditional.
        if (t + 1 >= deadline) {
            nc_panic("pass deadlock: %llu of expected work pending "
                     "after %llu ticks",
                     (unsigned long long)pairs,
                     (unsigned long long)(t + 1 - start));
        }
        if (passDone()) {
            ++t;
            break;
        }
        Tick next = sched.minWake();
        if (next == tickNever || next >= deadline) {
            // Every component asleep with the pass unfinished: the
            // legacy loop would no-op-tick its way to the deadline
            // and panic there. Report the deadlock immediately.
            nc_panic("pass deadlock: %llu of expected work pending, "
                     "all components asleep at tick %llu",
                     (unsigned long long)pairs,
                     (unsigned long long)(t + 1 - start));
        }
        t = next;
    }
    NC_TRACE_TICK(t);
    sched.catchupAll(t);
    if (uint64_t skipped = sched.takeSkippedTicks())
        NC_TRACE(TraceComponent::Sim, 0, TraceEventType::EngineSkip, 0,
                 skipped);
    now_ = t;
}

Tick
Neurocube::runPass(const CompiledLayer &compiled, size_t pass)
{
    NC_TRACE_TICK(now_);
    const CompiledPass &cp = compiled.passes()[pass];
    for (unsigned ch = 0; ch < channels_.size(); ++ch)
        pngs_[ch]->configure(cp.programs[ch]);
    for (unsigned p = 0; p < pes_.size(); ++p)
        pes_[p]->configurePass(compiled.peConfig(pass, p));

    // Safety net: a pass can never legitimately exceed this budget
    // (every operand pair needs at least one DRAM word somewhere).
    uint64_t pairs = 0;
    for (const auto &png : pngs_)
        pairs += png->pairBudget();
    Tick deadline = now_ + 10000 + 400 * pairs;

    Tick start = now_;
    if (activeEngine() == SimEngine::Legacy) {
        while (!passDone()) {
            NC_TRACE_TICK(now_);
            for (auto &png : pngs_)
                png->tick(now_);
            for (auto &channel : channels_)
                channel->tick(now_);
            fabric_->tick(now_);
            for (auto &pe : pes_)
                pe->tick(now_, *fabric_);
            ++now_;
            if (now_ >= deadline) {
                nc_panic("pass deadlock: %llu of expected work "
                         "pending after %llu ticks",
                         (unsigned long long)pairs,
                         (unsigned long long)(now_ - start));
            }
        }
    } else {
        // ThreadedLanes only threads runForwardBatch; a plain pass
        // runs on the single-scheduler event engine.
        runPassEvent(start, deadline, pairs);
    }
    statPasses_ += 1;
    return now_ - start;
}

void
Neurocube::fillHistogramSummaries(BottleneckReport &report,
                                  const std::vector<unsigned> *nodes)
{
    report.nocLatency = summarize(fabric_->latencyHistogram());

    // Free-standing aggregation targets (never registered/dumped).
    Histogram dram(nullptr, "", "");
    Histogram pe_cache(nullptr, "", "");
    Histogram png_queue(nullptr, "", "");
    std::vector<unsigned> mem_nodes = config_.resolvedMemoryNodes();
    for (unsigned ch = 0; ch < channels_.size(); ++ch) {
        if (nodeSelected(nodes, mem_nodes[ch]))
            dram.merge(channels_[ch]->queueResidencyHistogram());
        if (nodeSelected(nodes, unsigned(pngs_[ch]->id())))
            png_queue.merge(pngs_[ch]->outQueueDepthHistogram());
    }
    for (unsigned p = 0; p < pes_.size(); ++p) {
        if (nodeSelected(nodes, p))
            pe_cache.merge(pes_[p]->cacheOccupancyHistogram());
    }
    report.dramQueueResidency = summarize(dram);
    report.peCacheOccupancy = summarize(pe_cache);
    report.pngOutQueueDepth = summarize(png_queue);
}

LayerResult
Neurocube::runSingleLayer(const LayerDesc &layer,
                          const std::vector<Fixed> &weights,
                          const Tensor &input, Tensor *output)
{
    std::vector<BackingStore *> stores;
    stores.reserve(channels_.size());
    for (auto &channel : channels_)
        stores.push_back(&channel->store());

    CompiledLayer compiled =
        compiler_.compile(layer, weights, input, stores);

    LayerResult result;
    result.name = layer.name.empty() ? layerTypeName(layer.type)
                                     : layer.name;
    result.passes = unsigned(compiled.passes().size());

    uint64_t mac_ops_before = 0;
    for (const auto &pe : pes_)
        mac_ops_before += pe->macOps();
    uint64_t lateral_before = fabric_->lateralPackets();
    uint64_t local_before = fabric_->localPackets();
    uint64_t bits_before = 0;
    for (const auto &channel : channels_)
        bits_before += channel->bitsTransferred();

    MetricsRegistry *metrics = metricsRegistry();
    MetricsSnapshot metrics_before;
    if (metrics)
        metrics_before = metrics->snapshot();

    SpatialRegistry *spatial = spatialRegistry();
    SpatialSnapshot spatial_before;
    if (spatial)
        spatial_before = spatialSnapshot();

#if NEUROCUBE_TRACE_ENABLED
    EnergyRegistry *energy = energyRegistry();
    EnergySnapshot energy_before;
    if (energy)
        energy_before = energy->snapshot();
#endif

    Tick cycles = 0;
    for (size_t pass = 0; pass < compiled.passes().size(); ++pass) {
        cycles += config_.configTicksPerPass;
        now_ += config_.configTicksPerPass;
        cycles += runPass(compiled, pass);
    }

    uint64_t mac_ops_after = 0;
    for (const auto &pe : pes_)
        mac_ops_after += pe->macOps();
    uint64_t bits_after = 0;
    for (const auto &channel : channels_)
        bits_after += channel->bitsTransferred();

    result.cycles = cycles;
    result.ops = 2 * (mac_ops_after - mac_ops_before);
    result.lateralPackets = fabric_->lateralPackets() - lateral_before;
    result.localPackets = fabric_->localPackets() - local_before;
    result.dramBits = bits_after - bits_before;

    LayerFootprint fp = layerFootprint(layer, config_.mapping,
                                       config_.dram.numChannels);
    result.memoryBytes = fp.totalBytes();
    result.duplicationBytes = fp.duplicationBytes;

    if (metrics) {
        result.bottleneck = buildBottleneckReport(
            metrics->snapshot().delta(metrics_before));
        fillHistogramSummaries(result.bottleneck, nullptr);
    }

    if (spatial)
        result.spatial = spatialSnapshot().delta(spatial_before);
    result.roofline = rooflinePoint(layer, config_, result);

#if NEUROCUBE_TRACE_ENABLED
    if (energy)
        result.energy = energy->snapshot().delta(energy_before).sum();
#endif

    statLayerCycles_ += cycles;

    if (output)
        *output = compiler_.gather(compiled, stores);
    return result;
}

LayerResult
Neurocube::runLayer(size_t index)
{
    nc_assert(index < net_.layers.size(), "layer index %zu out of %zu",
              index, net_.layers.size());
    const Tensor &input = index == 0 ? input_ : activations_[index - 1];
    nc_assert(input.size() > 0,
              "layer %zu input missing (run earlier layers first)",
              index);
    Tensor output;
    LayerResult result = runSingleLayer(
        net_.layers[index], data_.weights[index], input, &output);
    activations_[index] = std::move(output);
    return result;
}

RunResult
Neurocube::runForward()
{
    RunResult run;
    run.spatialTopology = spatialTopology();
    for (size_t i = 0; i < net_.layers.size(); ++i)
        run.layers.push_back(runLayer(i));
    return run;
}

const Tensor &
Neurocube::layerOutput(size_t index) const
{
    nc_assert(index < activations_.size(), "no such layer %zu", index);
    return activations_[index];
}

void
Neurocube::buildBatchLanes()
{
    const unsigned lanes = std::max(1u, config_.batch.lanes);
    if (lanes > 1) {
        // Lane compilation addresses channel i through mesh node i, so
        // batching needs the HMC-style identity attachment (one vault
        // under every PE).
        nc_assert(config_.dram.numChannels == config_.numPes,
                  "batch lanes need one memory channel per PE "
                  "(%u channels, %u PEs)",
                  config_.dram.numChannels, config_.numPes);
        std::vector<unsigned> mem_nodes = config_.resolvedMemoryNodes();
        for (unsigned ch = 0; ch < mem_nodes.size(); ++ch) {
            nc_assert(mem_nodes[ch] == ch,
                      "batch lanes need identity channel attachment "
                      "(channel %u at node %u)", ch, mem_nodes[ch]);
        }
    }
    lanePartition_ = buildLanePartition(config_.numPes, lanes);
}

void
Neurocube::setBatchLanes(unsigned lanes)
{
    nc_assert(lanes >= 1, "batch needs at least one lane");
    if (lanes == config_.batch.lanes && !lanePartition_.empty())
        return;
    nc_assert(fabric_->idle(),
              "setBatchLanes with packets in flight");
    config_.batch.lanes = lanes;
    // Drop state tied to the old partition: gathered lane outputs
    // and the partition itself (rebuilt below against the new lane
    // count). The fabric lane map is per-run — runForwardBatch arms
    // it on entry and clears it on exit.
    lanePartition_.clear();
    laneViews_.clear();
    batchActivations_.clear();
    // The old partition's lane-keyed plans are unreachable now.
    compiler_.invalidatePlanCache();
    buildBatchLanes();
}

void
Neurocube::advanceIdleTo(Tick when)
{
    if (when <= now_)
        return;
    nc_assert(fabric_->idle(), "advanceIdleTo with packets in flight");
    for (const auto &channel : channels_) {
        nc_assert(channel->idle(),
                  "advanceIdleTo with DRAM work pending");
    }
    now_ = when;
}

bool
Neurocube::laneDone(const LaneSpec &lane) const
{
    for (unsigned node : lane.nodes) {
        if (!pngs_[node]->done() || !pes_[node]->done()
            || !channels_[node]->idle()
            || !fabric_->nodeQuiescent(node)) {
            return false;
        }
    }
    return true;
}

void
Neurocube::runBatchPassEvent(Tick start, Tick deadline,
                             unsigned active, size_t pass,
                             std::vector<Tick> &lane_done)
{
    PassScheduler sched(fullSlice(), start);
    unsigned remaining = active;
    Tick t = start;
    Tick final = start;
    for (;;) {
        // Executed ticks carry the same stamps (and therefore the
        // same event stream) as the legacy every-tick loop; skipped
        // ticks are ones no component records at.
        NC_TRACE_TICK(t);
        sched.step(t);
        if (uint64_t skipped = sched.takeSkippedTicks())
            NC_TRACE(TraceComponent::Sim, 0, TraceEventType::EngineSkip,
                     0, skipped);
        const Tick stamp = t + 1;
        // Lane done-ness only changes through actions at executed
        // ticks, so evaluating after every executed tick yields the
        // same stamps as the legacy every-tick loop.
        for (unsigned l = 0; l < active; ++l) {
            if (lane_done[l] == 0 && laneDone(lanePartition_[l])) {
                lane_done[l] = stamp;
                --remaining;
                // Same emission point as the legacy loop: recorder
                // stamped at the executed tick, value is the lane's
                // pass span.
                NC_TRACE(TraceComponent::Sim, l,
                         TraceEventType::LaneDone, unsigned(pass),
                         stamp - start);
            }
        }
        if (stamp >= deadline) {
            nc_panic("batch pass deadlock: %u lanes pending after "
                     "%llu ticks", remaining,
                     (unsigned long long)(stamp - start));
        }
        if (remaining == 0) {
            final = stamp;
            break;
        }
        Tick next = sched.minWake();
        if (next == tickNever || next >= deadline) {
            nc_panic("batch pass deadlock: %u lanes pending, all "
                     "components asleep at tick %llu", remaining,
                     (unsigned long long)(stamp - start));
        }
        t = next;
    }
    sched.catchupAll(final);
    if (uint64_t skipped = sched.takeSkippedTicks())
        NC_TRACE(TraceComponent::Sim, 0, TraceEventType::EngineSkip, 0,
                 skipped);
    now_ = final;
}

void
Neurocube::runBatchPassThreaded(Tick start, Tick deadline,
                                unsigned active,
                                std::vector<Tick> &lane_done)
{
    const unsigned lanes = unsigned(lanePartition_.size());
    laneViews();

    // Shared fabric aggregates detour through per-node scratch while
    // the workers run; everything else the lanes touch is per-node
    // and therefore disjoint by construction (the lane checker
    // asserts no packet crosses lanes).
    fabric_->setLaneStatsMode(true);

    // One scheduler per lane, parked lanes included: they never step,
    // but catchupAll below bulk-accounts their idle components.
    std::vector<std::unique_ptr<PassScheduler>> scheds;
    scheds.reserve(lanes);
    for (unsigned l = 0; l < lanes; ++l)
        scheds.push_back(
            std::make_unique<PassScheduler>(laneSlice(l), start));

    auto run_lane = [&](unsigned l) {
        PassScheduler &sched = *scheds[l];
        const LaneSpec &lane = lanePartition_[l];
        Tick t = start;
        for (;;) {
            sched.step(t);
            if (t + 1 >= deadline) {
                nc_panic("batch pass deadlock: lane %u pending after "
                         "%llu ticks", l,
                         (unsigned long long)(t + 1 - start));
            }
            if (laneDone(lane)) {
                lane_done[l] = t + 1;
                break;
            }
            Tick next = sched.minWake();
            if (next == tickNever || next >= deadline) {
                nc_panic("batch pass deadlock: lane %u asleep with "
                         "work pending at tick %llu", l,
                         (unsigned long long)(t + 1 - start));
            }
            t = next;
        }
    };

    std::vector<std::thread> workers;
    workers.reserve(active > 0 ? active - 1 : 0);
    for (unsigned l = 1; l < active; ++l)
        workers.emplace_back(run_lane, l);
    run_lane(0);
    for (std::thread &w : workers)
        w.join();

    Tick final = start;
    for (unsigned l = 0; l < active; ++l)
        final = std::max(final, lane_done[l]);
    for (unsigned l = 0; l < lanes; ++l)
        scheds[l]->catchupAll(final);

    fabric_->foldLaneStats();
    fabric_->setLaneStatsMode(false);
    now_ = final;
}

BatchRunResult
Neurocube::runForwardBatch(const std::vector<Tensor> &inputs)
{
    nc_assert(!net_.layers.empty(), "runForwardBatch before loadNetwork");
    if (lanePartition_.empty())
        buildBatchLanes();
    const unsigned lanes = unsigned(lanePartition_.size());
    nc_assert(!inputs.empty() && inputs.size() <= lanes,
              "batch of %zu inputs on %u lanes", inputs.size(), lanes);
    const unsigned active = unsigned(inputs.size());

    const LayerDesc &first = net_.layers.front();
    for (const Tensor &in : inputs) {
        nc_assert(in.maps() == first.inMaps
                      && in.height() == first.inHeight
                      && in.width() == first.inWidth,
                  "batch input %ux%ux%u does not match network input "
                  "%ux%ux%u", in.maps(), in.height(), in.width(),
                  first.inMaps, first.inHeight, first.inWidth);
    }

    // Arm the fabric's lane checker: with >1 lane, any packet that
    // leaves its vault group is counted as a violation.
    if (lanes > 1) {
        std::vector<uint16_t> lane_of(config_.numPes, 0);
        for (const LaneSpec &lane : lanePartition_) {
            for (unsigned node : lane.nodes)
                lane_of[node] = uint16_t(lane.index);
        }
        fabric_->setLaneMap(std::move(lane_of));
    }

    batchActivations_.assign(lanes, {});
    for (unsigned l = 0; l < active; ++l)
        batchActivations_[l].assign(net_.layers.size(), Tensor());

    BatchRunResult result;
    result.lanes.assign(active, RunResult{});
    const SpatialTopology spatial_topo = spatialTopology();
    for (unsigned l = 0; l < active; ++l)
        result.lanes[l].spatialTopology = spatial_topo;

    const Tick batch_start = now_;

    for (size_t li = 0; li < net_.layers.size(); ++li) {
        const LayerDesc &layer = net_.layers[li];
        const Tick layer_start = now_;

        // Compile the layer once per active lane, each against its own
        // vault group's stores and input.
        std::vector<CompiledLayer> compiled(active);
        std::vector<std::vector<BackingStore *>> lane_stores(active);
        for (unsigned l = 0; l < active; ++l) {
            const LaneSpec &lane = lanePartition_[l];
            lane_stores[l].reserve(lane.nodes.size());
            for (unsigned node : lane.nodes)
                lane_stores[l].push_back(&channels_[node]->store());
            const Tensor &in =
                li == 0 ? inputs[l] : batchActivations_[l][li - 1];
            compiled[l] = compiler_.compile(layer, data_.weights[li],
                                            in, lane_stores[l], &lane);
        }
        // Identical layer descriptors compile to identical pass
        // structures, so the lanes stay in lockstep pass by pass.
        const size_t num_passes = compiled[0].passes().size();
        for (unsigned l = 1; l < active; ++l) {
            nc_assert(compiled[l].passes().size() == num_passes,
                      "lane %u compiled %zu passes, lane 0 %zu", l,
                      compiled[l].passes().size(), num_passes);
        }

        std::vector<LayerResult> lr(active);
        std::vector<uint64_t> macs_before(active, 0);
        std::vector<uint64_t> bits_before(active, 0);
        std::vector<uint64_t> lateral_before(active, 0);
        std::vector<uint64_t> local_before(active, 0);
        for (unsigned l = 0; l < active; ++l) {
            for (unsigned node : lanePartition_[l].nodes) {
                macs_before[l] += pes_[node]->macOps();
                bits_before[l] += channels_[node]->bitsTransferred();
                lateral_before[l] += fabric_->nodeLateralPackets(node);
                local_before[l] += fabric_->nodeLocalPackets(node);
            }
        }

        MetricsRegistry *metrics = metricsRegistry();
        MetricsSnapshot metrics_before;
        if (metrics)
            metrics_before = metrics->snapshot();

        SpatialRegistry *spatial = spatialRegistry();
        SpatialSnapshot spatial_before;
        if (spatial)
            spatial_before = spatialSnapshot();

#if NEUROCUBE_TRACE_ENABLED
        EnergyRegistry *energy = energyRegistry();
        EnergySnapshot energy_before;
        if (energy)
            energy_before = energy->snapshot();
#endif

        for (size_t p = 0; p < num_passes; ++p) {
            NC_TRACE_TICK(now_);
            now_ += config_.configTicksPerPass;

            // Configure every node: active lanes get their programs,
            // idle lanes are parked on disabled ones.
            for (const LaneSpec &lane : lanePartition_) {
                for (unsigned i = 0; i < lane.nodes.size(); ++i) {
                    unsigned node = lane.nodes[i];
                    if (lane.index < active) {
                        const CompiledLayer &cl =
                            compiled[lane.index];
                        pngs_[node]->configure(
                            cl.passes()[p].programs[i]);
                        pes_[node]->configurePass(cl.peConfig(p, i));
                    } else {
                        pngs_[node]->configure(PngProgram{});
                        pes_[node]->configurePass(PePassConfig{});
                    }
                }
            }

            uint64_t pairs = 0;
            for (const auto &png : pngs_)
                pairs += png->pairBudget();
            const Tick deadline = now_ + 10000 + 400 * pairs;

            const Tick start = now_;
            std::vector<Tick> lane_done(active, 0);
            const SimEngine engine = activeEngine();
            if (engine == SimEngine::Legacy) {
                unsigned remaining = active;
                while (remaining > 0) {
                    NC_TRACE_TICK(now_);
                    for (auto &png : pngs_)
                        png->tick(now_);
                    for (auto &channel : channels_)
                        channel->tick(now_);
                    fabric_->tick(now_);
                    for (auto &pe : pes_)
                        pe->tick(now_, *fabric_);
                    ++now_;
                    for (unsigned l = 0; l < active; ++l) {
                        if (lane_done[l] == 0
                            && laneDone(lanePartition_[l])) {
                            lane_done[l] = now_;
                            --remaining;
                            NC_TRACE(TraceComponent::Sim, l,
                                     TraceEventType::LaneDone,
                                     unsigned(p), now_ - start);
                        }
                    }
                    if (now_ >= deadline) {
                        nc_panic("batch pass deadlock: %u lanes "
                                 "pending after %llu ticks", remaining,
                                 (unsigned long long)(now_ - start));
                    }
                }
            } else if (engine == SimEngine::Event) {
                runBatchPassEvent(start, deadline, active, p,
                                  lane_done);
            } else {
                runBatchPassThreaded(start, deadline, active,
                                     lane_done);
            }
            statPasses_ += 1;
            for (unsigned l = 0; l < active; ++l) {
                lr[l].cycles += config_.configTicksPerPass
                              + (lane_done[l] - start);
            }
        }

        MetricsSnapshot metrics_delta;
        if (metrics)
            metrics_delta = metrics->snapshot().delta(metrics_before);

        SpatialSnapshot spatial_delta;
        if (spatial)
            spatial_delta = spatialSnapshot().delta(spatial_before);

#if NEUROCUBE_TRACE_ENABLED
        EnergySnapshot energy_delta;
        if (energy)
            energy_delta = energy->snapshot().delta(energy_before);
#endif

        for (unsigned l = 0; l < active; ++l) {
            const LaneSpec &lane = lanePartition_[l];
            uint64_t macs = 0, bits = 0, lateral = 0, local = 0;
            for (unsigned node : lane.nodes) {
                macs += pes_[node]->macOps();
                bits += channels_[node]->bitsTransferred();
                lateral += fabric_->nodeLateralPackets(node);
                local += fabric_->nodeLocalPackets(node);
            }
            lr[l].name = layer.name.empty()
                             ? layerTypeName(layer.type)
                             : layer.name;
            lr[l].passes = unsigned(num_passes);
            lr[l].ops = 2 * (macs - macs_before[l]);
            lr[l].dramBits = bits - bits_before[l];
            lr[l].lateralPackets = lateral - lateral_before[l];
            lr[l].localPackets = local - local_before[l];

            LayerFootprint fp = layerFootprint(
                layer, config_.mapping, unsigned(lane.nodes.size()));
            lr[l].memoryBytes = fp.totalBytes();
            lr[l].duplicationBytes = fp.duplicationBytes;

            if (metrics) {
                // Per-lane attribution: every component instance is
                // node-indexed and batching requires the identity
                // vault attachment, so the lane's node list selects
                // its routers, PEs, PNGs, and channels alike.
                lr[l].bottleneck =
                    buildBottleneckReport(metrics_delta, &lane.nodes);
                fillHistogramSummaries(lr[l].bottleneck, &lane.nodes);
            }

            if (spatial) {
                lr[l].spatial = filterSnapshotToNodes(
                    spatial_topo, spatial_delta, lane.nodes);
            }
            // Lane roofline: this lane owns an even share of the
            // PEs and vault channels, so its ceilings come from a
            // proportionally shrunk machine.
            NeurocubeConfig lane_cfg = config_;
            lane_cfg.numPes = unsigned(lane.nodes.size());
            lane_cfg.dram.numChannels = unsigned(lane.nodes.size());
            lr[l].roofline = rooflinePoint(layer, lane_cfg, lr[l]);

#if NEUROCUBE_TRACE_ENABLED
            // Same node-indexed identity as the metrics attribution.
            if (energy)
                lr[l].energy = energy_delta.sum(&lane.nodes);
#endif

            result.lanes[l].layers.push_back(lr[l]);
            batchActivations_[l][li] =
                compiler_.gather(compiled[l], lane_stores[l]);
        }

        statLayerCycles_ += now_ - layer_start;
    }

    result.cycles = now_ - batch_start;
    fabric_->setLaneMap({});
    return result;
}

const Tensor &
Neurocube::batchLayerOutput(unsigned lane, size_t index) const
{
    nc_assert(lane < batchActivations_.size()
                  && index < batchActivations_[lane].size(),
              "no batch output for lane %u layer %zu", lane, index);
    return batchActivations_[lane][index];
}

} // namespace neurocube
