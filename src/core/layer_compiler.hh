/**
 * @file
 * The layer program compiler: the host-side software that maps one
 * layer onto the cube (paper Section IV-C).
 *
 * Given a layer descriptor, its weights, the current activations and
 * the mapping policy, the compiler:
 *  1. lays the data structures out in each channel's physical address
 *     space (input planes with any duplicated halo, the weight
 *     partition, zeroed output planes, and the constant 1.0 used by
 *     accumulating passes);
 *  2. emits one PngProgram per channel per pass and one PePassConfig
 *     per PE per pass.
 *
 * Pass structure:
 *  - channelwise Conv2D / Pool: one pass per output map;
 *  - full Conv2D: one pass per (output map, input map) pair, passes
 *    after the first carrying an extra partial-sum connection;
 *  - FullyConnected: a single pass.
 *
 * Compilation is split into two stages:
 *  - the structural *plan* (connection lists, channel address
 *    layouts, tile placement, PNG programs, PE pass shapes) is a
 *    pure function of the layer descriptor, the lane partition and
 *    the machine configuration, and is memoized in a plan cache;
 *  - per-run *binding* writes the actual weight and activation
 *    values into the channel stores at the plan's addresses and
 *    slices the PE-resident weight payload.
 * Steady-state serving and batched training therefore pay only the
 * binding cost after the first batch of a given shape.
 */

#ifndef NEUROCUBE_CORE_LAYER_COMPILER_HH
#define NEUROCUBE_CORE_LAYER_COMPILER_HH

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/config.hh"
#include "dram/backing_store.hh"
#include "nn/layer.hh"
#include "nn/mapping.hh"
#include "nn/tensor.hh"
#include "pe/pe.hh"
#include "png/program.hh"

namespace neurocube
{

/** All programs for one pass. */
struct CompiledPass
{
    /** One program per memory channel. */
    std::vector<PngProgram> programs;
    /**
     * One configuration per PE, *without* the localWeights payload
     * (attached per run by CompiledLayer::peConfig — the payload is
     * the same for every PE of a pass).
     */
    std::vector<PePassConfig> peConfigs;
};

/**
 * The structural half of a compiled layer: everything that depends
 * only on (LayerDesc, lane partition, machine config) and none of
 * the weight/activation values. Immutable once built and shared
 * between runs through the compiler's plan cache.
 */
struct LayerPlan
{
    LayerDesc desc;
    LayerMapping mapping;
    std::vector<CompiledPass> passes;
    /** Per channel: where the layer's outputs live (for gathering). */
    std::vector<PlaneStorage> outputStorage;
    /** Output plane count (1 for FC, outMaps otherwise). */
    unsigned outPlanes = 1;
    /** Output map rectangle (1 x N for FC). */
    Rect outRect;

    /** Address layout of one channel's data structures. */
    struct ChannelLayout
    {
        Addr onesAddr = 0;
        PlaneStorage input;
        Region weights;
        PlaneStorage output;
    };
    std::vector<ChannelLayout> channels;

    /**
     * FC partitioned mode only: per channel, the flat input columns
     * (plane-major) the channel owns — the column order of its
     * weight slice, kept so binding need not re-derive it.
     */
    std::vector<std::vector<uint64_t>> fcOwnedCols;

    /**
     * Per pass: the slice of the reference weight block loaded into
     * the PE weight memory (weightsInPeMemory mode). Empty when
     * weights stream as packets.
     */
    struct WeightSlice
    {
        uint64_t begin = 0;
        uint64_t count = 0;
        /** Pooling shares the whole (one-kernel) block per pass. */
        bool whole = false;
        /** Append the partial-sum connection's constant 1.0. */
        bool extraOne = false;
    };
    std::vector<WeightSlice> localWeightSlices;
};

/**
 * A fully compiled layer: a shared structural plan plus this run's
 * PE-resident weight payload. The channel stores were bound (inputs,
 * weights and zeroed outputs written) by LayerCompiler::compile.
 */
struct CompiledLayer
{
    std::shared_ptr<const LayerPlan> plan;
    /** Per pass: PE weight-memory contents (empty when streaming). */
    std::vector<std::vector<Fixed>> localWeights;

    const LayerDesc &desc() const { return plan->desc; }
    const LayerMapping &mapping() const { return plan->mapping; }
    const std::vector<CompiledPass> &passes() const
    {
        return plan->passes;
    }
    const std::vector<PlaneStorage> &outputStorage() const
    {
        return plan->outputStorage;
    }
    unsigned outPlanes() const { return plan->outPlanes; }
    const Rect &outRect() const { return plan->outRect; }

    /** PE pass configuration with the weight payload attached. */
    PePassConfig
    peConfig(size_t pass, size_t pe) const
    {
        PePassConfig pc = plan->passes[pass].peConfigs[pe];
        if (!localWeights.empty())
            pc.localWeights = localWeights[pass];
        return pc;
    }
};

/** Compiles layers onto a machine configuration. */
class LayerCompiler
{
  public:
    explicit LayerCompiler(const NeurocubeConfig &config);

    /**
     * Map a layer onto the cube: clears the channel stores, writes
     * inputs and weights, and builds the per-pass programs. The
     * structural plan is served from the plan cache when an
     * identical (layer, lane) compile was seen before.
     *
     * With a lane, the layer is mapped onto that vault group alone:
     * tile maps span only the lane's channels/PEs, @p stores must be
     * the lane's stores in lane-node order, and the emitted programs
     * carry peNode/homeNode relocations onto the lane's mesh nodes.
     *
     * @param layer descriptor
     * @param weights the layer's flat weight block (reference layout)
     * @param input current activations
     * @param stores one backing store per (lane) memory channel
     * @param lane vault group to map onto (nullptr = whole machine)
     */
    CompiledLayer compile(const LayerDesc &layer,
                          const std::vector<Fixed> &weights,
                          const Tensor &input,
                          std::vector<BackingStore *> &stores,
                          const LaneSpec *lane = nullptr) const;

    /**
     * Read the layer's output activations back out of the stores
     * (the host-side gather between layers).
     */
    Tensor gather(const CompiledLayer &layer,
                  const std::vector<BackingStore *> &stores) const;

    /**
     * Drop every memoized plan. Neurocube::setBatchLanes calls this
     * when the lane partition is rebuilt; plans are keyed by lane
     * node list so stale entries could never be *served* wrongly,
     * but the old partition's plans are dead weight from then on.
     */
    void
    invalidatePlanCache()
    {
        std::lock_guard<std::mutex> lock(cacheMutex_);
        planCache_.clear();
    }

    /** Compiles served from the plan cache. */
    uint64_t
    planCacheHits() const
    {
        std::lock_guard<std::mutex> lock(cacheMutex_);
        return hits_;
    }

    /** Compiles that had to build a fresh plan. */
    uint64_t
    planCacheMisses() const
    {
        std::lock_guard<std::mutex> lock(cacheMutex_);
        return misses_;
    }

  private:
    /** Memoized plan lookup (builds and inserts on miss). */
    std::shared_ptr<const LayerPlan>
    planFor(const LayerDesc &layer, unsigned num_channels,
            unsigned num_pes, const LaneSpec *lane) const;

    /** Build one plan from scratch (the structural compile). */
    std::shared_ptr<const LayerPlan>
    buildPlan(const LayerDesc &layer, unsigned num_channels,
              unsigned num_pes, const LaneSpec *lane) const;

    /** Cache key: exact serialization of every plan input. */
    std::string planKey(const LayerDesc &layer,
                        const LaneSpec *lane) const;

    /**
     * Compute one channel's address layout with a simulated bump
     * allocator (the plan-time mirror of the store's allocate()).
     */
    void planChannel(const LayerDesc &layer, LayerPlan &plan,
                     unsigned channel) const;

    /**
     * Write one channel's values (ones constant, input activations,
     * weight partition, zeroed outputs) at the plan's addresses.
     */
    void bindChannel(const LayerPlan &plan, unsigned channel,
                     const std::vector<Fixed> &weights,
                     const Tensor &input, BackingStore &store) const;

    /** Build the connection list shared by one pass. */
    std::vector<Conn> buildConns(const LayerDesc &layer,
                                 unsigned pass) const;

    NeurocubeConfig config_;

    mutable std::mutex cacheMutex_;
    mutable std::unordered_map<std::string,
                               std::shared_ptr<const LayerPlan>>
        planCache_;
    mutable uint64_t hits_ = 0;
    mutable uint64_t misses_ = 0;
};

} // namespace neurocube

#endif // NEUROCUBE_CORE_LAYER_COMPILER_HH
