/**
 * @file
 * The layer program compiler: the host-side software that maps one
 * layer onto the cube (paper Section IV-C).
 *
 * Given a layer descriptor, its weights, the current activations and
 * the mapping policy, the compiler:
 *  1. lays the data structures out in each channel's physical address
 *     space (input planes with any duplicated halo, the weight
 *     partition, zeroed output planes, and the constant 1.0 used by
 *     accumulating passes);
 *  2. emits one PngProgram per channel per pass and one PePassConfig
 *     per PE per pass.
 *
 * Pass structure:
 *  - channelwise Conv2D / Pool: one pass per output map;
 *  - full Conv2D: one pass per (output map, input map) pair, passes
 *    after the first carrying an extra partial-sum connection;
 *  - FullyConnected: a single pass.
 */

#ifndef NEUROCUBE_CORE_LAYER_COMPILER_HH
#define NEUROCUBE_CORE_LAYER_COMPILER_HH

#include <vector>

#include "core/config.hh"
#include "dram/backing_store.hh"
#include "nn/layer.hh"
#include "nn/mapping.hh"
#include "nn/tensor.hh"
#include "pe/pe.hh"
#include "png/program.hh"

namespace neurocube
{

/** All programs for one pass. */
struct CompiledPass
{
    /** One program per memory channel. */
    std::vector<PngProgram> programs;
    /** One configuration per PE. */
    std::vector<PePassConfig> peConfigs;
};

/** A fully compiled layer, ready to execute pass by pass. */
struct CompiledLayer
{
    LayerDesc desc;
    LayerMapping mapping;
    std::vector<CompiledPass> passes;
    /** Per channel: where the layer's outputs live (for gathering). */
    std::vector<PlaneStorage> outputStorage;
    /** Output plane count (1 for FC, outMaps otherwise). */
    unsigned outPlanes = 1;
    /** Output map rectangle (1 x N for FC). */
    Rect outRect;
};

/** Compiles layers onto a machine configuration. */
class LayerCompiler
{
  public:
    explicit LayerCompiler(const NeurocubeConfig &config);

    /**
     * Map a layer onto the cube: clears the channel stores, writes
     * inputs and weights, and builds the per-pass programs.
     *
     * With a lane, the layer is mapped onto that vault group alone:
     * tile maps span only the lane's channels/PEs, @p stores must be
     * the lane's stores in lane-node order, and the emitted programs
     * carry peNode/homeNode relocations onto the lane's mesh nodes.
     *
     * @param layer descriptor
     * @param weights the layer's flat weight block (reference layout)
     * @param input current activations
     * @param stores one backing store per (lane) memory channel
     * @param lane vault group to map onto (nullptr = whole machine)
     */
    CompiledLayer compile(const LayerDesc &layer,
                          const std::vector<Fixed> &weights,
                          const Tensor &input,
                          std::vector<BackingStore *> &stores,
                          const LaneSpec *lane = nullptr) const;

    /**
     * Read the layer's output activations back out of the stores
     * (the host-side gather between layers).
     */
    Tensor gather(const CompiledLayer &layer,
                  const std::vector<BackingStore *> &stores) const;

  private:
    struct ChannelLayout
    {
        Addr onesAddr = 0;
        PlaneStorage input;
        Region weights;
        PlaneStorage output;
    };

    /** Lay out and write one channel's data. */
    ChannelLayout layoutChannel(const LayerDesc &layer,
                                const LayerMapping &mapping,
                                const std::vector<Fixed> &weights,
                                const Tensor &input, unsigned channel,
                                const Rect &out_rect,
                                unsigned out_planes,
                                BackingStore &store) const;

    /** Build the connection list shared by one pass. */
    std::vector<Conn> buildConns(const LayerDesc &layer,
                                 unsigned pass) const;

    NeurocubeConfig config_;
};

} // namespace neurocube

#endif // NEUROCUBE_CORE_LAYER_COMPILER_HH
