#include "core/multi_cube.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace neurocube
{

namespace
{

/** Split the cubes into the squarest grid. */
void
cubeGrid(unsigned cubes, unsigned &gw, unsigned &gh)
{
    unsigned best = 1;
    for (unsigned f = 1; f * f <= cubes; ++f) {
        if (cubes % f == 0)
            best = f;
    }
    gh = best;
    gw = cubes / best;
}

} // namespace

MultiCubeEstimate
multiCubeLayerEstimate(const LayerDesc &layer,
                       const MultiCubeConfig &config)
{
    nc_assert(config.numCubes >= 1, "need at least one cube");
    MultiCubeEstimate est;
    est.ops = layer.totalOps();

    if (config.numCubes == 1 || layer.type == LayerType::FullyConnected) {
        // FC layers replicate the (flattened) input on every cube
        // and partition outputs; compute scales, but the activation
        // all-gather costs one full copy of the input per cube.
        AnalyticEstimate single =
            analyticLayerEstimate(layer, config.cube);
        est.computeCycles = single.cycles / config.numCubes
                          + (single.cycles % config.numCubes != 0);
        if (config.numCubes > 1) {
            double bytes =
                double(layer.inputElements()) * bytesPerElement;
            double seconds =
                bytes / (config.linkBandwidthGBps * 1e9);
            est.exchangeCycles =
                Tick(seconds * referenceClockHz);
        }
        return est;
    }

    // Spatial tiling: each cube runs the layer on a sub-image whose
    // output is 1/numCubes of the full map (plus receptive-field
    // halo on the input side).
    unsigned gw, gh;
    cubeGrid(config.numCubes, gw, gh);
    LayerDesc tile = layer;
    unsigned halo = layer.kernel - 1;
    tile.inWidth =
        std::max(layer.kernel,
                 (layer.inWidth + gw - 1) / gw + halo);
    tile.inHeight =
        std::max(layer.kernel,
                 (layer.inHeight + gh - 1) / gh + halo);
    tile.name = layer.name;

    AnalyticEstimate per_cube =
        analyticLayerEstimate(tile, config.cube);
    est.computeCycles = per_cube.cycles;

    // Halo exchange between layers: each cube imports a halo ring of
    // every input map from its neighbours.
    double halo_elems =
        2.0 * double(halo)
        * (double(tile.inWidth) + double(tile.inHeight))
        * layer.inMaps;
    double bytes = halo_elems * bytesPerElement;
    double seconds = bytes / (config.linkBandwidthGBps * 1e9);
    est.exchangeCycles = Tick(seconds * referenceClockHz);
    return est;
}

MultiCubeEstimate
multiCubeNetworkEstimate(const NetworkDesc &net,
                         const MultiCubeConfig &config)
{
    MultiCubeEstimate total;
    for (const LayerDesc &layer : net.layers) {
        MultiCubeEstimate e = multiCubeLayerEstimate(layer, config);
        total.computeCycles += e.computeCycles;
        total.exchangeCycles += e.exchangeCycles;
        total.ops += e.ops;
    }
    return total;
}

double
multiCubeEfficiency(const NetworkDesc &net,
                    const MultiCubeConfig &config)
{
    MultiCubeConfig one = config;
    one.numCubes = 1;
    MultiCubeEstimate base = multiCubeNetworkEstimate(net, one);
    MultiCubeEstimate scaled = multiCubeNetworkEstimate(net, config);
    double speedup = double(base.totalCycles())
                   / double(std::max<Tick>(1, scaled.totalCycles()));
    return speedup / double(config.numCubes);
}

} // namespace neurocube
