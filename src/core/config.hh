/**
 * @file
 * Top-level machine configuration.
 *
 * Gathers the structural parameters of every substrate: the DRAM
 * technology (vault count, timing), the NoC topology, the PE and PNG
 * micro-parameters, the data-mapping policy, and the attachment of
 * memory channels to mesh nodes. The defaults instantiate the paper's
 * machine: 16 HMC vaults, one 16-MAC PE per vault, 4x4 mesh.
 */

#ifndef NEUROCUBE_CORE_CONFIG_HH
#define NEUROCUBE_CORE_CONFIG_HH

#include <vector>

#include "dram/dram_params.hh"
#include "nn/mapping.hh"
#include "noc/fabric.hh"
#include "pe/pe.hh"
#include "png/png.hh"
#include "trace/trace_config.hh"

namespace neurocube
{

/**
 * Which cycle-loop implementation advances the machine. All three
 * produce bit-identical simulated state, cycle counts, stall
 * attribution and energy counts (tests/test_engine_diff.cc fuzzes
 * the equivalence); they differ only in wall-clock cost.
 */
enum class SimEngine
{
    /** Tick every component every cycle (the reference loop). */
    Legacy,
    /**
     * Wake-list scheduler: components report their next interesting
     * cycle, quiescent components are skipped and their idle time
     * accounted in bulk (see DESIGN.md "Event-driven scheduler").
     */
    Event,
    /**
     * Event scheduler plus one worker thread per active batch lane
     * (lanes are bit-exact isolated by construction, so per-lane
     * schedulers advance concurrently with a barrier at pass end).
     * Behaves exactly like Event outside runForwardBatch.
     */
    ThreadedLanes,
};

/** Structural + policy configuration of one Neurocube instance. */
struct NeurocubeConfig
{
    /**
     * Cycle-loop implementation. Every engine works with tracing:
     * the event loop stamps executed ticks and aggregates skipped
     * windows into EngineSkip events, producing the same cycle,
     * stall, and energy accounting as a traced legacy run (fuzzed in
     * tests/test_engine_diff.cc). ThreadedLanes demotes to Event
     * while a trace-event recorder (a session with sinks) is live —
     * the recorder ring is single-producer; see
     * TraceConfig::legacyEngineWithRecorder for the old always-
     * Legacy fallback.
     */
    SimEngine engine = SimEngine::Event;

    /** Memory technology (channel count lives here). */
    DramParams dram = DramParams::hmcInternal();

    /** Processing elements on the logic die. */
    unsigned numPes = 16;

    /** NoC structure (numNodes is forced to numPes). */
    NocFabric::Config noc;

    /** PE micro-parameters. */
    PeParams pe;

    /** PNG micro-parameters. */
    PngParams png;

    /** Data placement policy (duplication knobs). */
    MappingPolicy mapping;

    /** Batched multi-lane execution (Neurocube::runForwardBatch). */
    struct BatchConfig
    {
        /**
         * Vault groups running independent inputs concurrently. Each
         * lane owns a rectangular sub-mesh (16 PEs split into 1, 2 or
         * 4 groups on the HMC) with its own PEs, PNGs and channels;
         * X-Y routes never leave the sub-mesh, so lanes are isolated
         * on the NoC. Requires one memory channel per mesh node
         * attached identically (the HMC configuration).
         */
        unsigned lanes = 1;
    };

    /** Batch-lane partitioning for runForwardBatch. */
    BatchConfig batch;

    /**
     * Program full (cross-map) convolutions as one pass per
     * (outMap, inMap) pair with partial sums accumulated through
     * memory, instead of the default single pass per output map with
     * k*k*inMaps connections. Exercises the partial-sum dataflow;
     * costs extra passes and intermediate Q1.7.8 truncation.
     */
    bool splitFullConvPasses = false;

    /**
     * Mesh node each memory channel attaches to. Empty = identity
     * (channel i at node i), which requires numChannels == numPes.
     * For scarcer channels (DDR3) the compiler places them evenly.
     */
    std::vector<unsigned> memoryNodes;

    /**
     * Host programming cost charged per pass, in reference ticks
     * (writing the PNG configuration registers, Fig. 8c).
     */
    Tick configTicksPerPass = 64;

    /**
     * Memoize structural layer plans in the compiler (keyed by
     * layer descriptor + lane partition + mapping policy), so
     * repeated compiles of the same shape — every batch of a
     * serving run, every epoch of training — pay only the value
     * binding. Bit-exact either way; off forces a full rebuild per
     * compile (the equivalence tests exercise both).
     */
    bool planCache = true;

    /** Event tracing (off by default; see src/trace/). */
    TraceConfig trace;

    /** Resolve memoryNodes (filling the default placement). */
    std::vector<unsigned>
    resolvedMemoryNodes() const
    {
        if (!memoryNodes.empty())
            return memoryNodes;
        std::vector<unsigned> nodes(dram.numChannels);
        for (unsigned c = 0; c < dram.numChannels; ++c) {
            // Spread channels evenly across the node space.
            nodes[c] = unsigned((uint64_t(2 * c + 1) * numPes)
                                / (2 * dram.numChannels));
        }
        return nodes;
    }
};

} // namespace neurocube

#endif // NEUROCUBE_CORE_CONFIG_HH
