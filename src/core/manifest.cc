#include "core/manifest.hh"

#include <cstdio>

namespace neurocube
{

const char *
simEngineName(SimEngine engine)
{
    switch (engine) {
    case SimEngine::Legacy:
        return "legacy";
    case SimEngine::Event:
        return "event";
    case SimEngine::ThreadedLanes:
        return "threaded_lanes";
    }
    return "unknown";
}

std::string
buildGitDescribe()
{
#ifdef NEUROCUBE_GIT_DESCRIBE
    return NEUROCUBE_GIT_DESCRIBE;
#else
    return "unknown";
#endif
}

namespace
{

/** Incremental FNV-1a over typed fields (value hashing, no padding:
 *  every field feeds through a fixed-width canonical form). */
struct Fnv1a
{
    uint64_t h = 14695981039346656037ull;

    void
    bytes(const void *data, size_t n)
    {
        const unsigned char *p =
            static_cast<const unsigned char *>(data);
        for (size_t i = 0; i < n; ++i) {
            h ^= p[i];
            h *= 1099511628211ull;
        }
    }

    void
    u64(uint64_t v)
    {
        bytes(&v, sizeof(v));
    }

    /** Doubles hash by bit pattern: configs are authored, not
     *  computed, so representation equality is the right notion. */
    void
    f64(double v)
    {
        uint64_t bits;
        static_assert(sizeof(bits) == sizeof(v), "double width");
        __builtin_memcpy(&bits, &v, sizeof(bits));
        u64(bits);
    }

    void
    str(const std::string &s)
    {
        u64(s.size());
        bytes(s.data(), s.size());
    }
};

} // namespace

uint64_t
configFingerprint(const NeurocubeConfig &config)
{
    Fnv1a f;

    const DramParams &d = config.dram;
    f.str(d.name);
    f.u64(d.numChannels);
    f.u64(d.wordBits);
    f.f64(d.peakBandwidthGBps);
    f.f64(d.activateNs);
    f.u64(d.burstLength);
    f.u64(d.burstGapTicks);
    f.u64(d.rowBytes);
    f.u64(d.banksPerChannel);
    f.f64(d.energyPjPerBit);
    f.u64(d.broadcastDuplicateReads ? 1 : 0);
    f.f64(d.voltage);

    f.u64(config.numPes);

    const NocFabric::Config &n = config.noc;
    f.u64(uint64_t(n.topology));
    f.u64(n.bufferDepth);
    f.u64(n.localPortWidth);
    f.u64(n.linkWidth);
    f.u64(n.deliveryDepth);

    const PeParams &pe = config.pe;
    f.u64(pe.numMacs);
    f.u64(pe.acceptPerTick);
    f.u64(pe.injectPerTick);
    f.u64(pe.cache.numSubBanks);
    f.u64(pe.cache.entriesPerSubBank);
    f.u64(pe.outboxLimit);
    f.u64(pe.searchEntriesPerCycle);

    const PngParams &png = config.png;
    f.u64(png.numMacs);
    f.u64(png.maxIssuePerTick);
    f.u64(png.outQueueDepth);
    f.u64(png.maxWriteBacksPerTick);
    f.u64(png.connBlockSize);

    f.u64(config.mapping.duplicateConvHalo ? 1 : 0);
    f.u64(config.mapping.duplicateFcInput ? 1 : 0);
    f.u64(config.mapping.weightsInPeMemory ? 1 : 0);

    f.u64(config.batch.lanes);
    f.u64(config.splitFullConvPasses ? 1 : 0);
    // Resolved (not raw) placement: an explicit memoryNodes equal to
    // the default placement is the same machine.
    for (unsigned node : config.resolvedMemoryNodes())
        f.u64(node);
    f.u64(config.configTicksPerPass);
    f.u64(config.planCache ? 1 : 0);

    return f.h;
}

RunManifest
buildRunManifest(const NeurocubeConfig &config, SimEngine active,
                 const std::string &name, bool quick)
{
    RunManifest m;
    m.name = name;
    m.gitDescribe = buildGitDescribe();
    m.engine = simEngineName(active);
    char hex[17];
    std::snprintf(hex, sizeof(hex), "%016llx",
                  static_cast<unsigned long long>(
                      configFingerprint(config)));
    m.configHash = hex;
    m.quick = quick;
    return m;
}

} // namespace neurocube
