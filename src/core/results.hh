/**
 * @file
 * Result records produced by simulation runs.
 *
 * Throughput follows the paper's accounting: one MAC operation counts
 * as two arithmetic operations (multiply + add), and GOPs/s divides
 * by wall-clock time at the reference clock (5 GHz) unless a slower
 * logic-node clock is applied (the 28 nm design runs at 300 MHz, so
 * every rate scales by 0.06 — Section VII).
 */

#ifndef NEUROCUBE_CORE_RESULTS_HH
#define NEUROCUBE_CORE_RESULTS_HH

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"
#include "dram/dram_params.hh"
#include "trace/energy.hh"
#include "trace/metrics.hh"
#include "trace/spatial.hh"

namespace neurocube
{

/**
 * One layer's position on the machine roofline: achieved MAC and
 * DRAM-byte rates per reference cycle against the analytic-model
 * ceilings (rooflineCeilings), with the analytic bound attribution.
 * Derived purely from already-measured quantities — observational.
 */
struct RooflinePoint
{
    /** false when the layer ran zero cycles (nothing to plot). */
    bool valid = false;
    /** Achieved MAC operations per cycle (ops / 2 / cycles). */
    double macPerCycle = 0.0;
    /** Compute ceiling, MACs per cycle. */
    double macCeiling = 0.0;
    /** Achieved DRAM bytes per cycle (dramBits / 8 / cycles). */
    double bytesPerCycle = 0.0;
    /** Aggregate DRAM streaming ceiling, bytes per cycle. */
    double bytesCeiling = 0.0;
    /** Analytic bound label: "dram", "eject", "noc", or "mac". */
    std::string bound;

    /** Arithmetic intensity: MACs per DRAM byte. */
    double
    intensity() const
    {
        return bytesPerCycle > 0.0 ? macPerCycle / bytesPerCycle
                                   : 0.0;
    }
};

/** Statistics for one executed layer. */
struct LayerResult
{
    std::string name;
    /** PNG programming passes executed. */
    unsigned passes = 0;
    /** Arithmetic operations (2 per MAC op). */
    uint64_t ops = 0;
    /** Reference-clock cycles including per-pass configuration. */
    Tick cycles = 0;
    /** Operand/write-back packets that crossed between nodes. */
    uint64_t lateralPackets = 0;
    /** Packets that stayed within their node. */
    uint64_t localPackets = 0;
    /** Bits moved over the DRAM interfaces. */
    uint64_t dramBits = 0;
    /** Resident memory for this layer (with duplication), bytes. */
    uint64_t memoryBytes = 0;
    /** Duplication overhead within memoryBytes. */
    uint64_t duplicationBytes = 0;
    /**
     * Stall-attribution bottleneck report for this layer. valid only
     * when a metrics-enabled trace session was active for the run
     * (config.trace.enabled && config.trace.metrics).
     */
    BottleneckReport bottleneck;
    /**
     * Activity counts for this layer's interval (energy accounting).
     * valid only when an energy-enabled trace session was active
     * (config.trace.enabled && config.trace.energy in a
     * NEUROCUBE_TRACE=ON build); price with ActivityEnergyModel.
     */
    EnergyCounts energy;
    /**
     * Spatial counter delta for this layer's interval (per-link,
     * per-vault, per-PE, per-node). valid only when a spatial-enabled
     * trace session was active (config.trace.enabled &&
     * config.trace.spatial in a NEUROCUBE_TRACE=ON build). Strictly
     * observational — never feeds back into timing or energy.
     */
    SpatialSnapshot spatial;
    /** Roofline position (valid only when cycles were measured). */
    RooflinePoint roofline;

    /** Throughput at a given logic clock (GHz). */
    double
    gopsPerSecond(double clock_ghz = referenceClockHz / 1e9) const
    {
        if (cycles == 0)
            return 0.0;
        double seconds = double(cycles) / (clock_ghz * 1e9);
        return double(ops) / seconds / 1e9;
    }

    /** Fraction of NoC traffic that crossed between nodes. */
    double
    lateralFraction() const
    {
        uint64_t total = lateralPackets + localPackets;
        return total ? double(lateralPackets) / double(total) : 0.0;
    }
};

/** Aggregated statistics for a multi-layer run. */
struct RunResult
{
    std::vector<LayerResult> layers;

    /**
     * Static shape of the machine the run executed on (mesh width,
     * link endpoints, vault hosting), for keying the per-layer
     * spatial snapshots. Empty (numNodes == 0) when the run carried
     * no spatial accounting.
     */
    SpatialTopology spatialTopology;

    /**
     * Host wall-clock time of the run in milliseconds, measured and
     * filled by the caller (the bench harness); 0 when nobody timed
     * the run. Purely diagnostic — never part of any simulated
     * quantity, and excluded from the bench.sh --compare gates.
     */
    double wallMs = 0.0;

    /** Sum of per-layer operation counts. */
    uint64_t
    totalOps() const
    {
        uint64_t total = 0;
        for (const LayerResult &l : layers)
            total += l.ops;
        return total;
    }

    /** Sum of per-layer cycle counts. */
    Tick
    totalCycles() const
    {
        Tick total = 0;
        for (const LayerResult &l : layers)
            total += l.cycles;
        return total;
    }

    /** Peak per-layer resident memory, bytes. */
    uint64_t
    peakMemoryBytes() const
    {
        uint64_t peak = 0;
        for (const LayerResult &l : layers)
            peak = std::max(peak, l.memoryBytes);
        return peak;
    }

    /** End-to-end throughput at a given logic clock (GHz). */
    double
    gopsPerSecond(double clock_ghz = referenceClockHz / 1e9) const
    {
        Tick cycles = totalCycles();
        if (cycles == 0)
            return 0.0;
        double seconds = double(cycles) / (clock_ghz * 1e9);
        return double(totalOps()) / seconds / 1e9;
    }

    /** Executions per second (frames/s) at a given clock. */
    double
    framesPerSecond(double clock_ghz = referenceClockHz / 1e9) const
    {
        Tick cycles = totalCycles();
        if (cycles == 0)
            return 0.0;
        return clock_ghz * 1e9 / double(cycles);
    }

    /**
     * Machine-readable per-layer metrics as a JSON document: cycles,
     * ops, and each layer's bottleneck label, stall fractions, and
     * histogram summaries. Layers without a valid bottleneck report
     * (metrics disabled) carry "bottleneck": null.
     */
    std::string metricsJson() const;

    /** Sum of the per-layer spatial counter deltas. */
    SpatialSnapshot
    spatialSnapshot() const
    {
        SpatialSnapshot total;
        for (const LayerResult &l : layers)
            total += l.spatial;
        return total;
    }

    /**
     * Deterministic heatmap/roofline export as a JSON document:
     * {"aggregate": <snapshot>, "layers": [{"name", "cycles",
     * "roofline"|null, "spatial": <snapshot>}]}. Snapshots are
     * mesh-shaped matrices keyed by spatialTopology (see
     * spatialSnapshotJson). Empty-topology runs still produce a
     * well-formed document with zero-length matrices. Deliberately
     * avoids the "total_cycles"/"served"/"wall_ms" key names the
     * bench.sh comparison gates grep for.
     */
    std::string spatialJson() const;

    /** Sum of the per-layer activity counts. */
    EnergyCounts
    energyCounts() const
    {
        EnergyCounts total;
        for (const LayerResult &l : layers)
            total += l.energy;
        return total;
    }

    /**
     * Activity-based energy accounting as a JSON document: total
     * joules, average power, GOPS/W, per-component breakdown, and a
     * per-layer breakdown with the raw event counts. Priced at the
     * 15 nm node (the node whose clocks the cycle model times);
     * "valid": false when the run carried no energy accounting.
     * Defined in src/power/activity_energy.cc — callers link
     * nc_power.
     */
    std::string energyJson() const;
};

/** Statistics for one batched multi-lane forward execution. */
struct BatchRunResult
{
    /** Per-lane run statistics (one entry per submitted input). */
    std::vector<RunResult> lanes;
    /**
     * Aggregate wall-clock of the batched run in reference cycles:
     * per pass, every lane advances in the same cycle loop, so the
     * aggregate is the sum over passes of the slowest lane (plus the
     * shared per-pass configuration time charged once).
     */
    Tick cycles = 0;

    /** Sum of per-lane operation counts. */
    uint64_t
    totalOps() const
    {
        uint64_t total = 0;
        for (const RunResult &lane : lanes)
            total += lane.totalOps();
        return total;
    }

    /** Aggregate throughput at a given logic clock (GHz). */
    double
    gopsPerSecond(double clock_ghz = referenceClockHz / 1e9) const
    {
        if (cycles == 0)
            return 0.0;
        double seconds = double(cycles) / (clock_ghz * 1e9);
        return double(totalOps()) / seconds / 1e9;
    }

    /** Completed inputs per second (batched frame rate). */
    double
    inputsPerSecond(double clock_ghz = referenceClockHz / 1e9) const
    {
        if (cycles == 0)
            return 0.0;
        return double(lanes.size()) * clock_ghz * 1e9
             / double(cycles);
    }

    /**
     * Activity-based energy of the whole batch in joules, summed
     * over lanes and priced at 15 nm. 0 when the run carried no
     * energy accounting. Defined in src/power/activity_energy.cc —
     * callers link nc_power.
     */
    double totalEnergyJ() const;

    /** Activity-based efficiency, GOPS/W ( = GOPs per joule). */
    double gopsPerWatt() const;

    /** Activity-based energy per completed input, joules. */
    double energyPerInferenceJ() const;
};

} // namespace neurocube

#endif // NEUROCUBE_CORE_RESULTS_HH
