/**
 * @file
 * Multi-cube scaling model (paper Section IX: "Next steps involve
 * scaling this implementation across multiple cubes to support much
 * larger networks than can be feasibly supported today").
 *
 * Cubes are connected through their external HMC links (HMC-Ext in
 * Table I: 40 GB/s per link) and run data-parallel over spatial
 * tiles of each layer, exchanging halo regions between layers; fully
 * connected layers all-gather their activations. The per-cube
 * execution time comes from the single-cube analytic model on the
 * sub-image; the exchange time from the link bandwidth. The model
 * answers the paper's scaling question: how far does tile
 * parallelism carry before inter-cube traffic dominates?
 */

#ifndef NEUROCUBE_CORE_MULTI_CUBE_HH
#define NEUROCUBE_CORE_MULTI_CUBE_HH

#include <vector>

#include "core/analytic_model.hh"
#include "nn/network.hh"

namespace neurocube
{

/** A ring/grid of Neurocubes linked by their external HMC links. */
struct MultiCubeConfig
{
    /** Number of cubes (spatial tiles). */
    unsigned numCubes = 2;
    /** Per-cube machine configuration. */
    NeurocubeConfig cube;
    /**
     * External-link bandwidth available for halo exchange per cube,
     * GB/s (HMC-Ext: 40 GB/s per link, Table I).
     */
    double linkBandwidthGBps = 40.0;
};

/** Scaling estimate for one layer across the cubes. */
struct MultiCubeEstimate
{
    /** Compute cycles of the busiest cube. */
    Tick computeCycles = 0;
    /** Reference-clock cycles spent exchanging halos/activations. */
    Tick exchangeCycles = 0;
    /** Total arithmetic operations across all cubes. */
    uint64_t ops = 0;

    Tick totalCycles() const { return computeCycles + exchangeCycles; }

    double
    gopsPerSecond(double clock_ghz = referenceClockHz / 1e9) const
    {
        Tick cycles = totalCycles();
        if (cycles == 0)
            return 0.0;
        return double(ops) / (double(cycles) / (clock_ghz * 1e9))
             / 1e9;
    }
};

/** Estimate one layer's multi-cube execution. */
MultiCubeEstimate multiCubeLayerEstimate(const LayerDesc &layer,
                                         const MultiCubeConfig &config);

/** Whole-network estimate (sums layers). */
MultiCubeEstimate multiCubeNetworkEstimate(
    const NetworkDesc &net, const MultiCubeConfig &config);

/**
 * Parallel efficiency of N cubes vs one cube on the same network:
 * speedup / N (1.0 = perfect scaling).
 */
double multiCubeEfficiency(const NetworkDesc &net,
                           const MultiCubeConfig &config);

} // namespace neurocube

#endif // NEUROCUBE_CORE_MULTI_CUBE_HH
