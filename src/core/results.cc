#include "core/results.hh"

#include <iomanip>
#include <sstream>

namespace neurocube
{

namespace
{

/** JSON-format a double (plain decimal; NaN/inf become 0). */
std::string
jsonNumber(double value)
{
    if (!(value == value) || value > 1e300 || value < -1e300)
        return "0";
    std::ostringstream os;
    // Enough digits that per-class fractions re-sum to ~1.0 exactly.
    os << std::setprecision(12) << value;
    return os.str();
}

/** Escape a string for a JSON literal (our names are tame). */
std::string
jsonString(const std::string &s)
{
    std::string out = "\"";
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    out += '"';
    return out;
}

void
appendFractions(std::ostringstream &os,
                const std::array<double, numStallClasses> &fractions)
{
    os << "{";
    for (size_t s = 0; s < numStallClasses; ++s) {
        if (s)
            os << ", ";
        os << "\"" << stallClassName(StallClass(s))
           << "\": " << jsonNumber(fractions[s]);
    }
    os << "}";
}

void
appendHistogram(std::ostringstream &os, const char *name,
                const HistogramSummary &h)
{
    os << "\"" << name << "\": {\"count\": " << h.count
       << ", \"mean\": " << jsonNumber(h.mean)
       << ", \"p50\": " << jsonNumber(h.p50)
       << ", \"p99\": " << jsonNumber(h.p99) << ", \"max\": " << h.max
       << "}";
}

void
appendBottleneck(std::ostringstream &os, const BottleneckReport &b)
{
    if (!b.valid) {
        os << "null";
        return;
    }
    os << "{\"label\": \"" << b.label << "\", \"counted_ticks\": "
       << b.countedTicks << ", \"fractions\": ";
    appendFractions(os, b.fractions);

    os << ", \"components\": {";
    // Sim has no per-cycle accounting; report the ticked components.
    static constexpr TraceComponent ticked[] = {
        TraceComponent::Router, TraceComponent::Pe,
        TraceComponent::Png, TraceComponent::Vault};
    bool first = true;
    for (TraceComponent c : ticked) {
        if (!first)
            os << ", ";
        first = false;
        os << "\"" << traceComponentName(c) << "\": ";
        appendFractions(os, b.componentFractions[size_t(c)]);
    }
    os << "}";

    os << ", \"signals\": {\"pe_busy\": " << jsonNumber(b.peBusy)
       << ", \"pe_stall_cache\": " << jsonNumber(b.peStallCache)
       << ", \"router_blocked\": " << jsonNumber(b.routerBlocked)
       << ", \"png_inject_stall\": " << jsonNumber(b.pngInjectStall)
       << ", \"dram_pressure\": " << jsonNumber(b.dramPressure)
       << ", \"vault_backpressure\": "
       << jsonNumber(b.vaultBackpressure) << "}";

    os << ", \"histograms\": {";
    appendHistogram(os, "noc_latency", b.nocLatency);
    os << ", ";
    appendHistogram(os, "dram_queue_residency", b.dramQueueResidency);
    os << ", ";
    appendHistogram(os, "pe_cache_occupancy", b.peCacheOccupancy);
    os << ", ";
    appendHistogram(os, "png_out_queue_depth", b.pngOutQueueDepth);
    os << "}}";
}

} // namespace

std::string
RunResult::metricsJson() const
{
    std::ostringstream os;
    os << "{\n  \"total_cycles\": " << totalCycles()
       << ",\n  \"total_ops\": " << totalOps()
       << ",\n  \"layers\": [\n";
    for (size_t i = 0; i < layers.size(); ++i) {
        const LayerResult &l = layers[i];
        os << "    {\"name\": " << jsonString(l.name)
           << ", \"cycles\": " << l.cycles << ", \"ops\": " << l.ops
           << ", \"passes\": " << l.passes
           << ", \"lateral_fraction\": "
           << jsonNumber(l.lateralFraction()) << ", \"bottleneck\": ";
        appendBottleneck(os, l.bottleneck);
        os << "}" << (i + 1 < layers.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
    return os.str();
}

namespace
{

void
appendRoofline(std::ostringstream &os, const RooflinePoint &r)
{
    if (!r.valid) {
        os << "null";
        return;
    }
    os << "{\"mac_per_cycle\": " << jsonNumber(r.macPerCycle)
       << ", \"mac_ceiling\": " << jsonNumber(r.macCeiling)
       << ", \"bytes_per_cycle\": " << jsonNumber(r.bytesPerCycle)
       << ", \"bytes_ceiling\": " << jsonNumber(r.bytesCeiling)
       << ", \"intensity\": " << jsonNumber(r.intensity())
       << ", \"bound\": " << jsonString(r.bound) << "}";
}

} // namespace

std::string
RunResult::spatialJson() const
{
    std::ostringstream os;
    os << "{\n  \"aggregate\": "
       << spatialSnapshotJson(spatialTopology, spatialSnapshot(),
                              totalCycles())
       << ",\n  \"layers\": [\n";
    for (size_t i = 0; i < layers.size(); ++i) {
        const LayerResult &l = layers[i];
        os << "    {\"name\": " << jsonString(l.name)
           << ", \"cycles\": " << l.cycles << ", \"roofline\": ";
        appendRoofline(os, l.roofline);
        os << ", \"spatial\": "
           << spatialSnapshotJson(spatialTopology, l.spatial,
                                  l.cycles);
        os << "}" << (i + 1 < layers.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
    return os.str();
}

} // namespace neurocube
