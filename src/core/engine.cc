#include "core/engine.hh"

#include <algorithm>

#include "common/logging.hh"
#include "dram/memory_channel.hh"
#include "pe/pe.hh"
#include "png/png.hh"

namespace neurocube
{

PassScheduler::PassScheduler(Slice slice, Tick start)
    : s_(std::move(slice))
{
    const size_t nc = s_.channels.size();
    const size_t np = s_.pes.size();
    nc_assert(s_.fabric != nullptr, "scheduler without a fabric");
    nc_assert(s_.channelIds.size() == nc && s_.pngs.size() == nc
                  && s_.channelNodes.size() == nc,
              "channel slice vectors disagree");
    nc_assert(s_.peIds.size() == np, "PE slice vectors disagree");

    pngWake_.assign(nc, start);
    pngAcct_.assign(nc, start);
    chWake_.assign(nc, start);
    chAcct_.assign(nc, start);
    peWake_.assign(np, start);
    peAcct_.assign(np, start);
    fabricWake_ = start;
    fabricAcct_ = start;

    chSlotOfChannel_.assign(s_.numChannels, -1);
    chSlotOfNode_.assign(s_.numNodes, -1);
    peSlotOfNode_.assign(s_.numNodes, -1);
    for (size_t i = 0; i < nc; ++i) {
        chSlotOfChannel_[s_.channelIds[i]] = int(i);
        chSlotOfNode_[s_.channelNodes[i]] = int(i);
        s_.channels[i]->setWakeSink(this);
    }
    for (size_t i = 0; i < np; ++i) {
        peSlotOfNode_[s_.peIds[i]] = int(i);
        s_.fabric->setNodeWakeSink(s_.peIds[i], this);
    }
}

PassScheduler::~PassScheduler()
{
    for (MemoryChannel *channel : s_.channels)
        channel->setWakeSink(nullptr);
    for (unsigned node : s_.peIds)
        s_.fabric->setNodeWakeSink(node, nullptr);
}

void
PassScheduler::step(Tick t)
{
    cur_ = t;
    const size_t nc = s_.channels.size();

    // Phase 1: PNGs (ascending channel index, as the legacy loop).
    for (size_t i = 0; i < nc; ++i) {
        if (pngWake_[i] <= t) {
            if (pngAcct_[i] < t) {
                skipped_ += t - pngAcct_[i];
                s_.pngs[i]->skipTicks(pngAcct_[i], t);
            }
            s_.pngs[i]->tick(t);
            pngAcct_[i] = t + 1;
            pngWake_[i] = s_.pngs[i]->nextEventAfter(t);
        }
    }

    // Phase 2: memory channels. An enqueue in phase 1 has already
    // caught the channel up (onChannelEnqueue) and pulled its wake
    // down to t, so the tick below sees legacy-identical state.
    for (size_t i = 0; i < nc; ++i) {
        if (chWake_[i] <= t) {
            if (chAcct_[i] < t) {
                skipped_ += t - chAcct_[i];
                s_.channels[i]->skipTicks(chAcct_[i], t);
            }
            s_.channels[i]->tick(t);
            chAcct_[i] = t + 1;
            chWake_[i] = s_.channels[i]->nextEventAfter(t);
        }
    }

    // Phase 3: the NoC (or this lane's slice of it).
    if (fabricWake_ <= t) {
        if (fabricAcct_ < t) {
            skipped_ += t - fabricAcct_;
            if (s_.view != nullptr)
                s_.fabric->skipLaneTicks(*s_.view, t - fabricAcct_);
            else
                s_.fabric->skipTicks(t - fabricAcct_);
        }
        if (s_.view != nullptr) {
            s_.fabric->tickLane(*s_.view, t);
            fabricWake_ = s_.fabric->laneRoutersIdle(*s_.view)
                              ? tickNever
                              : t + 1;
        } else {
            s_.fabric->tick(t);
            fabricWake_ = s_.fabric->nextEventAfter(t);
        }
        fabricAcct_ = t + 1;
    }

    // Phase 4: PEs. An ejection in phase 3 woke the PE at t, so a
    // delivered operand is consumed this very tick, as in legacy.
    const size_t np = s_.pes.size();
    for (size_t i = 0; i < np; ++i) {
        if (peWake_[i] <= t) {
            if (peAcct_[i] < t) {
                skipped_ += t - peAcct_[i];
                s_.pes[i]->skipTicks(peAcct_[i], t);
            }
            s_.pes[i]->tick(t, *s_.fabric);
            peAcct_[i] = t + 1;
            peWake_[i] = s_.pes[i]->nextEventAfter(t, *s_.fabric);
        }
    }
}

Tick
PassScheduler::minWake() const
{
    Tick next = fabricWake_;
    for (Tick w : pngWake_)
        next = std::min(next, w);
    for (Tick w : chWake_)
        next = std::min(next, w);
    for (Tick w : peWake_)
        next = std::min(next, w);
    return next;
}

void
PassScheduler::catchupAll(Tick final)
{
    for (size_t i = 0; i < s_.pngs.size(); ++i) {
        if (pngAcct_[i] < final) {
            skipped_ += final - pngAcct_[i];
            s_.pngs[i]->skipTicks(pngAcct_[i], final);
            pngAcct_[i] = final;
        }
    }
    for (size_t i = 0; i < s_.channels.size(); ++i) {
        if (chAcct_[i] < final) {
            skipped_ += final - chAcct_[i];
            s_.channels[i]->skipTicks(chAcct_[i], final);
            chAcct_[i] = final;
        }
    }
    if (fabricAcct_ < final) {
        skipped_ += final - fabricAcct_;
        if (s_.view != nullptr)
            s_.fabric->skipLaneTicks(*s_.view, final - fabricAcct_);
        else
            s_.fabric->skipTicks(final - fabricAcct_);
        fabricAcct_ = final;
    }
    for (size_t i = 0; i < s_.pes.size(); ++i) {
        if (peAcct_[i] < final) {
            skipped_ += final - peAcct_[i];
            s_.pes[i]->skipTicks(peAcct_[i], final);
            peAcct_[i] = final;
        }
    }
}

void
PassScheduler::onChannelEnqueue(unsigned ch)
{
    // Fires from a PNG's phase-1 tick, before the request is stamped:
    // catch the channel up so its stale now_ timestamp (and credit /
    // lookahead state) match what legacy per-tick calls left behind.
    const int slot = chSlotOfChannel_[ch];
    nc_assert(slot >= 0, "enqueue wake for foreign channel %u", ch);
    if (chAcct_[slot] < cur_) {
        skipped_ += cur_ - chAcct_[slot];
        s_.channels[slot]->skipTicks(chAcct_[slot], cur_);
        chAcct_[slot] = cur_;
    }
    if (chWake_[slot] > cur_)
        chWake_[slot] = cur_;
}

void
PassScheduler::onChannelServe(unsigned ch)
{
    // Fires from the channel's phase-2 tick. The PNG consuming the
    // response (or the freed queue slot) already ticked this cycle in
    // phase 1, so its first chance to act is the next tick — exactly
    // when legacy has it pick the response up.
    const int slot = chSlotOfChannel_[ch];
    nc_assert(slot >= 0, "serve wake for foreign channel %u", ch);
    if (pngWake_[slot] > cur_ + 1)
        pngWake_[slot] = cur_ + 1;
}

void
PassScheduler::onEject(unsigned node, bool to_mem)
{
    if (to_mem) {
        // Write-back into a PNG's memory port (phase 3): the PNG
        // absorbs it on its next phase-1 tick.
        const int slot = chSlotOfNode_[node];
        nc_assert(slot >= 0, "memory ejection at node %u without a "
                  "channel", node);
        if (pngWake_[slot] > cur_ + 1)
            pngWake_[slot] = cur_ + 1;
    } else {
        // Operand into a PE delivery queue: the PE's phase-4 tick
        // runs after the fabric this same cycle, as in legacy.
        const int slot = peSlotOfNode_[node];
        nc_assert(slot >= 0, "ejection at foreign node %u", node);
        if (peWake_[slot] > cur_)
            peWake_[slot] = cur_;
    }
}

void
PassScheduler::onInject(unsigned node, bool from_mem)
{
    (void)node;
    // A PNG injection (phase 1) is switched by the fabric this same
    // tick (phase 3); a PE write-back (phase 4) waits for the next
    // (the fabric's phase-3 tick at cur_, executed or skipped, was a
    // no-op either way). The hook fires before the packet is pushed,
    // so the catch-up below covers a window of provably idle routers.
    const Tick when = from_mem ? cur_ : cur_ + 1;
    if (fabricAcct_ < when) {
        skipped_ += when - fabricAcct_;
        if (s_.view != nullptr)
            s_.fabric->skipLaneTicks(*s_.view, when - fabricAcct_);
        else
            s_.fabric->skipTicks(when - fabricAcct_);
        fabricAcct_ = when;
    }
    if (fabricWake_ > when)
        fabricWake_ = when;
}

} // namespace neurocube
