/**
 * @file
 * Training workload sequencer (paper Section VI, Fig. 13).
 *
 * The paper evaluates training throughput on a 64x64 scene-labeling
 * input. A training iteration is modelled as machine-executed passes:
 *
 *  - the forward pass of every layer;
 *  - a backward error-propagation (delta) pass for every layer except
 *    the first (the input image needs no delta), each expressed as a
 *    real PNG program: a transposed fully connected layer for FC
 *    layers, a valid convolution over zero-padded delta maps for conv
 *    layers, and a 1x1 map-wise pass for pooling;
 *  - optionally (off by default, matching the paper's training ops
 *    budget — see EXPERIMENTS.md) a weight-gradient pass per
 *    parameterized layer, expressed as a fully-connected-shaped
 *    program whose operand volume equals the true gradient
 *    computation.
 *
 * Functional note: FC delta passes are numerically exact backprop
 * (transposed weights); conv delta passes run the correct transposed
 * data movement but carry synthetic delta values — the paper's
 * training evaluation is throughput-only, and gradient numerics for
 * MLPs are verified separately in the test suite.
 */

#ifndef NEUROCUBE_CORE_TRAINING_HH
#define NEUROCUBE_CORE_TRAINING_HH

#include <vector>

#include "core/neurocube.hh"
#include "core/results.hh"
#include "nn/network.hh"

namespace neurocube
{

/** Knobs of the training workload model. */
struct TrainingOptions
{
    /** Execute weight-gradient passes as well (full backprop). */
    bool includeWeightGradient = false;
    /** Seed for synthetic delta values. */
    uint64_t seed = 1;
};

/**
 * Descriptor of the backward-delta pass for a forward layer.
 *
 * For Conv2D the delta pass is a valid convolution with the same
 * kernel over delta maps zero-padded by (kernel-1), which restores
 * the forward layer's input dimensions; for Pool a 1x1 map-wise
 * pass; for FullyConnected the transposed layer.
 */
LayerDesc deltaLayerDesc(const LayerDesc &fwd);

/**
 * Descriptor of the weight-gradient pass for a parameterized layer
 * (an operand-volume-equivalent fully-connected shape).
 */
LayerDesc gradientLayerDesc(const LayerDesc &fwd);

/** Transpose an FC layer's weights for its exact delta pass. */
std::vector<Fixed> transposeFcWeights(const LayerDesc &fc,
                                      const std::vector<Fixed> &w);

/**
 * Run one training iteration on the machine.
 *
 * @param cube the machine (network need not be pre-loaded)
 * @param net forward network
 * @param data forward parameters
 * @param input training sample
 * @param options workload knobs
 * @return per-pass results: forward layers first, then delta (and
 *         gradient) passes in backward order
 */
RunResult runTrainingIteration(Neurocube &cube,
                               const NetworkDesc &net,
                               const NetworkData &data,
                               const Tensor &input,
                               const TrainingOptions &options = {});

} // namespace neurocube

#endif // NEUROCUBE_CORE_TRAINING_HH
