#include "core/recurrent.hh"

#include "common/logging.hh"

namespace neurocube
{

RunResult
runRnn(Neurocube &cube, const RnnDesc &desc,
       const std::vector<Fixed> &weights,
       const std::vector<Tensor> &inputs, std::vector<Tensor> *states)
{
    nc_assert(weights.size() == desc.weightCount(),
              "RNN weight block size mismatch");
    LayerDesc step = desc.stepLayer();
    step.validate();

    RunResult run;
    Tensor h(1, 1, desc.hiddenSize);
    for (size_t t = 0; t < inputs.size(); ++t) {
        Tensor z = concatWithBias(inputs[t], h);
        LayerResult r = cube.runSingleLayer(step, weights, z, &h);
        r.name = "step" + std::to_string(t);
        run.layers.push_back(r);
        if (states)
            states->push_back(h);
    }
    return run;
}

RunResult
runLstm(Neurocube &cube, const LstmDesc &desc,
        const LstmWeights &weights, const std::vector<Tensor> &inputs,
        std::vector<Tensor> *states)
{
    LayerDesc sig = desc.gateLayer(ActivationKind::Sigmoid);
    LayerDesc tanh_gate = desc.gateLayer(ActivationKind::Tanh);
    LayerDesc cell = lstmCellUpdateLayer(desc.hiddenSize);
    LayerDesc tanh_c = lstmScaleLayer(desc.hiddenSize,
                                      ActivationKind::Tanh, "tanh-c");
    LayerDesc out_scale = lstmScaleLayer(
        desc.hiddenSize, ActivationKind::Identity, "h");
    for (const LayerDesc *l :
         {&sig, &tanh_gate, &cell, &tanh_c, &out_scale})
        l->validate();

    RunResult run;
    Tensor h(1, 1, desc.hiddenSize);
    Tensor c(1, 1, desc.hiddenSize);
    for (size_t t = 0; t < inputs.size(); ++t) {
        Tensor z = concatWithBias(inputs[t], h);
        Tensor i, f, o, g, tc;
        auto pass = [&](const LayerDesc &layer,
                        const std::vector<Fixed> &w,
                        const Tensor &in, Tensor *out,
                        const char *tag) {
            LayerResult r = cube.runSingleLayer(layer, w, in, out);
            r.name = "t" + std::to_string(t) + "." + tag;
            run.layers.push_back(r);
        };
        pass(sig, weights.wi, z, &i, "i");
        pass(sig, weights.wf, z, &f, "f");
        pass(sig, weights.wo, z, &o, "o");
        pass(tanh_gate, weights.wg, z, &g, "g");
        pass(cell, interleaveGates(f, i), stackPlanes(c, g), &c,
             "cell");
        pass(tanh_c, unitWeights(desc.hiddenSize), c, &tc, "tanh");
        pass(out_scale, gateWeights(o), tc, &h, "h");
        if (states)
            states->push_back(h);
    }
    return run;
}

} // namespace neurocube
