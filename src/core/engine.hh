/**
 * @file
 * Wake-list pass scheduler: the event-driven execution engine behind
 * SimEngine::Event and SimEngine::ThreadedLanes.
 *
 * The legacy loop in core/neurocube.cc advances every component every
 * reference tick. Most of those ticks are provably no-ops (a PE
 * waiting out its 16-tick MAC window, a DDR3 channel pacing a 0.2
 * words/tick credit, a finished lane idling until the slowest lane
 * catches up). The scheduler keeps, per component, the next tick at
 * which its tick() could do anything (wakeAt) and the first tick it
 * has not yet accounted (accounted); a pass executes only the ticks
 * some component is awake for, and each component's skipped stretch is
 * replayed in bulk by its skipTicks() before its next real tick.
 *
 * Invariants that make this bit-exact with the legacy loop (see
 * DESIGN.md "Wake-list scheduler"):
 *  - a component only sleeps when its tick() is a no-op modulo
 *    accounting (nextEventAfter() encodes the proof obligation);
 *  - anything that can un-no-op a sleeping component flows through
 *    one of the WakeSink hooks, which wake it at exactly the tick the
 *    legacy loop would have had it act;
 *  - skipTicks(from, to) replays exactly what (to - from) no-op
 *    tick() calls would have recorded (idle stats, stall classes,
 *    histogram samples, credit/priority aging, stale timestamps);
 *  - executed ticks run in the legacy phase order (PNGs, channels,
 *    fabric, PEs; ascending index within a phase).
 *
 * One PassScheduler drives either the whole machine (Event) or one
 * batch lane's slice of it (ThreadedLanes, one scheduler per worker
 * thread over a NocFabric::LaneView). tests/test_engine_diff.cc
 * fuzzes both against the legacy loop.
 */

#ifndef NEUROCUBE_CORE_ENGINE_HH
#define NEUROCUBE_CORE_ENGINE_HH

#include <vector>

#include "common/types.hh"
#include "common/wake.hh"
#include "noc/fabric.hh"

namespace neurocube
{

class MemoryChannel;
class Pe;
class Png;

/** Event-driven scheduler for one pass over one machine slice. */
class PassScheduler final : public WakeSink
{
  public:
    /** The components one scheduler drives (machine or lane slice). */
    struct Slice
    {
        NocFabric *fabric = nullptr;
        /** Lane slice to tick, or nullptr for the whole fabric. */
        const NocFabric::LaneView *view = nullptr;
        /** Owned channel indices, ascending (global numbering). */
        std::vector<unsigned> channelIds;
        /** Owned channels / their PNGs, parallel to channelIds. */
        std::vector<MemoryChannel *> channels;
        std::vector<Png *> pngs;
        /** Mesh node of each owned channel, parallel to channelIds. */
        std::vector<unsigned> channelNodes;
        /** Owned PE node indices, ascending (global numbering). */
        std::vector<unsigned> peIds;
        std::vector<Pe *> pes;
        /** Mesh size / global channel count (map dimensions). */
        unsigned numNodes = 0;
        unsigned numChannels = 0;
    };

    /**
     * Build the wake lists with every component awake at @p start
     * (the first executed tick always ticks everything, exactly like
     * the legacy loop's first iteration) and attach the wake sinks to
     * the slice's channels and fabric nodes.
     */
    PassScheduler(Slice slice, Tick start);

    /** Detaches the wake sinks. */
    ~PassScheduler() override;

    PassScheduler(const PassScheduler &) = delete;
    PassScheduler &operator=(const PassScheduler &) = delete;

    /**
     * Execute tick @p t: catch up and tick every awake component in
     * the legacy phase order. @p t must be the value minWake()
     * returned (or the construction start tick).
     */
    void step(Tick t);

    /** Earliest wake over every component (tickNever = deadlock). */
    Tick minWake() const;

    /**
     * Account every component up to @p final (exclusive) in bulk —
     * the legacy loop keeps no-op-ticking finished components until
     * the pass's global end.
     */
    void catchupAll(Tick final);

    // WakeSink — called by owned components from inside step().
    void onChannelEnqueue(unsigned ch) override;
    void onChannelServe(unsigned ch) override;
    void onEject(unsigned node, bool to_mem) override;
    void onInject(unsigned node, bool from_mem) override;

    /**
     * Component-ticks bulk-replayed by skipTicks()/skipLaneTicks()
     * since the last call, then reset. The fabric (one skip replays
     * its whole slice) counts as a single component. The driving
     * loop turns this into one aggregate TraceEventType::EngineSkip
     * event per executed tick — the skipped window's trace-visible
     * state, synthesized in bulk instead of per-cycle events.
     */
    uint64_t
    takeSkippedTicks()
    {
        const uint64_t skipped = skipped_;
        skipped_ = 0;
        return skipped;
    }

  private:
    Slice s_;

    // Per owned component: next interesting tick / first
    // not-yet-accounted tick. accounted <= wakeAt always.
    std::vector<Tick> pngWake_, pngAcct_;
    std::vector<Tick> chWake_, chAcct_;
    std::vector<Tick> peWake_, peAcct_;
    Tick fabricWake_;
    Tick fabricAcct_;

    /** Global channel index -> owned slot (-1 = not ours). */
    std::vector<int> chSlotOfChannel_;
    /** Mesh node -> owned channel slot (-1 = no channel there). */
    std::vector<int> chSlotOfNode_;
    /** Mesh node -> owned PE slot (-1 = not ours). */
    std::vector<int> peSlotOfNode_;

    /** Tick currently being executed (valid inside step()). */
    Tick cur_ = 0;

    /** Component-ticks skipped since takeSkippedTicks(). */
    uint64_t skipped_ = 0;
};

} // namespace neurocube

#endif // NEUROCUBE_CORE_ENGINE_HH
