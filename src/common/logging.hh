/**
 * @file
 * Status/error reporting helpers in the spirit of gem5's logging.hh.
 *
 * Two terminating reporters are provided:
 *  - fatal():  the simulation cannot continue because of a user error
 *              (bad configuration, invalid argument). Exits with code 1.
 *  - panic():  something happened that should never happen regardless
 *              of user input (a simulator bug). Calls std::abort().
 *
 * Two non-terminating reporters:
 *  - warn():   functionality that may not behave exactly as intended.
 *  - inform(): normal operating status messages.
 */

#ifndef NEUROCUBE_COMMON_LOGGING_HH
#define NEUROCUBE_COMMON_LOGGING_HH

#include <cstdarg>
#include <string>

namespace neurocube
{

/** Severity levels used by the message sink. */
enum class LogLevel
{
    Inform,
    Warn,
    Fatal,
    Panic,
};

namespace detail
{

/**
 * Format and emit one log record; terminates the process for
 * LogLevel::Fatal (exit(1)) and LogLevel::Panic (abort()).
 *
 * @param level severity of the record
 * @param file source file emitting the record
 * @param line source line emitting the record
 * @param fmt printf-style format string
 */
[[gnu::format(printf, 4, 5)]]
void logMessage(LogLevel level, const char *file, int line,
                const char *fmt, ...);

} // namespace detail

/**
 * Redirect warn()/inform() records into an in-memory buffer (used by
 * unit tests to assert on emitted diagnostics).
 *
 * @param capture true to buffer records, false to write to stderr
 */
void setLogCapture(bool capture);

/** Drain and return the records buffered while capture was enabled. */
std::string takeCapturedLog();

} // namespace neurocube

/** Report an unrecoverable user error and exit(1). */
#define nc_fatal(...) \
    ::neurocube::detail::logMessage(::neurocube::LogLevel::Fatal, \
                                    __FILE__, __LINE__, __VA_ARGS__)

/** Report a simulator bug and abort(). */
#define nc_panic(...) \
    ::neurocube::detail::logMessage(::neurocube::LogLevel::Panic, \
                                    __FILE__, __LINE__, __VA_ARGS__)

/** Report a suspicious-but-survivable condition. */
#define nc_warn(...) \
    ::neurocube::detail::logMessage(::neurocube::LogLevel::Warn, \
                                    __FILE__, __LINE__, __VA_ARGS__)

/** Report normal operating status. */
#define nc_inform(...) \
    ::neurocube::detail::logMessage(::neurocube::LogLevel::Inform, \
                                    __FILE__, __LINE__, __VA_ARGS__)

/** panic() unless the given invariant holds. */
#define nc_assert(cond, fmt, ...) \
    do { \
        if (!(cond)) { \
            nc_panic("assertion '%s' failed: " fmt, \
                     #cond __VA_OPT__(,) __VA_ARGS__); \
        } \
    } while (0)

#endif // NEUROCUBE_COMMON_LOGGING_HH
