/**
 * @file
 * Fundamental simulator-wide scalar types and identifiers.
 */

#ifndef NEUROCUBE_COMMON_TYPES_HH
#define NEUROCUBE_COMMON_TYPES_HH

#include <cstdint>

namespace neurocube
{

/**
 * Simulation time in cycles of the reference clock.
 *
 * The reference clock is the DRAM I/O clock (5 GHz for HMC-Int, paper
 * Section VI); PEs and NoC routers run at the same frequency and MACs
 * at f_PE / n_MAC.
 */
using Tick = uint64_t;

/** Reference clock frequency in Hz (HMC vault I/O clock). One Tick
 *  is one period of this clock. */
constexpr double referenceClockHz = 5.0e9;

/** A byte address within the cube's physical address space. */
using Addr = uint64_t;

/** Identifies one DRAM vault (and its vault controller + PNG). */
using VaultId = uint16_t;

/** Identifies one processing element on the logic die. */
using PeId = uint16_t;

/** Identifies one MAC unit within a PE. */
using MacId = uint16_t;

/**
 * Sequence number of an input within the update of one output neuron
 * (the packet OP-ID). The hardware field is 8 bits wide; values wrap
 * modulo 256 (paper Section V-B).
 */
using OpId = uint32_t;

/** Width of the hardware OP-ID field in bits. */
constexpr unsigned opIdBits = 8;

/** Modulus applied to OP-IDs before they enter a packet. */
constexpr uint32_t opIdModulus = 1u << opIdBits;

} // namespace neurocube

#endif // NEUROCUBE_COMMON_TYPES_HH
