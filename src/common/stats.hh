/**
 * @file
 * Lightweight statistics framework for the cycle-level simulator.
 *
 * Components own named Counter/Scalar statistics registered with a
 * StatGroup; groups form a tree so the top-level Neurocube object can
 * dump the complete hierarchy after a run. A TextTable helper renders
 * the paper-style result tables emitted by the benchmark harnesses.
 */

#ifndef NEUROCUBE_COMMON_STATS_HH
#define NEUROCUBE_COMMON_STATS_HH

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace neurocube
{

class StatGroup;

/**
 * A single named statistic: a 64-bit count or a double-valued scalar.
 */
class Stat
{
  public:
    /**
     * Create a statistic and register it with its owning group.
     *
     * @param parent group the statistic belongs to
     * @param name short identifier, unique within the group
     * @param desc human-readable description for dumps
     */
    Stat(StatGroup *parent, std::string name, std::string desc);

    /** Increment by an integer amount. */
    void operator+=(uint64_t amount) { value_ += double(amount); }
    /** Increment by a floating-point amount. */
    void add(double amount) { value_ += amount; }
    /** Overwrite the value (for derived/sampled statistics). */
    void set(double value) { value_ = value; }

    /** Current value as a double. */
    double value() const { return value_; }
    /** Current value rounded to a count. */
    uint64_t count() const { return static_cast<uint64_t>(value_); }

    /** The short identifier. */
    const std::string &name() const { return name_; }
    /** The description string. */
    const std::string &desc() const { return desc_; }

    /** Reset to zero. */
    void reset() { value_ = 0.0; }

  private:
    std::string name_;
    std::string desc_;
    double value_ = 0.0;
};

/**
 * Distribution statistic over recorded non-negative integer samples.
 *
 * Exact count/min/max/mean plus approximate percentiles from
 * power-of-two buckets (constant memory, no sample storage): bucket
 * i > 0 holds samples with bit width i, i.e. [2^(i-1), 2^i - 1], and
 * percentiles interpolate linearly inside a bucket, clamped to the
 * observed [min, max]. Suited to latency/occupancy distributions
 * where a few percent of relative error at the tail is acceptable.
 */
class Histogram
{
  public:
    /**
     * Create a histogram and register it with its owning group.
     *
     * @param parent group the histogram belongs to, or nullptr for a
     *        free-standing histogram (temporary aggregation targets
     *        that never appear in dumps)
     * @param name short identifier, unique within the group
     * @param desc human-readable description for dumps
     */
    Histogram(StatGroup *parent, std::string name, std::string desc);

    /** Record one sample. */
    void
    sample(uint64_t value)
    {
        if (count_ == 0) {
            min_ = value;
            max_ = value;
        } else {
            min_ = value < min_ ? value : min_;
            max_ = value > max_ ? value : max_;
        }
        ++buckets_[bucketOf(value)];
        ++count_;
        sum_ += double(value);
    }

    /**
     * Record @p n identical samples in one update. Exactly equivalent
     * to n sample(value) calls: all quantities are integer-valued, so
     * the bulk sum_ update is exact (the event engine relies on this
     * to keep skipped idle stretches bit-identical with ticked ones).
     */
    void
    sample(uint64_t value, uint64_t n)
    {
        if (n == 0)
            return;
        if (count_ == 0) {
            min_ = value;
            max_ = value;
        } else {
            min_ = value < min_ ? value : min_;
            max_ = value > max_ ? value : max_;
        }
        buckets_[bucketOf(value)] += n;
        count_ += n;
        sum_ += double(value) * double(n);
    }

    /**
     * Fold another histogram's samples into this one (bucket-wise;
     * percentiles of the merge are as approximate as the inputs').
     */
    void merge(const Histogram &other);

    /** Number of recorded samples. */
    uint64_t count() const { return count_; }
    /** Smallest recorded sample (0 when empty). */
    uint64_t min() const { return count_ ? min_ : 0; }
    /** Largest recorded sample (0 when empty). */
    uint64_t max() const { return count_ ? max_ : 0; }
    /** Arithmetic mean of the samples (0 when empty). */
    double mean() const;

    /**
     * Approximate percentile of the recorded distribution.
     *
     * @param p percentile in [0, 100]
     * @return interpolated sample value (0 when empty)
     */
    double percentile(double p) const;

    /** Median. */
    double p50() const { return percentile(50.0); }
    /** 99th percentile. */
    double p99() const { return percentile(99.0); }
    /** 99.9th percentile (tail-latency SLO reporting). */
    double p999() const { return percentile(99.9); }

    /** The short identifier. */
    const std::string &name() const { return name_; }
    /** The description string. */
    const std::string &desc() const { return desc_; }

    /** Drop all samples. */
    void reset();

  private:
    /** Bucket index of a sample value (its bit width). */
    static unsigned
    bucketOf(uint64_t value)
    {
        unsigned width = 0;
        while (value != 0) {
            ++width;
            value >>= 1;
        }
        return width;
    }

    /** Buckets: index 0 = value 0, i = values of bit width i. */
    static constexpr unsigned numBuckets = 65;

    std::string name_;
    std::string desc_;
    std::array<uint64_t, numBuckets> buckets_{};
    uint64_t count_ = 0;
    uint64_t min_ = 0;
    uint64_t max_ = 0;
    double sum_ = 0.0;
};

/**
 * A node in the statistics hierarchy.
 *
 * Non-owning: the registered Stat and child-group objects must outlive
 * the group, which is naturally satisfied when they are members of the
 * same component object.
 */
class StatGroup
{
  public:
    /**
     * Create a group.
     *
     * @param parent enclosing group, or nullptr for a root
     * @param name path component used when dumping
     */
    explicit StatGroup(StatGroup *parent = nullptr,
                       std::string name = "");

    StatGroup(const StatGroup &) = delete;
    StatGroup &operator=(const StatGroup &) = delete;

    /** Register a statistic (called from the Stat constructor). */
    void addStat(Stat *stat);
    /** Register a histogram (called from its constructor). */
    void addHistogram(Histogram *histogram);
    /** Register a child group. */
    void addChild(StatGroup *child);

    /** Look up a direct statistic by name; nullptr when absent. */
    const Stat *findStat(const std::string &name) const;

    /** Look up a direct histogram by name; nullptr when absent. */
    const Histogram *findHistogram(const std::string &name) const;

    /**
     * Recursively write "path.name value # desc" lines.
     *
     * @param os destination stream
     * @param prefix path accumulated from ancestor groups
     */
    void dump(std::ostream &os, const std::string &prefix = "") const;

    /** Recursively reset every statistic in the subtree. */
    void resetAll();

    /** The group's path component. */
    const std::string &name() const { return name_; }

  private:
    std::string name_;
    std::vector<Stat *> stats_;
    std::vector<Histogram *> histograms_;
    std::vector<StatGroup *> children_;
};

/**
 * Fixed-width text table used by the bench harnesses to print
 * paper-style result tables.
 */
class TextTable
{
  public:
    /** Create a table with the given column headers. */
    explicit TextTable(std::vector<std::string> headers);

    /** Append a row; the cell count must match the header count. */
    void addRow(std::vector<std::string> cells);

    /** Render with column alignment and a header separator. */
    std::string str() const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format a double with the given precision (benchmark table cells). */
std::string formatDouble(double value, int precision = 2);

/** Format a count with thousands separators (e.g. 73,476). */
std::string formatCount(uint64_t value);

} // namespace neurocube

#endif // NEUROCUBE_COMMON_STATS_HH
