/**
 * @file
 * 2D geometry helpers: rectangles and tile maps.
 *
 * The Neurocube partitions every layer's input and output images into
 * per-vault tiles (paper Fig. 10). A TileMap describes one such grid
 * partition and answers the two questions the PNGs need: which node
 * owns a pixel, and what is the pixel's local (row-major-within-tile)
 * index, which determines the destination MAC and neuron group.
 */

#ifndef NEUROCUBE_COMMON_GEOMETRY_HH
#define NEUROCUBE_COMMON_GEOMETRY_HH

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/logging.hh"

namespace neurocube
{

/** An axis-aligned rectangle of pixels. */
struct Rect
{
    int32_t x0 = 0;
    int32_t y0 = 0;
    int32_t w = 0;
    int32_t h = 0;

    /** Number of pixels. */
    uint64_t count() const { return uint64_t(w) * uint64_t(h); }

    /** True when (x, y) lies inside. */
    bool
    contains(int32_t x, int32_t y) const
    {
        return x >= x0 && x < x0 + w && y >= y0 && y < y0 + h;
    }

    /** Row-major index of (x, y) within this rectangle. */
    uint64_t
    localIndex(int32_t x, int32_t y) const
    {
        nc_assert(contains(x, y), "pixel (%d,%d) outside rect", x, y);
        return uint64_t(y - y0) * uint64_t(w) + uint64_t(x - x0);
    }

    /** Grow by margin on every side, clipped to @p bounds. */
    Rect
    expandedWithin(int32_t margin, const Rect &bounds) const
    {
        int32_t nx0 = std::max(x0 - margin, bounds.x0);
        int32_t ny0 = std::max(y0 - margin, bounds.y0);
        int32_t nx1 = std::min(x0 + w + margin, bounds.x0 + bounds.w);
        int32_t ny1 = std::min(y0 + h + margin, bounds.y0 + bounds.h);
        return {nx0, ny0, nx1 - nx0, ny1 - ny0};
    }

    bool operator==(const Rect &other) const = default;
};

/**
 * A grid partition of a rectangle across nodes.
 *
 * Tiles are indexed row-major across the grid: node = ty * gridW + tx.
 * Degenerate tiles (zero pixels, when there are more nodes than rows
 * or columns) are allowed; such nodes simply own no neurons.
 */
class TileMap
{
  public:
    TileMap() = default;

    /**
     * Build a near-equal grid partition.
     *
     * @param area rectangle to partition
     * @param grid_w grid columns
     * @param grid_h grid rows
     */
    static TileMap
    grid(const Rect &area, unsigned grid_w, unsigned grid_h)
    {
        TileMap map;
        map.area_ = area;
        map.gridW_ = grid_w;
        map.gridH_ = grid_h;
        map.xBounds_ = splitAxis(area.x0, area.w, grid_w);
        map.yBounds_ = splitAxis(area.y0, area.h, grid_h);
        return map;
    }

    /** The node owning pixel (x, y). */
    unsigned
    owner(int32_t x, int32_t y) const
    {
        unsigned tx = axisIndex(xBounds_, x);
        unsigned ty = axisIndex(yBounds_, y);
        return ty * gridW_ + tx;
    }

    /** The tile rectangle of a node. */
    Rect
    tile(unsigned node) const
    {
        unsigned tx = node % gridW_;
        unsigned ty = node / gridW_;
        nc_assert(ty < gridH_, "node %u outside %ux%u grid", node,
                  gridW_, gridH_);
        return {xBounds_[tx], yBounds_[ty],
                xBounds_[tx + 1] - xBounds_[tx],
                yBounds_[ty + 1] - yBounds_[ty]};
    }

    /** Local row-major index of (x, y) within its owner tile. */
    uint64_t
    localIndex(int32_t x, int32_t y) const
    {
        return tile(owner(x, y)).localIndex(x, y);
    }

    /** Number of nodes (grid cells). */
    unsigned numNodes() const { return gridW_ * gridH_; }

    /** The partitioned area. */
    const Rect &area() const { return area_; }

  private:
    static std::vector<int32_t>
    splitAxis(int32_t origin, int32_t length, unsigned parts)
    {
        std::vector<int32_t> bounds(parts + 1);
        for (unsigned i = 0; i <= parts; ++i) {
            bounds[i] = origin
                + int32_t((uint64_t(length) * i) / parts);
        }
        return bounds;
    }

    static unsigned
    axisIndex(const std::vector<int32_t> &bounds, int32_t v)
    {
        nc_assert(!bounds.empty() && v >= bounds.front()
                      && v < bounds.back(),
                  "coordinate %d outside tile map", v);
        // Tiles are near-equal; start from the proportional guess.
        unsigned n = unsigned(bounds.size()) - 1;
        unsigned idx = unsigned((uint64_t(v - bounds.front()) * n)
                                / uint64_t(bounds.back()
                                           - bounds.front()));
        if (idx >= n)
            idx = n - 1;
        while (v < bounds[idx])
            --idx;
        while (v >= bounds[idx + 1])
            ++idx;
        return idx;
    }

    Rect area_;
    unsigned gridW_ = 1;
    unsigned gridH_ = 1;
    std::vector<int32_t> xBounds_{0, 0};
    std::vector<int32_t> yBounds_{0, 0};
};

} // namespace neurocube

#endif // NEUROCUBE_COMMON_GEOMETRY_HH
