#include "common/logging.hh"

#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <sstream>

namespace neurocube
{

namespace
{

std::mutex log_mutex;
bool capture_enabled = false;
std::string captured;

const char *
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Inform: return "info";
      case LogLevel::Warn:   return "warn";
      case LogLevel::Fatal:  return "fatal";
      case LogLevel::Panic:  return "panic";
    }
    return "?";
}

} // namespace

void
setLogCapture(bool capture)
{
    std::lock_guard<std::mutex> guard(log_mutex);
    capture_enabled = capture;
    captured.clear();
}

std::string
takeCapturedLog()
{
    std::lock_guard<std::mutex> guard(log_mutex);
    std::string out;
    out.swap(captured);
    return out;
}

namespace detail
{

void
logMessage(LogLevel level, const char *file, int line,
           const char *fmt, ...)
{
    char body[2048];
    va_list args;
    va_start(args, fmt);
    std::vsnprintf(body, sizeof(body), fmt, args);
    va_end(args);

    std::ostringstream record;
    record << levelName(level) << ": " << body;
    if (level == LogLevel::Fatal || level == LogLevel::Panic)
        record << " @ " << file << ":" << line;
    record << "\n";

    {
        std::lock_guard<std::mutex> guard(log_mutex);
        if (capture_enabled && level != LogLevel::Fatal &&
            level != LogLevel::Panic) {
            captured += record.str();
        } else {
            std::fputs(record.str().c_str(), stderr);
        }
    }

    if (level == LogLevel::Fatal)
        std::exit(1);
    if (level == LogLevel::Panic)
        std::abort();
}

} // namespace detail

} // namespace neurocube
