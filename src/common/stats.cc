#include "common/stats.hh"

#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/logging.hh"

namespace neurocube
{

Stat::Stat(StatGroup *parent, std::string name, std::string desc)
    : name_(std::move(name)), desc_(std::move(desc))
{
    nc_assert(parent != nullptr, "stat '%s' needs a group", name_.c_str());
    parent->addStat(this);
}

StatGroup::StatGroup(StatGroup *parent, std::string name)
    : name_(std::move(name))
{
    if (parent)
        parent->addChild(this);
}

void
StatGroup::addStat(Stat *stat)
{
    nc_assert(findStat(stat->name()) == nullptr,
              "duplicate stat '%s' in group '%s'",
              stat->name().c_str(), name_.c_str());
    stats_.push_back(stat);
}

void
StatGroup::addChild(StatGroup *child)
{
    children_.push_back(child);
}

const Stat *
StatGroup::findStat(const std::string &name) const
{
    for (const Stat *stat : stats_) {
        if (stat->name() == name)
            return stat;
    }
    return nullptr;
}

void
StatGroup::dump(std::ostream &os, const std::string &prefix) const
{
    std::string path = prefix;
    if (!name_.empty())
        path += (path.empty() ? "" : ".") + name_;

    for (const Stat *stat : stats_) {
        std::string full = path.empty() ? stat->name()
                                        : path + "." + stat->name();
        os << std::left << std::setw(44) << full << " "
           << std::right << std::setw(16) << stat->value()
           << "  # " << stat->desc() << "\n";
    }
    for (const StatGroup *child : children_)
        child->dump(os, path);
}

void
StatGroup::resetAll()
{
    for (Stat *stat : stats_)
        stat->reset();
    for (StatGroup *child : children_)
        child->resetAll();
}

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    nc_assert(cells.size() == headers_.size(),
              "row has %zu cells, table has %zu columns",
              cells.size(), headers_.size());
    rows_.push_back(std::move(cells));
}

std::string
TextTable::str() const
{
    std::vector<size_t> widths(headers_.size(), 0);
    for (size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_) {
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    std::ostringstream os;
    auto emit_row = [&](const std::vector<std::string> &cells) {
        for (size_t c = 0; c < cells.size(); ++c) {
            os << (c == 0 ? "| " : " ");
            os << std::left << std::setw(int(widths[c])) << cells[c];
            os << " |";
        }
        os << "\n";
    };

    emit_row(headers_);
    for (size_t c = 0; c < headers_.size(); ++c) {
        os << (c == 0 ? "|" : "") << std::string(widths[c] + 2, '-')
           << "|";
    }
    os << "\n";
    for (const auto &row : rows_)
        emit_row(row);
    return os.str();
}

std::string
formatDouble(double value, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << value;
    return os.str();
}

std::string
formatCount(uint64_t value)
{
    std::string digits = std::to_string(value);
    std::string out;
    int run = 0;
    for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
        if (run != 0 && run % 3 == 0)
            out.push_back(',');
        out.push_back(*it);
        ++run;
    }
    return {out.rbegin(), out.rend()};
}

} // namespace neurocube
