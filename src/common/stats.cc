#include "common/stats.hh"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/logging.hh"

namespace neurocube
{

Stat::Stat(StatGroup *parent, std::string name, std::string desc)
    : name_(std::move(name)), desc_(std::move(desc))
{
    nc_assert(parent != nullptr, "stat '%s' needs a group", name_.c_str());
    parent->addStat(this);
}

Histogram::Histogram(StatGroup *parent, std::string name,
                     std::string desc)
    : name_(std::move(name)), desc_(std::move(desc))
{
    if (parent)
        parent->addHistogram(this);
}

void
Histogram::merge(const Histogram &other)
{
    if (other.count_ == 0)
        return;
    if (count_ == 0) {
        min_ = other.min_;
        max_ = other.max_;
    } else {
        min_ = std::min(min_, other.min_);
        max_ = std::max(max_, other.max_);
    }
    for (unsigned b = 0; b < numBuckets; ++b)
        buckets_[b] += other.buckets_[b];
    count_ += other.count_;
    sum_ += other.sum_;
}

double
Histogram::mean() const
{
    return count_ ? sum_ / double(count_) : 0.0;
}

double
Histogram::percentile(double p) const
{
    if (count_ == 0)
        return 0.0;
    p = std::min(100.0, std::max(0.0, p));

    // 0-based target rank within the sorted samples.
    const double rank = p / 100.0 * double(count_ - 1);
    uint64_t seen = 0;
    for (unsigned b = 0; b < numBuckets; ++b) {
        if (buckets_[b] == 0)
            continue;
        if (rank < double(seen + buckets_[b])) {
            // Interpolate linearly across the bucket's value span.
            double lo = b == 0 ? 0.0 : double(uint64_t(1) << (b - 1));
            double hi = b == 0 ? 0.0
                               : double((uint64_t(1) << (b - 1)) * 2
                                        - 1);
            double frac = buckets_[b] > 1
                            ? (rank - double(seen))
                                  / double(buckets_[b] - 1)
                            : 0.0;
            double value = lo + frac * (hi - lo);
            return std::min(double(max_),
                            std::max(double(min_), value));
        }
        seen += buckets_[b];
    }
    return double(max_);
}

void
Histogram::reset()
{
    buckets_.fill(0);
    count_ = 0;
    min_ = 0;
    max_ = 0;
    sum_ = 0.0;
}

StatGroup::StatGroup(StatGroup *parent, std::string name)
    : name_(std::move(name))
{
    if (parent)
        parent->addChild(this);
}

void
StatGroup::addStat(Stat *stat)
{
    nc_assert(findStat(stat->name()) == nullptr,
              "duplicate stat '%s' in group '%s'",
              stat->name().c_str(), name_.c_str());
    stats_.push_back(stat);
}

void
StatGroup::addHistogram(Histogram *histogram)
{
    nc_assert(findHistogram(histogram->name()) == nullptr,
              "duplicate histogram '%s' in group '%s'",
              histogram->name().c_str(), name_.c_str());
    histograms_.push_back(histogram);
}

void
StatGroup::addChild(StatGroup *child)
{
    children_.push_back(child);
}

const Stat *
StatGroup::findStat(const std::string &name) const
{
    for (const Stat *stat : stats_) {
        if (stat->name() == name)
            return stat;
    }
    return nullptr;
}

const Histogram *
StatGroup::findHistogram(const std::string &name) const
{
    for (const Histogram *histogram : histograms_) {
        if (histogram->name() == name)
            return histogram;
    }
    return nullptr;
}

void
StatGroup::dump(std::ostream &os, const std::string &prefix) const
{
    std::string path = prefix;
    if (!name_.empty())
        path += (path.empty() ? "" : ".") + name_;

    for (const Stat *stat : stats_) {
        std::string full = path.empty() ? stat->name()
                                        : path + "." + stat->name();
        os << std::left << std::setw(44) << full << " "
           << std::right << std::setw(16) << stat->value()
           << "  # " << stat->desc() << "\n";
    }
    for (const Histogram *histogram : histograms_) {
        std::string full = path.empty()
                             ? histogram->name()
                             : path + "." + histogram->name();
        auto line = [&](const char *suffix, double value) {
            os << std::left << std::setw(44) << (full + suffix) << " "
               << std::right << std::setw(16) << value << "  # "
               << histogram->desc() << "\n";
        };
        line(".count", double(histogram->count()));
        line(".min", double(histogram->min()));
        line(".max", double(histogram->max()));
        line(".mean", histogram->mean());
        line(".p50", histogram->p50());
        line(".p99", histogram->p99());
    }
    for (const StatGroup *child : children_)
        child->dump(os, path);
}

void
StatGroup::resetAll()
{
    for (Stat *stat : stats_)
        stat->reset();
    for (Histogram *histogram : histograms_)
        histogram->reset();
    for (StatGroup *child : children_)
        child->resetAll();
}

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    nc_assert(cells.size() == headers_.size(),
              "row has %zu cells, table has %zu columns",
              cells.size(), headers_.size());
    rows_.push_back(std::move(cells));
}

std::string
TextTable::str() const
{
    std::vector<size_t> widths(headers_.size(), 0);
    for (size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_) {
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    std::ostringstream os;
    auto emit_row = [&](const std::vector<std::string> &cells) {
        for (size_t c = 0; c < cells.size(); ++c) {
            os << (c == 0 ? "| " : " ");
            os << std::left << std::setw(int(widths[c])) << cells[c];
            os << " |";
        }
        os << "\n";
    };

    emit_row(headers_);
    for (size_t c = 0; c < headers_.size(); ++c) {
        os << (c == 0 ? "|" : "") << std::string(widths[c] + 2, '-')
           << "|";
    }
    os << "\n";
    for (const auto &row : rows_)
        emit_row(row);
    return os.str();
}

std::string
formatDouble(double value, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << value;
    return os.str();
}

std::string
formatCount(uint64_t value)
{
    std::string digits = std::to_string(value);
    std::string out;
    int run = 0;
    for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
        if (run != 0 && run % 3 == 0)
            out.push_back(',');
        out.push_back(*it);
        ++run;
    }
    return {out.rbegin(), out.rend()};
}

} // namespace neurocube
