/**
 * @file
 * Deterministic pseudo-random number generator for synthetic workloads.
 *
 * A fixed, seedable generator (xoshiro256**) keeps every test, example
 * and benchmark bit-reproducible across platforms, unlike
 * std::default_random_engine whose behaviour is implementation-defined.
 */

#ifndef NEUROCUBE_COMMON_RNG_HH
#define NEUROCUBE_COMMON_RNG_HH

#include <cstdint>

namespace neurocube
{

/** Seedable xoshiro256** generator with convenience distributions. */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded via splitmix64). */
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull)
    {
        uint64_t x = seed;
        for (auto &word : state_) {
            // splitmix64 step
            x += 0x9e3779b97f4a7c15ull;
            uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    uint64_t
    next()
    {
        auto rotl = [](uint64_t v, int k) {
            return (v << k) | (v >> (64 - k));
        };
        uint64_t result = rotl(state_[1] * 5, 7) * 9;
        uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Uniform double in [lo, hi). */
    double
    uniform(double lo, double hi)
    {
        return lo + (hi - lo) * uniform();
    }

    /** Uniform integer in [0, bound). @pre bound > 0 */
    uint64_t
    below(uint64_t bound)
    {
        return next() % bound;
    }

  private:
    uint64_t state_[4];
};

} // namespace neurocube

#endif // NEUROCUBE_COMMON_RNG_HH
