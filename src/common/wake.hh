/**
 * @file
 * Wake-list plumbing for the event-driven scheduler.
 *
 * The event engine (src/core/engine.*) lets a component sleep when
 * its tick() is provably a no-op modulo accounting. A sleeping
 * component is re-armed by the producer whose action gives it work
 * again: those producer-side hooks are the WakeSink interface below.
 * Components that can wake others (MemoryChannel, NocFabric) hold an
 * optional sink pointer; with no engine installed the pointer is null
 * and the hooks cost one branch.
 *
 * The hook contract (who wakes whom, and at which tick relative to
 * the producer's tick t) is fixed by the legacy phase order
 * PNG -> channel -> fabric -> PE within one cycle:
 *
 *  - onChannelEnqueue(ch): a PNG enqueued a request during phase 1 of
 *    tick t; the channel must run its phase-2 tick at t. The sink
 *    must catch the channel's accounting up to t *before* returning,
 *    because enqueue() stamps the request with the channel's
 *    one-tick-stale internal clock (see MemoryChannel::now_).
 *  - onChannelServe(ch): the channel served a word at tick t; the PNG
 *    may now have responses to match, queue credit to issue into, or
 *    write-buffer space — wake it for t + 1 (its phase already ran).
 *  - onEject(node, to_mem): the fabric delivered a packet at tick t.
 *    A PE consumes it the same tick (phase 4 runs after the fabric);
 *    a PNG consumes it at t + 1 (its phase precedes the fabric's).
 *  - onInject(node, from_mem): an endpoint pushed a packet into its
 *    router at tick t. A PNG injection (phase 1) is switchable the
 *    same tick; a PE injection (phase 4) the next tick.
 */

#ifndef NEUROCUBE_COMMON_WAKE_HH
#define NEUROCUBE_COMMON_WAKE_HH

#include "common/types.hh"

namespace neurocube
{

/** "No next event": a component sleeping until some hook fires. */
constexpr Tick tickNever = ~Tick(0);

/** Producer-side wake hooks consumed by the event engine. */
class WakeSink
{
  public:
    virtual ~WakeSink() = default;

    /** A request entered channel @p ch this tick (catch up first). */
    virtual void onChannelEnqueue(unsigned ch) = 0;
    /** Channel @p ch served a word this tick (wake its PNG next). */
    virtual void onChannelServe(unsigned ch) = 0;
    /** A packet was delivered at @p node (to_mem: PNG, else PE). */
    virtual void onEject(unsigned node, bool to_mem) = 0;
    /** A packet was injected at @p node (from_mem: by the PNG). */
    virtual void onInject(unsigned node, bool from_mem) = 0;
};

} // namespace neurocube

#endif // NEUROCUBE_COMMON_WAKE_HH
