/**
 * @file
 * 16-bit Q1.7.8 fixed-point arithmetic used throughout the Neurocube.
 *
 * The paper (Section III-B) represents both neuron states and synaptic
 * weights as 16-bit fixed point with 1 sign bit, 7 integer bits and 8
 * fractional bits. MAC units multiply two Q1.7.8 values into a wide
 * accumulator (Q-format 15.16 product, accumulated at 64 bits) and the
 * accumulated state is saturated back to Q1.7.8 when it is written to
 * a packet or through the activation LUT.
 */

#ifndef NEUROCUBE_COMMON_FIXED_POINT_HH
#define NEUROCUBE_COMMON_FIXED_POINT_HH

#include <cstdint>
#include <ostream>

namespace neurocube
{

/**
 * A saturating Q1.7.8 fixed-point number (16 bits).
 *
 * All arithmetic saturates to [-128, 128 - 2^-8]; overflow never wraps.
 * The raw bit pattern is exactly what travels in a NoC packet payload
 * and what is stored in DRAM, so bit-equality between the cycle-level
 * simulation and the sequential reference model is meaningful.
 */
class Fixed
{
  public:
    /** Number of fractional bits. */
    static constexpr int fracBits = 8;
    /** Scale factor 2^fracBits. */
    static constexpr int32_t scale = 1 << fracBits;
    /** Largest representable raw value. */
    static constexpr int32_t rawMax = INT16_MAX;
    /** Smallest representable raw value. */
    static constexpr int32_t rawMin = INT16_MIN;

    /** Zero-initialized. */
    constexpr Fixed() : raw_(0) {}

    /** Construct from a double, rounding to nearest and saturating. */
    static Fixed
    fromDouble(double value)
    {
        double scaled = value * scale;
        // Round to nearest, ties away from zero, then saturate.
        int64_t raw = static_cast<int64_t>(
            scaled >= 0 ? scaled + 0.5 : scaled - 0.5);
        return fromRaw64(raw);
    }

    /** Construct directly from a raw 16-bit pattern (no saturation). */
    static constexpr Fixed
    fromRaw(int16_t raw)
    {
        Fixed f;
        f.raw_ = raw;
        return f;
    }

    /** Construct from a wide raw value, saturating to 16 bits. */
    static constexpr Fixed
    fromRaw64(int64_t raw)
    {
        if (raw > rawMax)
            raw = rawMax;
        else if (raw < rawMin)
            raw = rawMin;
        return fromRaw(static_cast<int16_t>(raw));
    }

    /** Construct from an integer value (e.g. Fixed(2) == 2.0). */
    explicit constexpr Fixed(int value)
        : raw_(0)
    {
        *this = fromRaw64(static_cast<int64_t>(value) * scale);
    }

    /** The raw 16-bit two's-complement pattern. */
    constexpr int16_t raw() const { return raw_; }

    /** The value as a double. */
    constexpr double
    toDouble() const
    {
        return static_cast<double>(raw_) / scale;
    }

    /** Saturating addition. */
    constexpr Fixed
    operator+(Fixed other) const
    {
        return fromRaw64(static_cast<int64_t>(raw_) + other.raw_);
    }

    /** Saturating subtraction. */
    constexpr Fixed
    operator-(Fixed other) const
    {
        return fromRaw64(static_cast<int64_t>(raw_) - other.raw_);
    }

    /** Saturating multiplication (Q1.7.8 x Q1.7.8 -> Q1.7.8). */
    constexpr Fixed
    operator*(Fixed other) const
    {
        int64_t wide = static_cast<int64_t>(raw_) * other.raw_;
        return fromRaw64(wide >> fracBits);
    }

    /** Unary negation (saturates for the most negative value). */
    constexpr Fixed operator-() const { return fromRaw64(-int64_t(raw_)); }

    constexpr bool operator==(const Fixed &other) const = default;

    constexpr bool operator<(Fixed other) const { return raw_ < other.raw_; }
    constexpr bool operator>(Fixed other) const { return raw_ > other.raw_; }
    constexpr bool operator<=(Fixed other) const { return raw_ <= other.raw_; }
    constexpr bool operator>=(Fixed other) const { return raw_ >= other.raw_; }

  private:
    int16_t raw_;
};

/**
 * Wide MAC accumulator.
 *
 * Products of two Q1.7.8 values are Q2.14.16 (32 significant bits);
 * they are accumulated at 64 bits so a full-length dot product over
 * any realistic layer never overflows. The result saturates to Q1.7.8
 * only when extracted.
 */
class Accum
{
  public:
    constexpr Accum() : raw_(0) {}

    /** Add the product of two fixed-point operands. */
    constexpr void
    mac(Fixed state, Fixed weight)
    {
        raw_ += static_cast<int64_t>(state.raw()) * weight.raw();
    }

    /** Add another accumulator (used when folding partial sums). */
    constexpr void add(const Accum &other) { raw_ += other.raw_; }

    /** Reset to zero. */
    constexpr void clear() { raw_ = 0; }

    /** Raw accumulated value in Q-format with 2*fracBits fraction. */
    constexpr int64_t raw() const { return raw_; }

    /** Saturate back down to a Q1.7.8 value. */
    constexpr Fixed
    toFixed() const
    {
        return Fixed::fromRaw64(raw_ >> Fixed::fracBits);
    }

    /** The accumulated value as a double. */
    constexpr double
    toDouble() const
    {
        return static_cast<double>(raw_) /
            (static_cast<double>(Fixed::scale) * Fixed::scale);
    }

    constexpr bool operator==(const Accum &other) const = default;

  private:
    int64_t raw_;
};

/** Stream a Fixed as its double value. */
inline std::ostream &
operator<<(std::ostream &os, Fixed f)
{
    return os << f.toDouble();
}

} // namespace neurocube

#endif // NEUROCUBE_COMMON_FIXED_POINT_HH
