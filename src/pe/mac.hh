/**
 * @file
 * One multiply-accumulate unit (paper Section III-B1).
 *
 * A MAC multiplies a 16-bit Q1.7.8 neuron state by a 16-bit synaptic
 * weight and adds the product into its accumulator; the accumulator
 * feeds back as an input on the next cycle (Fig. 5b). MACs run at
 * f_MAC = f_PE / n_MAC; the PE accounts for that timing collectively,
 * so this class only models the arithmetic state of one unit.
 */

#ifndef NEUROCUBE_PE_MAC_HH
#define NEUROCUBE_PE_MAC_HH

#include "common/fixed_point.hh"

namespace neurocube
{

/** Arithmetic state of a single MAC unit. */
class MacUnit
{
  public:
    /** Accumulate state * weight into the running sum. */
    void
    multiplyAccumulate(Fixed state, Fixed weight)
    {
        acc_.mac(state, weight);
        ++ops_;
    }

    /** The running sum saturated back to Q1.7.8. */
    Fixed result() const { return acc_.toFixed(); }

    /** The exact wide accumulator (tests). */
    const Accum &accumulator() const { return acc_; }

    /** Reset for the next output neuron. */
    void
    clear()
    {
        acc_.clear();
        ops_ = 0;
    }

    /** Multiply-accumulate operations performed since clear(). */
    uint64_t opsSinceClear() const { return ops_; }

  private:
    Accum acc_;
    uint64_t ops_ = 0;
};

} // namespace neurocube

#endif // NEUROCUBE_PE_MAC_HH
