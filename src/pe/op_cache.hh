/**
 * @file
 * Sub-banked SRAM cache buffering out-of-order operand packets
 * (paper Section V-B, Fig. 11).
 *
 * Packets whose OP-ID is ahead of the PE's OP-counter are parked in
 * one of 16 sub-banks selected by OP-ID mod 16; each sub-bank holds up
 * to 64 entries (2.5 KB total: 20-bit words, 16 MACs, 4-deep
 * buffering). When the OP-counter advances, the PE performs a full
 * search of the corresponding sub-bank, which costs between 16 clock
 * cycles (one per MAC) and 64 (a full sub-bank scan).
 */

#ifndef NEUROCUBE_PE_OP_CACHE_HH
#define NEUROCUBE_PE_OP_CACHE_HH

#include <cstdint>
#include <vector>

#include "common/stats.hh"
#include "noc/packet.hh"
#include "trace/trace.hh"

namespace neurocube
{

/** The PE's operand reorder cache. */
class OpCache
{
  public:
    /** Structural parameters. */
    struct Config
    {
        /** Number of sub-banks (paper: 16). */
        unsigned numSubBanks = 16;
        /** Entries per sub-bank (paper: 64). */
        unsigned entriesPerSubBank = 64;
    };

    /**
     * @param config structural parameters
     * @param parent stat group parent
     * @param trace_id owning PE index used for trace events
     */
    OpCache(const Config &config, StatGroup *parent,
            uint16_t trace_id = 0)
        : config_(config), traceId_(trace_id),
          banks_(config.numSubBanks),
          statGroup_(parent, "cache"),
          statInserts_(&statGroup_, "inserts", "packets buffered"),
          statOverflows_(&statGroup_, "overflows",
                         "entries spilled beyond sub-bank capacity"),
          statPeakEntries_(&statGroup_, "peakEntries",
                           "peak total buffered entries")
    {
    }

    /** Sub-bank a given OP-ID maps to. */
    unsigned
    subBankOf(OpId op_id) const
    {
        return op_id % config_.numSubBanks;
    }

    /**
     * Buffer a packet.
     *
     * Inserts never fail: when the target sub-bank exceeds its
     * 64-entry capacity the entry spills, which is counted in the
     * overflow statistic. This keeps multi-vault operand streams
     * deadlock-free (a stalled sub-bank would otherwise block the
     * delivery of the very operand the OP-counter is waiting for);
     * the search-cost model already saturates at the sub-bank
     * capacity, so timing stays faithful. Paper-mode (duplicated)
     * configurations never overflow — the tests assert it.
     *
     * @param group neuron-group index of the packet
     * @param packet the operand
     */
    void
    insert(uint32_t group, const Packet &packet)
    {
        SubBank &bank = banks_[subBankOf(packet.opId)];
        if (bank.occupancy >= config_.entriesPerSubBank) {
            statOverflows_ += 1;
            NC_TRACE(TraceComponent::Pe, traceId_,
                     TraceEventType::CacheOverflow, packet.opId,
                     bank.occupancy);
        }
        bank.insert(key(group, packet.opId), packet);
        ++totalEntries_;
        if (totalEntries_ > statPeakEntries_.count())
            statPeakEntries_.set(double(totalEntries_));
        statInserts_ += 1;
        NC_TRACE(TraceComponent::Pe, traceId_,
                 TraceEventType::CacheInsert, packet.opId,
                 totalEntries_);
    }

    /** Entries inserted beyond the hardware sub-bank capacity. */
    uint64_t overflows() const { return statOverflows_.count(); }

    /**
     * Full search of the sub-bank for (group, opId): matching entries
     * are removed and appended to @p out.
     *
     * @param group current neuron group
     * @param op_id current OP-counter value
     * @param out receives the extracted packets
     * @return entries scanned (the paper's 16..64-cycle search cost
     *         derives from this, clamped below by the MAC count)
     */
    unsigned
    extract(uint32_t group, OpId op_id, std::vector<Packet> &out)
    {
        SubBank &bank = banks_[subBankOf(op_id)];
        unsigned scanned = bank.occupancy;
        totalEntries_ -= bank.extract(key(group, op_id), out);
        return scanned;
    }

    /** Entries currently parked in the sub-bank serving op_id. */
    unsigned
    subBankOccupancy(OpId op_id) const
    {
        return banks_[subBankOf(op_id)].occupancy;
    }

    /** Total entries across all sub-banks. */
    unsigned totalEntries() const { return totalEntries_; }

    /** True when nothing is buffered. */
    bool empty() const { return totalEntries_ == 0; }

    /** Drop all contents (between passes). */
    void
    clear()
    {
        for (auto &bank : banks_)
            bank.clear();
        totalEntries_ = 0;
    }

    /** Structural parameters. */
    const Config &config() const { return config_; }

  private:
    /** Sequencing key of one buffered operation. */
    static uint64_t
    key(uint32_t group, OpId op_id)
    {
        return (uint64_t(group) << 32) | op_id;
    }

    /**
     * One sub-bank: an open-addressing key index over pooled
     * per-key packet buckets. Packets for the same (group, opId)
     * append to one contiguous bucket, so extraction order matches
     * insertion order exactly and the full-bucket copy on
     * extraction is a linear scan. Emptied buckets return to a free
     * list with their capacity intact, so steady-state inserts and
     * extractions never allocate — the per-key hash-node and vector
     * churn this replaces dominated the MAC-bound profile.
     */
    struct SubBank
    {
        /** One key cell: bucket < 0 marks the cell empty. */
        struct Cell
        {
            uint64_t key;
            int32_t bucket;
        };

        std::vector<Cell> cells_;
        std::vector<std::vector<Packet>> buckets_;
        std::vector<int32_t> freeBuckets_;
        size_t cellCount_ = 0;
        unsigned occupancy = 0;

        /** splitmix64 finalizer: cheap and well-mixed. */
        static size_t
        hashKey(uint64_t k)
        {
            k ^= k >> 33;
            k *= 0xff51afd7ed558ccdULL;
            k ^= k >> 33;
            k *= 0xc4ceb9fe1a85ec53ULL;
            k ^= k >> 33;
            return size_t(k);
        }

        void
        grow()
        {
            std::vector<Cell> old = std::move(cells_);
            size_t cap = old.empty() ? 32 : old.size() * 2;
            cells_.assign(cap, Cell{0, -1});
            for (const Cell &c : old) {
                if (c.bucket < 0)
                    continue;
                size_t mask = cells_.size() - 1;
                size_t i = hashKey(c.key) & mask;
                while (cells_[i].bucket >= 0)
                    i = (i + 1) & mask;
                cells_[i] = c;
            }
        }

        /** Find the cell for @p k, or nullptr. */
        Cell *
        find(uint64_t k)
        {
            if (cellCount_ == 0)
                return nullptr;
            size_t mask = cells_.size() - 1;
            size_t i = hashKey(k) & mask;
            while (cells_[i].bucket >= 0) {
                if (cells_[i].key == k)
                    return &cells_[i];
                i = (i + 1) & mask;
            }
            return nullptr;
        }

        void
        insert(uint64_t k, const Packet &packet)
        {
            if (cells_.empty() || cellCount_ * 2 >= cells_.size())
                grow();
            size_t mask = cells_.size() - 1;
            size_t i = hashKey(k) & mask;
            while (cells_[i].bucket >= 0 && cells_[i].key != k)
                i = (i + 1) & mask;
            Cell &c = cells_[i];
            if (c.bucket < 0) {
                if (!freeBuckets_.empty()) {
                    c.bucket = freeBuckets_.back();
                    freeBuckets_.pop_back();
                } else {
                    c.bucket = int32_t(buckets_.size());
                    buckets_.emplace_back();
                }
                c.key = k;
                ++cellCount_;
            }
            buckets_[c.bucket].push_back(packet);
            ++occupancy;
        }

        /**
         * Remove the bucket for @p k, appending its packets to
         * @p out in insertion order.
         *
         * @return number of packets extracted
         */
        unsigned
        extract(uint64_t k, std::vector<Packet> &out)
        {
            Cell *c = find(k);
            if (c == nullptr)
                return 0;
            std::vector<Packet> &bucket = buckets_[c->bucket];
            out.insert(out.end(), bucket.begin(), bucket.end());
            unsigned n = unsigned(bucket.size());
            bucket.clear();
            freeBuckets_.push_back(c->bucket);
            occupancy -= n;
            erase(size_t(c - cells_.data()));
            return n;
        }

        /** Backward-shift deletion keeps probe chains intact. */
        void
        erase(size_t i)
        {
            size_t mask = cells_.size() - 1;
            size_t j = i;
            while (true) {
                j = (j + 1) & mask;
                if (cells_[j].bucket < 0)
                    break;
                size_t ideal = hashKey(cells_[j].key) & mask;
                bool movable = (j > i) ? (ideal <= i || ideal > j)
                                       : (ideal <= i && ideal > j);
                if (movable) {
                    cells_[i] = cells_[j];
                    i = j;
                }
            }
            cells_[i].bucket = -1;
            --cellCount_;
        }

        void
        clear()
        {
            if (cellCount_ != 0)
                cells_.assign(cells_.size(), Cell{0, -1});
            cellCount_ = 0;
            freeBuckets_.clear();
            for (size_t b = 0; b < buckets_.size(); ++b) {
                buckets_[b].clear();
                freeBuckets_.push_back(int32_t(b));
            }
            occupancy = 0;
        }
    };

    Config config_;
    /** Owning PE index published with trace events. */
    uint16_t traceId_;
    std::vector<SubBank> banks_;
    unsigned totalEntries_ = 0;

    StatGroup statGroup_;
    Stat statInserts_;
    Stat statOverflows_;
    Stat statPeakEntries_;
};

} // namespace neurocube

#endif // NEUROCUBE_PE_OP_CACHE_HH
