/**
 * @file
 * Sub-banked SRAM cache buffering out-of-order operand packets
 * (paper Section V-B, Fig. 11).
 *
 * Packets whose OP-ID is ahead of the PE's OP-counter are parked in
 * one of 16 sub-banks selected by OP-ID mod 16; each sub-bank holds up
 * to 64 entries (2.5 KB total: 20-bit words, 16 MACs, 4-deep
 * buffering). When the OP-counter advances, the PE performs a full
 * search of the corresponding sub-bank, which costs between 16 clock
 * cycles (one per MAC) and 64 (a full sub-bank scan).
 */

#ifndef NEUROCUBE_PE_OP_CACHE_HH
#define NEUROCUBE_PE_OP_CACHE_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/stats.hh"
#include "noc/packet.hh"
#include "trace/trace.hh"

namespace neurocube
{

/** The PE's operand reorder cache. */
class OpCache
{
  public:
    /** Structural parameters. */
    struct Config
    {
        /** Number of sub-banks (paper: 16). */
        unsigned numSubBanks = 16;
        /** Entries per sub-bank (paper: 64). */
        unsigned entriesPerSubBank = 64;
    };

    /**
     * @param config structural parameters
     * @param parent stat group parent
     * @param trace_id owning PE index used for trace events
     */
    OpCache(const Config &config, StatGroup *parent,
            uint16_t trace_id = 0)
        : config_(config), traceId_(trace_id),
          banks_(config.numSubBanks),
          statGroup_(parent, "cache"),
          statInserts_(&statGroup_, "inserts", "packets buffered"),
          statOverflows_(&statGroup_, "overflows",
                         "entries spilled beyond sub-bank capacity"),
          statPeakEntries_(&statGroup_, "peakEntries",
                           "peak total buffered entries")
    {
    }

    /** Sub-bank a given OP-ID maps to. */
    unsigned
    subBankOf(OpId op_id) const
    {
        return op_id % config_.numSubBanks;
    }

    /**
     * Buffer a packet.
     *
     * Inserts never fail: when the target sub-bank exceeds its
     * 64-entry capacity the entry spills, which is counted in the
     * overflow statistic. This keeps multi-vault operand streams
     * deadlock-free (a stalled sub-bank would otherwise block the
     * delivery of the very operand the OP-counter is waiting for);
     * the search-cost model already saturates at the sub-bank
     * capacity, so timing stays faithful. Paper-mode (duplicated)
     * configurations never overflow — the tests assert it.
     *
     * @param group neuron-group index of the packet
     * @param packet the operand
     */
    void
    insert(uint32_t group, const Packet &packet)
    {
        auto &bank = banks_[subBankOf(packet.opId)];
        if (bank.occupancy >= config_.entriesPerSubBank) {
            statOverflows_ += 1;
            NC_TRACE(TraceComponent::Pe, traceId_,
                     TraceEventType::CacheOverflow, packet.opId,
                     bank.occupancy);
        }
        bank.entries[key(group, packet.opId)].push_back(packet);
        ++bank.occupancy;
        ++totalEntries_;
        if (totalEntries_ > statPeakEntries_.count())
            statPeakEntries_.set(double(totalEntries_));
        statInserts_ += 1;
        NC_TRACE(TraceComponent::Pe, traceId_,
                 TraceEventType::CacheInsert, packet.opId,
                 totalEntries_);
    }

    /** Entries inserted beyond the hardware sub-bank capacity. */
    uint64_t overflows() const { return statOverflows_.count(); }

    /**
     * Full search of the sub-bank for (group, opId): matching entries
     * are removed and appended to @p out.
     *
     * @param group current neuron group
     * @param op_id current OP-counter value
     * @param out receives the extracted packets
     * @return entries scanned (the paper's 16..64-cycle search cost
     *         derives from this, clamped below by the MAC count)
     */
    unsigned
    extract(uint32_t group, OpId op_id, std::vector<Packet> &out)
    {
        auto &bank = banks_[subBankOf(op_id)];
        unsigned scanned = unsigned(bank.occupancy);
        auto it = bank.entries.find(key(group, op_id));
        if (it != bank.entries.end()) {
            for (const Packet &p : it->second)
                out.push_back(p);
            bank.occupancy -= unsigned(it->second.size());
            totalEntries_ -= unsigned(it->second.size());
            bank.entries.erase(it);
        }
        return scanned;
    }

    /** Entries currently parked in the sub-bank serving op_id. */
    unsigned
    subBankOccupancy(OpId op_id) const
    {
        return banks_[subBankOf(op_id)].occupancy;
    }

    /** Total entries across all sub-banks. */
    unsigned totalEntries() const { return totalEntries_; }

    /** True when nothing is buffered. */
    bool empty() const { return totalEntries_ == 0; }

    /** Drop all contents (between passes). */
    void
    clear()
    {
        for (auto &bank : banks_) {
            bank.entries.clear();
            bank.occupancy = 0;
        }
        totalEntries_ = 0;
    }

    /** Structural parameters. */
    const Config &config() const { return config_; }

  private:
    /** Sequencing key of one buffered operation. */
    static uint64_t
    key(uint32_t group, OpId op_id)
    {
        return (uint64_t(group) << 32) | op_id;
    }

    /** One sub-bank, indexed by (group, opId) for O(1) search. */
    struct SubBank
    {
        std::unordered_map<uint64_t, std::vector<Packet>> entries;
        unsigned occupancy = 0;
    };

    Config config_;
    /** Owning PE index published with trace events. */
    uint16_t traceId_;
    std::vector<SubBank> banks_;
    unsigned totalEntries_ = 0;

    StatGroup statGroup_;
    Stat statInserts_;
    Stat statOverflows_;
    Stat statPeakEntries_;
};

} // namespace neurocube

#endif // NEUROCUBE_PE_OP_CACHE_HH
