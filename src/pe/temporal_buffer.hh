/**
 * @file
 * PE temporal buffer (paper Fig. 11).
 *
 * The temporal buffer stages the operands of the operation currently
 * pointed at by the PE's OP-counter: one {state, weight} pair per MAC
 * unit. When every active MAC's pair is present the buffer is flushed
 * into the MACs and the OP-counter advances.
 */

#ifndef NEUROCUBE_PE_TEMPORAL_BUFFER_HH
#define NEUROCUBE_PE_TEMPORAL_BUFFER_HH

#include <cstdint>
#include <vector>

#include "common/fixed_point.hh"
#include "common/logging.hh"
#include "common/types.hh"

namespace neurocube
{

/** Operand staging for one MAC operation across all MAC units. */
class TemporalBuffer
{
  public:
    /** One MAC's slot. */
    struct Slot
    {
        bool hasState = false;
        bool hasWeight = false;
        Fixed state{};
        Fixed weight{};
        /** Global output-neuron index this operand belongs to. */
        uint32_t neuron = 0;
        /** Memory channel storing the output neuron. */
        VaultId homeVault = 0;

        bool complete() const { return hasState && hasWeight; }
    };

    /** @param num_macs number of MAC units (slots). */
    explicit TemporalBuffer(unsigned num_macs) : slots_(num_macs) {}

    /** Deposit a state operand for a MAC slot. */
    void
    putState(MacId mac, Fixed value, uint32_t neuron, VaultId home)
    {
        Slot &slot = at(mac);
        nc_assert(!slot.hasState,
                  "duplicate state operand for MAC %u", unsigned(mac));
        slot.hasState = true;
        slot.state = value;
        slot.neuron = neuron;
        slot.homeVault = home;
    }

    /** Deposit a weight operand for a MAC slot. */
    void
    putWeight(MacId mac, Fixed value, uint32_t neuron, VaultId home)
    {
        Slot &slot = at(mac);
        nc_assert(!slot.hasWeight,
                  "duplicate weight operand for MAC %u", unsigned(mac));
        slot.hasWeight = true;
        slot.weight = value;
        slot.neuron = neuron;
        slot.homeVault = home;
    }

    /** True when slots [0, active) all hold a complete pair. */
    bool
    complete(unsigned active) const
    {
        for (unsigned m = 0; m < active; ++m) {
            if (!slots_[m].complete())
                return false;
        }
        return true;
    }

    /** Read one slot. */
    const Slot &slot(MacId mac) const { return slots_[mac]; }

    /** Clear all slots for the next operation. */
    void
    flush()
    {
        for (Slot &slot : slots_)
            slot = Slot{};
    }

    /** Number of slots. */
    unsigned size() const { return unsigned(slots_.size()); }

  private:
    Slot &
    at(MacId mac)
    {
        nc_assert(mac < slots_.size(), "MAC id %u out of range",
                  unsigned(mac));
        return slots_[mac];
    }

    std::vector<Slot> slots_;
};

} // namespace neurocube

#endif // NEUROCUBE_PE_TEMPORAL_BUFFER_HH
