#include "pe/pe.hh"

#include <algorithm>

#include "common/logging.hh"
#include "trace/energy.hh"
#include "trace/metrics.hh"
#include "trace/spatial.hh"

namespace neurocube
{

Pe::Pe(PeId id, const PeParams &params, StatGroup *parent)
    : id_(id), params_(params),
      statGroup_(parent, "pe" + std::to_string(id)),
      temporal_(params.numMacs),
      cache_(params.cache, &statGroup_, id),
      macs_(params.numMacs),
      statMacOps_(&statGroup_, "macOps",
                  "multiply-accumulate operations executed"),
      statFlushes_(&statGroup_, "flushes", "temporal-buffer flushes"),
      statGroupsDone_(&statGroup_, "groups", "neuron groups completed"),
      statWriteBacks_(&statGroup_, "writeBacks",
                      "write-back packets injected"),
      statSearchStallTicks_(&statGroup_, "searchStallTicks",
                            "extra ticks spent on sub-bank searches"),
      histCacheOccupancy_(&statGroup_, "cacheOccupancy",
                          "operand-cache entries buffered per tick")
{
}

void
Pe::configurePass(const PePassConfig &config)
{
    pass_ = config;
    group_ = 0;
    opCounter_ = 0;
    nextFlushAt_ = 0;
    macBusyUntil_ = 0;
    temporal_.flush();
    cache_.clear();
    for (MacUnit &mac : macs_)
        mac.clear();
    groupNeurons_.assign(params_.numMacs, 0);
    groupHomes_.assign(params_.numMacs, 0);
    outbox_.clear();
    passComplete_ = !config.enabled || config.numNeurons == 0;
    // Group geometry is fixed for the pass; cache it (activeMacs sits
    // on the per-tick path and the divisions are hot).
    uint32_t planes = std::max(1u, config.planes);
    perPlane_ = config.numNeurons / planes;
    groupsPerPlane_ = (perPlane_ + params_.numMacs - 1)
                    / params_.numMacs;
    totalGroups_ = planes * groupsPerPlane_;
    if (config.enabled) {
        nc_assert(config.connections > 0,
                  "pass with zero connections on PE %u", unsigned(id_));
        nc_assert(config.numNeurons % std::max(1u, config.planes)
                      == 0,
                  "neurons (%u) not divisible by planes (%u)",
                  config.numNeurons, config.planes);
        nc_assert(config.localWeights.empty()
                      || config.localWeights.size()
                             >= config.connections,
                  "weight memory smaller than connection count");
    }
}

unsigned
Pe::activeMacs(uint32_t group) const
{
    uint32_t local = group % groupsPerPlane_;
    uint64_t remaining =
        uint64_t(perPlane_) - uint64_t(local) * params_.numMacs;
    return unsigned(std::min<uint64_t>(params_.numMacs, remaining));
}

uint32_t
Pe::numGroups() const
{
    return totalGroups_;
}

void
Pe::stageOperand(const Packet &packet)
{
    if (packet.kind == PacketKind::State) {
        temporal_.putState(packet.mac, packet.data, packet.neuron,
                           packet.homeVault);
        NC_ENERGY_EVENT(EnergyEventKind::BufferAccess, id_, 1);
        if (!pass_.localWeights.empty()) {
            // Weight supplied by the PE weight memory, shared across
            // neurons and indexed by the OP-ID (Section III-B2);
            // multi-plane kernels are indexed per output plane.
            uint32_t planes = std::max(1u, pass_.planes);
            size_t idx = opCounter_;
            if (planes > 1
                && pass_.localWeights.size()
                       >= size_t(pass_.connections) * planes) {
                idx = size_t(group_ / groupsPerPlane_)
                        * pass_.connections
                    + opCounter_;
            }
            temporal_.putWeight(packet.mac, pass_.localWeights[idx],
                                packet.neuron, packet.homeVault);
            NC_ENERGY_EVENT(EnergyEventKind::WeightRegRead, id_, 1);
            NC_ENERGY_EVENT(EnergyEventKind::BufferAccess, id_, 1);
        }
    } else {
        nc_assert(packet.kind == PacketKind::Weight,
                  "unexpected packet kind at PE %u", unsigned(id_));
        temporal_.putWeight(packet.mac, packet.data, packet.neuron,
                            packet.homeVault);
        NC_ENERGY_EVENT(EnergyEventKind::BufferAccess, id_, 1);
    }
}

void
Pe::drainCache(Tick now)
{
    if (cache_.subBankOccupancy(opCounter_) == 0)
        return;
    std::vector<Packet> matches;
    unsigned scanned = cache_.extract(group_, opCounter_, matches);
    NC_ENERGY_EVENT(EnergyEventKind::CacheRead, id_, scanned);
    if (matches.empty()) {
        NC_TRACE(TraceComponent::Pe, id_, TraceEventType::CacheMiss,
                 opCounter_, scanned);
    } else {
        NC_TRACE(TraceComponent::Pe, id_, TraceEventType::CacheHit,
                 opCounter_, matches.size());
    }
    for (const Packet &packet : matches)
        stageOperand(packet);

    // The full sub-bank search scans up to the sub-bank's 64 slots
    // at searchEntriesPerCycle (entries spilled beyond the hardware
    // capacity live in the idealized overflow and are indexed for
    // free — see OpCache::insert); the scan overlaps with the MAC
    // busy time, so only the excess beyond numMacs can delay the
    // next flush.
    unsigned rate = std::max(1u, params_.searchEntriesPerCycle);
    unsigned hw_entries =
        std::min(scanned, cache_.config().entriesPerSubBank);
    unsigned cost = std::max(params_.numMacs,
                             (hw_entries + rate - 1) / rate);
    Tick ready = now + cost;
    if (ready > nextFlushAt_) {
        statSearchStallTicks_ += (ready - nextFlushAt_);
        NC_TRACE(TraceComponent::Pe, id_,
                 TraceEventType::SearchStall, opCounter_,
                 ready - nextFlushAt_);
        nextFlushAt_ = ready;
    }
}

void
Pe::flush(Tick now)
{
    unsigned active = activeMacs(group_);
    for (unsigned m = 0; m < active; ++m) {
        const TemporalBuffer::Slot &slot = temporal_.slot(m);
        macs_[m].multiplyAccumulate(slot.state, slot.weight);
        groupNeurons_[m] = slot.neuron;
        groupHomes_[m] = slot.homeVault;
    }
    statMacOps_ += active;
    statFlushes_ += 1;
    NC_SPATIAL_EVENT(SpatialCounter::PeMac, id_, active);
    NC_ENERGY_EVENT(EnergyEventKind::MacOp, id_, active);
    NC_TRACE(TraceComponent::Pe, id_, TraceEventType::MacBusy,
             active, params_.numMacs);
    temporal_.flush();

    // MACs run at f_PE / numMacs: they are busy for numMacs ticks.
    nextFlushAt_ = now + params_.numMacs;
    macBusyUntil_ = nextFlushAt_;

    ++opCounter_;
    if (opCounter_ >= pass_.connections) {
        completeGroup();
        opCounter_ = 0;
        ++group_;
        if (group_ >= numGroups()) {
            passComplete_ = true;
            return;
        }
    }
    drainCache(now);
}

void
Pe::completeGroup()
{
    unsigned active = activeMacs(group_);
    for (unsigned m = 0; m < active; ++m) {
        Packet wb;
        wb.kind = PacketKind::WriteBack;
        wb.src = VaultId(id_);
        wb.dst = groupHomes_[m];
        wb.dstIsMem = true;
        wb.mac = MacId(m);
        wb.opId = 0;
        wb.group = group_;
        wb.neuron = groupNeurons_[m];
        wb.data = macs_[m].result();
        outbox_.push_back(wb);
        macs_[m].clear();
    }
    statGroupsDone_ += 1;
}

void
Pe::tick(Tick now, NocFabric &fabric)
{
    if (!pass_.enabled) {
        NC_METRIC_CYCLE(TraceComponent::Pe, id_, StallClass::Idle);
        return;
    }
    histCacheOccupancy_.sample(cache_.totalEntries());

    // 1. Accept operand packets from the NoC delivery queue.
    auto &delivery = fabric.peDelivery(id_);
    unsigned accepted = 0;
    while (!delivery.empty() && accepted < params_.acceptPerTick
           && !passComplete_) {
        const Packet &packet = delivery.front();
        nc_assert(!(packet.group < group_
                    || (packet.group == group_
                        && packet.opId < opCounter_)),
                  "late packet at PE %u: group %u op %u vs %u/%u",
                  unsigned(id_), packet.group, packet.opId, group_,
                  opCounter_);
        if (packet.group == group_ && packet.opId == opCounter_) {
            stageOperand(packet);
        } else {
            cache_.insert(packet.group, packet);
            NC_ENERGY_EVENT(EnergyEventKind::CacheWrite, id_, 1);
        }
        delivery.pop_front();
        ++accepted;
    }

    // 2. Flush when the current operation's operands are staged.
    if (!passComplete_ && now >= nextFlushAt_
        && outbox_.size() + params_.numMacs <= params_.outboxLimit
        && temporal_.complete(activeMacs(group_))) {
        flush(now);
    }

    // 3. Inject pending write-backs.
    unsigned injected = 0;
    while (!outbox_.empty() && injected < params_.injectPerTick
           && fabric.peInjectSpace(id_) > 0) {
        fabric.injectFromPe(id_, outbox_.front(), now);
        outbox_.pop_front();
        ++injected;
        statWriteBacks_ += 1;
        NC_TRACE(TraceComponent::Pe, id_,
                 TraceEventType::WriteBackOut, 0, outbox_.size());
    }

    // Attribute the cycle, most-specific cause first. A flush this
    // tick lands in the MAC-busy window, so it reads as busy.
    StallClass cls;
    if (now < macBusyUntil_) {
        cls = StallClass::Busy;
    } else if (!passComplete_ && now < nextFlushAt_) {
        // The sub-bank search ran past the MAC execution window.
        cls = StallClass::StallCache;
    } else if (passComplete_) {
        cls = injected > 0       ? StallClass::Busy
              : outbox_.empty()  ? StallClass::Idle
                                 : StallClass::StallNocCredit;
    } else if (outbox_.size() + params_.numMacs
               > params_.outboxLimit) {
        // Neuron-group flushes gated on write-back backpressure.
        cls = StallClass::StallNocCredit;
    } else {
        // Ready to flush but operands have not arrived yet.
        cls = StallClass::StallInject;
    }
    NC_METRIC_CYCLE(TraceComponent::Pe, id_, cls);
}

Tick
Pe::nextEventAfter(Tick now, NocFabric &fabric)
{
    if (!pass_.enabled)
        return tickNever;
    if (!outbox_.empty())
        return now + 1; // injections to try (or a blocked-tick stat)
    if (!fabric.peDelivery(id_).empty())
        return now + 1; // operands to accept
    if (passComplete_)
        return tickNever; // done; nothing left this pass
    if (temporal_.complete(activeMacs(group_))) {
        // A flush is staged and (outbox empty) cannot be capacity-
        // gated: only the MAC/search timer holds it back.
        return std::max(now + 1, nextFlushAt_);
    }
    return tickNever; // waiting on operand packets (eject hook)
}

void
Pe::skipTicks(Tick from, Tick to)
{
    nc_assert(from < to, "empty PE skip window");
    if (!pass_.enabled) {
        NC_METRIC_CYCLES(TraceComponent::Pe, id_, StallClass::Idle,
                         to - from);
        return;
    }
    histCacheOccupancy_.sample(cache_.totalEntries(), to - from);
    Tick t = from;
    if (macBusyUntil_ > t) {
        Tick end = std::min(to, macBusyUntil_);
        NC_METRIC_CYCLES(TraceComponent::Pe, id_, StallClass::Busy,
                         end - t);
        t = end;
    }
    if (t < to && !passComplete_ && nextFlushAt_ > t) {
        Tick end = std::min(to, nextFlushAt_);
        NC_METRIC_CYCLES(TraceComponent::Pe, id_,
                         StallClass::StallCache, end - t);
        t = end;
    }
    if (t < to) {
        NC_METRIC_CYCLES(TraceComponent::Pe, id_,
                         passComplete_ ? StallClass::Idle
                                       : StallClass::StallInject,
                         to - t);
    }
}

bool
Pe::done() const
{
    return passComplete_ && outbox_.empty();
}

bool
Pe::idle() const
{
    return outbox_.empty() && cache_.empty();
}

} // namespace neurocube
