/**
 * @file
 * Processing element (paper Section III-B, Fig. 5b, Fig. 11).
 *
 * A PE owns n_MAC MAC units, a temporal buffer, a sub-banked operand
 * cache and a small shared-weight memory. It is fully data driven:
 * operand packets arrive from the NoC, the OP-counter sequences the
 * inputs of the 16 output neurons being updated in parallel, and when
 * every active MAC's {state, weight} pair for the current operation
 * is staged, the temporal buffer is flushed into the MACs. After the
 * last operation of a neuron group, each MAC's accumulated state is
 * encapsulated into a write-back packet and injected into the NoC.
 */

#ifndef NEUROCUBE_PE_PE_HH
#define NEUROCUBE_PE_PE_HH

#include <cstdint>
#include <vector>

#include "common/fixed_point.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "noc/fabric.hh"
#include "noc/packet.hh"
#include "pe/mac.hh"
#include "pe/op_cache.hh"
#include "pe/temporal_buffer.hh"

namespace neurocube
{

/** Per-pass configuration the global controller writes into a PE. */
struct PePassConfig
{
    /** PE participates in this pass. */
    bool enabled = false;
    /** Output neurons this PE computes in this pass (all planes). */
    uint32_t numNeurons = 0;
    /** Operations (connected inputs) per output neuron. */
    uint32_t connections = 0;
    /**
     * Output planes computed by this pass (the layer's map loop);
     * group numbering restarts per plane, so the last group of every
     * plane may be partial. numNeurons must equal planes *
     * neuronsPerPlane.
     */
    uint32_t planes = 1;
    /**
     * Weights resident in the PE weight memory, indexed by OP-ID
     * (shared across neurons). When non-empty the PNG streams only
     * states and the PE supplies weights locally — the optimization
     * of Section III-B2 for small kernels. Empty = weights arrive as
     * packets (the default the paper's throughput analysis uses).
     */
    std::vector<Fixed> localWeights;
};

/** Structural parameters of a PE. */
struct PeParams
{
    /** MAC units per PE (paper: 16). */
    unsigned numMacs = 16;
    /** Operand packets accepted from the NoC per tick. */
    unsigned acceptPerTick = 4;
    /** Write-back packets injected per tick (PE port width). */
    unsigned injectPerTick = 2;
    /** Operand cache geometry. */
    OpCache::Config cache;
    /** Pending write-backs before neuron-group flushes stall. */
    unsigned outboxLimit = 32;
    /**
     * Sub-bank entries examined per PE cycle during the OP-advance
     * search. The paper quotes a 16..64-cycle full search for a
     * 64-entry sub-bank; the default of 4 entries/cycle reads that
     * as a banked parallel scan whose 16-cycle worst case is exactly
     * hidden by the MAC execution time. Set to 1 for the literal
     * serial-scan interpretation (unstable under operand reordering
     * — see DESIGN.md).
     */
    unsigned searchEntriesPerCycle = 4;
};

/** One data-driven processing element. */
class Pe
{
  public:
    /**
     * @param id node index (equals the home vault index)
     * @param params structural parameters
     * @param parent stat group parent
     */
    Pe(PeId id, const PeParams &params, StatGroup *parent);

    /** Load a pass configuration; resets all sequencing state. */
    void configurePass(const PePassConfig &config);

    /**
     * Advance one reference-clock tick.
     *
     * @param now current tick
     * @param fabric NoC used for operand delivery and write-backs
     */
    void tick(Tick now, NocFabric &fabric);

    /**
     * First tick after @p now at which tick() could act, given no
     * external input. tickNever when the PE is disabled, finished, or
     * waiting for operand packets (the fabric's eject hook signals
     * their arrival); a pending MAC/search timer reports the flush
     * tick so the scheduler can jump straight to it.
     */
    Tick nextEventAfter(Tick now, NocFabric &fabric);

    /**
     * Account ticks [from, to) in bulk, replicating what that many
     * provably-no-op tick() calls would have recorded: per-tick cache
     * occupancy samples and the legacy stall classification, which
     * over a frozen state is Busy until macBusyUntil_, then
     * StallCache until nextFlushAt_, then Idle (pass complete) or
     * StallInject (waiting on operands).
     */
    void skipTicks(Tick from, Tick to);

    /** True when the pass's write-backs have all been injected. */
    bool done() const;

    /** True when no operands or write-backs are buffered. */
    bool idle() const;

    /** Node index. */
    PeId id() const { return id_; }

    /** Current OP-counter (tests). */
    OpId opCounter() const { return opCounter_; }
    /** Current neuron-group index (tests). */
    uint32_t currentGroup() const { return group_; }

    /** Total MAC operations executed (multiply+accumulate pairs). */
    uint64_t macOps() const { return statMacOps_.count(); }

    /** Operand-cache entries spilled beyond sub-bank capacity. */
    uint64_t cacheOverflows() const { return cache_.overflows(); }

    /** Operand-cache occupancy distribution (entries, per tick). */
    const Histogram &
    cacheOccupancyHistogram() const
    {
        return histCacheOccupancy_;
    }

    /** Structural parameters. */
    const PeParams &params() const { return params_; }

  private:
    /** MACs active in a group (the last group may be partial). */
    unsigned activeMacs(uint32_t group) const;
    /** Number of neuron groups in this pass. */
    uint32_t numGroups() const;
    /** Stage one operand packet into the temporal buffer. */
    void stageOperand(const Packet &packet);
    /** Pull buffered packets for the current (group, op). */
    void drainCache(Tick now);
    /** Flush the temporal buffer into the MACs. */
    void flush(Tick now);
    /** Emit write-back packets for a completed neuron group. */
    void completeGroup();

    PeId id_;
    PeParams params_;
    PePassConfig pass_;

    StatGroup statGroup_;
    TemporalBuffer temporal_;
    OpCache cache_;
    std::vector<MacUnit> macs_;

    /** Per-MAC neuron ids of the group in flight (for write-backs). */
    std::vector<uint32_t> groupNeurons_;
    /** Per-MAC home vaults of the group in flight. */
    std::vector<VaultId> groupHomes_;

    /** Neurons per output plane (cached by configurePass). */
    uint32_t perPlane_ = 0;
    /** Neuron groups per output plane (cached by configurePass). */
    uint32_t groupsPerPlane_ = 0;
    /** Total neuron groups this pass (cached by configurePass). */
    uint32_t totalGroups_ = 0;

    uint32_t group_ = 0;
    OpId opCounter_ = 0;
    /** Earliest tick the next flush may happen (MAC/search timing). */
    Tick nextFlushAt_ = 0;
    /**
     * Tick until which the MAC array is executing the last flush.
     * Distinguishes MAC-busy cycles from sub-bank-search delays:
     * nextFlushAt_ beyond this point is search cost (stall_cache).
     */
    Tick macBusyUntil_ = 0;
    bool passComplete_ = true;

    PacketRing outbox_;

    Stat statMacOps_;
    Stat statFlushes_;
    Stat statGroupsDone_;
    Stat statWriteBacks_;
    Stat statSearchStallTicks_;
    /** Operand-cache entries buffered, sampled once per tick. */
    Histogram histCacheOccupancy_;
};

} // namespace neurocube

#endif // NEUROCUBE_PE_PE_HH
