#include "trace/chrome_exporter.hh"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "common/logging.hh"

namespace neurocube
{

namespace
{

/** Pid bases keeping component classes grouped in the Perfetto UI. */
constexpr uint32_t pidBase[] = {
    1,    // Sim
    1000, // Router
    2000, // Pe
    3000, // Png
    4000, // Vault
};

} // namespace

uint32_t
ChromeTraceExporter::trackPid(TraceComponent component,
                              uint16_t instance)
{
    return pidBase[unsigned(component)] + instance;
}

ChromeTraceExporter::ChromeTraceExporter(std::ostream &os,
                                         const TraceTopology &topology,
                                         Tick windowTicks,
                                         EnergyPrices prices)
    : os_(os), topology_(topology),
      window_(windowTicks > 0 ? windowTicks : 1), prices_(prices),
      pngPhase_(topology.numVaults)
{
    // PNG events are keyed by hosting node; fold them back onto the
    // vault-ordinal tracks (identity placement when unspecified).
    vaultOf_.assign(std::max<size_t>(topology_.numRouters,
                                     topology_.numVaults),
                    kNoVault);
    for (unsigned v = 0; v < topology_.numVaults; ++v) {
        unsigned node = v < topology_.vaultNode.size()
                            ? topology_.vaultNode[v]
                            : v;
        if (node >= vaultOf_.size())
            vaultOf_.resize(node + 1, kNoVault);
        vaultOf_[node] = uint16_t(v);
    }
    emitPrelude();
}

void
ChromeTraceExporter::emitPrelude()
{
    os_ << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
    // Batched runs prefix per-node tracks with their lane so each
    // vault group reads as its own machine in the viewer.
    auto lane = [&](unsigned node) {
        return node < topology_.laneOf.size()
                   ? "lane" + std::to_string(topology_.laneOf[node])
                         + "."
                   : std::string();
    };
    emitMeta(trackPid(TraceComponent::Sim, 0), "sim");
    emitMeta(phasesPid, "phases");
    emitMeta(requestsPid, "requests");
    for (unsigned i = 0; i < topology_.numRouters; ++i) {
        emitMeta(trackPid(TraceComponent::Router, uint16_t(i)),
                 lane(i) + "router" + std::to_string(i));
    }
    for (unsigned i = 0; i < topology_.numPes; ++i) {
        emitMeta(trackPid(TraceComponent::Pe, uint16_t(i)),
                 lane(i) + "pe" + std::to_string(i));
    }
    for (unsigned i = 0; i < topology_.numVaults; ++i) {
        unsigned node = i < topology_.vaultNode.size()
                            ? topology_.vaultNode[i]
                            : i;
        emitMeta(trackPid(TraceComponent::Png, uint16_t(i)),
                 lane(node) + "png" + std::to_string(i));
        emitMeta(trackPid(TraceComponent::Vault, uint16_t(i)),
                 lane(node) + "vault" + std::to_string(i));
    }
}

void
ChromeTraceExporter::emitComma()
{
    if (!firstEvent_)
        os_ << ",\n";
    firstEvent_ = false;
}

void
ChromeTraceExporter::emitMeta(uint32_t pid, const std::string &name)
{
    emitComma();
    os_ << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << pid
        << ",\"args\":{\"name\":\"" << name << "\"}}";
}

void
ChromeTraceExporter::emitCounter(uint32_t pid, const std::string &name,
                                 Tick ts, double value)
{
    emitComma();
    os_ << "{\"name\":\"" << name << "\",\"ph\":\"C\",\"ts\":" << ts
        << ",\"pid\":" << pid << ",\"args\":{\"value\":" << value
        << "}}";
}

void
ChromeTraceExporter::emitInstant(uint32_t pid, const char *name,
                                 Tick ts, uint64_t value)
{
    emitComma();
    os_ << "{\"name\":\"" << name << "\",\"ph\":\"i\",\"ts\":" << ts
        << ",\"pid\":" << pid << ",\"tid\":0,\"s\":\"t\""
        << ",\"args\":{\"value\":" << value << "}}";
}

void
ChromeTraceExporter::emitSlice(uint32_t pid, const char *name, Tick ts,
                               Tick dur, const std::string &args)
{
    emitComma();
    os_ << "{\"name\":\"" << name << "\",\"ph\":\"X\",\"ts\":" << ts
        << ",\"dur\":" << dur << ",\"pid\":" << pid
        << ",\"tid\":0,\"args\":{" << args << "}}";
}

void
ChromeTraceExporter::bumpCounter(uint32_t pid, const std::string &name,
                                 AggMode mode, double value)
{
    CounterAgg &agg = counters_[{pid, name}];
    agg.mode = mode;
    switch (mode) {
      case AggMode::Last:
        agg.value = value;
        break;
      case AggMode::Sum:
        agg.value += value;
        break;
      case AggMode::Mean:
        agg.value += value;
        break;
    }
    ++agg.samples;
    agg.dirty = true;
}

void
ChromeTraceExporter::flushWindow()
{
    if (sawEnergy_) {
        // Window energy over window wall-clock: pJ x 1e-12 / (ticks
        // / refclock). An estimate from the event stream — exact
        // per-layer numbers come from the EnergyRegistry.
        double watts =
            windowPj_ * 1e-12 * referenceClockHz / double(window_);
        emitCounter(trackPid(TraceComponent::Sim, 0), "power.W",
                    windowStart_, watts);
        windowPj_ = 0.0;
    }
    for (auto &[key, agg] : counters_) {
        if (!agg.dirty)
            continue;
        double value = agg.value;
        if (agg.mode == AggMode::Mean && agg.samples > 0)
            value /= double(agg.samples);
        emitCounter(key.first, key.second, windowStart_, value);
        agg.dirty = false;
        agg.samples = 0;
        if (agg.mode != AggMode::Last)
            agg.value = 0.0;
    }
}

void
ChromeTraceExporter::advanceWindow(Tick tick)
{
    if (tick < windowStart_ + window_)
        return;
    flushWindow();
    windowStart_ = tick - (tick % window_);
}

void
ChromeTraceExporter::handle(const TraceEvent &event)
{
    advanceWindow(event.tick);
    lastTick_ = std::max(lastTick_, event.tick);

    double pj = tracePjOf(event, prices_);
    if (pj > 0.0) {
        windowPj_ += pj;
        sawEnergy_ = true;
    }

    uint32_t pid = trackPid(event.component, event.instance);
    if (event.component == TraceComponent::Png) {
        nc_assert(event.instance < vaultOf_.size()
                      && vaultOf_[event.instance] != kNoVault,
                  "PNG event from non-vault node %u", event.instance);
        pid = trackPid(TraceComponent::Png, vaultOf_[event.instance]);
    }
    switch (event.type) {
      case TraceEventType::FlitEnqueue:
        bumpCounter(pid, "inQ.p" + std::to_string(event.arg),
                    AggMode::Last, double(event.value));
        break;
      case TraceEventType::FlitSwitch:
        bumpCounter(pid, "outQ.p" + std::to_string(event.arg),
                    AggMode::Last, double(event.value));
        break;
      case TraceEventType::FlitBlocked:
        bumpCounter(pid, "blocked/win", AggMode::Sum, 1.0);
        break;
      case TraceEventType::LinkFlit:
        bumpCounter(pid, "linkFlits/win", AggMode::Sum, 1.0);
        break;
      case TraceEventType::PacketEject:
        bumpCounter(pid, "ejected/win", AggMode::Sum, 1.0);
        bumpCounter(pid, "ejectLatency", AggMode::Mean,
                    double(event.value));
        break;
      case TraceEventType::MacBusy:
        emitSlice(pid, "macBurst", event.tick, event.value,
                  "\"activeMacs\":" + std::to_string(event.arg));
        break;
      case TraceEventType::CacheHit:
        bumpCounter(pid, "cacheHits/win", AggMode::Sum, 1.0);
        break;
      case TraceEventType::CacheMiss:
        bumpCounter(pid, "cacheMisses/win", AggMode::Sum, 1.0);
        break;
      case TraceEventType::CacheInsert:
        bumpCounter(pid, "opCacheEntries", AggMode::Last,
                    double(event.value));
        break;
      case TraceEventType::CacheOverflow:
        emitInstant(pid, "cacheOverflow", event.tick, event.value);
        break;
      case TraceEventType::WriteBackOut:
        bumpCounter(pid, "outbox", AggMode::Last,
                    double(event.value));
        break;
      case TraceEventType::SearchStall:
        emitInstant(pid, "searchStall", event.tick, event.value);
        break;
      case TraceEventType::PngPhase: {
        OpenPhase &open = pngPhase_[vaultOf_[event.instance]];
        if (open.open && event.tick > open.since) {
            emitSlice(pid, pngFsmPhaseName(open.phase), open.since,
                      event.tick - open.since,
                      "\"plane\":" + std::to_string(open.plane));
        }
        open.open = true;
        open.phase = PngFsmPhase(event.arg);
        open.since = event.tick;
        open.plane = event.value;
        break;
      }
      case TraceEventType::PngInjectStall:
        bumpCounter(pid, "injectStalls/win", AggMode::Sum, 1.0);
        break;
      case TraceEventType::PngIssue:
        bumpCounter(pid, "issued/win", AggMode::Sum,
                    double(event.value));
        break;
      case TraceEventType::LaneDone: {
        // One slice per (lane, pass) on the sim track: the lane's
        // active span within the shared cycle loop.
        std::string name = "lane" + std::to_string(event.instance);
        emitSlice(trackPid(TraceComponent::Sim, 0), name.c_str(),
                  event.tick - event.value, event.value,
                  "\"pass\":" + std::to_string(event.arg));
        break;
      }
      case TraceEventType::ServeQueueDepth:
        bumpCounter(trackPid(TraceComponent::Sim, 0), "serveQueue",
                    AggMode::Last, double(event.value));
        if (ServeQueueEvent(event.arg) == ServeQueueEvent::Drop) {
            bumpCounter(trackPid(TraceComponent::Sim, 0),
                        "serveDrops/win", AggMode::Sum, 1.0);
        }
        break;
      case TraceEventType::ServeRequestDone: {
        if (event.value == 0) {
            emitInstant(requestsPid, "reqDrop", event.tick,
                        event.arg);
            break;
        }
        // One span per request from arrival to completion. Requests
        // overlap while batched, so spread them over a few rows.
        emitComma();
        os_ << "{\"name\":\"req" << event.arg
            << "\",\"ph\":\"X\",\"ts\":" << (event.tick - event.value)
            << ",\"dur\":" << event.value << ",\"pid\":" << requestsPid
            << ",\"tid\":" << (event.arg % 8)
            << ",\"args\":{\"latency\":" << event.value << "}}";
        break;
      }
      case TraceEventType::ServeRequestDispatch:
        // Queue-wait slice on the request's row, nested under the
        // arrival-to-completion span ServeRequestDone will emit.
        if (event.value > 0) {
            emitComma();
            os_ << "{\"name\":\"wait\",\"ph\":\"X\",\"ts\":"
                << (event.tick - event.value)
                << ",\"dur\":" << event.value
                << ",\"pid\":" << requestsPid
                << ",\"tid\":" << (event.arg % 8)
                << ",\"args\":{\"req\":" << event.arg << "}}";
        }
        bumpCounter(trackPid(TraceComponent::Sim, 0), "serveWait",
                    AggMode::Mean, double(event.value));
        break;
      case TraceEventType::EngineSkip:
        // Bulk-skipped component-ticks, summed per window across
        // lanes: the wake-list engine's fast-forward visible as a
        // counter instead of per-cycle events.
        bumpCounter(trackPid(TraceComponent::Sim, 0),
                    "skippedTicks/win", AggMode::Sum,
                    double(event.value));
        break;
      case TraceEventType::DramQueueDepth:
        bumpCounter(pid, event.arg ? "writeQ" : "readQ",
                    AggMode::Last, double(event.value));
        break;
      case TraceEventType::DramWord:
        bumpCounter(pid, "bits/win", AggMode::Sum,
                    double(event.value));
        break;
      case TraceEventType::DramRowActivate:
        bumpCounter(pid, "rowActivates/win", AggMode::Sum, 1.0);
        break;
      case TraceEventType::DramStall:
        bumpCounter(pid, "stallTicks/win", AggMode::Sum, 1.0);
        break;
      case TraceEventType::EventTypeCount:
        nc_panic("invalid trace event type");
        break;
    }
}

void
ChromeTraceExporter::consume(const TraceEvent *events, size_t count)
{
    for (size_t i = 0; i < count; ++i)
        handle(events[i]);
}

void
ChromeTraceExporter::emitPhases(const std::vector<PhaseSegment> &segments)
{
    for (const PhaseSegment &segment : segments) {
        if (segment.endTick <= segment.startTick)
            continue;
        emitSlice(phasesPid, phaseKindName(segment.kind),
                  segment.startTick,
                  segment.endTick - segment.startTick,
                  "\"windows\":" + std::to_string(segment.windows));
    }
}

void
ChromeTraceExporter::finish()
{
    // Close PNG phase slices still open at the end of the trace.
    for (size_t v = 0; v < pngPhase_.size(); ++v) {
        OpenPhase &open = pngPhase_[v];
        if (open.open && lastTick_ > open.since) {
            emitSlice(trackPid(TraceComponent::Png, uint16_t(v)),
                      pngFsmPhaseName(open.phase), open.since,
                      lastTick_ - open.since,
                      "\"plane\":" + std::to_string(open.plane));
        }
        open.open = false;
    }
    flushWindow();
    os_ << "\n]}\n";
    os_.flush();
}

} // namespace neurocube
