#include "trace/energy.hh"

namespace neurocube
{

const char *
energyEventKindName(EnergyEventKind kind)
{
    switch (kind) {
      case EnergyEventKind::MacOp: return "mac_op";
      case EnergyEventKind::CacheRead: return "cache_read";
      case EnergyEventKind::CacheWrite: return "cache_write";
      case EnergyEventKind::BufferAccess: return "buffer_access";
      case EnergyEventKind::WeightRegRead: return "weight_reg_read";
      case EnergyEventKind::NocHop: return "noc_hop";
      case EnergyEventKind::NocLink: return "noc_link";
      case EnergyEventKind::PngOp: return "png_op";
      case EnergyEventKind::VaultXact: return "vault_xact";
      case EnergyEventKind::DramBit: return "dram_bit";
      case EnergyEventKind::KindCount: break;
    }
    return "unknown";
}

EnergySnapshot
EnergySnapshot::delta(const EnergySnapshot &before) const
{
    EnergySnapshot out;
    out.instances.resize(instances.size());
    for (size_t i = 0; i < instances.size(); ++i) {
        EnergyCounts &slot = out.instances[i];
        slot.valid = instances[i].valid;
        for (size_t k = 0; k < numEnergyEventKinds; ++k) {
            uint64_t now = instances[i].n[k];
            uint64_t then = i < before.instances.size()
                ? before.instances[i].n[k] : 0;
            slot.n[k] = now >= then ? now - then : 0;
        }
    }
    return out;
}

EnergyCounts
EnergySnapshot::sum(const std::vector<unsigned> *nodes) const
{
    EnergyCounts total;
    if (nodes) {
        for (unsigned node : *nodes) {
            if (node < instances.size())
                total += instances[node];
        }
        total.valid = !instances.empty();
    } else {
        for (const EnergyCounts &counts : instances)
            total += counts;
        total.valid = !instances.empty();
    }
    return total;
}

void
EnergyRegistry::configure(unsigned instances)
{
    state_.instances.assign(instances, EnergyCounts{});
    for (EnergyCounts &counts : state_.instances)
        counts.valid = true;
}

void
EnergyRegistry::reset()
{
    for (EnergyCounts &counts : state_.instances) {
        counts.n.fill(0);
        counts.valid = true;
    }
}

namespace energy
{

namespace
{
EnergyRegistry *g_activeRegistry = nullptr;
} // namespace

EnergyRegistry *
activeRegistry()
{
    return g_activeRegistry;
}

void
setActiveRegistry(EnergyRegistry *registry)
{
    g_activeRegistry = registry;
}

} // namespace energy

double
tracePjOf(const TraceEvent &event, const EnergyPrices &prices)
{
    const auto type = TraceEventType(event.type);
    switch (TraceComponent(event.component)) {
      case TraceComponent::Pe:
        // MacBusy's arg is the number of MACs that fired this burst;
        // CacheHit extracts `value` matches, CacheMiss scans `value`
        // entries, CacheInsert parks one entry.
        if (type == TraceEventType::MacBusy)
            return double(event.arg) * prices.macOpPj;
        if (type == TraceEventType::CacheHit ||
            type == TraceEventType::CacheMiss)
            return double(event.value) * prices.cacheAccessPj;
        if (type == TraceEventType::CacheInsert)
            return prices.cacheAccessPj;
        return 0.0;
      case TraceComponent::Router:
        if (type == TraceEventType::FlitSwitch)
            return prices.nocHopPj;
        // Stream estimate: a LinkFlit event carries no link length,
        // so it prices as one unit-distance segment. Exact distance-
        // weighted accounting is the EnergyRegistry path.
        if (type == TraceEventType::LinkFlit)
            return prices.nocLinkPj;
        return 0.0;
      case TraceComponent::Png:
        // PngIssue's value counts elements issued in this tick.
        if (type == TraceEventType::PngIssue)
            return double(event.value) * prices.pngOpPj;
        return 0.0;
      case TraceComponent::Vault:
        // DramWord's value is the bit count of the packed burst; it
        // pays the DRAM-die toll, the logic-die toll, and one
        // vault-controller transaction.
        if (type == TraceEventType::DramWord)
            return double(event.value) *
                       (prices.dramPjPerBit + prices.vaultLogicPjPerBit) +
                   prices.vaultXactPj;
        return 0.0;
      default:
        return 0.0;
    }
}

} // namespace neurocube
