/**
 * @file
 * Typed trace events published by the simulated components.
 *
 * A TraceEvent is a fixed-size plain-old-data record: the tick it
 * happened at, which component class and instance produced it, a
 * type tag, and two payload fields whose meaning depends on the type
 * (documented per enumerator). Components publish events through the
 * NC_TRACE macro in trace/trace.hh; exporters interpret them.
 */

#ifndef NEUROCUBE_TRACE_EVENTS_HH
#define NEUROCUBE_TRACE_EVENTS_HH

#include <cstdint>

#include "common/types.hh"

namespace neurocube
{

/** Component class an event originates from (one track family). */
enum class TraceComponent : uint8_t
{
    Sim = 0,
    Router,
    Pe,
    Png,
    Vault,
    ComponentCount,
};

/** Short lower-case label of a component class (track naming). */
const char *traceComponentName(TraceComponent component);

/** What happened. Payload semantics are given per enumerator. */
enum class TraceEventType : uint8_t
{
    // --- NoC (instance = router/node index).
    /** Flit entered an input FIFO. arg=port, value=occupancy after. */
    FlitEnqueue = 0,
    /** Flit switched to an output FIFO. arg=out port, value=occupancy. */
    FlitSwitch,
    /** Input head-of-line blocked on a full output. arg=input port. */
    FlitBlocked,
    /** Flit crossed a router-to-router link. arg=destination router. */
    LinkFlit,
    /** Packet ejected at an endpoint. arg=0 PE / 1 mem, value=latency. */
    PacketEject,

    // --- PE (instance = PE index).
    /** Temporal-buffer flush started the MAC array.
     *  arg=active MACs, value=busy duration in ticks. */
    MacBusy,
    /** Sub-bank search extracted parked operands. value=matches. */
    CacheHit,
    /** Sub-bank search found nothing for the new OP. value=scanned. */
    CacheMiss,
    /** Out-of-order operand parked. value=total buffered entries. */
    CacheInsert,
    /** Insert spilled past sub-bank capacity. value=bank occupancy. */
    CacheOverflow,
    /** Write-back packet injected. value=outbox depth after. */
    WriteBackOut,
    /** Flush delayed by the sub-bank scan. value=extra ticks. */
    SearchStall,

    // --- PNG (instance = vault index).
    /** Counter-FSM phase change. arg=PngFsmPhase, value=plane. */
    PngPhase,
    /** Packets ready but the router memory port is full. */
    PngInjectStall,
    /** Element reads issued this tick. value=count. */
    PngIssue,

    // --- Batched execution (instance = batch lane index).
    /** Lane finished a pass. arg=pass index, value=lane pass ticks. */
    LaneDone,

    // --- DRAM channel (instance = channel index).
    /** Request queued. arg=0 read / 1 write, value=queue depth after. */
    DramQueueDepth,
    /** One word serviced. arg=0 read / 1 write, value=bits moved. */
    DramWord,
    /** Row activation started. arg=bank, value=row. */
    DramRowActivate,
    /** Tick stalled with work queued. arg=DramStallReason. */
    DramStall,

    // --- Serving frontend (instance = 0, sim track; src/serving/).
    /** Request queue depth changed. arg=ServeQueueEvent,
     *  value=queue depth after the transition. */
    ServeQueueDepth,
    /** Request left the system. arg=request id,
     *  value=end-to-end latency in ticks (0 for a dropped request). */
    ServeRequestDone,
    /** Request left the queue into a dispatched batch. arg=request
     *  id, value=queue wait in ticks (dispatch - arrival). */
    ServeRequestDispatch,

    // --- Wake-list engine (instance = batch lane, 0 unbatched).
    /** Component-ticks the scheduler skipped (bulk-replayed as
     *  no-ops) since the previously executed tick, stamped at the
     *  executed tick that ended the gap. value=skipped
     *  component-ticks. The legacy loop emits none of these; skipped
     *  ticks are exactly those where no component had trace-visible
     *  work, so the rest of the stream is engine-invariant. */
    EngineSkip,

    EventTypeCount,
};

/** Short label of an event type (exporters, debugging). */
const char *traceEventTypeName(TraceEventType type);

/** Phases of the PNG's nested-counter FSM (paper Fig. 8b). */
enum class PngFsmPhase : uint8_t
{
    Idle = 0,
    Configured,
    Generating,
    Draining,
    Done,
};

/** Label of a PNG FSM phase. */
const char *pngFsmPhaseName(PngFsmPhase phase);

/** Why a DRAM channel tick made no progress (DramStall arg). */
enum class DramStallReason : uint8_t
{
    BurstGap = 0,
    Bandwidth,
    RowConflict,
    Backpressure,
};

/** Request-queue transition a ServeQueueDepth event reports. */
enum class ServeQueueEvent : uint8_t
{
    /** Request admitted into the queue. */
    Arrive = 0,
    /** Request left the queue into a dispatched batch. */
    Dispatch,
    /** Request rejected at a full queue (admission control). */
    Drop,
};

/** Label of a serve queue transition. */
const char *serveQueueEventName(ServeQueueEvent event);

/** One recorded event (24 bytes, trivially copyable). */
struct TraceEvent
{
    /** Reference-clock cycle the event was recorded at. */
    Tick tick = 0;
    /** Originating component class. */
    TraceComponent component = TraceComponent::Sim;
    /** Event type tag. */
    TraceEventType type = TraceEventType::EventTypeCount;
    /** Component instance (router/PE/vault index). */
    uint16_t instance = 0;
    /** Small payload, meaning depends on type. */
    uint32_t arg = 0;
    /** Wide payload, meaning depends on type. */
    uint64_t value = 0;
};

static_assert(sizeof(TraceEvent) == 24, "keep trace events compact");

} // namespace neurocube

#endif // NEUROCUBE_TRACE_EVENTS_HH
