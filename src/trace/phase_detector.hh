/**
 * @file
 * Windowed phase detection over the time-series CSV.
 *
 * Reads the CSV written by TimeSeriesCsvExporter and segments the run
 * into execution phases: compute-bound stretches (high PE
 * utilization), inject-bound stretches (PNG packets ready but the
 * router memory port full), DRAM-bound stretches (channels stalled on
 * activation/bandwidth), NoC-bound stretches (head-of-line blocking
 * inside routers), and quiescent gaps (windows the exporter skipped
 * because no event fell into them). Adjacent windows of the same kind
 * merge into one segment, so a typical layer reads as a handful of
 * phases instead of thousands of rows.
 *
 * Columns are located by header name, so the detector tolerates
 * column reordering and additions in the exporter.
 */

#ifndef NEUROCUBE_TRACE_PHASE_DETECTOR_HH
#define NEUROCUBE_TRACE_PHASE_DETECTOR_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/types.hh"

namespace neurocube
{

/** What dominated one stretch of the run. */
enum class PhaseKind : uint8_t
{
    /** No events at all (between layers, parked lanes). */
    Quiescent = 0,
    /** PE MAC arrays busy above the utilization threshold. */
    Compute,
    /** PNG injection stalls dominate. */
    InjectBound,
    /** DRAM service stalls dominate. */
    DramBound,
    /** Router head-of-line blocking dominates. */
    NocBound,
};

/** Short label of a phase kind ("compute", "dram-bound", ...). */
const char *phaseKindName(PhaseKind kind);

/** One detected phase covering [startTick, endTick). */
struct PhaseSegment
{
    Tick startTick = 0;
    Tick endTick = 0;
    PhaseKind kind = PhaseKind::Quiescent;
    /** Aggregation windows merged into this segment. */
    unsigned windows = 0;
};

/** Detection knobs. */
struct PhaseDetectorConfig
{
    /**
     * Aggregation window of the CSV in reference ticks; must match
     * the TraceConfig::windowTicks the CSV was produced with.
     */
    Tick windowTicks = 1024;
    /** PE MAC instances (scales pe_util; topology default). */
    unsigned numPes = 16;
    /** PNG instances (scales png_stall_ticks). */
    unsigned numPngs = 16;
    /** Router instances (scales noc_blocked_ticks). */
    unsigned numRouters = 16;
    /** Vault instances (scales dram_stall_ticks). */
    unsigned numVaults = 16;
    /** PE utilization (%) above which a window is compute-bound. */
    double computeUtilPct = 45.0;
    /**
     * Per-instance stall fraction below which a stall signal is
     * noise; a window where every signal is below this (and PE
     * utilization is negligible) is quiescent.
     */
    double stallFloor = 0.05;
};

/**
 * Segment a time-series CSV into phases.
 *
 * @param csv the CSV stream (header row first)
 * @param config detection knobs; windowTicks must match the CSV
 * @return segments in time order, covering [firstWindow, lastWindow)
 *         with quiescent segments filling exporter gaps; empty when
 *         the CSV has no data rows or the header is missing required
 *         columns
 */
std::vector<PhaseSegment>
detectPhases(std::istream &csv, const PhaseDetectorConfig &config);

/** Render segments as one human-readable line each. */
std::string phaseReport(const std::vector<PhaseSegment> &segments);

/** One detected phase joined with the power track. */
struct PhaseEnergy
{
    PhaseSegment segment;
    /** Energy spent inside the segment, joules. */
    double joules = 0.0;
    /** Mean power over the segment, watts. */
    double avgPowerW = 0.0;
};

/**
 * Join detected phases with the CSV's avg_power_w column: each CSV
 * window's energy (avg_power_w x window seconds at the reference
 * clock) is charged to the segment containing it; windows the
 * exporter skipped contribute nothing (they are quiescent).
 *
 * @param segments detectPhases output (time-ordered)
 * @param csv the same CSV, rewound (header row first)
 * @param config the knobs detectPhases ran with
 * @return one entry per segment, in segment order; joules all 0 when
 *         the CSV has no avg_power_w column (energy accounting off)
 */
std::vector<PhaseEnergy>
joinPhaseEnergy(const std::vector<PhaseSegment> &segments,
                std::istream &csv,
                const PhaseDetectorConfig &config);

/**
 * Serialize a phase-energy rollup as a JSON document:
 * {"window_ticks": N, "segments": [{"kind", "start", "end",
 * "ticks", "windows", "joules", "avg_power_w"}, ...]}.
 * Deterministic (fixed field order, setprecision(12) numbers).
 */
std::string phaseEnergyJson(const std::vector<PhaseEnergy> &phases,
                            Tick windowTicks);

} // namespace neurocube

#endif // NEUROCUBE_TRACE_PHASE_DETECTOR_HH
