/**
 * @file
 * Trace event bus: the NC_TRACE publishing macro, the lock-free
 * ring-buffer recorder, the sink interface exporters implement, and
 * the session object the Neurocube top level owns.
 *
 * Publishing is a macro so that a build with -DNEUROCUBE_TRACE=OFF
 * (NEUROCUBE_TRACE_ENABLED == 0) compiles every instrumentation site
 * to nothing — zero code, zero branches. When compiled in, each site
 * costs one load of the active-recorder pointer and a predictable
 * branch while tracing is off, and one ring-buffer store while on.
 *
 * The recorder is a single-producer/single-consumer ring: the
 * simulation loop produces, drain() consumes and hands contiguous
 * batches to the registered sinks. By default draining happens inline
 * (same thread) when the ring fills and at finish(); with
 * startConsumerThread() a dedicated consumer drains continuously
 * instead — used for live streaming (TraceConfig::streamPath), where
 * a viewer should see events while the run is in flight. The index
 * protocol is the standard acquire/release SPSC one either way, and
 * no event is ever dropped inside the recording window: with a
 * running consumer a full ring makes the producer wait for space
 * rather than drain inline (sinks stay single-threaded).
 */

#ifndef NEUROCUBE_TRACE_TRACE_HH
#define NEUROCUBE_TRACE_TRACE_HH

#include <atomic>
#include <cstddef>
#include <iosfwd>
#include <memory>
#include <thread>
#include <vector>

#include "common/types.hh"
#include "trace/events.hh"
#include "trace/trace_config.hh"

#ifndef NEUROCUBE_TRACE_ENABLED
#define NEUROCUBE_TRACE_ENABLED 1
#endif

namespace neurocube
{

class ChromeTraceExporter;
class EnergyRegistry;
class MetricsRegistry;
class SpatialRegistry;
class TimeSeriesCsvExporter;

/** Consumer of recorded event batches (exporters derive from this). */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;

    /**
     * Consume a batch of events in recording order. Called from
     * TraceRecorder::drain with a contiguous slice of the ring.
     *
     * @param events first event of the batch
     * @param count number of events
     */
    virtual void consume(const TraceEvent *events, size_t count) = 0;

    /** Flush any buffered output; the trace is complete. */
    virtual void finish() {}
};

/** Lock-free SPSC ring buffer delivering events to sinks. */
class TraceRecorder
{
  public:
    /**
     * @param capacity ring capacity in events, rounded up to a
     *        power of two (minimum 64)
     */
    explicit TraceRecorder(size_t capacity = size_t(1) << 16);

    ~TraceRecorder();

    TraceRecorder(const TraceRecorder &) = delete;
    TraceRecorder &operator=(const TraceRecorder &) = delete;

    /** Register a sink; not owned, must outlive the recorder. */
    void addSink(TraceSink *sink);

    /** Restrict recording to ticks in [start, end). */
    void setWindow(Tick start, Tick end);

    /** Restrict recording to component classes with a set bit. */
    void setComponentMask(uint32_t mask) { componentMask_ = mask; }

    /**
     * Window sampling (TraceConfig::samplePeriod): only windows with
     * (tick / windowTicks) % period == 0 record events, except for
     * component classes with a set bit in exemptMask which always
     * record. period <= 1 disables sampling.
     *
     * @param windowTicks sampling window length in ticks (>= 1)
     * @param period record 1-in-`period` windows
     * @param exemptMask component classes that bypass sampling
     *        (default: TraceComponent::Sim, so serving spans, lane
     *        completions, and engine-skip aggregates stay complete)
     */
    void
    setSampling(Tick windowTicks, uint64_t period,
                uint32_t exemptMask =
                    1u << unsigned(TraceComponent::Sim))
    {
        sampleWindow_ = windowTicks > 0 ? windowTicks : 1;
        samplePeriod_ = period > 0 ? period : 1;
        sampleExempt_ = exemptMask;
        sampleOpen_ = windowSampled(now_);
    }

    /** Configured sampling period (1 = every window recorded). */
    uint64_t samplePeriod() const { return samplePeriod_; }

    /** True when the window holding `tick` records full fidelity. */
    bool
    windowSampled(Tick tick) const
    {
        return samplePeriod_ <= 1
               || (tick / sampleWindow_) % samplePeriod_ == 0;
    }

    /** Advance the timestamp applied to subsequent events. */
    void
    setNow(Tick now)
    {
        now_ = now;
        if (samplePeriod_ > 1)
            sampleOpen_ = windowSampled(now);
    }

    /** Timestamp currently applied to recorded events. */
    Tick now() const { return now_; }

    /** Record one event stamped with the current tick. */
    void
    record(TraceComponent component, uint16_t instance,
           TraceEventType type, uint32_t arg = 0, uint64_t value = 0)
    {
        if (now_ < startTick_ || now_ >= endTick_)
            return;
        if (!(componentMask_ & (1u << unsigned(component))))
            return;
        if (!sampleOpen_
            && !(sampleExempt_ & (1u << unsigned(component))))
            return;
        TraceEvent event;
        event.tick = now_;
        event.component = component;
        event.type = type;
        event.instance = instance;
        event.arg = arg;
        event.value = value;
        push(event);
    }

    /** Append a fully formed event (tests, replay tools). */
    void push(const TraceEvent &event);

    /**
     * Deliver all pending events to the sinks. Producer-side calls
     * are only legal while no consumer thread runs; the consumer
     * thread calls this itself.
     */
    void drain();

    /**
     * Drain and notify every sink that the trace is complete. Stops
     * the consumer thread first when one is running.
     */
    void finish();

    /**
     * Start the dedicated consumer thread. From now on sinks run on
     * that thread and a full ring makes the producer wait instead of
     * draining inline. No-op when already running.
     */
    void startConsumerThread();

    /**
     * Stop and join the consumer thread, then drain whatever is
     * left inline. No-op when not running.
     */
    void stopConsumerThread();

    /** True while the dedicated consumer thread runs. */
    bool
    consumerRunning() const
    {
        return consumerRun_.load(std::memory_order_acquire);
    }

    /** Events accepted so far (excluding window/mask rejects). */
    uint64_t recorded() const { return recorded_; }

    /** Ring capacity in events (power of two). */
    size_t capacity() const { return ring_.size(); }

    /** Events currently buffered and not yet delivered. */
    size_t
    pending() const
    {
        return size_t(head_.load(std::memory_order_relaxed)
                      - tail_.load(std::memory_order_relaxed));
    }

  private:
    std::vector<TraceEvent> ring_;
    size_t mask_;
    /** Producer index (total events pushed). */
    std::atomic<uint64_t> head_{0};
    /** Consumer index (total events delivered). */
    std::atomic<uint64_t> tail_{0};

    Tick now_ = 0;
    Tick startTick_ = 0;
    Tick endTick_ = ~Tick(0);
    uint32_t componentMask_ = ~uint32_t(0);
    uint64_t recorded_ = 0;

    /** Window sampling (setSampling); open == current window records. */
    Tick sampleWindow_ = 1024;
    uint64_t samplePeriod_ = 1;
    uint32_t sampleExempt_ = 1u << unsigned(TraceComponent::Sim);
    bool sampleOpen_ = true;

    std::vector<TraceSink *> sinks_;

    /** Dedicated consumer (live streaming); joinable while running. */
    std::thread consumer_;
    std::atomic<bool> consumerRun_{false};
};

namespace trace
{

namespace detail
{
/** Storage behind activeRecorder() (do not touch directly). */
extern TraceRecorder *g_activeRecorder;
} // namespace detail

/**
 * The process-wide active recorder NC_TRACE publishes to, or nullptr
 * while tracing is off. A single slot (rather than per-cube plumbing
 * through every constructor) keeps the instrumentation sites to one
 * expression; it is only installed/removed between runs, never while
 * components are ticking. The ring is single-producer, so the
 * threaded-lane engine demotes itself to the (single-threaded) Event
 * loop whenever a recorder is live — lane workers only ever read a
 * stable nullptr here. Inline so NC_TRACE sites reduce to one load +
 * branch.
 */
inline TraceRecorder *
activeRecorder()
{
    return detail::g_activeRecorder;
}

/** Install (or, with nullptr, remove) the active recorder. */
void setActiveRecorder(TraceRecorder *recorder);

} // namespace trace

/** Shape of the machine being traced (exporter track layout). */
struct TraceTopology
{
    /** Mesh routers (== nodes). */
    unsigned numRouters = 16;
    /** Processing elements. */
    unsigned numPes = 16;
    /** Vaults / memory channels (== PNGs). */
    unsigned numVaults = 16;
    /**
     * Node -> batch lane assignment (empty = unbatched). When set,
     * exporters prefix per-node track names with "laneN." so each
     * vault group reads as its own machine.
     */
    std::vector<uint16_t> laneOf;
    /**
     * Vault ordinal -> hosting mesh node (empty = identity). PNG
     * trace events carry the hosting node as their instance id, so
     * exporters need this to fold them back onto vault tracks when
     * channels are scarcer than nodes (DDR3/HBM placements).
     */
    std::vector<uint16_t> vaultNode;
};

/**
 * One tracing session: the recorder plus the exporters selected by a
 * TraceConfig, activated on construction and finished/deactivated on
 * destruction. Owned by the Neurocube top level when config.trace
 * .enabled is set; only one session can be active at a time.
 *
 * Also owns the stall-attribution MetricsRegistry (when
 * config.metrics is set) and the activity EnergyRegistry (when
 * config.energy is set, in NEUROCUBE_TRACE=ON builds only) and
 * installs both as the process-wide active registries for
 * NC_METRIC_CYCLE / NC_ENERGY_EVENT. The event recorder is activated
 * only when at least one sink exists, so a counters-only session (no
 * output paths) costs nothing at NC_TRACE sites. When
 * config.streamPath is set, a consumer thread drains the ring into
 * the binary live stream continuously.
 *
 * At destruction, when both the Chrome JSON and the timeseries CSV
 * exports are configured, the finished CSV is re-read through
 * detectPhases() and the resulting segments are written into the
 * Chrome trace as a top-level "phases" annotation track.
 */
class TraceSession
{
  public:
    /**
     * @param config output selection and knobs
     * @param topology machine shape for exporter track layout
     */
    TraceSession(const TraceConfig &config,
                 const TraceTopology &topology);

    ~TraceSession();

    TraceSession(const TraceSession &) = delete;
    TraceSession &operator=(const TraceSession &) = delete;

    /** The session's recorder. */
    TraceRecorder &recorder() { return recorder_; }

    /** The session's metrics registry, or nullptr (metrics off). */
    MetricsRegistry *metrics() { return metrics_.get(); }

    /** The session's spatial registry, or nullptr (spatial off). */
    SpatialRegistry *spatial() { return spatial_.get(); }

#if NEUROCUBE_TRACE_ENABLED
    /** The session's energy registry, or nullptr (energy off). The
     *  accessor only exists in NEUROCUBE_TRACE=ON builds — callers
     *  must sit behind the same guard, keeping notrace builds free
     *  of any EnergyRegistry reference. */
    EnergyRegistry *energy() { return energy_.get(); }
#endif

  private:
    TraceRecorder recorder_;
    std::unique_ptr<MetricsRegistry> metrics_;
    std::unique_ptr<SpatialRegistry> spatial_;
#if NEUROCUBE_TRACE_ENABLED
    std::unique_ptr<EnergyRegistry> energy_;
#endif
    std::vector<std::unique_ptr<TraceSink>> sinks_;
    /** File streams backing the exporters (destroyed after sinks). */
    std::vector<std::unique_ptr<std::ofstream>> streams_;

    /** Non-owning views of the exporters, for the phase feedback. */
    ChromeTraceExporter *chrome_ = nullptr;
    TimeSeriesCsvExporter *csv_ = nullptr;
    /** Inputs the phase feedback needs after the run. */
    std::string csvPath_;
    Tick windowTicks_ = 1024;
    TraceTopology topology_;
};

} // namespace neurocube

#if NEUROCUBE_TRACE_ENABLED

/**
 * Publish one trace event: NC_TRACE(component, instance, type[, arg
 * [, value]]). Compiles to a null-check while tracing is inactive.
 */
#define NC_TRACE(component, instance, type, ...) \
    do { \
        if (::neurocube::TraceRecorder *nc_trace_r_ = \
                ::neurocube::trace::activeRecorder()) { \
            nc_trace_r_->record((component), \
                                uint16_t(instance), \
                                (type) __VA_OPT__(,) __VA_ARGS__); \
        } \
    } while (0)

/** Stamp the tick applied to subsequent NC_TRACE events. */
#define NC_TRACE_TICK(now) \
    do { \
        if (::neurocube::TraceRecorder *nc_trace_r_ = \
                ::neurocube::trace::activeRecorder()) { \
            nc_trace_r_->setNow(now); \
        } \
    } while (0)

#else

namespace neurocube::trace::detail
{
/** Marks macro arguments as used in NEUROCUBE_TRACE=OFF builds. */
template <typename... Args>
inline void
ignore(Args &&...)
{
}
} // namespace neurocube::trace::detail

// The arguments sit behind `if (false)`: never evaluated, no code
// generated, but variables referenced only by NC_TRACE stay "used".
#define NC_TRACE(component, instance, type, ...) \
    do { \
        if (false) { \
            ::neurocube::trace::detail::ignore( \
                (component), (instance), \
                (type)__VA_OPT__(, ) __VA_ARGS__); \
        } \
    } while (0)

#define NC_TRACE_TICK(now) \
    do { \
        if (false) { \
            ::neurocube::trace::detail::ignore(now); \
        } \
    } while (0)

#endif // NEUROCUBE_TRACE_ENABLED

#endif // NEUROCUBE_TRACE_TRACE_HH
