/**
 * @file
 * Runtime configuration of the trace subsystem.
 *
 * Kept free of heavy includes so core/config.hh can embed it. The
 * compile-time switch is separate: building with -DNEUROCUBE_TRACE=OFF
 * removes every instrumentation site (the NC_TRACE macro expands to
 * nothing), in which case this struct is inert.
 */

#ifndef NEUROCUBE_TRACE_TRACE_CONFIG_HH
#define NEUROCUBE_TRACE_TRACE_CONFIG_HH

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/types.hh"
#include "trace/energy.hh"

namespace neurocube
{

/** Enable/output knobs for one tracing session. */
struct TraceConfig
{
    /** Master runtime switch; false = no recorder is created. */
    bool enabled = false;

    /** Chrome/Perfetto JSON output path; empty = no JSON export. */
    std::string chromeJsonPath;

    /** Windowed time-series CSV output path; empty = no CSV export. */
    std::string timeseriesCsvPath;

    /**
     * Live binary stream output path (typically a named pipe); empty
     * = no live stream. Unlike the exporters above, events written
     * here are drained continuously by a consumer thread so a viewer
     * on the other end sees them while the run is in flight.
     */
    std::string streamPath;

    /**
     * Stall-attribution cycle accounting (trace/metrics.hh). On by
     * default: the counters are cheap, and per-layer bottleneck
     * reports need them. Only honoured while `enabled` is true.
     */
    bool metrics = true;

    /**
     * Activity-based energy accounting (trace/energy.hh). On by
     * default for the same reason as metrics: the counters are one
     * array increment per event, and per-layer EnergyBreakdowns need
     * them. Only honoured while `enabled` is true, and compiled out
     * entirely with -DNEUROCUBE_TRACE=OFF.
     */
    bool energy = true;

    /**
     * Spatial observability counters (trace/spatial.hh): per-link
     * flits/credit-stalls/occupancy, per-vault bytes/queue depth,
     * per-PE MAC occupancy. On by default — one array increment per
     * event, and heatmap/roofline exports need them. Only honoured
     * while `enabled` is true, and compiled out entirely with
     * -DNEUROCUBE_TRACE=OFF.
     */
    bool spatial = true;

    /**
     * Per-event prices used by the *exporters* to turn windowed
     * activity into the CSV avg_power_w column and the Chrome
     * power.W counter track. Defaults to the 15 nm Table II
     * derivation; replace with ActivityEnergyModel(model).prices()
     * to trace power at another node.
     */
    EnergyPrices energyPrices;

    /**
     * Aggregation window, in reference ticks, for the CSV exporter
     * and for the counter tracks of the Chrome exporter.
     */
    Tick windowTicks = 1024;

    /** Ring-buffer capacity in events (rounded up to a power of 2). */
    size_t ringCapacity = size_t(1) << 16;

    /**
     * Time slice to record: events outside [startTick, endTick) are
     * dropped at the recording site. Bounds trace size on long runs.
     */
    Tick startTick = 0;
    Tick endTick = ~Tick(0);

    /**
     * Per-component-class enable bits (1 << TraceComponent). The
     * default traces everything; clear bits to cut trace volume.
     */
    uint32_t componentMask = ~uint32_t(0);

    /**
     * Window sampling: record full-fidelity component events only in
     * 1-in-N aggregation windows (window w is sampled when
     * w % samplePeriod == 0, with w = tick / windowTicks). 1 = record
     * every window. Sampling only thins the *event* stream — the
     * stall-attribution and energy counters always see every cycle,
     * so metricsJson/energyJson are identical at any sample rate.
     * TraceComponent::Sim events (lane completions, engine-skip
     * aggregates, serving request spans) are exempt so per-request
     * spans and run summaries stay complete in sampled traces; a
     * side effect is that duration-style slices of other components
     * (PngPhase, MacBusy) can lose an endpoint at window boundaries.
     */
    uint64_t samplePeriod = 1;

    /**
     * Compatibility fallback: when set, a live event recorder (a
     * session with at least one export sink) demotes the run to the
     * Legacy tick loop, as all pre-sampling releases did. Off by
     * default — the Event engine now stamps and aggregates the same
     * trace-visible state (tests/test_engine_diff.cc gates that the
     * two engines agree bit-for-bit on cycles, stalls, and energy
     * while tracing). ThreadedLanes still demotes to Event while a
     * recorder is live: the ring is single-producer and lane workers
     * would race on it.
     */
    bool legacyEngineWithRecorder = false;
};

} // namespace neurocube

#endif // NEUROCUBE_TRACE_TRACE_CONFIG_HH
