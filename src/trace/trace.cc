#include "trace/trace.hh"

#include <algorithm>
#include <fstream>

#include "common/logging.hh"
#include "trace/chrome_exporter.hh"
#include "trace/timeseries_exporter.hh"

namespace neurocube
{

const char *
traceComponentName(TraceComponent component)
{
    switch (component) {
      case TraceComponent::Sim:
        return "sim";
      case TraceComponent::Router:
        return "router";
      case TraceComponent::Pe:
        return "pe";
      case TraceComponent::Png:
        return "png";
      case TraceComponent::Vault:
        return "vault";
      case TraceComponent::ComponentCount:
        break;
    }
    return "?";
}

const char *
traceEventTypeName(TraceEventType type)
{
    switch (type) {
      case TraceEventType::FlitEnqueue:
        return "flitEnqueue";
      case TraceEventType::FlitSwitch:
        return "flitSwitch";
      case TraceEventType::FlitBlocked:
        return "flitBlocked";
      case TraceEventType::LinkFlit:
        return "linkFlit";
      case TraceEventType::PacketEject:
        return "packetEject";
      case TraceEventType::MacBusy:
        return "macBusy";
      case TraceEventType::CacheHit:
        return "cacheHit";
      case TraceEventType::CacheMiss:
        return "cacheMiss";
      case TraceEventType::CacheInsert:
        return "cacheInsert";
      case TraceEventType::CacheOverflow:
        return "cacheOverflow";
      case TraceEventType::WriteBackOut:
        return "writeBackOut";
      case TraceEventType::SearchStall:
        return "searchStall";
      case TraceEventType::PngPhase:
        return "pngPhase";
      case TraceEventType::PngInjectStall:
        return "pngInjectStall";
      case TraceEventType::PngIssue:
        return "pngIssue";
      case TraceEventType::LaneDone:
        return "laneDone";
      case TraceEventType::DramQueueDepth:
        return "dramQueueDepth";
      case TraceEventType::DramWord:
        return "dramWord";
      case TraceEventType::DramRowActivate:
        return "dramRowActivate";
      case TraceEventType::DramStall:
        return "dramStall";
      case TraceEventType::EventTypeCount:
        break;
    }
    return "?";
}

const char *
pngFsmPhaseName(PngFsmPhase phase)
{
    switch (phase) {
      case PngFsmPhase::Idle:
        return "idle";
      case PngFsmPhase::Configured:
        return "configured";
      case PngFsmPhase::Generating:
        return "generating";
      case PngFsmPhase::Draining:
        return "draining";
      case PngFsmPhase::Done:
        return "done";
    }
    return "?";
}

namespace
{

size_t
roundUpPow2(size_t value)
{
    size_t pow2 = 64;
    while (pow2 < value)
        pow2 <<= 1;
    return pow2;
}

/** The process-wide recorder slot NC_TRACE loads. */
TraceRecorder *g_activeRecorder = nullptr;

} // namespace

namespace trace
{

TraceRecorder *
activeRecorder()
{
    return g_activeRecorder;
}

void
setActiveRecorder(TraceRecorder *recorder)
{
    g_activeRecorder = recorder;
}

} // namespace trace

TraceRecorder::TraceRecorder(size_t capacity)
    : ring_(roundUpPow2(capacity)), mask_(ring_.size() - 1)
{
}

void
TraceRecorder::addSink(TraceSink *sink)
{
    nc_assert(sink != nullptr, "null trace sink");
    sinks_.push_back(sink);
}

void
TraceRecorder::setWindow(Tick start, Tick end)
{
    nc_assert(start <= end, "inverted trace window");
    startTick_ = start;
    endTick_ = end;
}

void
TraceRecorder::push(const TraceEvent &event)
{
    uint64_t head = head_.load(std::memory_order_relaxed);
    uint64_t tail = tail_.load(std::memory_order_acquire);
    if (head - tail == ring_.size()) {
        // Ring full: consume inline so nothing is lost. (With a
        // threaded consumer this would become a bounded wait.)
        drain();
    }
    ring_[head & mask_] = event;
    head_.store(head + 1, std::memory_order_release);
    ++recorded_;
}

void
TraceRecorder::drain()
{
    uint64_t tail = tail_.load(std::memory_order_relaxed);
    uint64_t head = head_.load(std::memory_order_acquire);
    while (tail != head) {
        size_t begin = size_t(tail & mask_);
        // Largest contiguous slice: up to the wrap point.
        size_t count = size_t(std::min<uint64_t>(
            head - tail, ring_.size() - begin));
        for (TraceSink *sink : sinks_)
            sink->consume(&ring_[begin], count);
        tail += count;
        tail_.store(tail, std::memory_order_release);
    }
}

void
TraceRecorder::finish()
{
    drain();
    for (TraceSink *sink : sinks_)
        sink->finish();
}

TraceSession::TraceSession(const TraceConfig &config,
                           const TraceTopology &topology)
    : recorder_(config.ringCapacity)
{
    recorder_.setWindow(config.startTick, config.endTick);
    recorder_.setComponentMask(config.componentMask);

    auto open = [&](const std::string &path) -> std::ostream & {
        auto stream = std::make_unique<std::ofstream>(path);
        if (!stream->is_open())
            nc_fatal("cannot open trace output '%s'", path.c_str());
        streams_.push_back(std::move(stream));
        return *streams_.back();
    };

    if (!config.chromeJsonPath.empty()) {
        sinks_.push_back(std::make_unique<ChromeTraceExporter>(
            open(config.chromeJsonPath), topology,
            config.windowTicks));
    }
    if (!config.timeseriesCsvPath.empty()) {
        sinks_.push_back(std::make_unique<TimeSeriesCsvExporter>(
            open(config.timeseriesCsvPath), topology,
            config.windowTicks));
    }
    for (auto &sink : sinks_)
        recorder_.addSink(sink.get());

    if (trace::activeRecorder() != nullptr) {
        nc_warn("a trace session is already active; replacing it");
    }
    trace::setActiveRecorder(&recorder_);
}

TraceSession::~TraceSession()
{
    recorder_.finish();
    if (trace::activeRecorder() == &recorder_)
        trace::setActiveRecorder(nullptr);
}

} // namespace neurocube
