#include "trace/trace.hh"

#include <algorithm>
#include <chrono>
#include <fstream>

#include "common/logging.hh"
#include "trace/chrome_exporter.hh"
#include "trace/energy.hh"
#include "trace/metrics.hh"
#include "trace/phase_detector.hh"
#include "trace/spatial.hh"
#include "trace/stream_exporter.hh"
#include "trace/timeseries_exporter.hh"

namespace neurocube
{

const char *
traceComponentName(TraceComponent component)
{
    switch (component) {
      case TraceComponent::Sim:
        return "sim";
      case TraceComponent::Router:
        return "router";
      case TraceComponent::Pe:
        return "pe";
      case TraceComponent::Png:
        return "png";
      case TraceComponent::Vault:
        return "vault";
      case TraceComponent::ComponentCount:
        break;
    }
    return "?";
}

const char *
traceEventTypeName(TraceEventType type)
{
    switch (type) {
      case TraceEventType::FlitEnqueue:
        return "flitEnqueue";
      case TraceEventType::FlitSwitch:
        return "flitSwitch";
      case TraceEventType::FlitBlocked:
        return "flitBlocked";
      case TraceEventType::LinkFlit:
        return "linkFlit";
      case TraceEventType::PacketEject:
        return "packetEject";
      case TraceEventType::MacBusy:
        return "macBusy";
      case TraceEventType::CacheHit:
        return "cacheHit";
      case TraceEventType::CacheMiss:
        return "cacheMiss";
      case TraceEventType::CacheInsert:
        return "cacheInsert";
      case TraceEventType::CacheOverflow:
        return "cacheOverflow";
      case TraceEventType::WriteBackOut:
        return "writeBackOut";
      case TraceEventType::SearchStall:
        return "searchStall";
      case TraceEventType::PngPhase:
        return "pngPhase";
      case TraceEventType::PngInjectStall:
        return "pngInjectStall";
      case TraceEventType::PngIssue:
        return "pngIssue";
      case TraceEventType::LaneDone:
        return "laneDone";
      case TraceEventType::DramQueueDepth:
        return "dramQueueDepth";
      case TraceEventType::DramWord:
        return "dramWord";
      case TraceEventType::DramRowActivate:
        return "dramRowActivate";
      case TraceEventType::DramStall:
        return "dramStall";
      case TraceEventType::ServeQueueDepth:
        return "serveQueueDepth";
      case TraceEventType::ServeRequestDone:
        return "serveRequestDone";
      case TraceEventType::ServeRequestDispatch:
        return "serveRequestDispatch";
      case TraceEventType::EngineSkip:
        return "engineSkip";
      case TraceEventType::EventTypeCount:
        break;
    }
    return "?";
}

const char *
serveQueueEventName(ServeQueueEvent event)
{
    switch (event) {
      case ServeQueueEvent::Arrive:
        return "arrive";
      case ServeQueueEvent::Dispatch:
        return "dispatch";
      case ServeQueueEvent::Drop:
        return "drop";
    }
    return "?";
}

const char *
pngFsmPhaseName(PngFsmPhase phase)
{
    switch (phase) {
      case PngFsmPhase::Idle:
        return "idle";
      case PngFsmPhase::Configured:
        return "configured";
      case PngFsmPhase::Generating:
        return "generating";
      case PngFsmPhase::Draining:
        return "draining";
      case PngFsmPhase::Done:
        return "done";
    }
    return "?";
}

namespace
{

size_t
roundUpPow2(size_t value)
{
    size_t pow2 = 64;
    while (pow2 < value)
        pow2 <<= 1;
    return pow2;
}

} // namespace

namespace trace
{

namespace detail
{

/** The process-wide recorder slot NC_TRACE loads. */
TraceRecorder *g_activeRecorder = nullptr;

} // namespace detail

void
setActiveRecorder(TraceRecorder *recorder)
{
    detail::g_activeRecorder = recorder;
}

} // namespace trace

TraceRecorder::TraceRecorder(size_t capacity)
    : ring_(roundUpPow2(capacity)), mask_(ring_.size() - 1)
{
}

TraceRecorder::~TraceRecorder()
{
    stopConsumerThread();
}

void
TraceRecorder::addSink(TraceSink *sink)
{
    nc_assert(sink != nullptr, "null trace sink");
    sinks_.push_back(sink);
}

void
TraceRecorder::setWindow(Tick start, Tick end)
{
    nc_assert(start <= end, "inverted trace window");
    startTick_ = start;
    endTick_ = end;
}

void
TraceRecorder::push(const TraceEvent &event)
{
    uint64_t head = head_.load(std::memory_order_relaxed);
    uint64_t tail = tail_.load(std::memory_order_acquire);
    if (head - tail == ring_.size()) {
        if (consumerRunning()) {
            // Ring full: wait for the consumer to free a slot so
            // nothing is lost and sinks stay single-threaded. The
            // consumer always makes progress (it never blocks on
            // the producer), so the wait is bounded.
            do {
                std::this_thread::yield();
                tail = tail_.load(std::memory_order_acquire);
            } while (head - tail == ring_.size()
                     && consumerRunning());
        }
        if (head - tail == ring_.size()) {
            // No consumer (or it stopped mid-wait): drain inline.
            drain();
        }
    }
    ring_[head & mask_] = event;
    head_.store(head + 1, std::memory_order_release);
    ++recorded_;
}

void
TraceRecorder::drain()
{
    uint64_t tail = tail_.load(std::memory_order_relaxed);
    uint64_t head = head_.load(std::memory_order_acquire);
    while (tail != head) {
        size_t begin = size_t(tail & mask_);
        // Largest contiguous slice: up to the wrap point.
        size_t count = size_t(std::min<uint64_t>(
            head - tail, ring_.size() - begin));
        for (TraceSink *sink : sinks_)
            sink->consume(&ring_[begin], count);
        tail += count;
        tail_.store(tail, std::memory_order_release);
    }
}

void
TraceRecorder::finish()
{
    stopConsumerThread();
    drain();
    for (TraceSink *sink : sinks_)
        sink->finish();
}

void
TraceRecorder::startConsumerThread()
{
    if (consumerRunning())
        return;
    consumerRun_.store(true, std::memory_order_release);
    consumer_ = std::thread([this] {
        while (consumerRun_.load(std::memory_order_acquire)) {
            drain();
            if (pending() == 0) {
                std::this_thread::sleep_for(
                    std::chrono::microseconds(100));
            }
        }
    });
}

void
TraceRecorder::stopConsumerThread()
{
    if (!consumer_.joinable())
        return;
    consumerRun_.store(false, std::memory_order_release);
    consumer_.join();
    // Anything pushed after the consumer's last drain.
    drain();
}

TraceSession::TraceSession(const TraceConfig &config,
                           const TraceTopology &topology)
    : recorder_(config.ringCapacity)
{
    recorder_.setWindow(config.startTick, config.endTick);
    recorder_.setComponentMask(config.componentMask);
    recorder_.setSampling(config.windowTicks, config.samplePeriod);
    // Kept for the destructor's phase feedback (the exporters clamp
    // a zero window to 1; match them so detectPhases sees the same
    // window size the CSV was written with).
    windowTicks_ = config.windowTicks > 0 ? config.windowTicks : 1;
    topology_ = topology;

    auto open = [&](const std::string &path) -> std::ostream & {
        auto stream = std::make_unique<std::ofstream>(path);
        if (!stream->is_open())
            nc_fatal("cannot open trace output '%s'", path.c_str());
        streams_.push_back(std::move(stream));
        return *streams_.back();
    };

    if (!config.chromeJsonPath.empty()) {
        auto chrome = std::make_unique<ChromeTraceExporter>(
            open(config.chromeJsonPath), topology,
            config.windowTicks, config.energyPrices);
        chrome_ = chrome.get();
        sinks_.push_back(std::move(chrome));
    }
    if (!config.timeseriesCsvPath.empty()) {
        auto csv = std::make_unique<TimeSeriesCsvExporter>(
            open(config.timeseriesCsvPath), topology,
            config.windowTicks, config.energyPrices);
        csv_ = csv.get();
        csvPath_ = config.timeseriesCsvPath;
        sinks_.push_back(std::move(csv));
    }
    const bool streaming = !config.streamPath.empty();
    if (streaming) {
        // Binary ostream; works for regular files and named pipes.
        auto stream = std::make_unique<std::ofstream>(
            config.streamPath, std::ios::binary);
        if (!stream->is_open()) {
            nc_fatal("cannot open trace stream '%s'",
                     config.streamPath.c_str());
        }
        streams_.push_back(std::move(stream));
        sinks_.push_back(std::make_unique<TraceStreamWriter>(
            *streams_.back(), topology));
    }
    for (auto &sink : sinks_)
        recorder_.addSink(sink.get());

    if (config.metrics) {
        metrics_ = std::make_unique<MetricsRegistry>();
        // PNG instances publish their node index (the mesh node the
        // channel attaches to), so size them like the node-indexed
        // components; vault channels publish the channel index.
        metrics_->configure(topology.numRouters, topology.numPes,
                            topology.numRouters, topology.numVaults);
        if (metrics::activeRegistry() != nullptr)
            nc_warn("a metrics registry is already active; replacing");
        metrics::setActiveRegistry(metrics_.get());
    }

    if (config.spatial) {
        spatial_ = std::make_unique<SpatialRegistry>();
        // Node/vault/PE extents come from the topology; the NoC
        // fabric (built after the session) publishes its link list
        // through SpatialRegistry::configureLinks.
        spatial_->configure(topology.numRouters, topology.numVaults,
                            topology.numPes, topology.vaultNode);
        if (spatial::activeRegistry() != nullptr)
            nc_warn("a spatial registry is already active; replacing");
        spatial::setActiveRegistry(spatial_.get());
    }

#if NEUROCUBE_TRACE_ENABLED
    if (config.energy) {
        energy_ = std::make_unique<EnergyRegistry>();
        // One node-indexed instance space covers every publisher
        // (PEs, routers, PNGs, and vault channels all carry their
        // mesh-node / channel index).
        energy_->configure(std::max(
            {topology.numRouters, topology.numPes, topology.numVaults}));
        if (energy::activeRegistry() != nullptr)
            nc_warn("an energy registry is already active; replacing");
        energy::setActiveRegistry(energy_.get());
    }
#endif

    // Only pay for event recording when someone consumes the events;
    // a metrics-only session leaves NC_TRACE sites at a null-check.
    if (!sinks_.empty()) {
        if (trace::activeRecorder() != nullptr) {
            nc_warn(
                "a trace session is already active; replacing it");
        }
        trace::setActiveRecorder(&recorder_);
    }

    // Liveness is the point of the stream: drain on a dedicated
    // thread instead of waiting for ring pressure or finish().
    if (streaming)
        recorder_.startConsumerThread();
}

TraceSession::~TraceSession()
{
    // Phase feedback: when both exporters ran, finish the CSV first,
    // segment it, and write the segments into the Chrome trace as the
    // top-level "phases" track before the JSON footer goes out.
    // (recorder_.finish() below calls every sink's finish(); the CSV
    // exporter's is idempotent, so finishing it early is safe.)
    if (chrome_ != nullptr && csv_ != nullptr) {
        recorder_.stopConsumerThread();
        recorder_.drain();
        csv_->finish();
        std::ifstream csv(csvPath_);
        if (csv.is_open()) {
            PhaseDetectorConfig detector;
            detector.windowTicks = windowTicks_;
            detector.numPes = topology_.numPes;
            detector.numPngs = topology_.numVaults;
            detector.numRouters = topology_.numRouters;
            detector.numVaults = topology_.numVaults;
            chrome_->emitPhases(detectPhases(csv, detector));
        }
    }
    recorder_.finish();
    if (trace::activeRecorder() == &recorder_)
        trace::setActiveRecorder(nullptr);
    if (metrics_ && metrics::activeRegistry() == metrics_.get())
        metrics::setActiveRegistry(nullptr);
    if (spatial_ && spatial::activeRegistry() == spatial_.get())
        spatial::setActiveRegistry(nullptr);
#if NEUROCUBE_TRACE_ENABLED
    if (energy_ && energy::activeRegistry() == energy_.get())
        energy::setActiveRegistry(nullptr);
#endif
}

} // namespace neurocube
