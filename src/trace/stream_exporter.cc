#include "trace/stream_exporter.hh"

#include <cstring>
#include <istream>
#include <ostream>

namespace neurocube
{

TraceStreamWriter::TraceStreamWriter(std::ostream &os,
                                     const TraceTopology &topology)
    : os_(os)
{
    TraceStreamHeader header;
    header.numRouters = topology.numRouters;
    header.numPes = topology.numPes;
    header.numVaults = topology.numVaults;
    os_.write(reinterpret_cast<const char *>(&header),
              sizeof(header));
    os_.flush(); // let an attached viewer validate immediately
}

void
TraceStreamWriter::consume(const TraceEvent *events, size_t count)
{
    os_.write(reinterpret_cast<const char *>(events),
              std::streamsize(count * sizeof(TraceEvent)));
    // Flush per batch: the point of the stream is liveness, and
    // batches are already amortized by the ring drain.
    os_.flush();
}

void
TraceStreamWriter::finish()
{
    os_.flush();
}

TraceStreamReader::TraceStreamReader(std::istream &is) : is_(is)
{
    is_.read(reinterpret_cast<char *>(&header_), sizeof(header_));
    valid_ = is_.gcount() == sizeof(header_)
          && std::memcmp(header_.magic, "NCTS", 4) == 0
          && header_.version == 1
          && header_.eventBytes == sizeof(TraceEvent);
}

bool
TraceStreamReader::next(TraceEvent &event)
{
    if (!valid_)
        return false;
    is_.read(reinterpret_cast<char *>(&event), sizeof(event));
    return is_.gcount() == sizeof(event);
}

} // namespace neurocube
