/**
 * @file
 * Spatial observability: per-link, per-vault, and per-PE counters.
 *
 * The stall-attribution metrics (trace/metrics.hh) and the activity
 * energy counts (trace/energy.hh) say *what* a run was bound by; this
 * layer says *where*. Every router-to-router link counts its flit
 * traversals, credit-stall cycles, and source-queue occupancy; every
 * vault channel counts its DRAM bytes and queue-depth integral; every
 * PE counts its active MAC operations. The counters live in a
 * SpatialRegistry owned by the active TraceSession and are published
 * through the NC_SPATIAL_EVENT macro — the same publish/snapshot/
 * delta shape as the other two registries, with the same costs: one
 * array increment while a session is live, a null-check while not,
 * and nothing at all with -DNEUROCUBE_TRACE=OFF.
 *
 * The accounting is observational only: counting never alters
 * component behaviour, so enabling the spatial layer cannot change
 * simulated cycle counts or energy (tests/test_golden_cycles.cc and
 * the bench baselines assert this). Counters are bumped only at
 * action sites — a link traversal attempt, a vault-channel tick, a
 * PE flush — so ticks the event engine proves idle and skips
 * contribute exactly zero, making the counters bit-identical across
 * the Legacy, Event, and ThreadedLanes engines
 * (tests/test_engine_diff.cc asserts this).
 */

#ifndef NEUROCUBE_TRACE_SPATIAL_HH
#define NEUROCUBE_TRACE_SPATIAL_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

#ifndef NEUROCUBE_TRACE_ENABLED
#define NEUROCUBE_TRACE_ENABLED 1
#endif

namespace neurocube
{

/** One kind of spatially resolved activity. */
enum class SpatialCounter : uint8_t
{
    /** Packet transfers over one router-to-router link. */
    LinkFlit = 0,
    /**
     * Cycles one link wanted to move a waiting packet but the
     * downstream input FIFO had no space (credit starvation). At
     * most one per link per executed fabric cycle.
     */
    LinkStall,
    /**
     * Source output-queue depth, summed over executed fabric cycles
     * (an occupancy integral: divide by cycles for the mean queue
     * length feeding the link).
     */
    LinkOccupancy,
    /** Bytes served by one vault channel's DRAM interface. */
    VaultByte,
    /**
     * Read+write queue depth of one vault channel, summed over its
     * executed cycles (divide by cycles for mean queue depth).
     */
    VaultQueue,
    /** MAC operations retired by one PE. */
    PeMac,
    CounterCount,
};

/** One directed router-to-router channel (node endpoints). */
struct SpatialLink
{
    uint16_t src = 0;
    uint16_t dst = 0;
};

/**
 * Shape of the machine the spatial counters describe — everything a
 * consumer needs to fold flat instance indices back onto the mesh.
 * Assembled in two steps: the TraceSession publishes the node/vault/
 * PE extents (from its TraceTopology), and the NocFabric — built
 * after the session — publishes the link list and mesh width.
 */
struct SpatialTopology
{
    /** Mesh nodes (== routers == PEs in every paper configuration). */
    unsigned numNodes = 0;
    /** Mesh side length; 0 for non-mesh (fully connected) fabrics. */
    unsigned meshWidth = 0;
    /** Vault channels. */
    unsigned numVaults = 0;
    /** Processing elements. */
    unsigned numPes = 0;
    /** Directed links, in fabric construction order (== counter
     *  instance order). */
    std::vector<SpatialLink> links;
    /** Vault ordinal -> hosting mesh node (empty = identity). */
    std::vector<uint16_t> vaultNode;
};

/**
 * A copy of every spatial counter at one point in time. Also the
 * storage the live SpatialRegistry mutates. Link counters are
 * indexed by link ordinal (SpatialTopology::links order), vault
 * counters by channel index, PE counters by PE id, and the node
 * injection counters — folded in from the NoC fabric's per-node
 * accounting by Neurocube::spatialSnapshot() — by mesh node.
 */
struct SpatialSnapshot
{
    std::vector<uint64_t> linkFlits;
    std::vector<uint64_t> linkStalls;
    std::vector<uint64_t> linkOccupancy;
    std::vector<uint64_t> vaultBytes;
    std::vector<uint64_t> vaultQueueTicks;
    std::vector<uint64_t> peMacOps;
    /** Lateral / node-local packets injected at each node. */
    std::vector<uint64_t> nodeLateral;
    std::vector<uint64_t> nodeLocal;

    /** True when any counter vector is populated. */
    bool
    valid() const
    {
        return !linkFlits.empty() || !vaultBytes.empty()
            || !peMacOps.empty() || !nodeLateral.empty();
    }

    /** Per-instance counter deltas since @p before. */
    SpatialSnapshot delta(const SpatialSnapshot &before) const;

    /** Accumulate another snapshot's counts (per-layer roll-up). */
    SpatialSnapshot &operator+=(const SpatialSnapshot &other);

    /** Sum of the per-link flit counters. */
    uint64_t totalLinkFlits() const;
    /** Sum of the per-vault byte counters. */
    uint64_t totalVaultBytes() const;
    /** Sum of the per-PE MAC counters. */
    uint64_t totalPeMacOps() const;
};

/**
 * The live spatial counters, owned by the TraceSession and fed by
 * NC_SPATIAL_EVENT. Instances must be sized with configure() /
 * configureLinks() before counting; events for unknown instances are
 * dropped (never undefined behaviour).
 */
class SpatialRegistry
{
  public:
    /**
     * Size the node/vault/PE counter arrays (TraceSession).
     *
     * @param vault_node vault ordinal -> hosting mesh node
     *        (empty = identity attachment)
     */
    void configure(unsigned nodes, unsigned vaults, unsigned pes,
                   std::vector<uint16_t> vault_node = {});

    /**
     * Publish the fabric's link list and size the per-link counter
     * arrays (called by the NocFabric constructor; the fabric is
     * built after the session, so links arrive second).
     *
     * @param mesh_width mesh side length, 0 for non-mesh fabrics
     * @param links directed links in counter-instance order
     */
    void configureLinks(unsigned mesh_width,
                        std::vector<SpatialLink> links);

    /** Count @p amount units of one counter at one instance. */
    void
    add(SpatialCounter counter, unsigned instance, uint64_t amount)
    {
        std::vector<uint64_t> *vec = nullptr;
        switch (counter) {
          case SpatialCounter::LinkFlit:
            vec = &state_.linkFlits;
            break;
          case SpatialCounter::LinkStall:
            vec = &state_.linkStalls;
            break;
          case SpatialCounter::LinkOccupancy:
            vec = &state_.linkOccupancy;
            break;
          case SpatialCounter::VaultByte:
            vec = &state_.vaultBytes;
            break;
          case SpatialCounter::VaultQueue:
            vec = &state_.vaultQueueTicks;
            break;
          case SpatialCounter::PeMac:
            vec = &state_.peMacOps;
            break;
          case SpatialCounter::CounterCount:
            return;
        }
        if (instance < vec->size())
            (*vec)[instance] += amount;
    }

    /** The machine shape the counters describe. */
    const SpatialTopology &topology() const { return topology_; }

    /** The live counters (read-only view). */
    const SpatialSnapshot &state() const { return state_; }

    /** Deep copy of the current counters (node vectors excluded —
     *  the fabric owns those; see Neurocube::spatialSnapshot()). */
    SpatialSnapshot snapshot() const { return state_; }

    /** Zero every counter (instance sizing is kept). */
    void reset();

  private:
    SpatialTopology topology_;
    SpatialSnapshot state_;
};

namespace spatial
{

namespace detail
{
/** Storage behind activeRegistry() (do not touch directly). */
extern SpatialRegistry *g_activeRegistry;
} // namespace detail

/**
 * The process-wide registry NC_SPATIAL_EVENT publishes to, or
 * nullptr while the spatial layer is off (mirrors
 * metrics::activeRegistry()). Inline so the per-event sites reduce
 * to one load + branch.
 */
inline SpatialRegistry *
activeRegistry()
{
    return detail::g_activeRegistry;
}

/** Install (or, with nullptr, remove) the active registry. */
void setActiveRegistry(SpatialRegistry *registry);

} // namespace spatial

/**
 * Serialize one snapshot + topology as a JSON object (no trailing
 * newline): the mesh shape, per-link records with node endpoints,
 * and the vault/PE/node vectors as flat arrays in instance order.
 * Deterministic — fixed field order, integers only — so identical
 * runs produce byte-identical documents. Deliberately avoids the
 * "total_cycles" / "served" / "wall_ms" key names scripts/bench.sh
 * pattern-matches for its baseline gates.
 *
 * @param cycles reference cycles the counters cover (the divisor
 *        for occupancy/queue integrals); 0 when unknown
 */
std::string spatialSnapshotJson(const SpatialTopology &topology,
                                const SpatialSnapshot &snapshot,
                                uint64_t cycles = 0);

/**
 * Restrict a snapshot to one set of mesh nodes (batch-lane
 * attribution): entries outside the set are zeroed, vector sizes are
 * kept, so filtered snapshots of a partition still sum back to the
 * whole. Links are kept when both endpoints are in the set; vaults
 * follow their hosting node (topology.vaultNode, identity when
 * empty); PE and node entries follow their own index.
 */
SpatialSnapshot filterSnapshotToNodes(
    const SpatialTopology &topology, const SpatialSnapshot &snapshot,
    const std::vector<unsigned> &nodes);

} // namespace neurocube

#if NEUROCUBE_TRACE_ENABLED

/**
 * Count spatially resolved activity: NC_SPATIAL_EVENT(counter,
 * instance, amount). Compiles to a null-check while no spatial
 * registry is active and to nothing with -DNEUROCUBE_TRACE=OFF.
 */
#define NC_SPATIAL_EVENT(counter, instance, amount) \
    do { \
        if (::neurocube::SpatialRegistry *nc_spatial_r_ = \
                ::neurocube::spatial::activeRegistry()) { \
            nc_spatial_r_->add((counter), unsigned(instance), \
                               uint64_t(amount)); \
        } \
    } while (0)

#else

namespace neurocube::spatial::detail
{
/** Marks macro arguments as used in NEUROCUBE_TRACE=OFF builds. */
template <typename... Args>
inline void
ignore(Args &&...)
{
}
} // namespace neurocube::spatial::detail

#define NC_SPATIAL_EVENT(counter, instance, amount) \
    do { \
        if (false) { \
            ::neurocube::spatial::detail::ignore( \
                (counter), (instance), (amount)); \
        } \
    } while (0)

#endif // NEUROCUBE_TRACE_ENABLED

#endif // NEUROCUBE_TRACE_SPATIAL_HH
