/**
 * @file
 * Windowed time-series CSV exporter.
 *
 * Aggregates the event stream into fixed windows of windowTicks
 * reference cycles and writes one row per window with the headline
 * utilization metrics of the machine: NoC flits per cycle, packets
 * ejected per cycle and their mean latency, MAC-array utilization,
 * PNG inject-stall ticks, router head-of-line blocked ticks, DRAM
 * bytes per cycle, and per-vault byte counts. Ready for plotting with
 * any spreadsheet/pandas/gnuplot, and consumed by the phase detector
 * (trace/phase_detector.hh) to segment a run into bottleneck phases.
 */

#ifndef NEUROCUBE_TRACE_TIMESERIES_EXPORTER_HH
#define NEUROCUBE_TRACE_TIMESERIES_EXPORTER_HH

#include <cstdint>
#include <vector>

#include "trace/energy.hh"
#include "trace/trace.hh"

namespace neurocube
{

/** Streams recorded events as a windowed utilization CSV. */
class TimeSeriesCsvExporter : public TraceSink
{
  public:
    /**
     * @param os destination stream (kept open until finish())
     * @param topology machine shape (per-vault columns, PE count)
     * @param windowTicks aggregation window in reference ticks
     * @param prices per-event energies backing the avg_power_w
     *        column (an event-stream estimate; see tracePjOf)
     */
    TimeSeriesCsvExporter(std::ostream &os,
                          const TraceTopology &topology,
                          Tick windowTicks,
                          EnergyPrices prices = EnergyPrices{});

    void consume(const TraceEvent *events, size_t count) override;
    void finish() override;

  private:
    void handle(const TraceEvent &event);
    /** Write the current window's row (if it saw any event). */
    void flushWindow();
    void advanceWindow(Tick tick);
    void resetAccumulators();

    std::ostream &os_;
    TraceTopology topology_;
    Tick window_;
    EnergyPrices prices_;
    Tick windowStart_ = 0;
    bool sawEvent_ = false;

    // Per-window accumulators.
    double windowPj_ = 0.0;
    uint64_t linkFlits_ = 0;
    uint64_t ejected_ = 0;
    uint64_t ejectLatencySum_ = 0;
    uint64_t macBusyTicks_ = 0;
    uint64_t pngStallTicks_ = 0;
    uint64_t nocBlockedTicks_ = 0;
    uint64_t dramStallTicks_ = 0;
    std::vector<uint64_t> vaultBits_;
    /** Request-queue depth at window end (level, carried across
     *  windows rather than reset — the queue persists). */
    uint64_t serveQueueDepth_ = 0;
    /** Component-ticks the wake-list engine bulk-skipped. */
    uint64_t skippedTicks_ = 0;
};

} // namespace neurocube

#endif // NEUROCUBE_TRACE_TIMESERIES_EXPORTER_HH
