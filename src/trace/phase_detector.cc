#include "trace/phase_detector.hh"

#include <cstdlib>
#include <iomanip>
#include <istream>
#include <sstream>

namespace neurocube
{

const char *
phaseKindName(PhaseKind kind)
{
    switch (kind) {
      case PhaseKind::Quiescent:
        return "quiescent";
      case PhaseKind::Compute:
        return "compute";
      case PhaseKind::InjectBound:
        return "inject-bound";
      case PhaseKind::DramBound:
        return "dram-bound";
      case PhaseKind::NocBound:
        return "noc-bound";
    }
    return "?";
}

namespace
{

/** Split one CSV line (no quoting in our format). */
std::vector<std::string>
splitCsv(const std::string &line)
{
    std::vector<std::string> cells;
    std::string cell;
    std::istringstream ss(line);
    while (std::getline(ss, cell, ','))
        cells.push_back(cell);
    return cells;
}

/** Index of @p name in @p header, or -1. */
int
columnOf(const std::vector<std::string> &header,
         const std::string &name)
{
    for (size_t i = 0; i < header.size(); ++i) {
        if (header[i] == name)
            return int(i);
    }
    return -1;
}

/** Cell as double; missing/short rows read as 0. */
double
cellAt(const std::vector<std::string> &cells, int column)
{
    if (column < 0 || size_t(column) >= cells.size())
        return 0.0;
    return std::strtod(cells[size_t(column)].c_str(), nullptr);
}

/** Classify one CSV window. */
PhaseKind
classifyWindow(double peUtilPct, double nocFrac, double injectFrac,
               double dramFrac, double activity,
               const PhaseDetectorConfig &config)
{
    if (peUtilPct >= config.computeUtilPct)
        return PhaseKind::Compute;

    // Pick the dominant stall signal; ties resolve in top-down
    // order (NoC blocking explains downstream injection stalls,
    // which in turn mask DRAM behaviour).
    double best = nocFrac;
    PhaseKind kind = PhaseKind::NocBound;
    if (injectFrac > best) {
        best = injectFrac;
        kind = PhaseKind::InjectBound;
    }
    if (dramFrac > best) {
        best = dramFrac;
        kind = PhaseKind::DramBound;
    }
    if (best >= config.stallFloor)
        return kind;

    // No stall signal above the noise floor: the machine is either
    // doing (light) compute or nothing at all.
    if (peUtilPct > 100.0 * config.stallFloor || activity > 0.0)
        return PhaseKind::Compute;
    return PhaseKind::Quiescent;
}

/** Append a window to the segment list, merging when possible. */
void
appendWindow(std::vector<PhaseSegment> &segments, Tick start,
             Tick window, PhaseKind kind)
{
    if (!segments.empty() && segments.back().kind == kind
        && segments.back().endTick == start) {
        segments.back().endTick = start + window;
        ++segments.back().windows;
        return;
    }
    segments.push_back({start, start + window, kind, 1});
}

} // namespace

std::vector<PhaseSegment>
detectPhases(std::istream &csv, const PhaseDetectorConfig &config)
{
    std::vector<PhaseSegment> segments;

    std::string line;
    if (!std::getline(csv, line))
        return segments;
    const auto header = splitCsv(line);

    const int colStart = columnOf(header, "window_start");
    const int colFlits = columnOf(header, "noc_flits_per_cycle");
    const int colPeUtil = columnOf(header, "pe_util_pct");
    const int colPngStall = columnOf(header, "png_stall_ticks");
    const int colNocBlocked = columnOf(header, "noc_blocked_ticks");
    const int colDramStall = columnOf(header, "dram_stall_ticks");
    const int colDramBytes = columnOf(header, "dram_bytes_per_cycle");
    if (colStart < 0 || colPeUtil < 0 || colPngStall < 0
        || colDramStall < 0) {
        return segments; // not a time-series CSV we understand
    }

    const Tick window = config.windowTicks > 0 ? config.windowTicks : 1;
    const double windowD = double(window);
    bool first = true;
    Tick expected = 0;

    while (std::getline(csv, line)) {
        if (line.empty())
            continue;
        const auto cells = splitCsv(line);
        const Tick start = Tick(cellAt(cells, colStart));

        // The exporter skips empty windows entirely; reinstate them
        // as quiescent segments so phases stay contiguous.
        if (!first) {
            for (Tick gap = expected; gap < start; gap += window)
                appendWindow(segments, gap, window,
                             PhaseKind::Quiescent);
        }
        first = false;
        expected = start + window;

        const double injectFrac =
            config.numPngs
                ? cellAt(cells, colPngStall)
                      / (windowD * double(config.numPngs))
                : 0.0;
        const double nocFrac =
            config.numRouters
                ? cellAt(cells, colNocBlocked)
                      / (windowD * double(config.numRouters))
                : 0.0;
        const double dramFrac =
            config.numVaults
                ? cellAt(cells, colDramStall)
                      / (windowD * double(config.numVaults))
                : 0.0;
        const double activity = cellAt(cells, colFlits)
                              + cellAt(cells, colDramBytes);

        appendWindow(segments, start, window,
                     classifyWindow(cellAt(cells, colPeUtil), nocFrac,
                                    injectFrac, dramFrac, activity,
                                    config));
    }
    return segments;
}

std::string
phaseReport(const std::vector<PhaseSegment> &segments)
{
    std::ostringstream os;
    for (const PhaseSegment &s : segments) {
        os << "  [" << s.startTick << ", " << s.endTick << ") "
           << phaseKindName(s.kind) << " (" << s.windows
           << (s.windows == 1 ? " window)" : " windows)") << "\n";
    }
    return os.str();
}

std::vector<PhaseEnergy>
joinPhaseEnergy(const std::vector<PhaseSegment> &segments,
                std::istream &csv,
                const PhaseDetectorConfig &config)
{
    std::vector<PhaseEnergy> phases;
    phases.reserve(segments.size());
    for (const PhaseSegment &s : segments)
        phases.push_back({s, 0.0, 0.0});
    if (phases.empty())
        return phases;

    std::string line;
    if (std::getline(csv, line)) {
        const auto header = splitCsv(line);
        const int colStart = columnOf(header, "window_start");
        const int colPower = columnOf(header, "avg_power_w");
        const Tick window =
            config.windowTicks > 0 ? config.windowTicks : 1;
        const double window_s = double(window) / referenceClockHz;
        size_t seg = 0;
        while (colStart >= 0 && colPower >= 0
               && std::getline(csv, line)) {
            if (line.empty())
                continue;
            const auto cells = splitCsv(line);
            const Tick start = Tick(cellAt(cells, colStart));
            // Segments and CSV rows are both time-ordered, so one
            // forward cursor joins them.
            while (seg < phases.size()
                   && phases[seg].segment.endTick <= start)
                ++seg;
            if (seg >= phases.size())
                break;
            if (start >= phases[seg].segment.startTick)
                phases[seg].joules +=
                    cellAt(cells, colPower) * window_s;
        }
    }
    for (PhaseEnergy &p : phases) {
        const Tick ticks = p.segment.endTick - p.segment.startTick;
        p.avgPowerW = ticks > 0
            ? p.joules / (double(ticks) / referenceClockHz)
            : 0.0;
    }
    return phases;
}

std::string
phaseEnergyJson(const std::vector<PhaseEnergy> &phases,
                Tick windowTicks)
{
    auto num = [](double value) {
        std::ostringstream ns;
        if (!(value == value) || value > 1e300 || value < -1e300)
            value = 0.0;
        ns << std::setprecision(12) << value;
        return ns.str();
    };
    std::ostringstream os;
    os << "{\"window_ticks\": " << windowTicks << ", \"segments\": [";
    for (size_t i = 0; i < phases.size(); ++i) {
        const PhaseEnergy &p = phases[i];
        os << (i ? ", " : "") << "{\"kind\": \""
           << phaseKindName(p.segment.kind)
           << "\", \"start\": " << p.segment.startTick
           << ", \"end\": " << p.segment.endTick << ", \"ticks\": "
           << (p.segment.endTick - p.segment.startTick)
           << ", \"windows\": " << p.segment.windows
           << ", \"joules\": " << num(p.joules)
           << ", \"avg_power_w\": " << num(p.avgPowerW) << "}";
    }
    os << "]}";
    return os.str();
}

} // namespace neurocube
