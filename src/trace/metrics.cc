#include "trace/metrics.hh"

#include <algorithm>

namespace neurocube
{

const char *
stallClassName(StallClass cls)
{
    switch (cls) {
      case StallClass::Busy:
        return "busy";
      case StallClass::Idle:
        return "idle";
      case StallClass::StallDram:
        return "stall_dram";
      case StallClass::StallNocCredit:
        return "stall_noc_credit";
      case StallClass::StallInject:
        return "stall_inject";
      case StallClass::StallCache:
        return "stall_cache";
      case StallClass::StallClassCount:
        break;
    }
    return "?";
}

MetricsSnapshot
MetricsSnapshot::delta(const MetricsSnapshot &before) const
{
    MetricsSnapshot d;
    for (size_t c = 0; c < comps.size(); ++c) {
        const auto &now = comps[c];
        const auto &then = before.comps[c];
        d.comps[c].resize(now.size());
        for (size_t i = 0; i < now.size(); ++i) {
            d.comps[c][i] = i < then.size() ? now[i] - then[i]
                                            : now[i];
        }
    }
    return d;
}

void
MetricsRegistry::configure(unsigned routers, unsigned pes,
                           unsigned pngs, unsigned vaults)
{
    state_.comps[size_t(TraceComponent::Router)].assign(routers, {});
    state_.comps[size_t(TraceComponent::Pe)].assign(pes, {});
    state_.comps[size_t(TraceComponent::Png)].assign(pngs, {});
    state_.comps[size_t(TraceComponent::Vault)].assign(vaults, {});
}

void
MetricsRegistry::reset()
{
    for (auto &vec : state_.comps)
        std::fill(vec.begin(), vec.end(), StallBreakdown{});
}

namespace metrics::detail
{

/** The process-wide registry slot NC_METRIC_CYCLE loads. */
MetricsRegistry *g_activeRegistry = nullptr;

} // namespace metrics::detail

namespace
{

/** True when @p nodes is null or contains @p instance. */
bool
selected(const std::vector<unsigned> *nodes, size_t instance)
{
    if (nodes == nullptr)
        return true;
    return std::find(nodes->begin(), nodes->end(),
                     unsigned(instance)) != nodes->end();
}

/** Sum the breakdowns of one component class (node-filtered). */
StallBreakdown
sumComponent(const MetricsSnapshot &delta, TraceComponent c,
             const std::vector<unsigned> *nodes)
{
    StallBreakdown sum;
    const auto &vec = delta.of(c);
    for (size_t i = 0; i < vec.size(); ++i) {
        if (selected(nodes, i))
            sum += vec[i];
    }
    return sum;
}

/** Fraction of a breakdown's cycles spent in one class. */
double
frac(const StallBreakdown &b, StallClass cls)
{
    uint64_t total = b.total();
    return total ? double(b[cls]) / double(total) : 0.0;
}

// Top-down decision thresholds (fractions of component cycles).
constexpr double kMacBusyBound = 0.45;
constexpr double kCacheBound = 0.30;
constexpr double kNocBlockedBound = 0.15;
constexpr double kInjectBound = 0.15;
constexpr double kDramBound = 0.25;
constexpr double kIdleFloor = 0.05;

} // namespace

namespace metrics
{

void
setActiveRegistry(MetricsRegistry *registry)
{
    detail::g_activeRegistry = registry;
}

} // namespace metrics

BottleneckReport
buildBottleneckReport(const MetricsSnapshot &delta,
                      const std::vector<unsigned> *nodes)
{
    BottleneckReport report;

    StallBreakdown machine;
    for (size_t c = 0; c < delta.comps.size(); ++c) {
        StallBreakdown comp = sumComponent(
            delta, TraceComponent(c), nodes);
        machine += comp;
        uint64_t total = comp.total();
        for (size_t s = 0; s < numStallClasses; ++s) {
            report.componentFractions[c][s] =
                total ? double(comp.ticks[s]) / double(total) : 0.0;
        }
    }

    report.countedTicks = machine.total();
    if (report.countedTicks == 0)
        return report; // valid stays false: nothing was counted
    for (size_t s = 0; s < numStallClasses; ++s) {
        report.fractions[s] = double(machine.ticks[s])
                            / double(report.countedTicks);
    }

    StallBreakdown pe =
        sumComponent(delta, TraceComponent::Pe, nodes);
    StallBreakdown router =
        sumComponent(delta, TraceComponent::Router, nodes);
    StallBreakdown png =
        sumComponent(delta, TraceComponent::Png, nodes);
    StallBreakdown vault =
        sumComponent(delta, TraceComponent::Vault, nodes);

    report.peBusy = frac(pe, StallClass::Busy);
    report.peStallCache = frac(pe, StallClass::StallCache);
    report.routerBlocked = frac(router, StallClass::StallNocCredit);
    report.pngInjectStall = frac(png, StallClass::StallInject);
    report.dramPressure = frac(vault, StallClass::Busy)
                        + frac(vault, StallClass::StallDram);
    report.vaultBackpressure =
        frac(vault, StallClass::StallNocCredit);

    double png_dram = frac(png, StallClass::StallDram);

    // Top-down: each rule only fires when the levels above it did
    // not explain the cycles (see the header comment).
    if (report.peBusy >= kMacBusyBound) {
        report.label = "mac";
    } else if (report.peStallCache >= kCacheBound) {
        report.label = "cache";
    } else if (report.routerBlocked >= kNocBlockedBound
               || report.vaultBackpressure + report.routerBlocked
                      >= 2.0 * kNocBlockedBound) {
        report.label = "noc";
    } else if (report.pngInjectStall >= kInjectBound) {
        report.label = "inject";
    } else if (report.dramPressure >= kDramBound
               || png_dram >= kDramBound) {
        report.label = "dram";
    } else {
        // Nothing dominant: pick the largest signal, or idle.
        struct Candidate
        {
            const char *label;
            double score;
        };
        Candidate candidates[] = {
            {"mac", report.peBusy},
            {"cache", report.peStallCache},
            {"noc", report.routerBlocked + report.vaultBackpressure},
            {"inject", report.pngInjectStall},
            {"dram", std::max(report.dramPressure, png_dram)},
        };
        const Candidate *best = &candidates[0];
        for (const Candidate &c : candidates) {
            if (c.score > best->score)
                best = &c;
        }
        report.label = best->score >= kIdleFloor ? best->label
                                                 : "idle";
    }

    report.valid = true;
    return report;
}

} // namespace neurocube
