#include "trace/spatial.hh"

#include <sstream>

namespace neurocube
{

namespace
{

/** Element-wise a - b (b empty = zeros; sizes otherwise match). */
std::vector<uint64_t>
subtract(const std::vector<uint64_t> &a,
         const std::vector<uint64_t> &b)
{
    std::vector<uint64_t> d(a.size(), 0);
    for (size_t i = 0; i < a.size(); ++i)
        d[i] = a[i] - (i < b.size() ? b[i] : 0);
    return d;
}

/** Element-wise a += b (a grows to fit). */
void
accumulate(std::vector<uint64_t> &a, const std::vector<uint64_t> &b)
{
    if (a.size() < b.size())
        a.resize(b.size(), 0);
    for (size_t i = 0; i < b.size(); ++i)
        a[i] += b[i];
}

uint64_t
sumOf(const std::vector<uint64_t> &v)
{
    uint64_t total = 0;
    for (uint64_t x : v)
        total += x;
    return total;
}

void
appendArray(std::ostringstream &os, const char *name,
            const std::vector<uint64_t> &v)
{
    os << "\"" << name << "\": [";
    for (size_t i = 0; i < v.size(); ++i)
        os << (i ? ", " : "") << v[i];
    os << "]";
}

} // namespace

SpatialSnapshot
SpatialSnapshot::delta(const SpatialSnapshot &before) const
{
    SpatialSnapshot d;
    d.linkFlits = subtract(linkFlits, before.linkFlits);
    d.linkStalls = subtract(linkStalls, before.linkStalls);
    d.linkOccupancy = subtract(linkOccupancy, before.linkOccupancy);
    d.vaultBytes = subtract(vaultBytes, before.vaultBytes);
    d.vaultQueueTicks =
        subtract(vaultQueueTicks, before.vaultQueueTicks);
    d.peMacOps = subtract(peMacOps, before.peMacOps);
    d.nodeLateral = subtract(nodeLateral, before.nodeLateral);
    d.nodeLocal = subtract(nodeLocal, before.nodeLocal);
    return d;
}

SpatialSnapshot &
SpatialSnapshot::operator+=(const SpatialSnapshot &other)
{
    accumulate(linkFlits, other.linkFlits);
    accumulate(linkStalls, other.linkStalls);
    accumulate(linkOccupancy, other.linkOccupancy);
    accumulate(vaultBytes, other.vaultBytes);
    accumulate(vaultQueueTicks, other.vaultQueueTicks);
    accumulate(peMacOps, other.peMacOps);
    accumulate(nodeLateral, other.nodeLateral);
    accumulate(nodeLocal, other.nodeLocal);
    return *this;
}

uint64_t
SpatialSnapshot::totalLinkFlits() const
{
    return sumOf(linkFlits);
}

uint64_t
SpatialSnapshot::totalVaultBytes() const
{
    return sumOf(vaultBytes);
}

uint64_t
SpatialSnapshot::totalPeMacOps() const
{
    return sumOf(peMacOps);
}

void
SpatialRegistry::configure(unsigned nodes, unsigned vaults,
                           unsigned pes,
                           std::vector<uint16_t> vault_node)
{
    topology_.numNodes = nodes;
    topology_.numVaults = vaults;
    topology_.numPes = pes;
    topology_.vaultNode = std::move(vault_node);
    state_.vaultBytes.assign(vaults, 0);
    state_.vaultQueueTicks.assign(vaults, 0);
    state_.peMacOps.assign(pes, 0);
}

void
SpatialRegistry::configureLinks(unsigned mesh_width,
                                std::vector<SpatialLink> links)
{
    topology_.meshWidth = mesh_width;
    topology_.links = std::move(links);
    state_.linkFlits.assign(topology_.links.size(), 0);
    state_.linkStalls.assign(topology_.links.size(), 0);
    state_.linkOccupancy.assign(topology_.links.size(), 0);
}

void
SpatialRegistry::reset()
{
    auto zero = [](std::vector<uint64_t> &v) {
        v.assign(v.size(), 0);
    };
    zero(state_.linkFlits);
    zero(state_.linkStalls);
    zero(state_.linkOccupancy);
    zero(state_.vaultBytes);
    zero(state_.vaultQueueTicks);
    zero(state_.peMacOps);
}

namespace spatial
{

namespace detail
{

/** The process-wide registry slot NC_SPATIAL_EVENT loads. */
SpatialRegistry *g_activeRegistry = nullptr;

} // namespace detail

void
setActiveRegistry(SpatialRegistry *registry)
{
    detail::g_activeRegistry = registry;
}

} // namespace spatial

std::string
spatialSnapshotJson(const SpatialTopology &topology,
                    const SpatialSnapshot &snapshot, uint64_t cycles)
{
    std::ostringstream os;
    os << "{\"nodes\": " << topology.numNodes
       << ", \"mesh_width\": " << topology.meshWidth
       << ", \"vaults\": " << topology.numVaults
       << ", \"pes\": " << topology.numPes
       << ", \"cycles\": " << cycles;
    os << ", \"vault_node\": [";
    for (size_t i = 0; i < topology.vaultNode.size(); ++i)
        os << (i ? ", " : "") << topology.vaultNode[i];
    os << "]";

    os << ", \"links\": [";
    const size_t links = topology.links.size();
    for (size_t i = 0; i < links; ++i) {
        auto at = [&](const std::vector<uint64_t> &v) {
            return i < v.size() ? v[i] : 0;
        };
        os << (i ? ", " : "") << "{\"src\": " << topology.links[i].src
           << ", \"dst\": " << topology.links[i].dst
           << ", \"flits\": " << at(snapshot.linkFlits)
           << ", \"credit_stalls\": " << at(snapshot.linkStalls)
           << ", \"occupancy_sum\": " << at(snapshot.linkOccupancy)
           << "}";
    }
    os << "]";

    os << ", ";
    appendArray(os, "vault_bytes", snapshot.vaultBytes);
    os << ", ";
    appendArray(os, "vault_queue_ticks", snapshot.vaultQueueTicks);
    os << ", ";
    appendArray(os, "pe_mac_ops", snapshot.peMacOps);
    os << ", ";
    appendArray(os, "node_lateral", snapshot.nodeLateral);
    os << ", ";
    appendArray(os, "node_local", snapshot.nodeLocal);

    os << ", \"link_flit_sum\": " << snapshot.totalLinkFlits()
       << ", \"vault_byte_sum\": " << snapshot.totalVaultBytes()
       << ", \"pe_mac_sum\": " << snapshot.totalPeMacOps() << "}";
    return os.str();
}

SpatialSnapshot
filterSnapshotToNodes(const SpatialTopology &topology,
                      const SpatialSnapshot &snapshot,
                      const std::vector<unsigned> &nodes)
{
    auto selected = [&nodes](unsigned node) {
        for (unsigned n : nodes) {
            if (n == node)
                return true;
        }
        return false;
    };
    auto by_index = [&selected](const std::vector<uint64_t> &v) {
        std::vector<uint64_t> out(v.size(), 0);
        for (size_t i = 0; i < v.size(); ++i) {
            if (selected(unsigned(i)))
                out[i] = v[i];
        }
        return out;
    };
    auto by_link = [&](const std::vector<uint64_t> &v) {
        std::vector<uint64_t> out(v.size(), 0);
        for (size_t i = 0; i < v.size(); ++i) {
            if (i < topology.links.size()
                && selected(topology.links[i].src)
                && selected(topology.links[i].dst)) {
                out[i] = v[i];
            }
        }
        return out;
    };
    auto by_vault = [&](const std::vector<uint64_t> &v) {
        std::vector<uint64_t> out(v.size(), 0);
        for (size_t i = 0; i < v.size(); ++i) {
            unsigned host = i < topology.vaultNode.size()
                                ? topology.vaultNode[i]
                                : unsigned(i);
            if (selected(host))
                out[i] = v[i];
        }
        return out;
    };
    SpatialSnapshot f;
    f.linkFlits = by_link(snapshot.linkFlits);
    f.linkStalls = by_link(snapshot.linkStalls);
    f.linkOccupancy = by_link(snapshot.linkOccupancy);
    f.vaultBytes = by_vault(snapshot.vaultBytes);
    f.vaultQueueTicks = by_vault(snapshot.vaultQueueTicks);
    f.peMacOps = by_index(snapshot.peMacOps);
    f.nodeLateral = by_index(snapshot.nodeLateral);
    f.nodeLocal = by_index(snapshot.nodeLocal);
    return f;
}

} // namespace neurocube
