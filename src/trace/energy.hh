/**
 * @file
 * Activity-based energy accounting: per-event counters and prices.
 *
 * Every simulated component publishes its energy-bearing activity
 * (MAC operations, operand-cache accesses, buffer writes, flit hops,
 * DRAM bits, ...) through the NC_ENERGY_EVENT macro into an
 * EnergyRegistry owned by the active TraceSession — the same
 * publish/snapshot/delta shape as the stall-attribution metrics in
 * trace/metrics.hh. Counting is a single array increment; pricing
 * (counts x pJ) happens at report time in power/activity_energy.hh,
 * so the same raw counts can be priced at either technology node.
 *
 * The accounting is observational only: recording an event never
 * alters component behaviour, so enabling energy accounting cannot
 * change simulated cycle counts (tests/test_golden_cycles.cc
 * asserts this). With -DNEUROCUBE_TRACE=OFF the macro compiles to
 * nothing and no EnergyRegistry is ever created.
 */

#ifndef NEUROCUBE_TRACE_ENERGY_HH
#define NEUROCUBE_TRACE_ENERGY_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "trace/events.hh"

#ifndef NEUROCUBE_TRACE_ENABLED
#define NEUROCUBE_TRACE_ENABLED 1
#endif

namespace neurocube
{

/**
 * One kind of energy-bearing activity. Each kind is published by
 * exactly one component class, so a single node-indexed counter
 * table serves the whole machine.
 */
enum class EnergyEventKind : uint8_t
{
    /** MAC operations executed (PE; one multiply + accumulate). */
    MacOp = 0,
    /** Operand-cache entries scanned or extracted (PE SRAM read). */
    CacheRead,
    /** Operand-cache entries parked (PE SRAM write). */
    CacheWrite,
    /** Temporal-buffer stagings (PE; one state or weight slot). */
    BufferAccess,
    /** Weight-register reads (PE local weight supply). */
    WeightRegRead,
    /** Flits switched through a router crossbar. */
    NocHop,
    /** Flit-segments crossing router-to-router links: each traversal
     *  counts the link's Manhattan length in grid hops, so long
     *  fully-connected channels cost proportionally more than mesh
     *  neighbour links (which count 1). */
    NocLink,
    /** PNG transactions: element reads issued + write-backs absorbed. */
    PngOp,
    /** Vault-controller word transactions (command/address path). */
    VaultXact,
    /** Bits moved over a DRAM interface. */
    DramBit,
    KindCount,
};

/** Number of energy event kinds (array dimension). */
constexpr size_t numEnergyEventKinds =
    size_t(EnergyEventKind::KindCount);

/** Snake-case label of a kind ("mac_op", "dram_bit", ...). */
const char *energyEventKindName(EnergyEventKind kind);

/** Raw activity counts, one slot per kind. */
struct EnergyCounts
{
    /**
     * False when no energy accounting was active for the interval
     * the counts describe (counts are then meaningless zeros).
     */
    bool valid = false;

    std::array<uint64_t, numEnergyEventKinds> n{};

    uint64_t
    operator[](EnergyEventKind kind) const
    {
        return n[size_t(kind)];
    }

    EnergyCounts &
    operator+=(const EnergyCounts &other)
    {
        for (size_t i = 0; i < numEnergyEventKinds; ++i)
            n[i] += other.n[i];
        valid = valid || other.valid;
        return *this;
    }
};

/**
 * A copy of every instance's counters at one point in time. Also the
 * storage the live EnergyRegistry mutates. Instances are node-indexed
 * (PE id, router id, PNG node, channel index — batching requires the
 * identity vault attachment, so one index space covers them all).
 */
struct EnergySnapshot
{
    std::vector<EnergyCounts> instances;

    /** Per-instance counter deltas since @p before. */
    EnergySnapshot delta(const EnergySnapshot &before) const;

    /**
     * Sum counts over instances, restricted to @p nodes when non-null
     * (per-lane attribution). valid iff any instance exists.
     */
    EnergyCounts sum(const std::vector<unsigned> *nodes = nullptr) const;
};

/**
 * The live activity counters, owned by the TraceSession and fed by
 * NC_ENERGY_EVENT. Instances must be sized with configure() before
 * counting; events for unknown instances are dropped (never
 * undefined behaviour).
 */
class EnergyRegistry
{
  public:
    /** Size the per-instance counter array (nodes on the mesh). */
    void configure(unsigned instances);

    /** Count @p amount units of one kind at one instance. */
    void
    add(EnergyEventKind kind, unsigned instance, uint64_t amount)
    {
        auto &vec = state_.instances;
        if (instance < vec.size())
            vec[instance].n[size_t(kind)] += amount;
    }

    /** The live counters (read-only view). */
    const EnergySnapshot &state() const { return state_; }

    /** Deep copy of the current counters. */
    EnergySnapshot snapshot() const { return state_; }

    /** Zero every counter (instance sizing is kept). */
    void reset();

  private:
    EnergySnapshot state_;
};

namespace energy
{

/**
 * The process-wide registry NC_ENERGY_EVENT publishes to, or nullptr
 * while energy accounting is off (mirrors metrics::activeRegistry()).
 */
EnergyRegistry *activeRegistry();

/** Install (or, with nullptr, remove) the active registry. */
void setActiveRegistry(EnergyRegistry *registry);

} // namespace energy

/**
 * Per-event energy prices in picojoules, the flat plain-data form
 * the trace-layer exporters consume (power-over-time tracks). The
 * defaults are the 15 nm Table II derivation; ActivityEnergyModel
 * (power/activity_energy.hh) re-derives them from the PowerModel
 * seeds for either node — tests/test_energy.cc asserts the defaults
 * stay in sync with the 15 nm model.
 */
struct EnergyPrices
{
    /** One MAC op: MAC dynamic power / MAC clock (Table II row). */
    double macOpPj = 9.17e-3 / 320e6 * 1e12;
    /** One operand-cache entry read or written (SRAM row). */
    double cacheAccessPj = 2.90e-2 / 5.12e9 * 1e12;
    /** One temporal-buffer staging. */
    double bufferAccessPj = 2.05e-5 / 5.12e9 * 1e12;
    /** One weight-register read. */
    double weightRegPj = 1.44e-4 / 5.12e9 * 1e12;
    /** One crossbar hop (70% of the router row's per-flit energy). */
    double nocHopPj = 0.7 * 3.59e-2 / 5.12e9 * 1e12;
    /** One unit-distance link segment (the remaining 30% of the
     *  router row's per-flit energy: link drivers). Link traversals
     *  are counted in Manhattan grid hops, so a fully-connected
     *  channel spanning d grid cells pays d of these. */
    double nocLinkPj = 0.3 * 3.59e-2 / 5.12e9 * 1e12;
    /** One PNG transaction (PMC row). */
    double pngOpPj = 1.39e-3 / 5.12e9 * 1e12;
    /**
     * One vault-controller transaction: a 32-bit command/address
     * word through the logic die at its pJ/bit.
     */
    double vaultXactPj = 6.78 * 0.5 * 32.0;
    /** One data bit through the HMC logic die (6.78 pJ/bit, x0.5
     *  15 nm logic scaling — Table I / Section VII). */
    double vaultLogicPjPerBit = 6.78 * 0.5;
    /** One bit moved at the DRAM dies (Table I). */
    double dramPjPerBit = 3.7;
};

/**
 * Price one trace event in pJ — the window-power estimate the
 * exporters use for the CSV avg_power_w column and the Chrome
 * power.W counter track. This prices the event *stream*, which sees
 * slightly less than the registry (temporal-buffer and weight-
 * register accesses publish no trace events); the exact per-layer
 * accounting is the EnergyRegistry path.
 */
double tracePjOf(const TraceEvent &event, const EnergyPrices &prices);

} // namespace neurocube

#if NEUROCUBE_TRACE_ENABLED

/**
 * Count energy-bearing activity: NC_ENERGY_EVENT(kind, instance,
 * amount). Compiles to a null-check while energy accounting is
 * inactive and to nothing with -DNEUROCUBE_TRACE=OFF.
 */
#define NC_ENERGY_EVENT(kind, instance, amount) \
    do { \
        if (::neurocube::EnergyRegistry *nc_energy_r_ = \
                ::neurocube::energy::activeRegistry()) { \
            nc_energy_r_->add((kind), unsigned(instance), \
                              uint64_t(amount)); \
        } \
    } while (0)

#else

namespace neurocube::energy::detail
{
/** Marks macro arguments as used in NEUROCUBE_TRACE=OFF builds. */
template <typename... Args>
inline void
ignore(Args &&...)
{
}
} // namespace neurocube::energy::detail

#define NC_ENERGY_EVENT(kind, instance, amount) \
    do { \
        if (false) { \
            ::neurocube::energy::detail::ignore( \
                (kind), (instance), (amount)); \
        } \
    } while (0)

#endif // NEUROCUBE_TRACE_ENABLED

#endif // NEUROCUBE_TRACE_ENERGY_HH
