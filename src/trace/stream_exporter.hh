/**
 * @file
 * Live trace stream: a compact binary sink for attaching a viewer to
 * a running simulation, plus the matching reader.
 *
 * The writer emits one fixed-size header followed by raw TraceEvent
 * records (24 bytes each, host byte order — the stream is meant for
 * a viewer on the same machine, typically the other end of a FIFO).
 * Pointed at a named pipe via TraceConfig::streamPath, the events are
 * drained continuously by the recorder's consumer thread, so a viewer
 * sees them while the simulation is still running instead of after
 * finish().
 */

#ifndef NEUROCUBE_TRACE_STREAM_EXPORTER_HH
#define NEUROCUBE_TRACE_STREAM_EXPORTER_HH

#include <cstdint>
#include <iosfwd>

#include "trace/trace.hh"

namespace neurocube
{

/** Fixed-size preamble of a binary trace stream. */
struct TraceStreamHeader
{
    /** "NCTS" (Neurocube trace stream). */
    char magic[4] = {'N', 'C', 'T', 'S'};
    /** Format version; bumped on any layout change. */
    uint32_t version = 1;
    /** sizeof(TraceEvent) at the writer (reader sanity check). */
    uint32_t eventBytes = uint32_t(sizeof(TraceEvent));
    /** Machine shape, so a viewer can lay out tracks. */
    uint32_t numRouters = 0;
    uint32_t numPes = 0;
    uint32_t numVaults = 0;
};

static_assert(sizeof(TraceStreamHeader) == 24,
              "keep the stream header compact and padding-free");

/** Sink writing the binary live-stream format. */
class TraceStreamWriter : public TraceSink
{
  public:
    /**
     * Writes the header immediately.
     *
     * @param os destination stream (regular file or FIFO)
     * @param topology machine shape recorded in the header
     */
    TraceStreamWriter(std::ostream &os,
                      const TraceTopology &topology);

    void consume(const TraceEvent *events, size_t count) override;
    void finish() override;

  private:
    std::ostream &os_;
};

/** Incremental reader of the binary live-stream format. */
class TraceStreamReader
{
  public:
    /** Reads and validates the header. */
    explicit TraceStreamReader(std::istream &is);

    /** True when the header was well formed. */
    bool valid() const { return valid_; }

    /** The stream header (meaningful only when valid()). */
    const TraceStreamHeader &header() const { return header_; }

    /**
     * Read the next event; returns false at end of stream.
     *
     * @param event receives the record
     */
    bool next(TraceEvent &event);

  private:
    std::istream &is_;
    TraceStreamHeader header_;
    bool valid_ = false;
};

} // namespace neurocube

#endif // NEUROCUBE_TRACE_STREAM_EXPORTER_HH
