#include "trace/report.hh"

#include <sstream>

namespace neurocube
{

namespace
{

/** Escape a string for a JSON literal embedded in a <script> data
 *  block; '<' is emitted as a \u escape so a "script" close tag can
 *  never appear inside the block. */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    for (char c : s) {
        if (c == '<') {
            out += "\\u003c";
            continue;
        }
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    return out;
}

/** Escape a string for HTML text content. */
std::string
htmlEscape(const std::string &s)
{
    std::string out;
    for (char c : s) {
        switch (c) {
          case '&':
            out += "&amp;";
            break;
          case '<':
            out += "&lt;";
            break;
          case '>':
            out += "&gt;";
            break;
          default:
            out += c;
        }
    }
    return out;
}

/** Emit one run's documents as a JSON object field set. */
void
appendRun(std::ostringstream &os, const ReportRun &run)
{
    auto field = [&os](const char *name, const std::string &json,
                       bool first = false) {
        if (!first)
            os << ",";
        os << "\"" << name
           << "\":" << (json.empty() ? "null" : json);
    };
    os << "{\"name\":\"" << jsonEscape(run.name) << "\"";
    field("manifest", run.manifestJson);
    field("metrics", run.metricsJson);
    field("energy", run.energyJson);
    field("spatial", run.spatialJson);
    field("phases", run.phasesJson);
    os << "}";
}

/** Everything before the embedded data (up to the title). */
const char *const kHead = R"NCHTML(<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>)NCHTML";

/** Between the title and the data block. */
const char *const kStyle = R"NCHTML(</title>
<style>
body { font: 14px/1.45 system-ui, sans-serif; margin: 0 auto;
       max-width: 1080px; padding: 16px 24px 64px; color: #222; }
h1 { font-size: 22px; border-bottom: 2px solid #444;
     padding-bottom: 6px; }
h2 { font-size: 18px; margin-top: 40px; border-bottom: 1px solid
     #bbb; padding-bottom: 4px; }
h3 { font-size: 15px; margin: 20px 0 8px; }
table { border-collapse: collapse; font-size: 13px; }
td, th { border: 1px solid #ccc; padding: 3px 8px;
         text-align: left; }
th { background: #f2f2f2; }
.grids { display: flex; flex-wrap: wrap; gap: 24px; }
.heat { display: inline-block; }
.heat .cells { display: grid; gap: 2px; }
.heat .cell { width: 46px; height: 34px; display: flex;
              align-items: center; justify-content: center;
              font-size: 11px; border-radius: 2px;
              background: #f0f2f5; }
.heat .cap { font-size: 12px; color: #555; margin-top: 4px; }
.bar { display: flex; height: 18px; width: 420px;
       border: 1px solid #aaa; margin: 2px 0; }
.bar div { height: 100%; }
.row { display: flex; align-items: center; gap: 8px;
       font-size: 13px; }
.row .lbl { width: 140px; text-align: right; overflow: hidden;
            white-space: nowrap; text-overflow: ellipsis; }
.legend { font-size: 12px; color: #444; margin: 6px 0; }
.legend span { display: inline-block; margin-right: 12px; }
.legend i { display: inline-block; width: 10px; height: 10px;
            margin-right: 4px; border-radius: 2px; }
.note { font-size: 12px; color: #666; }
svg { background: #fcfcfd; border: 1px solid #ddd; }
</style>
</head>
<body>
<div id="root"></div>
<script id="nc-data" type="application/json">)NCHTML";

/** Everything after the data block: the renderer. */
const char *const kScript = R"NCHTML(</script>
<script>
"use strict";
const DATA = JSON.parse(
    document.getElementById("nc-data").textContent);
const root = document.getElementById("root");

const STALL_COLORS = { busy: "#4caf50", idle: "#b0bec5",
    stall_dram: "#e91e63", stall_noc_credit: "#ff9800",
    stall_inject: "#3f51b5", stall_cache: "#00bcd4" };
const ENERGY_COLORS = { mac: "#4caf50", sram: "#00bcd4",
    buffers: "#8bc34a", noc: "#ff9800", png: "#3f51b5",
    vault_logic: "#9c27b0", dram: "#e91e63" };

function h(tag, attrs, ...children) {
    const e = document.createElement(tag);
    for (const k in (attrs || {})) {
        if (k === "text") e.textContent = attrs[k];
        else e.setAttribute(k, attrs[k]);
    }
    for (const c of children) e.appendChild(c);
    return e;
}
function svgEl(tag, attrs) {
    const e = document.createElementNS(
        "http://www.w3.org/2000/svg", tag);
    for (const k in (attrs || {})) e.setAttribute(k, attrs[k]);
    return e;
}
function fmt(v) {
    if (v === null || v === undefined) return "-";
    if (typeof v !== "number") return String(v);
    const a = Math.abs(v);
    if (a >= 1e9) return (v / 1e9).toFixed(1) + "G";
    if (a >= 1e6) return (v / 1e6).toFixed(1) + "M";
    if (a >= 1e4) return (v / 1e3).toFixed(1) + "k";
    if (Number.isInteger(v)) return String(v);
    return a >= 0.01 || a === 0 ? v.toFixed(3) : v.toExponential(2);
}

// --- heatmap: values laid out on a cols-wide grid -----------------
function heatmap(title, values, cols) {
    const max = Math.max(1, ...values);
    const box = h("div", { class: "heat" });
    const cells = h("div", { class: "cells",
        style: "grid-template-columns: repeat(" + cols
               + ", 46px);" });
    values.forEach(function (v, i) {
        const cell = h("div", { class: "cell", text: fmt(v),
            title: "#" + i + ": " + v });
        cell.style.background =
            "rgba(211, 47, 47, " + (v / max * 0.85).toFixed(3) + ")";
        if (v / max > 0.55) cell.style.color = "#fff";
        cells.appendChild(cell);
    });
    box.appendChild(cells);
    box.appendChild(h("div", { class: "cap",
        text: title + " (max " + fmt(max) + ")" }));
    return box;
}

// --- link traffic map: mesh nodes + per-link flit/stall lines -----
function linkMap(sp) {
    const n = sp.nodes || 0;
    const cols = sp.mesh_width > 0 ? sp.mesh_width
               : Math.ceil(Math.sqrt(n));
    const step = 90, pad = 50;
    const size = pad * 2 + step * (cols - 1);
    const svg = svgEl("svg", { width: size, height: size });
    const pos = function (node) {
        return [pad + (node % cols) * step,
                pad + Math.floor(node / cols) * step];
    };
    const maxFlits = Math.max(1, ...sp.links.map(l => l.flits));
    const maxStall = Math.max(1,
        ...sp.links.map(l => l.credit_stalls));
    sp.links.forEach(function (l) {
        const a = pos(l.src), b = pos(l.dst);
        // Offset each direction sideways so both are visible.
        const dx = b[0] - a[0], dy = b[1] - a[1];
        const len = Math.max(1, Math.hypot(dx, dy));
        const ox = -dy / len * 5, oy = dx / len * 5;
        const heat = l.credit_stalls / maxStall;
        const line = svgEl("line", {
            x1: a[0] + ox, y1: a[1] + oy,
            x2: b[0] + ox, y2: b[1] + oy,
            stroke: heat > 0.01
                ? "rgb(211," + Math.round(160 - 113 * heat) + ","
                  + Math.round(160 - 113 * heat) + ")"
                : "#78909c",
            "stroke-width": (0.75 + 6 * l.flits / maxFlits)
                .toFixed(2),
            "stroke-linecap": "round" });
        line.appendChild(svgEl("title"));
        line.firstChild.textContent = l.src + " -> " + l.dst
            + ": " + l.flits + " flits, " + l.credit_stalls
            + " credit stalls, occupancy sum " + l.occupancy_sum;
        svg.appendChild(line);
    });
    for (let i = 0; i < n; ++i) {
        const p = pos(i);
        svg.appendChild(svgEl("circle", { cx: p[0], cy: p[1],
            r: 13, fill: "#eceff1", stroke: "#546e7a" }));
        const t = svgEl("text", { x: p[0], y: p[1] + 4,
            "text-anchor": "middle", "font-size": "11" });
        t.textContent = i;
        svg.appendChild(t);
    }
    return svg;
}

// --- roofline scatter (log-log) -----------------------------------
function roofline(layers) {
    const pts = layers.filter(l => l.roofline
        && l.roofline.mac_per_cycle > 0
        && l.roofline.intensity > 0);
    if (!pts.length) return null;
    const macCeil = pts[0].roofline.mac_ceiling;
    const bwCeil = pts[0].roofline.bytes_ceiling;
    const W = 560, H = 330, L = 55, B = 35, T = 15, R = 15;
    const xs = pts.map(p => p.roofline.intensity);
    const x0 = Math.min(0.05, ...xs) / 2;
    const x1 = Math.max(macCeil / bwCeil * 8, ...xs) * 2;
    const y1 = macCeil * 2;
    const y0 = Math.min(y1 / 1e4,
        ...pts.map(p => p.roofline.mac_per_cycle)) / 2;
    const X = v => L + (Math.log10(v) - Math.log10(x0))
        / (Math.log10(x1) - Math.log10(x0)) * (W - L - R);
    const Y = v => H - B - (Math.log10(v) - Math.log10(y0))
        / (Math.log10(y1) - Math.log10(y0)) * (H - B - T);
    const svg = svgEl("svg", { width: W, height: H });
    // Bandwidth roof: y = x * bwCeil, clipped at the MAC roof.
    const ridge = macCeil / bwCeil;
    svg.appendChild(svgEl("line", { x1: X(x0), y1: Y(x0 * bwCeil),
        x2: X(ridge), y2: Y(macCeil), stroke: "#e91e63",
        "stroke-width": 2 }));
    svg.appendChild(svgEl("line", { x1: X(ridge), y1: Y(macCeil),
        x2: X(x1), y2: Y(macCeil), stroke: "#4caf50",
        "stroke-width": 2 }));
    const cap = function (x, y, text, fill) {
        const t = svgEl("text", { x: x, y: y, "font-size": "11",
            fill: fill });
        t.textContent = text;
        svg.appendChild(t);
    };
    cap(X(ridge) + 6, Y(macCeil) - 6,
        "MAC roof " + fmt(macCeil) + "/cyc", "#2e7d32");
    cap(X(x0) + 6, Y(x0 * bwCeil) - 8,
        "DRAM roof " + fmt(bwCeil) + " B/cyc", "#c2185b");
    // Axes.
    svg.appendChild(svgEl("line", { x1: L, y1: H - B, x2: W - R,
        y2: H - B, stroke: "#555" }));
    svg.appendChild(svgEl("line", { x1: L, y1: T, x2: L, y2: H - B,
        stroke: "#555" }));
    cap(W / 2 - 70, H - 8, "MACs per DRAM byte (log)", "#333");
    const yl = svgEl("text", { x: 12, y: H / 2,
        "font-size": "11", fill: "#333",
        transform: "rotate(-90 12 " + H / 2 + ")" });
    yl.textContent = "MACs / cycle (log)";
    svg.appendChild(yl);
    pts.forEach(function (p) {
        const r = p.roofline;
        const c = svgEl("circle", { cx: X(r.intensity),
            cy: Y(r.mac_per_cycle), r: 5,
            fill: r.bound === "mac" ? "#4caf50"
                : r.bound === "dram" ? "#e91e63" : "#ff9800",
            stroke: "#333" });
        c.appendChild(svgEl("title"));
        c.firstChild.textContent = p.name + ": "
            + fmt(r.mac_per_cycle) + " MAC/cyc of "
            + fmt(r.mac_ceiling) + ", " + fmt(r.bytes_per_cycle)
            + " B/cyc of " + fmt(r.bytes_ceiling) + ", bound: "
            + r.bound;
        svg.appendChild(c);
        cap(X(r.intensity) + 7, Y(r.mac_per_cycle) + 4, p.name,
            "#333");
    });
    return svg;
}

// --- stacked fraction bars ----------------------------------------
function stackedBar(fractions, colors) {
    const bar = h("div", { class: "bar" });
    for (const k in fractions) {
        const f = fractions[k];
        if (!(f > 0)) continue;
        const seg = h("div", { title: k + ": "
            + (100 * f).toFixed(1) + "%" });
        seg.style.width = (100 * f).toFixed(2) + "%";
        seg.style.background = colors[k] || "#9e9e9e";
        bar.appendChild(seg);
    }
    return bar;
}
function legend(colors) {
    const box = h("div", { class: "legend" });
    for (const k in colors) {
        const item = h("span");
        const sw = h("i");
        sw.style.background = colors[k];
        item.appendChild(sw);
        item.appendChild(document.createTextNode(k));
        box.appendChild(item);
    }
    return box;
}

// --- tables -------------------------------------------------------
function kvTable(obj) {
    const t = h("table");
    for (const k in obj) {
        const v = obj[k];
        t.appendChild(h("tr", {},
            h("th", { text: k }),
            h("td", { text: typeof v === "object" && v !== null
                ? JSON.stringify(v) : fmt(v) })));
    }
    return t;
}

function render() {
    root.appendChild(h("h1", { text: DATA.title }));
    DATA.runs.forEach(function (run) {
        root.appendChild(h("h2", { text: run.name }));

        if (run.manifest) {
            root.appendChild(h("h3", { text: "Run manifest" }));
            root.appendChild(kvTable(run.manifest));
        }

        const sp = run.spatial && run.spatial.aggregate
            ? run.spatial.aggregate : run.spatial;
        const spLayers = run.spatial && run.spatial.layers
            ? run.spatial.layers : [];

        if (spLayers.length) {
            const rl = roofline(spLayers);
            if (rl) {
                root.appendChild(h("h3",
                    { text: "Roofline attribution (per layer)" }));
                root.appendChild(rl);
            }
        }

        if (sp && sp.links && sp.links.length) {
            root.appendChild(h("h3",
                { text: "NoC link traffic (width = flits, red = "
                        + "credit stalls)" }));
            root.appendChild(linkMap(sp));
        }
        if (sp) {
            root.appendChild(h("h3", { text: "Spatial heatmaps" }));
            const grids = h("div", { class: "grids" });
            const cols = sp.mesh_width > 0 ? sp.mesh_width
                : Math.ceil(Math.sqrt(sp.nodes || 1));
            const add = function (title, values) {
                if (values && values.length && values.some(v => v))
                    grids.appendChild(heatmap(title, values, cols));
            };
            add("PE MAC ops", sp.pe_mac_ops);
            add("lateral injections", sp.node_lateral);
            add("local injections", sp.node_local);
            add("vault DRAM bytes", sp.vault_bytes);
            add("vault queue-depth sum", sp.vault_queue_ticks);
            grids.appendChild(h("div", { class: "note",
                text: "cells are mesh nodes (row-major); vault "
                      + "counters are in channel order, hosted at "
                      + "nodes [" + (sp.vault_node || [])
                      + "]" }));
            root.appendChild(grids);
        }

        if (run.metrics && run.metrics.layers) {
            root.appendChild(h("h3",
                { text: "Per-layer stall breakdown" }));
            root.appendChild(legend(STALL_COLORS));
            run.metrics.layers.forEach(function (l) {
                if (!l.bottleneck) return;
                const row = h("div", { class: "row" });
                row.appendChild(h("div", { class: "lbl",
                    text: l.name + " [" + l.bottleneck.label
                          + "]" }));
                row.appendChild(stackedBar(l.bottleneck.fractions,
                    STALL_COLORS));
                root.appendChild(row);
            });
        }

        if (run.energy && run.energy.valid) {
            root.appendChild(h("h3", { text: "Energy breakdown ("
                + fmt(run.energy.total_j) + " J total, "
                + fmt(run.energy.avg_power_w) + " W avg)" }));
            root.appendChild(legend(ENERGY_COLORS));
            const comp = run.energy.components;
            let sum = 0;
            for (const k in comp) sum += comp[k];
            const norm = {};
            for (const k in comp) norm[k] = comp[k] / (sum || 1);
            const row = h("div", { class: "row" });
            row.appendChild(h("div", { class: "lbl",
                text: "dynamic" }));
            row.appendChild(stackedBar(norm, ENERGY_COLORS));
            root.appendChild(row);
            if (run.energy.static_j !== undefined) {
                root.appendChild(h("div", { class: "note",
                    text: "dynamic " + fmt(run.energy.dynamic_j)
                        + " J + static/leakage "
                        + fmt(run.energy.static_j) + " J ("
                        + fmt(run.energy.static_power_w)
                        + " W held for the run)" }));
            }
        }

        if (run.phases && run.phases.segments
            && run.phases.segments.length) {
            root.appendChild(h("h3",
                { text: "Per-phase energy rollup" }));
            const t = h("table", {},
                h("tr", {}, h("th", { text: "phase" }),
                    h("th", { text: "start" }),
                    h("th", { text: "end" }),
                    h("th", { text: "ticks" }),
                    h("th", { text: "joules" }),
                    h("th", { text: "avg W" })));
            run.phases.segments.forEach(function (s) {
                t.appendChild(h("tr", {},
                    h("td", { text: s.kind }),
                    h("td", { text: fmt(s.start) }),
                    h("td", { text: fmt(s.end) }),
                    h("td", { text: fmt(s.ticks) }),
                    h("td", { text: fmt(s.joules) }),
                    h("td", { text: fmt(s.avg_power_w) })));
            });
            root.appendChild(t);
        }
    });
}
render();
</script>
</body>
</html>
)NCHTML";

} // namespace

std::string
renderRunReport(const std::string &title,
                const std::vector<ReportRun> &runs)
{
    std::ostringstream os;
    os << kHead << htmlEscape(title) << kStyle;
    os << "{\"title\":\"" << jsonEscape(title) << "\",\"runs\":[";
    for (size_t i = 0; i < runs.size(); ++i) {
        if (i)
            os << ",";
        appendRun(os, runs[i]);
    }
    os << "]}" << kScript;
    return os.str();
}

} // namespace neurocube
