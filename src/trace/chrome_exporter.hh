/**
 * @file
 * Chrome-trace / Perfetto JSON exporter.
 *
 * Writes the Trace Event Format understood by chrome://tracing and
 * https://ui.perfetto.dev: one "process" per component instance
 * (router3, pe5, vault2, ...) named through metadata events, so each
 * component gets its own track group.
 *
 * Event mapping:
 *  - MAC bursts and PNG FSM phases become duration ("X") slices;
 *  - rare events (cache overflows, row activations, search stalls)
 *    become instants ("i");
 *  - high-frequency events (flit movement, queue depths, DRAM words)
 *    are aggregated into counter ("C") tracks sampled once per
 *    window, keeping the JSON loadable even for long runs. One tick
 *    is exported as one microsecond of trace time.
 */

#ifndef NEUROCUBE_TRACE_CHROME_EXPORTER_HH
#define NEUROCUBE_TRACE_CHROME_EXPORTER_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "trace/energy.hh"
#include "trace/phase_detector.hh"
#include "trace/trace.hh"

namespace neurocube
{

/** Streams recorded events as Chrome trace JSON. */
class ChromeTraceExporter : public TraceSink
{
  public:
    /**
     * @param os destination stream (kept open until finish())
     * @param topology machine shape (track pre-registration)
     * @param windowTicks counter-track sampling period
     * @param prices per-event energies backing the power.W track
     */
    ChromeTraceExporter(std::ostream &os,
                        const TraceTopology &topology,
                        Tick windowTicks,
                        EnergyPrices prices = EnergyPrices{});

    void consume(const TraceEvent *events, size_t count) override;
    void finish() override;

    /**
     * Write detected run phases as a top-level "phases" annotation
     * track: one named slice per segment. Call after the run's
     * events are consumed and before finish() (the TraceSession
     * destructor does this with the segments detectPhases() finds
     * in the finished timeseries CSV).
     */
    void emitPhases(const std::vector<PhaseSegment> &segments);

    /** Synthetic pid of a component instance's track. */
    static uint32_t trackPid(TraceComponent component,
                             uint16_t instance);

    /** Pid of the top-level phase annotation track. */
    static constexpr uint32_t phasesPid = 5000;

    /** Pid of the serving request-span track (one slice per served
     *  request, from arrival to completion). */
    static constexpr uint32_t requestsPid = 5001;

  private:
    /** How a counter series combines events within one window. */
    enum class AggMode
    {
        /** Sampled level: export the last value seen. */
        Last,
        /** Event count/volume: export the sum. */
        Sum,
        /** Export the mean of the recorded values. */
        Mean,
    };

    /** One counter series between window flushes. */
    struct CounterAgg
    {
        AggMode mode = AggMode::Last;
        double value = 0.0;
        uint64_t samples = 0;
        bool dirty = false;
    };

    void handle(const TraceEvent &event);
    void bumpCounter(uint32_t pid, const std::string &name,
                     AggMode mode, double value);
    /** Emit dirty counters for the window starting at windowStart_. */
    void flushWindow();
    /** Advance the window so it contains @p tick. */
    void advanceWindow(Tick tick);

    void emitPrelude();
    void emitMeta(uint32_t pid, const std::string &name);
    void emitComma();
    void emitCounter(uint32_t pid, const std::string &name, Tick ts,
                     double value);
    void emitInstant(uint32_t pid, const char *name, Tick ts,
                     uint64_t value);
    void emitSlice(uint32_t pid, const char *name, Tick ts, Tick dur,
                   const std::string &args);

    std::ostream &os_;
    TraceTopology topology_;
    Tick window_;
    EnergyPrices prices_;
    Tick windowStart_ = 0;
    Tick lastTick_ = 0;
    bool firstEvent_ = true;
    /** Energy priced into the current window, pJ. */
    double windowPj_ = 0.0;
    /** True once any event carried energy (enables the power.W
     *  track, which then reports 0 in quiet windows). */
    bool sawEnergy_ = false;

    std::map<std::pair<uint32_t, std::string>, CounterAgg> counters_;

    /** Open PNG FSM phase slice per vault instance. */
    struct OpenPhase
    {
        bool open = false;
        PngFsmPhase phase = PngFsmPhase::Idle;
        Tick since = 0;
        uint64_t plane = 0;
    };
    std::vector<OpenPhase> pngPhase_;
    /** Mesh node -> vault ordinal (kNoVault = node hosts none). PNG
     *  events carry the hosting node as their instance. */
    static constexpr uint16_t kNoVault = 0xffff;
    std::vector<uint16_t> vaultOf_;
};

} // namespace neurocube

#endif // NEUROCUBE_TRACE_CHROME_EXPORTER_HH
