/**
 * @file
 * Stall-attribution metrics: cheap per-component cycle accounting.
 *
 * Every ticked component (router, PE, PNG, memory channel) classifies
 * each of its cycles into one StallClass through the NC_METRIC_CYCLE
 * macro. The counters live in a MetricsRegistry owned by the active
 * TraceSession; with no session (or with -DNEUROCUBE_TRACE=OFF, which
 * compiles the macro away) the accounting costs nothing.
 *
 * Unlike the event bus in trace/trace.hh, which records *what
 * happened*, this layer answers *where the cycles went*: snapshots
 * taken around a layer yield a per-layer (or per-lane) delta, and
 * buildBottleneckReport() turns that delta into a top-down bottleneck
 * classification — the paper's Fig. 12/15 question of whether a layer
 * is bound by MAC throughput, PNG injection, DRAM service, or NoC
 * saturation.
 *
 * The accounting is observational only: classifying a cycle never
 * alters component behaviour, so enabling metrics cannot change
 * simulated cycle counts (tests/test_golden_cycles.cc asserts this).
 */

#ifndef NEUROCUBE_TRACE_METRICS_HH
#define NEUROCUBE_TRACE_METRICS_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "trace/events.hh"

#ifndef NEUROCUBE_TRACE_ENABLED
#define NEUROCUBE_TRACE_ENABLED 1
#endif

namespace neurocube
{

/**
 * What one component cycle was spent on. Exactly one class per
 * component per tick, so per-component class counts always sum to the
 * number of ticks the component was advanced.
 */
enum class StallClass : uint8_t
{
    /** Doing useful work (switching, MAC-busy, serving a word...). */
    Busy = 0,
    /** Nothing to do (no pass, queues empty, waiting downstream). */
    Idle,
    /** Waiting on DRAM service (activation, burst gap, bandwidth). */
    StallDram,
    /** Blocked on NoC credits / backpressure from the network side. */
    StallNocCredit,
    /**
     * Starved or blocked at an injection/delivery port: a PNG with
     * packets ready but no port capacity, or a PE waiting for
     * operands to arrive.
     */
    StallInject,
    /** Delayed by an operand-cache sub-bank search. */
    StallCache,
    StallClassCount,
};

/** Number of stall classes (array dimension). */
constexpr size_t numStallClasses = size_t(StallClass::StallClassCount);

/** Snake-case label of a stall class ("busy", "stall_dram", ...). */
const char *stallClassName(StallClass cls);

/** Per-component cycle counts, one slot per stall class. */
struct StallBreakdown
{
    std::array<uint64_t, numStallClasses> ticks{};

    /** Total classified cycles. */
    uint64_t
    total() const
    {
        uint64_t sum = 0;
        for (uint64_t t : ticks)
            sum += t;
        return sum;
    }

    /** Cycles spent in one class. */
    uint64_t
    operator[](StallClass cls) const
    {
        return ticks[size_t(cls)];
    }

    StallBreakdown &
    operator+=(const StallBreakdown &other)
    {
        for (size_t i = 0; i < numStallClasses; ++i)
            ticks[i] += other.ticks[i];
        return *this;
    }

    /** Counter delta (counts are monotone, so this never wraps). */
    StallBreakdown
    operator-(const StallBreakdown &other) const
    {
        StallBreakdown d;
        for (size_t i = 0; i < numStallClasses; ++i)
            d.ticks[i] = ticks[i] - other.ticks[i];
        return d;
    }
};

/**
 * A copy of every component's counters at one point in time. Also the
 * storage the live MetricsRegistry mutates. Indexed by component
 * class, then instance.
 */
struct MetricsSnapshot
{
    std::array<std::vector<StallBreakdown>,
               size_t(TraceComponent::ComponentCount)>
        comps;

    /** Counters of one component class. */
    const std::vector<StallBreakdown> &
    of(TraceComponent c) const
    {
        return comps[size_t(c)];
    }

    /** Per-instance counter deltas since @p before. */
    MetricsSnapshot delta(const MetricsSnapshot &before) const;
};

/**
 * The live cycle-accounting counters, owned by the TraceSession and
 * fed by NC_METRIC_CYCLE. Instances must be sized with configure()
 * before counting; cycles reported for unknown instances are dropped
 * (never undefined behaviour).
 */
class MetricsRegistry
{
  public:
    /** Size the per-instance counter arrays. */
    void configure(unsigned routers, unsigned pes, unsigned pngs,
                   unsigned vaults);

    /** Classify one cycle of one component instance. */
    void
    cycle(TraceComponent component, unsigned instance, StallClass cls)
    {
        auto &vec = state_.comps[size_t(component)];
        if (instance < vec.size())
            ++vec[instance].ticks[size_t(cls)];
    }

    /**
     * Classify @p n identical cycles in one update (the event engine
     * accounting for a skipped idle/stall stretch in bulk; exactly
     * equivalent to n cycle() calls).
     */
    void
    cycles(TraceComponent component, unsigned instance, StallClass cls,
           uint64_t n)
    {
        auto &vec = state_.comps[size_t(component)];
        if (instance < vec.size())
            vec[instance].ticks[size_t(cls)] += n;
    }

    /** The live counters (read-only view). */
    const MetricsSnapshot &state() const { return state_; }

    /** Deep copy of the current counters. */
    MetricsSnapshot snapshot() const { return state_; }

    /** Zero every counter (instance sizing is kept). */
    void reset();

  private:
    MetricsSnapshot state_;
};

namespace metrics
{

namespace detail
{
/** Storage behind activeRegistry() (do not touch directly). */
extern MetricsRegistry *g_activeRegistry;
} // namespace detail

/**
 * The process-wide registry NC_METRIC_CYCLE publishes to, or nullptr
 * while metrics are off (mirrors trace::activeRecorder()). Inline so
 * the per-tick instrumentation sites reduce to one load + branch.
 */
inline MetricsRegistry *
activeRegistry()
{
    return detail::g_activeRegistry;
}

/** Install (or, with nullptr, remove) the active registry. */
void setActiveRegistry(MetricsRegistry *registry);

} // namespace metrics

/** Five-number summary of one Histogram (for reports/JSON). */
struct HistogramSummary
{
    uint64_t count = 0;
    double mean = 0.0;
    double p50 = 0.0;
    double p99 = 0.0;
    uint64_t max = 0;
};

/**
 * Per-layer (or per-lane) bottleneck attribution derived from a
 * metrics delta. `fractions` is the machine-level breakdown over
 * every classified component-cycle in the delta and sums to 1 (when
 * countedTicks > 0); `componentFractions` gives the same breakdown
 * per component class.
 */
struct BottleneckReport
{
    /** False when no metrics were recorded (report is meaningless). */
    bool valid = false;

    /**
     * Dominant bottleneck: "mac" (compute-bound), "cache" (operand
     * cache searches), "noc" (network saturation), "inject" (PNG
     * injection port), "dram" (memory service), or "idle".
     */
    const char *label = "n/a";

    /** Machine-level cycle fractions per stall class (sum ~ 1.0). */
    std::array<double, numStallClasses> fractions{};

    /**
     * Per component class (router/pe/png/vault, indexed by
     * TraceComponent) cycle fractions per stall class.
     */
    std::array<std::array<double, numStallClasses>,
               size_t(TraceComponent::ComponentCount)>
        componentFractions{};

    /** Component-cycles classified in this delta. */
    uint64_t countedTicks = 0;

    // Signals the top-down classifier decided on (for reports).
    /** PE busy fraction (MAC array utilization). */
    double peBusy = 0.0;
    /** PE cycles delayed by sub-bank searches. */
    double peStallCache = 0.0;
    /** Router cycles with a head-of-line blocked input. */
    double routerBlocked = 0.0;
    /** PNG cycles with packets ready but no injection capacity. */
    double pngInjectStall = 0.0;
    /** Vault cycles busy or stalled on DRAM timing. */
    double dramPressure = 0.0;
    /** Vault cycles stalled on downstream (NoC-side) backpressure. */
    double vaultBackpressure = 0.0;

    // Distribution summaries, filled by the machine (cumulative to
    // the end of the layer; see Neurocube::runSingleLayer).
    HistogramSummary nocLatency;
    HistogramSummary dramQueueResidency;
    HistogramSummary peCacheOccupancy;
    HistogramSummary pngOutQueueDepth;
};

/**
 * Top-down bottleneck classification of a metrics delta.
 *
 * The decision order mirrors top-down CPU analysis: compute
 * saturation first ("mac"), then the operand-cache search penalty
 * ("cache"), then network congestion ("noc" — head-of-line blocking
 * inside routers explains downstream injection stalls, so it is
 * checked before "inject"), then the PNG injection port ("inject"),
 * then DRAM service ("dram"), falling back to the largest stall
 * fraction or "idle".
 *
 * @param delta counter delta covering the interval of interest
 * @param nodes when non-null, restrict to these node indices (per-
 *        lane attribution; router/PE/PNG/vault instances are node-
 *        indexed)
 */
BottleneckReport
buildBottleneckReport(const MetricsSnapshot &delta,
                      const std::vector<unsigned> *nodes = nullptr);

} // namespace neurocube

#if NEUROCUBE_TRACE_ENABLED

/**
 * Classify one component cycle: NC_METRIC_CYCLE(component, instance,
 * stallClass). Compiles to a null-check while metrics are inactive
 * and to nothing with -DNEUROCUBE_TRACE=OFF.
 */
#define NC_METRIC_CYCLE(component, instance, cls) \
    do { \
        if (::neurocube::MetricsRegistry *nc_metric_r_ = \
                ::neurocube::metrics::activeRegistry()) { \
            nc_metric_r_->cycle((component), unsigned(instance), \
                                (cls)); \
        } \
    } while (0)

/**
 * Classify @p n identical component cycles at once (bulk accounting
 * for skipped stretches): NC_METRIC_CYCLES(component, instance,
 * stallClass, n).
 */
#define NC_METRIC_CYCLES(component, instance, cls, n) \
    do { \
        if (::neurocube::MetricsRegistry *nc_metric_r_ = \
                ::neurocube::metrics::activeRegistry()) { \
            nc_metric_r_->cycles((component), unsigned(instance), \
                                 (cls), (n)); \
        } \
    } while (0)

#else

namespace neurocube::metrics::detail
{
/** Marks macro arguments as used in NEUROCUBE_TRACE=OFF builds. */
template <typename... Args>
inline void
ignore(Args &&...)
{
}
} // namespace neurocube::metrics::detail

#define NC_METRIC_CYCLE(component, instance, cls) \
    do { \
        if (false) { \
            ::neurocube::metrics::detail::ignore( \
                (component), (instance), (cls)); \
        } \
    } while (0)

#define NC_METRIC_CYCLES(component, instance, cls, n) \
    do { \
        if (false) { \
            ::neurocube::metrics::detail::ignore( \
                (component), (instance), (cls), (n)); \
        } \
    } while (0)

#endif // NEUROCUBE_TRACE_ENABLED

#endif // NEUROCUBE_TRACE_METRICS_HH
