#include "trace/timeseries_exporter.hh"

#include <ostream>

#include "common/logging.hh"

namespace neurocube
{

TimeSeriesCsvExporter::TimeSeriesCsvExporter(
    std::ostream &os, const TraceTopology &topology, Tick windowTicks,
    EnergyPrices prices)
    : os_(os), topology_(topology),
      window_(windowTicks > 0 ? windowTicks : 1), prices_(prices),
      vaultBits_(topology.numVaults, 0)
{
    os_ << "window_start,noc_flits_per_cycle,ejected_per_cycle,"
           "mean_eject_latency,pe_util_pct,png_stall_ticks,"
           "noc_blocked_ticks,dram_stall_ticks,dram_bytes_per_cycle,"
           "avg_power_w,serve_queue_depth,skipped_ticks";
    for (unsigned v = 0; v < topology_.numVaults; ++v)
        os_ << ",vault" << v << "_bytes";
    os_ << "\n";
}

void
TimeSeriesCsvExporter::resetAccumulators()
{
    windowPj_ = 0.0;
    linkFlits_ = 0;
    ejected_ = 0;
    ejectLatencySum_ = 0;
    macBusyTicks_ = 0;
    pngStallTicks_ = 0;
    nocBlockedTicks_ = 0;
    dramStallTicks_ = 0;
    skippedTicks_ = 0;
    vaultBits_.assign(topology_.numVaults, 0);
    sawEvent_ = false;
}

void
TimeSeriesCsvExporter::flushWindow()
{
    if (!sawEvent_)
        return;

    uint64_t total_bits = 0;
    for (uint64_t bits : vaultBits_)
        total_bits += bits;

    const double w = double(window_);
    const double pe_ticks = w * double(topology_.numPes);
    const double mean_latency =
        ejected_ ? double(ejectLatencySum_) / double(ejected_) : 0.0;

    os_ << windowStart_ << ',' << double(linkFlits_) / w << ','
        << double(ejected_) / w << ',' << mean_latency << ','
        << (pe_ticks > 0.0 ? 100.0 * double(macBusyTicks_) / pe_ticks
                           : 0.0)
        << ',' << pngStallTicks_ << ',' << nocBlockedTicks_ << ','
        << dramStallTicks_ << ',' << double(total_bits) / 8.0 / w
        << ',' << windowPj_ * 1e-12 * referenceClockHz / w << ','
        << serveQueueDepth_ << ',' << skippedTicks_;
    for (uint64_t bits : vaultBits_)
        os_ << ',' << bits / 8;
    os_ << "\n";

    resetAccumulators();
}

void
TimeSeriesCsvExporter::advanceWindow(Tick tick)
{
    if (tick < windowStart_ + window_)
        return;
    flushWindow();
    windowStart_ = tick - (tick % window_);
}

void
TimeSeriesCsvExporter::handle(const TraceEvent &event)
{
    advanceWindow(event.tick);
    windowPj_ += tracePjOf(event, prices_);
    switch (event.type) {
      case TraceEventType::LinkFlit:
        ++linkFlits_;
        break;
      case TraceEventType::PacketEject:
        ++ejected_;
        ejectLatencySum_ += event.value;
        break;
      case TraceEventType::MacBusy:
        // Flushes within one PE never overlap (the next flush waits
        // numMacs ticks), so summing durations gives PE-busy ticks.
        macBusyTicks_ += event.value;
        break;
      case TraceEventType::PngInjectStall:
        ++pngStallTicks_;
        break;
      case TraceEventType::FlitBlocked:
        ++nocBlockedTicks_;
        break;
      case TraceEventType::DramStall:
        ++dramStallTicks_;
        break;
      case TraceEventType::DramWord:
        if (event.instance < vaultBits_.size())
            vaultBits_[event.instance] += event.value;
        break;
      case TraceEventType::ServeQueueDepth:
        serveQueueDepth_ = event.value;
        break;
      case TraceEventType::EngineSkip:
        skippedTicks_ += event.value;
        break;
      default:
        break;
    }
    sawEvent_ = true;
}

void
TimeSeriesCsvExporter::consume(const TraceEvent *events, size_t count)
{
    for (size_t i = 0; i < count; ++i)
        handle(events[i]);
}

void
TimeSeriesCsvExporter::finish()
{
    flushWindow();
    os_.flush();
}

} // namespace neurocube
