/**
 * @file
 * Self-contained HTML run reports.
 *
 * Renders the machine-readable documents the rest of the stack
 * already produces — run manifests, per-layer bottleneck metrics,
 * activity-energy breakdowns, spatial heatmap exports, per-phase
 * energy rollups — into one dependency-free HTML file: the data is
 * embedded as JSON and a small inline vanilla-JS renderer draws mesh
 * heatmaps (CSS grid), a link-traffic map and a roofline scatter
 * (inline SVG), stacked stall/energy bars, and the manifest table.
 * No external scripts, stylesheets, fonts, or network access — the
 * file opens anywhere, forever.
 *
 * The inputs are pre-serialized JSON strings, so this layer needs no
 * knowledge of (and no link dependency on) the core result types: it
 * lives in nc_trace, below nc_core and nc_power. Output is byte-
 * deterministic: a fixed template plus the caller's JSON, nothing
 * time- or host-dependent (scripts/check.sh smoke-tests this).
 */

#ifndef NEUROCUBE_TRACE_REPORT_HH
#define NEUROCUBE_TRACE_REPORT_HH

#include <string>
#include <vector>

namespace neurocube
{

/**
 * One run's documents, all optional (empty string = section
 * omitted). Each non-empty field must hold a complete JSON value.
 */
struct ReportRun
{
    /** Run name (section heading). */
    std::string name;
    /** runManifestJson / servingManifestJson document. */
    std::string manifestJson;
    /** RunResult::metricsJson document (per-layer bottlenecks). */
    std::string metricsJson;
    /** RunResult::energyJson document. */
    std::string energyJson;
    /** RunResult::spatialJson / spatialSnapshotJson document. */
    std::string spatialJson;
    /** phaseEnergyJson document (per-phase energy rollup). */
    std::string phasesJson;
};

/**
 * Render one self-contained HTML report (the complete file
 * contents, ready to write out).
 *
 * @param title report title (bench name)
 * @param runs one section per run, in the given order
 */
std::string renderRunReport(const std::string &title,
                            const std::vector<ReportRun> &runs);

} // namespace neurocube

#endif // NEUROCUBE_TRACE_REPORT_HH
