#include "power/energy_model.hh"

#include <cmath>

namespace neurocube
{

EnergyReport
accountEnergy(const RunResult &run, const PowerModel &model,
              double dram_pj_per_bit)
{
    EnergyReport report;
    double clock_hz = model.throughputClockGhz() * 1e9;
    report.seconds = double(run.totalCycles()) / clock_hz;
    report.computeJ = model.computePowerW() * report.seconds;
    report.logicDieJ = model.hmcLogicDiePowerW() * report.seconds;
    uint64_t bits = 0;
    for (const LayerResult &layer : run.layers)
        bits += layer.dramBits;
    report.dramJ = double(bits) * dram_pj_per_bit * 1e-12;
    return report;
}

FloorplanReport
buildFloorplan(const PowerModel &model, double vc_mm2)
{
    FloorplanReport report;

    // Vault-controller area synthesized in 28 nm [24]; the 15 nm
    // design scales area with the Table II PE ratio.
    double vc = vc_mm2;
    if (model.node() == TechNode::Nm15) {
        PowerModel m28(TechNode::Nm28);
        vc *= model.peAreaMm2() / m28.peAreaMm2();
    }

    // 116 TSVs per core at 4 um pitch, 2 um diameter (Section VII).
    double tsv_mm2 = 116.0 * (4e-3 * 4e-3);

    CoreTile tile;
    tile.peRouterMm2 = model.peAreaMm2();
    tile.vaultControllerMm2 = vc;
    tile.tsvMm2 = tsv_mm2;
    tile.utilization = 0.70; // placement utilization of Fig. 16
    // The paper's 513 um x 513 um tile holds the PE + router at 70%
    // utilization; the vault controller (with its TSV array in the
    // middle) sits beside it.
    tile.edgeUm =
        std::sqrt(tile.peRouterMm2 / tile.utilization) * 1e3;

    report.tile = tile;
    report.coresMm2 = 16.0
        * (tile.peRouterMm2 / tile.utilization
           + tile.vaultControllerMm2 + tile.tsvMm2);
    report.fits = report.coresMm2 <= report.dieBudgetMm2;
    return report;
}

} // namespace neurocube
