#include "power/power_model.hh"

#include "common/logging.hh"
#include "dram/dram_params.hh"

namespace neurocube
{

const char *
techNodeName(TechNode node)
{
    return node == TechNode::Nm28 ? "28nm" : "15nm";
}

namespace
{

/** HMC logic-die access energy, pJ/bit (Jeddeloh & Keeth 2012). */
constexpr double baseLogicDiePjPerBit = 6.78;
/** HMC DRAM access energy, pJ/bit. */
constexpr double baseDramPjPerBit = 3.7;
/** Logic-die energy scaling from 28 nm to 15 nm (ITRS factors). */
constexpr double logicEnergyScale15 = 0.5;

} // namespace

PowerModel::PowerModel(TechNode node, unsigned num_pes)
    : node_(node), numPes_(num_pes)
{
    // Table II per-block values. MAC rows are per unit (16 per PE).
    if (node == TechNode::Nm28) {
        blocks_ = {
            {"MAC", 16, 18.75, 3.02e-4, 0.0011, 16},
            {"SRAM Cache (2.5KB)", 20480, 300, 2.93e-3, 0.0873, 1},
            {"Temporal Buffer", 512, 300, 2.70e-5, 0.0025, 1},
            {"PMC", 0, 300, 4.17e-4, 0.0081, 1},
            {"Weight Reg", 3600, 300, 1.84e-4, 0.0173, 1},
            {"Router", 36, 300, 7.17e-3, 0.0609, 1},
        };
    } else {
        blocks_ = {
            {"MAC", 16, 320, 9.17e-3, 0.0002, 16},
            {"SRAM Cache (2.5KB)", 20480, 5120, 2.90e-2, 0.0448, 1},
            {"Temporal Buffer", 512, 5120, 2.05e-5, 0.0003, 1},
            {"PMC", 0, 5120, 1.39e-3, 0.0013, 1},
            {"Weight Reg", 3600, 5120, 1.44e-4, 0.0020, 1},
            {"Router", 36, 5120, 3.59e-2, 0.0085, 1},
        };
    }
}

double
PowerModel::logicClockGhz() const
{
    return node_ == TechNode::Nm28 ? 0.3 : 5.12;
}

double
PowerModel::throughputClockGhz() const
{
    // The 28 nm PE tops out at 300 MHz, so the vault I/O and NoC run
    // at reduced activity; the 15 nm design keeps up with the 5 GHz
    // vault I/O clock (Section VII).
    return node_ == TechNode::Nm28 ? 0.3
                                   : referenceClockHz / 1e9;
}

double
PowerModel::activityFactor() const
{
    return throughputClockGhz() / (referenceClockHz / 1e9);
}

double
PowerModel::pePowerW() const
{
    double total = 0.0;
    for (const BlockPower &b : blocks_)
        total += b.dynamicPowerW * b.count;
    return total;
}

double
PowerModel::peAreaMm2() const
{
    double total = 0.0;
    for (const BlockPower &b : blocks_)
        total += b.areaMm2 * b.count;
    return total;
}

double
PowerModel::computePowerW() const
{
    return pePowerW() * numPes_;
}

double
PowerModel::computeAreaMm2() const
{
    return peAreaMm2() * numPes_;
}

double
PowerModel::hmcLogicDiePowerW() const
{
    // 6.78 pJ/bit x 32 bit x 16 vaults x 5 GHz = 17.35 W at full
    // activity, scaled by the node's activity factor and the logic
    // energy scaling into 15 nm.
    double full = baseLogicDiePjPerBit * 1e-12 * 32.0 * 16.0
                * referenceClockHz;
    if (node_ == TechNode::Nm28)
        return full * activityFactor();
    return full * logicEnergyScale15;
}

double
PowerModel::dramPowerW() const
{
    double full = baseDramPjPerBit * 1e-12 * 32.0 * 16.0
                * referenceClockHz;
    return full * activityFactor();
}

double
PowerModel::logicDiePjPerBit() const
{
    // 28 nm pays the published HMC figure; the 15 nm design halves
    // the logic-die energy per bit (ITRS scaling, Section VII).
    return node_ == TechNode::Nm28
        ? baseLogicDiePjPerBit
        : baseLogicDiePjPerBit * logicEnergyScale15;
}

double
PowerModel::dramPjPerBit()
{
    return baseDramPjPerBit;
}

std::vector<PlatformRow>
publishedPlatforms()
{
    return {
        {"Tegra K1 ('15)", true, "Tegra K1", 0, 76.0, 0.0, 11.0,
         "Scene labeling, inference"},
        {"GTX 780 ('15)", true, "GTX 780", 0, 1781.0, 0.0, 206.8,
         "Scene labeling, inference"},
        {"NeuFlow ('11)", false, "Virtex 6", 16, 0.0, 147.0, 10.0,
         "N/A"},
        {"NeuFlow ASIC ('11)", false, "45nm", 16, 0.0, 1164.0, 5.0,
         "N/A"},
        {"nn-X ('14)", false, "Xilinx ZC706", 16, 227.0, 0.0, 8.0,
         "N/A"},
        {"DaDianNao ('14)", false, "28nm", 16, 0.0, 5580.0, 15.97,
         "MNIST, both"},
        {"Origami ('15)", false, "65nm", 12, 0.0, 203.0, 1.2,
         "Scene labeling, inference"},
        {"Conti ('15)", false, "28nm", 16, 0.0, 2.78, 0.001, "N/A"},
    };
}

} // namespace neurocube
