#include "power/thermal.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace neurocube
{

ThermalModel::ThermalModel(const ThermalParams &params)
    : params_(params)
{
    nc_assert(params_.gridSize >= 2, "thermal grid too small");
    nc_assert(params_.dramDies >= 1, "need at least one DRAM die");
}

std::vector<double>
ThermalModel::floorplanPowerMap(double pe_power_w, double logic_die_w,
                                unsigned num_cores) const
{
    const unsigned n = params_.gridSize;
    std::vector<double> map(size_t(n) * n, 0.0);

    // Vault grid (4x4 for 16 cores); each core tile spreads its PE,
    // router and vault-controller power uniformly over its cells.
    unsigned cores_edge =
        unsigned(std::lround(std::sqrt(double(num_cores))));
    nc_assert(cores_edge * cores_edge == num_cores,
              "floorplan needs a square core count");
    double core_power = pe_power_w + logic_die_w / double(num_cores);
    for (unsigned cy = 0; cy < cores_edge; ++cy) {
        for (unsigned cx = 0; cx < cores_edge; ++cx) {
            unsigned x0 = cx * n / cores_edge;
            unsigned x1 = (cx + 1) * n / cores_edge;
            unsigned y0 = cy * n / cores_edge;
            unsigned y1 = (cy + 1) * n / cores_edge;
            double per_cell =
                core_power / double((x1 - x0) * (y1 - y0));
            for (unsigned y = y0; y < y1; ++y) {
                for (unsigned x = x0; x < x1; ++x)
                    map[size_t(y) * n + x] += per_cell;
            }
        }
    }
    return map;
}

ThermalResult
ThermalModel::solve(const std::vector<double> &logic_power_map,
                    double dram_total_w) const
{
    const unsigned n = params_.gridSize;
    const size_t cells = size_t(n) * n;
    nc_assert(logic_power_map.size() == cells,
              "power map has %zu cells, expected %zu",
              logic_power_map.size(), cells);

    // Layer 0 = logic die, layers 1..dramDies = DRAM, heat leaves the
    // top DRAM die through the sink.
    const unsigned layers = 1 + params_.dramDies;
    std::vector<double> temp(cells * layers, params_.ambientK);
    std::vector<double> power(cells * layers, 0.0);
    for (size_t c = 0; c < cells; ++c)
        power[c] = logic_power_map[c];
    double dram_cell_w =
        dram_total_w / double(params_.dramDies) / double(cells);
    for (unsigned l = 1; l < layers; ++l) {
        for (size_t c = 0; c < cells; ++c)
            power[l * cells + c] = dram_cell_w;
    }

    // Per-cell conductances.
    const double g_lat = params_.lateralConductanceWPerK;
    const double g_vert =
        1.0 / (params_.interDieResistanceKPerW * double(cells));
    const double g_sink =
        1.0 / (params_.sinkResistanceKPerW * double(cells));

    ThermalResult result;
    unsigned iter = 0;
    double max_delta = params_.toleranceK + 1.0;
    while (iter < params_.maxIterations
           && max_delta > params_.toleranceK) {
        max_delta = 0.0;
        for (unsigned l = 0; l < layers; ++l) {
            for (unsigned y = 0; y < n; ++y) {
                for (unsigned x = 0; x < n; ++x) {
                    size_t idx = l * cells + size_t(y) * n + x;
                    double g_sum = 0.0;
                    double flow = power[idx];
                    auto couple = [&](size_t other, double g) {
                        g_sum += g;
                        flow += g * temp[other];
                    };
                    if (x > 0)
                        couple(idx - 1, g_lat);
                    if (x + 1 < n)
                        couple(idx + 1, g_lat);
                    if (y > 0)
                        couple(idx - n, g_lat);
                    if (y + 1 < n)
                        couple(idx + n, g_lat);
                    if (l > 0)
                        couple(idx - cells, g_vert);
                    if (l + 1 < layers) {
                        couple(idx + cells, g_vert);
                    } else {
                        // Top die rejects to ambient via the sink.
                        g_sum += g_sink;
                        flow += g_sink * params_.ambientK;
                    }
                    double t_new = flow / g_sum;
                    max_delta = std::max(max_delta,
                                         std::abs(t_new - temp[idx]));
                    temp[idx] = t_new;
                }
            }
        }
        ++iter;
    }

    result.iterations = iter;
    result.logicMapK.assign(temp.begin(), temp.begin() + long(cells));
    result.maxLogicK =
        *std::max_element(result.logicMapK.begin(),
                          result.logicMapK.end());
    result.maxDramK = *std::max_element(temp.begin() + long(cells),
                                        temp.end());
    return result;
}

} // namespace neurocube
