/**
 * @file
 * Power and area model of the Neurocube logic die (paper Section VII,
 * Table II).
 *
 * The paper synthesizes one PE (16 MACs, PNG/PMC, temporal buffer,
 * weight registers, 2.5 KB SRAM cache) plus a router in 28 nm CMOS
 * and 15 nm FinFET. Lacking those PDKs, this model encodes the
 * published per-block dynamic power and area (Table II) as its
 * technology seed and re-derives every aggregate the paper reports:
 * PE totals, the 16-core compute overhead, and the HMC logic-die and
 * DRAM-die power from the published pJ/bit figures with the
 * activity/technology scaling rules of Section VII.
 */

#ifndef NEUROCUBE_POWER_POWER_MODEL_HH
#define NEUROCUBE_POWER_POWER_MODEL_HH

#include <cstdint>
#include <string>
#include <vector>

namespace neurocube
{

/** Synthesis technology node. */
enum class TechNode
{
    Nm28,
    Nm15,
};

/** Name string of a node. */
const char *techNodeName(TechNode node);

/** One block row of Table II. */
struct BlockPower
{
    std::string name;
    /** Storage size in bits (0 where not applicable). */
    uint64_t sizeBits;
    /** Operating frequency in MHz. */
    double freqMhz;
    /** Dynamic power in watts. */
    double dynamicPowerW;
    /** Area in mm^2. */
    double areaMm2;
    /** Instances per PE (16 for the MAC row, 1 otherwise). */
    unsigned count;

    /** Power density in W/mm^2 for one instance. */
    double
    powerDensity() const
    {
        return areaMm2 > 0.0 ? dynamicPowerW / areaMm2 : 0.0;
    }
};

/** The logic-die power/area model at one technology node. */
class PowerModel
{
  public:
    /**
     * @param node technology node
     * @param num_pes PEs on the logic die (paper: 16)
     */
    explicit PowerModel(TechNode node, unsigned num_pes = 16);

    /** The node. */
    TechNode node() const { return node_; }

    /** Logic clock in GHz (0.3 for 28 nm, 5.12 for 15 nm SRAM). */
    double logicClockGhz() const;

    /**
     * Effective throughput clock in GHz: the clock at which the
     * compute layer consumes vault data. 5 GHz (the vault I/O rate)
     * in 15 nm; 0.3 GHz in 28 nm, where the PE limits the rate.
     */
    double throughputClockGhz() const;

    /** Per-block rows (Table II body). */
    const std::vector<BlockPower> &blocks() const { return blocks_; }

    /** Dynamic power of one PE + its router, watts. */
    double pePowerW() const;
    /** Area of one PE + its router, mm^2. */
    double peAreaMm2() const;

    /** Compute overhead of the full Neurocube (num_pes cores). */
    double computePowerW() const;
    /** Area of the full compute layer, mm^2. */
    double computeAreaMm2() const;

    /** HMC logic die power without the Neurocube (pJ/bit model). */
    double hmcLogicDiePowerW() const;
    /** All-DRAM-dies power (pJ/bit model). */
    double dramPowerW() const;

    /** Total package power: compute + logic die + DRAM. */
    double
    totalPowerW() const
    {
        return computePowerW() + hmcLogicDiePowerW() + dramPowerW();
    }

    /**
     * Compute efficiency in GOPs/s/W given a measured throughput
     * (the paper's Table III divides by the compute power).
     */
    double
    efficiencyGopsPerWatt(double gops) const
    {
        return gops / computePowerW();
    }

    /** Activity factor relative to the 5 GHz vault I/O clock. */
    double activityFactor() const;

    /** Logic-die access energy at this node, pJ/bit (Table I,
     *  halved by the 15 nm logic energy scaling). */
    double logicDiePjPerBit() const;

    /** DRAM access energy, pJ/bit (technology-independent here). */
    static double dramPjPerBit();

  private:
    TechNode node_;
    unsigned numPes_;
    std::vector<BlockPower> blocks_;
};

/** One comparison row of Table III. */
struct PlatformRow
{
    std::string paper;
    bool programmable;
    std::string hardware;
    unsigned bits;
    /** Throughput in GOPs/s including DRAM (0 = not reported). */
    double throughputWithDram;
    /** Throughput in GOPs/s excluding DRAM (0 = not reported). */
    double throughputNoDram;
    /** Compute power in watts. */
    double computePowerW;
    std::string application;

    /** GOPs/s/W using whichever throughput the paper reported. */
    double
    efficiency() const
    {
        double t = throughputWithDram > 0 ? throughputWithDram
                                          : throughputNoDram;
        return computePowerW > 0 ? t / computePowerW : 0.0;
    }
};

/** The published comparison platforms of Table III (without the
 *  Neurocube rows, which the simulator supplies). */
std::vector<PlatformRow> publishedPlatforms();

} // namespace neurocube

#endif // NEUROCUBE_POWER_POWER_MODEL_HH
