/**
 * @file
 * Compact steady-state 3D thermal model (paper Section VII, Fig. 17).
 *
 * The paper runs 3D-ICE / Energy Introspector over the Fig. 16
 * floorplan. This model is the same class of compact RC network: each
 * die is a 2D grid of thermal cells with lateral conductances, dies
 * are stacked with vertical interface conductances, and the top of
 * the stack rejects heat to ambient through a passive heat sink
 * resistance. Steady state is solved by Gauss-Seidel relaxation.
 *
 * Stack (bottom to top): logic die (Neurocube + vault controllers),
 * four DRAM dies, heat sink to ambient.
 */

#ifndef NEUROCUBE_POWER_THERMAL_HH
#define NEUROCUBE_POWER_THERMAL_HH

#include <vector>

namespace neurocube
{

/** Calibration parameters of the compact thermal network. */
struct ThermalParams
{
    /** Grid cells per die edge. */
    unsigned gridSize = 16;
    /** DRAM dies stacked above the logic die. */
    unsigned dramDies = 4;
    /** Ambient temperature, kelvin. */
    double ambientK = 300.0;
    /** Whole-package heat-sink resistance to ambient, K/W. */
    double sinkResistanceKPerW = 2.0;
    /** Whole-die vertical resistance between adjacent dies, K/W. */
    double interDieResistanceKPerW = 0.1;
    /** Cell-to-cell lateral conductance within a die, W/K. */
    double lateralConductanceWPerK = 0.012;
    /** Relaxation convergence threshold, kelvin. */
    double toleranceK = 1e-4;
    /** Maximum relaxation sweeps. */
    unsigned maxIterations = 20000;
};

/** Solved temperatures. */
struct ThermalResult
{
    /** Hottest logic-die cell, kelvin. */
    double maxLogicK = 0.0;
    /** Hottest DRAM cell across all DRAM dies, kelvin. */
    double maxDramK = 0.0;
    /** Logic-die temperature map (gridSize^2, row-major). */
    std::vector<double> logicMapK;
    /** Relaxation sweeps used. */
    unsigned iterations = 0;
};

/** The compact thermal solver. */
class ThermalModel
{
  public:
    explicit ThermalModel(const ThermalParams &params);

    /**
     * Solve the steady state.
     *
     * @param logic_power_map per-cell power on the logic die, watts
     *        (gridSize^2 entries, row-major)
     * @param dram_total_w total power of all DRAM dies (spread
     *        uniformly)
     * @return solved temperatures
     */
    ThermalResult solve(const std::vector<double> &logic_power_map,
                        double dram_total_w) const;

    /**
     * Build the logic-die power map from the Fig. 16 floorplan: the
     * die is divided into a vault grid; each vault tile dissipates
     * one PE + router + vault-controller share uniformly.
     *
     * @param pe_power_w per-core compute power (PE + router), watts
     * @param logic_die_w HMC logic-die power excluding the Neurocube
     * @param num_cores number of cores (16)
     */
    std::vector<double> floorplanPowerMap(double pe_power_w,
                                          double logic_die_w,
                                          unsigned num_cores) const;

    /** The parameters. */
    const ThermalParams &params() const { return params_; }

  private:
    ThermalParams params_;
};

/** HMC 2.0 operating limits (paper Section VII). */
constexpr double hmcLogicDieLimitK = 383.0;
constexpr double hmcDramDieLimitK = 378.0;

} // namespace neurocube

#endif // NEUROCUBE_POWER_THERMAL_HH
