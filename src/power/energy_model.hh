/**
 * @file
 * Energy accounting for a simulated run, and the Fig. 16 floorplan
 * feasibility model.
 *
 * Energy combines the dynamic compute power of the Table II blocks
 * (integrated over the run's wall-clock at the node's clock) with
 * the measured DRAM traffic priced at Table I's pJ/bit. The
 * floorplan model reproduces the Section VII area argument: one core
 * (PE + router + vault controller + TSV array) per vault tile, all
 * 16 fitting the HMC's 68 mm^2 logic die.
 */

#ifndef NEUROCUBE_POWER_ENERGY_MODEL_HH
#define NEUROCUBE_POWER_ENERGY_MODEL_HH

#include "core/results.hh"
#include "power/power_model.hh"

namespace neurocube
{

/** Energy breakdown of one simulated run. */
struct EnergyReport
{
    /** Run wall-clock at the node's throughput clock, seconds. */
    double seconds = 0.0;
    /** Compute-layer energy (16 PEs + routers), joules. */
    double computeJ = 0.0;
    /** HMC logic die (vault controllers, links), joules. */
    double logicDieJ = 0.0;
    /** DRAM access energy from measured traffic, joules. */
    double dramJ = 0.0;

    double totalJ() const { return computeJ + logicDieJ + dramJ; }

    /** Energy efficiency in GOPs/J ( = GOPs/s/W ). */
    double
    gopsPerJoule(uint64_t ops) const
    {
        return totalJ() > 0.0 ? double(ops) / 1e9 / totalJ() : 0.0;
    }
};

/**
 * Account a run's energy at a technology node.
 *
 * @param run per-layer results (cycles + DRAM bits)
 * @param model the node's power model
 * @param dram_pj_per_bit access energy of the memory technology
 */
EnergyReport accountEnergy(const RunResult &run,
                           const PowerModel &model,
                           double dram_pj_per_bit);

/** One tile of the Fig. 16 logic-die floorplan. */
struct CoreTile
{
    /** Edge of the square tile in micrometres. */
    double edgeUm = 0.0;
    /** PE + router area within the tile, mm^2. */
    double peRouterMm2 = 0.0;
    /** Vault-controller area, mm^2. */
    double vaultControllerMm2 = 0.0;
    /** TSV array area (116 TSVs at 4 um pitch), mm^2. */
    double tsvMm2 = 0.0;
    /** Placement utilization inside the tile. */
    double utilization = 0.0;
};

/** Area feasibility of the 16-core logic die (Section VII). */
struct FloorplanReport
{
    CoreTile tile;
    /** Total die area used by the 16 core tiles, mm^2. */
    double coresMm2 = 0.0;
    /** HMC logic-die budget, mm^2 (68 mm^2 per [20]). */
    double dieBudgetMm2 = 68.0;
    /** True when the cores fit the die at the tile utilization. */
    bool fits = false;
};

/**
 * Build the Fig. 16 floorplan for a node.
 *
 * @param model the node's power model
 * @param vc_mm2 synthesized vault-controller area (0.4 mm^2 in
 *        28 nm per [24]; scaled by the model's node)
 */
FloorplanReport buildFloorplan(const PowerModel &model,
                               double vc_mm2 = 0.4);

} // namespace neurocube

#endif // NEUROCUBE_POWER_ENERGY_MODEL_HH
