#include "power/activity_energy.hh"

#include <cmath>
#include <iomanip>
#include <sstream>

#include "common/types.hh"
#include "core/manifest.hh"
#include "power/energy_model.hh"

namespace neurocube
{

EnergyBreakdown &
EnergyBreakdown::operator+=(const EnergyBreakdown &other)
{
    macJ += other.macJ;
    sramJ += other.sramJ;
    buffersJ += other.buffersJ;
    nocJ += other.nocJ;
    pngJ += other.pngJ;
    vaultLogicJ += other.vaultLogicJ;
    dramJ += other.dramJ;
    return *this;
}

std::array<EnergyComponentView, 7>
energyComponents(const EnergyBreakdown &b)
{
    return {{
        {"mac", b.macJ},
        {"sram", b.sramJ},
        {"buffers", b.buffersJ},
        {"noc", b.nocJ},
        {"png", b.pngJ},
        {"vault_logic", b.vaultLogicJ},
        {"dram", b.dramJ},
    }};
}

namespace
{

/**
 * A block's energy per event: its Table II dynamic power divided by
 * its clock. Table II reports power at full activity — one event per
 * cycle — so P/f is exactly the per-event switching energy.
 */
double
pjPerEvent(const BlockPower &block)
{
    return block.freqMhz > 0.0
        ? block.dynamicPowerW / (block.freqMhz * 1e6) * 1e12
        : 0.0;
}

/** Fraction of a router flit's energy spent in the crossbar; the
 *  remainder drives the inter-router link. */
constexpr double routerHopFraction = 0.7;

/** Bits in a vault command/address word (the 32-bit HMC word). */
constexpr double vaultXactBits = 32.0;

/**
 * Leakage as a fraction of the synthesized dynamic compute power.
 * Table II reports dynamic power only; these fractions model the
 * technology gap — planar 28 nm HKMG leaks roughly a tenth of its
 * dynamic power, while the 15 nm FinFET node cuts that in half.
 */
double
leakageFraction(TechNode node)
{
    return node == TechNode::Nm28 ? 0.10 : 0.05;
}

} // namespace

ActivityEnergyModel::ActivityEnergyModel(const PowerModel &model)
    : node_(model.node())
{
    for (const BlockPower &block : model.blocks()) {
        double pj = pjPerEvent(block);
        if (block.name.rfind("MAC", 0) == 0) {
            prices_.macOpPj = pj;
        } else if (block.name.rfind("SRAM", 0) == 0) {
            prices_.cacheAccessPj = pj;
        } else if (block.name.rfind("Temporal", 0) == 0) {
            prices_.bufferAccessPj = pj;
        } else if (block.name.rfind("PMC", 0) == 0) {
            prices_.pngOpPj = pj;
        } else if (block.name.rfind("Weight", 0) == 0) {
            prices_.weightRegPj = pj;
        } else if (block.name.rfind("Router", 0) == 0) {
            prices_.nocHopPj = routerHopFraction * pj;
            prices_.nocLinkPj = (1.0 - routerHopFraction) * pj;
        }
    }
    prices_.vaultLogicPjPerBit = model.logicDiePjPerBit();
    prices_.vaultXactPj = prices_.vaultLogicPjPerBit * vaultXactBits;
    prices_.dramPjPerBit = PowerModel::dramPjPerBit();
    staticPowerW_ = leakageFraction(node_) * model.computePowerW();
}

double
ActivityEnergyModel::staticEnergyJ(Tick cycles) const
{
    return staticPowerW_ * double(cycles) / referenceClockHz;
}

EnergyBreakdown
ActivityEnergyModel::price(const EnergyCounts &counts) const
{
    auto joules = [&counts](EnergyEventKind kind, double pj) {
        return double(counts[kind]) * pj * 1e-12;
    };
    EnergyBreakdown out;
    out.macJ = joules(EnergyEventKind::MacOp, prices_.macOpPj);
    out.sramJ = joules(EnergyEventKind::CacheRead,
                       prices_.cacheAccessPj)
              + joules(EnergyEventKind::CacheWrite,
                       prices_.cacheAccessPj);
    out.buffersJ = joules(EnergyEventKind::BufferAccess,
                          prices_.bufferAccessPj)
                 + joules(EnergyEventKind::WeightRegRead,
                          prices_.weightRegPj);
    out.nocJ = joules(EnergyEventKind::NocHop, prices_.nocHopPj)
             + joules(EnergyEventKind::NocLink, prices_.nocLinkPj);
    out.pngJ = joules(EnergyEventKind::PngOp, prices_.pngOpPj);
    out.vaultLogicJ = joules(EnergyEventKind::VaultXact,
                             prices_.vaultXactPj)
                    + joules(EnergyEventKind::DramBit,
                             prices_.vaultLogicPjPerBit);
    out.dramJ = joules(EnergyEventKind::DramBit, prices_.dramPjPerBit);
    return out;
}

EnergyBreakdown
ActivityEnergyModel::price(const RunResult &run) const
{
    EnergyBreakdown total;
    for (const LayerResult &layer : run.layers)
        total += price(layer.energy);
    return total;
}

EnergyComparison
compareWithAnalytic(const RunResult &run, const PowerModel &model)
{
    EnergyComparison cmp;
    ActivityEnergyModel activity(model);
    cmp.activity = activity.price(run);
    cmp.activityJ = cmp.activity.totalJ();
    EnergyReport analytic =
        accountEnergy(run, model, PowerModel::dramPjPerBit());
    cmp.analyticJ = analytic.totalJ();
    cmp.analyticDramJ = analytic.dramJ;
    cmp.ratio = cmp.analyticJ > 0.0 ? cmp.activityJ / cmp.analyticJ
                                    : 0.0;
    return cmp;
}

namespace
{

std::string
jsonNumber(double value)
{
    if (std::isnan(value) || std::isinf(value))
        value = 0.0;
    std::ostringstream os;
    os << std::setprecision(12) << value;
    return os.str();
}

void
appendComponents(std::ostringstream &os, const EnergyBreakdown &b)
{
    os << "{";
    bool first = true;
    for (const EnergyComponentView &c : energyComponents(b)) {
        if (!first)
            os << ",";
        first = false;
        os << "\"" << c.name << "\":" << jsonNumber(c.joules);
    }
    os << "}";
}

void
appendCounts(std::ostringstream &os, const EnergyCounts &counts)
{
    os << "{";
    for (size_t k = 0; k < numEnergyEventKinds; ++k) {
        if (k)
            os << ",";
        os << "\"" << energyEventKindName(EnergyEventKind(k))
           << "\":" << counts.n[k];
    }
    os << "}";
}

} // namespace

std::string
RunResult::energyJson() const
{
    ActivityEnergyModel model;
    EnergyBreakdown total = model.price(*this);
    EnergyCounts counts = energyCounts();
    double seconds = double(totalCycles()) / referenceClockHz;
    double totalJ = total.totalJ();

    std::ostringstream os;
    os << "{\"model\":\"activity\",\"node\":\""
       << techNodeName(model.node()) << "\"";
    os << ",\"valid\":" << (counts.valid ? "true" : "false");
    os << ",\"total_j\":" << jsonNumber(totalJ);
    os << ",\"avg_power_w\":"
       << jsonNumber(seconds > 0.0 ? totalJ / seconds : 0.0);
    os << ",\"gops_per_watt\":"
       << jsonNumber(totalJ > 0.0 ? double(totalOps()) / 1e9 / totalJ
                                  : 0.0);
    // Leakage is reported beside the dynamic totals, never folded
    // into total_j (the activity/analytic ratio tests pin total_j to
    // the dynamic accounting).
    os << ",\"dynamic_j\":" << jsonNumber(totalJ);
    os << ",\"static_j\":"
       << jsonNumber(model.staticEnergyJ(totalCycles()));
    os << ",\"static_power_w\":" << jsonNumber(model.staticPowerW());
    os << ",\"components\":";
    appendComponents(os, total);
    os << ",\"layers\":[";
    for (size_t i = 0; i < layers.size(); ++i) {
        const LayerResult &layer = layers[i];
        EnergyBreakdown lb = model.price(layer.energy);
        if (i)
            os << ",";
        os << "{\"name\":\"" << layer.name << "\"";
        os << ",\"total_j\":" << jsonNumber(lb.totalJ());
        os << ",\"components\":";
        appendComponents(os, lb);
        os << ",\"counts\":";
        appendCounts(os, layer.energy);
        os << "}";
    }
    os << "]}";
    return os.str();
}

namespace
{

/**
 * Aggregate stall accounting over a run: absolute component-ticks per
 * stall class, reconstructed from the per-layer bottleneck fractions
 * (each layer's fractions are exact ratios of its countedTicks, so
 * the round-trip loses at most one tick per layer per class).
 */
struct StallTicks
{
    bool valid = false;
    uint64_t countedTicks = 0;
    std::array<uint64_t, numStallClasses> ticks{};
};

StallTicks
aggregateStalls(const RunResult &run)
{
    StallTicks agg;
    for (const LayerResult &layer : run.layers) {
        const BottleneckReport &b = layer.bottleneck;
        if (!b.valid)
            continue;
        agg.valid = true;
        agg.countedTicks += b.countedTicks;
        for (size_t i = 0; i < numStallClasses; ++i) {
            agg.ticks[i] += uint64_t(
                b.fractions[i] * double(b.countedTicks) + 0.5);
        }
    }
    return agg;
}

void
appendManifestFields(std::ostringstream &os, const RunManifest &m)
{
    os << "\"name\":\"" << m.name << "\"";
    os << ",\"git_describe\":\"" << m.gitDescribe << "\"";
    os << ",\"engine\":\"" << m.engine << "\"";
    os << ",\"config_hash\":\"" << m.configHash << "\"";
    os << ",\"quick\":" << (m.quick ? "true" : "false");
}

/** The {run=...} label block shared by every metric line. */
std::string
promLabels(const RunManifest &m)
{
    return "{run=\"" + m.name + "\"}";
}

} // namespace

std::string
runManifestJson(const RunManifest &manifest, const RunResult &run)
{
    std::ostringstream os;
    os << "{";
    appendManifestFields(os, manifest);
    os << ",\"cycles\":" << run.totalCycles();
    os << ",\"ops\":" << run.totalOps();
    os << ",\"layers\":" << run.layers.size();
    os << ",\"peak_memory_bytes\":" << run.peakMemoryBytes();
    os << ",\"gops_per_second\":" << jsonNumber(run.gopsPerSecond());
    os << ",\"frames_per_second\":"
       << jsonNumber(run.framesPerSecond());
    os << ",\"wall_ms\":" << jsonNumber(run.wallMs);

    StallTicks stalls = aggregateStalls(run);
    if (stalls.valid) {
        os << ",\"stalls\":{\"counted_ticks\":" << stalls.countedTicks;
        for (size_t i = 0; i < numStallClasses; ++i) {
            os << ",\"" << stallClassName(StallClass(i))
               << "\":" << stalls.ticks[i];
        }
        os << "}";
    } else {
        os << ",\"stalls\":null";
    }

    EnergyCounts counts = run.energyCounts();
    if (counts.valid) {
        ActivityEnergyModel model;
        EnergyBreakdown total = model.price(run);
        double seconds = double(run.totalCycles()) / referenceClockHz;
        double totalJ = total.totalJ();
        os << ",\"energy\":{\"total_j\":" << jsonNumber(totalJ);
        os << ",\"avg_power_w\":"
           << jsonNumber(seconds > 0.0 ? totalJ / seconds : 0.0);
        os << ",\"dynamic_j\":" << jsonNumber(totalJ);
        os << ",\"static_j\":"
           << jsonNumber(model.staticEnergyJ(run.totalCycles()));
        os << ",\"static_power_w\":"
           << jsonNumber(model.staticPowerW());
        os << ",\"components\":";
        appendComponents(os, total);
        os << "}";
    } else {
        os << ",\"energy\":null";
    }
    os << "}";
    return os.str();
}

std::string
runMetricsTextfile(const RunManifest &manifest, const RunResult &run)
{
    const std::string labels = promLabels(manifest);
    std::ostringstream os;
    // Build/config identity rides on an info-style gauge so scrapes
    // can join metrics to the manifest without parsing JSON.
    os << "# TYPE neurocube_run_info gauge\n";
    os << "neurocube_run_info{run=\"" << manifest.name
       << "\",engine=\"" << manifest.engine << "\",git=\""
       << manifest.gitDescribe << "\",config=\""
       << manifest.configHash << "\",quick=\""
       << (manifest.quick ? "1" : "0") << "\"} 1\n";

    os << "# TYPE neurocube_total_cycles gauge\n";
    os << "neurocube_total_cycles" << labels << " "
       << run.totalCycles() << "\n";
    os << "# TYPE neurocube_total_ops gauge\n";
    os << "neurocube_total_ops" << labels << " " << run.totalOps()
       << "\n";
    os << "# TYPE neurocube_wall_ms gauge\n";
    os << "neurocube_wall_ms" << labels << " "
       << jsonNumber(run.wallMs) << "\n";
    os << "# TYPE neurocube_gops_per_second gauge\n";
    os << "neurocube_gops_per_second" << labels << " "
       << jsonNumber(run.gopsPerSecond()) << "\n";
    os << "# TYPE neurocube_peak_memory_bytes gauge\n";
    os << "neurocube_peak_memory_bytes" << labels << " "
       << run.peakMemoryBytes() << "\n";

    StallTicks stalls = aggregateStalls(run);
    if (stalls.valid) {
        os << "# TYPE neurocube_stall_ticks gauge\n";
        for (size_t i = 0; i < numStallClasses; ++i) {
            os << "neurocube_stall_ticks{run=\"" << manifest.name
               << "\",class=\"" << stallClassName(StallClass(i))
               << "\"} " << stalls.ticks[i] << "\n";
        }
    }

    EnergyCounts counts = run.energyCounts();
    if (counts.valid) {
        ActivityEnergyModel model;
        EnergyBreakdown total = model.price(run);
        os << "# TYPE neurocube_energy_total_joules gauge\n";
        os << "neurocube_energy_total_joules" << labels << " "
           << jsonNumber(total.totalJ()) << "\n";
        os << "# TYPE neurocube_energy_joules gauge\n";
        for (const EnergyComponentView &c : energyComponents(total)) {
            os << "neurocube_energy_joules{run=\"" << manifest.name
               << "\",component=\"" << c.name << "\"} "
               << jsonNumber(c.joules) << "\n";
        }
    }
    return os.str();
}

double
BatchRunResult::totalEnergyJ() const
{
    ActivityEnergyModel model;
    double total = 0.0;
    for (const RunResult &lane : lanes)
        total += model.price(lane).totalJ();
    return total;
}

double
BatchRunResult::gopsPerWatt() const
{
    double joules = totalEnergyJ();
    return joules > 0.0 ? double(totalOps()) / 1e9 / joules : 0.0;
}

double
BatchRunResult::energyPerInferenceJ() const
{
    return lanes.empty() ? 0.0
                         : totalEnergyJ() / double(lanes.size());
}

} // namespace neurocube
