#include "power/activity_energy.hh"

#include <cmath>
#include <iomanip>
#include <sstream>

#include "common/types.hh"
#include "power/energy_model.hh"

namespace neurocube
{

EnergyBreakdown &
EnergyBreakdown::operator+=(const EnergyBreakdown &other)
{
    macJ += other.macJ;
    sramJ += other.sramJ;
    buffersJ += other.buffersJ;
    nocJ += other.nocJ;
    pngJ += other.pngJ;
    vaultLogicJ += other.vaultLogicJ;
    dramJ += other.dramJ;
    return *this;
}

std::array<EnergyComponentView, 7>
energyComponents(const EnergyBreakdown &b)
{
    return {{
        {"mac", b.macJ},
        {"sram", b.sramJ},
        {"buffers", b.buffersJ},
        {"noc", b.nocJ},
        {"png", b.pngJ},
        {"vault_logic", b.vaultLogicJ},
        {"dram", b.dramJ},
    }};
}

namespace
{

/**
 * A block's energy per event: its Table II dynamic power divided by
 * its clock. Table II reports power at full activity — one event per
 * cycle — so P/f is exactly the per-event switching energy.
 */
double
pjPerEvent(const BlockPower &block)
{
    return block.freqMhz > 0.0
        ? block.dynamicPowerW / (block.freqMhz * 1e6) * 1e12
        : 0.0;
}

/** Fraction of a router flit's energy spent in the crossbar; the
 *  remainder drives the inter-router link. */
constexpr double routerHopFraction = 0.7;

/** Bits in a vault command/address word (the 32-bit HMC word). */
constexpr double vaultXactBits = 32.0;

} // namespace

ActivityEnergyModel::ActivityEnergyModel(const PowerModel &model)
    : node_(model.node())
{
    for (const BlockPower &block : model.blocks()) {
        double pj = pjPerEvent(block);
        if (block.name.rfind("MAC", 0) == 0) {
            prices_.macOpPj = pj;
        } else if (block.name.rfind("SRAM", 0) == 0) {
            prices_.cacheAccessPj = pj;
        } else if (block.name.rfind("Temporal", 0) == 0) {
            prices_.bufferAccessPj = pj;
        } else if (block.name.rfind("PMC", 0) == 0) {
            prices_.pngOpPj = pj;
        } else if (block.name.rfind("Weight", 0) == 0) {
            prices_.weightRegPj = pj;
        } else if (block.name.rfind("Router", 0) == 0) {
            prices_.nocHopPj = routerHopFraction * pj;
            prices_.nocLinkPj = (1.0 - routerHopFraction) * pj;
        }
    }
    prices_.vaultLogicPjPerBit = model.logicDiePjPerBit();
    prices_.vaultXactPj = prices_.vaultLogicPjPerBit * vaultXactBits;
    prices_.dramPjPerBit = PowerModel::dramPjPerBit();
}

EnergyBreakdown
ActivityEnergyModel::price(const EnergyCounts &counts) const
{
    auto joules = [&counts](EnergyEventKind kind, double pj) {
        return double(counts[kind]) * pj * 1e-12;
    };
    EnergyBreakdown out;
    out.macJ = joules(EnergyEventKind::MacOp, prices_.macOpPj);
    out.sramJ = joules(EnergyEventKind::CacheRead,
                       prices_.cacheAccessPj)
              + joules(EnergyEventKind::CacheWrite,
                       prices_.cacheAccessPj);
    out.buffersJ = joules(EnergyEventKind::BufferAccess,
                          prices_.bufferAccessPj)
                 + joules(EnergyEventKind::WeightRegRead,
                          prices_.weightRegPj);
    out.nocJ = joules(EnergyEventKind::NocHop, prices_.nocHopPj)
             + joules(EnergyEventKind::NocLink, prices_.nocLinkPj);
    out.pngJ = joules(EnergyEventKind::PngOp, prices_.pngOpPj);
    out.vaultLogicJ = joules(EnergyEventKind::VaultXact,
                             prices_.vaultXactPj)
                    + joules(EnergyEventKind::DramBit,
                             prices_.vaultLogicPjPerBit);
    out.dramJ = joules(EnergyEventKind::DramBit, prices_.dramPjPerBit);
    return out;
}

EnergyBreakdown
ActivityEnergyModel::price(const RunResult &run) const
{
    EnergyBreakdown total;
    for (const LayerResult &layer : run.layers)
        total += price(layer.energy);
    return total;
}

EnergyComparison
compareWithAnalytic(const RunResult &run, const PowerModel &model)
{
    EnergyComparison cmp;
    ActivityEnergyModel activity(model);
    cmp.activity = activity.price(run);
    cmp.activityJ = cmp.activity.totalJ();
    EnergyReport analytic =
        accountEnergy(run, model, PowerModel::dramPjPerBit());
    cmp.analyticJ = analytic.totalJ();
    cmp.analyticDramJ = analytic.dramJ;
    cmp.ratio = cmp.analyticJ > 0.0 ? cmp.activityJ / cmp.analyticJ
                                    : 0.0;
    return cmp;
}

namespace
{

std::string
jsonNumber(double value)
{
    if (std::isnan(value) || std::isinf(value))
        value = 0.0;
    std::ostringstream os;
    os << std::setprecision(12) << value;
    return os.str();
}

void
appendComponents(std::ostringstream &os, const EnergyBreakdown &b)
{
    os << "{";
    bool first = true;
    for (const EnergyComponentView &c : energyComponents(b)) {
        if (!first)
            os << ",";
        first = false;
        os << "\"" << c.name << "\":" << jsonNumber(c.joules);
    }
    os << "}";
}

void
appendCounts(std::ostringstream &os, const EnergyCounts &counts)
{
    os << "{";
    for (size_t k = 0; k < numEnergyEventKinds; ++k) {
        if (k)
            os << ",";
        os << "\"" << energyEventKindName(EnergyEventKind(k))
           << "\":" << counts.n[k];
    }
    os << "}";
}

} // namespace

std::string
RunResult::energyJson() const
{
    ActivityEnergyModel model;
    EnergyBreakdown total = model.price(*this);
    EnergyCounts counts = energyCounts();
    double seconds = double(totalCycles()) / referenceClockHz;
    double totalJ = total.totalJ();

    std::ostringstream os;
    os << "{\"model\":\"activity\",\"node\":\""
       << techNodeName(model.node()) << "\"";
    os << ",\"valid\":" << (counts.valid ? "true" : "false");
    os << ",\"total_j\":" << jsonNumber(totalJ);
    os << ",\"avg_power_w\":"
       << jsonNumber(seconds > 0.0 ? totalJ / seconds : 0.0);
    os << ",\"gops_per_watt\":"
       << jsonNumber(totalJ > 0.0 ? double(totalOps()) / 1e9 / totalJ
                                  : 0.0);
    os << ",\"components\":";
    appendComponents(os, total);
    os << ",\"layers\":[";
    for (size_t i = 0; i < layers.size(); ++i) {
        const LayerResult &layer = layers[i];
        EnergyBreakdown lb = model.price(layer.energy);
        if (i)
            os << ",";
        os << "{\"name\":\"" << layer.name << "\"";
        os << ",\"total_j\":" << jsonNumber(lb.totalJ());
        os << ",\"components\":";
        appendComponents(os, lb);
        os << ",\"counts\":";
        appendCounts(os, layer.energy);
        os << "}";
    }
    os << "]}";
    return os.str();
}

double
BatchRunResult::totalEnergyJ() const
{
    ActivityEnergyModel model;
    double total = 0.0;
    for (const RunResult &lane : lanes)
        total += model.price(lane).totalJ();
    return total;
}

double
BatchRunResult::gopsPerWatt() const
{
    double joules = totalEnergyJ();
    return joules > 0.0 ? double(totalOps()) / 1e9 / joules : 0.0;
}

double
BatchRunResult::energyPerInferenceJ() const
{
    return lanes.empty() ? 0.0
                         : totalEnergyJ() / double(lanes.size());
}

} // namespace neurocube
