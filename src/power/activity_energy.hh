/**
 * @file
 * Activity-based energy model: price raw event counts in joules.
 *
 * The analytic model (energy_model.hh) integrates Table II block
 * power over wall-clock — it assumes every block switches at full
 * activity for the whole run. This model instead prices each
 * *counted* event (EnergyRegistry, trace/energy.hh) at a per-event
 * energy derived from the same Table I/II seeds: a block's pJ per
 * event is its dynamic power divided by its clock (one event per
 * cycle at full activity, the synthesis condition behind Table II).
 * The ratio of the two totals is the machine's effective activity
 * factor: well below 1 on idle-heavy runs, and slightly above 1 on
 * cache-bound runs where associative scans count more SRAM accesses
 * per cycle than the one-event-per-cycle synthesis condition assumes
 * (see tests/test_energy.cc for the asserted tolerance and
 * EXPERIMENTS.md for measured numbers). The DRAM terms of both views
 * price the same measured bits and agree almost exactly.
 */

#ifndef NEUROCUBE_POWER_ACTIVITY_ENERGY_HH
#define NEUROCUBE_POWER_ACTIVITY_ENERGY_HH

#include <array>

#include "core/results.hh"
#include "power/power_model.hh"
#include "trace/energy.hh"

namespace neurocube
{

/** Joules attributed to each hardware component class. */
struct EnergyBreakdown
{
    /** MAC array switching energy. */
    double macJ = 0.0;
    /** Operand-cache SRAM reads + writes. */
    double sramJ = 0.0;
    /** Temporal-buffer and weight-register accesses. */
    double buffersJ = 0.0;
    /** Router crossbar hops + link traversals. */
    double nocJ = 0.0;
    /** PNG/PMC transaction energy. */
    double pngJ = 0.0;
    /** HMC logic die: vault-controller transactions + data bits. */
    double vaultLogicJ = 0.0;
    /** DRAM-die access energy. */
    double dramJ = 0.0;

    double
    totalJ() const
    {
        return macJ + sramJ + buffersJ + nocJ + pngJ + vaultLogicJ
             + dramJ;
    }

    EnergyBreakdown &operator+=(const EnergyBreakdown &other);
};

/** Component labels + values of a breakdown, for serializers. */
struct EnergyComponentView
{
    const char *name;
    double joules;
};

/** The seven (name, joules) components of @p breakdown, in order. */
std::array<EnergyComponentView, 7>
energyComponents(const EnergyBreakdown &breakdown);

/**
 * Derives per-event prices from a PowerModel's Table I/II seeds and
 * prices EnergyCounts into joules.
 */
class ActivityEnergyModel
{
  public:
    explicit ActivityEnergyModel(const PowerModel &model);

    /** Default model at the node the cycle simulator times (15 nm,
     *  where every block keeps up with the 5 GHz vault clock). */
    ActivityEnergyModel() : ActivityEnergyModel(PowerModel(TechNode::Nm15)) {}

    /** The derived per-event prices (pJ). */
    const EnergyPrices &prices() const { return prices_; }

    /** The node the prices were derived for. */
    TechNode node() const { return node_; }

    /** Price counted activity into per-component joules. */
    EnergyBreakdown price(const EnergyCounts &counts) const;

    /** Per-layer sum of a run's counted activity, priced. */
    EnergyBreakdown price(const RunResult &run) const;

    /**
     * Static (leakage) power of the compute layer, watts: a
     * node-dependent leakage fraction applied to the synthesized
     * compute power (Table II reports dynamic power only; the
     * fraction models the planar-28 nm vs FinFET-15 nm leakage gap).
     * Reported alongside the activity totals — never folded into
     * price()/totalJ(), so existing dynamic-energy accounting and
     * its tests are unchanged.
     */
    double staticPowerW() const { return staticPowerW_; }

    /** Leakage energy held over @p cycles reference cycles, joules. */
    double staticEnergyJ(Tick cycles) const;

  private:
    TechNode node_;
    EnergyPrices prices_;
    double staticPowerW_ = 0.0;
};

/** Activity-based vs analytic energy for the same run. */
struct EnergyComparison
{
    /** Activity-based per-component breakdown. */
    EnergyBreakdown activity;
    /** Activity-based total, joules. */
    double activityJ = 0.0;
    /** Analytic accountEnergy() total, joules. */
    double analyticJ = 0.0;
    /** Analytic DRAM term alone, joules (should match the activity
     *  dramJ almost exactly — same bits, same pJ/bit). */
    double analyticDramJ = 0.0;
    /** activityJ / analyticJ: the run's effective activity factor. */
    double ratio = 0.0;
};

/**
 * Price a run both ways at one node. Requires the run to carry
 * counted activity (run with trace.enabled and energy accounting
 * on); activityJ is 0 otherwise.
 */
EnergyComparison compareWithAnalytic(const RunResult &run,
                                     const PowerModel &model);

} // namespace neurocube

#endif // NEUROCUBE_POWER_ACTIVITY_ENERGY_HH
