#include "nn/network.hh"

#include <algorithm>

#include "common/logging.hh"

namespace neurocube
{

uint64_t
NetworkDesc::totalOps() const
{
    uint64_t ops = 0;
    for (const LayerDesc &layer : layers)
        ops += layer.totalOps();
    return ops;
}

uint64_t
NetworkDesc::totalWeights() const
{
    uint64_t count = 0;
    for (const LayerDesc &layer : layers)
        count += layer.weightCount();
    return count;
}

void
NetworkDesc::validate() const
{
    if (layers.empty())
        nc_fatal("network '%s' has no layers", name.c_str());
    for (size_t i = 0; i < layers.size(); ++i) {
        layers[i].validate();
        if (i == 0)
            continue;
        LayerDesc expect = nextLayerTemplate(layers[i - 1]);
        if (layers[i].inWidth != expect.inWidth
            || layers[i].inHeight != expect.inHeight
            || layers[i].inMaps != expect.inMaps) {
            nc_fatal("network '%s': layer %zu input %ux%ux%u does not "
                     "match layer %zu output %ux%ux%u",
                     name.c_str(), i, layers[i].inMaps,
                     layers[i].inHeight, layers[i].inWidth, i - 1,
                     expect.inMaps, expect.inHeight, expect.inWidth);
        }
    }
}

NetworkData
NetworkData::randomized(const NetworkDesc &net, uint64_t seed)
{
    NetworkData data = zeros(net);
    Rng rng(seed);
    for (size_t i = 0; i < net.layers.size(); ++i) {
        const LayerDesc &layer = net.layers[i];
        if (layer.type == LayerType::Pool) {
            // Average pooling: uniform 1/(k*k) weights.
            Fixed w = Fixed::fromDouble(
                1.0 / double(layer.kernel * layer.kernel));
            for (Fixed &v : data.weights[i])
                v = w;
            continue;
        }
        // Small weights keep Q1.7.8 activations away from saturation
        // for several layers of depth.
        double scale =
            1.0 / double(layer.connectionsPerNeuron() == 0
                             ? 1
                             : layer.connectionsPerNeuron());
        double bound = std::min(0.5, 8.0 * scale);
        for (Fixed &v : data.weights[i])
            v = Fixed::fromDouble(rng.uniform(-bound, bound));
    }
    return data;
}

NetworkData
NetworkData::zeros(const NetworkDesc &net)
{
    NetworkData data;
    data.weights.reserve(net.layers.size());
    for (const LayerDesc &layer : net.layers)
        data.weights.emplace_back(layer.weightCount());
    return data;
}

NetworkDesc
sceneLabelingNetwork(unsigned width, unsigned height)
{
    // Three conv7 + two pool2 stages need ((1+6)*2+6)*2+6 = 46
    // pixels in each dimension to leave at least one output pixel.
    nc_assert(width >= 48 && height >= 48,
              "scene-labeling network needs at least a 48x48 input");
    NetworkDesc net;
    net.name = "scene-labeling";

    LayerDesc conv1;
    conv1.type = LayerType::Conv2D;
    conv1.name = "conv1";
    conv1.inWidth = width;
    conv1.inHeight = height;
    conv1.inMaps = 3;
    conv1.outMaps = 16;
    conv1.kernel = 7;
    conv1.channelwise = true;
    conv1.activation = ActivationKind::Tanh;
    net.layers.push_back(conv1);

    LayerDesc pool1 = nextLayerTemplate(conv1);
    pool1.type = LayerType::Pool;
    pool1.name = "pool1";
    pool1.outMaps = pool1.inMaps;
    pool1.kernel = 2;
    pool1.stride = 2;
    net.layers.push_back(pool1);

    LayerDesc conv2 = nextLayerTemplate(pool1);
    conv2.type = LayerType::Conv2D;
    conv2.name = "conv2";
    conv2.outMaps = 64;
    conv2.kernel = 7;
    conv2.channelwise = true;
    conv2.activation = ActivationKind::Tanh;
    net.layers.push_back(conv2);

    LayerDesc pool2 = nextLayerTemplate(conv2);
    pool2.type = LayerType::Pool;
    pool2.name = "pool2";
    pool2.outMaps = pool2.inMaps;
    pool2.kernel = 2;
    pool2.stride = 2;
    net.layers.push_back(pool2);

    LayerDesc conv3 = nextLayerTemplate(pool2);
    conv3.type = LayerType::Conv2D;
    conv3.name = "conv3";
    conv3.outMaps = 256;
    conv3.kernel = 7;
    conv3.channelwise = true;
    conv3.activation = ActivationKind::Tanh;
    net.layers.push_back(conv3);

    // Per-pixel classifier: 1x1 full convolutions act as the fully
    // connected layers of the scene-labeling network.
    LayerDesc fc1 = nextLayerTemplate(conv3);
    fc1.type = LayerType::Conv2D;
    fc1.name = "fc1";
    fc1.outMaps = 64;
    fc1.kernel = 1;
    fc1.channelwise = false;
    fc1.activation = ActivationKind::Tanh;
    net.layers.push_back(fc1);

    LayerDesc fc2 = nextLayerTemplate(fc1);
    fc2.type = LayerType::Conv2D;
    fc2.name = "fc2";
    fc2.outMaps = 8;
    fc2.kernel = 1;
    fc2.channelwise = false;
    fc2.activation = ActivationKind::Sigmoid;
    net.layers.push_back(fc2);

    net.validate();
    return net;
}

NetworkDesc
mnistMlp(unsigned hidden)
{
    NetworkDesc net;
    net.name = "mnist-mlp";

    LayerDesc fc1;
    fc1.type = LayerType::FullyConnected;
    fc1.name = "fc1";
    fc1.inWidth = 28;
    fc1.inHeight = 28;
    fc1.inMaps = 1;
    fc1.outMaps = hidden;
    fc1.activation = ActivationKind::Sigmoid;
    net.layers.push_back(fc1);

    LayerDesc fc2 = nextLayerTemplate(fc1);
    fc2.type = LayerType::FullyConnected;
    fc2.name = "fc2";
    fc2.outMaps = 10;
    fc2.activation = ActivationKind::Sigmoid;
    net.layers.push_back(fc2);

    net.validate();
    return net;
}

NetworkDesc
singleConvNetwork(unsigned width, unsigned height, unsigned kernel,
                  unsigned maps)
{
    NetworkDesc net;
    net.name = "conv-sweep";
    LayerDesc conv;
    conv.type = LayerType::Conv2D;
    conv.name = "conv";
    conv.inWidth = width;
    conv.inHeight = height;
    conv.inMaps = 1;
    conv.outMaps = maps;
    conv.kernel = kernel;
    conv.channelwise = true;
    conv.activation = ActivationKind::Tanh;
    net.layers.push_back(conv);
    net.validate();
    return net;
}

NetworkDesc
threeLayerMlp(unsigned input, unsigned hidden, unsigned output)
{
    NetworkDesc net;
    net.name = "three-layer-mlp";

    LayerDesc fc1;
    fc1.type = LayerType::FullyConnected;
    fc1.name = "hidden";
    fc1.inWidth = input;
    fc1.inHeight = 1;
    fc1.inMaps = 1;
    fc1.outMaps = hidden;
    fc1.activation = ActivationKind::Sigmoid;
    net.layers.push_back(fc1);

    LayerDesc fc2 = nextLayerTemplate(fc1);
    fc2.type = LayerType::FullyConnected;
    fc2.name = "output";
    fc2.outMaps = output;
    fc2.activation = ActivationKind::Sigmoid;
    net.layers.push_back(fc2);

    net.validate();
    return net;
}

} // namespace neurocube
