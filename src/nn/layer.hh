/**
 * @file
 * Layer descriptors for the networks Neurocube executes.
 *
 * A layer is described by its connectivity — the paper's central
 * observation (Section II-A) is that network classes differ only in
 * the set of neurons connected to each output neuron, while the
 * per-neuron operation is always a weighted sum. Three connectivity
 * classes cover the evaluated workloads:
 *
 *  - Conv2D: k x k spatial neighbourhood, unit stride. In the
 *    paper's programming model each output map is one PNG pass whose
 *    connection count is the spatial kernel only (the Fig. 9 example
 *    programs 49 connections for the 7x7 first layer); this
 *    "channelwise" mode is the default. Full cross-map convolution
 *    (connections = k*k*inMaps accumulated over one pass per input
 *    map) is also supported for functional workloads; a 1x1 full
 *    Conv2D is the per-pixel classifier the scene-labeling network
 *    uses as its "fully connected" layers.
 *  - Pool: 2x2 average pooling, stride 2 (one pass per map).
 *  - FullyConnected: every output neuron connects to every element of
 *    the flattened input (MLP layers, Fig. 3b).
 */

#ifndef NEUROCUBE_NN_LAYER_HH
#define NEUROCUBE_NN_LAYER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "png/lut.hh"

namespace neurocube
{

/** Connectivity class of a layer. */
enum class LayerType : uint8_t
{
    Conv2D,
    Pool,
    FullyConnected,
};

/** Name of a layer type. */
const char *layerTypeName(LayerType type);

/** Static description of one layer. */
struct LayerDesc
{
    LayerType type = LayerType::Conv2D;
    /** Optional label used in result tables (e.g. "conv1"). */
    std::string name;

    /** Input geometry. */
    unsigned inWidth = 0;
    unsigned inHeight = 0;
    unsigned inMaps = 1;

    /** Output feature maps. */
    unsigned outMaps = 1;

    /** Spatial kernel (Conv2D and Pool). */
    unsigned kernel = 1;
    /** Input stride (1 for Conv2D, kernel for Pool). */
    unsigned stride = 1;

    /**
     * Conv2D only: true = paper programming mode, where each output
     * map reads one input map (map index outMap % inMaps) and the
     * connection count is kernel*kernel; false = full cross-map
     * convolution accumulated over one pass per input map.
     */
    bool channelwise = true;

    /**
     * Conv2D with kernel 1 only: each output neuron has its own
     * weight per connection instead of a shared kernel (weight
     * layout W[(outMap * neurons + neuron) * conns + conn]). This is
     * the gate-product ("elementwise") building block of the LSTM
     * realization: c = f (.) c_prev + i (.) g is one such layer with
     * two connections whose per-neuron weights are the gate vectors
     * the host wrote into the weight region.
     */
    bool perNeuronWeights = false;

    /** Activation applied on write-back of the final pass. */
    ActivationKind activation = ActivationKind::Identity;

    /** Output width. */
    unsigned outWidth() const;
    /** Output height. */
    unsigned outHeight() const;
    /** Output neurons per output map. */
    uint64_t neuronsPerMap() const;
    /** Connections per output neuron (paper's "# connections"). */
    uint64_t connectionsPerNeuron() const;
    /** PNG passes needed to execute the layer. */
    unsigned passes() const;
    /**
     * Multiply + add operations for one execution of the layer
     * (2 ops per MAC operation, the accounting used throughout the
     * paper's GOPs numbers). Includes the extra partial-sum
     * connection of accumulating passes.
     */
    uint64_t totalOps() const;
    /** Total synaptic weights stored for the layer. */
    uint64_t weightCount() const;
    /** Output elements (all maps). */
    uint64_t outputElements() const;
    /** Input elements (all maps). */
    uint64_t inputElements() const;

    /** fatal() unless the descriptor is internally consistent. */
    void validate() const;
};

/**
 * Derive the layer descriptor that consumes this layer's output.
 * Convenience for chaining builders.
 */
LayerDesc nextLayerTemplate(const LayerDesc &layer);

} // namespace neurocube

#endif // NEUROCUBE_NN_LAYER_HH
