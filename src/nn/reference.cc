#include "nn/reference.hh"

#include "common/logging.hh"
#include "png/lut.hh"

namespace neurocube
{

namespace
{

/** Channelwise Conv2D / Pool: one pass per output map. */
Tensor
referenceChannelwise(const LayerDesc &layer,
                     const std::vector<Fixed> &weights,
                     const Tensor &input)
{
    const unsigned k = layer.kernel;
    const unsigned stride = layer.stride;
    const bool pool = layer.type == LayerType::Pool;
    const Lut &lut = sharedLut(layer.activation);

    Tensor out(layer.outMaps, layer.outHeight(), layer.outWidth());
    for (unsigned om = 0; om < layer.outMaps; ++om) {
        unsigned im = pool ? om : om % layer.inMaps;
        const Fixed *w =
            pool ? weights.data() : weights.data() + size_t(om) * k * k;
        for (unsigned y = 0; y < out.height(); ++y) {
            for (unsigned x = 0; x < out.width(); ++x) {
                Accum acc;
                for (unsigned dy = 0; dy < k; ++dy) {
                    for (unsigned dx = 0; dx < k; ++dx) {
                        acc.mac(input.at(im, y * stride + dy,
                                         x * stride + dx),
                                w[dy * k + dx]);
                    }
                }
                out.at(om, y, x) = lut.apply(acc.toFixed());
            }
        }
    }
    return out;
}

/**
 * Full Conv2D, single-pass-per-output-map semantics: one wide
 * accumulation over k*k*inMaps connections (the default programming
 * mode; fc1's "256 connections" in the Fig. 9 reconstruction).
 */
Tensor
referenceFullConv(const LayerDesc &layer,
                  const std::vector<Fixed> &weights,
                  const Tensor &input)
{
    const unsigned k = layer.kernel;
    const Lut &lut = sharedLut(layer.activation);

    Tensor out(layer.outMaps, layer.outHeight(), layer.outWidth());
    for (unsigned om = 0; om < layer.outMaps; ++om) {
        const Fixed *wbase =
            weights.data() + size_t(om) * layer.inMaps * k * k;
        for (unsigned y = 0; y < out.height(); ++y) {
            for (unsigned x = 0; x < out.width(); ++x) {
                Accum acc;
                for (unsigned im = 0; im < layer.inMaps; ++im) {
                    const Fixed *w = wbase + size_t(im) * k * k;
                    for (unsigned dy = 0; dy < k; ++dy) {
                        for (unsigned dx = 0; dx < k; ++dx) {
                            acc.mac(input.at(im, y + dy, x + dx),
                                    w[dy * k + dx]);
                        }
                    }
                }
                out.at(om, y, x) = lut.apply(acc.toFixed());
            }
        }
    }
    return out;
}

/**
 * 1x1 full Conv2D with per-neuron weights (the LSTM gate-product
 * block): out[om][n] = act(sum_im in[im][n] * W[(om*N + n)*M + im]).
 */
Tensor
referencePerNeuron(const LayerDesc &layer,
                   const std::vector<Fixed> &weights,
                   const Tensor &input)
{
    const Lut &lut = sharedLut(layer.activation);
    const uint64_t neurons = layer.neuronsPerMap();
    const unsigned conns = unsigned(layer.connectionsPerNeuron());

    Tensor out(layer.outMaps, layer.outHeight(), layer.outWidth());
    for (unsigned om = 0; om < layer.outMaps; ++om) {
        for (unsigned y = 0; y < out.height(); ++y) {
            for (unsigned x = 0; x < out.width(); ++x) {
                uint64_t n = uint64_t(y) * out.width() + x;
                const Fixed *w = weights.data()
                    + (uint64_t(om) * neurons + n) * conns;
                Accum acc;
                for (unsigned im = 0; im < layer.inMaps; ++im)
                    acc.mac(input.at(im, y, x), w[im]);
                out.at(om, y, x) = lut.apply(acc.toFixed());
            }
        }
    }
    return out;
}

/** Full Conv2D with per-input-map passes and partial-sum re-reads. */
Tensor
referenceFullConvSplit(const LayerDesc &layer,
                       const std::vector<Fixed> &weights,
                       const Tensor &input)
{
    const unsigned k = layer.kernel;
    const Lut &lut = sharedLut(layer.activation);
    const Fixed one = Fixed::fromDouble(1.0);

    Tensor out(layer.outMaps, layer.outHeight(), layer.outWidth());
    for (unsigned om = 0; om < layer.outMaps; ++om) {
        for (unsigned im = 0; im < layer.inMaps; ++im) {
            const Fixed *w = weights.data()
                + (size_t(om) * layer.inMaps + im) * k * k;
            bool last = im + 1 == layer.inMaps;
            for (unsigned y = 0; y < out.height(); ++y) {
                for (unsigned x = 0; x < out.width(); ++x) {
                    Accum acc;
                    for (unsigned dy = 0; dy < k; ++dy) {
                        for (unsigned dx = 0; dx < k; ++dx) {
                            acc.mac(input.at(im, y + dy, x + dx),
                                    w[dy * k + dx]);
                        }
                    }
                    if (im > 0) {
                        // The accumulating pass reads the partial sum
                        // back with an implicit weight of 1.0.
                        acc.mac(out.at(om, y, x), one);
                    }
                    Fixed v = acc.toFixed();
                    out.at(om, y, x) = last ? lut.apply(v) : v;
                }
            }
        }
    }
    return out;
}

/** Fully connected layer over the flattened input. */
Tensor
referenceFc(const LayerDesc &layer, const std::vector<Fixed> &weights,
            const Tensor &input)
{
    const Lut &lut = sharedLut(layer.activation);
    const std::vector<Fixed> &flat = input.flat();
    const size_t n = flat.size();
    nc_assert(n == layer.connectionsPerNeuron(),
              "FC input size mismatch: %zu vs %llu", n,
              (unsigned long long)layer.connectionsPerNeuron());

    Tensor out(1, 1, layer.outMaps);
    for (unsigned o = 0; o < layer.outMaps; ++o) {
        Accum acc;
        const Fixed *w = weights.data() + size_t(o) * n;
        for (size_t i = 0; i < n; ++i)
            acc.mac(flat[i], w[i]);
        out.at(0, 0, o) = lut.apply(acc.toFixed());
    }
    return out;
}

} // namespace

Tensor
referenceLayerSplitPasses(const LayerDesc &layer,
                          const std::vector<Fixed> &weights,
                          const Tensor &input)
{
    nc_assert(layer.type == LayerType::Conv2D && !layer.channelwise,
              "split-pass semantics only differ for full Conv2D");
    return referenceFullConvSplit(layer, weights, input);
}

Tensor
referenceLayer(const LayerDesc &layer,
               const std::vector<Fixed> &weights, const Tensor &input)
{
    nc_assert(input.maps() == layer.inMaps
                  && input.height() == layer.inHeight
                  && input.width() == layer.inWidth,
              "input tensor %ux%ux%u does not match layer '%s'",
              input.maps(), input.height(), input.width(),
              layer.name.c_str());
    nc_assert(weights.size() == layer.weightCount(),
              "weight block size %zu != %llu for layer '%s'",
              weights.size(), (unsigned long long)layer.weightCount(),
              layer.name.c_str());

    switch (layer.type) {
      case LayerType::Pool:
        return referenceChannelwise(layer, weights, input);
      case LayerType::Conv2D:
        if (layer.perNeuronWeights)
            return referencePerNeuron(layer, weights, input);
        return layer.channelwise
                   ? referenceChannelwise(layer, weights, input)
                   : referenceFullConv(layer, weights, input);
      case LayerType::FullyConnected:
        return referenceFc(layer, weights, input);
    }
    nc_panic("unknown layer type");
    return Tensor();
}

std::vector<Tensor>
referenceForward(const NetworkDesc &net, const NetworkData &data,
                 const Tensor &input)
{
    nc_assert(data.weights.size() == net.layers.size(),
              "parameter count mismatch for network '%s'",
              net.name.c_str());
    std::vector<Tensor> outputs;
    const Tensor *current = &input;
    for (size_t i = 0; i < net.layers.size(); ++i) {
        outputs.push_back(
            referenceLayer(net.layers[i], data.weights[i], *current));
        current = &outputs.back();
    }
    return outputs;
}

} // namespace neurocube
