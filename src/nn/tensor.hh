/**
 * @file
 * A minimal plane-major fixed-point tensor (maps x height x width).
 *
 * Used for network inputs, reference activations and weight blocks.
 * Values are Q1.7.8 so the sequential reference model and the
 * cycle-level simulation operate on identical bit patterns.
 */

#ifndef NEUROCUBE_NN_TENSOR_HH
#define NEUROCUBE_NN_TENSOR_HH

#include <cstdint>
#include <vector>

#include "common/fixed_point.hh"
#include "common/logging.hh"
#include "common/rng.hh"

namespace neurocube
{

/** Plane-major 3D tensor of Q1.7.8 values. */
class Tensor
{
  public:
    Tensor() = default;

    /** Zero-filled tensor of the given shape. */
    Tensor(unsigned maps, unsigned height, unsigned width)
        : maps_(maps), height_(height), width_(width),
          data_(size_t(maps) * height * width)
    {
    }

    unsigned maps() const { return maps_; }
    unsigned height() const { return height_; }
    unsigned width() const { return width_; }

    /** Total elements. */
    size_t size() const { return data_.size(); }

    /** Element accessor. */
    Fixed &
    at(unsigned map, unsigned y, unsigned x)
    {
        nc_assert(map < maps_ && y < height_ && x < width_,
                  "tensor index (%u,%u,%u) out of (%u,%u,%u)", map, y,
                  x, maps_, height_, width_);
        return data_[(size_t(map) * height_ + y) * width_ + x];
    }

    /** Const element accessor. */
    Fixed
    at(unsigned map, unsigned y, unsigned x) const
    {
        return const_cast<Tensor *>(this)->at(map, y, x);
    }

    /** Flat storage (plane-major). */
    const std::vector<Fixed> &flat() const { return data_; }
    std::vector<Fixed> &flat() { return data_; }

    /** Fill with uniform values in [lo, hi] from a seeded RNG. */
    void
    randomize(Rng &rng, double lo = -1.0, double hi = 1.0)
    {
        for (Fixed &v : data_)
            v = Fixed::fromDouble(rng.uniform(lo, hi));
    }

    bool operator==(const Tensor &other) const = default;

  private:
    unsigned maps_ = 0;
    unsigned height_ = 0;
    unsigned width_ = 0;
    std::vector<Fixed> data_;
};

} // namespace neurocube

#endif // NEUROCUBE_NN_TENSOR_HH
