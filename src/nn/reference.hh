/**
 * @file
 * Sequential bit-exact reference model.
 *
 * Computes the same Q1.7.8 arithmetic the Neurocube performs — wide
 * integer accumulation per pass, truncation to Q1.7.8 at pass
 * boundaries, LUT activation on the final pass — so the cycle-level
 * simulation's memory contents can be compared bit-for-bit.
 *
 * Weight layout contract (shared with the layer program compiler):
 *  - Conv2D channelwise: W[outMap * k*k + c], c row-major (dy, dx).
 *  - Conv2D full: W[(outMap * inMaps + inMap) * k*k + c].
 *  - Pool: W[c], k*k entries (1/(k*k) for average pooling).
 *  - FullyConnected: W[out * N + i], i plane-major over the input
 *    tensor (map, y, x).
 */

#ifndef NEUROCUBE_NN_REFERENCE_HH
#define NEUROCUBE_NN_REFERENCE_HH

#include <vector>

#include "nn/network.hh"
#include "nn/tensor.hh"

namespace neurocube
{

/**
 * Execute one layer sequentially.
 *
 * @param layer descriptor
 * @param weights the layer's flat weight block
 * @param input input tensor (inMaps x inHeight x inWidth)
 * @return output tensor (outMaps x outHeight x outWidth; 1 x 1 x out
 *         for fully connected layers)
 */
Tensor referenceLayer(const LayerDesc &layer,
                      const std::vector<Fixed> &weights,
                      const Tensor &input);

/**
 * Full-Conv2D semantics of the split-pass programming mode
 * (NeurocubeConfig::splitFullConvPasses): one pass per (outMap,
 * inMap) with the partial sum truncated to Q1.7.8 and re-read with
 * weight 1.0 between passes. Bit-exact counterpart of that mode.
 */
Tensor referenceLayerSplitPasses(const LayerDesc &layer,
                                 const std::vector<Fixed> &weights,
                                 const Tensor &input);

/**
 * Execute the whole network sequentially.
 *
 * @param net network description
 * @param data network parameters
 * @param input input tensor
 * @return the output tensor of every layer, in order
 */
std::vector<Tensor> referenceForward(const NetworkDesc &net,
                                     const NetworkData &data,
                                     const Tensor &input);

} // namespace neurocube

#endif // NEUROCUBE_NN_REFERENCE_HH
