#include "nn/mapping.hh"

#include <cmath>

#include "common/logging.hh"
#include "dram/dram_params.hh"

namespace neurocube
{

void
tileGridShape(unsigned num_vaults, const Rect &area, unsigned &grid_w,
              unsigned &grid_h)
{
    if (area.h == 1) {
        // Vectors are split along their single row.
        grid_w = num_vaults;
        grid_h = 1;
        return;
    }
    // Squarest factorization of the vault count (4x4 for 16).
    unsigned best = 1;
    for (unsigned f = 1; f * f <= num_vaults; ++f) {
        if (num_vaults % f == 0)
            best = f;
    }
    grid_h = best;
    grid_w = num_vaults / best;
}

Rect
inputNeeded(const LayerDesc &layer, const Rect &out_tile)
{
    if (layer.type == LayerType::FullyConnected) {
        // Every output neuron reads the whole input.
        return {0, 0, int32_t(layer.inWidth), int32_t(layer.inHeight)};
    }
    int32_t s = int32_t(layer.stride);
    int32_t k = int32_t(layer.kernel);
    return {out_tile.x0 * s, out_tile.y0 * s,
            (out_tile.w - 1) * s + k, (out_tile.h - 1) * s + k};
}

LayerMapping
buildLayerMapping(const LayerDesc &layer, const MappingPolicy &policy,
                  unsigned num_vaults)
{
    LayerMapping mapping;

    Rect in_rect{0, 0, int32_t(layer.inWidth), int32_t(layer.inHeight)};
    Rect out_rect{0, 0, int32_t(layer.outWidth()),
                  int32_t(layer.outHeight())};

    unsigned gw, gh;
    tileGridShape(num_vaults, in_rect, gw, gh);
    mapping.inTiles = TileMap::grid(in_rect, gw, gh);
    tileGridShape(num_vaults, out_rect, gw, gh);
    mapping.outTiles = TileMap::grid(out_rect, gw, gh);

    mapping.weightsPerNeuron =
        layer.type == LayerType::FullyConnected;

    bool fc = layer.type == LayerType::FullyConnected;
    bool duplicate = fc ? policy.duplicateFcInput
                        : policy.duplicateConvHalo;

    mapping.storedInput.resize(num_vaults);
    mapping.weightElements.resize(num_vaults);
    bool any_dup = false;
    for (unsigned v = 0; v < num_vaults; ++v) {
        Rect owned = mapping.inTiles.tile(v);
        if (duplicate) {
            Rect needed = inputNeeded(layer, mapping.outTiles.tile(v));
            // Clip to the image; keep at least the owned tile so the
            // vault still serves its share of lateral requests when
            // its own output tile is degenerate.
            Rect stored{std::min(needed.x0, owned.x0),
                        std::min(needed.y0, owned.y0), 0, 0};
            stored.w = std::max(needed.x0 + needed.w,
                                owned.x0 + owned.w) - stored.x0;
            stored.h = std::max(needed.y0 + needed.h,
                                owned.y0 + owned.h) - stored.y0;
            stored = stored.expandedWithin(0, in_rect);
            mapping.storedInput[v] = stored;
            if (stored.count() > owned.count())
                any_dup = true;
        } else {
            mapping.storedInput[v] = owned;
        }

        if (fc) {
            // Partitioned weight matrix (Fig. 10d/e).
            uint64_t out_count;
            uint64_t conns = layer.connectionsPerNeuron();
            if (duplicate) {
                // Rows of the vault's own output neurons.
                out_count = mapping.outTiles.tile(v).count();
                mapping.weightElements[v] = out_count * conns;
            } else {
                // Columns of the vault's input slice, for all rows.
                uint64_t slice = mapping.inTiles.tile(v).count()
                               * layer.inMaps;
                mapping.weightElements[v] =
                    uint64_t(layer.outMaps) * slice;
            }
        } else if (layer.type == LayerType::Conv2D
                   && layer.perNeuronWeights) {
            // Per-neuron weights are partitioned with the outputs.
            mapping.weightElements[v] =
                mapping.outTiles.tile(v).count()
                * layer.connectionsPerNeuron() * layer.outMaps;
        } else {
            // Shared kernels are duplicated in every vault.
            mapping.weightElements[v] = layer.weightCount();
        }
    }
    mapping.duplicated = duplicate && (any_dup || fc);
    return mapping;
}

std::vector<LaneSpec>
buildLanePartition(unsigned num_nodes, unsigned lanes)
{
    nc_assert(lanes >= 1, "lane count must be positive");
    unsigned mesh_w = 1;
    while (mesh_w * mesh_w < num_nodes)
        ++mesh_w;
    nc_assert(mesh_w * mesh_w == num_nodes,
              "lane partition needs a square mesh, got %u nodes",
              num_nodes);

    // Squarest factorization of the lane count (1x2 for 2 lanes on a
    // square mesh would leave non-square groups; prefer lw <= lh so
    // 2 lanes split into top/bottom halves, 4 into quadrants).
    unsigned lw = 1;
    for (unsigned f = 1; f * f <= lanes; ++f) {
        if (lanes % f == 0)
            lw = f;
    }
    unsigned lh = lanes / lw;
    nc_assert(mesh_w % lw == 0 && mesh_w % lh == 0,
              "%u lanes do not tile a %ux%u mesh", lanes, mesh_w,
              mesh_w);

    unsigned sub_w = mesh_w / lw;
    unsigned sub_h = mesh_w / lh;
    std::vector<LaneSpec> partition;
    partition.reserve(lanes);
    for (unsigned ly = 0; ly < lh; ++ly) {
        for (unsigned lx = 0; lx < lw; ++lx) {
            LaneSpec lane;
            lane.index = unsigned(partition.size());
            lane.meshW = sub_w;
            lane.meshH = sub_h;
            for (unsigned y = 0; y < sub_h; ++y) {
                for (unsigned x = 0; x < sub_w; ++x) {
                    lane.nodes.push_back((ly * sub_h + y) * mesh_w
                                         + lx * sub_w + x);
                }
            }
            partition.push_back(std::move(lane));
        }
    }
    return partition;
}

LayerFootprint
layerFootprint(const LayerDesc &layer, const MappingPolicy &policy,
               unsigned num_vaults)
{
    LayerMapping mapping = buildLayerMapping(layer, policy, num_vaults);

    LayerFootprint fp;
    fp.inputBytes = layer.inputElements() * bytesPerElement;
    fp.weightBytes = layer.weightCount() * bytesPerElement;
    fp.outputBytes = layer.outputElements() * bytesPerElement;

    uint64_t stored_input = 0;
    uint64_t stored_weights = 0;
    for (unsigned v = 0; v < num_vaults; ++v) {
        stored_input += mapping.storedInput[v].count() * layer.inMaps;
        stored_weights += mapping.weightElements[v];
    }
    fp.duplicationBytes =
        stored_input * bytesPerElement - fp.inputBytes;
    fp.weightCopyBytes =
        stored_weights * bytesPerElement - fp.weightBytes;
    return fp;
}

uint64_t
networkUniqueBytes(const std::vector<LayerDesc> &layers)
{
    nc_assert(!layers.empty(), "footprint of an empty network");
    uint64_t bytes = layers.front().inputElements() * bytesPerElement;
    for (const LayerDesc &layer : layers) {
        bytes += (layer.weightCount() + layer.outputElements())
               * bytesPerElement;
    }
    return bytes;
}

uint64_t
networkDuplicationBytes(const std::vector<LayerDesc> &layers,
                        const MappingPolicy &policy,
                        unsigned num_vaults)
{
    uint64_t bytes = 0;
    for (const LayerDesc &layer : layers)
        bytes += layerFootprint(layer, policy, num_vaults)
                     .duplicationBytes;
    return bytes;
}

} // namespace neurocube
