/**
 * @file
 * Whole-network description, parameter storage and stock builders.
 *
 * Builders cover the paper's workloads: the 7-layer scene-labeling
 * ConvNN (Fig. 9; see DESIGN.md for the reconstruction of the figure
 * parameters from the text), an MNIST-style MLP (Fig. 1), and small
 * synthetic networks for tests and sweeps.
 */

#ifndef NEUROCUBE_NN_NETWORK_HH
#define NEUROCUBE_NN_NETWORK_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "nn/layer.hh"
#include "nn/tensor.hh"

namespace neurocube
{

/** A feed-forward network: an ordered list of layer descriptors. */
struct NetworkDesc
{
    std::string name;
    std::vector<LayerDesc> layers;

    /** Input geometry (from the first layer). */
    unsigned inputWidth() const { return layers.front().inWidth; }
    unsigned inputHeight() const { return layers.front().inHeight; }
    unsigned inputMaps() const { return layers.front().inMaps; }

    /** Total multiply+add operations for one forward execution. */
    uint64_t totalOps() const;
    /** Total synaptic weights. */
    uint64_t totalWeights() const;
    /** fatal() unless layer shapes chain consistently. */
    void validate() const;
};

/**
 * The learned parameters of a network: one flat weight block per
 * layer, laid out exactly as the layer program compiler stores them
 * in the vaults (see WeightIndexer in reference.cc for the layout).
 */
struct NetworkData
{
    std::vector<std::vector<Fixed>> weights;

    /** Allocate per-layer blocks and fill with small random values. */
    static NetworkData randomized(const NetworkDesc &net,
                                  uint64_t seed);
    /** Allocate zero-filled blocks of the right shapes. */
    static NetworkData zeros(const NetworkDesc &net);
};

/**
 * The scene-labeling ConvNN (Fig. 9) for a given input size.
 *
 * Structure: conv7x7 (3->16) -> pool2x2 -> conv7x7 (16->64) ->
 * pool2x2 -> conv7x7 (64->256) -> 1x1 FC classifier (256->64) ->
 * 1x1 FC classifier (64->8). The default 320x240 input reproduces the
 * paper's layer-1 programming example (73,476 neurons = 314x234, 49
 * connections); training uses 64x64.
 *
 * @param width input image width (default 320)
 * @param height input image height (default 240)
 */
NetworkDesc sceneLabelingNetwork(unsigned width = 320,
                                 unsigned height = 240);

/**
 * MNIST-style MLP: 28x28 input -> hidden -> 10 outputs, sigmoid.
 *
 * @param hidden hidden-layer width (default 500)
 */
NetworkDesc mnistMlp(unsigned hidden = 500);

/**
 * A single 2D convolutional layer network (Fig. 14a/b sweeps).
 *
 * @param width input width
 * @param height input height
 * @param kernel spatial kernel size
 * @param maps output feature maps
 */
NetworkDesc singleConvNetwork(unsigned width, unsigned height,
                              unsigned kernel, unsigned maps = 1);

/**
 * A 3-layer fully-connected network (Fig. 14c/d sweeps): input ->
 * hidden -> output.
 *
 * @param input input vector size
 * @param hidden hidden-layer width
 * @param output output vector size
 */
NetworkDesc threeLayerMlp(unsigned input, unsigned hidden,
                          unsigned output);

} // namespace neurocube

#endif // NEUROCUBE_NN_NETWORK_HH
