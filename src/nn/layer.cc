#include "nn/layer.hh"

#include "common/logging.hh"

namespace neurocube
{

const char *
layerTypeName(LayerType type)
{
    switch (type) {
      case LayerType::Conv2D:         return "conv";
      case LayerType::Pool:           return "pool";
      case LayerType::FullyConnected: return "fc";
    }
    return "?";
}

unsigned
LayerDesc::outWidth() const
{
    switch (type) {
      case LayerType::Conv2D:
        return inWidth - kernel + 1;
      case LayerType::Pool:
        return inWidth / stride;
      case LayerType::FullyConnected:
        // Output is a 1 x outMaps vector; outMaps carries the size.
        return outMaps;
    }
    return 0;
}

unsigned
LayerDesc::outHeight() const
{
    switch (type) {
      case LayerType::Conv2D:
        return inHeight - kernel + 1;
      case LayerType::Pool:
        return inHeight / stride;
      case LayerType::FullyConnected:
        return 1;
    }
    return 0;
}

uint64_t
LayerDesc::neuronsPerMap() const
{
    if (type == LayerType::FullyConnected)
        return outMaps;
    return uint64_t(outWidth()) * outHeight();
}

uint64_t
LayerDesc::connectionsPerNeuron() const
{
    switch (type) {
      case LayerType::Conv2D:
        // Channelwise passes read one input map (the Fig. 9
        // programming example: 49 connections for a 7x7 kernel);
        // full convolutions connect to the neighbourhood of every
        // input map (256 connections for the 1x1 classifier).
        return channelwise
                   ? uint64_t(kernel) * kernel
                   : uint64_t(kernel) * kernel * inMaps;
      case LayerType::Pool:
        return uint64_t(kernel) * kernel;
      case LayerType::FullyConnected:
        return uint64_t(inWidth) * inHeight * inMaps;
    }
    return 0;
}

unsigned
LayerDesc::passes() const
{
    switch (type) {
      case LayerType::Conv2D:
      case LayerType::Pool:
        return outMaps;
      case LayerType::FullyConnected:
        return 1;
    }
    return 0;
}

uint64_t
LayerDesc::totalOps() const
{
    uint64_t conns = connectionsPerNeuron();
    switch (type) {
      case LayerType::Conv2D:
      case LayerType::Pool:
        return 2 * neuronsPerMap() * conns * outMaps;
      case LayerType::FullyConnected:
        return 2 * neuronsPerMap() * conns;
    }
    return 0;
}

uint64_t
LayerDesc::weightCount() const
{
    switch (type) {
      case LayerType::Conv2D:
        if (perNeuronWeights) {
            return connectionsPerNeuron() * neuronsPerMap()
                 * outMaps;
        }
        if (channelwise)
            return uint64_t(kernel) * kernel * outMaps;
        return uint64_t(kernel) * kernel * inMaps * outMaps;
      case LayerType::Pool:
        return uint64_t(kernel) * kernel;
      case LayerType::FullyConnected:
        return connectionsPerNeuron() * outMaps;
    }
    return 0;
}

uint64_t
LayerDesc::outputElements() const
{
    if (type == LayerType::FullyConnected)
        return outMaps;
    return neuronsPerMap() * outMaps;
}

uint64_t
LayerDesc::inputElements() const
{
    return uint64_t(inWidth) * inHeight * inMaps;
}

void
LayerDesc::validate() const
{
    if (inWidth == 0 || inHeight == 0 || inMaps == 0)
        nc_fatal("layer '%s': empty input geometry", name.c_str());
    if (outMaps == 0)
        nc_fatal("layer '%s': zero output maps", name.c_str());
    switch (type) {
      case LayerType::Conv2D:
        if (kernel == 0 || kernel > inWidth || kernel > inHeight)
            nc_fatal("layer '%s': kernel %u does not fit %ux%u input",
                     name.c_str(), kernel, inWidth, inHeight);
        if (stride != 1)
            nc_fatal("layer '%s': Conv2D requires stride 1",
                     name.c_str());
        if (channelwise && inMaps > outMaps)
            nc_fatal("layer '%s': channelwise conv needs outMaps >= "
                     "inMaps", name.c_str());
        if (perNeuronWeights && (kernel != 1 || channelwise))
            nc_fatal("layer '%s': per-neuron weights require a 1x1 "
                     "full convolution", name.c_str());
        break;
      case LayerType::Pool:
        if (stride != kernel)
            nc_fatal("layer '%s': pooling requires stride == kernel",
                     name.c_str());
        if (inMaps != outMaps)
            nc_fatal("layer '%s': pooling preserves map count",
                     name.c_str());
        break;
      case LayerType::FullyConnected:
        break;
    }
}

LayerDesc
nextLayerTemplate(const LayerDesc &layer)
{
    LayerDesc next;
    next.inWidth = layer.outWidth();
    next.inHeight = layer.outHeight();
    next.inMaps = layer.type == LayerType::FullyConnected
                      ? 1
                      : layer.outMaps;
    if (layer.type == LayerType::FullyConnected) {
        next.inWidth = layer.outMaps;
        next.inHeight = 1;
    }
    return next;
}

} // namespace neurocube
