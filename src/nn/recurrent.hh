/**
 * @file
 * Recurrent networks on the Neurocube (paper Section VI, "Extending
 * Neurocube for Other Neural Networks").
 *
 * The paper claims that an RNN "is equivalent to a deep MLP after
 * unfolding in time", and that LSTM "can be realized by updating the
 * LUT for each layer during programming". This module makes both
 * claims executable:
 *
 *  - a vanilla RNN step h_t = act(W * [x_t, h_{t-1}, 1]) is one
 *    fully connected pass over the concatenated input (the trailing
 *    1 folds the bias into the weight matrix); a T-step sequence is
 *    T such passes with shared weights;
 *  - an LSTM step is seven passes: four fully connected gate passes
 *    (i, f, o with sigmoid LUTs; g with a tanh LUT — exactly the
 *    per-pass LUT reprogramming the paper describes), the cell
 *    update c = f (.) c_prev + i (.) g as one per-neuron-weight
 *    elementwise pass, a tanh pass over c, and h = o (.) tanh(c) as
 *    a final elementwise pass.
 *
 * Both the machine path (executing on a Neurocube) and a sequential
 * reference path are provided; they are bit-identical.
 */

#ifndef NEUROCUBE_NN_RECURRENT_HH
#define NEUROCUBE_NN_RECURRENT_HH

#include <vector>

#include "nn/layer.hh"
#include "nn/network.hh"
#include "nn/tensor.hh"

namespace neurocube
{

/** A vanilla recurrent layer unrolled over time. */
struct RnnDesc
{
    unsigned inputSize = 0;
    unsigned hiddenSize = 0;
    unsigned timeSteps = 1;
    ActivationKind activation = ActivationKind::Tanh;

    /** The FC layer descriptor of one unfolded step. */
    LayerDesc stepLayer() const;
    /** Weights per step: hidden x (input + hidden + 1 bias). */
    uint64_t weightCount() const;
};

/** Parameters of an LSTM layer (four gate matrices). */
struct LstmDesc
{
    unsigned inputSize = 0;
    unsigned hiddenSize = 0;
    unsigned timeSteps = 1;

    /** The FC descriptor of one gate pass. */
    LayerDesc gateLayer(ActivationKind activation) const;
    /** Weights per gate: hidden x (input + hidden + 1 bias). */
    uint64_t gateWeightCount() const;
};

/** Gate weight blocks of an LSTM. */
struct LstmWeights
{
    std::vector<Fixed> wi; ///< input gate
    std::vector<Fixed> wf; ///< forget gate
    std::vector<Fixed> wo; ///< output gate
    std::vector<Fixed> wg; ///< candidate

    /** Random initialization sized for the descriptor. */
    static LstmWeights randomized(const LstmDesc &desc,
                                  uint64_t seed);
};

/** Concatenate [x, h, 1] into one FC input vector. */
Tensor concatWithBias(const Tensor &x, const Tensor &h);

/**
 * The elementwise cell-update layer c = f (.) c_prev + i (.) g as a
 * per-neuron-weight 1x1 convolution: the input tensor stacks the
 * planes (c_prev, g) and the weight block interleaves (f_j, i_j).
 */
LayerDesc lstmCellUpdateLayer(unsigned hidden);

/** One-plane per-neuron scaling layer: out = act(in (.) scale). */
LayerDesc lstmScaleLayer(unsigned hidden, ActivationKind act,
                         const char *name);

/** Stack two 1x1xN vectors into a 2-plane tensor. */
Tensor stackPlanes(const Tensor &a, const Tensor &b);

/** Interleave two gate vectors into per-neuron weights [f_j, i_j]. */
std::vector<Fixed> interleaveGates(const Tensor &f, const Tensor &i);

/** Per-neuron weights from one gate vector. */
std::vector<Fixed> gateWeights(const Tensor &gate);

/** Constant-1.0 per-neuron weights (a pure activation pass). */
std::vector<Fixed> unitWeights(unsigned hidden);

/** Sequential reference of the RNN (bit-exact with the machine). */
std::vector<Tensor> referenceRnn(const RnnDesc &desc,
                                 const std::vector<Fixed> &weights,
                                 const std::vector<Tensor> &inputs);

/** Sequential reference of the LSTM (bit-exact with the machine). */
std::vector<Tensor> referenceLstm(const LstmDesc &desc,
                                  const LstmWeights &weights,
                                  const std::vector<Tensor> &inputs);

} // namespace neurocube

#endif // NEUROCUBE_NN_RECURRENT_HH
