#include "nn/recurrent.hh"

#include "common/logging.hh"
#include "nn/reference.hh"

namespace neurocube
{

LayerDesc
RnnDesc::stepLayer() const
{
    LayerDesc fc;
    fc.type = LayerType::FullyConnected;
    fc.name = "rnn-step";
    fc.inWidth = inputSize + hiddenSize + 1;
    fc.inHeight = 1;
    fc.inMaps = 1;
    fc.outMaps = hiddenSize;
    fc.activation = activation;
    return fc;
}

uint64_t
RnnDesc::weightCount() const
{
    return uint64_t(hiddenSize) * (inputSize + hiddenSize + 1);
}

LayerDesc
LstmDesc::gateLayer(ActivationKind act) const
{
    LayerDesc fc;
    fc.type = LayerType::FullyConnected;
    fc.name = "lstm-gate";
    fc.inWidth = inputSize + hiddenSize + 1;
    fc.inHeight = 1;
    fc.inMaps = 1;
    fc.outMaps = hiddenSize;
    fc.activation = act;
    return fc;
}

uint64_t
LstmDesc::gateWeightCount() const
{
    return uint64_t(hiddenSize) * (inputSize + hiddenSize + 1);
}

LstmWeights
LstmWeights::randomized(const LstmDesc &desc, uint64_t seed)
{
    Rng rng(seed);
    uint64_t count = desc.gateWeightCount();
    double bound = 2.0 / double(desc.inputSize + desc.hiddenSize + 1);
    auto fill = [&](std::vector<Fixed> &w) {
        w.resize(count);
        for (Fixed &v : w)
            v = Fixed::fromDouble(rng.uniform(-bound, bound));
    };
    LstmWeights weights;
    fill(weights.wi);
    fill(weights.wf);
    fill(weights.wo);
    fill(weights.wg);
    return weights;
}

Tensor
concatWithBias(const Tensor &x, const Tensor &h)
{
    nc_assert(x.maps() == 1 && x.height() == 1
                  && h.maps() == 1 && h.height() == 1,
              "concatWithBias expects 1x1xN vectors");
    Tensor z(1, 1, x.width() + h.width() + 1);
    for (unsigned i = 0; i < x.width(); ++i)
        z.at(0, 0, i) = x.at(0, 0, i);
    for (unsigned i = 0; i < h.width(); ++i)
        z.at(0, 0, x.width() + i) = h.at(0, 0, i);
    z.at(0, 0, x.width() + h.width()) = Fixed::fromDouble(1.0);
    return z;
}

LayerDesc
lstmCellUpdateLayer(unsigned hidden)
{
    LayerDesc cell;
    cell.type = LayerType::Conv2D;
    cell.name = "lstm-cell";
    cell.inWidth = hidden;
    cell.inHeight = 1;
    cell.inMaps = 2;
    cell.outMaps = 1;
    cell.kernel = 1;
    cell.channelwise = false;
    cell.perNeuronWeights = true;
    cell.activation = ActivationKind::Identity;
    return cell;
}

/** One-plane per-neuron scaling layer: out = act(in (.) scale). */
LayerDesc
lstmScaleLayer(unsigned hidden, ActivationKind act, const char *name)
{
    LayerDesc layer;
    layer.type = LayerType::Conv2D;
    layer.name = name;
    layer.inWidth = hidden;
    layer.inHeight = 1;
    layer.inMaps = 1;
    layer.outMaps = 1;
    layer.kernel = 1;
    layer.channelwise = false;
    layer.perNeuronWeights = true;
    layer.activation = act;
    return layer;
}

/** Stack two 1x1xN vectors into a 2-plane tensor. */
Tensor
stackPlanes(const Tensor &a, const Tensor &b)
{
    Tensor out(2, 1, a.width());
    for (unsigned i = 0; i < a.width(); ++i) {
        out.at(0, 0, i) = a.at(0, 0, i);
        out.at(1, 0, i) = b.at(0, 0, i);
    }
    return out;
}

/** Interleave two gate vectors into per-neuron weights [f_j, i_j]. */
std::vector<Fixed>
interleaveGates(const Tensor &f, const Tensor &i)
{
    std::vector<Fixed> w(size_t(f.width()) * 2);
    for (unsigned j = 0; j < f.width(); ++j) {
        w[size_t(j) * 2] = f.at(0, 0, j);
        w[size_t(j) * 2 + 1] = i.at(0, 0, j);
    }
    return w;
}

/** Per-neuron weights from one gate vector. */
std::vector<Fixed>
gateWeights(const Tensor &gate)
{
    std::vector<Fixed> w(gate.width());
    for (unsigned j = 0; j < gate.width(); ++j)
        w[j] = gate.at(0, 0, j);
    return w;
}

/** Constant-1.0 per-neuron weights (a pure activation pass). */
std::vector<Fixed>
unitWeights(unsigned hidden)
{
    return std::vector<Fixed>(hidden, Fixed::fromDouble(1.0));
}

std::vector<Tensor>
referenceRnn(const RnnDesc &desc, const std::vector<Fixed> &weights,
             const std::vector<Tensor> &inputs)
{
    nc_assert(weights.size() == desc.weightCount(),
              "RNN weight block size mismatch");
    LayerDesc step = desc.stepLayer();
    Tensor h(1, 1, desc.hiddenSize);
    std::vector<Tensor> states;
    for (const Tensor &x : inputs) {
        Tensor z = concatWithBias(x, h);
        h = referenceLayer(step, weights, z);
        states.push_back(h);
    }
    return states;
}

std::vector<Tensor>
referenceLstm(const LstmDesc &desc, const LstmWeights &weights,
              const std::vector<Tensor> &inputs)
{
    LayerDesc sig = desc.gateLayer(ActivationKind::Sigmoid);
    LayerDesc tanh_gate = desc.gateLayer(ActivationKind::Tanh);
    LayerDesc cell = lstmCellUpdateLayer(desc.hiddenSize);
    LayerDesc tanh_c = lstmScaleLayer(desc.hiddenSize,
                                      ActivationKind::Tanh,
                                      "tanh-c");
    LayerDesc out_scale = lstmScaleLayer(
        desc.hiddenSize, ActivationKind::Identity, "h");

    Tensor h(1, 1, desc.hiddenSize);
    Tensor c(1, 1, desc.hiddenSize);
    std::vector<Tensor> states;
    for (const Tensor &x : inputs) {
        Tensor z = concatWithBias(x, h);
        Tensor i = referenceLayer(sig, weights.wi, z);
        Tensor f = referenceLayer(sig, weights.wf, z);
        Tensor o = referenceLayer(sig, weights.wo, z);
        Tensor g = referenceLayer(tanh_gate, weights.wg, z);
        c = referenceLayer(cell, interleaveGates(f, i),
                           stackPlanes(c, g));
        Tensor tc = referenceLayer(tanh_c,
                                   unitWeights(desc.hiddenSize), c);
        h = referenceLayer(out_scale, gateWeights(o), tc);
        states.push_back(h);
    }
    return states;
}

} // namespace neurocube
