/**
 * @file
 * The paper's flagship workload end to end: the 7-layer scene-
 * labeling ConvNN (Fig. 9) running on the Neurocube.
 *
 * Runs inference on a synthetic image, prints the per-layer
 * programming parameters (the Fig. 9 table) and performance, then a
 * training iteration on a 64x64 input (the Fig. 13 setup). Pass a
 * width and height to change the input size, e.g.:
 *
 *   scene_labeling 160 120
 */

#include <cstdio>
#include <cstdlib>

#include "common/stats.hh"
#include "core/neurocube.hh"
#include "core/training.hh"
#include "nn/reference.hh"
#include "power/power_model.hh"

using namespace neurocube;

namespace
{

void
printProgrammingParameters(const NetworkDesc &net)
{
    std::printf("\nprogramming parameters per layer (Fig. 9):\n");
    TextTable table({"layer", "type", "output", "# neurons",
                     "# connections", "passes", "activation"});
    for (const LayerDesc &l : net.layers) {
        table.addRow(
            {l.name, layerTypeName(l.type),
             std::to_string(l.outWidth()) + "x"
                 + std::to_string(l.outHeight()) + "x"
                 + std::to_string(l.type == LayerType::FullyConnected
                                      ? 1
                                      : l.outMaps),
             formatCount(l.neuronsPerMap()),
             formatCount(l.connectionsPerNeuron()),
             std::to_string(l.passes()),
             activationName(l.activation)});
    }
    std::printf("%s", table.str().c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    unsigned width = argc > 1 ? unsigned(std::atoi(argv[1])) : 160;
    unsigned height = argc > 2 ? unsigned(std::atoi(argv[2])) : 120;

    NetworkDesc net = sceneLabelingNetwork(width, height);
    printProgrammingParameters(net);

    NetworkData data = NetworkData::randomized(net, 11);
    Tensor image(3, height, width);
    Rng rng(12);
    image.randomize(rng);

    // --- Inference.
    NeurocubeConfig config;
    Neurocube cube(config);
    cube.loadNetwork(net, data);
    cube.setInput(image);

    std::printf("\ninference on a %ux%u image:\n", width, height);
    RunResult run = cube.runForward();
    TextTable table({"layer", "ops (M)", "cycles (K)",
                     "GOPs/s@5GHz"});
    for (const LayerResult &l : run.layers) {
        table.addRow({l.name, formatDouble(double(l.ops) / 1e6, 2),
                      formatDouble(double(l.cycles) / 1e3, 1),
                      formatDouble(l.gopsPerSecond(), 1)});
    }
    std::printf("%s", table.str().c_str());

    PowerModel m15(TechNode::Nm15);
    std::printf("total: %.1f GOPs/s @5GHz, %.1f frames/s (15nm), "
                "compute power %.2f W -> %.1f GOPs/s/W\n",
                run.gopsPerSecond(),
                run.framesPerSecond(m15.throughputClockGhz()),
                m15.computePowerW(),
                m15.efficiencyGopsPerWatt(run.gopsPerSecond()));

    // --- Verify the machine against the sequential reference.
    auto expect = referenceForward(net, data, image);
    size_t mismatches = 0;
    const Tensor &out = cube.layerOutput(net.layers.size() - 1);
    const Tensor &ref = expect.back();
    for (unsigned m = 0; m < out.maps(); ++m)
        for (unsigned y = 0; y < out.height(); ++y)
            for (unsigned x = 0; x < out.width(); ++x)
                if (!(out.at(m, y, x) == ref.at(m, y, x)))
                    ++mismatches;
    std::printf("bit-exact check vs reference: %zu mismatches (%s)\n",
                mismatches, mismatches == 0 ? "PASS" : "FAIL");

    // --- Training iteration (Fig. 13 setup: 64x64).
    std::printf("\ntraining iteration on a 64x64 input:\n");
    NetworkDesc train_net = sceneLabelingNetwork(64, 64);
    NetworkData train_data = NetworkData::randomized(train_net, 13);
    Tensor sample(3, 64, 64);
    sample.randomize(rng);
    Neurocube trainer(config);
    RunResult titer =
        runTrainingIteration(trainer, train_net, train_data, sample);
    std::printf("passes: %zu (forward + backward-delta), %.1f MOp, "
                "%.1f GOPs/s @5GHz, %.1f iterations/s (15nm)\n",
                titer.layers.size(),
                double(titer.totalOps()) / 1e6, titer.gopsPerSecond(),
                titer.framesPerSecond(m15.throughputClockGhz()));

    return mismatches == 0 ? 0 : 1;
}
