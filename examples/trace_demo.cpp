/**
 * @file
 * Tracing walkthrough: runs the first scene-labeling convolution
 * layer on a small input with the trace subsystem enabled and writes
 *
 *   trace_demo.trace.json — load in https://ui.perfetto.dev or
 *       chrome://tracing: one track per router / PE / PNG / vault
 *       with MAC bursts, FSM phases, queue depths, and per-window
 *       counters;
 *   trace_demo.trace.csv — windowed time series (utilization %,
 *       flits/cycle, DRAM bytes/cycle per vault) for plotting.
 *
 * Optional arguments: input width and height (default 48x48), e.g.
 *
 *   trace_demo 64 64
 */

#include <cstdio>
#include <cstdlib>

#include "core/neurocube.hh"
#include "nn/reference.hh"

using namespace neurocube;

int
main(int argc, char **argv)
{
    unsigned width = argc > 1 ? unsigned(std::atoi(argv[1])) : 48;
    unsigned height = argc > 2 ? unsigned(std::atoi(argv[2])) : 48;

#if !NEUROCUBE_TRACE_ENABLED
    std::printf("note: built with -DNEUROCUBE_TRACE=OFF; no trace "
                "files will be written.\n");
#endif

    NetworkDesc net = sceneLabelingNetwork(width, height);
    const LayerDesc &layer = net.layers.front();
    NetworkData data = NetworkData::randomized(net, 11);

    Tensor image(layer.inMaps, height, width);
    Rng rng(12);
    image.randomize(rng);

    NeurocubeConfig config;
    config.trace.enabled = true;
    config.trace.chromeJsonPath = "trace_demo.trace.json";
    config.trace.timeseriesCsvPath = "trace_demo.trace.csv";
    config.trace.windowTicks = 256;

    Neurocube cube(config);
    LayerResult result =
        cube.runSingleLayer(layer, data.weights[0], image);

    std::printf("layer %s on a %ux%u input: %llu cycles, %.2f MOp\n",
                result.name.c_str(), width, height,
                (unsigned long long)result.cycles,
                double(result.ops) / 1e6);
#if NEUROCUBE_TRACE_ENABLED
    std::printf("wrote trace_demo.trace.json (load in "
                "ui.perfetto.dev) and trace_demo.trace.csv\n");
#endif
    return 0;
}
