/**
 * @file
 * The paper's Section-VI extension claims, executed: an RNN unfolded
 * in time and an LSTM realized through per-pass LUT reprogramming,
 * both running on the Neurocube and checked bit-for-bit against the
 * sequential reference.
 */

#include <cmath>
#include <cstdio>

#include "core/recurrent.hh"
#include "nn/reference.hh"

using namespace neurocube;

namespace
{

std::vector<Tensor>
sineSequence(unsigned size, unsigned steps)
{
    std::vector<Tensor> seq;
    for (unsigned t = 0; t < steps; ++t) {
        Tensor x(1, 1, size);
        for (unsigned i = 0; i < size; ++i) {
            x.at(0, 0, i) = Fixed::fromDouble(
                0.8 * std::sin(0.3 * double(t) + 0.5 * double(i)));
        }
        seq.push_back(x);
    }
    return seq;
}

size_t
compareStates(const std::vector<Tensor> &a,
              const std::vector<Tensor> &b)
{
    size_t mismatches = 0;
    for (size_t t = 0; t < a.size(); ++t)
        for (unsigned j = 0; j < a[t].width(); ++j)
            if (!(a[t].at(0, 0, j) == b[t].at(0, 0, j)))
                ++mismatches;
    return mismatches;
}

} // namespace

int
main()
{
    const unsigned steps = 8;

    // --- Vanilla RNN: one FC pass per unfolded time step.
    RnnDesc rnn;
    rnn.inputSize = 16;
    rnn.hiddenSize = 32;
    rnn.timeSteps = steps;

    Rng rng(90);
    std::vector<Fixed> w(rnn.weightCount());
    for (Fixed &v : w)
        v = Fixed::fromDouble(rng.uniform(-0.15, 0.15));
    auto inputs = sineSequence(16, steps);

    NeurocubeConfig config;
    Neurocube cube(config);
    std::vector<Tensor> rnn_states;
    RunResult rnn_run = runRnn(cube, rnn, w, inputs, &rnn_states);
    size_t rnn_bad =
        compareStates(rnn_states, referenceRnn(rnn, w, inputs));
    std::printf("RNN  %u-%u over %u steps: %zu passes, %.1f KOp, "
                "%.1f GOPs/s @5GHz, verification %s\n",
                rnn.inputSize, rnn.hiddenSize, steps,
                rnn_run.layers.size(),
                double(rnn_run.totalOps()) / 1e3,
                rnn_run.gopsPerSecond(),
                rnn_bad == 0 ? "PASS" : "FAIL");

    // --- LSTM: seven passes per step, LUT swapped per pass.
    LstmDesc lstm;
    lstm.inputSize = 16;
    lstm.hiddenSize = 32;
    lstm.timeSteps = steps;
    LstmWeights weights = LstmWeights::randomized(lstm, 91);

    std::vector<Tensor> lstm_states;
    RunResult lstm_run =
        runLstm(cube, lstm, weights, inputs, &lstm_states);
    size_t lstm_bad = compareStates(
        lstm_states, referenceLstm(lstm, weights, inputs));
    std::printf("LSTM %u-%u over %u steps: %zu passes, %.1f KOp, "
                "%.1f GOPs/s @5GHz, verification %s\n",
                lstm.inputSize, lstm.hiddenSize, steps,
                lstm_run.layers.size(),
                double(lstm_run.totalOps()) / 1e3,
                lstm_run.gopsPerSecond(),
                lstm_bad == 0 ? "PASS" : "FAIL");

    std::printf("\nFinal hidden state h[%u] (first 8 lanes): ",
                steps - 1);
    for (unsigned j = 0; j < 8; ++j)
        std::printf("%+.3f ",
                    lstm_states.back().at(0, 0, j).toDouble());
    std::printf("\n");
    std::printf("No architectural changes were needed: connectivity "
                "(unfolding), activation (LUT reprogramming) and the "
                "gate products (per-neuron weights) are all host "
                "programming choices, as the paper argues.\n");

    return (rnn_bad == 0 && lstm_bad == 0) ? 0 : 1;
}
