/**
 * @file
 * Batched serving: shard the 16 vaults into independent lanes and run
 * several inference requests concurrently with runForwardBatch.
 *
 * Sweeps the lane count over {1, 2, 4} on a conv + FC request and
 * prints the aggregate serving throughput of each configuration next
 * to running the same requests sequentially on the whole machine.
 * Small requests leave the whole machine's 16-MAC groups mostly
 * empty, so carving it into lanes multiplies served inputs/s without
 * touching per-request bit-exactness.
 *
 * Usage: batched_serving
 */

#include <cstdio>
#include <vector>

#include "core/neurocube.hh"
#include "nn/reference.hh"

using namespace neurocube;

namespace
{

NetworkDesc
requestNetwork()
{
    NetworkDesc net;
    net.name = "serving";
    LayerDesc conv;
    conv.type = LayerType::Conv2D;
    conv.name = "conv";
    conv.inWidth = 24;
    conv.inHeight = 18;
    conv.inMaps = 2;
    conv.outMaps = 4;
    conv.kernel = 3;
    conv.channelwise = true;
    conv.activation = ActivationKind::Tanh;
    net.layers.push_back(conv);

    LayerDesc fc = nextLayerTemplate(conv);
    fc.type = LayerType::FullyConnected;
    fc.name = "fc";
    fc.outMaps = 32;
    fc.activation = ActivationKind::Sigmoid;
    net.layers.push_back(fc);
    net.validate();
    return net;
}

} // namespace

int
main()
{
    NetworkDesc net = requestNetwork();
    NetworkData data = NetworkData::randomized(net, 1);

    // Four independent requests (one random input each).
    std::vector<Tensor> requests;
    for (unsigned r = 0; r < 4; ++r) {
        Tensor in(net.inputMaps(), net.inputHeight(),
                  net.inputWidth());
        Rng rng(100 + r);
        in.randomize(rng);
        requests.push_back(std::move(in));
    }

    // Baseline: the requests one after another on the whole machine.
    Tick sequential = 0;
    for (const Tensor &in : requests) {
        Neurocube cube(NeurocubeConfig{});
        cube.loadNetwork(net, data);
        cube.setInput(in);
        sequential += cube.runForward().totalCycles();
    }
    std::printf("%-10s %12s %14s %10s\n", "mode", "cycles",
                "inputs/s@5GHz", "speedup");
    std::printf("%-10s %12llu %14.0f %9.2fx\n", "sequential",
                (unsigned long long)sequential,
                4.0 * referenceClockHz / double(sequential), 1.0);

    // Lane sweep: each configuration serves the same four requests.
    for (unsigned lanes : {1u, 2u, 4u}) {
        NeurocubeConfig config;
        config.batch.lanes = lanes;
        Neurocube cube(config);
        cube.loadNetwork(net, data);

        Tick cycles = 0;
        unsigned served = 0;
        bool exact = true;
        // Feed the request queue in lane-sized groups.
        while (served < requests.size()) {
            std::vector<Tensor> group;
            for (unsigned l = 0;
                 l < lanes && served + l < requests.size(); ++l)
                group.push_back(requests[served + l]);
            BatchRunResult run = cube.runForwardBatch(group);
            cycles += run.cycles;
            for (unsigned l = 0; l < group.size(); ++l) {
                auto expect =
                    referenceForward(net, data, group[l]);
                size_t last = net.layers.size() - 1;
                exact = exact
                    && cube.batchLayerOutput(l, last).flat()
                           == expect[last].flat();
            }
            served += unsigned(group.size());
        }
        std::printf("%-2u lane%-3s %12llu %14.0f %9.2fx  %s\n", lanes,
                    lanes == 1 ? "" : "s",
                    (unsigned long long)cycles,
                    4.0 * referenceClockHz / double(cycles),
                    double(sequential) / double(cycles),
                    exact ? "bit-exact" : "MISMATCH");
    }
    return 0;
}
