/**
 * @file
 * MNIST-style MLP on the Neurocube: programming a fully connected
 * network (the Fig. 10d/10e mappings) and stepping SGD.
 *
 * The example:
 *  1. runs MLP inference on a synthetic digit under both FC mappings
 *     (duplicated vs partitioned input) and compares traffic;
 *  2. performs one numerically exact SGD step where the forward pass
 *     and the backward error propagation both execute on the machine
 *     (the delta pass is the transposed FC layer), while the host
 *     computes the output error and applies the weight update —
 *     mirroring the paper's host/cube division of labour;
 *  3. checks that the loss decreases over a few steps.
 */

#include <cstdio>
#include <vector>

#include "core/neurocube.hh"
#include "core/training.hh"
#include "nn/reference.hh"

using namespace neurocube;

namespace
{

/** Squared error between the machine output and a one-hot target. */
double
loss(const Tensor &out, unsigned target)
{
    double total = 0.0;
    for (unsigned i = 0; i < out.width(); ++i) {
        double want = i == target ? 1.0 : 0.0;
        double diff = out.at(0, 0, i).toDouble() - want;
        total += diff * diff;
    }
    return total;
}

} // namespace

int
main()
{
    const unsigned hidden = 64;
    NetworkDesc net = mnistMlp(hidden);
    NetworkData data = NetworkData::randomized(net, 21);

    // Synthetic "digit": a bright diagonal stroke.
    Tensor digit(1, 28, 28);
    for (unsigned i = 0; i < 28; ++i) {
        digit.at(0, i, i) = Fixed::fromDouble(1.0);
        if (i + 1 < 28)
            digit.at(0, i + 1, i) = Fixed::fromDouble(0.5);
    }
    const unsigned target = 3;

    // --- 1. Inference under both FC mappings.
    std::printf("MLP 784-%u-10 inference:\n", hidden);
    for (bool duplicate : {true, false}) {
        NeurocubeConfig config;
        config.mapping.duplicateFcInput = duplicate;
        Neurocube cube(config);
        cube.loadNetwork(net, data);
        cube.setInput(digit);
        RunResult run = cube.runForward();
        std::printf("  %-22s %8.1f GOPs/s  lateral %5.1f%%  "
                    "cycles %llu\n",
                    duplicate ? "duplicated input (10d):"
                              : "partitioned input (10e):",
                    run.gopsPerSecond(),
                    100.0
                        * double(run.layers[0].lateralPackets)
                        / double(run.layers[0].lateralPackets
                                 + run.layers[0].localPackets),
                    (unsigned long long)run.totalCycles());
    }

    // --- 2+3. A few SGD steps with machine-executed fwd + delta.
    std::printf("\nSGD on the machine (fwd + transposed-FC delta "
                "passes):\n");
    NeurocubeConfig config;
    Neurocube cube(config);
    const double lr = 0.05;
    double first_loss = 0.0, last_loss = 0.0;
    for (int step = 0; step < 5; ++step) {
        // Forward on the machine.
        cube.loadNetwork(net, data);
        cube.setInput(digit);
        cube.runForward();
        const Tensor &h = cube.layerOutput(0);
        const Tensor &y = cube.layerOutput(1);
        last_loss = loss(y, target);
        if (step == 0)
            first_loss = last_loss;

        // Host: output delta = (y - t) * y * (1 - y)  (sigmoid').
        Tensor delta2(1, 1, 10);
        for (unsigned i = 0; i < 10; ++i) {
            double yi = y.at(0, 0, i).toDouble();
            double want = i == target ? 1.0 : 0.0;
            delta2.at(0, 0, i) =
                Fixed::fromDouble((yi - want) * yi * (1.0 - yi));
        }

        // Machine: propagate the error through fc2 (transposed FC).
        LayerDesc d2 = deltaLayerDesc(net.layers[1]);
        std::vector<Fixed> w2t =
            transposeFcWeights(net.layers[1], data.weights[1]);
        Tensor delta1_raw;
        cube.runSingleLayer(d2, w2t, delta2, &delta1_raw);

        // Host: multiply by the hidden sigmoid derivative, then
        // update both weight matrices (outer products).
        Tensor delta1(1, 1, hidden);
        for (unsigned j = 0; j < hidden; ++j) {
            double hj = h.at(0, 0, j).toDouble();
            delta1.at(0, 0, j) = Fixed::fromDouble(
                delta1_raw.at(0, 0, j).toDouble() * hj * (1.0 - hj));
        }
        const std::vector<Fixed> &x = digit.flat();
        for (unsigned o = 0; o < 10; ++o) {
            for (unsigned j = 0; j < hidden; ++j) {
                size_t idx = size_t(o) * hidden + j;
                double w = data.weights[1][idx].toDouble();
                data.weights[1][idx] = Fixed::fromDouble(
                    w - lr * delta2.at(0, 0, o).toDouble()
                            * h.at(0, 0, j).toDouble());
            }
        }
        for (unsigned j = 0; j < hidden; ++j) {
            for (unsigned i = 0; i < 784; ++i) {
                size_t idx = size_t(j) * 784 + i;
                double w = data.weights[0][idx].toDouble();
                data.weights[0][idx] = Fixed::fromDouble(
                    w - lr * delta1.at(0, 0, j).toDouble()
                            * x[i].toDouble());
            }
        }
        std::printf("  step %d: loss %.4f\n", step, last_loss);
    }

    bool improved = last_loss < first_loss;
    std::printf("loss %.4f -> %.4f (%s)\n", first_loss, last_loss,
                improved ? "PASS: training reduces the loss"
                         : "FAIL");
    return improved ? 0 : 1;
}
