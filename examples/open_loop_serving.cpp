/**
 * @file
 * Open-loop serving: drive the cube with a Poisson request stream
 * through the serving frontend (src/serving/) and read off the SLO
 * numbers an inference-serving deployment cares about — goodput,
 * p50/p99/p999 tail latency, admission-control drops, queue depth,
 * and energy per request.
 *
 * The demo serves the same request network at three offered loads
 * (light, near-capacity, overload) so the open-loop failure mode is
 * visible: past saturation, goodput flattens while the tail and the
 * drop rate explode. It also round-trips an arrival schedule through
 * the trace-file format to show how a measured load shape can be
 * replayed deterministically.
 *
 * Usage: open_loop_serving
 */

#include <cstdio>
#include <sstream>

#include "serving/server.hh"
#include "serving/slo.hh"

using namespace neurocube;

namespace
{

NetworkDesc
requestNetwork()
{
    NetworkDesc net;
    net.name = "serving";
    LayerDesc conv;
    conv.type = LayerType::Conv2D;
    conv.name = "conv";
    conv.inWidth = 24;
    conv.inHeight = 18;
    conv.inMaps = 2;
    conv.outMaps = 4;
    conv.kernel = 3;
    conv.channelwise = true;
    conv.activation = ActivationKind::Tanh;
    net.layers.push_back(conv);

    LayerDesc fc = nextLayerTemplate(conv);
    fc.type = LayerType::FullyConnected;
    fc.name = "fc";
    fc.outMaps = 16;
    fc.activation = ActivationKind::Sigmoid;
    net.layers.push_back(fc);
    net.validate();
    return net;
}

} // namespace

int
main()
{
    NetworkDesc net = requestNetwork();
    NetworkData data = NetworkData::randomized(net, 21);
    Tensor input(net.inputMaps(), net.inputHeight(),
                 net.inputWidth());
    Rng rng(22);
    input.randomize(rng);

    // Calibrate the machine's batched capacity: one 4-lane batch
    // serves 4 requests in `batch4` cycles.
    NeurocubeConfig config;
#if NEUROCUBE_TRACE_ENABLED
    config.trace.enabled = true; // metrics + energy accounting
#endif
    Tick batch4;
    {
        NeurocubeConfig cal = config;
        cal.batch.lanes = 4;
        Neurocube cube(cal);
        cube.loadNetwork(net, data);
        std::vector<Tensor> four(4, input);
        batch4 = cube.runForwardBatch(four).cycles;
    }
    std::printf("calibration: 4-lane batch = %llu cycles "
                "(capacity %.0f req/s at 5 GHz)\n\n",
                (unsigned long long)batch4,
                4.0 * referenceClockHz / double(batch4));

    // Offer three loads relative to that capacity. Open loop: the
    // arrival clock never waits for the machine.
    const struct
    {
        const char *title;
        double factor;
    } loads[] = {
        {"light load (0.4x capacity)", 0.4},
        {"near capacity (1.0x)", 1.0},
        {"overload (1.6x capacity)", 1.6},
    };

    for (const auto &load : loads) {
        const double mean_gap =
            double(batch4) / (4.0 * load.factor);
        ArrivalSchedule arrivals =
            poissonArrivals(40, mean_gap, 99);

        Neurocube cube(config);
        cube.loadNetwork(net, data);
        ServingConfig serving;
        serving.queueDepth = 8;
        serving.scheduler.maxLanes = 4;
        serving.scheduler.maxWaitTicks = batch4 / 2;
        ServingSimulator sim(cube, serving);
        ServingResult result = sim.run(arrivals, input);
        printServingPanel(buildServingReport(result), load.title);
        std::printf("\n");
    }

    // Trace replay: write a schedule out in the arrival-trace text
    // format and parse it back — byte-identical schedules replay to
    // identical per-request latencies, which is how a measured load
    // shape is archived with an experiment.
    ArrivalSchedule original = poissonArrivals(8, batch4 / 2.0, 5);
    std::ostringstream archive;
    writeArrivalTrace(archive, original);
    std::istringstream stored(archive.str());
    ArrivalSchedule replayed = parseArrivalTrace(stored);
    std::printf("trace replay: %zu arrivals round-tripped %s\n",
                replayed.count(),
                replayed.ticks == original.ticks
                    ? "bit-identically"
                    : "WITH DIFFERENCES (bug!)");
    return 0;
}
