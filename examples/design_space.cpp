/**
 * @file
 * Design-space exploration with the public API: run one workload
 * across machine configurations — memory technology, NoC topology,
 * mapping policy, PE weight memory — and print a comparison table.
 *
 * Usage: design_space [width] [height]
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/stats.hh"
#include "core/analytic_model.hh"
#include "core/neurocube.hh"

using namespace neurocube;

namespace
{

struct Variant
{
    std::string name;
    NeurocubeConfig config;
};

std::vector<Variant>
variants()
{
    std::vector<Variant> out;

    Variant base;
    base.name = "HMC, mesh, duplication (paper default)";
    out.push_back(base);

    Variant nodup;
    nodup.name = "HMC, mesh, no duplication";
    nodup.config.mapping.duplicateConvHalo = false;
    out.push_back(nodup);

    Variant fcnoc;
    fcnoc.name = "HMC, fully connected NoC, no duplication";
    fcnoc.config.noc.topology = NocTopology::FullyConnected;
    fcnoc.config.mapping.duplicateConvHalo = false;
    out.push_back(fcnoc);

    Variant weightmem;
    weightmem.name = "HMC, kernels in PE weight memory";
    weightmem.config.mapping.weightsInPeMemory = true;
    out.push_back(weightmem);

    Variant ddr;
    ddr.name = "DDR3 (2 channels), mesh, duplication";
    ddr.config.dram = DramParams::ddr3();
    out.push_back(ddr);

    Variant broadcast;
    broadcast.name = "HMC + vault read broadcast (ablation)";
    broadcast.config.dram.broadcastDuplicateReads = true;
    out.push_back(broadcast);

    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    unsigned width = argc > 1 ? unsigned(std::atoi(argv[1])) : 128;
    unsigned height = argc > 2 ? unsigned(std::atoi(argv[2])) : 96;

    NetworkDesc net = singleConvNetwork(width, height, 7, 2);
    NetworkData data = NetworkData::randomized(net, 31);
    Tensor input(1, height, width);
    Rng rng(32);
    input.randomize(rng);

    std::printf("workload: 7x7 conv, %ux%u input, 2 maps (%.1f "
                "MOp)\n\n",
                width, height, double(net.totalOps()) / 1e6);

    TextTable table({"machine", "GOPs/s@5GHz", "cycles (K)",
                     "lateral %", "DRAM Mbit", "analytic GOPs/s"});
    for (const Variant &variant : variants()) {
        Neurocube cube(variant.config);
        cube.loadNetwork(net, data);
        cube.setInput(input);
        RunResult run = cube.runForward();
        uint64_t lateral = 0, local = 0, bits = 0;
        for (const LayerResult &l : run.layers) {
            lateral += l.lateralPackets;
            local += l.localPackets;
            bits += l.dramBits;
        }
        AnalyticEstimate est =
            analyticLayerEstimate(net.layers[0], variant.config);
        table.addRow(
            {variant.name, formatDouble(run.gopsPerSecond(), 1),
             formatDouble(double(run.totalCycles()) / 1e3, 1),
             formatDouble(100.0 * double(lateral)
                              / double(std::max<uint64_t>(
                                  1, lateral + local)),
                          1),
             formatDouble(double(bits) / 1e6, 1),
             formatDouble(est.gopsPerSecond(), 1)});
    }
    std::printf("%s", table.str().c_str());
    std::printf("\nThe analytic column is the closed-form estimate "
                "(core/analytic_model.hh); the cycle numbers come "
                "from the full cycle-level simulation.\n");
    return 0;
}
