/**
 * @file
 * Quickstart: build a tiny convolutional network, run it on the
 * Neurocube cycle-level simulator, and check the machine's output
 * against the sequential reference model.
 *
 * Usage: quickstart
 */

#include <cstdio>

#include "core/neurocube.hh"
#include "nn/reference.hh"

using namespace neurocube;

int
main()
{
    // 1. Describe a small network: one 3x3 convolution producing 4
    // feature maps from a 2-map 20x16 input, tanh activation.
    NetworkDesc net;
    net.name = "quickstart";
    LayerDesc conv;
    conv.type = LayerType::Conv2D;
    conv.name = "conv";
    conv.inWidth = 20;
    conv.inHeight = 16;
    conv.inMaps = 2;
    conv.outMaps = 4;
    conv.kernel = 3;
    conv.channelwise = true;
    conv.activation = ActivationKind::Tanh;
    net.layers.push_back(conv);
    net.validate();

    // 2. Random parameters and a random input image, all in the
    // machine's Q1.7.8 fixed point.
    NetworkData data = NetworkData::randomized(net, /*seed=*/42);
    Tensor input(net.inputMaps(), net.inputHeight(), net.inputWidth());
    Rng rng(7);
    input.randomize(rng);

    // 3. Instantiate the default machine: 16 HMC vaults, one 16-MAC
    // PE per vault, 4x4 mesh NoC, data duplication on.
    NeurocubeConfig config;
    Neurocube cube(config);
    cube.loadNetwork(net, data);
    cube.setInput(input);

    // 4. Execute. The host programs the PNGs once per output map and
    // the layer runs fully data-driven.
    RunResult run = cube.runForward();
    const LayerResult &layer = run.layers[0];

    std::printf("layer %-6s  ops %-10llu cycles %-8llu "
                "throughput %.1f GOPs/s @5GHz\n",
                layer.name.c_str(),
                (unsigned long long)layer.ops,
                (unsigned long long)layer.cycles,
                layer.gopsPerSecond());
    std::printf("NoC: %llu local packets, %llu lateral (%.1f%%)\n",
                (unsigned long long)layer.localPackets,
                (unsigned long long)layer.lateralPackets,
                100.0 * layer.lateralFraction());

    // 5. Verify against the sequential fixed-point reference.
    auto expect = referenceForward(net, data, input);
    const Tensor &got = cube.layerOutput(0);
    unsigned mismatches = 0;
    for (unsigned m = 0; m < got.maps(); ++m)
        for (unsigned y = 0; y < got.height(); ++y)
            for (unsigned x = 0; x < got.width(); ++x)
                if (!(got.at(m, y, x) == expect[0].at(m, y, x)))
                    ++mismatches;

    std::printf("verification: %u mismatching elements (%s)\n",
                mismatches, mismatches == 0 ? "PASS" : "FAIL");
    return mismatches == 0 ? 0 : 1;
}
