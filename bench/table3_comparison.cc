/**
 * @file
 * Reproduces Table III: recent hardware platforms for neuro-inspired
 * algorithms. Comparator rows are the published numbers the paper
 * quotes; the two Neurocube rows are produced by this repository's
 * cycle simulator (throughput) and power model (compute power),
 * exactly as the paper derives them.
 *
 * Paper anchors: Neurocube 28 nm — 8.0 GOPs/s @ 0.25 W = 31.92
 * GOPs/s/W; 15 nm — 132.4 GOPs/s @ 3.41 W = 38.82 GOPs/s/W; ~4x the
 * GPU's power efficiency while remaining programmable.
 */

#include <benchmark/benchmark.h>

#include "bench_common.hh"
#include "power/power_model.hh"

namespace
{

using namespace neurocube;
using namespace neurocube::bench;

RunResult
measureInference()
{
    unsigned w, h;
    inferenceInputSize(w, h);
    NetworkDesc net = sceneLabelingNetwork(w, h);
    NeurocubeConfig config;
    return runForward(config, net);
}

void
BM_SimulatedThroughput(benchmark::State &state)
{
    for (auto _ : state) {
        double gops = measureInference().gopsPerSecond();
        state.counters["GOPs/s@5GHz"] = gops;
    }
}
BENCHMARK(BM_SimulatedThroughput)->Unit(benchmark::kMillisecond)
    ->Iterations(1);

void
printTable()
{
    std::printf("\n=== Table III: platforms for neuro-inspired "
                "algorithms ===\n");

    RunResult run = measureInference();
    double gops_15 = run.gopsPerSecond();
    PowerModel m28(TechNode::Nm28), m15(TechNode::Nm15);
    double gops_28 = gops_15 * m28.activityFactor();

    TextTable table({"platform", "prog.", "hardware",
                     "thrpt w/DRAM (GOPs/s)", "thrpt w/o DRAM",
                     "compute power (W)", "GOPs/s/W",
                     "application"});
    auto add_row = [&](const PlatformRow &row) {
        auto fmt = [](double v) {
            return v > 0 ? formatDouble(v, 2) : std::string("-");
        };
        table.addRow({row.paper, row.programmable ? "yes" : "no",
                      row.hardware, fmt(row.throughputWithDram),
                      fmt(row.throughputNoDram),
                      formatDouble(row.computePowerW, 3),
                      formatDouble(row.efficiency(), 2),
                      row.application});
    };

    PlatformRow nc28{"Neurocube (this work)", true, "28nm", 16,
                     gops_28, 0.0, m28.computePowerW(),
                     "Scene labeling, both"};
    PlatformRow nc15{"Neurocube (this work)", true, "15nm", 16,
                     gops_15, 0.0, m15.computePowerW(),
                     "Scene labeling, both"};

    auto rows = publishedPlatforms();
    add_row(rows[0]); // Tegra K1
    add_row(rows[1]); // GTX 780
    add_row(nc28);
    add_row(nc15);
    for (size_t i = 2; i < rows.size(); ++i)
        add_row(rows[i]);
    std::printf("%s", table.str().c_str());

    double gpu_eff = rows[1].efficiency();
    std::printf("\nefficiency vs GPU (GTX 780): %.1fx (paper: ~4x, "
                "while remaining programmable)\n",
                nc15.efficiency() / gpu_eff);
    std::printf("measured Neurocube throughput: %.1f GOPs/s @15nm, "
                "%.1f @28nm (paper: 132.4 / 8.0)%s\n",
                gops_15, gops_28,
                quickMode() ? " [reduced input]" : "");

    // Activity-based efficiency: the table's GOPs/s/W rows divide by
    // the analytic full-activity compute power; the event-counted
    // energy gives the same metric from what the machine actually
    // switched. The same counts are priced at both nodes.
    if (run.energyCounts().valid) {
        double ops = double(run.totalOps());
        for (const PowerModel *m : {&m15, &m28}) {
            ActivityEnergyModel model(*m);
            double joules = model.price(run).totalJ();
            std::printf("activity-based efficiency @%s: %.2f "
                        "GOPs/s/W (analytic table row: %.2f)\n",
                        techNodeName(m->node()),
                        joules > 0.0 ? ops / 1e9 / joules : 0.0,
                        (m == &m15 ? nc15 : nc28).efficiency());
        }
    }

    const std::vector<NamedRun> named = {{"inference", &run}};
    writeBenchJson("BENCH_table3.json", named);
    writeBenchHtml("BENCH_table3.html",
                   "Table III: platform comparison", named);
}

} // namespace

int
main(int argc, char **argv)
{
    if (neurocube::bench::wantsGoogleBenchmark(argc, argv)) {
        ::benchmark::Initialize(&argc, argv);
        ::benchmark::RunSpecifiedBenchmarks();
        return 0;
    }
    printTable();
    return 0;
}
