/**
 * @file
 * Reproduces Table II: per-block dynamic power, area and power
 * density of one Neurocube core in 28 nm CMOS and 15 nm FinFET, the
 * 16-core compute totals, and the HMC logic-die / DRAM-die power
 * derived from published pJ/bit figures with the Section VII
 * activity/technology scaling.
 */

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.hh"
#include "power/energy_model.hh"
#include "power/power_model.hh"

namespace
{

using namespace neurocube;
using namespace neurocube::bench;

void
BM_PowerRollup(benchmark::State &state)
{
    for (auto _ : state) {
        PowerModel m28(TechNode::Nm28), m15(TechNode::Nm15);
        benchmark::DoNotOptimize(m28.totalPowerW());
        benchmark::DoNotOptimize(m15.totalPowerW());
    }
}
BENCHMARK(BM_PowerRollup);

std::string
sci(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.2E", v);
    return buf;
}

void
printTable()
{
    std::printf("\n=== Table II: hardware simulation of a single "
                "Neurocube core ===\n");
    PowerModel m28(TechNode::Nm28), m15(TechNode::Nm15);

    TextTable table({"block", "size (bit)", "freq 28/15 (MHz)",
                     "power 28nm (W)", "power 15nm (W)",
                     "area 28nm (mm^2)", "area 15nm (mm^2)",
                     "dens 28nm", "dens 15nm"});
    const auto &b28 = m28.blocks();
    const auto &b15 = m15.blocks();
    for (size_t i = 0; i < b28.size(); ++i) {
        table.addRow({b28[i].name,
                      b28[i].sizeBits ? formatCount(b28[i].sizeBits)
                                      : "N/A",
                      formatDouble(b28[i].freqMhz, 2) + "/"
                          + formatDouble(b15[i].freqMhz, 0),
                      sci(b28[i].dynamicPowerW),
                      sci(b15[i].dynamicPowerW),
                      formatDouble(b28[i].areaMm2, 4),
                      formatDouble(b15[i].areaMm2, 4),
                      sci(b28[i].powerDensity()),
                      sci(b15[i].powerDensity())});
    }
    table.addRow({"PE Sum", "-", "300/5120", sci(m28.pePowerW()),
                  sci(m15.pePowerW()),
                  formatDouble(m28.peAreaMm2(), 4),
                  formatDouble(m15.peAreaMm2(), 4),
                  sci(m28.pePowerW() / m28.peAreaMm2()),
                  sci(m15.pePowerW() / m15.peAreaMm2())});
    table.addRow({"Compute (16 PE+router)", "-", "300/5120",
                  sci(m28.computePowerW()), sci(m15.computePowerW()),
                  formatDouble(m28.computeAreaMm2(), 4),
                  formatDouble(m15.computeAreaMm2(), 4), "-", "-"});
    table.addRow({"HMC logic die w/o Neurocube", "-", "-",
                  sci(m28.hmcLogicDiePowerW()),
                  sci(m15.hmcLogicDiePowerW()), "-", "-", "-", "-"});
    table.addRow({"All DRAM dies", "-", "-", sci(m28.dramPowerW()),
                  sci(m15.dramPowerW()), "-", "-", "-", "-"});
    std::printf("%s", table.str().c_str());

    std::printf("\npaper anchors: PE sum 1.56E-02 / 2.13E-01 W, "
                "compute 2.49E-01 / 3.41E+00 W, logic die 1.04 / "
                "8.67 W, DRAM 0.568 / 9.47 W; compute area 3.10 / "
                "0.96 mm^2 (fits the 68 mm^2 HMC logic die).\n");

    // Fig. 16 floorplan feasibility.
    std::printf("\nFig. 16 floorplan feasibility:\n");
    for (TechNode node : {TechNode::Nm28, TechNode::Nm15}) {
        PowerModel model(node);
        FloorplanReport fp = buildFloorplan(model);
        std::printf("  %s: PE+router tile %.0f x %.0f um (70%% "
                    "util), 16 cores use %.2f of %.0f mm^2 -> %s\n",
                    techNodeName(node), fp.tile.edgeUm,
                    fp.tile.edgeUm, fp.coresMm2, fp.dieBudgetMm2,
                    fp.fits ? "fits" : "DOES NOT FIT");
    }
    std::printf("  (paper: 513 x 513 um per PE+router tile in "
                "28 nm)\n");
}

} // namespace

int
main(int argc, char **argv)
{
    if (neurocube::bench::wantsGoogleBenchmark(argc, argv)) {
        ::benchmark::Initialize(&argc, argv);
        ::benchmark::RunSpecifiedBenchmarks();
        return 0;
    }
    printTable();
    return 0;
}
