/**
 * @file
 * Reproduces Fig. 1: required memory for scene labeling as a function
 * of input image size (plus the MNIST MLP point), against the
 * capacity of on-chip SRAM and eDRAM normalized to 1 mm^2.
 *
 * The paper's point: even dense eDRAM cannot hold the working set of
 * realistic image sizes on chip, motivating the in-memory design.
 */

#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "common/stats.hh"
#include "nn/mapping.hh"
#include "nn/network.hh"

namespace
{

using namespace neurocube;

/** 14 nm SRAM density (ISSCC'15 [11]): ~0.050 um^2/bit. */
constexpr double sramBytesPerMm2 = 1e6 / 0.050 / 8.0;
/** 22 nm eDRAM density (ISSCC'14 [12]): ~0.0174 um^2/bit. */
constexpr double edramBytesPerMm2 = 1e6 / 0.0174 / 8.0;

struct Point
{
    std::string label;
    uint64_t bytes;
};

std::vector<Point>
figurePoints()
{
    std::vector<Point> points;
    for (unsigned scale :
         {64u, 128u, 240u, 320u, 480u, 640u, 960u, 1280u}) {
        unsigned w = scale;
        unsigned h = scale * 3 / 4;
        NetworkDesc net = sceneLabelingNetwork(w, h);
        points.push_back({"scene " + std::to_string(w) + "x"
                              + std::to_string(h),
                          networkUniqueBytes(net.layers)});
    }
    points.push_back(
        {"MNIST MLP", networkUniqueBytes(mnistMlp().layers)});
    return points;
}

void
BM_FootprintModel(benchmark::State &state)
{
    for (auto _ : state) {
        uint64_t total = 0;
        for (const Point &p : figurePoints())
            total += p.bytes;
        benchmark::DoNotOptimize(total);
    }
}
BENCHMARK(BM_FootprintModel);

void
printFigure()
{
    std::printf("\n=== Fig. 1: required memory vs on-chip capacity "
                "(1 mm^2 normalized) ===\n");
    TextTable table({"workload", "required (MB)", "fits SRAM/mm^2?",
                     "fits eDRAM/mm^2?"});
    for (const Point &p : figurePoints()) {
        double mb = double(p.bytes) / (1 << 20);
        table.addRow({p.label, formatDouble(mb, 2),
                      p.bytes <= uint64_t(sramBytesPerMm2) ? "yes"
                                                           : "no",
                      p.bytes <= uint64_t(edramBytesPerMm2) ? "yes"
                                                            : "no"});
    }
    std::printf("%s", table.str().c_str());
    std::printf("SRAM (14nm): %.2f MB/mm^2, eDRAM (22nm): %.2f "
                "MB/mm^2\n",
                sramBytesPerMm2 / (1 << 20),
                edramBytesPerMm2 / (1 << 20));
    std::printf("Paper takeaway: on-chip memories cannot hold "
                "realistic scene-labeling working sets; a 3D DRAM "
                "stack can.\n");
}

} // namespace

int
main(int argc, char **argv)
{
    ::benchmark::Initialize(&argc, argv);
    ::benchmark::RunSpecifiedBenchmarks();
    printFigure();
    return 0;
}
