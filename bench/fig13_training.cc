/**
 * @file
 * Reproduces Fig. 13: training the scene-labeling network on a 64x64
 * input with data duplication — per-pass (a) operation counts,
 * (b) clock cycles, (c) throughput and (d) memory with duplication
 * overhead, plus the Section VI-3 training frame rates.
 *
 * Paper anchors: 126.8 GOPs/s training throughput; 272.52 epochs/s
 * (28 nm) and 4542.14 epochs/s (15 nm); ~48% duplication overhead.
 */

#include <benchmark/benchmark.h>

#include "bench_common.hh"
#include "core/training.hh"
#include "power/power_model.hh"

namespace
{

using namespace neurocube;
using namespace neurocube::bench;

RunResult
runTraining(bool include_gradient)
{
    NetworkDesc net = sceneLabelingNetwork(64, 64);
    NetworkData data = NetworkData::randomized(net, 1);
    Tensor input(3, 64, 64);
    Rng rng(2);
    input.randomize(rng);

    NeurocubeConfig config;
#if NEUROCUBE_TRACE_ENABLED
    // Metrics + energy trace session so the panels and
    // BENCH_fig13.json carry bottleneck and pJ attribution
    // (observational only; see tests/test_golden_cycles.cc).
    config.trace.enabled = true;
    config.trace.metrics = true;
#endif
    config.engine = engineFromEnv(config.engine);
    config.planCache = planCacheFromEnv(config.planCache);
    Neurocube cube(config);
    TrainingOptions opts;
    opts.includeWeightGradient = include_gradient;
    WallTimer timer;
    RunResult run = runTrainingIteration(cube, net, data, input, opts);
    run.wallMs = timer.elapsedMs();
    return run;
}

void
BM_TrainingIteration(benchmark::State &state)
{
    for (auto _ : state) {
        RunResult run = runTraining(false);
        state.counters["GOPs/s@5GHz"] = run.gopsPerSecond();
    }
}
BENCHMARK(BM_TrainingIteration)->Unit(benchmark::kMillisecond)
    ->Iterations(1);

void
printFigure()
{
    std::printf("\n=== Fig. 13: scene-labeling training (64x64, "
                "data duplication) ===\n");

    RunResult run = runTraining(false);
    printLayerPanels(run,
                     "forward + backward-delta passes (paper model)");
    printEnergyPanel(run, "training iteration");

    PowerModel m28(TechNode::Nm28), m15(TechNode::Nm15);
    std::printf("\ntraining throughput (iterations/s): 28nm %.2f, "
                "15nm %.2f  (paper: 272.52 / 4542.14)\n",
                run.framesPerSecond(m28.throughputClockGhz()),
                run.framesPerSecond(m15.throughputClockGhz()));

    // Duplication overhead (Fig. 13d): training keeps activations
    // resident for the backward pass.
    NetworkDesc net = sceneLabelingNetwork(64, 64);
    MappingPolicy dup;
    uint64_t unique = networkUniqueBytes(net.layers);
    uint64_t extra = networkDuplicationBytes(net.layers, dup, 16);
    std::printf("memory: %.2f MB unique, %.2f MB duplicated "
                "(%.0f%% overhead; paper: 48%%)\n",
                double(unique) / (1 << 20), double(extra) / (1 << 20),
                100.0 * double(extra) / double(unique));

    RunResult full = runTraining(true);
    std::printf("\nablation — full backprop (+weight-gradient "
                "passes): %.1f MOp, %.1f GOPs/s @5GHz\n",
                double(full.totalOps()) / 1e6, full.gopsPerSecond());
    std::printf("paper anchor: 126.8 GOPs/s at the 15nm point\n");

    const std::vector<NamedRun> runs = {{"training", &run},
                                        {"full_backprop", &full}};
    writeBenchJson("BENCH_fig13.json", runs);
    writeBenchHtml("BENCH_fig13.html",
                   "Fig. 13: scene-labeling training", runs);
}

} // namespace

int
main(int argc, char **argv)
{
    if (neurocube::bench::wantsGoogleBenchmark(argc, argv)) {
        ::benchmark::Initialize(&argc, argv);
        ::benchmark::RunSpecifiedBenchmarks();
        return 0;
    }
    printFigure();
    return 0;
}
