/**
 * @file
 * Reproduces Fig. 14: effect of neural-network parameters on
 * throughput and memory.
 *
 *  (a) 2D convolutional layer, kernel-size sweep, WITHOUT input
 *      duplication: larger kernels raise lateral NoC traffic and
 *      throughput falls.
 *  (b) Same sweep WITH duplication: throughput flat, but the
 *      duplicated-halo memory overhead grows with the kernel.
 *  (c) 3-layer fully connected network, hidden-layer sweep, WITHOUT
 *      input duplication: lateral traffic is high (~71% in the
 *      paper) but constant, so throughput is flat (and low).
 *  (d) Same sweep WITH duplication: full throughput; the duplicated
 *      input becomes a shrinking fraction of memory as the weight
 *      matrix grows.
 */

#include <benchmark/benchmark.h>

#include "bench_common.hh"
#include "core/analytic_model.hh"

namespace
{

using namespace neurocube;
using namespace neurocube::bench;

unsigned
convImageEdge()
{
    return quickMode() ? 96 : 160;
}

LayerResult
runConv(unsigned kernel, bool duplicate)
{
    unsigned w = convImageEdge();
    unsigned h = w * 3 / 4;
    NetworkDesc net = singleConvNetwork(w, h, kernel, 1);
    NeurocubeConfig config;
    config.mapping.duplicateConvHalo = duplicate;
    RunResult run = runForward(config, net, kernel);
    return run.layers[0];
}

LayerResult
runFc(unsigned hidden, bool duplicate)
{
    unsigned input = quickMode() ? 512 : 1024;
    NetworkDesc net = threeLayerMlp(input, hidden, 16);
    NeurocubeConfig config;
    config.mapping.duplicateFcInput = duplicate;
    RunResult run = runForward(config, net, hidden);
    // The hidden layer dominates; report it (the paper sweeps the
    // hidden width).
    return run.layers[0];
}

void
BM_ConvKernelSweep(benchmark::State &state)
{
    for (auto _ : state) {
        LayerResult r = runConv(unsigned(state.range(0)),
                                state.range(1) != 0);
        state.counters["GOPs/s@5GHz"] = r.gopsPerSecond();
    }
}
BENCHMARK(BM_ConvKernelSweep)
    ->ArgsProduct({{3, 7, 11}, {0, 1}})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

void
printConvPanel(bool duplicate)
{
    std::printf("\n--- Fig. 14(%c): conv kernel sweep %s duplication "
                "---\n",
                duplicate ? 'b' : 'a', duplicate ? "WITH" : "WITHOUT");
    TextTable table({"kernel", "GOPs/s@5GHz", "lateral %",
                     "memory (MB)", "dup overhead (MB)"});
    for (unsigned k : {3u, 5u, 7u, 9u, 11u}) {
        LayerResult r = runConv(k, duplicate);
        table.addRow(
            {std::to_string(k) + "x" + std::to_string(k),
             formatDouble(r.gopsPerSecond(), 1),
             formatDouble(100.0 * r.lateralFraction(), 1),
             formatDouble(double(r.memoryBytes) / (1 << 20), 2),
             formatDouble(double(r.duplicationBytes) / (1 << 20),
                          3)});
    }
    std::printf("%s", table.str().c_str());
}

void
printFcPanel(bool duplicate)
{
    std::printf("\n--- Fig. 14(%c): FC hidden-layer sweep %s input "
                "duplication ---\n",
                duplicate ? 'd' : 'c', duplicate ? "WITH" : "WITHOUT");
    TextTable table({"hidden", "GOPs/s@5GHz", "lateral %",
                     "memory (MB)", "dup overhead %"});
    std::vector<unsigned> sweep =
        quickMode() ? std::vector<unsigned>{256, 1024}
                    : std::vector<unsigned>{256, 512, 1024, 2048,
                                            4096};
    for (unsigned hidden : sweep) {
        LayerResult r = runFc(hidden, duplicate);
        double overhead = r.memoryBytes
            ? 100.0 * double(r.duplicationBytes)
                  / double(r.memoryBytes)
            : 0.0;
        table.addRow({std::to_string(hidden),
                      formatDouble(r.gopsPerSecond(), 1),
                      formatDouble(100.0 * r.lateralFraction(), 1),
                      formatDouble(double(r.memoryBytes) / (1 << 20),
                                   2),
                      formatDouble(overhead, 1)});
    }
    std::printf("%s", table.str().c_str());
}

void
printFigure()
{
    std::printf("\n=== Fig. 14: effect of NN parameters (conv image "
                "%ux%u) ===\n",
                convImageEdge(), convImageEdge() * 3 / 4);
    printConvPanel(false);
    printConvPanel(true);
    printFcPanel(false);
    printFcPanel(true);
    std::printf("\npaper shape: (a) throughput falls with kernel "
                "size; (b) flat throughput, halo memory grows; (c) "
                "flat-but-degraded throughput, ~71%% lateral; (d) "
                "flat full throughput, overhead fraction shrinks.\n");
}

} // namespace

int
main(int argc, char **argv)
{
    if (neurocube::bench::wantsGoogleBenchmark(argc, argv)) {
        ::benchmark::Initialize(&argc, argv);
        ::benchmark::RunSpecifiedBenchmarks();
        return 0;
    }
    printFigure();
    return 0;
}
