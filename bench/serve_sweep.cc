/**
 * @file
 * Serving-at-scale sweep: open-loop Poisson load against the cube's
 * dynamic-batching frontend (src/serving/), across offered loads
 * from well under to well past the machine's batched capacity.
 *
 * For each offered load the sweep reports goodput, tail-latency
 * percentiles (p50/p99/p999), admission-control drop rate,
 * queue-depth statistics, energy per served request, and the
 * dominant stall class — the goodput-vs-offered-load curve whose
 * knee marks the saturation point recorded in EXPERIMENTS.md.
 *
 * The offered loads are calibrated against the machine itself: one
 * batch-of-4 run measures the service capacity, and the sweep offers
 * fixed fractions of it (0.25x .. 1.5x), so quick and full modes
 * both straddle the knee. Everything is seeded and deterministic:
 * two runs of this bench produce bit-identical BENCH_serve.json
 * files, which `bench.sh --compare` checks exactly (not with the 5%
 * cycle tolerance used for the figure benches).
 */

#include <benchmark/benchmark.h>

#include "bench_common.hh"
#include "serving/server.hh"
#include "serving/slo.hh"
#include "trace/spatial.hh"

namespace
{

using namespace neurocube;
using namespace neurocube::bench;

/** Offered load as fractions of the calibrated 4-lane capacity. */
constexpr double kLoadFactors[] = {0.25, 0.5, 0.75, 1.0, 1.25, 1.5};
constexpr size_t kNumLoads = sizeof(kLoadFactors) / sizeof(double);

/** Small conv + FC pipeline: both batched layer mappings, but short
 *  enough per inference that a sweep serves hundreds of requests. */
NetworkDesc
servingNet()
{
    unsigned w = 20, h = 16;
    if (!quickMode()) {
        w = 32;
        h = 24;
    }
    NetworkDesc net;
    net.name = "serving-conv-fc";
    LayerDesc conv;
    conv.type = LayerType::Conv2D;
    conv.name = "conv";
    conv.inWidth = w;
    conv.inHeight = h;
    conv.inMaps = 2;
    conv.outMaps = 4;
    conv.kernel = 3;
    conv.channelwise = true;
    conv.activation = ActivationKind::Tanh;
    net.layers.push_back(conv);

    LayerDesc fc = nextLayerTemplate(conv);
    fc.type = LayerType::FullyConnected;
    fc.name = "fc";
    fc.outMaps = 32;
    fc.activation = ActivationKind::Sigmoid;
    net.layers.push_back(fc);
    net.validate();
    return net;
}

/** Machine config for serving runs (metrics + energy accounting). */
NeurocubeConfig
servingMachine()
{
    NeurocubeConfig config;
#if NEUROCUBE_TRACE_ENABLED
    config.trace.enabled = true;
#endif
    config.engine = engineFromEnv(config.engine);
    config.planCache = planCacheFromEnv(config.planCache);
    return config;
}

size_t
requestCount()
{
    return quickMode() ? 30 : 120;
}

/** Cycles of one full 4-lane batch (the capacity calibration). */
Tick
calibrateBatch4(const NetworkDesc &net, const NetworkData &data,
                const Tensor &input)
{
    NeurocubeConfig config = servingMachine();
    config.batch.lanes = 4;
    Neurocube cube(config);
    cube.loadNetwork(net, data);
    std::vector<Tensor> inputs(4, input);
    return cube.runForwardBatch(inputs).cycles;
}

struct SweepPoint
{
    double factor;
    ServingReport report;
    RunManifest manifest;
    double wallMs = 0.0;
    /** spatialSnapshotJson over the whole serving run (heatmaps for
     *  the HTML report; empty when spatial accounting is off). */
    std::string spatialJson;
};

/** "load_75pct"-style label for one sweep point. */
std::string
pointName(double factor)
{
    return "load_" + std::to_string(int(100.0 * factor)) + "pct";
}

SweepPoint
runPoint(size_t index, Tick batch4, const NetworkDesc &net,
         const NetworkData &data, const Tensor &input)
{
    const double factor = kLoadFactors[index];
    // A full 4-lane batch serves 4 requests in batch4 cycles; an
    // offered load of `factor` times that capacity has mean gap
    // batch4 / (4 * factor).
    const double mean_gap = double(batch4) / (4.0 * factor);
    ArrivalSchedule arrivals =
        poissonArrivals(requestCount(), mean_gap, 1234 + index);

    NeurocubeConfig machine = servingMachine();
    Neurocube cube(machine);
    cube.loadNetwork(net, data);

    ServingConfig serving;
    serving.queueDepth = 12;
    serving.scheduler.maxLanes = 4;
    serving.scheduler.maxWaitTicks = batch4 / 2;
    // Per-request span export rides the trace-export knob: one JSONL
    // spans file per sweep point next to the trace files.
    if (const char *dir = std::getenv("NEUROCUBE_TRACE_EXPORT");
        dir != nullptr && dir[0] != '\0') {
        serving.spansJsonlPath = std::string(dir) + "/"
                               + pointName(factor) + ".spans.jsonl";
    }
    ServingSimulator sim(cube, serving);
    WallTimer timer;
    ServingResult result = sim.run(arrivals, input);
    SweepPoint point{factor, buildServingReport(result),
                     buildRunManifest(machine, cube.activeEngine(),
                                      pointName(factor), quickMode()),
                     timer.elapsedMs()};
    if (result.spatial.valid()) {
        point.spatialJson = spatialSnapshotJson(
            result.spatialTopology, result.spatial, result.makespan);
    }
    return point;
}

/** Prometheus-textfile sibling of BENCH_serve.json (one
 *  neurocube_serve_* gauge block per sweep point). */
void
writeServeProm(const std::vector<SweepPoint> &points)
{
    std::string path = benchOutputPath("BENCH_serve.prom");
    std::ofstream out(path);
    if (!out.is_open()) {
        std::fprintf(stderr, "warning: cannot write bench prom '%s'\n",
                     path.c_str());
        return;
    }
    for (const SweepPoint &p : points)
        out << servingMetricsTextfile(p.manifest, p.report, p.wallMs);
    std::printf("wrote %s\n", path.c_str());
}

void
writeServeJson(const std::vector<SweepPoint> &points, Tick batch4)
{
    std::string path = benchOutputPath("BENCH_serve.json");
    std::ofstream out(path);
    if (!out.is_open()) {
        std::fprintf(stderr, "warning: cannot write bench json '%s'\n",
                     path.c_str());
        return;
    }
    out << "{\n\"quick\": " << (quickMode() ? "true" : "false")
        << ",\n\"calibration\": {\"batch4_cycles\": " << batch4
        << "},\n\"runs\": {\n";
    for (size_t i = 0; i < points.size(); ++i) {
        out << "\"" << pointName(points[i].factor)
            << "\": {\"serving\": "
            << servingReportJson(points[i].report) << "}"
            << (i + 1 < points.size() ? "," : "") << "\n";
    }
    out << "}\n}\n";
    std::printf("wrote %s\n", path.c_str());
}

/** Self-contained HTML sibling of BENCH_serve.json: one section per
 *  sweep point (serving manifest + spatial heatmaps). Presentation
 *  only — `bench.sh --compare` never reads it. */
void
writeServeHtml(const std::vector<SweepPoint> &points)
{
    std::string path = benchOutputPath("BENCH_serve.html");
    std::ofstream out(path);
    if (!out.is_open()) {
        std::fprintf(stderr, "warning: cannot write bench html '%s'\n",
                     path.c_str());
        return;
    }
    std::vector<ReportRun> report;
    report.reserve(points.size());
    for (const SweepPoint &p : points) {
        ReportRun section;
        section.name = pointName(p.factor);
        section.manifestJson =
            servingManifestJson(p.manifest, p.report, p.wallMs);
        section.spatialJson = p.spatialJson;
        report.push_back(std::move(section));
    }
    out << renderRunReport("Serving sweep: open-loop load", report);
    std::printf("wrote %s\n", path.c_str());
}

void
printFigure()
{
    NetworkDesc net = servingNet();
    NetworkData data = NetworkData::randomized(net, 7);
    Tensor input(net.inputMaps(), net.inputHeight(),
                 net.inputWidth());
    Rng rng(8);
    input.randomize(rng);

    std::printf("\n=== Serving sweep: open-loop load vs goodput and "
                "tail latency (%s) ===\n",
                quickMode() ? "quick" : "full");

    const Tick batch4 = calibrateBatch4(net, data, input);
    const double capacity =
        4.0 * referenceClockHz / double(batch4);
    std::printf("calibration: 4-lane batch = %llu cycles -> capacity "
                "%.1f req/s at 5 GHz\n\n",
                (unsigned long long)batch4, capacity);

    std::vector<SweepPoint> points;
    for (size_t i = 0; i < kNumLoads; ++i) {
        SweepPoint point = runPoint(i, batch4, net, data, input);
        char title[64];
        std::snprintf(title, sizeof(title), "offered %.2fx capacity",
                      point.factor);
        printServingPanel(point.report, title);
        points.push_back(point);
    }

    std::printf("\nload  offered(r/s)  goodput(r/s)  p50(Kt)  "
                "p99(Kt)  p999(Kt)  drop%%  stall\n");
    for (const SweepPoint &p : points) {
        const ServingReport &r = p.report;
        std::printf("%.2fx  %12.1f  %12.1f  %7.1f  %7.1f  %8.1f  "
                    "%5.1f  %s\n",
                    p.factor, r.offeredPerSec, r.goodputPerSec,
                    r.p50Ticks / 1e3, r.p99Ticks / 1e3,
                    r.p999Ticks / 1e3, 100.0 * r.dropRate,
                    r.bottleneckLabel);
    }
    // The knee: past saturation, offering more load no longer buys
    // goodput (it only grows the queue, the tail, and the drops).
    double knee = points.back().factor;
    for (size_t i = 0; i + 1 < points.size(); ++i) {
        if (points[i + 1].report.goodputPerSec
            < 1.05 * points[i].report.goodputPerSec) {
            knee = points[i].factor;
            break;
        }
    }
    std::printf("saturation knee: goodput stops growing past ~%.2fx "
                "of the 4-lane capacity\n", knee);

    writeServeJson(points, batch4);
    writeServeProm(points);
    writeServeHtml(points);
}

void
BM_ServeMidLoad(benchmark::State &state)
{
    NetworkDesc net = servingNet();
    NetworkData data = NetworkData::randomized(net, 7);
    Tensor input(net.inputMaps(), net.inputHeight(),
                 net.inputWidth());
    Rng rng(8);
    input.randomize(rng);
    const Tick batch4 = calibrateBatch4(net, data, input);
    for (auto _ : state) {
        SweepPoint point = runPoint(2, batch4, net, data, input);
        state.counters["goodput_per_sec"] =
            point.report.goodputPerSec;
        state.counters["p99_ticks"] = point.report.p99Ticks;
    }
}
BENCHMARK(BM_ServeMidLoad)->Unit(benchmark::kMillisecond)
    ->Iterations(1);

} // namespace

int
main(int argc, char **argv)
{
    if (neurocube::bench::wantsGoogleBenchmark(argc, argv)) {
        ::benchmark::Initialize(&argc, argv);
        ::benchmark::RunSpecifiedBenchmarks();
        return 0;
    }
    printFigure();
    return 0;
}
