/**
 * @file
 * Beyond-paper extension bench: the conclusion's "next step" —
 * scaling the Neurocube across multiple cubes connected by their
 * external HMC links (Table I: HMC-Ext, 40 GB/s/link).
 *
 * Sweeps cube count for the scene-labeling network at increasing
 * image sizes (the workloads Fig. 1 shows cannot fit a single
 * on-chip memory) and reports throughput and parallel efficiency:
 * tile parallelism scales well while conv halos are thin relative to
 * tiles, and degrades as tiles shrink.
 */

#include <benchmark/benchmark.h>

#include "bench_common.hh"
#include "core/multi_cube.hh"

namespace
{

using namespace neurocube;
using namespace neurocube::bench;

void
BM_MultiCubeEstimate(benchmark::State &state)
{
    NetworkDesc net = sceneLabelingNetwork(640, 480);
    MultiCubeConfig config;
    config.numCubes = unsigned(state.range(0));
    for (auto _ : state) {
        MultiCubeEstimate est =
            multiCubeNetworkEstimate(net, config);
        benchmark::DoNotOptimize(est.totalCycles());
    }
}
BENCHMARK(BM_MultiCubeEstimate)->Arg(1)->Arg(4)->Arg(16);

void
printFigure()
{
    std::printf("\n=== Extension: multi-cube scaling (Section IX "
                "next steps) ===\n");
    for (unsigned edge : {320u, 640u, 1280u}) {
        unsigned w = edge, h = edge * 3 / 4;
        NetworkDesc net = sceneLabelingNetwork(w, h);
        std::printf("\nscene labeling %ux%u (%.2f GOp/frame):\n", w,
                    h, double(net.totalOps()) / 1e9);
        TextTable table({"cubes", "GOPs/s@5GHz", "frames/s (15nm)",
                         "exchange share %", "efficiency"});
        for (unsigned cubes : {1u, 2u, 4u, 8u, 16u}) {
            MultiCubeConfig config;
            config.numCubes = cubes;
            MultiCubeEstimate est =
                multiCubeNetworkEstimate(net, config);
            double fps = 5e9 / double(est.totalCycles());
            double share = 100.0 * double(est.exchangeCycles)
                         / double(est.totalCycles());
            table.addRow({std::to_string(cubes),
                          formatDouble(est.gopsPerSecond(), 1),
                          formatDouble(fps, 1),
                          formatDouble(share, 1),
                          formatDouble(
                              multiCubeEfficiency(net, config), 2)});
        }
        std::printf("%s", table.str().c_str());
    }
    std::printf("\nshape: near-linear scaling while conv halos stay "
                "thin relative to each cube's tile; efficiency falls "
                "as tiles shrink toward the kernel size and the "
                "external links carry a growing share.\n");
}

} // namespace

int
main(int argc, char **argv)
{
    if (neurocube::bench::wantsGoogleBenchmark(argc, argv)) {
        ::benchmark::Initialize(&argc, argv);
        ::benchmark::RunSpecifiedBenchmarks();
        return 0;
    }
    printFigure();
    return 0;
}
