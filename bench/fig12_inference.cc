/**
 * @file
 * Reproduces Fig. 12: Neurocube inference of the scene-labeling
 * ConvNN — per-layer (a) operation counts, (b) clock cycles,
 * (c) throughput and (d) memory requirement with duplication
 * overhead, both with and without data duplication. Also reports the
 * Section VI-3 image-processing frame rates at the 28 nm and 15 nm
 * design points.
 *
 * Paper anchors: 132.4 GOPs/s with duplication, 111.4 without;
 * inference at 17.52 frames/s (28 nm) and 292.14 frames/s (15 nm).
 */

#include <benchmark/benchmark.h>

#include "bench_common.hh"
#include "power/power_model.hh"

namespace
{

using namespace neurocube;
using namespace neurocube::bench;

NetworkDesc
workload()
{
    unsigned w, h;
    inferenceInputSize(w, h);
    return sceneLabelingNetwork(w, h);
}

void
BM_InferenceDuplicated(benchmark::State &state)
{
    NetworkDesc net = workload();
    for (auto _ : state) {
        NeurocubeConfig config;
        RunResult run = runForward(config, net);
        state.counters["GOPs/s@5GHz"] = run.gopsPerSecond();
        state.counters["cycles"] = double(run.totalCycles());
    }
}
BENCHMARK(BM_InferenceDuplicated)->Unit(benchmark::kMillisecond)
    ->Iterations(1);

void
BM_InferenceNoDuplication(benchmark::State &state)
{
    NetworkDesc net = workload();
    for (auto _ : state) {
        NeurocubeConfig config;
        config.mapping.duplicateConvHalo = false;
        config.mapping.duplicateFcInput = false;
        RunResult run = runForward(config, net);
        state.counters["GOPs/s@5GHz"] = run.gopsPerSecond();
        state.counters["cycles"] = double(run.totalCycles());
    }
}
BENCHMARK(BM_InferenceNoDuplication)->Unit(benchmark::kMillisecond)
    ->Iterations(1);

void
printFigure()
{
    NetworkDesc net = workload();
    std::printf("\n=== Fig. 12: scene-labeling inference (%s input) "
                "===\n",
                quickMode() ? "reduced 160x120" : "320x240");

    NeurocubeConfig dup;
    RunManifest dup_manifest;
    std::string dup_phases;
    RunResult with_dup =
        runForward(dup, net, 1, &dup_manifest, &dup_phases);
    printLayerPanels(with_dup, "with data duplication (black bars)");
    printEnergyPanel(with_dup, "with data duplication");

    NeurocubeConfig nodup;
    nodup.mapping.duplicateConvHalo = false;
    nodup.mapping.duplicateFcInput = false;
    RunManifest nodup_manifest;
    std::string nodup_phases;
    RunResult without =
        runForward(nodup, net, 1, &nodup_manifest, &nodup_phases);
    printLayerPanels(without, "without data duplication (gray bars)");
    printEnergyPanel(without, "without data duplication");

    std::vector<NamedRun> runs = {
        {"duplicated", &with_dup, dup_manifest},
        {"no_duplication", &without, nodup_manifest},
    };
    runs[0].phasesJson = dup_phases;
    runs[1].phasesJson = nodup_phases;
    writeBenchJson("BENCH_fig12.json", runs);
    writeBenchProm("BENCH_fig12.prom", runs);
    writeBenchHtml("BENCH_fig12.html",
                   "Fig. 12: scene-labeling inference", runs);

    PowerModel m28(TechNode::Nm28), m15(TechNode::Nm15);
    std::printf("\nimage throughput (frames/s): 28nm %.2f, 15nm "
                "%.2f  (paper: 17.52 / 292.14)\n",
                with_dup.framesPerSecond(m28.throughputClockGhz()),
                with_dup.framesPerSecond(m15.throughputClockGhz()));
    std::printf("paper anchors: 132.4 GOPs/s (dup), 111.4 GOPs/s "
                "(no dup) at the 5 GHz / 15nm point\n");
}

} // namespace

int
main(int argc, char **argv)
{
    if (neurocube::bench::wantsGoogleBenchmark(argc, argv)) {
        ::benchmark::Initialize(&argc, argv);
        ::benchmark::RunSpecifiedBenchmarks();
        return 0;
    }
    printFigure();
    return 0;
}
