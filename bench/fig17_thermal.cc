/**
 * @file
 * Reproduces Fig. 17: 3D thermal simulation of the Neurocube stack
 * (logic die + 4 DRAM dies, passive heat sink) over the Fig. 16
 * floorplan.
 *
 * Paper anchors: at the 15 nm / 5 GHz operating point the logic die
 * peaks at 349 K and the DRAM dies at 344 K — within the HMC 2.0
 * limits of 383 K (logic) and 378 K (DRAM). At 28 nm the rise is
 * negligible (~1.3 W compute+logic).
 */

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.hh"
#include "power/power_model.hh"
#include "power/thermal.hh"

namespace
{

using namespace neurocube;
using namespace neurocube::bench;

void
BM_ThermalSolve(benchmark::State &state)
{
    ThermalParams params;
    ThermalModel model(params);
    PowerModel m15(TechNode::Nm15);
    auto map = model.floorplanPowerMap(m15.pePowerW(),
                                       m15.hmcLogicDiePowerW(), 16);
    for (auto _ : state) {
        ThermalResult r = model.solve(map, m15.dramPowerW());
        benchmark::DoNotOptimize(r.maxLogicK);
    }
}
BENCHMARK(BM_ThermalSolve)->Unit(benchmark::kMillisecond);

void
printFigure()
{
    std::printf("\n=== Fig. 17: 3D thermal simulation ===\n");
    ThermalParams params;
    ThermalModel model(params);

    TextTable table({"node", "compute (W)", "logic die (W)",
                     "DRAM (W)", "max logic (K)", "max DRAM (K)",
                     "within HMC 2.0 limits?"});
    for (TechNode node : {TechNode::Nm28, TechNode::Nm15}) {
        PowerModel m(node);
        auto map = model.floorplanPowerMap(m.pePowerW(),
                                           m.hmcLogicDiePowerW(), 16);
        ThermalResult r = model.solve(map, m.dramPowerW());
        bool ok = r.maxLogicK < hmcLogicDieLimitK
               && r.maxDramK < hmcDramDieLimitK;
        table.addRow({techNodeName(node),
                      formatDouble(m.computePowerW(), 2),
                      formatDouble(m.hmcLogicDiePowerW(), 2),
                      formatDouble(m.dramPowerW(), 2),
                      formatDouble(r.maxLogicK, 1),
                      formatDouble(r.maxDramK, 1),
                      ok ? "yes" : "NO"});
    }
    std::printf("%s", table.str().c_str());

    // Thermal map of the logic die at the 15 nm point (coarse).
    PowerModel m15(TechNode::Nm15);
    auto map = model.floorplanPowerMap(m15.pePowerW(),
                                       m15.hmcLogicDiePowerW(), 16);
    ThermalResult r = model.solve(map, m15.dramPowerW());
    std::printf("\n15nm logic-die temperature map (K), %ux%u "
                "cells:\n",
                params.gridSize, params.gridSize);
    for (unsigned y = 0; y < params.gridSize; y += 4) {
        for (unsigned x = 0; x < params.gridSize; x += 4) {
            std::printf(" %6.1f",
                        r.logicMapK[y * params.gridSize + x]);
        }
        std::printf("\n");
    }
    std::printf("\npaper anchors: max logic 349 K, max DRAM 344 K "
                "(limits 383 / 378 K)\n");
}

} // namespace

int
main(int argc, char **argv)
{
    if (neurocube::bench::wantsGoogleBenchmark(argc, argv)) {
        ::benchmark::Initialize(&argc, argv);
        ::benchmark::RunSpecifiedBenchmarks();
        return 0;
    }
    printFigure();
    return 0;
}
