/**
 * @file
 * Reproduces Fig. 15:
 *
 *  (a) HMC-internal vs DDR3: although DDR3 has higher peak bandwidth
 *      per channel (12.8 vs 10 GB/s), its two channels funnel all
 *      operand traffic through two mesh injection points and the NoC
 *      becomes the bottleneck; under equal aggregate bandwidth, more
 *      slower channels win.
 *  (b) 2D mesh vs fully connected NoC: the fully connected topology
 *      removes the lateral-traffic degradation of non-duplicated
 *      fully connected layers (at the cost of 17-port routers).
 */

#include <benchmark/benchmark.h>

#include "bench_common.hh"

namespace
{

using namespace neurocube;
using namespace neurocube::bench;

NetworkDesc
convWorkload()
{
    unsigned w = quickMode() ? 96 : 160;
    return singleConvNetwork(w, w * 3 / 4, 7, 1);
}

/** Named runs collected for BENCH_fig15.json. */
std::vector<std::pair<std::string, RunResult>> g_runs;

RunResult &
recordRun(const std::string &name, RunResult run)
{
    g_runs.emplace_back(name, std::move(run));
    return g_runs.back().second;
}

RunResult
runMemoryConfig(const DramParams &dram, bool duplicate)
{
    NeurocubeConfig config;
    config.dram = dram;
    config.mapping.duplicateConvHalo = duplicate;
    return runForward(config, convWorkload(), 3);
}

/** A hypothetical memory with the given channel count at fixed
 *  aggregate bandwidth (the paper's "more slower channels" point). */
DramParams
equalBandwidthChannels(unsigned channels, double total_gbps)
{
    DramParams p = DramParams::hmcInternal();
    p.name = std::to_string(channels) + "ch";
    p.numChannels = channels;
    p.peakBandwidthGBps = total_gbps / channels;
    return p;
}

void
BM_MemoryTechnology(benchmark::State &state)
{
    bool ddr = state.range(0) != 0;
    for (auto _ : state) {
        RunResult run = runMemoryConfig(
            ddr ? DramParams::ddr3() : DramParams::hmcInternal(),
            true);
        state.counters["GOPs/s@5GHz"] =
            run.layers[0].gopsPerSecond();
    }
}
BENCHMARK(BM_MemoryTechnology)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond)->Iterations(1);

void
printPanelA()
{
    std::printf("\n--- Fig. 15(a): HMC-Int vs DDR3 (7x7 conv layer) "
                "---\n");
    TextTable table({"memory", "channels", "BW/ch (GB/s)",
                     "dup", "GOPs/s@5GHz", "lateral %",
                     "bottleneck"});
    for (bool dup : {true, false}) {
        for (bool ddr : {false, true}) {
            DramParams p = ddr ? DramParams::ddr3()
                               : DramParams::hmcInternal();
            RunResult &run = recordRun(
                p.name + (dup ? "_dup" : "_nodup"),
                runMemoryConfig(p, dup));
            const LayerResult &r = run.layers[0];
            table.addRow({p.name, std::to_string(p.numChannels),
                          formatDouble(p.peakBandwidthGBps, 1),
                          dup ? "yes" : "no",
                          formatDouble(r.gopsPerSecond(), 1),
                          formatDouble(100.0 * r.lateralFraction(),
                                       1),
                          bottleneckCell(r.bottleneck)});
        }
    }
    std::printf("%s", table.str().c_str());

    std::printf("\nequal aggregate bandwidth, varying channel count "
                "(duplication on):\n");
    TextTable sweep({"channels", "BW/ch (GB/s)", "GOPs/s@5GHz",
                     "lateral %", "bottleneck"});
    const double total = 64.0; // GB/s aggregate
    for (unsigned ch : {2u, 4u, 8u, 16u}) {
        DramParams p = equalBandwidthChannels(ch, total);
        RunResult &run =
            recordRun(p.name + "_equal_bw", runMemoryConfig(p, true));
        const LayerResult &r = run.layers[0];
        sweep.addRow({std::to_string(ch),
                      formatDouble(p.peakBandwidthGBps, 1),
                      formatDouble(r.gopsPerSecond(), 1),
                      formatDouble(100.0 * r.lateralFraction(), 1),
                      bottleneckCell(r.bottleneck)});
    }
    std::printf("%s", sweep.str().c_str());
    std::printf("paper shape: DDR3 far below HMC despite higher "
                "per-channel bandwidth; at equal aggregate "
                "bandwidth, more channels -> higher throughput.\n");
}

void
printPanelB()
{
    std::printf("\n--- Fig. 15(b): mesh vs fully connected NoC ---\n");
    TextTable table({"NoC", "layer", "dup", "GOPs/s@5GHz",
                     "lateral %", "bottleneck"});

    unsigned fc_in = quickMode() ? 512 : 1024;
    for (NocTopology topo :
         {NocTopology::Mesh2D, NocTopology::FullyConnected}) {
        const char *name =
            topo == NocTopology::Mesh2D ? "mesh" : "fully-conn";
        // Locally connected layer.
        {
            NeurocubeConfig config;
            config.noc.topology = topo;
            config.mapping.duplicateConvHalo = false;
            RunResult &run = recordRun(
                std::string(name) + "_conv",
                runForward(config, convWorkload(), 5));
            const LayerResult &r = run.layers[0];
            table.addRow({name, "conv 7x7", "no",
                          formatDouble(r.gopsPerSecond(), 1),
                          formatDouble(100.0 * r.lateralFraction(),
                                       1),
                          bottleneckCell(r.bottleneck)});
        }
        // Densely connected layer, partitioned input.
        {
            NeurocubeConfig config;
            config.noc.topology = topo;
            config.mapping.duplicateFcInput = false;
            NetworkDesc net = threeLayerMlp(fc_in, 1024, 16);
            RunResult &run = recordRun(std::string(name) + "_fc",
                                       runForward(config, net, 6));
            const LayerResult &r = run.layers[0];
            table.addRow({name, "fully conn", "no",
                          formatDouble(r.gopsPerSecond(), 1),
                          formatDouble(100.0 * r.lateralFraction(),
                                       1),
                          bottleneckCell(r.bottleneck)});
        }
    }
    std::printf("%s", table.str().c_str());
    std::printf("paper shape: the fully connected NoC holds "
                "throughput flat from locally to fully connected "
                "layers; the mesh degrades on dense lateral "
                "traffic. Cost: 17 I/O channels per router.\n");
}

} // namespace

int
main(int argc, char **argv)
{
    if (neurocube::bench::wantsGoogleBenchmark(argc, argv)) {
        ::benchmark::Initialize(&argc, argv);
        ::benchmark::RunSpecifiedBenchmarks();
        return 0;
    }
    std::printf("\n=== Fig. 15: memory technology and NoC topology "
                "===\n");
    printPanelA();
    printPanelB();
    std::vector<NamedRun> runs;
    for (const auto &r : g_runs)
        runs.emplace_back(r.first, &r.second);
    writeBenchJson("BENCH_fig15.json", runs);
    writeBenchHtml("BENCH_fig15.html",
                   "Fig. 15: memory technology and NoC topology",
                   runs);
    return 0;
}
