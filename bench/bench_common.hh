/**
 * @file
 * Shared helpers for the reproduction benches.
 *
 * Every bench binary prints the rows/series of one paper table or
 * figure. Set NEUROCUBE_QUICK=1 in the environment to shrink the
 * workloads (smaller images) for fast iteration; the shipped
 * EXPERIMENTS.md numbers come from full-size runs.
 */

#ifndef NEUROCUBE_BENCH_BENCH_COMMON_HH
#define NEUROCUBE_BENCH_BENCH_COMMON_HH

#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/stats.hh"
#include "core/neurocube.hh"
#include "core/results.hh"
#include "nn/network.hh"

namespace neurocube::bench
{

/** True when NEUROCUBE_QUICK=1 requests reduced workloads. */
inline bool
quickMode()
{
    const char *env = std::getenv("NEUROCUBE_QUICK");
    return env != nullptr && env[0] == '1';
}

/** Scene-labeling input size for inference benches. */
inline void
inferenceInputSize(unsigned &w, unsigned &h)
{
    if (quickMode()) {
        w = 160;
        h = 120;
    } else {
        w = 320;
        h = 240;
    }
}

/** Run a full forward pass of a network on a machine config. */
inline RunResult
runForward(const NeurocubeConfig &config, const NetworkDesc &net,
           uint64_t seed = 1)
{
    NetworkData data = NetworkData::randomized(net, seed);
    Tensor input(net.inputMaps(), net.inputHeight(),
                 net.inputWidth());
    Rng rng(seed + 1);
    input.randomize(rng);
    Neurocube cube(config);
    cube.loadNetwork(net, data);
    cube.setInput(input);
    return cube.runForward();
}

/** Print one standard per-layer result block (Fig. 12/13 panels). */
inline void
printLayerPanels(const RunResult &run, const char *title)
{
    std::printf("\n--- %s ---\n", title);
    TextTable table({"layer", "ops (M)", "cycles (K)", "GOPs/s@5GHz",
                     "memory (MB)", "dup overhead (MB)",
                     "lateral %"});
    for (const LayerResult &l : run.layers) {
        table.addRow({l.name, formatDouble(double(l.ops) / 1e6, 2),
                      formatDouble(double(l.cycles) / 1e3, 1),
                      formatDouble(l.gopsPerSecond(), 1),
                      formatDouble(double(l.memoryBytes) / (1 << 20),
                                   2),
                      formatDouble(double(l.duplicationBytes)
                                       / (1 << 20),
                                   3),
                      formatDouble(100.0 * l.lateralFraction(), 1)});
    }
    std::printf("%s", table.str().c_str());
    std::printf("total: %.1f MOp, %.1f Kcycles, %.1f GOPs/s @5GHz "
                "(28nm @300MHz: %.1f GOPs/s)\n",
                double(run.totalOps()) / 1e6,
                double(run.totalCycles()) / 1e3,
                run.gopsPerSecond(), run.gopsPerSecond(0.3));
}

/**
 * Standard bench entry: with any --benchmark_* flag the registered
 * google-benchmark timings run; the bare invocation prints the
 * paper-table reproduction instead (what `ctest`-style batch runs
 * and EXPERIMENTS.md use).
 */
inline bool
wantsGoogleBenchmark(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]).rfind("--benchmark", 0) == 0)
            return true;
    }
    return false;
}

} // namespace neurocube::bench

#endif // NEUROCUBE_BENCH_BENCH_COMMON_HH
