/**
 * @file
 * Shared helpers for the reproduction benches.
 *
 * Every bench binary prints the rows/series of one paper table or
 * figure. Set NEUROCUBE_QUICK=1 in the environment to shrink the
 * workloads (smaller images) for fast iteration; the shipped
 * EXPERIMENTS.md numbers come from full-size runs.
 */

#ifndef NEUROCUBE_BENCH_BENCH_COMMON_HH
#define NEUROCUBE_BENCH_BENCH_COMMON_HH

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "common/stats.hh"
#include "core/manifest.hh"
#include "core/neurocube.hh"
#include "core/results.hh"
#include "nn/network.hh"
#include "power/activity_energy.hh"
#include "trace/metrics.hh"
#include "trace/phase_detector.hh"
#include "trace/report.hh"

namespace neurocube::bench
{

/** True when NEUROCUBE_QUICK=1 requests reduced workloads. */
inline bool
quickMode()
{
    const char *env = std::getenv("NEUROCUBE_QUICK");
    return env != nullptr && env[0] == '1';
}

/**
 * Simulation-engine override from NEUROCUBE_ENGINE=legacy|event|
 * threaded. Lets scripts/bench.sh time the same workload on both
 * cycle loops (EXPERIMENTS.md speedup table); cycle counts and
 * energy are engine-invariant, so the JSON gates are unaffected.
 */
inline SimEngine
engineFromEnv(SimEngine fallback)
{
    const char *env = std::getenv("NEUROCUBE_ENGINE");
    if (env == nullptr || env[0] == '\0')
        return fallback;
    if (std::strcmp(env, "legacy") == 0)
        return SimEngine::Legacy;
    if (std::strcmp(env, "event") == 0)
        return SimEngine::Event;
    if (std::strcmp(env, "threaded") == 0)
        return SimEngine::ThreadedLanes;
    std::fprintf(stderr,
                 "warning: unknown NEUROCUBE_ENGINE '%s' ignored\n",
                 env);
    return fallback;
}

/**
 * Plan-cache override from NEUROCUBE_PLAN_CACHE=0|1. Plans are
 * bit-exact either way (tests/test_engine_diff.cc fuzzes on-vs-off),
 * so disabling only changes wall clock — the knob exists to let
 * EXPERIMENTS.md attribute speedup to the cache vs the tick loops.
 */
inline bool
planCacheFromEnv(bool fallback)
{
    const char *env = std::getenv("NEUROCUBE_PLAN_CACHE");
    if (env == nullptr || env[0] == '\0')
        return fallback;
    return env[0] != '0';
}

/**
 * Trace-sampling period from NEUROCUBE_TRACE_SAMPLE=N (record one in
 * N aggregation windows of full-fidelity events; counters are always
 * exact). 1 — full fidelity — when unset or invalid.
 */
inline uint64_t
traceSampleFromEnv()
{
    const char *env = std::getenv("NEUROCUBE_TRACE_SAMPLE");
    if (env == nullptr || env[0] == '\0')
        return 1;
    uint64_t period = std::strtoull(env, nullptr, 10);
    return period > 0 ? period : 1;
}

/**
 * Trace-export override from NEUROCUBE_TRACE_EXPORT=<dir>: give the
 * run a full tracing session writing <dir>/<label>.trace.json and
 * <dir>/<label>.timeseries.csv, sampled per NEUROCUBE_TRACE_SAMPLE.
 * The wake-list engine stays active under the recorder (EngineSkip
 * aggregation); scripts/bench.sh --compare uses this to gate the
 * wall-clock overhead of sampled tracing.
 */
inline void
applyTraceExportFromEnv(NeurocubeConfig &cfg, const std::string &label)
{
    const char *dir = std::getenv("NEUROCUBE_TRACE_EXPORT");
    if (dir == nullptr || dir[0] == '\0')
        return;
    cfg.trace.enabled = true;
    cfg.trace.chromeJsonPath =
        std::string(dir) + "/" + label + ".trace.json";
    cfg.trace.timeseriesCsvPath =
        std::string(dir) + "/" + label + ".timeseries.csv";
    cfg.trace.samplePeriod = traceSampleFromEnv();
}

/** Millisecond wall-clock timer for RunResult::wallMs. */
class WallTimer
{
  public:
    WallTimer() : start_(std::chrono::steady_clock::now()) {}

    /** Milliseconds since construction. */
    double
    elapsedMs() const
    {
        return std::chrono::duration<double, std::milli>(
                   std::chrono::steady_clock::now() - start_)
            .count();
    }

  private:
    std::chrono::steady_clock::time_point start_;
};

/** Scene-labeling input size for inference benches. */
inline void
inferenceInputSize(unsigned &w, unsigned &h)
{
    if (quickMode()) {
        w = 160;
        h = 120;
    } else {
        w = 320;
        h = 240;
    }
}

/**
 * Per-phase energy rollup of an exported time-series CSV: detect
 * phases, join them with the avg_power_w track, serialize. Empty
 * string when the CSV is absent (no NEUROCUBE_TRACE_EXPORT).
 */
inline std::string
phaseEnergyFromCsv(const NeurocubeConfig &cfg)
{
    if (cfg.trace.timeseriesCsvPath.empty())
        return "";
    PhaseDetectorConfig pd;
    pd.windowTicks = cfg.trace.windowTicks;
    pd.numPes = cfg.numPes;
    pd.numPngs = cfg.dram.numChannels;
    pd.numRouters = cfg.numPes;
    pd.numVaults = cfg.dram.numChannels;
    std::ifstream detect(cfg.trace.timeseriesCsvPath);
    if (!detect.is_open())
        return "";
    std::vector<PhaseSegment> segments = detectPhases(detect, pd);
    std::ifstream join(cfg.trace.timeseriesCsvPath);
    return phaseEnergyJson(joinPhaseEnergy(segments, join, pd),
                           pd.windowTicks);
}

/**
 * Run a full forward pass of a network on a machine config.
 *
 * When @p manifest is non-null it is filled with the run's identity
 * block (config hash, git describe, active engine; name left empty
 * for the caller/writeBenchJson to label). NEUROCUBE_TRACE_EXPORT
 * and NEUROCUBE_TRACE_SAMPLE apply here (see applyTraceExportFromEnv).
 * When @p phases_json is non-null and the run exported a time-series
 * CSV, it receives the per-phase energy rollup (phaseEnergyJson) —
 * joined after the machine is torn down, since the trace session
 * flushes the CSV in its destructor.
 */
inline RunResult
runForward(const NeurocubeConfig &config, const NetworkDesc &net,
           uint64_t seed = 1, RunManifest *manifest = nullptr,
           std::string *phases_json = nullptr)
{
    NetworkData data = NetworkData::randomized(net, seed);
    Tensor input(net.inputMaps(), net.inputHeight(),
                 net.inputWidth());
    Rng rng(seed + 1);
    input.randomize(rng);
    NeurocubeConfig cfg = config;
#if NEUROCUBE_TRACE_ENABLED
    // Metrics-only trace session (no event sinks): every bench run
    // attributes its cycles so the panels and BENCH_*.json carry
    // bottleneck labels. Observational only — cycle counts match a
    // tracing-off run (tests/test_golden_cycles.cc).
    if (!cfg.trace.enabled) {
        cfg.trace.enabled = true;
        cfg.trace.metrics = true;
    }
#endif
    // Distinct export filenames for successive runs of one binary.
    static unsigned run_ordinal = 0;
    applyTraceExportFromEnv(
        cfg, "forward" + std::to_string(run_ordinal++));
    cfg.engine = engineFromEnv(cfg.engine);
    cfg.planCache = planCacheFromEnv(cfg.planCache);
    RunResult run;
    {
        Neurocube cube(cfg);
        cube.loadNetwork(net, data);
        cube.setInput(input);
        WallTimer timer;
        run = cube.runForward();
        run.wallMs = timer.elapsedMs();
        if (manifest != nullptr) {
            *manifest = buildRunManifest(cfg, cube.activeEngine(), "",
                                         quickMode());
        }
    } // trace session torn down here: the time-series CSV is flushed
    if (phases_json != nullptr)
        *phases_json = phaseEnergyFromCsv(cfg);
    return run;
}

/** Short table-cell annotation for a layer's bottleneck report. */
inline std::string
bottleneckCell(const BottleneckReport &b)
{
    if (!b.valid)
        return "-";
    // The stall class the label blames, for the headline fraction.
    StallClass cls = StallClass::Idle;
    std::string label(b.label);
    if (label == "mac")
        cls = StallClass::Busy;
    else if (label == "cache")
        cls = StallClass::StallCache;
    else if (label == "noc")
        cls = StallClass::StallNocCredit;
    else if (label == "inject")
        cls = StallClass::StallInject;
    else if (label == "dram")
        cls = StallClass::StallDram;
    return label + " "
           + formatDouble(100.0 * b.fractions[size_t(cls)], 0) + "%";
}

/** Print one standard per-layer result block (Fig. 12/13 panels). */
inline void
printLayerPanels(const RunResult &run, const char *title)
{
    std::printf("\n--- %s ---\n", title);
    TextTable table({"layer", "ops (M)", "cycles (K)", "GOPs/s@5GHz",
                     "memory (MB)", "dup overhead (MB)", "lateral %",
                     "bottleneck"});
    bool any_metrics = false;
    for (const LayerResult &l : run.layers) {
        any_metrics = any_metrics || l.bottleneck.valid;
        table.addRow({l.name, formatDouble(double(l.ops) / 1e6, 2),
                      formatDouble(double(l.cycles) / 1e3, 1),
                      formatDouble(l.gopsPerSecond(), 1),
                      formatDouble(double(l.memoryBytes) / (1 << 20),
                                   2),
                      formatDouble(double(l.duplicationBytes)
                                       / (1 << 20),
                                   3),
                      formatDouble(100.0 * l.lateralFraction(), 1),
                      bottleneckCell(l.bottleneck)});
    }
    std::printf("%s", table.str().c_str());
    std::printf("total: %.1f MOp, %.1f Kcycles, %.1f GOPs/s @5GHz "
                "(28nm @300MHz: %.1f GOPs/s)\n",
                double(run.totalOps()) / 1e6,
                double(run.totalCycles()) / 1e3,
                run.gopsPerSecond(), run.gopsPerSecond(0.3));

    if (!any_metrics)
        return;
    std::printf("stall attribution (machine-cycle fractions; each row "
                "sums to 1.0):\n");
    for (const LayerResult &l : run.layers) {
        const BottleneckReport &b = l.bottleneck;
        if (!b.valid)
            continue;
        std::printf("  %-10s", l.name.c_str());
        for (size_t s = 0; s < numStallClasses; ++s) {
            std::printf(" %s=%.3f", stallClassName(StallClass(s)),
                        b.fractions[s]);
        }
        std::printf("\n");
    }
}

/**
 * Print the activity-based energy block for a run: per-component
 * joules, average power, GOPS/W, and the analytic cross-check. Quiet
 * when the run carried no energy accounting (notrace builds).
 */
inline void
printEnergyPanel(const RunResult &run, const char *title)
{
    if (!run.energyCounts().valid)
        return;
    ActivityEnergyModel model;
    EnergyBreakdown b = model.price(run);
    double total_j = b.totalJ();
    double seconds = double(run.totalCycles()) / referenceClockHz;
    std::printf("energy (%s, activity @%s): %.3f mJ, avg %.2f W, "
                "%.1f GOPS/W\n",
                title, techNodeName(model.node()), total_j * 1e3,
                seconds > 0.0 ? total_j / seconds : 0.0,
                total_j > 0.0 ? double(run.totalOps()) / 1e9 / total_j
                              : 0.0);
    std::printf(" ");
    for (const EnergyComponentView &c : energyComponents(b)) {
        std::printf(" %s=%.3fmJ", c.name, c.joules * 1e3);
    }
    std::printf("\n");
    EnergyComparison cmp =
        compareWithAnalytic(run, PowerModel(TechNode::Nm15));
    std::printf("  vs analytic accountEnergy: %.3f mJ "
                "(activity factor %.2f; dram %.3f vs %.3f mJ)\n",
                cmp.analyticJ * 1e3, cmp.ratio,
                cmp.activity.dramJ * 1e3, cmp.analyticDramJ * 1e3);
}

/** Where BENCH_*.json files go (NEUROCUBE_BENCH_DIR or the cwd). */
inline std::string
benchOutputPath(const std::string &filename)
{
    const char *dir = std::getenv("NEUROCUBE_BENCH_DIR");
    if (dir != nullptr && dir[0] != '\0')
        return std::string(dir) + "/" + filename;
    return filename;
}

/**
 * One labelled run for writeBenchJson/writeBenchProm. Constructible
 * from the legacy {name, &run} pair (no manifest: the JSON carries
 * "manifest": null and the .prom writer skips the run) or from
 * {name, &run, manifest} where the manifest came out of runForward.
 */
struct NamedRun
{
    NamedRun(std::string run_name, const RunResult *run_result)
        : name(std::move(run_name)), run(run_result)
    {
    }

    NamedRun(std::string run_name, const RunResult *run_result,
             RunManifest run_manifest)
        : name(std::move(run_name)), run(run_result),
          manifest(std::move(run_manifest)), hasManifest(true)
    {
        manifest.name = name;
    }

    std::string name;
    const RunResult *run;
    RunManifest manifest;
    bool hasManifest = false;
    /**
     * Optional phaseEnergyJson document for this run (filled by the
     * caller from runForward's phases_json out-param). Only the HTML
     * report renders it; writeBenchJson/writeBenchProm ignore it.
     */
    std::string phasesJson;
};

/**
 * Write a machine-readable bench result file: one JSON object per
 * named run carrying its per-layer metrics document
 * (RunResult::metricsJson), its activity energy document
 * (RunResult::energyJson), and — when the caller provided one — its
 * run manifest (runManifestJson: config hash, git describe, engine,
 * cycles, stall/energy breakdowns, wall_ms). scripts/bench.sh
 * collects these and `bench.sh --compare` diffs them against
 * bench/baselines/.
 */
inline void
writeBenchJson(const std::string &filename,
               const std::vector<NamedRun> &runs)
{
    std::string path = benchOutputPath(filename);
    std::ofstream out(path);
    if (!out.is_open()) {
        std::fprintf(stderr, "warning: cannot write bench json '%s'\n",
                     path.c_str());
        return;
    }
    auto trimmed = [](std::string doc) {
        while (!doc.empty()
               && (doc.back() == '\n' || doc.back() == ' ')) {
            doc.pop_back();
        }
        return doc;
    };
    out << "{\n\"quick\": " << (quickMode() ? "true" : "false")
        << ",\n\"runs\": {\n";
    for (size_t i = 0; i < runs.size(); ++i) {
        out << "\"" << runs[i].name << "\": {\"wall_ms\": "
            << formatDouble(runs[i].run->wallMs, 1)
            << ",\n\"manifest\": "
            << (runs[i].hasManifest
                    ? runManifestJson(runs[i].manifest, *runs[i].run)
                    : std::string("null"))
            << ",\n\"metrics\": " << trimmed(runs[i].run->metricsJson())
            << ",\n\"energy\": " << trimmed(runs[i].run->energyJson())
            << "}" << (i + 1 < runs.size() ? "," : "") << "\n";
    }
    out << "}\n}\n";
    std::printf("wrote %s\n", path.c_str());
}

/**
 * Write the Prometheus-textfile sibling of writeBenchJson: the
 * concatenated runMetricsTextfile dumps of every manifested run,
 * ready for a node-exporter textfile collector directory. Runs
 * without a manifest are skipped.
 */
inline void
writeBenchProm(const std::string &filename,
               const std::vector<NamedRun> &runs)
{
    std::string path = benchOutputPath(filename);
    std::ofstream out(path);
    if (!out.is_open()) {
        std::fprintf(stderr, "warning: cannot write bench prom '%s'\n",
                     path.c_str());
        return;
    }
    for (const NamedRun &r : runs) {
        if (r.hasManifest)
            out << runMetricsTextfile(r.manifest, *r.run);
    }
    std::printf("wrote %s\n", path.c_str());
}

/**
 * Write the self-contained HTML sibling of writeBenchJson: one
 * report (trace/report.hh) with a section per named run — manifest
 * table, roofline scatter, mesh heatmaps, link map, stall/energy
 * bars, phase rollup. Pure presentation over the same documents the
 * JSON writer emits; never read by `bench.sh --compare`.
 */
inline void
writeBenchHtml(const std::string &filename, const std::string &title,
               const std::vector<NamedRun> &runs)
{
    std::string path = benchOutputPath(filename);
    std::ofstream out(path);
    if (!out.is_open()) {
        std::fprintf(stderr, "warning: cannot write bench html '%s'\n",
                     path.c_str());
        return;
    }
    auto trimmed = [](std::string doc) {
        while (!doc.empty()
               && (doc.back() == '\n' || doc.back() == ' ')) {
            doc.pop_back();
        }
        return doc;
    };
    std::vector<ReportRun> report;
    report.reserve(runs.size());
    for (const NamedRun &r : runs) {
        ReportRun section;
        section.name = r.name;
        if (r.hasManifest)
            section.manifestJson = runManifestJson(r.manifest, *r.run);
        section.metricsJson = trimmed(r.run->metricsJson());
        section.energyJson = trimmed(r.run->energyJson());
        section.spatialJson = trimmed(r.run->spatialJson());
        section.phasesJson = r.phasesJson;
        report.push_back(std::move(section));
    }
    out << renderRunReport(title, report);
    std::printf("wrote %s\n", path.c_str());
}

/**
 * Standard bench entry: with any --benchmark_* flag the registered
 * google-benchmark timings run; the bare invocation prints the
 * paper-table reproduction instead (what `ctest`-style batch runs
 * and EXPERIMENTS.md use).
 */
inline bool
wantsGoogleBenchmark(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]).rfind("--benchmark", 0) == 0)
            return true;
    }
    return false;
}

} // namespace neurocube::bench

#endif // NEUROCUBE_BENCH_BENCH_COMMON_HH
