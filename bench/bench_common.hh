/**
 * @file
 * Shared helpers for the reproduction benches.
 *
 * Every bench binary prints the rows/series of one paper table or
 * figure. Set NEUROCUBE_QUICK=1 in the environment to shrink the
 * workloads (smaller images) for fast iteration; the shipped
 * EXPERIMENTS.md numbers come from full-size runs.
 */

#ifndef NEUROCUBE_BENCH_BENCH_COMMON_HH
#define NEUROCUBE_BENCH_BENCH_COMMON_HH

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "common/stats.hh"
#include "core/neurocube.hh"
#include "core/results.hh"
#include "nn/network.hh"
#include "power/activity_energy.hh"
#include "trace/metrics.hh"

namespace neurocube::bench
{

/** True when NEUROCUBE_QUICK=1 requests reduced workloads. */
inline bool
quickMode()
{
    const char *env = std::getenv("NEUROCUBE_QUICK");
    return env != nullptr && env[0] == '1';
}

/**
 * Simulation-engine override from NEUROCUBE_ENGINE=legacy|event|
 * threaded. Lets scripts/bench.sh time the same workload on both
 * cycle loops (EXPERIMENTS.md speedup table); cycle counts and
 * energy are engine-invariant, so the JSON gates are unaffected.
 */
inline SimEngine
engineFromEnv(SimEngine fallback)
{
    const char *env = std::getenv("NEUROCUBE_ENGINE");
    if (env == nullptr || env[0] == '\0')
        return fallback;
    if (std::strcmp(env, "legacy") == 0)
        return SimEngine::Legacy;
    if (std::strcmp(env, "event") == 0)
        return SimEngine::Event;
    if (std::strcmp(env, "threaded") == 0)
        return SimEngine::ThreadedLanes;
    std::fprintf(stderr,
                 "warning: unknown NEUROCUBE_ENGINE '%s' ignored\n",
                 env);
    return fallback;
}

/**
 * Plan-cache override from NEUROCUBE_PLAN_CACHE=0|1. Plans are
 * bit-exact either way (tests/test_engine_diff.cc fuzzes on-vs-off),
 * so disabling only changes wall clock — the knob exists to let
 * EXPERIMENTS.md attribute speedup to the cache vs the tick loops.
 */
inline bool
planCacheFromEnv(bool fallback)
{
    const char *env = std::getenv("NEUROCUBE_PLAN_CACHE");
    if (env == nullptr || env[0] == '\0')
        return fallback;
    return env[0] != '0';
}

/** Millisecond wall-clock timer for RunResult::wallMs. */
class WallTimer
{
  public:
    WallTimer() : start_(std::chrono::steady_clock::now()) {}

    /** Milliseconds since construction. */
    double
    elapsedMs() const
    {
        return std::chrono::duration<double, std::milli>(
                   std::chrono::steady_clock::now() - start_)
            .count();
    }

  private:
    std::chrono::steady_clock::time_point start_;
};

/** Scene-labeling input size for inference benches. */
inline void
inferenceInputSize(unsigned &w, unsigned &h)
{
    if (quickMode()) {
        w = 160;
        h = 120;
    } else {
        w = 320;
        h = 240;
    }
}

/** Run a full forward pass of a network on a machine config. */
inline RunResult
runForward(const NeurocubeConfig &config, const NetworkDesc &net,
           uint64_t seed = 1)
{
    NetworkData data = NetworkData::randomized(net, seed);
    Tensor input(net.inputMaps(), net.inputHeight(),
                 net.inputWidth());
    Rng rng(seed + 1);
    input.randomize(rng);
    NeurocubeConfig cfg = config;
#if NEUROCUBE_TRACE_ENABLED
    // Metrics-only trace session (no event sinks): every bench run
    // attributes its cycles so the panels and BENCH_*.json carry
    // bottleneck labels. Observational only — cycle counts match a
    // tracing-off run (tests/test_golden_cycles.cc).
    if (!cfg.trace.enabled) {
        cfg.trace.enabled = true;
        cfg.trace.metrics = true;
    }
#endif
    cfg.engine = engineFromEnv(cfg.engine);
    cfg.planCache = planCacheFromEnv(cfg.planCache);
    Neurocube cube(cfg);
    cube.loadNetwork(net, data);
    cube.setInput(input);
    WallTimer timer;
    RunResult run = cube.runForward();
    run.wallMs = timer.elapsedMs();
    return run;
}

/** Short table-cell annotation for a layer's bottleneck report. */
inline std::string
bottleneckCell(const BottleneckReport &b)
{
    if (!b.valid)
        return "-";
    // The stall class the label blames, for the headline fraction.
    StallClass cls = StallClass::Idle;
    std::string label(b.label);
    if (label == "mac")
        cls = StallClass::Busy;
    else if (label == "cache")
        cls = StallClass::StallCache;
    else if (label == "noc")
        cls = StallClass::StallNocCredit;
    else if (label == "inject")
        cls = StallClass::StallInject;
    else if (label == "dram")
        cls = StallClass::StallDram;
    return label + " "
           + formatDouble(100.0 * b.fractions[size_t(cls)], 0) + "%";
}

/** Print one standard per-layer result block (Fig. 12/13 panels). */
inline void
printLayerPanels(const RunResult &run, const char *title)
{
    std::printf("\n--- %s ---\n", title);
    TextTable table({"layer", "ops (M)", "cycles (K)", "GOPs/s@5GHz",
                     "memory (MB)", "dup overhead (MB)", "lateral %",
                     "bottleneck"});
    bool any_metrics = false;
    for (const LayerResult &l : run.layers) {
        any_metrics = any_metrics || l.bottleneck.valid;
        table.addRow({l.name, formatDouble(double(l.ops) / 1e6, 2),
                      formatDouble(double(l.cycles) / 1e3, 1),
                      formatDouble(l.gopsPerSecond(), 1),
                      formatDouble(double(l.memoryBytes) / (1 << 20),
                                   2),
                      formatDouble(double(l.duplicationBytes)
                                       / (1 << 20),
                                   3),
                      formatDouble(100.0 * l.lateralFraction(), 1),
                      bottleneckCell(l.bottleneck)});
    }
    std::printf("%s", table.str().c_str());
    std::printf("total: %.1f MOp, %.1f Kcycles, %.1f GOPs/s @5GHz "
                "(28nm @300MHz: %.1f GOPs/s)\n",
                double(run.totalOps()) / 1e6,
                double(run.totalCycles()) / 1e3,
                run.gopsPerSecond(), run.gopsPerSecond(0.3));

    if (!any_metrics)
        return;
    std::printf("stall attribution (machine-cycle fractions; each row "
                "sums to 1.0):\n");
    for (const LayerResult &l : run.layers) {
        const BottleneckReport &b = l.bottleneck;
        if (!b.valid)
            continue;
        std::printf("  %-10s", l.name.c_str());
        for (size_t s = 0; s < numStallClasses; ++s) {
            std::printf(" %s=%.3f", stallClassName(StallClass(s)),
                        b.fractions[s]);
        }
        std::printf("\n");
    }
}

/**
 * Print the activity-based energy block for a run: per-component
 * joules, average power, GOPS/W, and the analytic cross-check. Quiet
 * when the run carried no energy accounting (notrace builds).
 */
inline void
printEnergyPanel(const RunResult &run, const char *title)
{
    if (!run.energyCounts().valid)
        return;
    ActivityEnergyModel model;
    EnergyBreakdown b = model.price(run);
    double total_j = b.totalJ();
    double seconds = double(run.totalCycles()) / referenceClockHz;
    std::printf("energy (%s, activity @%s): %.3f mJ, avg %.2f W, "
                "%.1f GOPS/W\n",
                title, techNodeName(model.node()), total_j * 1e3,
                seconds > 0.0 ? total_j / seconds : 0.0,
                total_j > 0.0 ? double(run.totalOps()) / 1e9 / total_j
                              : 0.0);
    std::printf(" ");
    for (const EnergyComponentView &c : energyComponents(b)) {
        std::printf(" %s=%.3fmJ", c.name, c.joules * 1e3);
    }
    std::printf("\n");
    EnergyComparison cmp =
        compareWithAnalytic(run, PowerModel(TechNode::Nm15));
    std::printf("  vs analytic accountEnergy: %.3f mJ "
                "(activity factor %.2f; dram %.3f vs %.3f mJ)\n",
                cmp.analyticJ * 1e3, cmp.ratio,
                cmp.activity.dramJ * 1e3, cmp.analyticDramJ * 1e3);
}

/** Where BENCH_*.json files go (NEUROCUBE_BENCH_DIR or the cwd). */
inline std::string
benchOutputPath(const std::string &filename)
{
    const char *dir = std::getenv("NEUROCUBE_BENCH_DIR");
    if (dir != nullptr && dir[0] != '\0')
        return std::string(dir) + "/" + filename;
    return filename;
}

/**
 * Write a machine-readable bench result file: one JSON object per
 * named run carrying its per-layer metrics document
 * (RunResult::metricsJson) and its activity energy document
 * (RunResult::energyJson). scripts/bench.sh collects these and
 * `bench.sh --compare` diffs them against bench/baselines/.
 */
inline void
writeBenchJson(
    const std::string &filename,
    const std::vector<std::pair<std::string, const RunResult *>> &runs)
{
    std::string path = benchOutputPath(filename);
    std::ofstream out(path);
    if (!out.is_open()) {
        std::fprintf(stderr, "warning: cannot write bench json '%s'\n",
                     path.c_str());
        return;
    }
    auto trimmed = [](std::string doc) {
        while (!doc.empty()
               && (doc.back() == '\n' || doc.back() == ' ')) {
            doc.pop_back();
        }
        return doc;
    };
    out << "{\n\"quick\": " << (quickMode() ? "true" : "false")
        << ",\n\"runs\": {\n";
    for (size_t i = 0; i < runs.size(); ++i) {
        out << "\"" << runs[i].first << "\": {\"wall_ms\": "
            << formatDouble(runs[i].second->wallMs, 1)
            << ",\n\"metrics\": "
            << trimmed(runs[i].second->metricsJson())
            << ",\n\"energy\": "
            << trimmed(runs[i].second->energyJson()) << "}"
            << (i + 1 < runs.size() ? "," : "") << "\n";
    }
    out << "}\n}\n";
    std::printf("wrote %s\n", path.c_str());
}

/**
 * Standard bench entry: with any --benchmark_* flag the registered
 * google-benchmark timings run; the bare invocation prints the
 * paper-table reproduction instead (what `ctest`-style batch runs
 * and EXPERIMENTS.md use).
 */
inline bool
wantsGoogleBenchmark(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]).rfind("--benchmark", 0) == 0)
            return true;
    }
    return false;
}

} // namespace neurocube::bench

#endif // NEUROCUBE_BENCH_BENCH_COMMON_HH
