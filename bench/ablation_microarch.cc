/**
 * @file
 * Ablation benches for the microarchitectural design choices called
 * out in DESIGN.md (beyond the paper's own figures):
 *
 *  - DRAM burst gap (tCCD) sensitivity: the gap between 8-word
 *    bursts is the first-order throughput knob of the vault model;
 *  - router buffer depth: the paper fixes 16-deep FIFOs;
 *  - PE-weight-memory mode (Section III-B2): streaming only states
 *    halves operand traffic for shared-kernel layers;
 *  - host configuration cost per pass.
 */

#include <benchmark/benchmark.h>

#include "bench_common.hh"

namespace
{

using namespace neurocube;
using namespace neurocube::bench;

NetworkDesc
workload()
{
    unsigned w = quickMode() ? 96 : 160;
    return singleConvNetwork(w, w * 3 / 4, 7, 2);
}

LayerResult
runConfig(const NeurocubeConfig &config)
{
    RunResult run = runForward(config, workload(), 7);
    LayerResult total = run.layers[0];
    for (size_t i = 1; i < run.layers.size(); ++i) {
        total.ops += run.layers[i].ops;
        total.cycles += run.layers[i].cycles;
    }
    return total;
}

void
BM_BurstGap(benchmark::State &state)
{
    NeurocubeConfig config;
    config.dram.burstGapTicks = Tick(state.range(0));
    for (auto _ : state) {
        LayerResult r = runConfig(config);
        state.counters["GOPs/s@5GHz"] = r.gopsPerSecond();
    }
}
BENCHMARK(BM_BurstGap)->Arg(0)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond)->Iterations(1);

void
printAblations()
{
    std::printf("\n=== Ablations: microarchitectural design choices "
                "===\n");

    std::printf("\n--- DRAM burst gap (tCCD) ---\n");
    {
        TextTable table({"tCCD (ticks)", "GOPs/s@5GHz",
                         "efficiency vs 160 GOPs/s peak"});
        for (Tick gap : {Tick(0), Tick(1), Tick(2), Tick(4)}) {
            NeurocubeConfig config;
            config.dram.burstGapTicks = gap;
            LayerResult r = runConfig(config);
            table.addRow({std::to_string(gap),
                          formatDouble(r.gopsPerSecond(), 1),
                          formatDouble(r.gopsPerSecond() / 160.0, 3)});
        }
        std::printf("%s", table.str().c_str());
    }

    std::printf("\n--- router buffer depth (paper: 16) ---\n");
    {
        TextTable table({"depth", "GOPs/s@5GHz"});
        for (unsigned depth : {2u, 4u, 8u, 16u, 32u}) {
            NeurocubeConfig config;
            config.noc.bufferDepth = depth;
            config.mapping.duplicateConvHalo = false; // stress NoC
            LayerResult r = runConfig(config);
            table.addRow({std::to_string(depth),
                          formatDouble(r.gopsPerSecond(), 1)});
        }
        std::printf("%s", table.str().c_str());
    }

    std::printf("\n--- PE weight memory (Section III-B2) ---\n");
    {
        TextTable table({"weights", "GOPs/s@5GHz", "DRAM bits"});
        for (bool local : {false, true}) {
            NeurocubeConfig config;
            config.mapping.weightsInPeMemory = local;
            LayerResult r = runConfig(config);
            table.addRow({local ? "PE memory (stream states only)"
                                : "streamed from DRAM",
                          formatDouble(r.gopsPerSecond(), 1),
                          formatCount(r.dramBits)});
        }
        std::printf("%s", table.str().c_str());
        std::printf("streaming only states halves DRAM traffic and "
                    "nearly doubles shared-kernel throughput.\n");
    }

    std::printf("\n--- host configuration cost per pass ---\n");
    {
        TextTable table({"config ticks/pass", "GOPs/s@5GHz"});
        for (Tick cost : {Tick(0), Tick(64), Tick(512), Tick(4096)}) {
            NeurocubeConfig config;
            config.configTicksPerPass = cost;
            LayerResult r = runConfig(config);
            table.addRow({std::to_string(cost),
                          formatDouble(r.gopsPerSecond(), 1)});
        }
        std::printf("%s", table.str().c_str());
    }
}

} // namespace

int
main(int argc, char **argv)
{
    if (neurocube::bench::wantsGoogleBenchmark(argc, argv)) {
        ::benchmark::Initialize(&argc, argv);
        ::benchmark::RunSpecifiedBenchmarks();
        return 0;
    }
    printAblations();
    return 0;
}
