file(REMOVE_RECURSE
  "CMakeFiles/fig12_inference.dir/fig12_inference.cc.o"
  "CMakeFiles/fig12_inference.dir/fig12_inference.cc.o.d"
  "fig12_inference"
  "fig12_inference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_inference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
