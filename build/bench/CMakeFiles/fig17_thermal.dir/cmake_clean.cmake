file(REMOVE_RECURSE
  "CMakeFiles/fig17_thermal.dir/fig17_thermal.cc.o"
  "CMakeFiles/fig17_thermal.dir/fig17_thermal.cc.o.d"
  "fig17_thermal"
  "fig17_thermal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_thermal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
