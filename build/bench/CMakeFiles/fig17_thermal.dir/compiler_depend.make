# Empty compiler generated dependencies file for fig17_thermal.
# This may be replaced when dependencies are built.
