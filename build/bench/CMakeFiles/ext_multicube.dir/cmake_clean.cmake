file(REMOVE_RECURSE
  "CMakeFiles/ext_multicube.dir/ext_multicube.cc.o"
  "CMakeFiles/ext_multicube.dir/ext_multicube.cc.o.d"
  "ext_multicube"
  "ext_multicube.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_multicube.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
