# Empty dependencies file for ext_multicube.
# This may be replaced when dependencies are built.
