# Empty compiler generated dependencies file for fig14_nn_params.
# This may be replaced when dependencies are built.
