file(REMOVE_RECURSE
  "CMakeFiles/fig14_nn_params.dir/fig14_nn_params.cc.o"
  "CMakeFiles/fig14_nn_params.dir/fig14_nn_params.cc.o.d"
  "fig14_nn_params"
  "fig14_nn_params.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_nn_params.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
