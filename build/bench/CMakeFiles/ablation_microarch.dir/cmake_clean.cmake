file(REMOVE_RECURSE
  "CMakeFiles/ablation_microarch.dir/ablation_microarch.cc.o"
  "CMakeFiles/ablation_microarch.dir/ablation_microarch.cc.o.d"
  "ablation_microarch"
  "ablation_microarch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_microarch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
