file(REMOVE_RECURSE
  "CMakeFiles/fig15_memory_noc.dir/fig15_memory_noc.cc.o"
  "CMakeFiles/fig15_memory_noc.dir/fig15_memory_noc.cc.o.d"
  "fig15_memory_noc"
  "fig15_memory_noc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_memory_noc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
