# Empty dependencies file for fig15_memory_noc.
# This may be replaced when dependencies are built.
