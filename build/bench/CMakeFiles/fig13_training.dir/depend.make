# Empty dependencies file for fig13_training.
# This may be replaced when dependencies are built.
