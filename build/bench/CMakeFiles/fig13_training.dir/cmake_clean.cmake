file(REMOVE_RECURSE
  "CMakeFiles/fig13_training.dir/fig13_training.cc.o"
  "CMakeFiles/fig13_training.dir/fig13_training.cc.o.d"
  "fig13_training"
  "fig13_training.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
