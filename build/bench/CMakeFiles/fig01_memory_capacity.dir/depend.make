# Empty dependencies file for fig01_memory_capacity.
# This may be replaced when dependencies are built.
