file(REMOVE_RECURSE
  "CMakeFiles/fig01_memory_capacity.dir/fig01_memory_capacity.cc.o"
  "CMakeFiles/fig01_memory_capacity.dir/fig01_memory_capacity.cc.o.d"
  "fig01_memory_capacity"
  "fig01_memory_capacity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_memory_capacity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
