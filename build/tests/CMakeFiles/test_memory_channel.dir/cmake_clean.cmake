file(REMOVE_RECURSE
  "CMakeFiles/test_memory_channel.dir/test_memory_channel.cc.o"
  "CMakeFiles/test_memory_channel.dir/test_memory_channel.cc.o.d"
  "test_memory_channel"
  "test_memory_channel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_memory_channel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
