# Empty dependencies file for test_memory_channel.
# This may be replaced when dependencies are built.
