file(REMOVE_RECURSE
  "CMakeFiles/test_png.dir/test_png.cc.o"
  "CMakeFiles/test_png.dir/test_png.cc.o.d"
  "test_png"
  "test_png.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_png.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
