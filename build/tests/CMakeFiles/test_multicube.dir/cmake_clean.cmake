file(REMOVE_RECURSE
  "CMakeFiles/test_multicube.dir/test_multicube.cc.o"
  "CMakeFiles/test_multicube.dir/test_multicube.cc.o.d"
  "test_multicube"
  "test_multicube.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multicube.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
