# Empty dependencies file for test_multicube.
# This may be replaced when dependencies are built.
