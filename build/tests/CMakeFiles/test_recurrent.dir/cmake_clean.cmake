file(REMOVE_RECURSE
  "CMakeFiles/test_recurrent.dir/test_recurrent.cc.o"
  "CMakeFiles/test_recurrent.dir/test_recurrent.cc.o.d"
  "test_recurrent"
  "test_recurrent.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_recurrent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
