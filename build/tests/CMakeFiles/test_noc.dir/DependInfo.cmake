
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_noc.cc" "tests/CMakeFiles/test_noc.dir/test_noc.cc.o" "gcc" "tests/CMakeFiles/test_noc.dir/test_noc.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/nc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/nc_power.dir/DependInfo.cmake"
  "/root/repo/build/src/pe/CMakeFiles/nc_pe.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/nc_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/png/CMakeFiles/nc_png.dir/DependInfo.cmake"
  "/root/repo/build/src/dram/CMakeFiles/nc_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/nc_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/nc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
