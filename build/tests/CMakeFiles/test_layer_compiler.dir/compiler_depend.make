# Empty compiler generated dependencies file for test_layer_compiler.
# This may be replaced when dependencies are built.
