file(REMOVE_RECURSE
  "CMakeFiles/test_layer_compiler.dir/test_layer_compiler.cc.o"
  "CMakeFiles/test_layer_compiler.dir/test_layer_compiler.cc.o.d"
  "test_layer_compiler"
  "test_layer_compiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_layer_compiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
