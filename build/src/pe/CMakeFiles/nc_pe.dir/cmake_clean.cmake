file(REMOVE_RECURSE
  "CMakeFiles/nc_pe.dir/pe.cc.o"
  "CMakeFiles/nc_pe.dir/pe.cc.o.d"
  "libnc_pe.a"
  "libnc_pe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nc_pe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
