# Empty dependencies file for nc_pe.
# This may be replaced when dependencies are built.
