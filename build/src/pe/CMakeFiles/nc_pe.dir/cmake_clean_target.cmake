file(REMOVE_RECURSE
  "libnc_pe.a"
)
