# Empty compiler generated dependencies file for nc_common.
# This may be replaced when dependencies are built.
