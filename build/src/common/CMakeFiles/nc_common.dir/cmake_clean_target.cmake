file(REMOVE_RECURSE
  "libnc_common.a"
)
