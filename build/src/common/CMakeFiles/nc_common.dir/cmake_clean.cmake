file(REMOVE_RECURSE
  "CMakeFiles/nc_common.dir/logging.cc.o"
  "CMakeFiles/nc_common.dir/logging.cc.o.d"
  "CMakeFiles/nc_common.dir/stats.cc.o"
  "CMakeFiles/nc_common.dir/stats.cc.o.d"
  "libnc_common.a"
  "libnc_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nc_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
