# Empty compiler generated dependencies file for nc_nn.
# This may be replaced when dependencies are built.
