# Empty dependencies file for nc_nn.
# This may be replaced when dependencies are built.
