file(REMOVE_RECURSE
  "CMakeFiles/nc_nn.dir/layer.cc.o"
  "CMakeFiles/nc_nn.dir/layer.cc.o.d"
  "CMakeFiles/nc_nn.dir/mapping.cc.o"
  "CMakeFiles/nc_nn.dir/mapping.cc.o.d"
  "CMakeFiles/nc_nn.dir/network.cc.o"
  "CMakeFiles/nc_nn.dir/network.cc.o.d"
  "CMakeFiles/nc_nn.dir/recurrent.cc.o"
  "CMakeFiles/nc_nn.dir/recurrent.cc.o.d"
  "CMakeFiles/nc_nn.dir/reference.cc.o"
  "CMakeFiles/nc_nn.dir/reference.cc.o.d"
  "libnc_nn.a"
  "libnc_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nc_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
