file(REMOVE_RECURSE
  "libnc_nn.a"
)
