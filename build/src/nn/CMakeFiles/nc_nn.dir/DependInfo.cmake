
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/layer.cc" "src/nn/CMakeFiles/nc_nn.dir/layer.cc.o" "gcc" "src/nn/CMakeFiles/nc_nn.dir/layer.cc.o.d"
  "/root/repo/src/nn/mapping.cc" "src/nn/CMakeFiles/nc_nn.dir/mapping.cc.o" "gcc" "src/nn/CMakeFiles/nc_nn.dir/mapping.cc.o.d"
  "/root/repo/src/nn/network.cc" "src/nn/CMakeFiles/nc_nn.dir/network.cc.o" "gcc" "src/nn/CMakeFiles/nc_nn.dir/network.cc.o.d"
  "/root/repo/src/nn/recurrent.cc" "src/nn/CMakeFiles/nc_nn.dir/recurrent.cc.o" "gcc" "src/nn/CMakeFiles/nc_nn.dir/recurrent.cc.o.d"
  "/root/repo/src/nn/reference.cc" "src/nn/CMakeFiles/nc_nn.dir/reference.cc.o" "gcc" "src/nn/CMakeFiles/nc_nn.dir/reference.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/nc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/dram/CMakeFiles/nc_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/png/CMakeFiles/nc_png.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/nc_noc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
