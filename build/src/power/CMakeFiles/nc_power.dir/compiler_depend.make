# Empty compiler generated dependencies file for nc_power.
# This may be replaced when dependencies are built.
