file(REMOVE_RECURSE
  "CMakeFiles/nc_power.dir/energy_model.cc.o"
  "CMakeFiles/nc_power.dir/energy_model.cc.o.d"
  "CMakeFiles/nc_power.dir/power_model.cc.o"
  "CMakeFiles/nc_power.dir/power_model.cc.o.d"
  "CMakeFiles/nc_power.dir/thermal.cc.o"
  "CMakeFiles/nc_power.dir/thermal.cc.o.d"
  "libnc_power.a"
  "libnc_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nc_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
