file(REMOVE_RECURSE
  "libnc_power.a"
)
