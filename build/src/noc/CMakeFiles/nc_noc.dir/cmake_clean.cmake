file(REMOVE_RECURSE
  "CMakeFiles/nc_noc.dir/fabric.cc.o"
  "CMakeFiles/nc_noc.dir/fabric.cc.o.d"
  "CMakeFiles/nc_noc.dir/router.cc.o"
  "CMakeFiles/nc_noc.dir/router.cc.o.d"
  "libnc_noc.a"
  "libnc_noc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nc_noc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
