# Empty dependencies file for nc_noc.
# This may be replaced when dependencies are built.
