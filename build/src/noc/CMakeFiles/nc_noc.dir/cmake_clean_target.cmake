file(REMOVE_RECURSE
  "libnc_noc.a"
)
