
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dram/dram_params.cc" "src/dram/CMakeFiles/nc_dram.dir/dram_params.cc.o" "gcc" "src/dram/CMakeFiles/nc_dram.dir/dram_params.cc.o.d"
  "/root/repo/src/dram/memory_channel.cc" "src/dram/CMakeFiles/nc_dram.dir/memory_channel.cc.o" "gcc" "src/dram/CMakeFiles/nc_dram.dir/memory_channel.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/nc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
