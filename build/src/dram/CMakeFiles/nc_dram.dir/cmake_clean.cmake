file(REMOVE_RECURSE
  "CMakeFiles/nc_dram.dir/dram_params.cc.o"
  "CMakeFiles/nc_dram.dir/dram_params.cc.o.d"
  "CMakeFiles/nc_dram.dir/memory_channel.cc.o"
  "CMakeFiles/nc_dram.dir/memory_channel.cc.o.d"
  "libnc_dram.a"
  "libnc_dram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nc_dram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
