file(REMOVE_RECURSE
  "libnc_dram.a"
)
