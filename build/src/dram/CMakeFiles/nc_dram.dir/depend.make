# Empty dependencies file for nc_dram.
# This may be replaced when dependencies are built.
