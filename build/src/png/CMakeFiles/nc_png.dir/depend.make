# Empty dependencies file for nc_png.
# This may be replaced when dependencies are built.
