file(REMOVE_RECURSE
  "libnc_png.a"
)
