file(REMOVE_RECURSE
  "CMakeFiles/nc_png.dir/address_generator.cc.o"
  "CMakeFiles/nc_png.dir/address_generator.cc.o.d"
  "CMakeFiles/nc_png.dir/lut.cc.o"
  "CMakeFiles/nc_png.dir/lut.cc.o.d"
  "CMakeFiles/nc_png.dir/png.cc.o"
  "CMakeFiles/nc_png.dir/png.cc.o.d"
  "libnc_png.a"
  "libnc_png.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nc_png.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
