file(REMOVE_RECURSE
  "CMakeFiles/nc_core.dir/analytic_model.cc.o"
  "CMakeFiles/nc_core.dir/analytic_model.cc.o.d"
  "CMakeFiles/nc_core.dir/layer_compiler.cc.o"
  "CMakeFiles/nc_core.dir/layer_compiler.cc.o.d"
  "CMakeFiles/nc_core.dir/multi_cube.cc.o"
  "CMakeFiles/nc_core.dir/multi_cube.cc.o.d"
  "CMakeFiles/nc_core.dir/neurocube.cc.o"
  "CMakeFiles/nc_core.dir/neurocube.cc.o.d"
  "CMakeFiles/nc_core.dir/recurrent.cc.o"
  "CMakeFiles/nc_core.dir/recurrent.cc.o.d"
  "CMakeFiles/nc_core.dir/training.cc.o"
  "CMakeFiles/nc_core.dir/training.cc.o.d"
  "libnc_core.a"
  "libnc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
