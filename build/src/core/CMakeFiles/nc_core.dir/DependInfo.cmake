
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/analytic_model.cc" "src/core/CMakeFiles/nc_core.dir/analytic_model.cc.o" "gcc" "src/core/CMakeFiles/nc_core.dir/analytic_model.cc.o.d"
  "/root/repo/src/core/layer_compiler.cc" "src/core/CMakeFiles/nc_core.dir/layer_compiler.cc.o" "gcc" "src/core/CMakeFiles/nc_core.dir/layer_compiler.cc.o.d"
  "/root/repo/src/core/multi_cube.cc" "src/core/CMakeFiles/nc_core.dir/multi_cube.cc.o" "gcc" "src/core/CMakeFiles/nc_core.dir/multi_cube.cc.o.d"
  "/root/repo/src/core/neurocube.cc" "src/core/CMakeFiles/nc_core.dir/neurocube.cc.o" "gcc" "src/core/CMakeFiles/nc_core.dir/neurocube.cc.o.d"
  "/root/repo/src/core/recurrent.cc" "src/core/CMakeFiles/nc_core.dir/recurrent.cc.o" "gcc" "src/core/CMakeFiles/nc_core.dir/recurrent.cc.o.d"
  "/root/repo/src/core/training.cc" "src/core/CMakeFiles/nc_core.dir/training.cc.o" "gcc" "src/core/CMakeFiles/nc_core.dir/training.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/nc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/dram/CMakeFiles/nc_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/nc_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/pe/CMakeFiles/nc_pe.dir/DependInfo.cmake"
  "/root/repo/build/src/png/CMakeFiles/nc_png.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/nc_nn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
