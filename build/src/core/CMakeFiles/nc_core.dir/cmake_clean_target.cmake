file(REMOVE_RECURSE
  "libnc_core.a"
)
