# Empty dependencies file for nc_core.
# This may be replaced when dependencies are built.
