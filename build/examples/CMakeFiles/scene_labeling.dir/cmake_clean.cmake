file(REMOVE_RECURSE
  "CMakeFiles/scene_labeling.dir/scene_labeling.cpp.o"
  "CMakeFiles/scene_labeling.dir/scene_labeling.cpp.o.d"
  "scene_labeling"
  "scene_labeling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scene_labeling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
