# Empty dependencies file for scene_labeling.
# This may be replaced when dependencies are built.
