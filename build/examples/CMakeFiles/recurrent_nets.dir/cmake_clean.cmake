file(REMOVE_RECURSE
  "CMakeFiles/recurrent_nets.dir/recurrent_nets.cpp.o"
  "CMakeFiles/recurrent_nets.dir/recurrent_nets.cpp.o.d"
  "recurrent_nets"
  "recurrent_nets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recurrent_nets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
