# Empty compiler generated dependencies file for recurrent_nets.
# This may be replaced when dependencies are built.
