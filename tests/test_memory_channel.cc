/**
 * @file
 * Unit tests for the DRAM channel timing model and backing store.
 */

#include <gtest/gtest.h>

#include "dram/backing_store.hh"
#include "dram/dram_params.hh"
#include "dram/memory_channel.hh"

namespace neurocube
{
namespace
{

TEST(DramParams, TableOneValues)
{
    DramParams hmc = DramParams::hmcInternal();
    EXPECT_EQ(hmc.numChannels, 16u);
    EXPECT_EQ(hmc.wordBits, 32u);
    // One 32-bit word per 5 GHz tick (the Section VI burst rate).
    EXPECT_DOUBLE_EQ(hmc.peakBandwidthGBps, 20.0);
    EXPECT_EQ(hmc.elementsPerWord(), 2u);

    DramParams ddr = DramParams::ddr3();
    EXPECT_EQ(ddr.numChannels, 2u);
    EXPECT_EQ(ddr.wordBits, 64u);
    EXPECT_EQ(ddr.elementsPerWord(), 4u);
}

TEST(DramParams, HmcRateIsOneWordPerTick)
{
    // The paper's simulator pushes one 32-bit word per 5 GHz cycle
    // per vault in burst mode (Section VI).
    DramParams hmc = DramParams::hmcInternal();
    EXPECT_NEAR(hmc.wordsPerTick(), 1.0, 1e-9);
}

TEST(DramParams, ActivateTicksRoundsUp)
{
    DramParams hmc = DramParams::hmcInternal();
    // 27.5 ns at 5 GHz = 137.5 -> 138 ticks.
    EXPECT_EQ(hmc.activateTicks(), 138u);
}

TEST(BackingStore, ReadWriteAndDefaultZero)
{
    BackingStore store;
    EXPECT_EQ(store.read(100).raw(), 0);
    store.write(100, Fixed::fromDouble(2.5));
    EXPECT_DOUBLE_EQ(store.read(100).toDouble(), 2.5);
}

TEST(BackingStore, AllocatorBumpsAndTracks)
{
    BackingStore store;
    Region a = store.allocate(10);
    Region b = store.allocate(5);
    EXPECT_EQ(a.base, 0u);
    EXPECT_EQ(b.base, 10u);
    EXPECT_EQ(store.allocatedElements(), 15u);
    EXPECT_EQ(store.allocatedBytes(), 30u);
    EXPECT_TRUE(a.contains(9));
    EXPECT_FALSE(a.contains(10));
}

class ChannelTest : public ::testing::Test
{
  protected:
    ChannelTest()
        : params_(makeParams()), root_(nullptr, "test"),
          channel_(params_, &root_, "ch")
    {
    }

    static DramParams
    makeParams()
    {
        DramParams p = DramParams::hmcInternal();
        // Full-rate channel for deterministic timing in tests.
        p.peakBandwidthGBps = 20.0; // 1 word/tick
        return p;
    }

    /** Run the channel for n ticks, collecting responses. */
    std::vector<MemResponse>
    run(Tick n)
    {
        std::vector<MemResponse> out;
        for (Tick t = 0; t < n; ++t) {
            channel_.tick(now_++);
            while (!channel_.responses().empty()) {
                out.push_back(channel_.responses().front());
                channel_.responses().pop_front();
            }
        }
        return out;
    }

    DramParams params_;
    StatGroup root_;
    MemoryChannel channel_;
    Tick now_ = 0;
};

TEST_F(ChannelTest, ServicesReadsInOrder)
{
    channel_.store().write(0, Fixed::fromDouble(1.0));
    channel_.store().write(1, Fixed::fromDouble(2.0));
    channel_.enqueue({false, 0, Fixed(), 7});
    channel_.enqueue({false, 1, Fixed(), 8});
    auto responses = run(200);
    ASSERT_EQ(responses.size(), 2u);
    EXPECT_EQ(responses[0].tag, 7u);
    EXPECT_DOUBLE_EQ(responses[0].data.toDouble(), 1.0);
    EXPECT_EQ(responses[1].tag, 8u);
    EXPECT_DOUBLE_EQ(responses[1].data.toDouble(), 2.0);
}

TEST_F(ChannelTest, PacksTwoElementsPerWord)
{
    // Both elements are in the same row: one word services both, so
    // they complete on the same tick.
    channel_.enqueue({false, 0, Fixed(), 0});
    channel_.enqueue({false, 1, Fixed(), 1});
    Tick first = 0, second = 0;
    for (Tick t = 0; t < 300 && second == 0; ++t) {
        channel_.tick(now_++);
        while (!channel_.responses().empty()) {
            if (channel_.responses().front().tag == 0)
                first = t;
            else
                second = t;
            channel_.responses().pop_front();
        }
    }
    EXPECT_EQ(first, second);
}

TEST_F(ChannelTest, ColdStartPaysActivation)
{
    channel_.enqueue({false, 0, Fixed(), 0});
    Tick done = 0;
    for (Tick t = 0; t < 400 && done == 0; ++t) {
        channel_.tick(now_++);
        if (!channel_.responses().empty())
            done = t;
    }
    // First access must wait out tRCD + tCL (138 ticks at 5 GHz).
    EXPECT_GE(done, params_.activateTicks() - 1);
}

TEST_F(ChannelTest, BurstGapEnforced)
{
    // Stream 64 sequential elements (32 words = 4 bursts) and check
    // the total time exceeds the pure transfer time by the gaps.
    for (Addr a = 0; a < 64; ++a)
        channel_.enqueue({false, a, Fixed(), a});
    size_t seen = 0;
    Tick last = 0;
    for (Tick t = 0; t < 1000 && seen < 64; ++t) {
        channel_.tick(now_++);
        while (!channel_.responses().empty()) {
            ++seen;
            last = t;
            channel_.responses().pop_front();
        }
    }
    ASSERT_EQ(seen, 64u);
    // 32 words in bursts of 8 with 1-tick gaps: >= 35 ticks of
    // transfer beyond the activation.
    EXPECT_GE(last, params_.activateTicks() + 32 + 3 - 1);
}

TEST_F(ChannelTest, WritesLandInStore)
{
    channel_.enqueue({true, 5, Fixed::fromDouble(-1.5), 0});
    run(300);
    EXPECT_DOUBLE_EQ(channel_.store().read(5).toDouble(), -1.5);
    EXPECT_TRUE(channel_.idle());
}

TEST_F(ChannelTest, ResponseBacklogStallsChannel)
{
    for (Addr a = 0; a < 64; ++a)
        channel_.enqueue({false, a, Fixed(), a});
    // Never drain responses: the channel must stop at the backlog
    // limit instead of buffering unboundedly.
    for (Tick t = 0; t < 600; ++t)
        channel_.tick(now_++);
    EXPECT_LE(channel_.responses().size(),
              MemoryChannel::responseBacklogLimit + 1);
    EXPECT_FALSE(channel_.canAccept() && channel_.idle());
}

TEST_F(ChannelTest, RowMissStallsUntilActivation)
{
    // Two reads in different rows of the same bank cannot proceed
    // back-to-back; the second waits for its activation. Row 17
    // hashes to bank 0 like row 0 does ((17 ^ 1) % 16 == 0).
    unsigned row_elems = params_.elementsPerRow();
    Addr same_bank_far = Addr(row_elems) * 17;
    channel_.enqueue({false, 0, Fixed(), 0});
    channel_.enqueue({false, same_bank_far, Fixed(), 1});
    Tick first = 0, second = 0;
    for (Tick t = 0; t < 1000 && second == 0; ++t) {
        channel_.tick(now_++);
        while (!channel_.responses().empty()) {
            if (channel_.responses().front().tag == 0)
                first = t;
            else
                second = t;
            channel_.responses().pop_front();
        }
    }
    ASSERT_GT(second, 0u);
    EXPECT_GE(second - first, params_.activateTicks() - 1);
}

TEST_F(ChannelTest, ReadAfterBufferedWriteReturnsNewValue)
{
    // A read that targets an address sitting in the write buffer
    // must observe the written value (the hazard forces a drain).
    channel_.store().write(9, Fixed::fromDouble(1.0));
    channel_.enqueue({true, 9, Fixed::fromDouble(7.5), 0});
    channel_.enqueue({false, 9, Fixed(), 1});
    auto responses = run(600);
    ASSERT_EQ(responses.size(), 1u);
    EXPECT_DOUBLE_EQ(responses[0].data.toDouble(), 7.5);
}

TEST_F(ChannelTest, WritesDrainWhenReadsRunOut)
{
    // A lone write must not linger: with no reads queued the drain
    // policy flushes it.
    channel_.enqueue({true, 3, Fixed::fromDouble(2.0), 0});
    run(400);
    EXPECT_TRUE(channel_.idle());
    EXPECT_DOUBLE_EQ(channel_.store().read(3).toDouble(), 2.0);
}

TEST_F(ChannelTest, WriteBurstAmortizesRowActivations)
{
    // 48 writes into one output row drain in batches: far fewer
    // activations than writes.
    for (Addr a = 0; a < 48 && channel_.canAccept(); ++a)
        channel_.enqueue({true, 5000 + a, Fixed::fromDouble(0.5), a});
    run(1200);
    EXPECT_TRUE(channel_.idle());
    for (Addr a = 0; a < 48; ++a)
        EXPECT_DOUBLE_EQ(channel_.store().read(5000 + a).toDouble(),
                         0.5);
}

TEST_F(ChannelTest, InterleavedReadsAndWritesAllComplete)
{
    // Mixed traffic: reads of one region, writes to another; every
    // request completes and reads see pre-write contents (disjoint
    // addresses).
    for (Addr a = 0; a < 16; ++a)
        channel_.store().write(a, Fixed::fromRaw(int16_t(a)));
    unsigned issued_reads = 0;
    for (Addr a = 0; a < 16; ++a) {
        channel_.enqueue({false, a, Fixed(), a});
        ++issued_reads;
        channel_.enqueue({true, 9000 + a,
                          Fixed::fromRaw(int16_t(100 + a)), a});
    }
    auto responses = run(1500);
    EXPECT_TRUE(channel_.idle());
    ASSERT_EQ(responses.size(), size_t(issued_reads));
    for (const MemResponse &r : responses)
        EXPECT_EQ(r.data.raw(), int16_t(r.addr));
    for (Addr a = 0; a < 16; ++a) {
        EXPECT_EQ(channel_.store().read(9000 + a).raw(),
                  int16_t(100 + a));
    }
}

TEST_F(ChannelTest, EnergyTracksBits)
{
    channel_.enqueue({false, 0, Fixed(), 0});
    channel_.enqueue({false, 1, Fixed(), 1});
    run(300);
    EXPECT_EQ(channel_.bitsTransferred(), 32u);
    EXPECT_NEAR(channel_.energyJoules(),
                32 * params_.energyPjPerBit * 1e-12, 1e-18);
}

TEST(ChannelRate, Ddr3SlowerThanReference)
{
    // DDR3 delivers 12.8 GB/s over 8-byte words = 1.6 Gwords/s, i.e.
    // 0.32 words per 5 GHz tick.
    DramParams ddr = DramParams::ddr3();
    EXPECT_NEAR(ddr.wordsPerTick(), 0.32, 1e-9);

    StatGroup root(nullptr, "t");
    MemoryChannel channel(ddr, &root, "ddr");
    Tick now = 0;
    size_t seen = 0;
    Addr issued = 0;
    Tick last = 0;
    while (now < 5000 && seen < 256) {
        while (issued < 256 && channel.canAccept())
            channel.enqueue({false, issued, Fixed(), issued}), ++issued;
        channel.tick(now++);
        while (!channel.responses().empty()) {
            ++seen;
            last = now;
            channel.responses().pop_front();
        }
    }
    ASSERT_EQ(seen, 256u);
    // 64 words at 0.32 words/tick = 200 ticks minimum transfer time.
    EXPECT_GE(last, 200u);
}

} // namespace
} // namespace neurocube
