/**
 * @file
 * Serving-subsystem tests: arrival generation (Poisson + trace
 * replay), the bounded request queue's admission accounting, the
 * dynamic-batching scheduler's dispatch decisions, and the
 * end-to-end ServingSimulator — including the determinism contract
 * that one (seed, arrival trace, network) triple always yields
 * bit-identical per-request latencies.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "common/stats.hh"
#include "serving/server.hh"
#include "serving/slo.hh"
#include "serving/spans.hh"

namespace neurocube
{
namespace
{

/** Small FC net so end-to-end serving runs stay fast. */
NetworkDesc
servingNet()
{
    NetworkDesc net;
    net.name = "serving-fc";
    LayerDesc fc;
    fc.type = LayerType::FullyConnected;
    fc.name = "fc";
    fc.inWidth = 64;
    fc.inHeight = 1;
    fc.inMaps = 1;
    fc.outMaps = 16;
    fc.activation = ActivationKind::Sigmoid;
    net.layers.push_back(fc);
    net.validate();
    return net;
}

Tensor
servingInput(const NetworkDesc &net, uint64_t seed)
{
    Tensor input(net.inputMaps(), net.inputHeight(),
                 net.inputWidth());
    Rng rng(seed);
    input.randomize(rng);
    return input;
}

// --- Arrival generation ---------------------------------------------

TEST(Arrival, PoissonIsDeterministicPerSeed)
{
    ArrivalSchedule a = poissonArrivals(200, 1000.0, 42);
    ArrivalSchedule b = poissonArrivals(200, 1000.0, 42);
    ArrivalSchedule c = poissonArrivals(200, 1000.0, 43);
    ASSERT_EQ(a.count(), 200u);
    EXPECT_EQ(a.ticks, b.ticks);
    EXPECT_NE(a.ticks, c.ticks);
}

TEST(Arrival, PoissonGapsMatchTheMean)
{
    // 4000 samples of an exponential with mean 500: the empirical
    // mean gap lands within a few percent of the target.
    ArrivalSchedule sched = poissonArrivals(4000, 500.0, 7);
    ASSERT_EQ(sched.count(), 4000u);
    for (size_t i = 1; i < sched.ticks.size(); ++i)
        ASSERT_GE(sched.ticks[i], sched.ticks[i - 1]);
    double mean_gap =
        double(sched.span()) / double(sched.count() - 1);
    EXPECT_NEAR(mean_gap, 500.0, 50.0);
    EXPECT_NEAR(sched.offeredPerSecond(1e9), 1e9 / mean_gap,
                1e9 / mean_gap * 0.01);
}

TEST(Arrival, TraceRoundTripsThroughTheTextFormat)
{
    ArrivalSchedule sched = poissonArrivals(50, 700.0, 9);
    std::ostringstream out;
    writeArrivalTrace(out, sched);
    std::istringstream in(out.str());
    ArrivalSchedule replay = parseArrivalTrace(in);
    EXPECT_EQ(replay.ticks, sched.ticks);
}

TEST(Arrival, TraceParserSkipsCommentsAndBlanks)
{
    std::istringstream in("# offered load: hand-crafted burst\n"
                          "\n"
                          "0\n"
                          "10\n"
                          "  10  \n"
                          "# mid-stream comment\n"
                          "250\n");
    ArrivalSchedule sched = parseArrivalTrace(in);
    ASSERT_EQ(sched.count(), 4u);
    EXPECT_EQ(sched.ticks, (std::vector<Tick>{0, 10, 10, 250}));
    EXPECT_EQ(sched.span(), 250u);
}

// --- Request queue ---------------------------------------------------

TEST(RequestQueue, AdmitsToDepthThenDrops)
{
    RequestQueue queue(2);
    EXPECT_TRUE(queue.offer({0, 10}, 10));
    EXPECT_TRUE(queue.offer({1, 20}, 20));
    EXPECT_FALSE(queue.offer({2, 30}, 30));
    EXPECT_FALSE(queue.offer({3, 40}, 40));
    EXPECT_EQ(queue.size(), 2u);
    EXPECT_EQ(queue.admitted(), 2u);
    EXPECT_EQ(queue.dropped(), 2u);

    // Dispatching frees a slot; admission resumes, FIFO order holds.
    Request head = queue.pop(50);
    EXPECT_EQ(head.id, 0u);
    EXPECT_EQ(head.arrival, 10u);
    EXPECT_TRUE(queue.offer({4, 60}, 60));
    EXPECT_EQ(queue.frontArrival(), 20u);
    EXPECT_EQ(queue.admitted(), 3u);
    EXPECT_EQ(queue.dropped(), 2u);
}

TEST(RequestQueue, DepthHistogramTracksTransitions)
{
    RequestQueue queue(4);
    queue.offer({0, 1}, 1);
    queue.offer({1, 2}, 2);
    queue.offer({2, 3}, 3);
    queue.pop(4);
    queue.pop(5);
    // Samples after each transition: 1, 2, 3, 2, 1.
    const Histogram &depth = queue.depthHistogram();
    EXPECT_EQ(depth.count(), 5u);
    EXPECT_EQ(depth.max(), 3u);
    EXPECT_EQ(depth.min(), 1u);
}

// --- Scheduler -------------------------------------------------------

TEST(Scheduler, FullBatchDispatchesImmediately)
{
    ServeSchedulerConfig config;
    config.maxLanes = 4;
    config.maxWaitTicks = 1000;
    BatchScheduler sched(config);
    EXPECT_EQ(sched.decide(4, 0, 0), 4u);
    EXPECT_EQ(sched.decide(9, 0, 0), 4u);
}

TEST(Scheduler, PartialBatchWaitsForTheDeadline)
{
    ServeSchedulerConfig config;
    config.maxLanes = 4;
    config.maxWaitTicks = 1000;
    BatchScheduler sched(config);
    // Oldest request arrived at 100: hold until 1100, then dispatch
    // the largest power of two the queue fills.
    EXPECT_EQ(sched.decide(3, 100, 100), 0u);
    EXPECT_EQ(sched.decide(3, 100, 1099), 0u);
    EXPECT_EQ(sched.decide(3, 100, 1100), 2u);
    EXPECT_EQ(sched.decide(1, 100, 1100), 1u);
    EXPECT_EQ(sched.decide(0, 0, 99999), 0u);
}

TEST(Scheduler, LaneCountIsLargestFillablePowerOfTwo)
{
    ServeSchedulerConfig config;
    config.maxLanes = 4;
    BatchScheduler sched(config);
    EXPECT_EQ(sched.laneCountFor(1), 1u);
    EXPECT_EQ(sched.laneCountFor(2), 2u);
    EXPECT_EQ(sched.laneCountFor(3), 2u);
    EXPECT_EQ(sched.laneCountFor(4), 4u);
    EXPECT_EQ(sched.laneCountFor(100), 4u);

    ServeSchedulerConfig narrow;
    narrow.maxLanes = 2;
    BatchScheduler two(narrow);
    EXPECT_EQ(two.laneCountFor(4), 2u);
}

// --- End-to-end serving ----------------------------------------------

TEST(Serving, AccountsEveryOfferedRequest)
{
    NetworkDesc net = servingNet();
    NetworkData data = NetworkData::randomized(net, 1);
    Tensor input = servingInput(net, 2);

    Neurocube cube((NeurocubeConfig()));
    cube.loadNetwork(net, data);

    ArrivalSchedule arrivals = poissonArrivals(16, 2000.0, 11);
    ServingConfig config;
    config.queueDepth = 8;
    config.scheduler.maxLanes = 4;
    config.scheduler.maxWaitTicks = 4000;
    ServingSimulator sim(cube, config);
    ServingResult result = sim.run(arrivals, input);

    ASSERT_EQ(result.requests.size(), 16u);
    EXPECT_EQ(result.served + result.dropped, 16u);
    EXPECT_GT(result.served, 0u);
    EXPECT_GT(result.batches, 0u);
    EXPECT_GT(result.makespan, 0u);
    EXPECT_GE(result.makespan, result.busyCycles);
    EXPECT_EQ(result.latency.count(), result.served);

    uint64_t served = 0, dropped = 0;
    for (const RequestRecord &r : result.requests) {
        if (r.dropped) {
            ++dropped;
            EXPECT_EQ(r.completion, 0u);
            EXPECT_EQ(r.lanes, 0u);
        } else {
            ++served;
            EXPECT_GE(r.dispatch, r.arrival);
            EXPECT_GT(r.completion, r.dispatch);
            EXPECT_GE(r.lanes, 1u);
            EXPECT_LE(r.lanes, 4u);
            EXPECT_EQ(r.latency(), r.completion - r.arrival);
        }
    }
    EXPECT_EQ(served, result.served);
    EXPECT_EQ(dropped, result.dropped);
}

TEST(Serving, OverloadDropsAtTheAdmissionBound)
{
    NetworkDesc net = servingNet();
    NetworkData data = NetworkData::randomized(net, 1);
    Tensor input = servingInput(net, 2);

    Neurocube cube((NeurocubeConfig()));
    cube.loadNetwork(net, data);

    // Everything arrives at t=0 against a queue of 4: exactly the
    // overflow is dropped, the rest is served in drain mode.
    ArrivalSchedule burst;
    burst.ticks.assign(12, 0);
    ServingConfig config;
    config.queueDepth = 4;
    config.scheduler.maxLanes = 4;
    ServingSimulator sim(cube, config);
    ServingResult result = sim.run(burst, input);

    EXPECT_EQ(result.served, 4u);
    EXPECT_EQ(result.dropped, 8u);
    EXPECT_EQ(result.batches, 1u);
    EXPECT_EQ(result.requests[0].lanes, 4u);
}

TEST(Serving, LoneRequestDispatchesAfterMaxWait)
{
    NetworkDesc net = servingNet();
    NetworkData data = NetworkData::randomized(net, 1);
    Tensor input = servingInput(net, 2);

    Neurocube cube((NeurocubeConfig()));
    cube.loadNetwork(net, data);

    ArrivalSchedule lone;
    lone.ticks = {100};
    ServingConfig config;
    config.scheduler.maxLanes = 4;
    config.scheduler.maxWaitTicks = 5000;
    ServingSimulator sim(cube, config);
    ServingResult result = sim.run(lone, input);

    ASSERT_EQ(result.served, 1u);
    const RequestRecord &r = result.requests[0];
    EXPECT_EQ(r.lanes, 1u);
    // Drain mode dispatches immediately once no further arrival can
    // fill the batch — the lone request never waits out the timer.
    EXPECT_EQ(r.dispatch, r.arrival);
}

TEST(Serving, SameSeedAndTraceYieldIdenticalLatencies)
{
    NetworkDesc net = servingNet();
    NetworkData data = NetworkData::randomized(net, 1);
    Tensor input = servingInput(net, 2);
    ArrivalSchedule arrivals = poissonArrivals(20, 1200.0, 77);

    ServingConfig config;
    config.queueDepth = 6;
    config.scheduler.maxLanes = 4;
    config.scheduler.maxWaitTicks = 3000;

    auto serve = [&]() {
        Neurocube cube((NeurocubeConfig()));
        cube.loadNetwork(net, data);
        ServingSimulator sim(cube, config);
        return sim.run(arrivals, input);
    };
    ServingResult a = serve();
    ServingResult b = serve();

    ASSERT_EQ(a.requests.size(), b.requests.size());
    for (size_t i = 0; i < a.requests.size(); ++i) {
        EXPECT_EQ(a.requests[i].dropped, b.requests[i].dropped)
            << "request " << i;
        EXPECT_EQ(a.requests[i].latency(), b.requests[i].latency())
            << "request " << i;
        EXPECT_EQ(a.requests[i].lanes, b.requests[i].lanes)
            << "request " << i;
    }
    EXPECT_EQ(a.makespan, b.makespan);
    EXPECT_EQ(a.batches, b.batches);

    // And the derived report is bit-identical too (the bench's
    // exact-compare gate relies on this).
    EXPECT_EQ(servingReportJson(buildServingReport(a)),
              servingReportJson(buildServingReport(b)));
}

TEST(Serving, ReportAggregatesMatchTheResult)
{
    NetworkDesc net = servingNet();
    NetworkData data = NetworkData::randomized(net, 1);
    Tensor input = servingInput(net, 2);

    Neurocube cube((NeurocubeConfig()));
    cube.loadNetwork(net, data);

    ArrivalSchedule arrivals = poissonArrivals(12, 1500.0, 5);
    ServingConfig config;
    config.queueDepth = 6;
    ServingSimulator sim(cube, config);
    ServingResult result = sim.run(arrivals, input);
    ServingReport report = buildServingReport(result);

    EXPECT_EQ(report.offered, 12u);
    EXPECT_EQ(report.served, result.served);
    EXPECT_EQ(report.dropped, result.dropped);
    EXPECT_DOUBLE_EQ(report.dropRate,
                     double(result.dropped) / 12.0);
    EXPECT_GE(report.p99Ticks, report.p50Ticks);
    EXPECT_GE(report.p999Ticks, report.p99Ticks);
    EXPECT_GT(report.utilization, 0.0);
    EXPECT_LE(report.utilization, 1.0);
    EXPECT_EQ(report.makespan, result.makespan);

    std::string json = servingReportJson(report);
    EXPECT_NE(json.find("\"total_cycles\": "), std::string::npos);
    EXPECT_NE(json.find("\"served\": "), std::string::npos);
    EXPECT_NE(json.find("\"p999_ticks\": "), std::string::npos);
}

// --- Per-request spans ------------------------------------------------

/** One standard serving run with mixed served/dropped requests. */
ServingResult
spansRun(ServingConfig config = {})
{
    NetworkDesc net = servingNet();
    NetworkData data = NetworkData::randomized(net, 1);
    Tensor input = servingInput(net, 2);
    Neurocube cube((NeurocubeConfig()));
    cube.loadNetwork(net, data);
    ArrivalSchedule arrivals = poissonArrivals(24, 900.0, 21);
    config.queueDepth = 4;
    config.scheduler.maxLanes = 4;
    config.scheduler.maxWaitTicks = 2500;
    ServingSimulator sim(cube, config);
    return sim.run(arrivals, input);
}

TEST(Spans, RoundTripThroughTheJsonlFormat)
{
    ServingResult result = spansRun();
    ASSERT_GT(result.served, 0u);

    std::ostringstream out;
    writeRequestSpans(out, result);
    std::istringstream in(out.str());
    std::vector<RequestRecord> replay = readRequestSpans(in);

    ASSERT_EQ(replay.size(), result.requests.size());
    for (size_t i = 0; i < replay.size(); ++i) {
        const RequestRecord &a = result.requests[i];
        const RequestRecord &b = replay[i];
        EXPECT_EQ(a.id, b.id) << "request " << i;
        EXPECT_EQ(a.arrival, b.arrival) << "request " << i;
        EXPECT_EQ(a.admit, b.admit) << "request " << i;
        EXPECT_EQ(a.dispatch, b.dispatch) << "request " << i;
        EXPECT_EQ(a.completion, b.completion) << "request " << i;
        EXPECT_EQ(a.batch, b.batch) << "request " << i;
        EXPECT_EQ(a.lanes, b.lanes) << "request " << i;
        EXPECT_EQ(a.dropped, b.dropped) << "request " << i;
        // Derived quantities re-derive identically from the parsed
        // timestamps.
        EXPECT_EQ(a.latency(), b.latency()) << "request " << i;
        EXPECT_EQ(a.queueTicks(), b.queueTicks()) << "request " << i;
        EXPECT_EQ(a.serviceTicks(), b.serviceTicks())
            << "request " << i;
    }
}

TEST(Spans, LifecycleTimestampsAreOrdered)
{
    ServingResult result = spansRun();
    uint64_t last_batch = 0;
    for (const RequestRecord &r : result.requests) {
        if (r.dropped) {
            EXPECT_EQ(r.admit, 0u);
            EXPECT_EQ(r.batch, 0u);
            continue;
        }
        // enqueue == admit (admission decides at the arrival tick),
        // then dispatch, then completion; batch ordinals are 1-based
        // and non-decreasing in arrival order.
        EXPECT_EQ(r.admit, r.arrival);
        EXPECT_GE(r.dispatch, r.admit);
        EXPECT_GT(r.completion, r.dispatch);
        EXPECT_GE(r.batch, 1u);
        EXPECT_GE(r.batch, last_batch);
        last_batch = r.batch;
        EXPECT_EQ(r.latency(), r.queueTicks() + r.serviceTicks());
    }
}

TEST(Spans, FileExportHonorsServingConfig)
{
    const std::string path = "test_serving_spans.jsonl";
    ServingConfig config;
    config.spansJsonlPath = path;
    ServingResult result = spansRun(config);

    std::vector<RequestRecord> replay = readRequestSpansJsonl(path);
    ASSERT_EQ(replay.size(), result.requests.size());
    for (size_t i = 0; i < replay.size(); ++i) {
        EXPECT_EQ(replay[i].id, result.requests[i].id);
        EXPECT_EQ(replay[i].completion, result.requests[i].completion);
        EXPECT_EQ(replay[i].dropped, result.requests[i].dropped);
    }
    std::remove(path.c_str());
}

TEST(Spans, PercentilesRecomputedFromSpansMatchTheReport)
{
    // The spans file and the SLO report must tell the same story: a
    // latency histogram rebuilt from the exported spans yields the
    // exact p50/p99/p999 the report carries.
    ServingResult result = spansRun();
    ServingReport report = buildServingReport(result);

    std::ostringstream out;
    writeRequestSpans(out, result);
    std::istringstream in(out.str());
    std::vector<RequestRecord> replay = readRequestSpans(in);

    Histogram latency(nullptr, "latency", "rebuilt from spans");
    for (const RequestRecord &r : replay) {
        if (!r.dropped)
            latency.sample(r.latency());
    }
    ASSERT_EQ(latency.count(), report.served);
    EXPECT_DOUBLE_EQ(latency.p50(), report.p50Ticks);
    EXPECT_DOUBLE_EQ(latency.p99(), report.p99Ticks);
    EXPECT_DOUBLE_EQ(latency.p999(), report.p999Ticks);
    EXPECT_DOUBLE_EQ(latency.mean(), report.meanTicks);
    EXPECT_EQ(latency.max(), report.maxTicks);
}

} // namespace
} // namespace neurocube
