/**
 * @file
 * Tests for the multi-cube scaling model (the paper's Section IX
 * extension).
 */

#include <gtest/gtest.h>

#include "core/multi_cube.hh"

namespace neurocube
{
namespace
{

NetworkDesc
bigScene()
{
    return sceneLabelingNetwork(640, 480);
}

TEST(MultiCube, OneCubeMatchesSingleCubeModel)
{
    NetworkDesc net = bigScene();
    MultiCubeConfig config;
    config.numCubes = 1;
    MultiCubeEstimate est = multiCubeNetworkEstimate(net, config);
    EXPECT_EQ(est.exchangeCycles, 0u);

    Tick single = 0;
    for (const LayerDesc &layer : net.layers) {
        single +=
            analyticLayerEstimate(layer, config.cube).cycles;
    }
    EXPECT_EQ(est.computeCycles, single);
    EXPECT_EQ(est.ops, net.totalOps());
}

TEST(MultiCube, MoreCubesAreFaster)
{
    NetworkDesc net = bigScene();
    Tick prev = 0;
    for (unsigned cubes : {1u, 2u, 4u, 8u}) {
        MultiCubeConfig config;
        config.numCubes = cubes;
        Tick cycles = multiCubeNetworkEstimate(net, config)
                          .totalCycles();
        if (prev) {
            EXPECT_LT(cycles, prev) << cubes << " cubes";
        }
        prev = cycles;
    }
}

TEST(MultiCube, EfficiencyBoundedAndDecreasing)
{
    NetworkDesc net = bigScene();
    double prev = 1.1;
    for (unsigned cubes : {2u, 4u, 16u}) {
        MultiCubeConfig config;
        config.numCubes = cubes;
        double eff = multiCubeEfficiency(net, config);
        EXPECT_GT(eff, 0.2) << cubes;
        EXPECT_LT(eff, 1.05) << cubes;
        EXPECT_LE(eff, prev + 0.05) << cubes;
        prev = eff;
    }
}

TEST(MultiCube, LargerImagesScaleBetter)
{
    // Halos are thinner relative to bigger tiles.
    MultiCubeConfig config;
    config.numCubes = 16;
    double small =
        multiCubeEfficiency(sceneLabelingNetwork(160, 120), config);
    double large =
        multiCubeEfficiency(sceneLabelingNetwork(1280, 960), config);
    EXPECT_GT(large, small);
}

TEST(MultiCube, SlowLinksHurt)
{
    NetworkDesc net = bigScene();
    MultiCubeConfig fast;
    fast.numCubes = 8;
    MultiCubeConfig slow = fast;
    slow.linkBandwidthGBps = 1.0;
    EXPECT_GT(multiCubeNetworkEstimate(net, slow).totalCycles(),
              multiCubeNetworkEstimate(net, fast).totalCycles());
}

} // namespace
} // namespace neurocube
