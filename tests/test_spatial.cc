/**
 * @file
 * Spatial observability tests: the SpatialRegistry counter plumbing,
 * the conservation invariants tying the per-instance heatmap counters
 * to the aggregate statistics the rest of the stack already reports,
 * the observational-only guarantee (cycles identical with spatial
 * accounting on and off), roofline attribution sanity, and the
 * byte-determinism of the spatialJson / HTML report exports.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/neurocube.hh"
#include "nn/network.hh"
#include "trace/report.hh"
#include "trace/spatial.hh"

namespace neurocube
{
namespace
{

/** Conv + FC pipeline: DRAM traffic, lateral NoC traffic, MACs. */
NetworkDesc
convFcNet()
{
    NetworkDesc net;
    net.name = "spatial-conv-fc";
    LayerDesc conv;
    conv.type = LayerType::Conv2D;
    conv.name = "conv";
    conv.inWidth = 20;
    conv.inHeight = 16;
    conv.inMaps = 2;
    conv.outMaps = 4;
    conv.kernel = 3;
    conv.channelwise = true;
    conv.activation = ActivationKind::Tanh;
    net.layers.push_back(conv);

    LayerDesc fc = nextLayerTemplate(conv);
    fc.type = LayerType::FullyConnected;
    fc.name = "fc";
    fc.outMaps = 32;
    fc.activation = ActivationKind::Sigmoid;
    net.layers.push_back(fc);
    net.validate();
    return net;
}

Tensor
netInput(const NetworkDesc &net, uint64_t seed)
{
    Tensor input(net.inputMaps(), net.inputHeight(), net.inputWidth());
    Rng rng(seed);
    input.randomize(rng);
    return input;
}

NeurocubeConfig
tracedConfig()
{
    NeurocubeConfig config;
    config.trace.enabled = true;
    return config;
}

TEST(SpatialRegistryTest, CountsSnapshotsAndDeltas)
{
    SpatialRegistry reg;
    reg.configure(4, 4, 4);
    reg.configureLinks(2, {{0, 1}, {1, 0}});
    reg.add(SpatialCounter::PeMac, 0, 10);
    reg.add(SpatialCounter::PeMac, 0, 5);
    reg.add(SpatialCounter::VaultByte, 3, 256);
    reg.add(SpatialCounter::LinkFlit, 1, 7);
    // Out-of-range instances are dropped, never UB.
    reg.add(SpatialCounter::PeMac, 4, 1000);
    reg.add(SpatialCounter::LinkFlit, 2, 1000);

    SpatialSnapshot before = reg.snapshot();
    EXPECT_EQ(before.totalPeMacOps(), 15u);
    EXPECT_EQ(before.totalVaultBytes(), 256u);
    EXPECT_EQ(before.totalLinkFlits(), 7u);
    EXPECT_TRUE(before.valid());

    reg.add(SpatialCounter::PeMac, 1, 8);
    SpatialSnapshot delta = reg.snapshot().delta(before);
    EXPECT_EQ(delta.totalPeMacOps(), 8u);
    EXPECT_EQ(delta.totalVaultBytes(), 0u);

    EXPECT_FALSE(SpatialSnapshot{}.valid());
}

TEST(SpatialRegistryTest, FilterToNodesPartitionsSumBack)
{
    SpatialRegistry reg;
    reg.configure(4, 4, 4, {0, 1, 2, 3});
    // Intra-partition links only: {0,1} and {2,3}.
    reg.configureLinks(2, {{0, 1}, {2, 3}});
    for (unsigned i = 0; i < 4; ++i) {
        reg.add(SpatialCounter::PeMac, i, 10 + i);
        reg.add(SpatialCounter::VaultByte, i, 100 + i);
    }
    reg.add(SpatialCounter::LinkFlit, 0, 5);
    reg.add(SpatialCounter::LinkFlit, 1, 9);

    SpatialSnapshot whole = reg.snapshot();
    SpatialSnapshot lo = filterSnapshotToNodes(reg.topology(), whole,
                                               {0, 1});
    SpatialSnapshot hi = filterSnapshotToNodes(reg.topology(), whole,
                                               {2, 3});
    // Sizes are kept, entries outside the set are zeroed.
    ASSERT_EQ(lo.peMacOps.size(), whole.peMacOps.size());
    EXPECT_EQ(lo.totalPeMacOps(), 21u);
    EXPECT_EQ(hi.totalPeMacOps(), 25u);
    EXPECT_EQ(lo.totalLinkFlits(), 5u);
    EXPECT_EQ(hi.totalLinkFlits(), 9u);

    SpatialSnapshot sum = lo;
    sum += hi;
    EXPECT_EQ(sum.totalPeMacOps(), whole.totalPeMacOps());
    EXPECT_EQ(sum.totalVaultBytes(), whole.totalVaultBytes());
    EXPECT_EQ(sum.totalLinkFlits(), whole.totalLinkFlits());
}

#if NEUROCUBE_TRACE_ENABLED

TEST(SpatialConservationTest, CountersMatchAggregateStatistics)
{
    NetworkDesc net = convFcNet();
    NeurocubeConfig config = tracedConfig();
    Neurocube cube(config);
    cube.loadNetwork(net, NetworkData::randomized(net, 3));
    cube.setInput(netInput(net, 4));
    RunResult run = cube.runForward();

    SpatialSnapshot snap = cube.spatialSnapshot();
    ASSERT_TRUE(snap.valid());

    // Per-link flits sum to the fabric's aggregate flit counter.
    EXPECT_EQ(snap.totalLinkFlits(), cube.fabric().linkFlits());

    // Per-node injection counters sum to the fabric's aggregates.
    uint64_t lateral = 0, local = 0;
    for (uint64_t v : snap.nodeLateral)
        lateral += v;
    for (uint64_t v : snap.nodeLocal)
        local += v;
    EXPECT_EQ(lateral, cube.fabric().lateralPackets());
    EXPECT_EQ(local, cube.fabric().localPackets());

    // Per-vault bytes are the same traffic the energy counters price.
    EnergyCounts counts = run.energyCounts();
    ASSERT_TRUE(counts.valid);
    EXPECT_EQ(snap.totalVaultBytes() * 8,
              counts[EnergyEventKind::DramBit]);

    // Per-PE MAC occupancy counts every MAC exactly once: the energy
    // registry's MacOp count and the op accounting (2 ops per MAC)
    // agree with it.
    EXPECT_EQ(snap.totalPeMacOps(), counts[EnergyEventKind::MacOp]);
    EXPECT_EQ(snap.totalPeMacOps() * 2, run.totalOps());

    // The per-layer snapshots sum to the whole-run snapshot.
    SpatialSnapshot layers = run.spatialSnapshot();
    EXPECT_EQ(layers.totalLinkFlits(), snap.totalLinkFlits());
    EXPECT_EQ(layers.totalVaultBytes(), snap.totalVaultBytes());
    EXPECT_EQ(layers.totalPeMacOps(), snap.totalPeMacOps());
}

#else // !NEUROCUBE_TRACE_ENABLED

/** Notrace builds: the macro counts nothing and runs stay invalid. */
TEST(SpatialConservationTest, NotraceRunsCarryNoCounts)
{
    SpatialRegistry reg;
    reg.configure(1, 1, 1);
    spatial::setActiveRegistry(&reg);
    NC_SPATIAL_EVENT(SpatialCounter::PeMac, 0, 5);
    spatial::setActiveRegistry(nullptr);
    EXPECT_EQ(reg.snapshot().totalPeMacOps(), 0u);
}

#endif // NEUROCUBE_TRACE_ENABLED

TEST(SpatialConservationTest, ObservationalOnly)
{
    NetworkDesc net = convFcNet();

    auto cycles = [&net](bool spatial) {
        NeurocubeConfig config;
        config.trace.enabled = true;
        config.trace.spatial = spatial;
        Neurocube cube(config);
        cube.loadNetwork(net, NetworkData::randomized(net, 3));
        cube.setInput(netInput(net, 4));
        return cube.runForward().totalCycles();
    };
    EXPECT_EQ(cycles(true), cycles(false));

    // And with tracing off entirely, the registry is absent but the
    // cycle count still matches.
    NeurocubeConfig off;
    Neurocube cube(off);
    cube.loadNetwork(net, NetworkData::randomized(net, 3));
    cube.setInput(netInput(net, 4));
    EXPECT_EQ(cube.spatialRegistry(), nullptr);
    EXPECT_EQ(cube.runForward().totalCycles(), cycles(true));
    EXPECT_FALSE(cube.spatialSnapshot().valid());
}

TEST(SpatialRooflineTest, LayerPointsAreUnderTheCeilings)
{
    NetworkDesc net = convFcNet();
    NeurocubeConfig config = tracedConfig();
    Neurocube cube(config);
    cube.loadNetwork(net, NetworkData::randomized(net, 3));
    cube.setInput(netInput(net, 4));
    RunResult run = cube.runForward();

    ASSERT_EQ(run.layers.size(), 2u);
    for (const LayerResult &l : run.layers) {
        const RooflinePoint &p = l.roofline;
        ASSERT_TRUE(p.valid) << l.name;
        EXPECT_GT(p.macPerCycle, 0.0) << l.name;
        EXPECT_LE(p.macPerCycle, p.macCeiling * 1.0001) << l.name;
        EXPECT_GT(p.bytesPerCycle, 0.0) << l.name;
        EXPECT_GT(p.intensity(), 0.0) << l.name;
        EXPECT_TRUE(p.bound == "dram" || p.bound == "eject"
                    || p.bound == "noc" || p.bound == "mac")
            << l.name << ": " << p.bound;
    }
}

TEST(SpatialJsonTest, DeterministicAndGateSafe)
{
    NetworkDesc net = convFcNet();

    auto exportJson = [&net]() {
        Neurocube cube(tracedConfig());
        cube.loadNetwork(net, NetworkData::randomized(net, 3));
        cube.setInput(netInput(net, 4));
        return cube.runForward().spatialJson();
    };
    std::string a = exportJson();
    std::string b = exportJson();
    EXPECT_EQ(a, b);

    EXPECT_NE(a.find("\"aggregate\""), std::string::npos);
    EXPECT_NE(a.find("\"layers\""), std::string::npos);
    EXPECT_NE(a.find("\"links\""), std::string::npos);
    EXPECT_NE(a.find("\"roofline\""), std::string::npos);

    // scripts/bench.sh greps these key names for its baseline gates;
    // the spatial document must never introduce them.
    EXPECT_EQ(a.find("total_cycles"), std::string::npos);
    EXPECT_EQ(a.find("\"served\""), std::string::npos);
    EXPECT_EQ(a.find("wall_ms"), std::string::npos);
}

TEST(ReportTest, RendersSelfContainedDeterministicHtml)
{
    NetworkDesc net = convFcNet();
    Neurocube cube(tracedConfig());
    cube.loadNetwork(net, NetworkData::randomized(net, 3));
    cube.setInput(netInput(net, 4));
    RunResult run = cube.runForward();

    auto render = [&run]() {
        ReportRun section;
        section.name = "unit";
        section.metricsJson = run.metricsJson();
        section.energyJson = run.energyJson();
        section.spatialJson = run.spatialJson();
        return renderRunReport("spatial unit report", {section});
    };
    std::string html = render();
    EXPECT_EQ(html, render());

    EXPECT_EQ(html.rfind("<!DOCTYPE html>", 0), 0u);
    EXPECT_NE(html.find("</html>"), std::string::npos);
    EXPECT_NE(html.find("id=\"nc-data\""), std::string::npos);
    EXPECT_NE(html.find("spatial unit report"), std::string::npos);
    // Self-contained: no external fetches of any kind (the SVG
    // namespace URI in createElementNS is an identifier, not a URL).
    EXPECT_EQ(html.find("src="), std::string::npos);
    EXPECT_EQ(html.find("<link"), std::string::npos);
    EXPECT_EQ(html.find("@import"), std::string::npos);
    EXPECT_EQ(html.find("fetch("), std::string::npos);
    EXPECT_EQ(html.find("XMLHttpRequest"), std::string::npos);
}

TEST(ReportTest, EscapesHostileNamesAndTitles)
{
    ReportRun section;
    section.name = "a\"b\\c</script>d";
    std::string html = renderRunReport("<title> & co", {section});
    // The embedded JSON block still parses (no premature close tag),
    // and the title's markup is escaped.
    EXPECT_EQ(html.find("</script>d"), std::string::npos);
    EXPECT_NE(html.find("&lt;title&gt; &amp; co"), std::string::npos);

    // Empty documents render as null sections, not broken JSON.
    EXPECT_NE(html.find("\"manifest\":null"), std::string::npos);
    EXPECT_NE(html.find("\"spatial\":null"), std::string::npos);
}

} // namespace
} // namespace neurocube
