/**
 * @file
 * Unit tests for the vault mapping policies and footprint model.
 */

#include <gtest/gtest.h>

#include "nn/mapping.hh"
#include "nn/network.hh"

namespace neurocube
{
namespace
{

LayerDesc
conv7(unsigned w = 320, unsigned h = 240)
{
    LayerDesc conv;
    conv.type = LayerType::Conv2D;
    conv.name = "conv";
    conv.inWidth = w;
    conv.inHeight = h;
    conv.inMaps = 1;
    conv.outMaps = 1;
    conv.kernel = 7;
    return conv;
}

TEST(Mapping, GridShapeSquareForImages)
{
    unsigned gw, gh;
    tileGridShape(16, {0, 0, 320, 240}, gw, gh);
    EXPECT_EQ(gw, 4u);
    EXPECT_EQ(gh, 4u);
    tileGridShape(2, {0, 0, 320, 240}, gw, gh);
    EXPECT_EQ(gw * gh, 2u);
}

TEST(Mapping, GridShapeLinearForVectors)
{
    unsigned gw, gh;
    tileGridShape(16, {0, 0, 1000, 1}, gw, gh);
    EXPECT_EQ(gw, 16u);
    EXPECT_EQ(gh, 1u);
}

TEST(Mapping, InputNeededGrowsByKernel)
{
    Rect out_tile{10, 10, 20, 20};
    Rect needed = inputNeeded(conv7(), out_tile);
    EXPECT_EQ(needed.x0, 10);
    EXPECT_EQ(needed.w, 26); // 20 + 7 - 1
    EXPECT_EQ(needed.h, 26);
}

TEST(Mapping, PoolingHaloNegligible)
{
    // A 2x2/stride-2 pooling window never overlaps between outputs;
    // only tile-boundary misalignment (in/out grids of a non-
    // divisible image) costs a thin duplicated band.
    LayerDesc pool;
    pool.type = LayerType::Pool;
    pool.inWidth = 314;
    pool.inHeight = 234;
    pool.inMaps = 1;
    pool.outMaps = 1;
    pool.kernel = 2;
    pool.stride = 2;
    MappingPolicy dup;
    LayerFootprint fp = layerFootprint(pool, dup, 16);
    EXPECT_LT(fp.duplicationBytes, fp.inputBytes / 20);
    // Kernel copies: 4 weights duplicated into 15 extra vaults.
    EXPECT_EQ(fp.weightCopyBytes, 2u * 4u * 15u);
}

TEST(Mapping, DuplicationStoresHalo)
{
    MappingPolicy dup;
    dup.duplicateConvHalo = true;
    LayerMapping m = buildLayerMapping(conv7(), dup, 16);
    // An interior vault must store its tile plus a 6-pixel halo
    // (clipped at image borders).
    Rect owned = m.inTiles.tile(5);
    Rect stored = m.storedInput[5];
    EXPECT_GT(stored.count(), owned.count());
    EXPECT_TRUE(m.duplicated);
}

TEST(Mapping, NoDuplicationStoresOwnedOnly)
{
    MappingPolicy nodup;
    nodup.duplicateConvHalo = false;
    LayerMapping m = buildLayerMapping(conv7(), nodup, 16);
    for (unsigned v = 0; v < 16; ++v)
        EXPECT_TRUE(m.storedInput[v] == m.inTiles.tile(v));
    EXPECT_FALSE(m.duplicated);
}

TEST(Mapping, HaloOverheadGrowsWithKernel)
{
    MappingPolicy dup;
    uint64_t prev = 0;
    for (unsigned k : {3u, 5u, 7u, 9u, 11u}) {
        LayerDesc conv = conv7();
        conv.kernel = k;
        LayerFootprint fp = layerFootprint(conv, dup, 16);
        EXPECT_GT(fp.duplicationBytes, prev)
            << "kernel " << k << " should cost more halo";
        prev = fp.duplicationBytes;
    }
}

TEST(Mapping, FcDuplicationCopiesInput)
{
    LayerDesc fc;
    fc.type = LayerType::FullyConnected;
    fc.inWidth = 1024;
    fc.inHeight = 1;
    fc.inMaps = 1;
    fc.outMaps = 256;

    MappingPolicy dup;
    LayerFootprint with = layerFootprint(fc, dup, 16);
    MappingPolicy nodup;
    nodup.duplicateFcInput = false;
    LayerFootprint without = layerFootprint(fc, nodup, 16);

    // Duplication stores 15 extra copies of the input vector.
    EXPECT_EQ(with.duplicationBytes - without.duplicationBytes,
              15u * 1024u * 2u);
}

TEST(Mapping, FcWeightsPartitionedEitherWay)
{
    LayerDesc fc;
    fc.type = LayerType::FullyConnected;
    fc.inWidth = 512;
    fc.inHeight = 1;
    fc.inMaps = 1;
    fc.outMaps = 128;

    for (bool dup : {true, false}) {
        MappingPolicy policy;
        policy.duplicateFcInput = dup;
        LayerMapping m = buildLayerMapping(fc, policy, 16);
        uint64_t total = 0;
        for (unsigned v = 0; v < 16; ++v)
            total += m.weightElements[v];
        EXPECT_EQ(total, fc.weightCount()) << "dup=" << dup;
    }
}

TEST(Mapping, FcOverheadFractionShrinksWithOutputs)
{
    // Fig. 14d: as the weight matrix grows, the duplicated input
    // becomes a smaller fraction of the total memory.
    MappingPolicy dup;
    double prev_fraction = 1.0;
    for (unsigned hidden : {256u, 1024u, 4096u}) {
        LayerDesc fc;
        fc.type = LayerType::FullyConnected;
        fc.inWidth = 4096;
        fc.inHeight = 1;
        fc.inMaps = 1;
        fc.outMaps = hidden;
        LayerFootprint fp = layerFootprint(fc, dup, 16);
        double fraction =
            double(fp.duplicationBytes) / double(fp.totalBytes());
        EXPECT_LT(fraction, prev_fraction);
        prev_fraction = fraction;
    }
}

TEST(Mapping, NetworkFootprintMatchesFig1Scale)
{
    // Fig. 1: scene labeling at 320x240 needs tens of MB — beyond
    // on-chip SRAM/eDRAM budgets but trivial for the HMC.
    NetworkDesc net = sceneLabelingNetwork();
    uint64_t bytes = networkUniqueBytes(net.layers);
    EXPECT_GT(bytes, 2ull << 20);
    EXPECT_LT(bytes, 512ull << 20);

    // Memory grows with image size.
    uint64_t small =
        networkUniqueBytes(sceneLabelingNetwork(64, 64).layers);
    EXPECT_LT(small, bytes);
}

TEST(Mapping, LanePartitionTilesTheMesh)
{
    // 1 lane = whole 4x4 mesh; 2 lanes = 4x2 halves; 4 lanes = 2x2
    // quadrants. Lanes must partition the node set exactly and each
    // lane must be a contiguous axis-aligned rectangle (the property
    // that makes X-Y routing stay inside the lane).
    for (unsigned lanes : {1u, 2u, 4u}) {
        auto partition = buildLanePartition(16, lanes);
        ASSERT_EQ(partition.size(), lanes);
        std::vector<bool> covered(16, false);
        for (const LaneSpec &lane : partition) {
            EXPECT_EQ(lane.nodes.size(), 16 / lanes);
            EXPECT_EQ(lane.meshW * lane.meshH, lane.nodes.size());
            // Row-major rectangle: node (y, x) of the lane sits at
            // origin + y * 4 + x in the global mesh.
            unsigned origin = lane.nodes.front();
            for (unsigned y = 0; y < lane.meshH; ++y) {
                for (unsigned x = 0; x < lane.meshW; ++x) {
                    unsigned node = lane.nodes[y * lane.meshW + x];
                    EXPECT_EQ(node, origin + y * 4 + x);
                    ASSERT_LT(node, 16u);
                    EXPECT_FALSE(covered[node]);
                    covered[node] = true;
                }
            }
        }
        for (unsigned n = 0; n < 16; ++n)
            EXPECT_TRUE(covered[n]) << "node " << n << " unassigned";
    }

    // 2 lanes on a 4x4 mesh split into two 4-wide, 2-tall halves.
    auto halves = buildLanePartition(16, 2);
    EXPECT_EQ(halves[0].meshW, 4u);
    EXPECT_EQ(halves[0].meshH, 2u);
    EXPECT_EQ(halves[1].nodes.front(), 8u);
}

TEST(Mapping, TrainingDuplicationOverheadBand)
{
    // Fig. 13d reports ~48% duplication overhead for training at
    // 64x64 with data duplication. Check the input-duplication
    // overhead lands in a comparable band.
    NetworkDesc net = sceneLabelingNetwork(64, 64);
    MappingPolicy dup;
    uint64_t unique = networkUniqueBytes(net.layers);
    uint64_t extra = networkDuplicationBytes(net.layers, dup, 16);
    double overhead = double(extra) / double(unique);
    EXPECT_GT(overhead, 0.10);
    EXPECT_LT(overhead, 1.00);
}

} // namespace
} // namespace neurocube
