/**
 * @file
 * Differential fuzz harness for the simulation engines: every
 * SimEngine must produce bit-identical results. For seeded random
 * networks (layer shapes, kernel geometry, activation mix), machine
 * configurations (DRAM technology, NoC buffer/link widths, mapping
 * knobs) and batch lane counts, the legacy tick-every-cycle loop,
 * the event-driven wake-list scheduler and the threaded per-lane
 * scheduler are run on the same workload and compared on:
 *
 *   - final cycle counts (total and per layer),
 *   - computed outputs (every layer tensor, bit for bit),
 *   - stall-class attribution totals (the full metrics JSON),
 *   - energy event counts (every EnergyEventKind counter).
 *
 * The seed count defaults to 100 full-profile iterations; sanitizer
 * builds (asan/tsan) and CI quick runs drop to a handful via
 * NEUROCUBE_FUZZ_SEEDS so the suite stays inside its time budget.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/neurocube.hh"
#include "core/recurrent.hh"
#include "core/training.hh"

namespace neurocube
{
namespace
{

/** Seed count: env override, else fewer under sanitizers. */
unsigned
fuzzSeedCount()
{
    const char *env = std::getenv("NEUROCUBE_FUZZ_SEEDS");
    if (env != nullptr && env[0] != '\0') {
        long n = std::atol(env);
        return n > 0 ? unsigned(n) : 1u;
    }
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
    return 8;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
    return 8;
#else
    return 100;
#endif
#else
    return 100;
#endif
}

/** Random small network: 1-3 chained conv/FC layers. */
NetworkDesc
randomNet(Rng &rng)
{
    NetworkDesc net;
    net.name = "fuzz-net";

    LayerDesc first;
    first.type = LayerType::Conv2D;
    first.name = "l0";
    first.inWidth = 8 + unsigned(rng.below(13));  // 8..20
    first.inHeight = 6 + unsigned(rng.below(11)); // 6..16
    first.inMaps = 1 + unsigned(rng.below(3));
    first.outMaps = 1 + unsigned(rng.below(4));
    first.kernel = rng.below(2) ? 5 : 3;
    first.channelwise = rng.below(2) != 0;
    if (first.channelwise)
        first.outMaps = first.inMaps;
    first.activation =
        rng.below(2) ? ActivationKind::Tanh : ActivationKind::Sigmoid;
    net.layers.push_back(first);

    const unsigned extra = unsigned(rng.below(3)); // 0..2 more layers
    for (unsigned i = 0; i < extra; ++i) {
        LayerDesc next = nextLayerTemplate(net.layers.back());
        next.name = "l" + std::to_string(i + 1);
        if (rng.below(2) != 0 && next.inWidth >= 3
            && next.inHeight >= 3) {
            next.type = LayerType::Conv2D;
            next.kernel = 3;
            next.channelwise = rng.below(2) != 0;
            next.outMaps = next.channelwise
                               ? next.inMaps
                               : 1 + unsigned(rng.below(4));
        } else {
            next.type = LayerType::FullyConnected;
            next.outMaps = 8 + unsigned(rng.below(57)); // 8..64
        }
        next.activation = rng.below(2) ? ActivationKind::Tanh
                                       : ActivationKind::Sigmoid;
        net.layers.push_back(next);
    }
    net.validate();
    return net;
}

/** Random machine: DRAM technology, NoC widths, mapping knobs. */
NeurocubeConfig
randomConfig(Rng &rng, bool need_identity_channels)
{
    NeurocubeConfig config;
    if (!need_identity_channels) {
        // Batch lanes need one channel per node (HMC); single runs
        // also fuzz the scarce-channel technologies.
        switch (rng.below(3)) {
        case 0:
            config.dram = DramParams::hmcInternal();
            break;
        case 1:
            config.dram = DramParams::ddr3();
            break;
        default:
            config.dram = DramParams::hbm();
            break;
        }
    }
    config.noc.bufferDepth = 4u << rng.below(3);    // 4, 8, 16
    config.noc.linkWidth = 1 + unsigned(rng.below(2));
    config.noc.deliveryDepth = 16u << rng.below(2); // 16, 32
    config.splitFullConvPasses = rng.below(4) == 0;
    config.mapping.weightsInPeMemory = rng.below(2) != 0;
#if NEUROCUBE_TRACE_ENABLED
    // Metrics + energy accounting on, no event sinks: the invariants
    // under test include the stall and energy counters, and a
    // sink-less session leaves every engine eligible.
    config.trace.enabled = true;
    config.trace.metrics = true;
    config.trace.energy = true;
#endif
    return config;
}

/** Everything one engine run produces that must be engine-invariant. */
struct RunSnapshot
{
    Tick totalCycles = 0;
    std::vector<Tick> layerCycles;
    std::vector<Tensor> outputs;
    std::string metricsJson;
    std::string spatialJson;
    EnergyCounts energy;
};

RunSnapshot
snapshotForward(const NeurocubeConfig &base, SimEngine engine,
                const NetworkDesc &net, const NetworkData &data,
                const Tensor &input)
{
    NeurocubeConfig config = base;
    config.engine = engine;
    Neurocube cube(config);
    cube.loadNetwork(net, data);
    cube.setInput(input);
    RunResult run = cube.runForward();

    RunSnapshot snap;
    snap.totalCycles = run.totalCycles();
    for (const LayerResult &l : run.layers)
        snap.layerCycles.push_back(l.cycles);
    for (size_t i = 0; i < net.layers.size(); ++i)
        snap.outputs.push_back(cube.layerOutput(i));
    snap.metricsJson = run.metricsJson();
    snap.spatialJson = run.spatialJson();
    snap.energy = run.energyCounts();
    return snap;
}

::testing::AssertionResult
tensorsEqual(const Tensor &a, const Tensor &b)
{
    if (a.maps() != b.maps() || a.height() != b.height()
        || a.width() != b.width())
        return ::testing::AssertionFailure() << "shape mismatch";
    for (unsigned m = 0; m < a.maps(); ++m) {
        for (unsigned y = 0; y < a.height(); ++y) {
            for (unsigned x = 0; x < a.width(); ++x) {
                if (!(a.at(m, y, x) == b.at(m, y, x))) {
                    return ::testing::AssertionFailure()
                        << "value mismatch at (" << m << "," << y
                        << "," << x << ")";
                }
            }
        }
    }
    return ::testing::AssertionSuccess();
}

::testing::AssertionResult
snapshotsEqual(const RunSnapshot &ref, const RunSnapshot &got)
{
    if (ref.totalCycles != got.totalCycles) {
        return ::testing::AssertionFailure()
            << "total cycles " << ref.totalCycles << " vs "
            << got.totalCycles;
    }
    if (ref.layerCycles != got.layerCycles)
        return ::testing::AssertionFailure() << "per-layer cycles";
    if (ref.outputs.size() != got.outputs.size())
        return ::testing::AssertionFailure() << "output count";
    for (size_t i = 0; i < ref.outputs.size(); ++i) {
        auto eq = tensorsEqual(ref.outputs[i], got.outputs[i]);
        if (!eq) {
            return ::testing::AssertionFailure()
                << "layer " << i << " output: " << eq.message();
        }
    }
    if (ref.metricsJson != got.metricsJson) {
        return ::testing::AssertionFailure()
            << "stall-attribution metrics JSON differs";
    }
    if (ref.spatialJson != got.spatialJson) {
        return ::testing::AssertionFailure()
            << "spatial heatmap/roofline JSON differs";
    }
    if (ref.energy.valid != got.energy.valid)
        return ::testing::AssertionFailure() << "energy validity";
    for (size_t k = 0; k < numEnergyEventKinds; ++k) {
        if (ref.energy.n[k] != got.energy.n[k]) {
            return ::testing::AssertionFailure()
                << "energy count " << k << ": " << ref.energy.n[k]
                << " vs " << got.energy.n[k];
        }
    }
    return ::testing::AssertionSuccess();
}

TEST(EngineDiff, FuzzForwardLegacyVsEvent)
{
    const unsigned seeds = fuzzSeedCount();
    for (unsigned seed = 1; seed <= seeds; ++seed) {
        Rng rng(uint64_t(seed) * 0x517cc1b727220a95ull);
        NetworkDesc net = randomNet(rng);
        NeurocubeConfig config = randomConfig(rng, false);
        NetworkData data = NetworkData::randomized(net, seed);
        Tensor input(net.inputMaps(), net.inputHeight(),
                     net.inputWidth());
        Rng input_rng(seed + 1000);
        input.randomize(input_rng);

        RunSnapshot legacy = snapshotForward(config, SimEngine::Legacy,
                                             net, data, input);
        RunSnapshot event = snapshotForward(config, SimEngine::Event,
                                            net, data, input);
        ASSERT_TRUE(snapshotsEqual(legacy, event))
            << "seed " << seed << " net " << net.layers.size()
            << " layers, " << net.inputWidth() << "x"
            << net.inputHeight();
        ASSERT_GT(legacy.totalCycles, 0u) << "seed " << seed;
    }
}

/** Snapshot of a batched run, comparable across engines. */
struct BatchSnapshot
{
    Tick cycles = 0;
    std::vector<Tick> laneCycles;
    std::vector<Tensor> outputs; // lane-major, all layers
    std::vector<EnergyCounts> laneEnergy;
    std::vector<std::string> laneSpatial;
};

BatchSnapshot
snapshotBatch(const NeurocubeConfig &base, SimEngine engine,
              unsigned lanes, const NetworkDesc &net,
              const NetworkData &data,
              const std::vector<Tensor> &inputs)
{
    NeurocubeConfig config = base;
    config.engine = engine;
    config.batch.lanes = lanes;
    Neurocube cube(config);
    cube.loadNetwork(net, data);
    BatchRunResult run = cube.runForwardBatch(inputs);

    BatchSnapshot snap;
    snap.cycles = run.cycles;
    for (const RunResult &lane : run.lanes) {
        snap.laneCycles.push_back(lane.totalCycles());
        snap.laneEnergy.push_back(lane.energyCounts());
        snap.laneSpatial.push_back(lane.spatialJson());
    }
    for (unsigned l = 0; l < inputs.size(); ++l) {
        for (size_t i = 0; i < net.layers.size(); ++i)
            snap.outputs.push_back(cube.batchLayerOutput(l, i));
    }
    return snap;
}

::testing::AssertionResult
batchSnapshotsEqual(const BatchSnapshot &ref, const BatchSnapshot &got)
{
    if (ref.cycles != got.cycles) {
        return ::testing::AssertionFailure()
            << "batch cycles " << ref.cycles << " vs " << got.cycles;
    }
    if (ref.laneCycles != got.laneCycles)
        return ::testing::AssertionFailure() << "per-lane cycles";
    if (ref.outputs.size() != got.outputs.size())
        return ::testing::AssertionFailure() << "output count";
    for (size_t i = 0; i < ref.outputs.size(); ++i) {
        auto eq = tensorsEqual(ref.outputs[i], got.outputs[i]);
        if (!eq) {
            return ::testing::AssertionFailure()
                << "output " << i << ": " << eq.message();
        }
    }
    for (size_t l = 0; l < ref.laneEnergy.size(); ++l) {
        for (size_t k = 0; k < numEnergyEventKinds; ++k) {
            if (ref.laneEnergy[l].n[k] != got.laneEnergy[l].n[k]) {
                return ::testing::AssertionFailure()
                    << "lane " << l << " energy count " << k;
            }
        }
    }
    for (size_t l = 0; l < ref.laneSpatial.size(); ++l) {
        if (ref.laneSpatial[l] != got.laneSpatial[l]) {
            return ::testing::AssertionFailure()
                << "lane " << l << " spatial JSON differs";
        }
    }
    return ::testing::AssertionSuccess();
}

TEST(EngineDiff, FuzzBatchAllThreeEngines)
{
    // Batched runs are where ThreadedLanes diverges from Event, so
    // every seed runs all three engines on a random lane count
    // (including partial batches that park trailing lanes).
    const unsigned seeds = std::max(1u, fuzzSeedCount() / 4);
    for (unsigned seed = 1; seed <= seeds; ++seed) {
        Rng rng(uint64_t(seed) * 0x2545f4914f6cdd1dull);
        NetworkDesc net = randomNet(rng);
        // Batch lanes need the identity channel attachment (HMC).
        NeurocubeConfig config = randomConfig(rng, true);
        const unsigned lanes = 1u << rng.below(3); // 1, 2, 4
        const unsigned occupied = 1 + unsigned(rng.below(lanes));
        NetworkData data = NetworkData::randomized(net, seed);
        std::vector<Tensor> inputs;
        for (unsigned l = 0; l < occupied; ++l) {
            Tensor in(net.inputMaps(), net.inputHeight(),
                      net.inputWidth());
            Rng in_rng(seed * 100 + l);
            in.randomize(in_rng);
            inputs.push_back(std::move(in));
        }

        BatchSnapshot legacy = snapshotBatch(
            config, SimEngine::Legacy, lanes, net, data, inputs);
        BatchSnapshot event = snapshotBatch(
            config, SimEngine::Event, lanes, net, data, inputs);
        BatchSnapshot threaded = snapshotBatch(
            config, SimEngine::ThreadedLanes, lanes, net, data,
            inputs);
        ASSERT_TRUE(batchSnapshotsEqual(legacy, event))
            << "seed " << seed << " lanes " << lanes << " occupied "
            << occupied << " (event)";
        ASSERT_TRUE(batchSnapshotsEqual(legacy, threaded))
            << "seed " << seed << " lanes " << lanes << " occupied "
            << occupied << " (threaded)";
        ASSERT_GT(legacy.cycles, 0u) << "seed " << seed;
    }
}

TEST(EngineDiff, FuzzPlanCacheOnVsOff)
{
    // The compiled-plan cache must be invisible: a cached compile
    // binds the same store contents and programs as a cold one, so
    // cycles, outputs, stall attribution and energy counts all stay
    // bit-identical with the cache on or off.
    const unsigned seeds = std::max(1u, fuzzSeedCount() / 4);
    for (unsigned seed = 1; seed <= seeds; ++seed) {
        Rng rng(uint64_t(seed) * 0x9e3779b97f4a7c15ull);
        NetworkDesc net = randomNet(rng);
        NeurocubeConfig config = randomConfig(rng, false);
        NetworkData data = NetworkData::randomized(net, seed);
        Tensor input(net.inputMaps(), net.inputHeight(),
                     net.inputWidth());
        Rng input_rng(seed + 2000);
        input.randomize(input_rng);

        NeurocubeConfig cached = config;
        cached.planCache = true;
        NeurocubeConfig cold = config;
        cold.planCache = false;
        RunSnapshot with_cache = snapshotForward(
            cached, SimEngine::Event, net, data, input);
        RunSnapshot without = snapshotForward(
            cold, SimEngine::Event, net, data, input);
        ASSERT_TRUE(snapshotsEqual(without, with_cache))
            << "seed " << seed;
    }
}

/** Give a config live event sinks (a real recorder) with sampling. */
void
addSampledSinks(NeurocubeConfig &config, const std::string &tag,
                uint64_t sample_period)
{
    config.trace.chromeJsonPath = tag + ".trace.json";
    config.trace.timeseriesCsvPath = tag + ".trace.csv";
    config.trace.samplePeriod = sample_period;
}

void
removeSinkFiles(const std::string &tag)
{
    std::remove((tag + ".trace.json").c_str());
    std::remove((tag + ".trace.csv").c_str());
}

TEST(EngineDiff, FuzzForwardWithLiveSampledRecorder)
{
    // The zero-compromise telemetry contract: with a live recorder
    // (real event sinks) in sampled mode, the event engine must stay
    // bit-identical to Legacy-with-tracing in cycles, stall totals
    // and energy counts. ThreadedLanes demotes to Event under the
    // recorder, so it must match too.
    const std::string tag = "engine_diff_sampled";
    const unsigned seeds = std::max(1u, fuzzSeedCount() / 4);
    for (unsigned seed = 1; seed <= seeds; ++seed) {
        Rng rng(uint64_t(seed) * 0xd6e8feb86659fd93ull);
        NetworkDesc net = randomNet(rng);
        NeurocubeConfig config = randomConfig(rng, false);
        addSampledSinks(config, tag, 1 + rng.below(8)); // 1..8
        NetworkData data = NetworkData::randomized(net, seed);
        Tensor input(net.inputMaps(), net.inputHeight(),
                     net.inputWidth());
        Rng input_rng(seed + 3000);
        input.randomize(input_rng);

        RunSnapshot legacy = snapshotForward(config, SimEngine::Legacy,
                                             net, data, input);
        RunSnapshot event = snapshotForward(config, SimEngine::Event,
                                            net, data, input);
        RunSnapshot threaded = snapshotForward(
            config, SimEngine::ThreadedLanes, net, data, input);
        ASSERT_TRUE(snapshotsEqual(legacy, event))
            << "seed " << seed << " (event, sampled recorder)";
        ASSERT_TRUE(snapshotsEqual(legacy, threaded))
            << "seed " << seed << " (threaded, sampled recorder)";
    }
    removeSinkFiles(tag);
}

TEST(EngineDiff, FuzzBatchWithLiveSampledRecorder)
{
    const std::string tag = "engine_diff_batch_sampled";
    const unsigned seeds = std::max(1u, fuzzSeedCount() / 8);
    for (unsigned seed = 1; seed <= seeds; ++seed) {
        Rng rng(uint64_t(seed) * 0xbf58476d1ce4e5b9ull);
        NetworkDesc net = randomNet(rng);
        NeurocubeConfig config = randomConfig(rng, true);
        addSampledSinks(config, tag, 1 + rng.below(4)); // 1..4
        const unsigned lanes = 1u << rng.below(3);      // 1, 2, 4
        const unsigned occupied = 1 + unsigned(rng.below(lanes));
        NetworkData data = NetworkData::randomized(net, seed);
        std::vector<Tensor> inputs;
        for (unsigned l = 0; l < occupied; ++l) {
            Tensor in(net.inputMaps(), net.inputHeight(),
                      net.inputWidth());
            Rng in_rng(seed * 300 + l);
            in.randomize(in_rng);
            inputs.push_back(std::move(in));
        }

        BatchSnapshot legacy = snapshotBatch(
            config, SimEngine::Legacy, lanes, net, data, inputs);
        BatchSnapshot event = snapshotBatch(
            config, SimEngine::Event, lanes, net, data, inputs);
        BatchSnapshot threaded = snapshotBatch(
            config, SimEngine::ThreadedLanes, lanes, net, data,
            inputs);
        ASSERT_TRUE(batchSnapshotsEqual(legacy, event))
            << "seed " << seed << " lanes " << lanes
            << " (event, sampled recorder)";
        ASSERT_TRUE(batchSnapshotsEqual(legacy, threaded))
            << "seed " << seed << " lanes " << lanes
            << " (threaded, sampled recorder)";
    }
    removeSinkFiles(tag);
}

TEST(EngineDiff, FuzzTraceOnVsOffCycleInvariance)
{
    // Tracing is observational: a fully-exported sampled session must
    // not change simulated cycles or computed outputs relative to a
    // trace-off run of the same workload on the event engine.
    const std::string tag = "engine_diff_trace_onoff";
    const unsigned seeds = std::max(1u, fuzzSeedCount() / 4);
    for (unsigned seed = 1; seed <= seeds; ++seed) {
        Rng rng(uint64_t(seed) * 0x94d049bb133111ebull);
        NetworkDesc net = randomNet(rng);
        NeurocubeConfig traced = randomConfig(rng, false);
        addSampledSinks(traced, tag, 1 + rng.below(8));
        NeurocubeConfig untraced = traced;
        untraced.trace = TraceConfig{};
        NetworkData data = NetworkData::randomized(net, seed);
        Tensor input(net.inputMaps(), net.inputHeight(),
                     net.inputWidth());
        Rng input_rng(seed + 4000);
        input.randomize(input_rng);

        RunSnapshot off = snapshotForward(untraced, SimEngine::Event,
                                          net, data, input);
        RunSnapshot on = snapshotForward(traced, SimEngine::Event,
                                         net, data, input);
        // The trace-off run carries no metrics/energy registries, so
        // only the simulated quantities are comparable.
        ASSERT_EQ(off.totalCycles, on.totalCycles) << "seed " << seed;
        ASSERT_EQ(off.layerCycles, on.layerCycles) << "seed " << seed;
        ASSERT_EQ(off.outputs.size(), on.outputs.size());
        for (size_t i = 0; i < off.outputs.size(); ++i) {
            ASSERT_TRUE(tensorsEqual(off.outputs[i], on.outputs[i]))
                << "seed " << seed << " layer " << i;
        }
    }
    removeSinkFiles(tag);
}

#if NEUROCUBE_TRACE_ENABLED
TEST(EngineDiff, ActiveEngineUnderLiveRecorder)
{
    const std::string tag = "engine_diff_active";

    // A live sampled recorder leaves the event engine active — no
    // Legacy fallback.
    NeurocubeConfig config;
    config.engine = SimEngine::Event;
    config.trace.enabled = true;
    config.trace.metrics = true;
    config.trace.energy = true;
    addSampledSinks(config, tag, 8);
    {
        Neurocube cube(config);
        EXPECT_EQ(cube.activeEngine(), SimEngine::Event);
    }

    // The recorder ring is single-producer, so ThreadedLanes demotes
    // to Event (not Legacy) while the recorder is live.
    config.engine = SimEngine::ThreadedLanes;
    {
        Neurocube cube(config);
        EXPECT_EQ(cube.activeEngine(), SimEngine::Event);
    }

    // Compatibility flag restores the old always-Legacy fallback.
    config.trace.legacyEngineWithRecorder = true;
    {
        Neurocube cube(config);
        EXPECT_EQ(cube.activeEngine(), SimEngine::Legacy);
    }

    // A metrics-only session has no recorder: nothing demotes.
    NeurocubeConfig metrics_only;
    metrics_only.engine = SimEngine::ThreadedLanes;
    metrics_only.trace.enabled = true;
    metrics_only.trace.metrics = true;
    metrics_only.trace.energy = true;
    {
        Neurocube cube(metrics_only);
        EXPECT_EQ(cube.activeEngine(), SimEngine::ThreadedLanes);
    }
    removeSinkFiles(tag);
}
#endif

/** Engine-invariant view of a driver-produced RunResult. */
struct DriverSnapshot
{
    std::vector<Tick> layerCycles;
    std::string metricsJson;
    EnergyCounts energy;
    std::vector<Tensor> states;

    bool
    operator==(const DriverSnapshot &o) const
    {
        if (layerCycles != o.layerCycles
            || metricsJson != o.metricsJson
            || energy.valid != o.energy.valid
            || energy.n != o.energy.n
            || states.size() != o.states.size())
            return false;
        for (size_t i = 0; i < states.size(); ++i) {
            if (!tensorsEqual(states[i], o.states[i]))
                return false;
        }
        return true;
    }
};

NeurocubeConfig
tracedConfig(SimEngine engine)
{
    NeurocubeConfig config;
    config.engine = engine;
#if NEUROCUBE_TRACE_ENABLED
    config.trace.enabled = true;
    config.trace.metrics = true;
    config.trace.energy = true;
#endif
    return config;
}

DriverSnapshot
driverSnapshot(const RunResult &run, std::vector<Tensor> states = {})
{
    DriverSnapshot snap;
    for (const LayerResult &l : run.layers)
        snap.layerCycles.push_back(l.cycles);
    snap.metricsJson = run.metricsJson();
    snap.energy = run.energyCounts();
    snap.states = std::move(states);
    return snap;
}

TEST(EngineDiff, RecurrentPathMatches)
{
    // The recurrent driver reuses the pass machinery with per-step
    // reprogramming; the event engine must not perturb it.
    RnnDesc desc;
    desc.inputSize = 10;
    desc.hiddenSize = 16;
    desc.timeSteps = 4;
    Rng rng(31);
    std::vector<Fixed> w(desc.weightCount());
    for (Fixed &v : w)
        v = Fixed::fromDouble(rng.uniform(-0.1, 0.1));
    std::vector<Tensor> inputs;
    for (unsigned t = 0; t < desc.timeSteps; ++t) {
        Tensor x(1, 1, desc.inputSize);
        x.randomize(rng, -1.0, 1.0);
        inputs.push_back(x);
    }

    auto run_with = [&](SimEngine engine) {
        Neurocube cube(tracedConfig(engine));
        std::vector<Tensor> states;
        RunResult run = runRnn(cube, desc, w, inputs, &states);
        return driverSnapshot(run, std::move(states));
    };
    EXPECT_TRUE(run_with(SimEngine::Legacy)
                == run_with(SimEngine::Event));
}

TEST(EngineDiff, TrainingPathMatches)
{
    NetworkDesc net = sceneLabelingNetwork(48, 48);
    NetworkData data = NetworkData::randomized(net, 11);
    Tensor input(net.inputMaps(), net.inputHeight(),
                 net.inputWidth());
    Rng rng(12);
    input.randomize(rng);
    TrainingOptions opts;
    opts.includeWeightGradient = true;

    auto run_with = [&](SimEngine engine) {
        Neurocube cube(tracedConfig(engine));
        return driverSnapshot(
            runTrainingIteration(cube, net, data, input, opts));
    };
    EXPECT_TRUE(run_with(SimEngine::Legacy)
                == run_with(SimEngine::Event));
}

} // namespace
} // namespace neurocube
