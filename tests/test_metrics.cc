/**
 * @file
 * Stall-attribution metrics tests: registry counting and snapshots,
 * the NC_METRIC_CYCLE publishing macro, the top-down bottleneck
 * classifier on hand-built deltas, per-lane node filtering, the phase
 * detector over synthetic CSVs, and two synthetic workloads on the
 * real machine with a known dominant stall (one DRAM-bound, one
 * NoC-bound).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include "core/neurocube.hh"
#include "trace/metrics.hh"
#include "trace/phase_detector.hh"

namespace neurocube
{
namespace
{

/** Shorthand for charging @p n cycles of one class to an instance. */
void
charge(MetricsRegistry &registry, TraceComponent component,
       unsigned instance, StallClass cls, uint64_t n)
{
    for (uint64_t i = 0; i < n; ++i)
        registry.cycle(component, instance, cls);
}

TEST(MetricsRegistry, CountsPerInstanceAndClass)
{
    MetricsRegistry registry;
    registry.configure(2, 2, 2, 2);

    charge(registry, TraceComponent::Pe, 0, StallClass::Busy, 10);
    charge(registry, TraceComponent::Pe, 0, StallClass::Idle, 5);
    charge(registry, TraceComponent::Pe, 1, StallClass::StallCache, 3);
    charge(registry, TraceComponent::Vault, 1, StallClass::StallDram,
           7);

    const auto &pes = registry.state().of(TraceComponent::Pe);
    ASSERT_EQ(pes.size(), 2u);
    EXPECT_EQ(pes[0][StallClass::Busy], 10u);
    EXPECT_EQ(pes[0][StallClass::Idle], 5u);
    EXPECT_EQ(pes[0].total(), 15u);
    EXPECT_EQ(pes[1][StallClass::StallCache], 3u);
    EXPECT_EQ(registry.state()
                  .of(TraceComponent::Vault)[1][StallClass::StallDram],
              7u);

    registry.reset();
    EXPECT_EQ(registry.state().of(TraceComponent::Pe)[0].total(), 0u);
    // Sizing survives a reset.
    EXPECT_EQ(registry.state().of(TraceComponent::Pe).size(), 2u);
}

TEST(MetricsRegistry, OutOfRangeInstanceIsDropped)
{
    MetricsRegistry registry;
    registry.configure(1, 1, 1, 1);
    registry.cycle(TraceComponent::Router, 99, StallClass::Busy);
    EXPECT_EQ(registry.state().of(TraceComponent::Router)[0].total(),
              0u);
}

TEST(MetricsRegistry, SnapshotDeltaIsolatesAnInterval)
{
    MetricsRegistry registry;
    registry.configure(1, 1, 1, 1);
    charge(registry, TraceComponent::Pe, 0, StallClass::Busy, 4);

    MetricsSnapshot before = registry.snapshot();
    charge(registry, TraceComponent::Pe, 0, StallClass::Busy, 6);
    charge(registry, TraceComponent::Pe, 0, StallClass::StallInject,
           2);

    MetricsSnapshot delta = registry.snapshot().delta(before);
    const auto &pe = delta.of(TraceComponent::Pe)[0];
    EXPECT_EQ(pe[StallClass::Busy], 6u);
    EXPECT_EQ(pe[StallClass::StallInject], 2u);
    EXPECT_EQ(pe.total(), 8u);
}

#if NEUROCUBE_TRACE_ENABLED
TEST(MetricsRegistry, MacroPublishesToActiveRegistry)
{
    // No active registry: the macro must be a safe no-op.
    NC_METRIC_CYCLE(TraceComponent::Pe, 0, StallClass::Busy);

    MetricsRegistry registry;
    registry.configure(1, 1, 1, 1);
    metrics::setActiveRegistry(&registry);
    NC_METRIC_CYCLE(TraceComponent::Pe, 0, StallClass::Busy);
    NC_METRIC_CYCLE(TraceComponent::Vault, 0,
                    StallClass::StallDram);
    metrics::setActiveRegistry(nullptr);
    NC_METRIC_CYCLE(TraceComponent::Pe, 0, StallClass::Busy);

    EXPECT_EQ(registry.state()
                  .of(TraceComponent::Pe)[0][StallClass::Busy],
              1u);
    EXPECT_EQ(registry.state()
                  .of(TraceComponent::Vault)[0][StallClass::StallDram],
              1u);
}
#endif

/** Sum of a report's machine-level fractions. */
double
fractionSum(const BottleneckReport &report)
{
    double sum = 0.0;
    for (double f : report.fractions)
        sum += f;
    return sum;
}

TEST(BottleneckReport, EmptyDeltaIsInvalid)
{
    MetricsRegistry registry;
    registry.configure(1, 1, 1, 1);
    BottleneckReport report =
        buildBottleneckReport(registry.snapshot());
    EXPECT_FALSE(report.valid);
    EXPECT_EQ(report.countedTicks, 0u);
}

TEST(BottleneckReport, MacBoundDeltaLabelsMac)
{
    MetricsRegistry registry;
    registry.configure(1, 1, 1, 1);
    charge(registry, TraceComponent::Pe, 0, StallClass::Busy, 80);
    charge(registry, TraceComponent::Pe, 0, StallClass::Idle, 20);
    charge(registry, TraceComponent::Router, 0, StallClass::Busy, 100);
    charge(registry, TraceComponent::Vault, 0, StallClass::Busy, 100);

    BottleneckReport report =
        buildBottleneckReport(registry.snapshot());
    ASSERT_TRUE(report.valid);
    EXPECT_STREQ(report.label, "mac");
    EXPECT_NEAR(report.peBusy, 0.8, 1e-9);
    EXPECT_NEAR(fractionSum(report), 1.0, 1e-9);
    EXPECT_EQ(report.countedTicks, 300u);
}

TEST(BottleneckReport, NocBlockingOutranksInjectAndDram)
{
    MetricsRegistry registry;
    registry.configure(1, 1, 1, 1);
    // PE mostly starved, router heavily blocked, PNG can't inject,
    // vault stalled: head-of-line blocking explains the rest.
    charge(registry, TraceComponent::Pe, 0, StallClass::StallInject,
           90);
    charge(registry, TraceComponent::Pe, 0, StallClass::Busy, 10);
    charge(registry, TraceComponent::Router, 0,
           StallClass::StallNocCredit, 40);
    charge(registry, TraceComponent::Router, 0, StallClass::Busy, 60);
    charge(registry, TraceComponent::Png, 0, StallClass::StallInject,
           50);
    charge(registry, TraceComponent::Png, 0, StallClass::Busy, 50);
    charge(registry, TraceComponent::Vault, 0, StallClass::StallDram,
           50);
    charge(registry, TraceComponent::Vault, 0, StallClass::Busy, 50);

    BottleneckReport report =
        buildBottleneckReport(registry.snapshot());
    ASSERT_TRUE(report.valid);
    EXPECT_STREQ(report.label, "noc");
    EXPECT_NEAR(report.routerBlocked, 0.4, 1e-9);
    EXPECT_NEAR(fractionSum(report), 1.0, 1e-9);
}

TEST(BottleneckReport, DramBoundDeltaLabelsDram)
{
    MetricsRegistry registry;
    registry.configure(1, 1, 1, 1);
    charge(registry, TraceComponent::Pe, 0, StallClass::StallInject,
           80);
    charge(registry, TraceComponent::Pe, 0, StallClass::Busy, 20);
    charge(registry, TraceComponent::Router, 0, StallClass::Idle, 100);
    charge(registry, TraceComponent::Png, 0, StallClass::StallDram,
           90);
    charge(registry, TraceComponent::Png, 0, StallClass::Busy, 10);
    charge(registry, TraceComponent::Vault, 0, StallClass::StallDram,
           70);
    charge(registry, TraceComponent::Vault, 0, StallClass::Busy, 30);

    BottleneckReport report =
        buildBottleneckReport(registry.snapshot());
    ASSERT_TRUE(report.valid);
    EXPECT_STREQ(report.label, "dram");
    EXPECT_NEAR(report.dramPressure, 1.0, 1e-9);
    EXPECT_NEAR(fractionSum(report), 1.0, 1e-9);
}

TEST(BottleneckReport, NodeFilterAttributesPerLane)
{
    MetricsRegistry registry;
    registry.configure(2, 2, 2, 2);
    // Node 0 is compute-bound, node 1 is NoC-bound.
    charge(registry, TraceComponent::Pe, 0, StallClass::Busy, 100);
    charge(registry, TraceComponent::Pe, 1, StallClass::StallInject,
           100);
    charge(registry, TraceComponent::Router, 1,
           StallClass::StallNocCredit, 100);

    const std::vector<unsigned> lane0{0};
    const std::vector<unsigned> lane1{1};
    MetricsSnapshot delta = registry.snapshot();

    BottleneckReport r0 = buildBottleneckReport(delta, &lane0);
    ASSERT_TRUE(r0.valid);
    EXPECT_STREQ(r0.label, "mac");
    EXPECT_EQ(r0.countedTicks, 100u);

    BottleneckReport r1 = buildBottleneckReport(delta, &lane1);
    ASSERT_TRUE(r1.valid);
    EXPECT_STREQ(r1.label, "noc");
    EXPECT_EQ(r1.countedTicks, 200u);
}

// ---------------------------------------------------------------
// Phase detector on synthetic CSVs.
// ---------------------------------------------------------------

/** Config matching the hand-written CSVs below (window 100). */
PhaseDetectorConfig
smallConfig()
{
    PhaseDetectorConfig config;
    config.windowTicks = 100;
    config.numPes = 2;
    config.numPngs = 2;
    config.numRouters = 2;
    config.numVaults = 2;
    return config;
}

constexpr char kCsvHeader[] =
    "window_start,noc_flits_per_cycle,ejected_per_cycle,"
    "mean_eject_latency,pe_util_pct,png_stall_ticks,"
    "noc_blocked_ticks,dram_stall_ticks,dram_bytes_per_cycle\n";

TEST(PhaseDetector, ClassifiesAndMergesWindows)
{
    std::istringstream csv(
        std::string(kCsvHeader)
        // Two compute windows (merge), one dram-bound, one
        // inject-bound, one noc-bound.
        + "0,1,0,0,80,0,0,0,2\n"
          "100,1,0,0,75,0,0,0,2\n"
          "200,0.1,0,0,5,0,0,120,1\n"
          "300,0.1,0,0,5,90,0,0,0\n"
          "400,0.1,0,0,5,0,150,0,0\n");
    auto segments = detectPhases(csv, smallConfig());
    ASSERT_EQ(segments.size(), 4u);
    EXPECT_EQ(segments[0].kind, PhaseKind::Compute);
    EXPECT_EQ(segments[0].startTick, Tick(0));
    EXPECT_EQ(segments[0].endTick, Tick(200));
    EXPECT_EQ(segments[0].windows, 2u);
    EXPECT_EQ(segments[1].kind, PhaseKind::DramBound);
    EXPECT_EQ(segments[2].kind, PhaseKind::InjectBound);
    EXPECT_EQ(segments[3].kind, PhaseKind::NocBound);
    EXPECT_EQ(segments[3].endTick, Tick(500));
}

TEST(PhaseDetector, ReinstatesSkippedWindowsAsQuiescent)
{
    // The exporter skips empty windows; [100, 300) is missing here,
    // as during a parked batch lane or between layers.
    std::istringstream csv(std::string(kCsvHeader)
                           + "0,1,0,0,80,0,0,0,2\n"
                             "300,0.1,0,0,5,0,0,130,1\n");
    auto segments = detectPhases(csv, smallConfig());
    ASSERT_EQ(segments.size(), 3u);
    EXPECT_EQ(segments[0].kind, PhaseKind::Compute);
    EXPECT_EQ(segments[1].kind, PhaseKind::Quiescent);
    EXPECT_EQ(segments[1].startTick, Tick(100));
    EXPECT_EQ(segments[1].endTick, Tick(300));
    EXPECT_EQ(segments[1].windows, 2u);
    EXPECT_EQ(segments[2].kind, PhaseKind::DramBound);
}

TEST(PhaseDetector, ToleratesColumnReordering)
{
    std::istringstream csv(
        "dram_stall_ticks,window_start,pe_util_pct,png_stall_ticks\n"
        "160,0,5,0\n");
    auto segments = detectPhases(csv, smallConfig());
    ASSERT_EQ(segments.size(), 1u);
    EXPECT_EQ(segments[0].kind, PhaseKind::DramBound);
}

TEST(PhaseDetector, RejectsForeignCsv)
{
    std::istringstream csv("a,b,c\n1,2,3\n");
    EXPECT_TRUE(detectPhases(csv, smallConfig()).empty());
    std::istringstream empty("");
    EXPECT_TRUE(detectPhases(empty, smallConfig()).empty());
}

TEST(PhaseDetector, ReportListsOneLinePerSegment)
{
    std::vector<PhaseSegment> segments = {
        {0, 200, PhaseKind::Compute, 2},
        {200, 300, PhaseKind::DramBound, 1},
    };
    std::string report = phaseReport(segments);
    EXPECT_NE(report.find("compute"), std::string::npos);
    EXPECT_NE(report.find("dram-bound"), std::string::npos);
    EXPECT_EQ(std::count(report.begin(), report.end(), '\n'), 2);
}

#if NEUROCUBE_TRACE_ENABLED
// ---------------------------------------------------------------
// Synthetic workloads with a known dominant stall (acceptance
// criterion: the classifier recognises a DRAM-starved and a
// NoC-saturated machine from the real simulator's counters).
// ---------------------------------------------------------------

/** Run one network with metrics on and return layer 0's report. */
BottleneckReport
runWithMetrics(NeurocubeConfig config, const NetworkDesc &net)
{
    config.trace.enabled = true;
    config.trace.metrics = true;

    NetworkData data = NetworkData::randomized(net, 11);
    Tensor input(net.inputMaps(), net.inputHeight(),
                 net.inputWidth());
    Rng rng(12);
    input.randomize(rng);

    Neurocube cube(config);
    cube.loadNetwork(net, data);
    cube.setInput(input);
    RunResult run = cube.runForward();
    return run.layers.at(0).bottleneck;
}

TEST(SyntheticWorkload, BandwidthStarvedConvIsDramBound)
{
    // Duplicated conv on a machine with ~3% of the HMC's per-vault
    // bandwidth: every component waits on DRAM words.
    NeurocubeConfig config;
    config.dram.peakBandwidthGBps = 0.3;
    config.mapping.duplicateConvHalo = true;

    BottleneckReport report =
        runWithMetrics(config, singleConvNetwork(32, 24, 5, 1));
    ASSERT_TRUE(report.valid);
    EXPECT_STREQ(report.label, "dram");
    EXPECT_NEAR(fractionSum(report), 1.0, 1e-9);
    EXPECT_GE(report.fractions[size_t(StallClass::StallDram)], 0.10);
}

TEST(SyntheticWorkload, PartitionedFcOnShallowMeshIsNocBound)
{
    // Non-duplicated FC layer: every PE gathers operands from every
    // other node, and shallow router FIFOs saturate the mesh while
    // DRAM has bandwidth to spare.
    NeurocubeConfig config;
    config.mapping.duplicateFcInput = false;
    config.noc.bufferDepth = 4;
    config.dram.peakBandwidthGBps = 40.0;

    BottleneckReport report =
        runWithMetrics(config, threeLayerMlp(512, 256, 16));
    ASSERT_TRUE(report.valid);
    EXPECT_STREQ(report.label, "noc");
    EXPECT_NEAR(fractionSum(report), 1.0, 1e-9);
    EXPECT_GE(report.fractions[size_t(StallClass::StallNocCredit)],
              0.05);
}

TEST(SyntheticWorkload, HistogramSummariesArePopulated)
{
    NeurocubeConfig config;
    BottleneckReport report =
        runWithMetrics(config, singleConvNetwork(32, 24, 3, 1));
    ASSERT_TRUE(report.valid);
    // The conv moves real traffic, so every distribution has samples.
    EXPECT_GT(report.nocLatency.count, 0u);
    EXPECT_GT(report.dramQueueResidency.count, 0u);
    EXPECT_GT(report.peCacheOccupancy.count, 0u);
    EXPECT_GT(report.pngOutQueueDepth.count, 0u);
    EXPECT_GE(report.nocLatency.p99, report.nocLatency.p50);
    EXPECT_GE(double(report.nocLatency.max), report.nocLatency.p99);
}

TEST(SyntheticWorkload, MetricsJsonCarriesBottlenecks)
{
    NeurocubeConfig config;
    config.trace.enabled = true;

    NetworkDesc net = singleConvNetwork(32, 24, 3, 1);
    NetworkData data = NetworkData::randomized(net, 11);
    Tensor input(net.inputMaps(), net.inputHeight(),
                 net.inputWidth());
    Rng rng(12);
    input.randomize(rng);

    Neurocube cube(config);
    cube.loadNetwork(net, data);
    cube.setInput(input);
    RunResult run = cube.runForward();

    std::string json = run.metricsJson();
    EXPECT_NE(json.find("\"bottleneck\": {"), std::string::npos);
    EXPECT_NE(json.find("\"fractions\""), std::string::npos);
    EXPECT_NE(json.find("\"noc_latency\""), std::string::npos);
    EXPECT_EQ(json.find("\"bottleneck\": null"), std::string::npos);
}
#endif // NEUROCUBE_TRACE_ENABLED

TEST(MetricsJson, InvalidReportSerializesAsNull)
{
    RunResult run;
    LayerResult layer;
    layer.name = "conv";
    layer.cycles = 10;
    layer.ops = 100;
    run.layers.push_back(layer);
    std::string json = run.metricsJson();
    EXPECT_NE(json.find("\"bottleneck\": null"), std::string::npos);
}

} // namespace
} // namespace neurocube
