/**
 * @file
 * Thread-safety tests for the ThreadedLanes engine. These run under
 * the tsan preset (scripts/check.sh, CI): each batched pass spawns
 * one worker per active lane, and the per-lane schedulers must never
 * touch shared state without the fabric's per-node scratch detour.
 * The checks themselves are determinism checks — a data race that
 * corrupts counters shows up as a cross-engine mismatch even when
 * tsan is not watching.
 */

#include <gtest/gtest.h>

#include "core/neurocube.hh"
#include "nn/reference.hh"

namespace neurocube
{
namespace
{

NetworkDesc
convFcNet()
{
    NetworkDesc net;
    net.name = "threads-conv-fc";
    LayerDesc conv;
    conv.type = LayerType::Conv2D;
    conv.name = "conv";
    conv.inWidth = 20;
    conv.inHeight = 16;
    conv.inMaps = 2;
    conv.outMaps = 4;
    conv.kernel = 3;
    conv.channelwise = true;
    conv.activation = ActivationKind::Tanh;
    net.layers.push_back(conv);

    LayerDesc fc = nextLayerTemplate(conv);
    fc.type = LayerType::FullyConnected;
    fc.name = "fc";
    fc.outMaps = 32;
    fc.activation = ActivationKind::Sigmoid;
    net.layers.push_back(fc);
    net.validate();
    return net;
}

NeurocubeConfig
threadedConfig(unsigned lanes)
{
    NeurocubeConfig config;
    config.engine = SimEngine::ThreadedLanes;
    config.batch.lanes = lanes;
#if NEUROCUBE_TRACE_ENABLED
    // Metrics + energy on: the per-(component, instance) counter
    // writes are exactly the shared arrays tsan must vet.
    config.trace.enabled = true;
    config.trace.metrics = true;
    config.trace.energy = true;
#endif
    return config;
}

std::vector<Tensor>
laneInputs(const NetworkDesc &net, unsigned count, uint64_t seed)
{
    std::vector<Tensor> inputs;
    for (unsigned l = 0; l < count; ++l) {
        Tensor in(net.inputMaps(), net.inputHeight(),
                  net.inputWidth());
        Rng rng(seed + l);
        in.randomize(rng);
        inputs.push_back(std::move(in));
    }
    return inputs;
}

TEST(EngineThreads, FourLanesMatchReferenceUnderThreads)
{
    NetworkDesc net = convFcNet();
    NetworkData data = NetworkData::randomized(net, 21);
    std::vector<Tensor> inputs = laneInputs(net, 4, 2100);

    Neurocube cube(threadedConfig(4));
    cube.loadNetwork(net, data);
    BatchRunResult run = cube.runForwardBatch(inputs);

    ASSERT_EQ(run.lanes.size(), 4u);
    for (unsigned l = 0; l < 4; ++l) {
        auto expect = referenceForward(net, data, inputs[l]);
        for (size_t i = 0; i < net.layers.size(); ++i) {
            const Tensor &got = cube.batchLayerOutput(l, i);
            ASSERT_EQ(got.flat(), expect[i].flat())
                << "lane " << l << " layer " << i;
        }
    }
    EXPECT_EQ(cube.fabric().crossLanePackets(), 0u);
}

TEST(EngineThreads, ThreadedMatchesSingleThreadedEvent)
{
    NetworkDesc net = convFcNet();
    NetworkData data = NetworkData::randomized(net, 22);
    std::vector<Tensor> inputs = laneInputs(net, 4, 2200);

    auto run_with = [&](SimEngine engine) {
        NeurocubeConfig config = threadedConfig(4);
        config.engine = engine;
        Neurocube cube(config);
        cube.loadNetwork(net, data);
        BatchRunResult run = cube.runForwardBatch(inputs);
        std::vector<Tick> cycles{run.cycles};
        std::vector<EnergyCounts> energy;
        for (const RunResult &lane : run.lanes) {
            cycles.push_back(lane.totalCycles());
            energy.push_back(lane.energyCounts());
        }
        return std::make_pair(cycles, energy);
    };

    auto event = run_with(SimEngine::Event);
    auto threaded = run_with(SimEngine::ThreadedLanes);
    EXPECT_EQ(event.first, threaded.first);
    ASSERT_EQ(event.second.size(), threaded.second.size());
    for (size_t l = 0; l < event.second.size(); ++l) {
        EXPECT_EQ(event.second[l].n, threaded.second[l].n)
            << "lane " << l;
    }
}

TEST(EngineThreads, RepeatedBatchesAndReconfiguresAreStable)
{
    // Online lane reconfiguration with worker threads in the mix:
    // the serving scheduler's pattern. Warm state (caches, row
    // buffers) may make later runs faster than the cold first, but
    // two fresh machines driven through the same sequence must
    // report identical cycle counts — any cross-thread
    // nondeterminism shows up as a mismatch here.
    NetworkDesc net = convFcNet();
    NetworkData data = NetworkData::randomized(net, 23);
    std::vector<Tensor> inputs = laneInputs(net, 4, 2300);

    auto sequence = [&]() {
        Neurocube cube(threadedConfig(4));
        cube.loadNetwork(net, data);
        const unsigned lane_counts[] = {4, 2, 4, 1, 4};
        std::vector<Tick> cycles;
        for (unsigned lanes : lane_counts) {
            cube.setBatchLanes(lanes);
            std::vector<Tensor> batch(inputs.begin(),
                                      inputs.begin() + lanes);
            cycles.push_back(cube.runForwardBatch(batch).cycles);
        }
        return cycles;
    };
    std::vector<Tick> a = sequence();
    std::vector<Tick> b = sequence();
    EXPECT_EQ(a, b);
    for (Tick c : a)
        EXPECT_GT(c, 0u);
}

TEST(EngineThreads, PartialBatchParksTrailingLanesThreaded)
{
    NetworkDesc net = convFcNet();
    NetworkData data = NetworkData::randomized(net, 24);
    std::vector<Tensor> inputs = laneInputs(net, 2, 2400);

    Neurocube cube(threadedConfig(4));
    cube.loadNetwork(net, data);
    BatchRunResult run = cube.runForwardBatch(inputs);

    ASSERT_EQ(run.lanes.size(), 2u);
    for (unsigned l = 0; l < 2; ++l) {
        auto expect = referenceForward(net, data, inputs[l]);
        for (size_t i = 0; i < net.layers.size(); ++i) {
            ASSERT_EQ(cube.batchLayerOutput(l, i).flat(),
                      expect[i].flat())
                << "lane " << l << " layer " << i;
        }
    }
    EXPECT_EQ(cube.fabric().crossLanePackets(), 0u);
}

} // namespace
} // namespace neurocube
