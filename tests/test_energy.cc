/**
 * @file
 * Activity-based energy accounting tests: the EnergyRegistry counter
 * plumbing, the Table II price derivation, the event-stream pricing
 * the exporters use, and the headline cross-validation — on the
 * fig12 workload the activity-based total must agree with the
 * analytic accountEnergy() within a documented tolerance.
 */

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "core/neurocube.hh"
#include "nn/network.hh"
#include "power/activity_energy.hh"
#include "power/energy_model.hh"
#include "trace/energy.hh"

namespace neurocube
{
namespace
{

TEST(EnergyCountsTest, KindNamesAreUniqueAndLabeled)
{
    std::set<std::string> names;
    for (size_t k = 0; k < numEnergyEventKinds; ++k) {
        std::string name = energyEventKindName(EnergyEventKind(k));
        EXPECT_NE(name, "unknown") << "kind " << k;
        EXPECT_TRUE(names.insert(name).second)
            << "duplicate kind name " << name;
    }
    EXPECT_STREQ(energyEventKindName(EnergyEventKind::KindCount),
                 "unknown");
}

TEST(EnergyRegistryTest, CountsSnapshotsAndDeltas)
{
    EnergyRegistry reg;
    reg.configure(4);
    reg.add(EnergyEventKind::MacOp, 0, 10);
    reg.add(EnergyEventKind::MacOp, 0, 5);
    reg.add(EnergyEventKind::DramBit, 3, 256);
    // Out-of-range instances are dropped, never UB.
    reg.add(EnergyEventKind::MacOp, 4, 1000);

    EnergySnapshot before = reg.snapshot();
    EXPECT_EQ(before.sum()[EnergyEventKind::MacOp], 15u);
    EXPECT_EQ(before.sum()[EnergyEventKind::DramBit], 256u);

    reg.add(EnergyEventKind::MacOp, 1, 7);
    EnergySnapshot delta = reg.snapshot().delta(before);
    EXPECT_EQ(delta.sum()[EnergyEventKind::MacOp], 7u);
    EXPECT_EQ(delta.sum()[EnergyEventKind::DramBit], 0u);
    EXPECT_TRUE(delta.sum().valid);

    reg.reset();
    EXPECT_EQ(reg.snapshot().sum()[EnergyEventKind::MacOp], 0u);
    EXPECT_TRUE(reg.snapshot().sum().valid);
}

TEST(EnergyRegistryTest, SnapshotSumFiltersNodes)
{
    EnergyRegistry reg;
    reg.configure(4);
    reg.add(EnergyEventKind::NocHop, 0, 1);
    reg.add(EnergyEventKind::NocHop, 1, 2);
    reg.add(EnergyEventKind::NocHop, 2, 4);

    std::vector<unsigned> nodes{1, 2};
    EXPECT_EQ(reg.snapshot().sum(&nodes)[EnergyEventKind::NocHop], 6u);
    EXPECT_EQ(reg.snapshot().sum()[EnergyEventKind::NocHop], 7u);

    // An empty snapshot sums to an invalid record.
    EXPECT_FALSE(EnergySnapshot{}.sum().valid);
}

/**
 * The EnergyPrices defaults are the 15 nm derivation written out as
 * literals (the trace layer cannot depend on nc_power). They must
 * stay in sync with what ActivityEnergyModel derives from the
 * PowerModel Table I/II seeds.
 */
TEST(EnergyPricesTest, DefaultsMatchThe15nmModel)
{
    EnergyPrices defaults;
    ActivityEnergyModel model{PowerModel(TechNode::Nm15)};
    const EnergyPrices &derived = model.prices();
    EXPECT_EQ(model.node(), TechNode::Nm15);

    auto near = [](double a, double b) {
        EXPECT_NEAR(a, b, 1e-9 * std::max(std::abs(a), 1.0));
    };
    near(defaults.macOpPj, derived.macOpPj);
    near(defaults.cacheAccessPj, derived.cacheAccessPj);
    near(defaults.bufferAccessPj, derived.bufferAccessPj);
    near(defaults.weightRegPj, derived.weightRegPj);
    near(defaults.nocHopPj, derived.nocHopPj);
    near(defaults.nocLinkPj, derived.nocLinkPj);
    near(defaults.pngOpPj, derived.pngOpPj);
    near(defaults.vaultXactPj, derived.vaultXactPj);
    near(defaults.vaultLogicPjPerBit, derived.vaultLogicPjPerBit);
    near(defaults.dramPjPerBit, derived.dramPjPerBit);
}

TEST(ActivityEnergyModelTest, PricesCountsIntoComponents)
{
    ActivityEnergyModel model;
    const EnergyPrices &p = model.prices();

    EnergyCounts counts;
    counts.valid = true;
    counts.n[size_t(EnergyEventKind::MacOp)] = 1000;
    counts.n[size_t(EnergyEventKind::CacheRead)] = 200;
    counts.n[size_t(EnergyEventKind::CacheWrite)] = 300;
    counts.n[size_t(EnergyEventKind::BufferAccess)] = 400;
    counts.n[size_t(EnergyEventKind::WeightRegRead)] = 500;
    counts.n[size_t(EnergyEventKind::NocHop)] = 60;
    counts.n[size_t(EnergyEventKind::NocLink)] = 40;
    counts.n[size_t(EnergyEventKind::PngOp)] = 70;
    counts.n[size_t(EnergyEventKind::VaultXact)] = 8;
    counts.n[size_t(EnergyEventKind::DramBit)] = 4096;

    EnergyBreakdown b = model.price(counts);
    EXPECT_DOUBLE_EQ(b.macJ, 1000 * p.macOpPj * 1e-12);
    EXPECT_DOUBLE_EQ(b.sramJ, (200 + 300) * p.cacheAccessPj * 1e-12);
    EXPECT_DOUBLE_EQ(b.buffersJ,
                     (400 * p.bufferAccessPj + 500 * p.weightRegPj)
                         * 1e-12);
    EXPECT_DOUBLE_EQ(b.nocJ,
                     (60 * p.nocHopPj + 40 * p.nocLinkPj) * 1e-12);
    EXPECT_DOUBLE_EQ(b.pngJ, 70 * p.pngOpPj * 1e-12);
    EXPECT_DOUBLE_EQ(b.vaultLogicJ,
                     (8 * p.vaultXactPj + 4096 * p.vaultLogicPjPerBit)
                         * 1e-12);
    EXPECT_DOUBLE_EQ(b.dramJ, 4096 * p.dramPjPerBit * 1e-12);
    EXPECT_NEAR(b.totalJ(),
                b.macJ + b.sramJ + b.buffersJ + b.nocJ + b.pngJ
                    + b.vaultLogicJ + b.dramJ,
                1e-18);

    // The 28 nm derivation prices the same counts differently.
    ActivityEnergyModel m28{PowerModel(TechNode::Nm28)};
    EXPECT_NE(m28.price(counts).macJ, b.macJ);

    auto views = energyComponents(b);
    double sum = 0.0;
    for (const EnergyComponentView &v : views)
        sum += v.joules;
    EXPECT_NEAR(sum, b.totalJ(), 1e-18);
    EXPECT_STREQ(views[0].name, "mac");
    EXPECT_STREQ(views[6].name, "dram");
}

TEST(TracePricingTest, PricesTheEventStream)
{
    EnergyPrices p;
    TraceEvent ev;
    ev.component = TraceComponent::Pe;
    ev.type = TraceEventType::MacBusy;
    ev.arg = 16;
    EXPECT_DOUBLE_EQ(tracePjOf(ev, p), 16 * p.macOpPj);

    ev.type = TraceEventType::CacheMiss;
    ev.arg = 0;
    ev.value = 12; // entries scanned
    EXPECT_DOUBLE_EQ(tracePjOf(ev, p), 12 * p.cacheAccessPj);

    ev.component = TraceComponent::Router;
    ev.type = TraceEventType::FlitSwitch;
    EXPECT_DOUBLE_EQ(tracePjOf(ev, p), p.nocHopPj);

    ev.component = TraceComponent::Vault;
    ev.type = TraceEventType::DramWord;
    ev.value = 128; // bits in the packed burst
    EXPECT_DOUBLE_EQ(tracePjOf(ev, p),
                     128 * (p.dramPjPerBit + p.vaultLogicPjPerBit)
                         + p.vaultXactPj);

    // Non-energy-bearing events price to zero.
    ev.component = TraceComponent::Sim;
    ev.type = TraceEventType::LaneDone;
    EXPECT_DOUBLE_EQ(tracePjOf(ev, p), 0.0);
}

TEST(EnergyJsonTest, RunWithoutAccountingIsInvalid)
{
    RunResult run;
    run.layers.emplace_back();
    run.layers.back().name = "conv1";
    run.layers.back().cycles = 100;
    EXPECT_FALSE(run.energyCounts().valid);
    EXPECT_NE(run.energyJson().find("\"valid\":false"),
              std::string::npos);
    EnergyComparison cmp =
        compareWithAnalytic(run, PowerModel(TechNode::Nm15));
    EXPECT_EQ(cmp.activityJ, 0.0);
}

#if NEUROCUBE_TRACE_ENABLED

/** The fig12 golden workload with energy accounting enabled. */
RunResult
runFig12WithEnergy()
{
    NetworkDesc net = sceneLabelingNetwork(64, 48);
    NetworkData data = NetworkData::randomized(net, 1);
    Tensor input(net.inputMaps(), net.inputHeight(),
                 net.inputWidth());
    Rng rng(2);
    input.randomize(rng);

    NeurocubeConfig config;
    config.trace.enabled = true;
    config.trace.energy = true;
    Neurocube cube(config);
    cube.loadNetwork(net, data);
    cube.setInput(input);
    return cube.runForward();
}

/**
 * The headline cross-validation (ISSUE acceptance criterion): on the
 * fig12 workload, the activity-based energy must agree with the
 * analytic accountEnergy() within the documented tolerance.
 *
 * Documented tolerance:
 *  - DRAM terms: both views price the same measured bits at the same
 *    pJ/bit, so they agree within 0.1% (float accumulation only).
 *  - Total: the ratio activity/analytic is the run's effective
 *    activity factor. It must land in [0.05, 1.30] — well above
 *    zero (the machine did switch) and at most modestly above 1
 *    (associative cache scans may count more SRAM accesses per cycle
 *    than the analytic full-activity integral assumes, but never
 *    30% more on this workload).
 */
TEST(EnergyCrossValidationTest, Fig12ActivityAgreesWithAnalytic)
{
    RunResult run = runFig12WithEnergy();
    ASSERT_FALSE(run.layers.empty());
    for (const LayerResult &l : run.layers) {
        EXPECT_TRUE(l.energy.valid) << l.name;
    }

    EnergyCounts counts = run.energyCounts();
    ASSERT_TRUE(counts.valid);

    // Exact count identities against the simulator's own accounting:
    // one MAC op is two arithmetic ops, and every DRAM bit the layer
    // results report was counted by the vault controllers.
    EXPECT_EQ(counts[EnergyEventKind::MacOp] * 2, run.totalOps());
    uint64_t dram_bits = 0;
    for (const LayerResult &l : run.layers)
        dram_bits += l.dramBits;
    EXPECT_EQ(counts[EnergyEventKind::DramBit], dram_bits);
    EXPECT_GT(counts[EnergyEventKind::CacheRead], 0u);
    EXPECT_GT(counts[EnergyEventKind::NocHop], 0u);
    EXPECT_GT(counts[EnergyEventKind::PngOp], 0u);
    EXPECT_GT(counts[EnergyEventKind::VaultXact], 0u);

    EnergyComparison cmp =
        compareWithAnalytic(run, PowerModel(TechNode::Nm15));
    ASSERT_GT(cmp.activityJ, 0.0);
    ASSERT_GT(cmp.analyticJ, 0.0);

    // DRAM terms price identical bits: 0.1% tolerance.
    EXPECT_NEAR(cmp.activity.dramJ, cmp.analyticDramJ,
                0.001 * cmp.analyticDramJ);

    // Documented total tolerance (see comment above).
    EXPECT_GE(cmp.ratio, 0.05) << "activity " << cmp.activityJ
                               << " J vs analytic " << cmp.analyticJ;
    EXPECT_LE(cmp.ratio, 1.30) << "activity " << cmp.activityJ
                               << " J vs analytic " << cmp.analyticJ;
    RecordProperty("activity_over_analytic", std::to_string(cmp.ratio));
    std::printf("[ info ] activity %.4f mJ / analytic %.4f mJ = "
                "activity factor %.3f\n",
                cmp.activityJ * 1e3, cmp.analyticJ * 1e3, cmp.ratio);
}

TEST(EnergyJsonTest, Fig12JsonCarriesBreakdown)
{
    RunResult run = runFig12WithEnergy();
    std::string json = run.energyJson();
    EXPECT_NE(json.find("\"valid\":true"), std::string::npos);
    EXPECT_NE(json.find("\"total_j\""), std::string::npos);
    EXPECT_NE(json.find("\"gops_per_watt\""), std::string::npos);
    EXPECT_NE(json.find("\"mac\""), std::string::npos);
    EXPECT_NE(json.find("\"dram\""), std::string::npos);
    EXPECT_NE(json.find("\"mac_op\""), std::string::npos);
    EXPECT_NE(json.find("\"layers\""), std::string::npos);
    // One per-layer entry per executed layer.
    size_t entries = 0;
    for (size_t at = json.find("\"counts\""); at != std::string::npos;
         at = json.find("\"counts\"", at + 1))
        ++entries;
    EXPECT_EQ(entries, run.layers.size());
}

#else // !NEUROCUBE_TRACE_ENABLED

/** Notrace builds: the macro counts nothing and runs stay invalid. */
TEST(EnergyCrossValidationTest, NotraceRunsCarryNoCounts)
{
    EnergyRegistry reg;
    reg.configure(1);
    energy::setActiveRegistry(&reg);
    NC_ENERGY_EVENT(EnergyEventKind::MacOp, 0, 5);
    energy::setActiveRegistry(nullptr);
    EXPECT_EQ(reg.snapshot().sum()[EnergyEventKind::MacOp], 0u);
}

#endif // NEUROCUBE_TRACE_ENABLED

} // namespace
} // namespace neurocube
