/**
 * @file
 * Unit tests for layer descriptors, network builders, tensors and the
 * sequential reference model.
 */

#include <gtest/gtest.h>

#include "nn/network.hh"
#include "nn/reference.hh"
#include "nn/tensor.hh"

namespace neurocube
{
namespace
{

TEST(Tensor, ShapeAndIndexing)
{
    Tensor t(2, 3, 4);
    EXPECT_EQ(t.size(), 24u);
    t.at(1, 2, 3) = Fixed::fromDouble(5.0);
    EXPECT_DOUBLE_EQ(t.at(1, 2, 3).toDouble(), 5.0);
    // Plane-major flattening.
    EXPECT_DOUBLE_EQ(t.flat()[1 * 12 + 2 * 4 + 3].toDouble(), 5.0);
}

TEST(Tensor, RandomizeDeterministic)
{
    Rng a(5), b(5);
    Tensor t1(1, 4, 4), t2(1, 4, 4);
    t1.randomize(a);
    t2.randomize(b);
    EXPECT_TRUE(t1 == t2);
}

TEST(LayerDesc, ConvGeometry)
{
    LayerDesc conv;
    conv.type = LayerType::Conv2D;
    conv.inWidth = 320;
    conv.inHeight = 240;
    conv.inMaps = 3;
    conv.outMaps = 16;
    conv.kernel = 7;
    EXPECT_EQ(conv.outWidth(), 314u);
    EXPECT_EQ(conv.outHeight(), 234u);
    EXPECT_EQ(conv.neuronsPerMap(), 73476u);
    EXPECT_EQ(conv.connectionsPerNeuron(), 49u);
    EXPECT_EQ(conv.passes(), 16u);
    // 2 ops x 73,476 neurons x 49 connections x 16 maps.
    EXPECT_EQ(conv.totalOps(), 2ull * 73476 * 49 * 16);
}

TEST(LayerDesc, PoolGeometry)
{
    LayerDesc pool;
    pool.type = LayerType::Pool;
    pool.inWidth = 314;
    pool.inHeight = 234;
    pool.inMaps = 16;
    pool.outMaps = 16;
    pool.kernel = 2;
    pool.stride = 2;
    EXPECT_EQ(pool.outWidth(), 157u);
    EXPECT_EQ(pool.outHeight(), 117u);
    EXPECT_EQ(pool.connectionsPerNeuron(), 4u);
}

TEST(LayerDesc, FullConvConnectionsSpanInputMaps)
{
    // The scene-labeling fc1: a 1x1 full convolution over 256 maps
    // is programmed as 64 passes of 256 connections each.
    LayerDesc fc;
    fc.type = LayerType::Conv2D;
    fc.name = "fc1";
    fc.inWidth = 69;
    fc.inHeight = 49;
    fc.inMaps = 256;
    fc.outMaps = 64;
    fc.kernel = 1;
    fc.channelwise = false;
    EXPECT_EQ(fc.passes(), 64u);
    EXPECT_EQ(fc.connectionsPerNeuron(), 256u);
    uint64_t neurons = 69ull * 49ull;
    EXPECT_EQ(fc.totalOps(), 2 * neurons * 256 * 64);
}

TEST(LayerDesc, FullyConnectedGeometry)
{
    LayerDesc fc;
    fc.type = LayerType::FullyConnected;
    fc.inWidth = 28;
    fc.inHeight = 28;
    fc.inMaps = 1;
    fc.outMaps = 500;
    EXPECT_EQ(fc.connectionsPerNeuron(), 784u);
    EXPECT_EQ(fc.neuronsPerMap(), 500u);
    EXPECT_EQ(fc.weightCount(), 784u * 500u);
    EXPECT_EQ(fc.totalOps(), 2ull * 500 * 784);
}

TEST(Network, SceneLabelingMatchesPaperLayer1)
{
    NetworkDesc net = sceneLabelingNetwork();
    ASSERT_EQ(net.layers.size(), 7u);
    const LayerDesc &conv1 = net.layers[0];
    // The Section IV-C programming example: 73,476 neurons (314x234)
    // and 49 connections.
    EXPECT_EQ(conv1.neuronsPerMap(), 73476u);
    EXPECT_EQ(conv1.connectionsPerNeuron(), 49u);
    // Table III: 76,800 input neurons per map (320x240).
    EXPECT_EQ(uint64_t(conv1.inWidth) * conv1.inHeight, 76800u);
}

TEST(Network, SceneLabelingOpsBudget)
{
    // The paper's throughput and frame-rate numbers imply ~0.45 GOP
    // per 320x240 frame (132.4 GOPs/s / 292.14 frames/s). The
    // reconstructed network must land in that band.
    NetworkDesc net = sceneLabelingNetwork();
    double gop = double(net.totalOps()) / 1e9;
    EXPECT_GT(gop, 0.35);
    EXPECT_LT(gop, 0.55);
}

TEST(Network, SceneLabelingChains)
{
    // validate() is called inside the builder; re-run explicitly.
    sceneLabelingNetwork().validate();
    sceneLabelingNetwork(64, 64).validate();
    mnistMlp().validate();
    threeLayerMlp(1024, 2048, 16).validate();
}

TEST(Network, RandomizedDataShapes)
{
    NetworkDesc net = mnistMlp(100);
    NetworkData data = NetworkData::randomized(net, 1);
    ASSERT_EQ(data.weights.size(), 2u);
    EXPECT_EQ(data.weights[0].size(), 784u * 100u);
    EXPECT_EQ(data.weights[1].size(), 100u * 10u);
}

TEST(Reference, ConvComputesWeightedSum)
{
    LayerDesc conv;
    conv.type = LayerType::Conv2D;
    conv.name = "c";
    conv.inWidth = 4;
    conv.inHeight = 4;
    conv.inMaps = 1;
    conv.outMaps = 1;
    conv.kernel = 3;
    conv.channelwise = true;

    Tensor in(1, 4, 4);
    for (unsigned y = 0; y < 4; ++y)
        for (unsigned x = 0; x < 4; ++x)
            in.at(0, y, x) = Fixed::fromDouble(double(y * 4 + x));

    std::vector<Fixed> w(9, Fixed::fromDouble(1.0));
    Tensor out = referenceLayer(conv, w, in);
    ASSERT_EQ(out.width(), 2u);
    ASSERT_EQ(out.height(), 2u);
    // Sum of the 3x3 window anchored at (0,0): 0+1+2+4+5+6+8+9+10.
    EXPECT_DOUBLE_EQ(out.at(0, 0, 0).toDouble(), 45.0);
}

TEST(Reference, PoolAverages)
{
    LayerDesc pool;
    pool.type = LayerType::Pool;
    pool.name = "p";
    pool.inWidth = 4;
    pool.inHeight = 4;
    pool.inMaps = 1;
    pool.outMaps = 1;
    pool.kernel = 2;
    pool.stride = 2;

    Tensor in(1, 4, 4);
    in.at(0, 0, 0) = Fixed::fromDouble(1.0);
    in.at(0, 0, 1) = Fixed::fromDouble(2.0);
    in.at(0, 1, 0) = Fixed::fromDouble(3.0);
    in.at(0, 1, 1) = Fixed::fromDouble(6.0);
    std::vector<Fixed> w(4, Fixed::fromDouble(0.25));
    Tensor out = referenceLayer(pool, w, in);
    EXPECT_DOUBLE_EQ(out.at(0, 0, 0).toDouble(), 3.0);
}

TEST(Reference, FullConvAccumulatesAcrossInputMaps)
{
    LayerDesc fc;
    fc.type = LayerType::Conv2D;
    fc.name = "f";
    fc.inWidth = 2;
    fc.inHeight = 2;
    fc.inMaps = 3;
    fc.outMaps = 2;
    fc.kernel = 1;
    fc.channelwise = false;

    Tensor in(3, 2, 2);
    for (unsigned m = 0; m < 3; ++m)
        in.at(m, 0, 0) = Fixed::fromDouble(double(m + 1));

    // W[(om*3+im)*1]: om0 = {1,1,1}, om1 = {1,2,3}.
    std::vector<Fixed> w = {
        Fixed::fromDouble(1), Fixed::fromDouble(1), Fixed::fromDouble(1),
        Fixed::fromDouble(1), Fixed::fromDouble(2), Fixed::fromDouble(3),
    };
    Tensor out = referenceLayer(fc, w, in);
    EXPECT_DOUBLE_EQ(out.at(0, 0, 0).toDouble(), 6.0);  // 1+2+3
    EXPECT_DOUBLE_EQ(out.at(1, 0, 0).toDouble(), 14.0); // 1+4+9
}

TEST(Reference, FcMatchesManualDotProduct)
{
    LayerDesc fc;
    fc.type = LayerType::FullyConnected;
    fc.name = "fc";
    fc.inWidth = 3;
    fc.inHeight = 1;
    fc.inMaps = 1;
    fc.outMaps = 2;

    Tensor in(1, 1, 3);
    in.at(0, 0, 0) = Fixed::fromDouble(1.0);
    in.at(0, 0, 1) = Fixed::fromDouble(2.0);
    in.at(0, 0, 2) = Fixed::fromDouble(3.0);
    std::vector<Fixed> w = {
        Fixed::fromDouble(1), Fixed::fromDouble(0), Fixed::fromDouble(0),
        Fixed::fromDouble(1), Fixed::fromDouble(1), Fixed::fromDouble(1),
    };
    Tensor out = referenceLayer(fc, w, in);
    EXPECT_DOUBLE_EQ(out.at(0, 0, 0).toDouble(), 1.0);
    EXPECT_DOUBLE_EQ(out.at(0, 0, 1).toDouble(), 6.0);
}

TEST(Reference, ActivationAppliedOnFinalPassOnly)
{
    // With ReLU and an intermediate negative partial sum that a later
    // pass lifts positive, per-pass activation would zero it; the
    // machine only activates on the final pass.
    LayerDesc fc;
    fc.type = LayerType::Conv2D;
    fc.name = "f";
    fc.inWidth = 1;
    fc.inHeight = 1;
    fc.inMaps = 2;
    fc.outMaps = 1;
    fc.kernel = 1;
    fc.channelwise = false;
    fc.activation = ActivationKind::ReLU;

    Tensor in(2, 1, 1);
    in.at(0, 0, 0) = Fixed::fromDouble(-5.0);
    in.at(1, 0, 0) = Fixed::fromDouble(8.0);
    std::vector<Fixed> w = {Fixed::fromDouble(1), Fixed::fromDouble(1)};
    Tensor out = referenceLayer(fc, w, in);
    EXPECT_DOUBLE_EQ(out.at(0, 0, 0).toDouble(), 3.0);
}

TEST(Reference, ForwardChainsLayers)
{
    NetworkDesc net = threeLayerMlp(8, 4, 2);
    NetworkData data = NetworkData::randomized(net, 3);
    Tensor in(1, 1, 8);
    Rng rng(11);
    in.randomize(rng);
    auto outs = referenceForward(net, data, in);
    ASSERT_EQ(outs.size(), 2u);
    EXPECT_EQ(outs[0].width(), 4u);
    EXPECT_EQ(outs[1].width(), 2u);
    // Sigmoid outputs live in (0, 1).
    for (unsigned o = 0; o < 2; ++o) {
        EXPECT_GT(outs[1].at(0, 0, o).toDouble(), 0.0);
        EXPECT_LT(outs[1].at(0, 0, o).toDouble(), 1.0);
    }
}

} // namespace
} // namespace neurocube
