/**
 * @file
 * Batched multi-lane execution tests: runForwardBatch shards the
 * machine into vault groups and must stay bit-identical to the
 * sequential reference model on every lane, keep every packet inside
 * its lane's sub-mesh, and beat running the same inputs sequentially
 * on the whole machine (the lanes fill the 16-MAC groups that
 * whole-machine FC mapping leaves mostly idle).
 */

#include <gtest/gtest.h>

#include "core/neurocube.hh"
#include "nn/reference.hh"

namespace neurocube
{
namespace
{

/** Compare two tensors bit-for-bit; report the first mismatch. */
::testing::AssertionResult
tensorsEqual(const Tensor &a, const Tensor &b)
{
    if (a.maps() != b.maps() || a.height() != b.height()
        || a.width() != b.width()) {
        return ::testing::AssertionFailure()
            << "shape " << a.maps() << "x" << a.height() << "x"
            << a.width() << " vs " << b.maps() << "x" << b.height()
            << "x" << b.width();
    }
    for (unsigned m = 0; m < a.maps(); ++m) {
        for (unsigned y = 0; y < a.height(); ++y) {
            for (unsigned x = 0; x < a.width(); ++x) {
                if (!(a.at(m, y, x) == b.at(m, y, x))) {
                    return ::testing::AssertionFailure()
                        << "mismatch at (" << m << "," << y << ","
                        << x << "): " << a.at(m, y, x).toDouble()
                        << " vs " << b.at(m, y, x).toDouble();
                }
            }
        }
    }
    return ::testing::AssertionSuccess();
}

/** Conv + FC pipeline exercising both batched layer mappings. */
NetworkDesc
convFcNet()
{
    NetworkDesc net;
    net.name = "batch-conv-fc";
    LayerDesc conv;
    conv.type = LayerType::Conv2D;
    conv.name = "conv";
    conv.inWidth = 20;
    conv.inHeight = 16;
    conv.inMaps = 2;
    conv.outMaps = 4;
    conv.kernel = 3;
    conv.channelwise = true;
    conv.activation = ActivationKind::Tanh;
    net.layers.push_back(conv);

    LayerDesc fc = nextLayerTemplate(conv);
    fc.type = LayerType::FullyConnected;
    fc.name = "fc";
    fc.outMaps = 32;
    fc.activation = ActivationKind::Sigmoid;
    net.layers.push_back(fc);
    net.validate();
    return net;
}

/** Single FC layer for the throughput acceptance check. */
NetworkDesc
fcNet(unsigned in, unsigned out)
{
    NetworkDesc net;
    net.name = "batch-fc";
    LayerDesc fc;
    fc.type = LayerType::FullyConnected;
    fc.name = "fc";
    fc.inWidth = in;
    fc.inHeight = 1;
    fc.inMaps = 1;
    fc.outMaps = out;
    fc.activation = ActivationKind::Sigmoid;
    net.layers.push_back(fc);
    net.validate();
    return net;
}

/** A distinct randomized input per lane. */
std::vector<Tensor>
laneInputs(const NetworkDesc &net, unsigned count, uint64_t seed)
{
    std::vector<Tensor> inputs;
    for (unsigned l = 0; l < count; ++l) {
        Tensor in(net.inputMaps(), net.inputHeight(),
                  net.inputWidth());
        Rng rng(seed + l);
        in.randomize(rng);
        inputs.push_back(std::move(in));
    }
    return inputs;
}

/** Sum of sequential whole-machine runs over the same inputs. */
Tick
sequentialCycles(const NeurocubeConfig &config, const NetworkDesc &net,
                 const NetworkData &data,
                 const std::vector<Tensor> &inputs)
{
    Tick total = 0;
    for (const Tensor &in : inputs) {
        Neurocube cube(config);
        cube.loadNetwork(net, data);
        cube.setInput(in);
        total += cube.runForward().totalCycles();
    }
    return total;
}

class BatchDifferential : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(BatchDifferential, EveryLaneMatchesReference)
{
    const unsigned lanes = GetParam();
    NetworkDesc net = convFcNet();
    NetworkData data = NetworkData::randomized(net, 1);
    std::vector<Tensor> inputs = laneInputs(net, lanes, 100);

    NeurocubeConfig config;
    config.batch.lanes = lanes;
    Neurocube cube(config);
    cube.loadNetwork(net, data);
    BatchRunResult run = cube.runForwardBatch(inputs);

    ASSERT_EQ(run.lanes.size(), lanes);
    ASSERT_EQ(cube.lanePartition().size(), lanes);
    for (unsigned l = 0; l < lanes; ++l) {
        auto expect = referenceForward(net, data, inputs[l]);
        ASSERT_EQ(run.lanes[l].layers.size(), net.layers.size());
        for (size_t i = 0; i < net.layers.size(); ++i) {
            EXPECT_TRUE(
                tensorsEqual(cube.batchLayerOutput(l, i), expect[i]))
                << "lane " << l << " layer " << i;
        }
    }
    // The fabric's lane checker ran for the whole batch: nothing may
    // have left its vault group.
    EXPECT_EQ(cube.fabric().crossLanePackets(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Lanes, BatchDifferential,
                         ::testing::Values(1u, 2u, 4u));

TEST(Batch, PartialBatchLeavesTrailingLanesIdle)
{
    NetworkDesc net = convFcNet();
    NetworkData data = NetworkData::randomized(net, 2);
    std::vector<Tensor> inputs = laneInputs(net, 2, 200);

    NeurocubeConfig config;
    config.batch.lanes = 4;
    Neurocube cube(config);
    cube.loadNetwork(net, data);
    BatchRunResult run = cube.runForwardBatch(inputs);

    ASSERT_EQ(run.lanes.size(), 2u);
    for (unsigned l = 0; l < 2; ++l) {
        auto expect = referenceForward(net, data, inputs[l]);
        for (size_t i = 0; i < net.layers.size(); ++i) {
            EXPECT_TRUE(
                tensorsEqual(cube.batchLayerOutput(l, i), expect[i]))
                << "lane " << l << " layer " << i;
        }
    }
    EXPECT_EQ(cube.fabric().crossLanePackets(), 0u);
}

TEST(Batch, AggregateBeatsSequentialOnConvFc)
{
    NetworkDesc net = convFcNet();
    NetworkData data = NetworkData::randomized(net, 3);
    std::vector<Tensor> inputs = laneInputs(net, 4, 300);

    NeurocubeConfig config;
    config.batch.lanes = 4;
    Neurocube cube(config);
    cube.loadNetwork(net, data);
    BatchRunResult run = cube.runForwardBatch(inputs);

    Tick sequential = sequentialCycles(NeurocubeConfig{}, net, data,
                                       inputs);
    EXPECT_LT(run.cycles, sequential)
        << "batched " << run.cycles << " vs sequential " << sequential;
}

TEST(Batch, FourLaneFcThroughputAcceptance)
{
    // Acceptance criterion: 4 lanes on an FC layer reach >= 2.5x the
    // throughput of 4 sequential whole-machine runs. Whole-machine
    // mapping gives each PE only out/16 neurons, so its 16-MAC groups
    // run mostly empty while the flush pipeline still charges a full
    // 16-tick MAC latency per connection; a lane's PEs carry 4x the
    // neurons through the same number of flushes.
    NetworkDesc net = fcNet(256, 64);
    NetworkData data = NetworkData::randomized(net, 4);
    std::vector<Tensor> inputs = laneInputs(net, 4, 400);

    NeurocubeConfig config;
    config.mapping.weightsInPeMemory = true;
    Tick sequential = sequentialCycles(config, net, data, inputs);

    config.batch.lanes = 4;
    Neurocube cube(config);
    cube.loadNetwork(net, data);
    BatchRunResult run = cube.runForwardBatch(inputs);
    ASSERT_GT(run.cycles, 0u);

    for (unsigned l = 0; l < 4; ++l) {
        auto expect = referenceForward(net, data, inputs[l]);
        EXPECT_TRUE(tensorsEqual(cube.batchLayerOutput(l, 0),
                                 expect[0]))
            << "lane " << l;
    }

    double speedup = double(sequential) / double(run.cycles);
    EXPECT_GE(speedup, 2.5)
        << "sequential " << sequential << " cycles vs batched "
        << run.cycles;
}

TEST(Batch, SetBatchLanesReentrantAcrossLaneCounts)
{
    // One cube, three consecutive batches with different lane
    // counts (4 -> 2 -> 1), as the serving scheduler reconfigures
    // the mesh online. Every run must stay bit-identical to the
    // reference model and keep packets inside their lanes — no
    // state from a previous partition may leak into the next run.
    NetworkDesc net = convFcNet();
    NetworkData data = NetworkData::randomized(net, 6);
    std::vector<Tensor> inputs = laneInputs(net, 4, 600);

    Neurocube cube(NeurocubeConfig{});
    cube.loadNetwork(net, data);

    const unsigned lane_counts[] = {4, 2, 1, 4};
    for (unsigned lanes : lane_counts) {
        cube.setBatchLanes(lanes);
        ASSERT_EQ(cube.lanePartition().size(), lanes);
        std::vector<Tensor> batch(inputs.begin(),
                                  inputs.begin() + lanes);
        BatchRunResult run = cube.runForwardBatch(batch);
        ASSERT_EQ(run.lanes.size(), lanes);
        for (unsigned l = 0; l < lanes; ++l) {
            auto expect = referenceForward(net, data, inputs[l]);
            for (size_t i = 0; i < net.layers.size(); ++i) {
                EXPECT_TRUE(tensorsEqual(cube.batchLayerOutput(l, i),
                                         expect[i]))
                    << lanes << " lanes, lane " << l << " layer "
                    << i;
            }
        }
        EXPECT_EQ(cube.fabric().crossLanePackets(), 0u)
            << lanes << " lanes";
    }
}

TEST(Batch, PlanCacheRoundTripAcrossLaneCounts)
{
    // A 4 -> 2 -> 4 lane round trip: steady-state batches are served
    // entirely from the plan cache, and every setBatchLanes that
    // changes the partition invalidates it (the counters prove both),
    // while outputs stay bit-identical to the reference model.
    NetworkDesc net = convFcNet();
    NetworkData data = NetworkData::randomized(net, 8);
    std::vector<Tensor> inputs = laneInputs(net, 4, 800);
    std::vector<Tensor> pair(inputs.begin(), inputs.begin() + 2);

    Neurocube cube((NeurocubeConfig()));
    cube.loadNetwork(net, data);
    const LayerCompiler &compiler = cube.compiler();

    cube.setBatchLanes(4);
    cube.runForwardBatch(inputs);
    // 2 layers x 4 lanes, all cold.
    EXPECT_EQ(compiler.planCacheMisses(), 8u);
    EXPECT_EQ(compiler.planCacheHits(), 0u);

    // Steady state: the same shapes recompile as pure hits.
    cube.runForwardBatch(inputs);
    EXPECT_EQ(compiler.planCacheMisses(), 8u);
    EXPECT_EQ(compiler.planCacheHits(), 8u);

    // Re-partitioning drops the cache: 2 lanes compile cold.
    cube.setBatchLanes(2);
    cube.runForwardBatch(pair);
    EXPECT_EQ(compiler.planCacheMisses(), 12u);
    EXPECT_EQ(compiler.planCacheHits(), 8u);

    // Back to 4 lanes: invalidated again, cold once, then hits.
    cube.setBatchLanes(4);
    cube.runForwardBatch(inputs);
    EXPECT_EQ(compiler.planCacheMisses(), 20u);
    EXPECT_EQ(compiler.planCacheHits(), 8u);
    cube.runForwardBatch(inputs);
    EXPECT_EQ(compiler.planCacheMisses(), 20u);
    EXPECT_EQ(compiler.planCacheHits(), 16u);

    // A same-count setBatchLanes is a no-op and keeps the cache.
    cube.setBatchLanes(4);
    cube.runForwardBatch(inputs);
    EXPECT_EQ(compiler.planCacheMisses(), 20u);
    EXPECT_EQ(compiler.planCacheHits(), 24u);

    for (unsigned l = 0; l < 4; ++l) {
        auto expect = referenceForward(net, data, inputs[l]);
        for (size_t i = 0; i < net.layers.size(); ++i) {
            EXPECT_TRUE(tensorsEqual(cube.batchLayerOutput(l, i),
                                     expect[i]))
                << "lane " << l << " layer " << i;
        }
    }
}

TEST(Batch, SetBatchLanesTimingIsDeterministic)
{
    // Warm machine state (caches, row buffers) may legitimately make
    // a second run faster than the first, but the whole reconfigure
    // sequence must be deterministic: two cubes driven through the
    // same 4 -> 2 -> 2 lane sequence report identical cycle counts,
    // and the warm steady state is stable run over run.
    NetworkDesc net = convFcNet();
    NetworkData data = NetworkData::randomized(net, 7);
    std::vector<Tensor> inputs = laneInputs(net, 4, 700);
    std::vector<Tensor> pair(inputs.begin(), inputs.begin() + 2);

    auto sequence = [&]() {
        Neurocube cube((NeurocubeConfig()));
        cube.loadNetwork(net, data);
        cube.setBatchLanes(4);
        std::vector<Tick> cycles;
        cycles.push_back(cube.runForwardBatch(inputs).cycles);
        cube.setBatchLanes(2);
        cycles.push_back(cube.runForwardBatch(pair).cycles);
        cycles.push_back(cube.runForwardBatch(pair).cycles);
        return cycles;
    };
    std::vector<Tick> a = sequence();
    std::vector<Tick> b = sequence();
    EXPECT_EQ(a, b);
    for (Tick c : a)
        EXPECT_GT(c, 0u);
}

TEST(Batch, PerLaneStatsPartitionTheMachine)
{
    NetworkDesc net = convFcNet();
    NetworkData data = NetworkData::randomized(net, 5);
    std::vector<Tensor> inputs = laneInputs(net, 4, 500);

    NeurocubeConfig config;
    config.batch.lanes = 4;
    Neurocube cube(config);
    cube.loadNetwork(net, data);
    BatchRunResult run = cube.runForwardBatch(inputs);

    // Identical layer structure everywhere; per-lane ops follow the
    // reference operation count for the lane's own input.
    for (const RunResult &lane : run.lanes) {
        ASSERT_EQ(lane.layers.size(), net.layers.size());
        for (size_t i = 0; i < net.layers.size(); ++i) {
            EXPECT_EQ(lane.layers[i].ops,
                      net.layers[i].totalOps())
                << "layer " << i;
            EXPECT_GT(lane.layers[i].cycles, 0u);
            EXPECT_LE(lane.layers[i].cycles, run.cycles);
            EXPECT_GT(lane.layers[i].dramBits, 0u);
        }
    }
    // The aggregate wall clock can never beat the slowest lane.
    for (const RunResult &lane : run.lanes)
        EXPECT_LE(lane.totalCycles(), run.cycles);
}

} // namespace
} // namespace neurocube
