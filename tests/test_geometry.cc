/**
 * @file
 * Unit tests for rectangles and tile maps.
 */

#include <gtest/gtest.h>

#include "common/geometry.hh"

namespace neurocube
{
namespace
{

TEST(Rect, ContainsAndCount)
{
    Rect r{2, 3, 4, 5};
    EXPECT_EQ(r.count(), 20u);
    EXPECT_TRUE(r.contains(2, 3));
    EXPECT_TRUE(r.contains(5, 7));
    EXPECT_FALSE(r.contains(6, 3));
    EXPECT_FALSE(r.contains(2, 8));
    EXPECT_FALSE(r.contains(1, 3));
}

TEST(Rect, LocalIndexRowMajor)
{
    Rect r{10, 20, 3, 2};
    EXPECT_EQ(r.localIndex(10, 20), 0u);
    EXPECT_EQ(r.localIndex(12, 20), 2u);
    EXPECT_EQ(r.localIndex(10, 21), 3u);
    EXPECT_EQ(r.localIndex(12, 21), 5u);
}

TEST(Rect, ExpandedWithinClips)
{
    Rect bounds{0, 0, 10, 10};
    Rect r{1, 1, 3, 3};
    Rect e = r.expandedWithin(2, bounds);
    EXPECT_EQ(e.x0, 0);
    EXPECT_EQ(e.y0, 0);
    EXPECT_EQ(e.w, 6);
    EXPECT_EQ(e.h, 6);
}

TEST(TileMap, GridCoversAreaExactly)
{
    Rect area{0, 0, 314, 234};
    TileMap map = TileMap::grid(area, 4, 4);
    uint64_t total = 0;
    for (unsigned v = 0; v < 16; ++v)
        total += map.tile(v).count();
    EXPECT_EQ(total, area.count());
}

TEST(TileMap, OwnerConsistentWithTiles)
{
    Rect area{0, 0, 37, 23};
    TileMap map = TileMap::grid(area, 4, 4);
    for (int32_t y = 0; y < 23; ++y) {
        for (int32_t x = 0; x < 37; ++x) {
            unsigned owner = map.owner(x, y);
            EXPECT_TRUE(map.tile(owner).contains(x, y))
                << "pixel (" << x << "," << y << ")";
        }
    }
}

TEST(TileMap, LocalIndexDenseWithinTile)
{
    Rect area{0, 0, 20, 12};
    TileMap map = TileMap::grid(area, 4, 4);
    for (unsigned v = 0; v < 16; ++v) {
        Rect tile = map.tile(v);
        uint64_t expect = 0;
        for (int32_t y = tile.y0; y < tile.y0 + tile.h; ++y) {
            for (int32_t x = tile.x0; x < tile.x0 + tile.w; ++x) {
                EXPECT_EQ(map.localIndex(x, y), expect);
                ++expect;
            }
        }
    }
}

TEST(TileMap, VectorSplit)
{
    Rect area{0, 0, 1000, 1};
    TileMap map = TileMap::grid(area, 16, 1);
    uint64_t total = 0;
    for (unsigned v = 0; v < 16; ++v) {
        Rect t = map.tile(v);
        EXPECT_EQ(t.h, 1);
        total += t.count();
    }
    EXPECT_EQ(total, 1000u);
    EXPECT_EQ(map.owner(0, 0), 0u);
    EXPECT_EQ(map.owner(999, 0), 15u);
}

TEST(TileMap, DegenerateTilesAllowed)
{
    // More columns than pixels: some tiles are empty.
    Rect area{0, 0, 8, 1};
    TileMap map = TileMap::grid(area, 16, 1);
    uint64_t total = 0;
    for (unsigned v = 0; v < 16; ++v)
        total += map.tile(v).count();
    EXPECT_EQ(total, 8u);
}

TEST(TileMap, NonZeroOrigin)
{
    Rect area{5, 7, 16, 8};
    TileMap map = TileMap::grid(area, 4, 2);
    EXPECT_EQ(map.owner(5, 7), 0u);
    EXPECT_EQ(map.owner(20, 14), 7u);
    EXPECT_EQ(map.tile(0).x0, 5);
    EXPECT_EQ(map.tile(0).y0, 7);
}

} // namespace
} // namespace neurocube
