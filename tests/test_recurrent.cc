/**
 * @file
 * Tests of the Section-VI extension claims: RNN unfolding in time,
 * LSTM via per-pass LUT reprogramming and per-neuron-weight gate
 * products. The machine must match the sequential reference
 * bit-for-bit across time steps.
 */

#include <gtest/gtest.h>

#include "core/recurrent.hh"
#include "nn/reference.hh"

namespace neurocube
{
namespace
{

std::vector<Tensor>
randomSequence(unsigned size, unsigned steps, uint64_t seed)
{
    Rng rng(seed);
    std::vector<Tensor> seq;
    for (unsigned t = 0; t < steps; ++t) {
        Tensor x(1, 1, size);
        x.randomize(rng, -1.0, 1.0);
        seq.push_back(x);
    }
    return seq;
}

bool
vectorsEqual(const Tensor &a, const Tensor &b)
{
    return a.flat() == b.flat() && a.width() == b.width();
}

TEST(PerNeuronWeights, ElementwiseProductOnMachine)
{
    // out[j] = a[j] * w[j]: the gate-product building block.
    const unsigned n = 37;
    LayerDesc layer = lstmScaleLayer(n, ActivationKind::Identity,
                                     "scale");
    layer.validate();

    Tensor in(1, 1, n);
    Rng rng(70);
    in.randomize(rng);
    std::vector<Fixed> w(n);
    for (unsigned j = 0; j < n; ++j)
        w[j] = Fixed::fromDouble(rng.uniform(-1.0, 1.0));

    Neurocube cube(NeurocubeConfig{});
    Tensor out;
    cube.runSingleLayer(layer, w, in, &out);
    for (unsigned j = 0; j < n; ++j)
        EXPECT_EQ(out.at(0, 0, j), in.at(0, 0, j) * w[j]) << j;
}

TEST(PerNeuronWeights, CellUpdateCombinesTwoPlanes)
{
    // c = f (.) c_prev + i (.) g, bit-exact vs manual arithmetic.
    const unsigned n = 23;
    LayerDesc cell = lstmCellUpdateLayer(n);
    cell.validate();

    Rng rng(71);
    Tensor c_prev(1, 1, n), g(1, 1, n), f(1, 1, n), i(1, 1, n);
    c_prev.randomize(rng);
    g.randomize(rng);
    f.randomize(rng, 0.0, 1.0);
    i.randomize(rng, 0.0, 1.0);

    Neurocube cube(NeurocubeConfig{});
    Tensor out;
    cube.runSingleLayer(cell, interleaveGates(f, i),
                        stackPlanes(c_prev, g), &out);
    for (unsigned j = 0; j < n; ++j) {
        Accum acc;
        acc.mac(c_prev.at(0, 0, j), f.at(0, 0, j));
        acc.mac(g.at(0, 0, j), i.at(0, 0, j));
        EXPECT_EQ(out.at(0, 0, j), acc.toFixed()) << j;
    }
}

TEST(Rnn, MachineMatchesReferenceOverTime)
{
    RnnDesc desc;
    desc.inputSize = 12;
    desc.hiddenSize = 20;
    desc.timeSteps = 6;

    Rng rng(72);
    std::vector<Fixed> w(desc.weightCount());
    for (Fixed &v : w)
        v = Fixed::fromDouble(rng.uniform(-0.1, 0.1));
    auto inputs = randomSequence(12, 6, 73);

    Neurocube cube(NeurocubeConfig{});
    std::vector<Tensor> machine_states;
    RunResult run = runRnn(cube, desc, w, inputs, &machine_states);
    auto expect = referenceRnn(desc, w, inputs);

    ASSERT_EQ(machine_states.size(), expect.size());
    for (size_t t = 0; t < expect.size(); ++t) {
        EXPECT_TRUE(vectorsEqual(machine_states[t], expect[t]))
            << "step " << t;
    }
    EXPECT_EQ(run.layers.size(), 6u);
}

TEST(Rnn, StateFeedsBack)
{
    // With zero input after step 0, the state must still evolve
    // through the recurrent weights (feedback connectivity of
    // Fig. 3d).
    RnnDesc desc;
    desc.inputSize = 4;
    desc.hiddenSize = 8;
    desc.timeSteps = 3;

    Rng rng(74);
    std::vector<Fixed> w(desc.weightCount());
    for (Fixed &v : w)
        v = Fixed::fromDouble(rng.uniform(-0.3, 0.3));

    std::vector<Tensor> inputs(3, Tensor(1, 1, 4));
    inputs[0].randomize(rng);
    auto states = referenceRnn(desc, w, inputs);
    EXPECT_FALSE(vectorsEqual(states[1], states[2]));
}

TEST(Lstm, MachineMatchesReferenceOverTime)
{
    LstmDesc desc;
    desc.inputSize = 10;
    desc.hiddenSize = 16;
    desc.timeSteps = 4;

    LstmWeights weights = LstmWeights::randomized(desc, 75);
    auto inputs = randomSequence(10, 4, 76);

    Neurocube cube(NeurocubeConfig{});
    std::vector<Tensor> machine_states;
    RunResult run =
        runLstm(cube, desc, weights, inputs, &machine_states);
    auto expect = referenceLstm(desc, weights, inputs);

    ASSERT_EQ(machine_states.size(), expect.size());
    for (size_t t = 0; t < expect.size(); ++t) {
        EXPECT_TRUE(vectorsEqual(machine_states[t], expect[t]))
            << "step " << t;
    }
    // Seven passes per step.
    EXPECT_EQ(run.layers.size(), 4u * 7u);
}

TEST(Lstm, ForgetGateZeroClearsCell)
{
    // With Wf driven to large negatives (sigmoid -> 0) the cell
    // carries nothing forward: h depends only on the current input.
    LstmDesc desc;
    desc.inputSize = 6;
    desc.hiddenSize = 8;
    desc.timeSteps = 2;

    LstmWeights weights = LstmWeights::randomized(desc, 77);
    for (Fixed &v : weights.wf)
        v = Fixed::fromDouble(-8.0);

    auto seq_a = randomSequence(6, 2, 78);
    auto seq_b = seq_a;
    Rng rng(79);
    seq_b[0].randomize(rng); // different history, same last input

    auto out_a = referenceLstm(desc, weights, seq_a);
    auto out_b = referenceLstm(desc, weights, seq_b);
    // Not exactly equal (h_{t-1} still feeds the gates), but the
    // cell path is cut: check the cell-only contribution by making
    // the histories differ wildly yet outputs stay close.
    double max_diff = 0.0;
    for (unsigned j = 0; j < desc.hiddenSize; ++j) {
        max_diff = std::max(
            max_diff,
            std::abs(out_a[1].at(0, 0, j).toDouble()
                     - out_b[1].at(0, 0, j).toDouble()));
    }
    EXPECT_LT(max_diff, 0.5);
}

TEST(Lstm, WeightShapesAndValidation)
{
    LstmDesc desc;
    desc.inputSize = 5;
    desc.hiddenSize = 7;
    EXPECT_EQ(desc.gateWeightCount(), 7u * 13u);
    LstmWeights w = LstmWeights::randomized(desc, 80);
    EXPECT_EQ(w.wi.size(), desc.gateWeightCount());
    desc.gateLayer(ActivationKind::Sigmoid).validate();
    lstmCellUpdateLayer(7).validate();
}

} // namespace
} // namespace neurocube
