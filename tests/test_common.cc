/**
 * @file
 * Unit tests for logging, statistics and the deterministic RNG.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/logging.hh"
#include "common/rng.hh"
#include "common/stats.hh"

namespace neurocube
{
namespace
{

TEST(Logging, CapturesWarnAndInform)
{
    setLogCapture(true);
    nc_warn("something odd: %d", 42);
    nc_inform("status %s", "ok");
    std::string log = takeCapturedLog();
    setLogCapture(false);
    EXPECT_NE(log.find("warn: something odd: 42"), std::string::npos);
    EXPECT_NE(log.find("info: status ok"), std::string::npos);
}

TEST(Logging, CaptureDrainsBuffer)
{
    setLogCapture(true);
    nc_inform("first");
    takeCapturedLog();
    EXPECT_TRUE(takeCapturedLog().empty());
    setLogCapture(false);
}

TEST(Stats, CountAndValue)
{
    StatGroup root(nullptr, "root");
    Stat counter(&root, "events", "test events");
    counter += 3;
    counter += 2;
    EXPECT_EQ(counter.count(), 5u);
    counter.add(0.5);
    EXPECT_DOUBLE_EQ(counter.value(), 5.5);
    counter.reset();
    EXPECT_EQ(counter.count(), 0u);
}

TEST(Stats, HierarchicalDump)
{
    StatGroup root(nullptr, "root");
    StatGroup child(&root, "child");
    Stat a(&root, "a", "top stat");
    Stat b(&child, "b", "child stat");
    a += 1;
    b += 2;
    std::ostringstream os;
    root.dump(os);
    std::string out = os.str();
    EXPECT_NE(out.find("root.a"), std::string::npos);
    EXPECT_NE(out.find("root.child.b"), std::string::npos);
}

TEST(Stats, FindStat)
{
    StatGroup root(nullptr, "root");
    Stat a(&root, "a", "stat");
    EXPECT_EQ(root.findStat("a"), &a);
    EXPECT_EQ(root.findStat("missing"), nullptr);
}

TEST(Stats, ResetAllRecurses)
{
    StatGroup root(nullptr, "root");
    StatGroup child(&root, "child");
    Stat a(&root, "a", "");
    Stat b(&child, "b", "");
    a += 5;
    b += 7;
    root.resetAll();
    EXPECT_EQ(a.count(), 0u);
    EXPECT_EQ(b.count(), 0u);
}

TEST(TextTable, AlignsColumns)
{
    TextTable table({"name", "value"});
    table.addRow({"x", "1"});
    table.addRow({"longer", "23"});
    std::string out = table.str();
    EXPECT_NE(out.find("| name"), std::string::npos);
    EXPECT_NE(out.find("longer"), std::string::npos);
    // Header separator present.
    EXPECT_NE(out.find("|--"), std::string::npos);
}

TEST(Format, FormatCountInsertsSeparators)
{
    EXPECT_EQ(formatCount(0), "0");
    EXPECT_EQ(formatCount(999), "999");
    EXPECT_EQ(formatCount(1000), "1,000");
    EXPECT_EQ(formatCount(73476), "73,476");
    EXPECT_EQ(formatCount(1234567890), "1,234,567,890");
}

TEST(Format, FormatDoublePrecision)
{
    EXPECT_EQ(formatDouble(132.42, 1), "132.4");
    EXPECT_EQ(formatDouble(3.14159, 3), "3.142");
}

TEST(Rng, DeterministicFromSeed)
{
    Rng a(123), b(123), c(124);
    EXPECT_EQ(a.next(), b.next());
    EXPECT_NE(a.next(), c.next());
}

TEST(Rng, UniformInRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        double v = rng.uniform(-2.0, 3.0);
        EXPECT_GE(v, -2.0);
        EXPECT_LT(v, 3.0);
    }
}

TEST(Rng, BelowBounded)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, RoughlyUniform)
{
    Rng rng(99);
    int buckets[10] = {};
    const int samples = 100000;
    for (int i = 0; i < samples; ++i)
        ++buckets[rng.below(10)];
    for (int b : buckets) {
        EXPECT_GT(b, samples / 10 - samples / 50);
        EXPECT_LT(b, samples / 10 + samples / 50);
    }
}

} // namespace
} // namespace neurocube
