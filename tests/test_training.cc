/**
 * @file
 * Tests for the training sequencer: delta/gradient pass construction,
 * exact FC backprop on the machine, and the training ops budget.
 */

#include <gtest/gtest.h>

#include "core/training.hh"
#include "nn/reference.hh"

namespace neurocube
{
namespace
{

TEST(Training, ConvDeltaRestoresInputDims)
{
    LayerDesc conv;
    conv.type = LayerType::Conv2D;
    conv.name = "conv1";
    conv.inWidth = 64;
    conv.inHeight = 64;
    conv.inMaps = 3;
    conv.outMaps = 16;
    conv.kernel = 7;

    LayerDesc delta = deltaLayerDesc(conv);
    delta.validate();
    // Padded valid conv: out dims == forward in dims.
    EXPECT_EQ(delta.outWidth(), conv.inWidth);
    EXPECT_EQ(delta.outHeight(), conv.inHeight);
    EXPECT_EQ(delta.kernel, conv.kernel);
}

TEST(Training, FcDeltaIsTranspose)
{
    LayerDesc fc;
    fc.type = LayerType::FullyConnected;
    fc.name = "fc";
    fc.inWidth = 12;
    fc.inHeight = 1;
    fc.inMaps = 1;
    fc.outMaps = 5;

    LayerDesc delta = deltaLayerDesc(fc);
    EXPECT_EQ(delta.type, LayerType::FullyConnected);
    EXPECT_EQ(delta.inWidth, 5u);
    EXPECT_EQ(delta.outMaps, 12u);

    // Transposition round-trips.
    std::vector<Fixed> w(12 * 5);
    for (size_t i = 0; i < w.size(); ++i)
        w[i] = Fixed::fromRaw(int16_t(i));
    auto t = transposeFcWeights(fc, w);
    auto rt = transposeFcWeights(delta, t);
    EXPECT_EQ(w, rt);
}

TEST(Training, GradientOpsMatchForwardOps)
{
    // The gradient proxy must move exactly as many operands as the
    // true dW computation, which equals the forward layer's ops.
    LayerDesc conv;
    conv.type = LayerType::Conv2D;
    conv.name = "conv";
    conv.inWidth = 64;
    conv.inHeight = 64;
    conv.inMaps = 3;
    conv.outMaps = 16;
    conv.kernel = 7;
    LayerDesc grad = gradientLayerDesc(conv);
    grad.validate();
    EXPECT_EQ(grad.totalOps(), conv.totalOps());

    LayerDesc fc;
    fc.type = LayerType::FullyConnected;
    fc.name = "fc";
    fc.inWidth = 784;
    fc.inHeight = 1;
    fc.inMaps = 1;
    fc.outMaps = 100;
    EXPECT_EQ(gradientLayerDesc(fc).totalOps(), fc.totalOps());
}

TEST(Training, MachineFcDeltaMatchesReferenceBackprop)
{
    // Exact backward error propagation through an FC layer: running
    // the transposed layer on the machine must equal the reference
    // execution of the transposed layer (which is the definition of
    // the delta propagation delta_in = W^T delta_out).
    LayerDesc fc;
    fc.type = LayerType::FullyConnected;
    fc.name = "fc";
    fc.inWidth = 24;
    fc.inHeight = 1;
    fc.inMaps = 1;
    fc.outMaps = 10;

    NetworkData data;
    NetworkDesc net;
    net.name = "fc-net";
    net.layers.push_back(fc);
    data = NetworkData::randomized(net, 55);

    LayerDesc delta = deltaLayerDesc(fc);
    std::vector<Fixed> wt = transposeFcWeights(fc, data.weights[0]);

    Tensor delta_out(1, 1, 10);
    Rng rng(56);
    delta_out.randomize(rng, -0.25, 0.25);

    NeurocubeConfig config;
    Neurocube cube(config);
    Tensor machine_out;
    cube.runSingleLayer(delta, wt, delta_out, &machine_out);

    Tensor expect = referenceLayer(delta, wt, delta_out);
    ASSERT_EQ(machine_out.width(), expect.width());
    for (unsigned i = 0; i < expect.width(); ++i)
        EXPECT_EQ(machine_out.at(0, 0, i), expect.at(0, 0, i));
}

TEST(Training, IterationRunsForwardPlusDeltas)
{
    NetworkDesc net = threeLayerMlp(32, 16, 8);
    NetworkData data = NetworkData::randomized(net, 60);
    Tensor input(1, 1, 32);
    Rng rng(61);
    input.randomize(rng);

    NeurocubeConfig config;
    Neurocube cube(config);
    RunResult run = runTrainingIteration(cube, net, data, input);
    // 2 forward + 1 delta (layer 0's delta is skipped).
    ASSERT_EQ(run.layers.size(), 3u);
    EXPECT_EQ(run.layers[2].name, "d_output");
    EXPECT_GT(run.layers[2].ops, 0u);
}

TEST(Training, GradientPassesOptIn)
{
    NetworkDesc net = threeLayerMlp(32, 16, 8);
    NetworkData data = NetworkData::randomized(net, 62);
    Tensor input(1, 1, 32);
    Rng rng(63);
    input.randomize(rng);

    NeurocubeConfig config;
    Neurocube cube(config);
    TrainingOptions opts;
    opts.includeWeightGradient = true;
    RunResult run =
        runTrainingIteration(cube, net, data, input, opts);
    // 2 forward + 1 delta + 2 gradient passes.
    ASSERT_EQ(run.layers.size(), 5u);
    // Full backprop roughly triples the forward ops.
    uint64_t fwd = run.layers[0].ops + run.layers[1].ops;
    EXPECT_GT(run.totalOps(), 2 * fwd);
}

TEST(Training, OpsBudgetMatchesPaperBand)
{
    // Paper calibration (EXPERIMENTS.md): training on 64x64 costs
    // 28-29 MOp per iteration (126.8 GOPs/s / 4542 fps). Forward +
    // delta passes must land in that band.
    NetworkDesc net = sceneLabelingNetwork(64, 64);
    uint64_t ops = net.totalOps();
    for (size_t i = 1; i < net.layers.size(); ++i)
        ops += deltaLayerDesc(net.layers[i]).totalOps();
    double mop = double(ops) / 1e6;
    EXPECT_GT(mop, 18.0);
    EXPECT_LT(mop, 45.0);
}

} // namespace
} // namespace neurocube
