/**
 * @file
 * Statistics tests: the StatGroup hierarchy (registration, lookup,
 * recursive dump, reset) and the power-of-two-bucket Histogram
 * (exact count/min/max/mean, percentile interpolation and clamping).
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/stats.hh"

namespace neurocube
{
namespace
{

TEST(StatGroup, DumpWalksTheTree)
{
    StatGroup root(nullptr, "machine");
    StatGroup child(&root, "noc");
    Stat top(&root, "passes", "passes executed");
    Stat inner(&child, "flits", "flits forwarded");
    Histogram hist(&child, "latency", "packet latency");

    top += 3;
    inner += 40;
    hist.sample(2);
    hist.sample(6);

    std::ostringstream os;
    root.dump(os);
    const std::string text = os.str();
    EXPECT_NE(text.find("machine.passes"), std::string::npos);
    EXPECT_NE(text.find("machine.noc.flits"), std::string::npos);
    EXPECT_NE(text.find("machine.noc.latency.count"),
              std::string::npos);
    EXPECT_NE(text.find("machine.noc.latency.p99"),
              std::string::npos);
    EXPECT_NE(text.find("passes executed"), std::string::npos);

    EXPECT_EQ(root.findStat("passes"), &top);
    EXPECT_EQ(root.findStat("flits"), nullptr); // not recursive
    EXPECT_EQ(child.findHistogram("latency"), &hist);

    root.resetAll();
    EXPECT_EQ(top.count(), 0u);
    EXPECT_EQ(inner.count(), 0u);
    EXPECT_EQ(hist.count(), 0u);
}

TEST(Histogram, EmptyIsAllZero)
{
    StatGroup group(nullptr, "g");
    Histogram hist(&group, "h", "test");
    EXPECT_EQ(hist.count(), 0u);
    EXPECT_EQ(hist.min(), 0u);
    EXPECT_EQ(hist.max(), 0u);
    EXPECT_EQ(hist.mean(), 0.0);
    EXPECT_EQ(hist.p50(), 0.0);
    EXPECT_EQ(hist.p99(), 0.0);
}

TEST(Histogram, ExactStatsAreExact)
{
    StatGroup group(nullptr, "g");
    Histogram hist(&group, "h", "test");
    for (uint64_t v : {5u, 1u, 9u, 0u, 1000u})
        hist.sample(v);
    EXPECT_EQ(hist.count(), 5u);
    EXPECT_EQ(hist.min(), 0u);
    EXPECT_EQ(hist.max(), 1000u);
    EXPECT_DOUBLE_EQ(hist.mean(), (5.0 + 1 + 9 + 0 + 1000) / 5.0);
}

TEST(Histogram, PercentilesOfConstantDistribution)
{
    StatGroup group(nullptr, "g");
    Histogram hist(&group, "h", "test");
    for (int i = 0; i < 100; ++i)
        hist.sample(42);
    // Every percentile of a constant distribution is that constant:
    // the interpolation must clamp to the observed [min, max].
    EXPECT_DOUBLE_EQ(hist.percentile(0), 42.0);
    EXPECT_DOUBLE_EQ(hist.p50(), 42.0);
    EXPECT_DOUBLE_EQ(hist.p99(), 42.0);
    EXPECT_DOUBLE_EQ(hist.percentile(100), 42.0);
}

TEST(Histogram, PercentilesAreMonotoneAndBracketed)
{
    StatGroup group(nullptr, "g");
    Histogram hist(&group, "h", "test");
    // 1..1000 uniformly: p50 ~ 500, p99 ~ 990 within bucket error.
    for (uint64_t v = 1; v <= 1000; ++v)
        hist.sample(v);
    double prev = -1.0;
    for (double p : {0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0}) {
        double value = hist.percentile(p);
        EXPECT_GE(value, prev) << "at p" << p;
        EXPECT_GE(value, 1.0);
        EXPECT_LE(value, 1000.0);
        prev = value;
    }
    // The power-of-two buckets bound relative error by the bucket
    // width: p50 must land in bucket [256, 511] or a neighbour.
    EXPECT_NEAR(hist.p50(), 500.0, 260.0);
    EXPECT_GT(hist.p99(), hist.p50());
    EXPECT_DOUBLE_EQ(hist.percentile(100), 1000.0);
}

TEST(Histogram, TailSkewShowsUpInP99)
{
    StatGroup group(nullptr, "g");
    Histogram hist(&group, "h", "test");
    for (int i = 0; i < 980; ++i)
        hist.sample(10);
    for (int i = 0; i < 20; ++i)
        hist.sample(100000);
    EXPECT_NEAR(hist.p50(), 10.0, 6.0);
    // The top 2% live at 100000, so p99 falls inside the tail
    // population and must be far above the median.
    EXPECT_GT(hist.p99(), 1000.0);
    EXPECT_EQ(hist.max(), 100000u);
}

TEST(Histogram, ResetDropsEverything)
{
    StatGroup group(nullptr, "g");
    Histogram hist(&group, "h", "test");
    hist.sample(7);
    hist.sample(12345);
    hist.reset();
    EXPECT_EQ(hist.count(), 0u);
    EXPECT_EQ(hist.max(), 0u);
    EXPECT_EQ(hist.p99(), 0.0);
    hist.sample(3);
    EXPECT_EQ(hist.min(), 3u);
    EXPECT_EQ(hist.max(), 3u);
}

TEST(Histogram, MergeEmptyIntoEmptyStaysEmpty)
{
    StatGroup group(nullptr, "g");
    Histogram a(&group, "a", "test");
    Histogram b(&group, "b", "test");
    a.merge(b);
    EXPECT_EQ(a.count(), 0u);
    EXPECT_EQ(a.min(), 0u);
    EXPECT_EQ(a.max(), 0u);
    EXPECT_EQ(a.mean(), 0.0);
    EXPECT_EQ(a.p99(), 0.0);
}

TEST(Histogram, MergeEmptyOperandsAreNeutral)
{
    StatGroup group(nullptr, "g");
    Histogram a(&group, "a", "test");
    Histogram empty(&group, "e", "test");
    a.sample(4);
    a.sample(8);

    // Merging an empty histogram changes nothing.
    a.merge(empty);
    EXPECT_EQ(a.count(), 2u);
    EXPECT_EQ(a.min(), 4u);
    EXPECT_EQ(a.max(), 8u);
    EXPECT_DOUBLE_EQ(a.mean(), 6.0);

    // Merging into an empty histogram copies the distribution —
    // the empty side's zero min must not survive.
    Histogram c(&group, "c", "test");
    c.merge(a);
    EXPECT_EQ(c.count(), 2u);
    EXPECT_EQ(c.min(), 4u);
    EXPECT_EQ(c.max(), 8u);
    EXPECT_DOUBLE_EQ(c.mean(), 6.0);
}

TEST(Histogram, P999ResolvesTailAboveP99)
{
    StatGroup group(nullptr, "g");
    Histogram hist(&group, "h", "test");
    // 10000 fast requests plus 20 stragglers two decades slower:
    // ~0.2% of the mass, so the 99.9th-percentile rank falls inside
    // the straggler cluster. p99 must stay with the bulk, p999 must
    // land in (or above) the stragglers.
    for (int i = 0; i < 10000; ++i)
        hist.sample(100);
    for (int i = 0; i < 20; ++i)
        hist.sample(100000);
    EXPECT_LT(hist.p99(), 1000.0);
    EXPECT_GT(hist.p999(), 10000.0);
    EXPECT_GE(hist.p999(), hist.p99());
    EXPECT_LE(hist.p999(), double(hist.max()) * 2.0);
}

TEST(Histogram, P999InvariantUnderInsertionOrder)
{
    StatGroup group(nullptr, "g");
    Histogram ascending(&group, "a", "test");
    Histogram descending(&group, "d", "test");
    Histogram shuffled(&group, "s", "test");
    // Same multiset in three orders: ascending, descending, and a
    // strided shuffle. Bucketed counting must make every tail
    // percentile order-independent.
    for (uint64_t v = 1; v <= 2000; ++v)
        ascending.sample(v);
    for (uint64_t v = 2000; v >= 1; --v)
        descending.sample(v);
    for (uint64_t i = 0; i < 2000; ++i)
        shuffled.sample((i * 797) % 2000 + 1);

    EXPECT_DOUBLE_EQ(ascending.p999(), descending.p999());
    EXPECT_DOUBLE_EQ(ascending.p999(), shuffled.p999());
    EXPECT_DOUBLE_EQ(ascending.p99(), descending.p99());
    EXPECT_DOUBLE_EQ(ascending.p50(), shuffled.p50());
}

TEST(Histogram, P999SurvivesMerge)
{
    StatGroup group(nullptr, "g");
    Histogram whole(&group, "w", "test");
    Histogram left(&group, "l", "test");
    Histogram right(&group, "r", "test");
    // Split the same distribution across two histograms — bulk on
    // one side, the 0.1% tail on the other — and merge. The merged
    // tail percentiles must match the single-histogram ones exactly.
    for (int i = 0; i < 5000; ++i) {
        whole.sample(64);
        left.sample(64);
    }
    for (int i = 0; i < 5000; ++i) {
        whole.sample(256);
        right.sample(256);
    }
    for (int i = 0; i < 10; ++i) {
        whole.sample(1 << 20);
        right.sample(1 << 20);
    }
    left.merge(right);
    EXPECT_EQ(left.count(), whole.count());
    EXPECT_DOUBLE_EQ(left.p50(), whole.p50());
    EXPECT_DOUBLE_EQ(left.p99(), whole.p99());
    EXPECT_DOUBLE_EQ(left.p999(), whole.p999());
    EXPECT_GT(left.p999(), left.p99());
}

TEST(Histogram, MergeDisjointRangesCoversBoth)
{
    StatGroup group(nullptr, "g");
    Histogram low(&group, "low", "test");
    Histogram high(&group, "high", "test");
    for (uint64_t v = 1; v <= 8; ++v)
        low.sample(v);
    for (uint64_t v = 100000; v < 100008; ++v)
        high.sample(v);

    low.merge(high);
    EXPECT_EQ(low.count(), 16u);
    EXPECT_EQ(low.min(), 1u);
    EXPECT_EQ(low.max(), 100007u);
    double expected_mean = (36.0 + 8.0 * 100000 + 28.0) / 16.0;
    EXPECT_NEAR(low.mean(), expected_mean, 1e-9);
    // Half the mass is tiny, half huge: the median sits between the
    // two clusters and p99 lands in the upper one.
    EXPECT_GE(low.p50(), 1.0);
    EXPECT_GT(low.p99(), 50000.0);
    EXPECT_LE(low.p99(), double(low.max()) * 2.0);
    // The merged-from histogram is untouched.
    EXPECT_EQ(high.count(), 8u);
    EXPECT_EQ(high.min(), 100000u);
}

} // namespace
} // namespace neurocube
