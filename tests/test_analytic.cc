/**
 * @file
 * Cross-checks of the analytic throughput model against the cycle
 * simulator: the closed form must land within a modest band of the
 * simulated cycle counts across layer types and mappings.
 */

#include <gtest/gtest.h>

#include "core/analytic_model.hh"
#include "core/neurocube.hh"

namespace neurocube
{
namespace
{

/** Simulate one single-layer network and return its result. */
LayerResult
simulate(const LayerDesc &layer, const NeurocubeConfig &config,
         uint64_t seed)
{
    NetworkDesc net;
    net.name = "analytic-check";
    net.layers.push_back(layer);
    net.validate();
    NetworkData data = NetworkData::randomized(net, seed);
    Tensor input(layer.inMaps, layer.inHeight, layer.inWidth);
    Rng rng(seed + 1);
    input.randomize(rng);
    Neurocube cube(config);
    cube.loadNetwork(net, data);
    cube.setInput(input);
    return cube.runLayer(0);
}

void
expectWithin(const LayerDesc &layer, const NeurocubeConfig &config,
             double rel_band, uint64_t seed)
{
    LayerResult sim = simulate(layer, config, seed);
    AnalyticEstimate est = analyticLayerEstimate(layer, config);
    EXPECT_EQ(est.ops, sim.ops) << layer.name;
    double rel = double(est.cycles) / double(sim.cycles);
    EXPECT_GT(rel, 1.0 - rel_band)
        << layer.name << ": analytic " << est.cycles << " vs sim "
        << sim.cycles;
    EXPECT_LT(rel, 1.0 + rel_band)
        << layer.name << ": analytic " << est.cycles << " vs sim "
        << sim.cycles;
}

LayerDesc
convLayer(unsigned w, unsigned h, unsigned k, unsigned maps)
{
    LayerDesc conv;
    conv.type = LayerType::Conv2D;
    conv.name = "conv";
    conv.inWidth = w;
    conv.inHeight = h;
    conv.inMaps = 1;
    conv.outMaps = maps;
    conv.kernel = k;
    conv.channelwise = true;
    return conv;
}

TEST(Analytic, ConvDuplicatedWithinBand)
{
    expectWithin(convLayer(160, 120, 7, 1), NeurocubeConfig{}, 0.30,
                 1);
}

TEST(Analytic, ConvMultiMapWithinBand)
{
    expectWithin(convLayer(96, 72, 5, 4), NeurocubeConfig{}, 0.30, 2);
}

TEST(Analytic, ConvNoDupWithinBand)
{
    NeurocubeConfig config;
    config.mapping.duplicateConvHalo = false;
    expectWithin(convLayer(96, 72, 7, 2), config, 0.40, 3);
}

TEST(Analytic, FcDuplicatedWithinBand)
{
    LayerDesc fc;
    fc.type = LayerType::FullyConnected;
    fc.name = "fc";
    fc.inWidth = 2048;
    fc.inHeight = 1;
    fc.inMaps = 1;
    fc.outMaps = 512;
    expectWithin(fc, NeurocubeConfig{}, 0.30, 4);
}

TEST(Analytic, LateralFractionTracksMapping)
{
    NeurocubeConfig dup;
    AnalyticEstimate e1 =
        analyticLayerEstimate(convLayer(160, 120, 7, 1), dup);
    EXPECT_DOUBLE_EQ(e1.lateralFraction, 0.0);

    NeurocubeConfig nodup;
    nodup.mapping.duplicateConvHalo = false;
    AnalyticEstimate e2 =
        analyticLayerEstimate(convLayer(160, 120, 7, 1), nodup);
    EXPECT_GT(e2.lateralFraction, 0.0);
    EXPECT_LT(e2.lateralFraction, 0.5);

    LayerDesc fc;
    fc.type = LayerType::FullyConnected;
    fc.inWidth = 1024;
    fc.inHeight = 1;
    fc.inMaps = 1;
    fc.outMaps = 64;
    NeurocubeConfig fc_nodup;
    fc_nodup.mapping.duplicateFcInput = false;
    AnalyticEstimate e3 = analyticLayerEstimate(fc, fc_nodup);
    EXPECT_NEAR(e3.lateralFraction, 15.0 / 16.0, 1e-9);
}

TEST(Analytic, Ddr3SlowerThanHmc)
{
    LayerDesc conv = convLayer(160, 120, 7, 1);
    NeurocubeConfig hmc;
    NeurocubeConfig ddr;
    ddr.dram = DramParams::ddr3();
    AnalyticEstimate e_hmc = analyticLayerEstimate(conv, hmc);
    AnalyticEstimate e_ddr = analyticLayerEstimate(conv, ddr);
    EXPECT_GT(e_ddr.cycles, 3 * e_hmc.cycles);
}

TEST(Analytic, FullSceneInferenceNearPaperThroughput)
{
    // Whole-network analytic estimate should land near the paper's
    // 132.4 GOPs/s (duplication).
    NetworkDesc net = sceneLabelingNetwork();
    NeurocubeConfig config;
    uint64_t ops = 0;
    Tick cycles = 0;
    for (const LayerDesc &layer : net.layers) {
        AnalyticEstimate est = analyticLayerEstimate(layer, config);
        ops += est.ops;
        cycles += est.cycles;
    }
    double gops = double(ops) / (double(cycles) / 5e9) / 1e9;
    EXPECT_GT(gops, 110.0);
    EXPECT_LT(gops, 160.0);
}

} // namespace
} // namespace neurocube
