/**
 * @file
 * Unit tests for the processing element: OP-counter sequencing,
 * temporal buffer, operand cache and write-back generation.
 */

#include <gtest/gtest.h>

#include "noc/fabric.hh"
#include "pe/op_cache.hh"
#include "pe/pe.hh"
#include "pe/temporal_buffer.hh"

namespace neurocube
{
namespace
{

Packet
operand(PacketKind kind, MacId mac, OpId op, uint32_t group,
        double value, uint32_t neuron = 0)
{
    Packet p;
    p.kind = kind;
    p.dst = 0;
    p.mac = mac;
    p.opId = op;
    p.group = group;
    p.neuron = neuron;
    p.homeVault = 0;
    p.data = Fixed::fromDouble(value);
    return p;
}

TEST(TemporalBuffer, CompleteRequiresBothOperands)
{
    TemporalBuffer buf(4);
    buf.putState(0, Fixed::fromDouble(1.0), 0, 0);
    EXPECT_FALSE(buf.complete(1));
    buf.putWeight(0, Fixed::fromDouble(2.0), 0, 0);
    EXPECT_TRUE(buf.complete(1));
    EXPECT_FALSE(buf.complete(2));
}

TEST(TemporalBuffer, DuplicateOperandPanics)
{
    TemporalBuffer buf(4);
    buf.putState(1, Fixed::fromDouble(1.0), 0, 0);
    EXPECT_DEATH(buf.putState(1, Fixed::fromDouble(1.0), 0, 0),
                 "duplicate state");
}

TEST(OpCache, SubBankSelectionByOpIdMod16)
{
    StatGroup root(nullptr, "t");
    OpCache cache({16, 64}, &root);
    EXPECT_EQ(cache.subBankOf(0), 0u);
    EXPECT_EQ(cache.subBankOf(17), 1u);
    EXPECT_EQ(cache.subBankOf(255), 15u);
}

TEST(OpCache, InsertExtractRoundTrip)
{
    StatGroup root(nullptr, "t");
    OpCache cache({16, 64}, &root);
    Packet p = operand(PacketKind::State, 3, 5, 2, 1.5);
    cache.insert(2, p);
    EXPECT_EQ(cache.totalEntries(), 1u);

    std::vector<Packet> out;
    // Wrong group: not extracted.
    cache.extract(1, 5, out);
    EXPECT_TRUE(out.empty());
    // Right (group, op): extracted and removed.
    cache.extract(2, 5, out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].mac, 3);
    EXPECT_TRUE(cache.empty());
}

TEST(OpCache, OverflowCountedBeyondSubBankCapacity)
{
    StatGroup root(nullptr, "t");
    OpCache cache({16, 4}, &root);
    for (int i = 0; i < 4; ++i) {
        cache.insert(0,
                     operand(PacketKind::State, MacId(i), 16, 0, 1.0));
    }
    EXPECT_EQ(cache.overflows(), 0u);
    // op 16 and op 32 share sub-bank 0: the fifth entry spills.
    cache.insert(0, operand(PacketKind::State, 5, 32, 0, 1.0));
    EXPECT_EQ(cache.overflows(), 1u);
    // A different sub-bank still has room.
    cache.insert(0, operand(PacketKind::State, 5, 17, 0, 1.0));
    EXPECT_EQ(cache.overflows(), 1u);
    // Spilled entries remain retrievable.
    std::vector<Packet> out;
    cache.extract(0, 32, out);
    ASSERT_EQ(out.size(), 1u);
}

TEST(OpCache, ExtractReportsScanCost)
{
    StatGroup root(nullptr, "t");
    OpCache cache({16, 64}, &root);
    for (unsigned i = 0; i < 10; ++i) {
        cache.insert(0, operand(PacketKind::State, MacId(i % 16),
                                16 * (i % 3), 0, 1.0));
    }
    std::vector<Packet> out;
    unsigned scanned = cache.extract(0, 0, out);
    EXPECT_EQ(scanned, 10u); // ops 0/16/32 all map to sub-bank 0
}

class PeTest : public ::testing::Test
{
  protected:
    PeTest() : root_(nullptr, "t")
    {
        NocFabric::Config fc;
        fc.numNodes = 16;
        fabric_ = std::make_unique<NocFabric>(fc, &root_);
        PeParams params;
        pe_ = std::make_unique<Pe>(0, params, &root_);
    }

    void
    deliver(const Packet &p)
    {
        fabric_->peDelivery(0).push_back(p);
    }

    /** Tick the PE (and fabric) n times. */
    void
    run(Tick n)
    {
        for (Tick i = 0; i < n; ++i) {
            pe_->tick(now_, *fabric_);
            fabric_->tick(now_);
            ++now_;
        }
    }

    /** Collect write-backs that arrived at any memory port. */
    std::vector<Packet>
    writeBacks()
    {
        std::vector<Packet> out;
        for (unsigned v = 0; v < 16; ++v) {
            auto &q = fabric_->memDelivery(v);
            while (!q.empty()) {
                out.push_back(q.front());
                q.pop_front();
            }
        }
        return out;
    }

    StatGroup root_;
    std::unique_ptr<NocFabric> fabric_;
    std::unique_ptr<Pe> pe_;
    Tick now_ = 0;
};

TEST_F(PeTest, SingleNeuronDotProduct)
{
    PePassConfig cfg;
    cfg.enabled = true;
    cfg.numNeurons = 1;
    cfg.connections = 3;
    pe_->configurePass(cfg);

    // y = 1*2 + 3*4 + 5*0.5 = 16.5
    double states[3] = {1, 3, 5};
    double weights[3] = {2, 4, 0.5};
    for (OpId op = 0; op < 3; ++op) {
        deliver(operand(PacketKind::State, 0, op, 0, states[op], 42));
        deliver(operand(PacketKind::Weight, 0, op, 0, weights[op], 42));
    }
    run(200);
    EXPECT_TRUE(pe_->done());
    auto wbs = writeBacks();
    ASSERT_EQ(wbs.size(), 1u);
    EXPECT_DOUBLE_EQ(wbs[0].data.toDouble(), 16.5);
    EXPECT_EQ(wbs[0].neuron, 42u);
    EXPECT_EQ(wbs[0].kind, PacketKind::WriteBack);
}

TEST_F(PeTest, OutOfOrderOperandsBufferedInCache)
{
    PePassConfig cfg;
    cfg.enabled = true;
    cfg.numNeurons = 1;
    cfg.connections = 2;
    pe_->configurePass(cfg);

    // Deliver op 1 before op 0: it must wait in the cache.
    deliver(operand(PacketKind::State, 0, 1, 0, 3.0));
    deliver(operand(PacketKind::Weight, 0, 1, 0, 1.0));
    run(50);
    EXPECT_EQ(pe_->opCounter(), 0u);
    EXPECT_FALSE(pe_->done());

    deliver(operand(PacketKind::State, 0, 0, 0, 2.0));
    deliver(operand(PacketKind::Weight, 0, 0, 0, 1.0));
    run(200);
    EXPECT_TRUE(pe_->done());
    auto wbs = writeBacks();
    ASSERT_EQ(wbs.size(), 1u);
    EXPECT_DOUBLE_EQ(wbs[0].data.toDouble(), 5.0);
}

TEST_F(PeTest, SixteenMacsInParallel)
{
    PePassConfig cfg;
    cfg.enabled = true;
    cfg.numNeurons = 16;
    cfg.connections = 1;
    pe_->configurePass(cfg);

    for (MacId m = 0; m < 16; ++m) {
        deliver(operand(PacketKind::State, m, 0, 0, double(m), m));
        deliver(operand(PacketKind::Weight, m, 0, 0, 2.0, m));
    }
    run(300);
    EXPECT_TRUE(pe_->done());
    auto wbs = writeBacks();
    ASSERT_EQ(wbs.size(), 16u);
    for (const Packet &wb : wbs)
        EXPECT_DOUBLE_EQ(wb.data.toDouble(), 2.0 * wb.neuron);
}

TEST_F(PeTest, PartialLastGroup)
{
    // 20 neurons: one full group of 16, one partial group of 4.
    PePassConfig cfg;
    cfg.enabled = true;
    cfg.numNeurons = 20;
    cfg.connections = 1;
    pe_->configurePass(cfg);

    for (MacId m = 0; m < 16; ++m) {
        deliver(operand(PacketKind::State, m, 0, 0, 1.0, m));
        deliver(operand(PacketKind::Weight, m, 0, 0, 1.0, m));
    }
    for (MacId m = 0; m < 4; ++m) {
        deliver(operand(PacketKind::State, m, 0, 1, 1.0, 16u + m));
        deliver(operand(PacketKind::Weight, m, 0, 1, 1.0, 16u + m));
    }
    run(400);
    EXPECT_TRUE(pe_->done());
    EXPECT_EQ(writeBacks().size(), 20u);
    EXPECT_EQ(pe_->macOps(), 20u);
}

TEST_F(PeTest, MacThroughputSixteenTicksPerFlush)
{
    // Two back-to-back ops for one MAC cannot flush faster than the
    // MAC clock (f_PE / 16).
    PePassConfig cfg;
    cfg.enabled = true;
    cfg.numNeurons = 1;
    cfg.connections = 2;
    pe_->configurePass(cfg);
    for (OpId op = 0; op < 2; ++op) {
        deliver(operand(PacketKind::State, 0, op, 0, 1.0));
        deliver(operand(PacketKind::Weight, 0, op, 0, 1.0));
    }
    Tick start = now_;
    Tick done_at = 0;
    for (Tick i = 0; i < 300 && done_at == 0; ++i) {
        pe_->tick(now_, *fabric_);
        fabric_->tick(now_);
        ++now_;
        if (pe_->done())
            done_at = now_;
    }
    ASSERT_GT(done_at, 0u);
    EXPECT_GE(done_at - start, 16u);
}

TEST_F(PeTest, LocalWeightMemorySuppliesWeights)
{
    PePassConfig cfg;
    cfg.enabled = true;
    cfg.numNeurons = 1;
    cfg.connections = 2;
    cfg.localWeights = {Fixed::fromDouble(2.0), Fixed::fromDouble(3.0)};
    pe_->configurePass(cfg);

    deliver(operand(PacketKind::State, 0, 0, 0, 1.0));
    deliver(operand(PacketKind::State, 0, 1, 0, 1.0));
    run(200);
    EXPECT_TRUE(pe_->done());
    auto wbs = writeBacks();
    ASSERT_EQ(wbs.size(), 1u);
    EXPECT_DOUBLE_EQ(wbs[0].data.toDouble(), 5.0);
}

TEST_F(PeTest, WriteBackRoutedToHomeVault)
{
    PePassConfig cfg;
    cfg.enabled = true;
    cfg.numNeurons = 1;
    cfg.connections = 1;
    pe_->configurePass(cfg);
    Packet s = operand(PacketKind::State, 0, 0, 0, 1.0, 9);
    Packet w = operand(PacketKind::Weight, 0, 0, 0, 1.0, 9);
    s.homeVault = 7;
    w.homeVault = 7;
    deliver(s);
    deliver(w);
    run(300);
    EXPECT_EQ(fabric_->memDelivery(7).size(), 1u);
}

TEST_F(PeTest, DisabledPeIgnoresEverything)
{
    PePassConfig cfg;
    cfg.enabled = false;
    pe_->configurePass(cfg);
    run(10);
    EXPECT_TRUE(pe_->done());
    EXPECT_EQ(pe_->macOps(), 0u);
}

} // namespace
} // namespace neurocube
