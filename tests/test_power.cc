/**
 * @file
 * Unit tests for the power/area model (Table II) and the compact
 * thermal solver (Fig. 17).
 */

#include <gtest/gtest.h>

#include "power/energy_model.hh"
#include "power/power_model.hh"
#include "power/thermal.hh"

namespace neurocube
{
namespace
{

TEST(PowerModel, PeSumMatchesTable2At28nm)
{
    PowerModel model(TechNode::Nm28);
    EXPECT_NEAR(model.pePowerW(), 1.56e-2, 2e-4);
    EXPECT_NEAR(model.peAreaMm2(), 0.1936, 2e-3);
}

TEST(PowerModel, PeSumMatchesTable2At15nm)
{
    PowerModel model(TechNode::Nm15);
    EXPECT_NEAR(model.pePowerW(), 2.13e-1, 2e-3);
    EXPECT_NEAR(model.peAreaMm2(), 0.0600, 1e-3);
}

TEST(PowerModel, ComputeTotalsMatchPaper)
{
    // 249 mW / 3.09 mm^2 in 28 nm; 3.41 W / 0.96 mm^2 in 15 nm.
    PowerModel m28(TechNode::Nm28);
    EXPECT_NEAR(m28.computePowerW(), 0.249, 0.005);
    EXPECT_NEAR(m28.computeAreaMm2(), 3.098, 0.05);
    PowerModel m15(TechNode::Nm15);
    EXPECT_NEAR(m15.computePowerW(), 3.41, 0.05);
    EXPECT_NEAR(m15.computeAreaMm2(), 0.96, 0.02);
}

TEST(PowerModel, HmcPowerDerivation)
{
    // Logic die: 6.78 pJ/bit x 32 x 16 x 5 GHz scaled by activity
    // 0.06 at 28 nm = 1.04 W; by 0.5 energy scale at 15 nm = 8.67 W.
    PowerModel m28(TechNode::Nm28);
    EXPECT_NEAR(m28.hmcLogicDiePowerW(), 1.04, 0.02);
    EXPECT_NEAR(m28.dramPowerW(), 0.568, 0.01);
    PowerModel m15(TechNode::Nm15);
    EXPECT_NEAR(m15.hmcLogicDiePowerW(), 8.67, 0.02);
    EXPECT_NEAR(m15.dramPowerW(), 9.47, 0.02);
}

TEST(PowerModel, EfficiencyMatchesTable3)
{
    // Table III: 8.0 GOPs/s at 0.25 W -> 31.92 GOPs/s/W (28 nm) and
    // 132.4 at 3.41 W -> 38.82 (15 nm).
    PowerModel m28(TechNode::Nm28);
    EXPECT_NEAR(m28.efficiencyGopsPerWatt(8.0), 31.92, 0.8);
    PowerModel m15(TechNode::Nm15);
    EXPECT_NEAR(m15.efficiencyGopsPerWatt(132.4), 38.82, 0.8);
}

TEST(PowerModel, ActivityFactorFollowsClock)
{
    EXPECT_NEAR(PowerModel(TechNode::Nm28).activityFactor(), 0.06,
                1e-9);
    EXPECT_NEAR(PowerModel(TechNode::Nm15).activityFactor(), 1.0,
                1e-9);
}

TEST(PowerModel, PublishedPlatformsEfficiency)
{
    auto rows = publishedPlatforms();
    ASSERT_GE(rows.size(), 8u);
    // GTX 780: 1781 GOPs/s at 206.8 W = 8.61 GOPs/s/W.
    for (const auto &row : rows) {
        if (row.paper.find("GTX") != std::string::npos) {
            EXPECT_NEAR(row.efficiency(), 8.61, 0.05);
        }
        if (row.paper.find("DaDianNao") != std::string::npos) {
            EXPECT_NEAR(row.efficiency(), 349.4, 1.0);
        }
    }
}

TEST(Energy, AccountsComputeAndDram)
{
    RunResult run;
    LayerResult layer;
    layer.name = "l";
    layer.ops = 1000000;
    layer.cycles = 5000000; // 1 ms at 5 GHz
    layer.dramBits = 1000000;
    run.layers.push_back(layer);

    PowerModel m15(TechNode::Nm15);
    EnergyReport report = accountEnergy(run, m15, 3.7);
    EXPECT_NEAR(report.seconds, 1e-3, 1e-9);
    EXPECT_NEAR(report.computeJ, m15.computePowerW() * 1e-3, 1e-6);
    EXPECT_NEAR(report.dramJ, 1e6 * 3.7e-12, 1e-12);
    EXPECT_GT(report.totalJ(), 0.0);
    EXPECT_GT(report.gopsPerJoule(layer.ops), 0.0);
}

TEST(Energy, SlowerClockCostsMoreStaticIntegration)
{
    RunResult run;
    LayerResult layer;
    layer.cycles = 1000000;
    layer.dramBits = 0;
    run.layers.push_back(layer);
    // Same cycle count takes longer wall-clock at 300 MHz than at
    // 5 GHz, but the 28 nm node burns far less power.
    EnergyReport e28 =
        accountEnergy(run, PowerModel(TechNode::Nm28), 3.7);
    EnergyReport e15 =
        accountEnergy(run, PowerModel(TechNode::Nm15), 3.7);
    EXPECT_GT(e28.seconds, e15.seconds);
}

TEST(Floorplan, SixteenCoresFitTheLogicDie)
{
    // Section VII: 16 cores (PE + router + VC + TSVs) fit the HMC's
    // 68 mm^2 logic die at 70% placement utilization, in both nodes.
    for (TechNode node : {TechNode::Nm28, TechNode::Nm15}) {
        PowerModel model(node);
        FloorplanReport report = buildFloorplan(model);
        EXPECT_TRUE(report.fits) << techNodeName(node);
        EXPECT_LT(report.coresMm2, report.dieBudgetMm2);
        EXPECT_GT(report.tile.edgeUm, 0.0);
    }
    // The paper's 28 nm tile is 513 um x 513 um.
    FloorplanReport r28 = buildFloorplan(PowerModel(TechNode::Nm28));
    EXPECT_NEAR(r28.tile.edgeUm, 513.0, 600.0 - 513.0);
}

TEST(Thermal, UniformPowerSymmetricTemperature)
{
    ThermalParams params;
    ThermalModel model(params);
    std::vector<double> map(params.gridSize * params.gridSize,
                            10.0 / 256.0);
    ThermalResult r = model.solve(map, 0.0);
    // Symmetric power: corner cells match by symmetry.
    unsigned n = params.gridSize;
    EXPECT_NEAR(r.logicMapK.front(), r.logicMapK[n - 1], 1e-2);
    EXPECT_GT(r.maxLogicK, params.ambientK);
}

TEST(Thermal, MorePowerIsHotter)
{
    ThermalParams params;
    ThermalModel model(params);
    std::vector<double> low(256, 5.0 / 256.0);
    std::vector<double> high(256, 20.0 / 256.0);
    EXPECT_GT(model.solve(high, 5.0).maxLogicK,
              model.solve(low, 1.0).maxLogicK);
}

TEST(Thermal, LogicHotterThanDramWhenLogicDominates)
{
    ThermalParams params;
    ThermalModel model(params);
    PowerModel m15(TechNode::Nm15);
    auto map = model.floorplanPowerMap(
        m15.pePowerW(), m15.hmcLogicDiePowerW(), 16);
    ThermalResult r = model.solve(map, m15.dramPowerW());
    EXPECT_GT(r.maxLogicK, r.maxDramK);
}

TEST(Thermal, Fig17Band15nm)
{
    // Paper: logic max 349 K, DRAM max 344 K at the 15 nm operating
    // point. The compact model should land within a few kelvin.
    ThermalParams params;
    ThermalModel model(params);
    PowerModel m15(TechNode::Nm15);
    auto map = model.floorplanPowerMap(
        m15.pePowerW(), m15.hmcLogicDiePowerW(), 16);
    ThermalResult r = model.solve(map, m15.dramPowerW());
    EXPECT_NEAR(r.maxLogicK, 349.0, 8.0);
    EXPECT_NEAR(r.maxDramK, 344.0, 8.0);
    // Within HMC 2.0 limits.
    EXPECT_LT(r.maxLogicK, hmcLogicDieLimitK);
    EXPECT_LT(r.maxDramK, hmcDramDieLimitK);
}

TEST(Thermal, NegligibleAt28nm)
{
    ThermalParams params;
    ThermalModel model(params);
    PowerModel m28(TechNode::Nm28);
    auto map = model.floorplanPowerMap(
        m28.pePowerW(), m28.hmcLogicDiePowerW(), 16);
    ThermalResult r = model.solve(map, m28.dramPowerW());
    // ~1.9 W total: a few kelvin of rise at most.
    EXPECT_LT(r.maxLogicK, params.ambientK + 15.0);
}

TEST(Thermal, FloorplanConservesPower)
{
    ThermalParams params;
    ThermalModel model(params);
    auto map = model.floorplanPowerMap(0.213, 8.67, 16);
    double total = 0.0;
    for (double p : map)
        total += p;
    EXPECT_NEAR(total, 0.213 * 16 + 8.67, 1e-9);
}

} // namespace
} // namespace neurocube
