/**
 * @file
 * Unit tests for the Q1.7.8 fixed-point arithmetic.
 */

#include <gtest/gtest.h>

#include "common/fixed_point.hh"

namespace neurocube
{
namespace
{

TEST(FixedPoint, ZeroDefault)
{
    Fixed f;
    EXPECT_EQ(f.raw(), 0);
    EXPECT_DOUBLE_EQ(f.toDouble(), 0.0);
}

TEST(FixedPoint, FromDoubleRoundTrip)
{
    for (double v : {0.0, 1.0, -1.0, 0.5, -0.5, 3.25, -3.25, 127.0,
                     -128.0, 0.00390625}) {
        Fixed f = Fixed::fromDouble(v);
        EXPECT_DOUBLE_EQ(f.toDouble(), v) << "value " << v;
    }
}

TEST(FixedPoint, RoundsToNearest)
{
    // 1/512 is half an LSB: rounds away from zero.
    EXPECT_EQ(Fixed::fromDouble(1.0 / 512.0).raw(), 1);
    EXPECT_EQ(Fixed::fromDouble(-1.0 / 512.0).raw(), -1);
    // Just below half an LSB rounds to zero.
    EXPECT_EQ(Fixed::fromDouble(0.0009).raw(), 0);
}

TEST(FixedPoint, SaturatesOnConstruction)
{
    EXPECT_EQ(Fixed::fromDouble(1000.0).raw(), INT16_MAX);
    EXPECT_EQ(Fixed::fromDouble(-1000.0).raw(), INT16_MIN);
}

TEST(FixedPoint, AdditionSaturates)
{
    Fixed big = Fixed::fromDouble(100.0);
    Fixed sum = big + big;
    EXPECT_EQ(sum.raw(), INT16_MAX);
    Fixed neg = Fixed::fromDouble(-100.0);
    EXPECT_EQ((neg + neg).raw(), INT16_MIN);
}

TEST(FixedPoint, MultiplicationExactForPowersOfTwo)
{
    Fixed a = Fixed::fromDouble(0.5);
    Fixed b = Fixed::fromDouble(8.0);
    EXPECT_DOUBLE_EQ((a * b).toDouble(), 4.0);
}

TEST(FixedPoint, MultiplicationTruncates)
{
    // 0.00390625 * 0.5 = 0.001953125, below one LSB: truncates to 0.
    Fixed a = Fixed::fromRaw(1);
    Fixed b = Fixed::fromDouble(0.5);
    EXPECT_EQ((a * b).raw(), 0);
}

TEST(FixedPoint, NegationSaturatesAtMin)
{
    Fixed min = Fixed::fromRaw(INT16_MIN);
    EXPECT_EQ((-min).raw(), INT16_MAX);
}

TEST(FixedPoint, ComparisonOperators)
{
    Fixed a = Fixed::fromDouble(1.0);
    Fixed b = Fixed::fromDouble(2.0);
    EXPECT_TRUE(a < b);
    EXPECT_TRUE(b > a);
    EXPECT_TRUE(a <= a);
    EXPECT_TRUE(a >= a);
    EXPECT_TRUE(a == a);
    EXPECT_FALSE(a == b);
}

TEST(Accum, ExactWideAccumulation)
{
    Accum acc;
    Fixed x = Fixed::fromDouble(100.0);
    Fixed w = Fixed::fromDouble(100.0);
    // 100 * 100 = 10000 overflows Q1.7.8 but not the accumulator.
    acc.mac(x, w);
    EXPECT_DOUBLE_EQ(acc.toDouble(), 10000.0);
    // Extraction saturates.
    EXPECT_EQ(acc.toFixed().raw(), INT16_MAX);
}

TEST(Accum, OrderIndependent)
{
    // Integer accumulation is exactly associative: any order of the
    // same multiply-accumulate set yields identical bits. This is
    // the invariant that lets the distributed machine match the
    // sequential reference bit-for-bit.
    std::vector<std::pair<Fixed, Fixed>> pairs;
    for (int i = 0; i < 100; ++i) {
        pairs.emplace_back(Fixed::fromRaw(int16_t(37 * i - 1000)),
                           Fixed::fromRaw(int16_t(91 * i - 3000)));
    }
    Accum forward, backward;
    for (const auto &[x, w] : pairs)
        forward.mac(x, w);
    for (auto it = pairs.rbegin(); it != pairs.rend(); ++it)
        backward.mac(it->first, it->second);
    EXPECT_EQ(forward, backward);
    EXPECT_EQ(forward.toFixed(), backward.toFixed());
}

TEST(Accum, PartialSumWithUnitWeightIsLossless)
{
    // partial * 1.0 then >>8 returns the exact partial: the
    // machine's cross-pass accumulation trick.
    for (int16_t raw : {int16_t(0), int16_t(1), int16_t(-1),
                        int16_t(12345), int16_t(-32768),
                        int16_t(32767)}) {
        Accum acc;
        acc.mac(Fixed::fromRaw(raw), Fixed::fromDouble(1.0));
        EXPECT_EQ(acc.toFixed().raw(), raw);
    }
}

TEST(Accum, ClearResets)
{
    Accum acc;
    acc.mac(Fixed::fromDouble(3.0), Fixed::fromDouble(4.0));
    acc.clear();
    EXPECT_EQ(acc.raw(), 0);
}

} // namespace
} // namespace neurocube
