/**
 * @file
 * Parameterized property tests: for swept layer shapes, mappings and
 * machine configurations, the cycle-level machine must (a) produce
 * bit-identical results to the sequential reference, (b) execute
 * exactly the descriptor's operation count, (c) respect conservation
 * laws (every injected packet ejected, every read issued serviced),
 * and (d) honour mapping invariants (no lateral traffic and no cache
 * overflow under full duplication).
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/neurocube.hh"
#include "nn/reference.hh"

namespace neurocube
{
namespace
{

bool
tensorsBitEqual(const Tensor &a, const Tensor &b)
{
    return a.maps() == b.maps() && a.height() == b.height()
        && a.width() == b.width() && a.flat() == b.flat();
}

// ---------------------------------------------------------------
// Convolution sweep.

struct ConvCase
{
    unsigned width;
    unsigned height;
    unsigned kernel;
    unsigned inMaps;
    unsigned outMaps;
    bool channelwise;
    bool duplicate;

    friend std::ostream &
    operator<<(std::ostream &os, const ConvCase &c)
    {
        return os << c.width << "x" << c.height << "_k" << c.kernel
                  << "_m" << c.inMaps << "to" << c.outMaps
                  << (c.channelwise ? "_cw" : "_full")
                  << (c.duplicate ? "_dup" : "_nodup");
    }
};

class ConvProperty : public ::testing::TestWithParam<ConvCase>
{
};

TEST_P(ConvProperty, MachineMatchesReferenceAndInvariants)
{
    const ConvCase &c = GetParam();

    LayerDesc conv;
    conv.type = LayerType::Conv2D;
    conv.name = "conv";
    conv.inWidth = c.width;
    conv.inHeight = c.height;
    conv.inMaps = c.inMaps;
    conv.outMaps = c.outMaps;
    conv.kernel = c.kernel;
    conv.channelwise = c.channelwise;
    conv.activation = ActivationKind::Tanh;

    NetworkDesc net;
    net.name = "prop-conv";
    net.layers.push_back(conv);
    net.validate();

    NetworkData data = NetworkData::randomized(net, 101 + c.kernel);
    Tensor input(c.inMaps, c.height, c.width);
    Rng rng(202 + c.width);
    input.randomize(rng);

    NeurocubeConfig config;
    config.mapping.duplicateConvHalo = c.duplicate;
    Neurocube cube(config);
    cube.loadNetwork(net, data);
    cube.setInput(input);
    LayerResult r = cube.runLayer(0);

    // (a) Bit-exact result.
    Tensor expect = referenceLayer(conv, data.weights[0], input);
    EXPECT_TRUE(tensorsBitEqual(cube.layerOutput(0), expect));

    // (b) Exact operation count.
    EXPECT_EQ(r.ops, conv.totalOps());

    // (c) Conservation: every injected packet was ejected.
    EXPECT_TRUE(cube.fabric().idle());

    // (d) Mapping invariants. (Cache overflow is asserted separately
    // for MAC-aligned tiles — partial groups legitimately run the
    // stream ahead of the MAC retire rate until backpressure
    // engages.)
    if (c.duplicate) {
        EXPECT_EQ(r.lateralPackets, 0u);
    } else if (c.kernel > 1) {
        EXPECT_GT(r.lateralPackets, 0u);
    }

    // Cycles can never beat the per-vault streaming bound.
    EXPECT_GE(r.cycles, r.ops / 2
                            / config.dram.numChannels
                            / config.noc.localPortWidth);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ConvProperty,
    ::testing::Values(
        ConvCase{17, 13, 3, 1, 1, true, true},
        ConvCase{17, 13, 3, 1, 1, true, false},
        ConvCase{24, 18, 5, 2, 4, true, true},
        ConvCase{24, 18, 5, 2, 4, true, false},
        ConvCase{20, 20, 7, 1, 2, true, true},
        ConvCase{16, 12, 1, 3, 5, false, true},
        ConvCase{14, 10, 3, 2, 2, false, true},
        ConvCase{14, 10, 3, 2, 2, false, false},
        ConvCase{33, 9, 3, 1, 2, true, true},
        ConvCase{9, 33, 3, 1, 2, true, false}),
    [](const ::testing::TestParamInfo<ConvCase> &info) {
        std::ostringstream os;
        os << info.param;
        return os.str();
    });

// ---------------------------------------------------------------
// Fully connected sweep.

struct FcCase
{
    unsigned inWidth;
    unsigned inHeight;
    unsigned inMaps;
    unsigned outputs;
    bool duplicate;

    friend std::ostream &
    operator<<(std::ostream &os, const FcCase &c)
    {
        return os << c.inMaps << "x" << c.inHeight << "x" << c.inWidth
                  << "_to" << c.outputs
                  << (c.duplicate ? "_dup" : "_nodup");
    }
};

class FcProperty : public ::testing::TestWithParam<FcCase>
{
};

TEST_P(FcProperty, MachineMatchesReferenceAndInvariants)
{
    const FcCase &c = GetParam();

    LayerDesc fc;
    fc.type = LayerType::FullyConnected;
    fc.name = "fc";
    fc.inWidth = c.inWidth;
    fc.inHeight = c.inHeight;
    fc.inMaps = c.inMaps;
    fc.outMaps = c.outputs;
    fc.activation = ActivationKind::Sigmoid;

    NetworkDesc net;
    net.name = "prop-fc";
    net.layers.push_back(fc);
    net.validate();

    NetworkData data = NetworkData::randomized(net, 303 + c.outputs);
    Tensor input(c.inMaps, c.inHeight, c.inWidth);
    Rng rng(404 + c.inWidth);
    input.randomize(rng);

    NeurocubeConfig config;
    config.mapping.duplicateFcInput = c.duplicate;
    Neurocube cube(config);
    cube.loadNetwork(net, data);
    cube.setInput(input);
    LayerResult r = cube.runLayer(0);

    Tensor expect = referenceLayer(fc, data.weights[0], input);
    EXPECT_TRUE(tensorsBitEqual(cube.layerOutput(0), expect));
    EXPECT_EQ(r.ops, fc.totalOps());
    if (c.duplicate) {
        EXPECT_EQ(r.lateralPackets, 0u);
    } else if (c.outputs >= 16) {
        // Fig. 10e: partitioned input makes most traffic lateral.
        EXPECT_GT(r.lateralFraction(), 0.5);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, FcProperty,
    ::testing::Values(FcCase{12, 1, 1, 7, true},
                      FcCase{12, 1, 1, 7, false},
                      FcCase{64, 1, 1, 40, true},
                      FcCase{64, 1, 1, 40, false},
                      FcCase{10, 6, 2, 18, true},
                      FcCase{10, 6, 2, 18, false},
                      FcCase{7, 7, 3, 3, true},
                      FcCase{7, 7, 3, 3, false},
                      FcCase{200, 1, 1, 1, true},
                      FcCase{1, 1, 1, 33, false}),
    [](const ::testing::TestParamInfo<FcCase> &info) {
        std::ostringstream os;
        os << info.param;
        return os.str();
    });

// ---------------------------------------------------------------
// Machine-configuration sweep on one fixed workload.

struct MachineCase
{
    const char *name;
    NocTopology topology;
    bool ddr3;
    bool weightsInPeMemory;
    bool splitFullConv;
    bool broadcast;
};

class MachineProperty : public ::testing::TestWithParam<MachineCase>
{
};

TEST_P(MachineProperty, WorkloadSurvivesConfiguration)
{
    const MachineCase &c = GetParam();

    NetworkDesc net;
    net.name = "prop-machine";
    LayerDesc conv;
    conv.type = LayerType::Conv2D;
    conv.name = "conv";
    conv.inWidth = 18;
    conv.inHeight = 14;
    conv.inMaps = 2;
    conv.outMaps = 3;
    conv.kernel = 3;
    conv.channelwise = false;
    conv.activation = ActivationKind::ReLU;
    net.layers.push_back(conv);

    LayerDesc fc = nextLayerTemplate(conv);
    fc.type = LayerType::FullyConnected;
    fc.name = "fc";
    fc.outMaps = 9;
    fc.activation = ActivationKind::Sigmoid;
    net.layers.push_back(fc);
    net.validate();

    NetworkData data = NetworkData::randomized(net, 99);
    Tensor input(2, 14, 18);
    Rng rng(98);
    input.randomize(rng);

    NeurocubeConfig config;
    config.noc.topology = c.topology;
    if (c.ddr3)
        config.dram = DramParams::ddr3();
    config.mapping.weightsInPeMemory = c.weightsInPeMemory;
    config.splitFullConvPasses = c.splitFullConv;
    config.dram.broadcastDuplicateReads = c.broadcast;

    Neurocube cube(config);
    cube.loadNetwork(net, data);
    cube.setInput(input);
    RunResult run = cube.runForward();

    auto expect = referenceForward(net, data, input);
    if (!c.splitFullConv) {
        EXPECT_TRUE(tensorsBitEqual(cube.layerOutput(0), expect[0]))
            << c.name;
    } else {
        Tensor split_expect = referenceLayerSplitPasses(
            net.layers[0], data.weights[0], input);
        EXPECT_TRUE(
            tensorsBitEqual(cube.layerOutput(0), split_expect))
            << c.name;
    }
    EXPECT_GT(run.totalOps(), 0u);
    EXPECT_TRUE(cube.fabric().idle());
}

INSTANTIATE_TEST_SUITE_P(
    Configs, MachineProperty,
    ::testing::Values(
        MachineCase{"mesh", NocTopology::Mesh2D, false, false, false,
                    false},
        MachineCase{"fully_connected_noc",
                    NocTopology::FullyConnected, false, false, false,
                    false},
        MachineCase{"ddr3", NocTopology::Mesh2D, true, false, false,
                    false},
        MachineCase{"weight_memory", NocTopology::Mesh2D, false, true,
                    false, false},
        MachineCase{"split_full_conv", NocTopology::Mesh2D, false,
                    false, true, false},
        MachineCase{"broadcast_reads", NocTopology::Mesh2D, false,
                    false, false, true}),
    [](const ::testing::TestParamInfo<MachineCase> &info) {
        return std::string(info.param.name);
    });

// ---------------------------------------------------------------
// Activation sweep: every LUT must survive the full dataflow.

class ActivationProperty
    : public ::testing::TestWithParam<ActivationKind>
{
};

TEST_P(ActivationProperty, LutAppliedOnWriteBack)
{
    LayerDesc conv;
    conv.type = LayerType::Conv2D;
    conv.name = "conv";
    conv.inWidth = 12;
    conv.inHeight = 10;
    conv.inMaps = 1;
    conv.outMaps = 2;
    conv.kernel = 3;
    conv.channelwise = true;
    conv.activation = GetParam();

    NetworkDesc net;
    net.name = "prop-act";
    net.layers.push_back(conv);
    net.validate();
    NetworkData data = NetworkData::randomized(net, 55);
    Tensor input(1, 10, 12);
    Rng rng(56);
    input.randomize(rng, -2.0, 2.0);

    Neurocube cube(NeurocubeConfig{});
    cube.loadNetwork(net, data);
    cube.setInput(input);
    cube.runLayer(0);
    Tensor expect = referenceLayer(conv, data.weights[0], input);
    EXPECT_TRUE(tensorsBitEqual(cube.layerOutput(0), expect));
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, ActivationProperty,
    ::testing::Values(ActivationKind::Identity, ActivationKind::ReLU,
                      ActivationKind::Sigmoid, ActivationKind::Tanh),
    [](const ::testing::TestParamInfo<ActivationKind> &info) {
        return std::string(activationName(info.param));
    });

// ---------------------------------------------------------------
// Determinism: two identical runs must produce identical cycle
// counts and identical memory contents.

TEST(Determinism, RepeatedRunsAreBitIdentical)
{
    NetworkDesc net;
    net.name = "det";
    LayerDesc conv;
    conv.type = LayerType::Conv2D;
    conv.name = "conv";
    conv.inWidth = 20;
    conv.inHeight = 16;
    conv.inMaps = 2;
    conv.outMaps = 2;
    conv.kernel = 3;
    conv.channelwise = true;
    conv.activation = ActivationKind::Tanh;
    net.layers.push_back(conv);
    net.validate();

    NetworkData data = NetworkData::randomized(net, 7);
    Tensor input(2, 16, 20);
    Rng rng(8);
    input.randomize(rng);

    auto run_once = [&](Tick &cycles, Tensor &out) {
        Neurocube cube(NeurocubeConfig{});
        cube.loadNetwork(net, data);
        cube.setInput(input);
        LayerResult r = cube.runLayer(0);
        cycles = r.cycles;
        out = cube.layerOutput(0);
    };
    Tick c1, c2;
    Tensor o1, o2;
    run_once(c1, o1);
    run_once(c2, o2);
    EXPECT_EQ(c1, c2);
    EXPECT_TRUE(tensorsBitEqual(o1, o2));
}

// ---------------------------------------------------------------
// Batched lanes: the vault-group partition must isolate lanes on the
// NoC (rectangular sub-meshes are closed under X-Y routing) and keep
// every lane's timing independent of what the other lanes compute.

TEST(BatchLaneProperty, NoPacketEverLeavesItsVaultGroup)
{
    // Randomized layer shapes across both lane widths; the fabric's
    // lane checker counts any injection or link traversal that
    // disagrees with the node -> lane map.
    Rng shapes(4242);
    for (unsigned lanes : {2u, 4u}) {
        for (unsigned trial = 0; trial < 4; ++trial) {
            NetworkDesc net;
            net.name = "lane-iso";
            LayerDesc conv;
            conv.type = LayerType::Conv2D;
            conv.name = "conv";
            conv.inWidth = 12 + unsigned(shapes.next() % 12);
            conv.inHeight = 8 + unsigned(shapes.next() % 12);
            conv.inMaps = 1 + unsigned(shapes.next() % 3);
            conv.outMaps = conv.inMaps + unsigned(shapes.next() % 3);
            conv.kernel = 3;
            conv.channelwise = true;
            conv.activation = ActivationKind::Tanh;
            net.layers.push_back(conv);

            LayerDesc fc = nextLayerTemplate(conv);
            fc.type = LayerType::FullyConnected;
            fc.name = "fc";
            fc.outMaps = 4 + unsigned(shapes.next() % 28);
            fc.activation = ActivationKind::Sigmoid;
            net.layers.push_back(fc);
            net.validate();

            NetworkData data =
                NetworkData::randomized(net, 600 + trial);
            std::vector<Tensor> inputs;
            for (unsigned l = 0; l < lanes; ++l) {
                Tensor in(net.inputMaps(), net.inputHeight(),
                          net.inputWidth());
                Rng rng(700 + 10 * trial + l);
                in.randomize(rng);
                inputs.push_back(std::move(in));
            }

            NeurocubeConfig config;
            config.batch.lanes = lanes;
            // Partitioned FC input maximizes lateral traffic, the
            // hardest case for lane confinement.
            config.mapping.duplicateFcInput = (trial % 2 == 0);
            Neurocube cube(config);
            cube.loadNetwork(net, data);
            cube.runForwardBatch(inputs);
            EXPECT_EQ(cube.fabric().crossLanePackets(), 0u)
                << lanes << " lanes, trial " << trial;
            EXPECT_TRUE(cube.fabric().idle());
        }
    }
}

TEST(BatchLaneProperty, LaneCyclesIndependentOfOtherLanesInputs)
{
    // Timing is data independent per lane: changing what the other
    // lanes compute must not move a lane's per-layer cycle counts.
    NetworkDesc net;
    net.name = "lane-indep";
    LayerDesc conv;
    conv.type = LayerType::Conv2D;
    conv.name = "conv";
    conv.inWidth = 16;
    conv.inHeight = 12;
    conv.inMaps = 2;
    conv.outMaps = 3;
    conv.kernel = 3;
    conv.channelwise = true;
    conv.activation = ActivationKind::Tanh;
    net.layers.push_back(conv);
    LayerDesc fc = nextLayerTemplate(conv);
    fc.type = LayerType::FullyConnected;
    fc.name = "fc";
    fc.outMaps = 24;
    fc.activation = ActivationKind::Sigmoid;
    net.layers.push_back(fc);
    net.validate();
    NetworkData data = NetworkData::randomized(net, 81);

    auto lane0_cycles = [&](uint64_t other_seed) {
        std::vector<Tensor> inputs;
        for (unsigned l = 0; l < 4; ++l) {
            Tensor in(net.inputMaps(), net.inputHeight(),
                      net.inputWidth());
            // Lane 0 keeps its input; the others get fresh ones.
            Rng rng(l == 0 ? 900 : other_seed + l);
            in.randomize(rng);
            inputs.push_back(std::move(in));
        }
        NeurocubeConfig config;
        config.batch.lanes = 4;
        Neurocube cube(config);
        cube.loadNetwork(net, data);
        BatchRunResult run = cube.runForwardBatch(inputs);
        std::vector<Tick> cycles;
        for (const LayerResult &l : run.lanes[0].layers)
            cycles.push_back(l.cycles);
        return cycles;
    };

    EXPECT_EQ(lane0_cycles(1000), lane0_cycles(2000));
}

} // namespace
} // namespace neurocube
